// Frontend tests: lexer, parser, semantic errors, SSA lowering, and —
// most importantly — verdict equivalence: the paper's figures written as
// MiniParty *source* must produce exactly the same analysis results as
// the hand-built IR models.
#include <gtest/gtest.h>

#include "analysis/cycle_analysis.hpp"
#include "analysis/escape_analysis.hpp"
#include "frontend/compile.hpp"
#include "frontend/figures_source.hpp"

namespace rmiopt::frontend {
namespace {

// ---- lexer ------------------------------------------------------------------

TEST(Lexer, TokenizesKeywordsIdentifiersAndLiterals) {
  const auto toks = lex("remote class Foo { int x2 = 42; double d = 3.5; }");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, Tok::KwRemote);
  EXPECT_EQ(toks[1].kind, Tok::KwClass);
  EXPECT_EQ(toks[2].kind, Tok::Identifier);
  EXPECT_EQ(toks[2].text, "Foo");
  const auto lit = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == Tok::IntLiteral;
  });
  ASSERT_NE(lit, toks.end());
  EXPECT_EQ(lit->int_value, 42);
  const auto dbl = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == Tok::DoubleLiteral;
  });
  ASSERT_NE(dbl, toks.end());
  EXPECT_DOUBLE_EQ(dbl->double_value, 3.5);
  EXPECT_EQ(toks.back().kind, Tok::End);
}

TEST(Lexer, TracksLineAndColumn) {
  const auto toks = lex("class A {\n  int x;\n}");
  EXPECT_EQ(toks[0].loc.line, 1);
  // "int" is on line 2.
  const auto prim = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == Tok::KwPrim;
  });
  ASSERT_NE(prim, toks.end());
  EXPECT_EQ(prim->loc.line, 2);
  EXPECT_EQ(prim->loc.column, 3);
}

TEST(Lexer, SkipsCommentsAndHandlesOperators) {
  const auto toks = lex("a // line comment\n/* block\ncomment */ <= != &&");
  ASSERT_EQ(toks.size(), 5u);  // a, <=, !=, &&, End
  EXPECT_EQ(toks[1].kind, Tok::Le);
  EXPECT_EQ(toks[2].kind, Tok::NotEq);
  EXPECT_EQ(toks[3].kind, Tok::AndAnd);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(lex("class A { #bad }"), ParseError);
  EXPECT_THROW(lex("a & b"), ParseError);
  EXPECT_THROW(lex("/* unterminated"), ParseError);
}

// ---- parser -----------------------------------------------------------------

TEST(Parser, ParsesClassStructure) {
  const ProgramAst ast = parse(sources::kFigure5);
  ASSERT_EQ(ast.classes.size(), 5u);
  EXPECT_EQ(ast.classes[0].name, "Base");
  EXPECT_EQ(ast.classes[1].extends, "Base");
  EXPECT_TRUE(ast.classes[4].methods[0].is_static);
  const ClassDecl& work = ast.classes[3];
  EXPECT_TRUE(work.is_remote);
  ASSERT_EQ(work.methods.size(), 1u);
  EXPECT_EQ(work.methods[0].name, "foo");
  ASSERT_EQ(work.methods[0].params.size(), 1u);
  EXPECT_EQ(work.methods[0].params[0].type.base, "Base");
}

TEST(Parser, ParsesArrayTypesAndNewArray) {
  const ProgramAst ast = parse(sources::kFigure2);
  const ClassDecl& foo = ast.classes[1];
  ASSERT_EQ(foo.fields.size(), 2u);
  EXPECT_EQ(foo.fields[1].type.base, "double");
  EXPECT_EQ(foo.fields[1].type.dims, 3);
  const MethodDecl& main = ast.classes[2].methods[0];
  const Stmt& alloc3d = *main.body[2];  // foo.a = new double[2][3][4];
  EXPECT_EQ(alloc3d.kind, StmtKind::Assign);
  EXPECT_EQ(alloc3d.value->kind, ExprKind::NewArray);
  EXPECT_EQ(alloc3d.value->args.size(), 3u);
}

TEST(Parser, ParsesControlFlowAndCalls) {
  const ProgramAst ast = parse(sources::kFigure14);
  const MethodDecl& bench = ast.classes[2].methods[0];
  // head decl, i decl, while, f decl, call
  ASSERT_EQ(bench.body.size(), 5u);
  EXPECT_EQ(bench.body[2]->kind, StmtKind::While);
  EXPECT_EQ(bench.body[4]->kind, StmtKind::ExprStmt);
  EXPECT_EQ(bench.body[4]->value->kind, ExprKind::Call);
  EXPECT_EQ(bench.body[4]->value->name, "send");
}

TEST(Parser, PrecedenceBindsMulTighter) {
  const ProgramAst ast =
      parse("class A { static void f() { int x = 1 + 2 * 3; } }");
  const Expr& e = *ast.classes[0].methods[0].body[0]->value;
  ASSERT_EQ(e.kind, ExprKind::Binary);
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.rhs->kind, ExprKind::Binary);
  EXPECT_EQ(e.rhs->op, "*");
}

TEST(Parser, ReportsPositionsInErrors) {
  try {
    parse("class A {\n  void f( { }\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos);
  }
  EXPECT_THROW(parse("class A extends { }"), ParseError);
  EXPECT_THROW(parse("class A { int ; }"), ParseError);
  EXPECT_THROW(parse("class"), ParseError);
}

// ---- semantic errors ----------------------------------------------------------

TEST(Sema, RejectsUnknownTypesAndVariables) {
  EXPECT_THROW(compile_source("class A { Missing m; }"), ParseError);
  EXPECT_THROW(
      compile_source("class A { static void f() { x = 1; } }"), ParseError);
  EXPECT_THROW(
      compile_source("class A { static void f() { B.g(); } }"), ParseError);
}

TEST(Sema, RejectsTypeErrors) {
  EXPECT_THROW(compile_source(R"(
    class D { }
    class A { static void f() { int x = new D(); } }
  )"),
               ParseError);
  EXPECT_THROW(compile_source(R"(
    class D { }
    class E { }
    class A { static void f() { D d = new E(); } }
  )"),
               ParseError);
  EXPECT_THROW(compile_source(R"(
    class A { static int f() { return; } }
  )"),
               ParseError);
  EXPECT_THROW(compile_source(R"(
    class A { static void f() { g(1); } static void g() { } }
  )"),
               ParseError);
}

TEST(Sema, SubclassAssignmentIsAllowed) {
  EXPECT_NO_THROW(compile_source(R"(
    class B { }
    class D extends B { }
    class A { static void f() { B b = new D(); } }
  )"));
}

TEST(Sema, ThisOnlyInRemoteClasses) {
  EXPECT_THROW(compile_source(R"(
    class A {
      int x;
      void f() { this.x = 1; }
    }
  )"),
               ParseError);
  EXPECT_NO_THROW(compile_source(R"(
    remote class A {
      int x;
      void f() { this.x = 1; }
    }
  )"));
}

// ---- lowering ------------------------------------------------------------------

struct Analyzed {
  Unit unit;
  std::unique_ptr<analysis::HeapAnalysis> heap;
  std::unique_ptr<analysis::CycleAnalysis> cycles;
  std::unique_ptr<analysis::EscapeAnalysis> escapes;

  explicit Analyzed(const char* source) : unit(compile_source(source)) {
    heap = std::make_unique<analysis::HeapAnalysis>(*unit.module);
    heap->run();
    cycles = std::make_unique<analysis::CycleAnalysis>(*heap);
    escapes = std::make_unique<analysis::EscapeAnalysis>(*heap);
  }

  ir::Module::RemoteCallRef only_site() const {
    const auto sites = unit.module->remote_call_sites();
    RMIOPT_CHECK(sites.size() == 1, "expected exactly one remote call");
    return sites[0];
  }
};

TEST(Lowering, Figure2HeapGraphMatchesHandBuiltModel) {
  Analyzed a(sources::kFigure2);
  // 5 allocation sites: Foo, Bar, and one per array dimension level.
  EXPECT_EQ(a.heap->node_count(), 5u);
  const std::string dump = analysis::to_string(*a.heap);
  EXPECT_NE(dump.find(".bar"), std::string::npos);
  EXPECT_NE(dump.find("[] ->"), std::string::npos);
}

TEST(Lowering, Figure3TupleRuleTerminates) {
  Analyzed a(sources::kFigure3);
  // As hand-built (original + parameter clone + return clone) plus the
  // explicit `new Foo()` remote-object allocation the source spells out.
  EXPECT_EQ(a.heap->node_count(), 4u);
  EXPECT_FALSE(a.escapes->args_reusable(a.only_site()));
}

TEST(Lowering, Figure5PerSitePrecisionSurvivesTheFrontend) {
  Analyzed a(sources::kFigure5);
  const auto sites = a.unit.module->remote_call_sites();
  ASSERT_EQ(sites.size(), 2u);
  const auto args1 = a.heap->remote_arg_sets(sites[0]);
  const auto args2 = a.heap->remote_arg_sets(sites[1]);
  ASSERT_EQ(args1[0].size(), 1u);
  ASSERT_EQ(args2[0].size(), 1u);
  EXPECT_EQ(a.heap->node(*args1[0].begin()).cls, a.unit.cls("Derived1"));
  EXPECT_EQ(a.heap->node(*args2[0].begin()).cls, a.unit.cls("Derived2"));
}

TEST(Lowering, CycleVerdictsMatchPaper) {
  EXPECT_TRUE(Analyzed(sources::kFigure8)
                  .cycles->callsite_needs_cycle_table(
                      Analyzed(sources::kFigure8).only_site()));
  Analyzed f9(sources::kFigure9);
  EXPECT_TRUE(f9.cycles->callsite_needs_cycle_table(f9.only_site()));
  Analyzed f12(sources::kFigure12);
  EXPECT_FALSE(f12.cycles->callsite_needs_cycle_table(f12.only_site()));
  Analyzed f14(sources::kFigure14);
  EXPECT_TRUE(f14.cycles->callsite_needs_cycle_table(f14.only_site()));
}

TEST(Lowering, EscapeVerdictsMatchPaper) {
  Analyzed f10(sources::kFigure10);
  EXPECT_TRUE(f10.escapes->args_reusable(f10.only_site()));
  Analyzed f11(sources::kFigure11);
  EXPECT_FALSE(f11.escapes->args_reusable(f11.only_site()));
  Analyzed f12(sources::kFigure12);
  EXPECT_TRUE(f12.escapes->args_reusable(f12.only_site()));
  Analyzed f14(sources::kFigure14);
  EXPECT_TRUE(f14.escapes->args_reusable(f14.only_site()));
}

TEST(Lowering, WebserverModelFromSourceMatchesPaperSection54) {
  Analyzed a(sources::kWebserver);
  const auto site = a.only_site();
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(site));
  EXPECT_TRUE(a.escapes->args_reusable(site));
  EXPECT_TRUE(a.escapes->return_reusable(site));
}

TEST(Lowering, SuperoptModelFromSourceMatchesPaperSection53) {
  Analyzed a(sources::kSuperopt);
  const auto site = a.only_site();
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(site));
  EXPECT_FALSE(a.escapes->args_reusable(site));  // queued: escapes
}

TEST(Lowering, LuModelFromSourceMatchesPaperSection52) {
  const Unit unit = compile_source(sources::kLu);
  analysis::HeapAnalysis heap(*unit.module);
  heap.run();
  analysis::CycleAnalysis cycles(heap);
  analysis::EscapeAnalysis escapes(heap);

  const auto flush_tags = unit.tags_for("LU.flush");
  const auto fetch_tags = unit.tags_for("LU.fetch_row");
  const auto barrier_tags = unit.tags_for("LU.barrier");
  ASSERT_EQ(flush_tags.size(), 1u);
  ASSERT_EQ(fetch_tags.size(), 1u);
  ASSERT_EQ(barrier_tags.size(), 1u);

  auto site_of = [&](std::uint32_t tag) {
    for (const auto& s : unit.module->remote_call_sites()) {
      if (s.instr->callsite_tag == tag) return s;
    }
    fail("missing site");
  };
  // Same verdicts as the hand-built model (tests/cycle_escape_test.cpp).
  EXPECT_FALSE(cycles.callsite_needs_cycle_table(site_of(flush_tags[0])));
  EXPECT_TRUE(escapes.args_reusable(site_of(flush_tags[0])));
  EXPECT_FALSE(cycles.callsite_needs_cycle_table(site_of(fetch_tags[0])));
  EXPECT_TRUE(escapes.return_reusable(site_of(fetch_tags[0])));
  EXPECT_FALSE(cycles.callsite_needs_cycle_table(site_of(barrier_tags[0])));
}

TEST(Lowering, PreciseCyclesFixFigure14FromSource) {
  Analyzed a(sources::kFigure14);
  analysis::CycleAnalysis refined(*a.heap, /*construction_order=*/true);
  EXPECT_FALSE(refined.callsite_needs_cycle_table(a.only_site()));
}

TEST(Lowering, WhileLoopsBuildPhis) {
  const Unit unit = compile_source(sources::kFigure14);
  const ir::Function& bench =
      *unit.module->find_function("Main.benchmark");
  bool found_phi = false;
  for (const auto& block : bench.blocks) {
    for (const auto& in : block.instrs) {
      if (in.op == ir::Op::Phi && in.operands.size() == 2) found_phi = true;
    }
  }
  EXPECT_TRUE(found_phi);  // head = phi(null, new LinkedList(head))
}

TEST(Lowering, IfElseMergesWithPhi) {
  const Unit unit = compile_source(R"(
    class D { }
    class E extends D { }
    class A {
      static void f(int c) {
        D x = new D();
        if (c < 0) {
          x = new E();
        } else {
          x = new D();
        }
        D y = x;
      }
    }
  )");
  analysis::HeapAnalysis heap(*unit.module);
  heap.run();
  const ir::Function& f = *unit.module->find_function("A.f");
  // y sees both branch allocations (plus not the pre-branch one).
  ir::ValueId y = ir::kNoValue;
  for (const auto& block : f.blocks) {
    for (const auto& in : block.instrs) {
      if (in.op == ir::Op::Phi) y = in.result;
    }
  }
  ASSERT_NE(y, ir::kNoValue);
  EXPECT_EQ(heap.points_to(f.id, y).size(), 2u);
}

TEST(Lowering, CallsiteTagsCarrySourceLines) {
  const Unit unit = compile_source(sources::kFigure5);
  ASSERT_EQ(unit.callsites.size(), 2u);
  for (const auto& [tag, name] : unit.callsites) {
    EXPECT_NE(name.find("Work.foo@"), std::string::npos) << name;
  }
  EXPECT_EQ(unit.tags_for("Work.foo").size(), 2u);
}

TEST(Lowering, RecordStyleConstructorAssignsFields) {
  const Unit unit = compile_source(R"(
    class Node {
      Node next;
    }
    class A {
      static void f() {
        Node a = new Node();
        Node b = new Node(a);
      }
    }
  )");
  analysis::HeapAnalysis heap(*unit.module);
  heap.run();
  // b's node points to a's node through 'next'.
  const ir::Function& f = *unit.module->find_function("A.f");
  bool linked = false;
  for (std::size_t v = 0; v < f.value_count; ++v) {
    for (analysis::LogicalId id : heap.points_to(f.id, static_cast<ir::ValueId>(v))) {
      if (!heap.node(id).fields.empty()) linked = true;
    }
  }
  EXPECT_TRUE(linked);
}

}  // namespace
}  // namespace rmiopt::frontend
