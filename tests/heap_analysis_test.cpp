// Heap-analysis tests against the paper's own examples: the Figure 2 heap
// graph, the Figure 3/4 termination problem, and the basic data-flow rules
// of §2.
#include <gtest/gtest.h>

#include "analysis/heap_analysis.hpp"
#include "apps/paper_figures.hpp"
#include "ir/builder.hpp"

namespace rmiopt::analysis {
namespace {

using apps::figures::FigureProgram;

TEST(HeapAnalysis, Figure2GraphShape) {
  FigureProgram p = apps::figures::make_figure2();
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();

  // Five allocation sites, no remote calls => exactly five nodes.
  EXPECT_EQ(heap.node_count(), 5u);

  const ir::Function& main = *p.module->find_function("main");
  // %0 = new Foo — singleton points-to set.
  const NodeSet& foo_set = heap.points_to(main.id, 0);
  ASSERT_EQ(foo_set.size(), 1u);
  const HeapNode& foo = heap.node(*foo_set.begin());
  EXPECT_EQ(foo.cls, p.cls("Foo"));

  // Foo.bar -> the Bar allocation; Foo.a -> the [[[D allocation.
  const NodeSet& bar_targets = foo.fields.at(0);
  ASSERT_EQ(bar_targets.size(), 1u);
  EXPECT_EQ(heap.node(*bar_targets.begin()).cls, p.cls("Bar"));

  const NodeSet& a_targets = foo.fields.at(1);
  ASSERT_EQ(a_targets.size(), 1u);
  const HeapNode& a3 = heap.node(*a_targets.begin());
  EXPECT_EQ(a3.cls, p.cls("[[[D"));
  // Note (paper, Fig. 2): the array-of-arrays is represented by one node
  // per allocation site, not one node per runtime array.
  ASSERT_EQ(a3.elems.size(), 1u);
  const HeapNode& a2 = heap.node(*a3.elems.begin());
  EXPECT_EQ(a2.cls, p.cls("[[D"));
  ASSERT_EQ(a2.elems.size(), 1u);
  EXPECT_EQ(heap.node(*a2.elems.begin()).cls, p.cls("[D"));
}

TEST(HeapAnalysis, Figure3TerminatesViaTupleRule) {
  FigureProgram p = apps::figures::make_figure3();
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run(/*max_nodes=*/1000);  // would explode without the tuple rule

  const ir::Function& zoo = *p.module->find_function("zoo");
  const ir::Function& foo = *p.module->find_function("Foo.foo");

  // t's set: the original allocation (2) plus exactly one clone from the
  // return path (4) — "straight after the creation of <4,2> no further
  // tuples are created" (Fig. 4).
  // Find the phi result: value after the allocation.
  const NodeSet& t_loop = heap.points_to(zoo.id, 1);  // %1 = phi
  EXPECT_EQ(t_loop.size(), 2u);

  // foo's parameter: original's clone (3) only; physical ids of all nodes
  // involved equal the single allocation site.
  const NodeSet& param = heap.points_to(foo.id, 0);
  EXPECT_EQ(param.size(), 1u);
  for (LogicalId id : heap.reachable(t_loop)) {
    EXPECT_EQ(heap.node(id).physical, heap.node(*param.begin()).physical);
  }
  // Total nodes: original (2) + param clone (3) + return clone (4).
  EXPECT_EQ(heap.node_count(), 3u);
}

TEST(HeapAnalysis, RemoteCloneMirrorsSubgraphStructure) {
  // Pass a two-level structure through an RMI and check the callee's
  // parameter graph is a structural clone with the same physicals.
  FigureProgram p = apps::figures::make_figure11();
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();

  const ir::Function& foo = *p.module->find_function("Foo.foo");
  const NodeSet& param = heap.points_to(foo.id, 0);
  ASSERT_EQ(param.size(), 1u);
  const HeapNode& bar_clone = heap.node(*param.begin());
  EXPECT_TRUE(bar_clone.is_clone);
  EXPECT_EQ(bar_clone.cls, p.cls("Bar"));
  ASSERT_EQ(bar_clone.fields.at(0).size(), 1u);
  const HeapNode& data_clone = heap.node(*bar_clone.fields.at(0).begin());
  EXPECT_TRUE(data_clone.is_clone);
  EXPECT_EQ(data_clone.cls, p.cls("Data"));
}

TEST(HeapAnalysis, LocalCallsFlowWithoutCloning) {
  om::TypeRegistry types;
  const om::ClassId data = types.define_class("Data", {});
  ir::Module m(types);
  ir::Function& helper = m.add_function("helper", {ir::Type::ref(data)},
                                        ir::Type::ref(data));
  {
    ir::FunctionBuilder b(m, helper);
    b.ret(b.param(0));
  }
  ir::Function& main = m.add_function("main", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(m, main);
    const auto d = b.alloc(data);
    b.call(helper.id, {d});
    b.ret();
  }
  ir::verify(m);
  HeapAnalysis heap(m);
  heap.run();
  // Local (non-RMI) calls have reference semantics: no clone nodes.
  EXPECT_EQ(heap.node_count(), 1u);
  EXPECT_EQ(heap.points_to(helper.id, 0), heap.points_to(main.id, 0));
}

TEST(HeapAnalysis, StaticsCarryPointsToSets) {
  om::TypeRegistry types;
  const om::ClassId data = types.define_class("Data", {});
  ir::Module m(types);
  const ir::GlobalId g = m.add_global("g", ir::Type::ref(data));
  ir::Function& writer = m.add_function("writer", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(m, writer);
    b.store_static(g, b.alloc(data));
    b.ret();
  }
  ir::Function& reader = m.add_function("reader", {}, ir::Type::void_type());
  ir::ValueId loaded;
  {
    ir::FunctionBuilder b(m, reader);
    loaded = b.load_static(g);
    b.ret();
  }
  ir::verify(m);
  HeapAnalysis heap(m);
  heap.run();
  EXPECT_EQ(heap.points_to(reader.id, loaded).size(), 1u);
  EXPECT_EQ(heap.points_to(reader.id, loaded), heap.global_points_to(g));
}

TEST(HeapAnalysis, PhiUnionsItsInputs) {
  om::TypeRegistry types;
  const om::ClassId a_cls = types.define_class("A", {});
  const om::ClassId b_cls = types.define_class("B", {});
  ir::Module m(types);
  ir::Function& f = m.add_function("f", {}, ir::Type::void_type());
  ir::ValueId merged;
  {
    ir::FunctionBuilder b(m, f);
    const auto x = b.alloc(a_cls);
    const auto y = b.alloc(b_cls);
    merged = b.phi({x, y});
    b.ret();
  }
  ir::verify(m);
  HeapAnalysis heap(m);
  heap.run();
  EXPECT_EQ(heap.points_to(f.id, merged).size(), 2u);
}

TEST(HeapAnalysis, FieldStoreLoadRoundTrip) {
  om::TypeRegistry types;
  const om::ClassId data = types.define_class("Data", {});
  const om::ClassId box =
      types.define_class("Box", {{"v", om::TypeKind::Ref, data}});
  ir::Module m(types);
  ir::Function& f = m.add_function("f", {}, ir::Type::void_type());
  ir::ValueId loaded;
  {
    ir::FunctionBuilder b(m, f);
    const auto bx = b.alloc(box);
    const auto d = b.alloc(data);
    b.store_field(bx, "v", d);
    loaded = b.load_field(bx, "v");
    b.ret();
  }
  ir::verify(m);
  HeapAnalysis heap(m);
  heap.run();
  const NodeSet& set = heap.points_to(f.id, loaded);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(heap.node(*set.begin()).cls, data);
}

TEST(HeapAnalysis, ChainedRemoteCallsStayBounded) {
  // a -> remote f -> remote g: two boundary crossings, clones of clones;
  // the tuple rule must still bound the node count.
  om::TypeRegistry types;
  const om::ClassId data = types.define_class("Data", {});
  ir::Module m(types);
  ir::Function& g = m.add_function("g", {ir::Type::ref(data)},
                                   ir::Type::ref(data), true);
  {
    ir::FunctionBuilder b(m, g);
    b.ret(b.param(0));
  }
  ir::Function& f = m.add_function("f", {ir::Type::ref(data)},
                                   ir::Type::ref(data), true);
  {
    ir::FunctionBuilder b(m, f);
    const auto r = b.remote_call(g.id, {b.param(0)}, /*tag=*/2);
    b.ret(r);
  }
  ir::Function& main = m.add_function("main", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(m, main);
    const auto d = b.alloc(data);
    b.set_block("loop");
    const auto ph = b.phi({d});
    const auto r = b.remote_call(f.id, {ph}, /*tag=*/1);
    b.append_phi_input(ph, r);
    b.ret();
  }
  ir::verify(m);
  HeapAnalysis heap(m);
  heap.run(/*max_nodes=*/1000);
  EXPECT_LT(heap.node_count(), 20u);
  EXPECT_LT(heap.iterations(), 50u);
}

TEST(HeapAnalysis, ThrowsIfNotRun) {
  om::TypeRegistry types;
  ir::Module m(types);
  ir::Function& f = m.add_function("f", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(m, f);
    b.ret();
  }
  HeapAnalysis heap(m);
  EXPECT_THROW(heap.points_to(f.id, 0), Error);
}

}  // namespace
}  // namespace rmiopt::analysis
