// Seeded fuzz test for the frame decoder.
//
// The decoder's contract on untrusted input is narrow: for ANY byte image
// — truncated, bit-flipped, or pure noise — decode_frame either returns a
// frame or throws DecodeError.  It must never abort, never throw another
// type, and never read out of bounds (the ASan/UBSan CI job runs this
// file).  The generator is seeded, so a failing image is reproducible.
#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "wire/framing.hpp"

namespace rmiopt::wire {
namespace {

// Decodes `bytes` and reports what happened.  Anything other than a clean
// decode or a DecodeError fails the test on the spot.
enum class Outcome { Decoded, Rejected };

Outcome try_decode(std::vector<std::uint8_t> bytes) {
  ByteBuffer buf(std::move(bytes));
  try {
    (void)decode_frame(buf);
    return Outcome::Decoded;
  } catch (const DecodeError&) {
    return Outcome::Rejected;
  }
  // Any other exception type escapes and fails the test.
}

Frame random_frame(SplitMix64& rng) {
  Frame frame;
  frame.link_seq = rng.next_below(1u << 20);
  const std::size_t count = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < count; ++i) {
    Message m;
    m.header.kind = static_cast<MsgKind>(rng.next_below(4));
    m.header.callsite_id = static_cast<std::uint32_t>(rng.next());
    m.header.target_export = static_cast<std::uint32_t>(rng.next());
    m.header.seq = static_cast<std::uint32_t>(rng.next());
    m.header.source_machine = static_cast<std::uint16_t>(rng.next());
    m.header.dest_machine = static_cast<std::uint16_t>(rng.next());
    const std::size_t payload = rng.next_below(128);
    for (std::size_t b = 0; b < payload; ++b) {
      m.payload.put_u8(static_cast<std::uint8_t>(rng.next()));
    }
    frame.messages.push_back(std::move(m));
  }
  return frame;
}

std::vector<std::uint8_t> image_of(const Frame& frame) {
  return std::move(encode_frame(frame)).take();
}

TEST(FrameFuzz, RandomFramesRoundTrip) {
  SplitMix64 rng(0xF00D);
  for (int iter = 0; iter < 200; ++iter) {
    EXPECT_EQ(try_decode(image_of(random_frame(rng))), Outcome::Decoded)
        << "iter=" << iter;
  }
}

TEST(FrameFuzz, EveryTruncationOfEveryImageIsRejected) {
  SplitMix64 rng(0xBEEF);
  for (int iter = 0; iter < 50; ++iter) {
    const std::vector<std::uint8_t> bytes = image_of(random_frame(rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_EQ(try_decode({bytes.begin(), bytes.begin() + cut}),
                Outcome::Rejected)
          << "iter=" << iter << " cut=" << cut;
    }
  }
}

TEST(FrameFuzz, EverySingleBitFlipIsRejected) {
  // The checksum covers the whole body, catches every 1-bit error by
  // construction, and the two frame tags differ in two bits — so a single
  // flip can never yield a valid image.
  SplitMix64 rng(0xCAFE);
  for (int iter = 0; iter < 20; ++iter) {
    const std::vector<std::uint8_t> bytes = image_of(random_frame(rng));
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      std::vector<std::uint8_t> flipped = bytes;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_EQ(try_decode(std::move(flipped)), Outcome::Rejected)
          << "iter=" << iter << " bit=" << bit;
    }
  }
}

TEST(FrameFuzz, MultiBitDamageIsRejected) {
  SplitMix64 rng(0xD00F);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> bytes = image_of(random_frame(rng));
    const std::size_t flips = 2 + rng.next_below(16);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.next_below(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    // A multi-bit collision with a 32-bit checksum has probability 2^-32
    // per trial; over 500 seeded trials a Decoded outcome means a bug.
    EXPECT_EQ(try_decode(std::move(bytes)), Outcome::Rejected)
        << "iter=" << iter;
  }
}

TEST(FrameFuzz, PureNoiseNeverCrashesTheDecoder) {
  SplitMix64 rng(0x7E57);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.next_below(256));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    // Valid-looking tags make the fuzz reach deeper into the decoder.
    if (!bytes.empty() && rng.next_below(2) == 0) {
      bytes[0] = rng.next_below(2) == 0 ? kSingleFrameTag : kBatchFrameTag;
    }
    (void)try_decode(std::move(bytes));  // only the exception type matters
  }
}

}  // namespace
}  // namespace rmiopt::wire
