// Seeded fuzz test for the frame decoder.
//
// The decoder's contract on untrusted input is narrow: for ANY byte image
// — truncated, bit-flipped, or pure noise — decode_frame either returns a
// frame or throws DecodeError.  It must never abort, never throw another
// type, and never read out of bounds (the ASan/UBSan CI job runs this
// file).  The generator is seeded, so a failing image is reproducible.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serial/class_plans.hpp"
#include "serial/plan.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "wire/framing.hpp"

namespace rmiopt::wire {
namespace {

// Decodes `bytes` and reports what happened.  Anything other than a clean
// decode or a DecodeError fails the test on the spot.
enum class Outcome { Decoded, Rejected };

Outcome try_decode(std::vector<std::uint8_t> bytes) {
  ByteBuffer buf(std::move(bytes));
  try {
    (void)decode_frame(buf);
    return Outcome::Decoded;
  } catch (const DecodeError&) {
    return Outcome::Rejected;
  }
  // Any other exception type escapes and fails the test.
}

Frame random_frame(SplitMix64& rng) {
  Frame frame;
  frame.link_seq = rng.next_below(1u << 20);
  const std::size_t count = 1 + rng.next_below(4);
  for (std::size_t i = 0; i < count; ++i) {
    Message m;
    m.header.kind = static_cast<MsgKind>(rng.next_below(4));
    m.header.callsite_id = static_cast<std::uint32_t>(rng.next());
    m.header.target_export = static_cast<std::uint32_t>(rng.next());
    m.header.seq = static_cast<std::uint32_t>(rng.next());
    m.header.source_machine = static_cast<std::uint16_t>(rng.next());
    m.header.dest_machine = static_cast<std::uint16_t>(rng.next());
    const std::size_t payload = rng.next_below(128);
    for (std::size_t b = 0; b < payload; ++b) {
      m.payload.put_u8(static_cast<std::uint8_t>(rng.next()));
    }
    frame.messages.push_back(std::move(m));
  }
  return frame;
}

std::vector<std::uint8_t> image_of(const Frame& frame) {
  return std::move(encode_frame(frame)).take();
}

TEST(FrameFuzz, RandomFramesRoundTrip) {
  SplitMix64 rng(0xF00D);
  for (int iter = 0; iter < 200; ++iter) {
    EXPECT_EQ(try_decode(image_of(random_frame(rng))), Outcome::Decoded)
        << "iter=" << iter;
  }
}

TEST(FrameFuzz, EveryTruncationOfEveryImageIsRejected) {
  SplitMix64 rng(0xBEEF);
  for (int iter = 0; iter < 50; ++iter) {
    const std::vector<std::uint8_t> bytes = image_of(random_frame(rng));
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_EQ(try_decode({bytes.begin(), bytes.begin() + cut}),
                Outcome::Rejected)
          << "iter=" << iter << " cut=" << cut;
    }
  }
}

TEST(FrameFuzz, EverySingleBitFlipIsRejected) {
  // The checksum covers the whole body, catches every 1-bit error by
  // construction, and the two frame tags differ in two bits — so a single
  // flip can never yield a valid image.
  SplitMix64 rng(0xCAFE);
  for (int iter = 0; iter < 20; ++iter) {
    const std::vector<std::uint8_t> bytes = image_of(random_frame(rng));
    for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
      std::vector<std::uint8_t> flipped = bytes;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_EQ(try_decode(std::move(flipped)), Outcome::Rejected)
          << "iter=" << iter << " bit=" << bit;
    }
  }
}

TEST(FrameFuzz, MultiBitDamageIsRejected) {
  SplitMix64 rng(0xD00F);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> bytes = image_of(random_frame(rng));
    const std::size_t flips = 2 + rng.next_below(16);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.next_below(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    // A multi-bit collision with a 32-bit checksum has probability 2^-32
    // per trial; over 500 seeded trials a Decoded outcome means a bug.
    EXPECT_EQ(try_decode(std::move(bytes)), Outcome::Rejected)
        << "iter=" << iter;
  }
}

// ---- crafted varint encodings ----------------------------------------------
// get_varint's contract: accept only canonical encodings whose value fits
// in 64 bits.  A 10-byte varint has 70 payload bits; the decoder used to
// shift the top 6 silently into the void, so two distinct wire images
// could decode to the same value (a checksum-valid forgery primitive).

std::uint64_t decode_varint(std::vector<std::uint8_t> bytes) {
  ByteBuffer buf(std::move(bytes));
  return buf.get_varint();
}

TEST(VarintFuzz, TenByteMaxValueDecodes) {
  // 2^64 - 1 canonically: nine 0xff bytes (63 bits) + final 0x01 (bit 63).
  std::vector<std::uint8_t> bytes(9, 0xff);
  bytes.push_back(0x01);
  EXPECT_EQ(decode_varint(bytes), UINT64_MAX);
}

TEST(VarintFuzz, SetBitsAboveTwoTo64AreRejected) {
  // Nine 0xff bytes then 0x7f: the 10th byte's bits 1..6 land above 2^64.
  // The old decoder returned UINT64_MAX here — silent truncation.
  std::vector<std::uint8_t> bytes(9, 0xff);
  bytes.push_back(0x7f);
  EXPECT_THROW(decode_varint(bytes), DecodeError);
  // Continuation bit set on the 10th byte: an 11-byte encoding can never
  // fit in 64 bits regardless of what follows.
  std::vector<std::uint8_t> eleven(10, 0xff);
  eleven.push_back(0x01);
  EXPECT_THROW(decode_varint(eleven), DecodeError);
}

TEST(VarintFuzz, OverlongEncodingsAreRejected) {
  // 0x80 0x00 encodes zero in two bytes; the canonical form is one.  The
  // encoder never emits a zero final byte after a continuation, so these
  // only ever arrive from a forger or a corrupted image.
  EXPECT_THROW(decode_varint({0x80, 0x00}), DecodeError);
  EXPECT_THROW(decode_varint({0xff, 0x80, 0x00}), DecodeError);
}

TEST(VarintFuzz, TruncatedVarintUnderflows) {
  EXPECT_THROW(decode_varint({0x80}), DecodeError);
  EXPECT_THROW(decode_varint({}), DecodeError);
}

TEST(VarintFuzz, CanonicalRoundTrip) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{1} << 35, UINT64_MAX - 1,
        UINT64_MAX}) {
    ByteBuffer buf;
    buf.put_varint(v);
    EXPECT_EQ(buf.get_varint(), v) << v;
  }
}

TEST(VarintFuzz, OverlongLinkSeqInValidFrameIsRejected) {
  // Frame-level: a checksum-*valid* image whose link_seq varint is the
  // overlong 0x80 0x00 instead of 0x00.  The checksum passes (we recompute
  // it), so only the varint decoder's canonicality rule can reject it —
  // exactly the hole the old decoder left open.
  Frame frame;
  frame.link_seq = 0;
  Message m;
  m.header.kind = MsgKind::Call;
  m.payload.put_u8(0x42);
  frame.messages.push_back(std::move(m));
  std::vector<std::uint8_t> bytes = image_of(frame);
  // Layout: [tag u8][checksum u32][body...]; body starts with link_seq.
  ASSERT_EQ(bytes[5], 0x00);
  std::vector<std::uint8_t> body(bytes.begin() + 5, bytes.end());
  body[0] = 0x80;
  body.insert(body.begin() + 1, 0x00);
  const std::uint64_t h = fnv1a(body.data(), body.size());
  const auto checksum = static_cast<std::uint32_t>(h ^ (h >> 32));
  ByteBuffer out;
  out.put_u8(bytes[0]);
  out.put_u32(checksum);
  out.put_bytes(body.data(), body.size());
  EXPECT_EQ(try_decode(std::move(out).take()), Outcome::Rejected);
}

// ---- borrowed decode passes that fail midway --------------------------------
// With zero-copy receive armed, the reader may have handed out borrowed
// spans into the pinned frame before the stream turns out to be damaged.
// The abandoned pass must unwind every borrow: no dangling span, every pin
// dropped, the frame free to return to its pool, the heap back to empty.

class BorrowUnwindFuzz : public ::testing::Test {
 protected:
  BorrowUnwindFuzz() : class_plans(types), heap(types) {
    row_id = types.register_prim_array(om::TypeKind::Double);
    mat_id = types.register_ref_array(row_id);
    auto row = std::make_unique<serial::NodePlan>();
    row->expected_class = row_id;
    plan = std::make_unique<serial::NodePlan>();
    plan->expected_class = mat_id;
    plan->elem_plan = std::move(row);
  }

  // A valid 4x32 matrix stream (256-byte rows, all above the borrow
  // threshold), as raw bytes.
  std::vector<std::uint8_t> valid_stream() {
    om::ObjRef m = heap.alloc_array(mat_id, 4);
    for (std::uint32_t r = 0; r < 4; ++r) {
      om::ObjRef row = heap.alloc_array(row_id, 32);
      auto e = row->elems<double>();
      for (std::uint32_t c = 0; c < 32; ++c) e[c] = r * 100.0 + c;
      m->set_elem_ref(r, row);
    }
    serial::SerialStats ws;
    serial::SerialWriter w(class_plans, ws, /*cycle_enabled=*/false);
    ByteBuffer buf;
    w.write(buf, *plan, m);
    heap.free_graph(m);
    return std::move(buf).take();
  }

  // Runs one borrowing decode pass over a pinned view of `bytes`.  After
  // the pass — clean or thrown — the pin must be released and the heap
  // empty; anything else is a dangling borrow or a leak.
  void decode_and_check_unwind(std::vector<std::uint8_t> bytes) {
    auto frame = std::make_shared<std::vector<std::uint8_t>>(std::move(bytes));
    {
      ByteBuffer in = ByteBuffer::view(frame->data(), frame->size(), frame);
      serial::SerialStats rs;
      serial::SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/false);
      r.enable_borrow(/*min_bytes=*/64);
      try {
        om::ObjRef copy = r.read(in, *plan);
        if (copy != nullptr) heap.free_graph(copy);
      } catch (const Error&) {
        // The reader abandoned the pass and unwound its allocations.
      }
    }
    EXPECT_EQ(frame.use_count(), 1) << "dangling borrow pins the frame";
    EXPECT_EQ(heap.stats().live_objects(), 0u) << "abandoned pass leaked";
  }

  om::TypeRegistry types;
  serial::ClassPlanRegistry class_plans;
  om::Heap heap;
  om::ClassId row_id = om::kNoClass;
  om::ClassId mat_id = om::kNoClass;
  std::unique_ptr<serial::NodePlan> plan;
};

TEST_F(BorrowUnwindFuzz, EveryTruncationUnwindsItsBorrows) {
  const std::vector<std::uint8_t> bytes = valid_stream();
  // Rows land mid-stream, so most cuts fail *after* earlier rows already
  // borrowed into the pinned frame.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    decode_and_check_unwind({bytes.begin(), bytes.begin() + cut});
  }
}

TEST_F(BorrowUnwindFuzz, CorruptedStreamsUnwindOrDecodeButNeverDangle) {
  SplitMix64 rng(0xB0BB);
  const std::vector<std::uint8_t> bytes = valid_stream();
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::uint8_t> damaged = bytes;
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.next_below(damaged.size() * 8);
      damaged[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    // Payload-only damage still decodes (serial streams carry no checksum
    // — the frame layer owns integrity); structural damage throws.  Both
    // outcomes must release every pin.
    decode_and_check_unwind(std::move(damaged));
  }
}

TEST(FrameFuzz, PureNoiseNeverCrashesTheDecoder) {
  SplitMix64 rng(0x7E57);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(rng.next_below(256));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    // Valid-looking tags make the fuzz reach deeper into the decoder.
    if (!bytes.empty() && rng.next_below(2) == 0) {
      bytes[0] = rng.next_below(2) == 0 ? kSingleFrameTag : kBatchFrameTag;
    }
    (void)try_decode(std::move(bytes));  // only the exception type matters
  }
}

}  // namespace
}  // namespace rmiopt::wire
