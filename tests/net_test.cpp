// Unit tests for the simulated cluster: virtual clocks, GM-style message
// cost accounting, inbox semantics, and the network model's arithmetic.
#include <gtest/gtest.h>

#include <thread>

#include "net/cluster.hpp"
#include "serial/stats.hpp"

namespace rmiopt::net {
namespace {

serial::CostModel test_cost() {
  serial::CostModel c;
  c.send_overhead_ns = 1000;
  c.msg_latency_ns = 10'000;
  c.wire_byte_ns = 2.0;
  c.recv_poll_ns = 500;
  c.poll_wakeup_ns = 20'000;
  return c;
}

wire::Message make_msg(std::uint16_t from, std::uint16_t to,
                       std::size_t payload_bytes = 0) {
  wire::Message m;
  m.header.kind = wire::MsgKind::Call;
  m.header.source_machine = from;
  m.header.dest_machine = to;
  for (std::size_t i = 0; i < payload_bytes; ++i) m.payload.put_u8(0);
  return m;
}

TEST(VirtualClock, AdvanceAccumulatesAndMergeTakesMax) {
  VirtualClock c;
  c.advance(SimTime::micros(5));
  EXPECT_EQ(c.now().as_micros(), 5.0);
  EXPECT_FALSE(c.merge_at_least(SimTime::micros(3)));  // already past
  EXPECT_TRUE(c.merge_at_least(SimTime::micros(9)));
  EXPECT_EQ(c.now().as_micros(), 9.0);
  c.reset();
  EXPECT_EQ(c.now().as_nanos(), 0);
}

TEST(VirtualClock, ConcurrentAdvancesSumExactly) {
  VirtualClock c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10'000; ++i) c.advance(SimTime::nanos(3));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.now().as_nanos(), 4 * 10'000 * 3);
}

TEST(Cluster, SendChargesSenderAndSchedulesArrival) {
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  Machine& m0 = cluster.machine(0);
  Machine& m1 = cluster.machine(1);

  wire::Message msg = make_msg(0, 1, 100);
  const std::size_t wire_bytes = msg.wire_size();
  cluster.send(std::move(msg));

  // Sender paid only the send overhead.
  EXPECT_EQ(m0.clock().now().as_nanos(), 1000);
  // Receiver was idle: merges to arrival = send_overhead + latency +
  // bytes * wire_byte_ns, plus the (cheap, polled) receive cost.
  const auto env = m1.receive_blocking();
  ASSERT_TRUE(env.has_value());
  const std::int64_t expected_arrival =
      1000 + 10'000 + static_cast<std::int64_t>(2.0 * wire_bytes);
  EXPECT_EQ(env->arrival.as_nanos(), expected_arrival);
  EXPECT_EQ(m1.clock().now().as_nanos(), expected_arrival + 500);
}

TEST(Cluster, PendingMessagePastThresholdPaysKernelWakeup) {
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  Machine& m1 = cluster.machine(1);

  cluster.send(make_msg(0, 1));
  // The receiver was busy far past the 20 µs GM threshold.
  m1.clock().advance(SimTime::millis(1));
  const auto before = m1.clock().now();
  (void)m1.receive_blocking();
  EXPECT_EQ((m1.clock().now() - before).as_nanos(), 20'000);
}

TEST(Cluster, RecentlyPendingMessageIsJustPolled) {
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  Machine& m1 = cluster.machine(1);

  cluster.send(make_msg(0, 1));
  // Busy, but for less than the threshold beyond the arrival time.
  m1.clock().advance(SimTime::micros(25));
  const auto before = m1.clock().now();
  (void)m1.receive_blocking();
  EXPECT_EQ((m1.clock().now() - before).as_nanos(), 500);
}

TEST(Cluster, LargeMessagesPayPerFragmentOverhead) {
  om::TypeRegistry types;
  serial::CostModel cost = test_cost();
  cost.fragment_bytes = 1024;
  cost.fragment_overhead_ns = 700;
  Cluster cluster(2, types, cost);

  cluster.send(make_msg(0, 1, 100));     // 1 fragment
  cluster.send(make_msg(0, 1, 5000));    // spans ~5 fragments
  const auto small = cluster.machine(1).receive_blocking();
  const auto large = cluster.machine(1).receive_blocking();
  const auto small_net =
      small->arrival.as_nanos() - 1000;  // minus sender overhead charge
  const auto large_net = large->arrival.as_nanos() - 2000;
  // Beyond the linear byte cost, the large message pays fragment overheads.
  const std::size_t small_bytes = 100 + wire::kChargedHeaderBytes;
  const std::size_t large_bytes = 5000 + wire::kChargedHeaderBytes;
  const auto expected_delta =
      static_cast<std::int64_t>(2.0 * (large_bytes - small_bytes)) +
      static_cast<std::int64_t>(large_bytes / 1024) * 700;
  EXPECT_EQ(large_net - small_net, expected_delta);
}

TEST(Cluster, BacklogDrainingPollsInsteadOfWaking) {
  // A dispatcher draining messages back-to-back is polling: only the
  // first pickup after a long network-idle period pays the kernel wakeup.
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  Machine& m1 = cluster.machine(1);
  for (int i = 0; i < 4; ++i) cluster.send(make_msg(0, 1));
  m1.clock().advance(SimTime::millis(1));  // busy way past the threshold

  auto before = m1.clock().now();
  (void)m1.receive_blocking();
  EXPECT_EQ((m1.clock().now() - before).as_nanos(), 20'000);  // wakeup once
  for (int i = 0; i < 3; ++i) {
    before = m1.clock().now();
    (void)m1.receive_blocking();
    EXPECT_EQ((m1.clock().now() - before).as_nanos(), 500);  // then polls
  }
}

TEST(Cluster, MessagesArriveInOrderPerSender) {
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  Machine& m1 = cluster.machine(1);
  for (int i = 0; i < 5; ++i) {
    wire::Message m = make_msg(0, 1);
    m.header.seq = static_cast<std::uint32_t>(i);
    cluster.send(std::move(m));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(m1.receive_blocking()->msg.header.seq,
              static_cast<std::uint32_t>(i));
  }
}

TEST(Cluster, ReceiveBlocksUntilDelivery) {
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  Machine& m1 = cluster.machine(1);

  std::atomic<bool> received{false};
  std::thread receiver([&] {
    const auto env = m1.receive_blocking();
    received = env.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(received.load());
  cluster.send(make_msg(0, 1));
  receiver.join();
  EXPECT_TRUE(received.load());
}

TEST(Cluster, CloseDrainsThenReturnsNullopt) {
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  Machine& m1 = cluster.machine(1);
  cluster.send(make_msg(0, 1));
  cluster.shutdown();
  EXPECT_TRUE(m1.receive_blocking().has_value());   // drains the queue
  EXPECT_FALSE(m1.receive_blocking().has_value());  // then reports closed
}

TEST(Cluster, LoopbackSendIsRejected) {
  om::TypeRegistry types;
  Cluster cluster(2, types, test_cost());
  EXPECT_THROW(cluster.send(make_msg(1, 1)), Error);
  EXPECT_THROW(cluster.send(make_msg(0, 7)), Error);
}

TEST(Cluster, NetworkStatsCountTraffic) {
  om::TypeRegistry types;
  Cluster cluster(3, types, test_cost());
  cluster.send(make_msg(0, 1, 10));
  cluster.send(make_msg(1, 2, 20));
  const NetworkStats::Snapshot s = cluster.stats();
  EXPECT_EQ(s.messages, 2u);
  EXPECT_EQ(s.bytes, 2 * wire::kChargedHeaderBytes + 30);
  // Without coalescing every message travels in its own frame.
  EXPECT_EQ(s.frames, 2u);
  EXPECT_EQ(s.coalesced, 0u);
}

TEST(NetworkStats, SnapshotsAccumulate) {
  NetworkStats a, b;
  a.record_frame(1, 100);
  b.record_frame(3, 60);  // a coalesced frame of three messages
  NetworkStats::Snapshot total = a.snapshot();
  total += b.snapshot();
  EXPECT_EQ(total.messages, 4u);
  EXPECT_EQ(total.bytes, 160u);
  EXPECT_EQ(total.frames, 2u);
  EXPECT_EQ(total.coalesced, 3u);
}

TEST(Cluster, MakespanIsTheMaxClock) {
  om::TypeRegistry types;
  Cluster cluster(3, types, test_cost());
  cluster.machine(0).clock().advance(SimTime::micros(5));
  cluster.machine(2).clock().advance(SimTime::micros(11));
  EXPECT_EQ(cluster.makespan().as_micros(), 11.0);
}

TEST(CostModel, ByteCostsScaleLinearly) {
  serial::CostModel c;
  EXPECT_EQ(c.for_wire_bytes(0).as_nanos(), 0);
  EXPECT_EQ(c.for_wire_bytes(1000).as_nanos(),
            static_cast<std::int64_t>(1000 * c.wire_byte_ns));
  EXPECT_EQ(c.for_bytes_copied(800).as_nanos(),
            static_cast<std::int64_t>(800 * c.byte_copy_ns));
}

TEST(CostModel, CpuCostSumsAllEventClasses) {
  serial::CostModel c;
  serial::SerialStats s;
  s.serializer_invocations = 2;
  s.fields_marshaled = 10;
  s.cycle_lookups = 3;
  s.cycle_tables_created = 1;
  s.type_decodes = 2;
  s.objects_allocated = 4;
  s.objects_freed = 5;
  s.bytes_copied = 100;
  const std::int64_t expected =
      2 * c.serializer_invoke_ns + 10 * c.field_marshal_ns +
      3 * c.cycle_probe_ns + 1 * c.cycle_table_setup_ns +
      2 * c.type_decode_ns + 4 * (c.alloc_ns + c.gc_amortized_ns) +
      5 * c.free_ns + static_cast<std::int64_t>(100 * c.byte_copy_ns);
  EXPECT_EQ(s.cpu_cost(c).as_nanos(), expected);
}

TEST(SerialStats, AccumulationIsComponentwise) {
  serial::SerialStats a, b;
  a.cycle_lookups = 3;
  a.objects_reused = 1;
  b.cycle_lookups = 4;
  b.type_info_bytes = 9;
  a += b;
  EXPECT_EQ(a.cycle_lookups, 7u);
  EXPECT_EQ(a.objects_reused, 1u);
  EXPECT_EQ(a.type_info_bytes, 9u);
}

}  // namespace
}  // namespace rmiopt::net
