// Tests for the virtual-time trace recorder (src/trace/): the
// zero-perturbation contract (attaching a recorder observes the
// simulation, never moves it), event/counter agreement, the per-call-site
// profile, per-call-site statistics under concurrent dispatch, and the
// Chrome trace_event exporter.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>

#include "apps/microbench.hpp"
#include "apps/webserver.hpp"
#include "net/fault.hpp"
#include "rmi/runtime.hpp"
#include "trace/profile.hpp"
#include "trace/recorder.hpp"

namespace rmiopt {
namespace {

using codegen::OptLevel;

// ---- zero perturbation ------------------------------------------------------

TEST(Trace, RecorderLeavesTheSimulationUntouched) {
  const apps::ArrayBenchConfig off;
  const apps::RunResult a = apps::run_array_bench(OptLevel::SiteReuseCycle, off);

  trace::MemoryRecorder rec;
  apps::ArrayBenchConfig on;
  on.recorder = &rec;
  const apps::RunResult b = apps::run_array_bench(OptLevel::SiteReuseCycle, on);

  EXPECT_EQ(a.makespan.as_nanos(), b.makespan.as_nanos());
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.net, b.net);
  EXPECT_DOUBLE_EQ(a.check, b.check);
  EXPECT_GT(rec.size(), 0u);  // and yet the trace is not empty
}

// ---- events agree with the runtime counters --------------------------------

TEST(Trace, CallSpansMatchTheRmiCounters) {
  trace::MemoryRecorder rec;
  apps::WebserverConfig cfg;
  cfg.requests = 50;
  cfg.recorder = &rec;
  const apps::RunResult r =
      apps::run_webserver(OptLevel::SiteReuseCycle, cfg);

  const auto calls = rec.events_of(trace::EventKind::Call);
  EXPECT_EQ(calls.size(), r.total.remote_rpcs);
  EXPECT_EQ(rec.events_of(trace::EventKind::LocalCall).size(),
            r.total.local_rpcs);
  EXPECT_EQ(rec.events_of(trace::EventKind::HandlerRun).size(),
            r.total.remote_rpcs);
  for (const auto& e : calls) {
    EXPECT_EQ(e.track, trace::TrackKind::Machine);
    EXPECT_GT(e.dur_ns, 0);  // a remote call always costs virtual time
    EXPECT_NE(e.callsite, trace::Event::kNoCallsite);
    EXPECT_GT(e.bytes, 0u);  // request + reply payload bytes
  }
  // A healthy run has no reliability events.
  EXPECT_TRUE(rec.events_of(trace::EventKind::Retransmit).empty());
  EXPECT_TRUE(rec.events_of(trace::EventKind::DedupDrop).empty());
  EXPECT_TRUE(rec.events_of(trace::EventKind::CallTimeout).empty());
}

TEST(Trace, SerializePassesCarryRealTimeAndVirtualCost) {
  trace::MemoryRecorder rec;
  apps::ArrayBenchConfig cfg;
  cfg.iterations = 10;
  cfg.recorder = &rec;
  apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);

  const auto ser = rec.events_of(trace::EventKind::Serialize);
  const auto deser = rec.events_of(trace::EventKind::Deserialize);
  ASSERT_FALSE(ser.empty());
  ASSERT_FALSE(deser.empty());
  std::uint64_t bytes = 0;
  for (const auto& e : ser) {
    EXPECT_GT(e.dur_ns, 0);   // virtual CPU cost of the pass
    EXPECT_GT(e.real_ns, 0);  // wall-clock duration of the pass
    bytes += e.bytes;
  }
  EXPECT_GT(bytes, 0u);  // the request passes copied the matrix rows
}

// ---- fault fidelity ---------------------------------------------------------

TEST(Trace, FaultEventsAppearOnlyOnTheFaultyLink) {
  trace::MemoryRecorder rec;
  apps::WebserverConfig cfg;
  cfg.requests = 300;
  cfg.faults.seed = 99;
  cfg.faults.set_link(0, 1, {.drop = 0.05, .duplicate = 0.05});
  cfg.recorder = &rec;
  const apps::RunResult r =
      apps::run_webserver(OptLevel::SiteReuseCycle, cfg);
  EXPECT_DOUBLE_EQ(r.check,
                   static_cast<double>(cfg.requests * cfg.page_size));

  const auto retrans = rec.events_of(trace::EventKind::Retransmit);
  ASSERT_GT(r.net.retransmits, 0u);  // the seed must actually drop frames
  EXPECT_EQ(retrans.size(), r.net.retransmits);
  for (const auto& e : retrans) {
    EXPECT_EQ(e.track, trace::TrackKind::Link);
    EXPECT_EQ(e.machine, 0);  // only the faulty direction retransmits
    EXPECT_EQ(e.peer, 1);
    EXPECT_GT(e.dur_ns, 0);  // the span covers the charged backoff
  }
  ASSERT_GT(r.net.dedup_hits, 0u);  // and duplicate frames were suppressed
  const auto dedup = rec.events_of(trace::EventKind::DedupDrop);
  EXPECT_EQ(dedup.size(), r.net.dedup_hits);
  for (const auto& e : dedup) {
    EXPECT_EQ(e.machine, 0);
    EXPECT_EQ(e.peer, 1);
  }
}

// ---- per-call-site profile --------------------------------------------------

TEST(Trace, ProfileAggregatesInvocationsAndLatency) {
  trace::MemoryRecorder rec;
  apps::WebserverConfig cfg;
  cfg.requests = 50;
  cfg.recorder = &rec;
  const apps::RunResult r =
      apps::run_webserver(OptLevel::SiteReuseCycle, cfg);

  const auto rows = trace::build_profile(rec.events());
  ASSERT_FALSE(rows.empty());
  std::uint64_t invocations = 0, remote = 0;
  for (const auto& row : rows) {
    invocations += row.invocations;
    remote += row.remote;
    EXPECT_LE(row.p50_ns, row.p95_ns);
    EXPECT_LE(row.p95_ns, row.max_ns);
  }
  EXPECT_EQ(invocations, r.total.remote_rpcs + r.total.local_rpcs);
  EXPECT_EQ(remote, r.total.remote_rpcs);

  const std::string table = trace::render_profile(
      rows, [](std::uint32_t id) { return "cs" + std::to_string(id); });
  EXPECT_NE(table.find("cs"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
}

// ---- per-call-site statistics under concurrent dispatch ---------------------

// The paper gathered its per-call-site tables "on a separate run with an
// instrumented runtime"; here the per-site ledger must stay consistent
// with the global one even when handlers execute on a worker pool and
// callers race: summing callsite_stats over every site reproduces
// total_stats exactly.
TEST(TraceProfile, SnapshotTotalsEqualTheSumOverCallsitesUnderWorkers) {
  om::TypeRegistry types;
  const om::ClassId cls =
      types.define_class("Payload", {{"x", om::TypeKind::Int}});
  net::Cluster cluster(3, types);
  rmi::ExecutorConfig exec;
  exec.dispatch_workers = 2;
  rmi::RmiSystem sys(cluster, types, exec);

  const auto mid = sys.define_method(
      "noop", [](rmi::CallContext&, auto, auto) {
        return rmi::HandlerResult{};
      });
  auto make_site = [&](const char* name, bool with_arg) {
    rmi::CompiledCallSite cs;
    cs.method_id = mid;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = name;
    cs.plan->needs_cycle_table = true;
    if (with_arg) cs.plan->args.push_back(serial::make_dynamic_node(cls));
    return sys.add_callsite(std::move(cs));
  };
  const auto site_a = make_site("siteA", /*with_arg=*/true);
  const auto site_b = make_site("siteB", /*with_arg=*/false);
  const rmi::RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(cls));
  sys.start();

  std::thread t0([&] {
    om::Heap& h = cluster.machine(0).heap();
    const om::ObjRef arg = h.alloc(cls);
    for (int i = 0; i < 20; ++i) {
      sys.invoke(0, ref, site_a, std::array{arg});
      sys.invoke(0, ref, site_b, {});
    }
    h.free(arg);
  });
  std::thread t2([&] {
    om::Heap& h = cluster.machine(2).heap();
    const om::ObjRef arg = h.alloc(cls);
    for (int i = 0; i < 20; ++i) {
      sys.invoke(2, ref, site_a, std::array{arg});
      sys.invoke(1, ref, site_b, {});  // local at the callee
    }
    h.free(arg);
  });
  t0.join();
  t2.join();
  sys.stop();

  rmi::RmiStatsSnapshot sum;
  for (std::uint32_t i = 0; i < sys.callsite_count(); ++i) {
    sum += sys.callsite_stats(i);
  }
  const rmi::RmiStatsSnapshot total = sys.total_stats();
  EXPECT_EQ(sum, total);
  EXPECT_EQ(total.remote_rpcs, 60u);
  EXPECT_EQ(total.local_rpcs, 20u);
}

// ---- Chrome trace exporter --------------------------------------------------

TEST(Trace, ChromeTraceJsonHasNamedTracksAndMonotoneTimestamps) {
  trace::MemoryRecorder rec;
  apps::WebserverConfig cfg;
  cfg.requests = 30;
  cfg.recorder = &rec;
  apps::run_webserver(OptLevel::SiteReuseCycle, cfg);

  const std::string json = trace::chrome_trace_json(rec.events());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"machine 0\""), std::string::npos);
  EXPECT_NE(json.find("\"link 0->1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants

  // Per-track virtual timestamps are sorted: within each (pid, tid) the
  // exporter emits monotonically non-decreasing `ts`.  Walk the emitted
  // objects (flat except for "args") and track the last ts per tid.
  std::map<long long, double> last_ts;
  std::size_t timed_events = 0;
  for (std::size_t pos = json.find("{\"name\""); pos != std::string::npos;
       pos = json.find("{\"name\"", pos + 1)) {
    const std::size_t end = json.find("}}", pos);
    ASSERT_NE(end, std::string::npos);
    const std::string obj = json.substr(pos, end - pos);
    const std::size_t tid_at = obj.find("\"tid\":");
    const std::size_t ts_at = obj.find("\"ts\":");
    if (tid_at == std::string::npos || ts_at == std::string::npos) continue;
    const long long tid = std::strtoll(obj.c_str() + tid_at + 6, nullptr, 10);
    const double ts = std::strtod(obj.c_str() + ts_at + 5, nullptr);
    EXPECT_GE(ts, 0.0);
    auto [it, fresh] = last_ts.try_emplace(tid, ts);
    if (!fresh) {
      EXPECT_LE(it->second, ts) << "track " << tid << " went backwards";
      it->second = ts;
    }
    ++timed_events;
  }
  EXPECT_GT(timed_events, 0u);
  EXPECT_GT(last_ts.size(), 2u);  // several machine + link tracks
}

}  // namespace
}  // namespace rmiopt
