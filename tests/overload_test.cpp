// Tests for the overload-robustness layer: futures RMI (invoke_async /
// invoke_oneway), virtual-time deadline propagation, cooperative
// cancellation, and deterministic admission control (backpressure up to
// the high-water mark, typed load shedding at the inbox bound).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <mutex>
#include <optional>
#include <thread>

#include "rmi/executor.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt::rmi {
namespace {

using namespace std::chrono_literals;
using om::ClassId;
using om::ObjRef;
using om::TypeKind;

class OverloadTest : public ::testing::Test {
 protected:
  OverloadTest() {
    point_id = types.define_class(
        "Point", {{"x", TypeKind::Double}, {"y", TypeKind::Double}});
  }

  ~OverloadTest() override {
    if (sys) sys->stop();
  }

  // Tests pick their own machine count and executor knobs; most need a
  // non-default configuration, so the system is built per test.
  void boot(std::size_t machines, const ExecutorConfig& exec = {}) {
    if (sys) sys->stop();
    sys.reset();
    cluster.reset();
    cluster.emplace(machines, types);
    sys.emplace(*cluster, types, exec);
  }

  CompiledCallSite site(std::uint32_t method, bool with_ret) {
    CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "overload.site";
    if (with_ret) cs.plan->ret = serial::make_dynamic_node(om::kNoClass);
    cs.plan->needs_cycle_table = true;
    return cs;
  }

  ObjRef make_point(om::Heap& heap, double x, double y) {
    const om::ClassDescriptor& c = types.get(point_id);
    ObjRef p = heap.alloc(c);
    p->set<double>(c.fields[0], x);
    p->set<double>(c.fields[1], y);
    return p;
  }

  om::TypeRegistry types;
  std::optional<net::Cluster> cluster;
  std::optional<RmiSystem> sys;
  ClassId point_id = om::kNoClass;
};

// ---- futures ----------------------------------------------------------------

TEST_F(OverloadTest, PipelinedAsyncCallsResolveInOrder) {
  boot(2);
  const auto mid = sys->define_method(
      "twice", [&](CallContext& ctx, std::span<const std::int64_t> s, auto) {
        ObjRef out = make_point(ctx.heap(), 2.0 * static_cast<double>(s[0]), 0);
        return HandlerResult{.value = out, .give_ownership = true};
      });
  const auto cs = sys->add_callsite(site(mid, /*with_ret=*/true));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  // One app thread pipelines four calls before consuming any reply.
  std::vector<RmiFuture> futs;
  for (std::int64_t i = 0; i < 4; ++i) {
    futs.push_back(
        sys->invoke_async(0, ref, cs, {}, std::array<std::int64_t, 1>{i}));
  }
  const om::ClassDescriptor& c = types.get(point_id);
  om::Heap& h0 = cluster->machine(0).heap();
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(futs[static_cast<std::size_t>(i)].valid());
    ObjRef v = futs[static_cast<std::size_t>(i)].get();
    ASSERT_NE(v, nullptr);
    EXPECT_DOUBLE_EQ(v->get<double>(c.fields[0]), 2.0 * i);
    h0.free_graph(v);
    EXPECT_FALSE(futs[static_cast<std::size_t>(i)].valid());  // consumed
  }
  EXPECT_EQ(sys->stats(0).remote_rpcs, 4u);
  EXPECT_EQ(sys->stats(0).call_timeouts, 0u);
}

TEST_F(OverloadTest, LocalAsyncCallIsReadyImmediately) {
  boot(1);
  const auto ok_mid = sys->define_method(
      "ok", [&](CallContext& ctx, auto, auto) {
        return HandlerResult{.value = make_point(ctx.heap(), 7, 7),
                             .give_ownership = true};
      });
  const auto bad_mid = sys->define_method(
      "bad", [](CallContext&, auto, auto) -> HandlerResult {
        throw Error("handler exploded");
      });
  const auto ok_cs = sys->add_callsite(site(ok_mid, true));
  const auto bad_cs = sys->add_callsite(site(bad_mid, false));
  const RemoteRef ref =
      sys->export_object(0, cluster->machine(0).heap().alloc(point_id));
  sys->start();

  RmiFuture f = sys->invoke_async(0, ref, ok_cs, {});
  EXPECT_TRUE(f.wait_for(0));  // local: the handler already ran inline
  ObjRef v = f.get();
  ASSERT_NE(v, nullptr);
  cluster->machine(0).heap().free_graph(v);

  RmiFuture g = sys->invoke_async(0, ref, bad_cs, {});
  EXPECT_THROW(g.get(), RemoteException);
  EXPECT_EQ(sys->stats(0).local_rpcs, 2u);
}

// ---- oneway -----------------------------------------------------------------

TEST_F(OverloadTest, OnewayRunsTheHandlerAndSendsNoReply) {
  boot(2);
  std::atomic<int> ran{0};
  const auto mid = sys->define_method("fire", [&](CallContext&, auto, auto) {
    ++ran;
    return HandlerResult{};
  });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  sys->invoke_oneway(0, ref, cs, {});
  sys->stop();  // drain the callee before reading anything

  EXPECT_EQ(ran.load(), 1);
  const auto s0 = sys->stats(0);
  EXPECT_EQ(s0.oneway_calls, 1u);
  EXPECT_EQ(s0.remote_rpcs, 1u);
  // No reply of any kind came back: nothing to deliver, nothing stray.
  EXPECT_EQ(s0.stray_replies, 0u);
  EXPECT_EQ(sys->stats(1).undeliverable_replies, 0u);
}

TEST_F(OverloadTest, LocalOnewayRunsInlineAndDiscardsTheOutcome) {
  boot(1);
  std::atomic<int> ran{0};
  const auto mid = sys->define_method(
      "fire", [&](CallContext&, auto, auto) -> HandlerResult {
        ++ran;
        throw Error("discarded");  // oneway: nowhere to surface
      });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(0, cluster->machine(0).heap().alloc(point_id));
  sys->start();

  sys->invoke_oneway(0, ref, cs, {});
  EXPECT_EQ(ran.load(), 1);
  const auto s0 = sys->stats(0);
  EXPECT_EQ(s0.oneway_calls, 1u);
  EXPECT_EQ(s0.local_rpcs, 1u);
}

// ---- the real-time backstop -------------------------------------------------

TEST_F(OverloadTest, NonPositiveCallTimeoutDisablesTheBackstop) {
  // The documented semantics of ExecutorConfig::call_timeout_ms: 0 and
  // negative are equivalent and both mean "wait forever".  A deferred
  // reply landing well after any plausible tiny timeout must still
  // complete the call instead of racing an RmiTimeout.
  for (const std::int64_t timeout_ms : {std::int64_t{0}, std::int64_t{-7}}) {
    ExecutorConfig exec;
    exec.call_timeout_ms = timeout_ms;
    boot(2, exec);
    std::promise<ReplyToken> token_promise;
    const auto mid =
        sys->define_method("defer", [&](CallContext& ctx, auto, auto) {
          token_promise.set_value(ctx.reply_token());
          return HandlerResult{.deferred = true};
        });
    const auto cs = sys->add_callsite(site(mid, false));
    const RemoteRef ref =
        sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
    sys->start();

    std::thread replier([&] {
      ReplyToken token = token_promise.get_future().get();
      std::this_thread::sleep_for(150ms);
      sys->send_reply(token, nullptr);
    });
    EXPECT_EQ(sys->invoke(0, ref, cs, {}), nullptr);
    replier.join();
    EXPECT_EQ(sys->stats(0).call_timeouts, 0u);
    sys->stop();
  }
}

TEST_F(OverloadTest, TimeoutNamesTheCallSiteAndSendsACancel) {
  ExecutorConfig exec;
  exec.call_timeout_ms = 50;
  boot(2, exec);
  const auto mid = sys->define_method("never", [](CallContext&, auto, auto) {
    return HandlerResult{.deferred = true};  // reply never comes
  });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  try {
    sys->invoke(0, ref, cs, {});
    FAIL() << "expected RmiTimeout";
  } catch (const RmiTimeout& e) {
    // Failure messages carry the call-site id and opt level, so a chaos
    // failure is attributable without a trace.
    const std::string what = e.what();
    EXPECT_NE(what.find("site 0 (overload.site, class)"), std::string::npos)
        << what;
    EXPECT_NE(what.find("no reply within 50 ms"), std::string::npos) << what;
  }
  const auto s0 = sys->stats(0);
  EXPECT_EQ(s0.call_timeouts, 1u);
  // The backstop tells the callee to stop computing the unread reply.
  EXPECT_EQ(s0.cancels_sent, 1u);
}

TEST_F(OverloadTest, LateReplyAfterTimeoutIsAStrayNotACrash) {
  // Regression for the cancel/timeout-races-late-reply hazard: the
  // pending slot is erased when the caller gives up, so the reply that
  // eventually arrives must be counted as a stray — never delivered into
  // a moved-from promise — and the system must keep working.
  ExecutorConfig exec;
  exec.call_timeout_ms = 50;
  boot(2, exec);
  std::promise<ReplyToken> token_promise;
  const auto slow_mid =
      sys->define_method("slow", [&](CallContext& ctx, auto, auto) {
        token_promise.set_value(ctx.reply_token());
        return HandlerResult{.deferred = true};
      });
  std::atomic<int> fast_ran{0};
  const auto fast_mid = sys->define_method(
      "fast", [&](CallContext&, auto, auto) {
        ++fast_ran;
        return HandlerResult{};
      });
  const auto slow_cs = sys->add_callsite(site(slow_mid, false));
  const auto fast_cs = sys->add_callsite(site(fast_mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  EXPECT_THROW(sys->invoke(0, ref, slow_cs, {}), RmiTimeout);

  // Now complete the abandoned call: the reply crosses the wire and finds
  // no pending slot.
  sys->send_reply(token_promise.get_future().get(), nullptr);
  for (int i = 0; i < 400 && sys->stats(0).stray_replies == 0; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(sys->stats(0).stray_replies, 1u);

  // The runtime survived the race: a fresh call completes normally.
  EXPECT_EQ(sys->invoke(0, ref, fast_cs, {}), nullptr);
  EXPECT_EQ(fast_ran.load(), 1);
}

// ---- deadlines --------------------------------------------------------------

TEST_F(OverloadTest, CalleeRejectsAnExpiredDeadlineWithoutRunningTheHandler) {
  boot(2);
  std::atomic<int> ran{0};
  const auto mid = sys->define_method("work", [&](CallContext&, auto, auto) {
    ++ran;
    return HandlerResult{};
  });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  // The callee's virtual clock is far ahead of the caller's: by the time
  // the call arrives, its 1 us budget has long expired there.
  cluster->machine(1).clock().advance(SimTime::millis(50));
  try {
    sys->invoke(0, ref, cs, {}, {}, CallOptions{.budget_ns = 1'000});
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadline expired before dispatch"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("overload.site"), std::string::npos) << what;
  }
  sys->stop();
  EXPECT_EQ(ran.load(), 0);  // the handler never ran
  EXPECT_EQ(sys->stats(1).deadline_rejects, 1u);
  EXPECT_EQ(sys->stats(0).call_timeouts, 1u);
}

TEST_F(OverloadTest, NestedCallInheritsTheParentBudgetAndFailsFast) {
  boot(3);
  std::atomic<int> inner_ran{0};
  const auto inner_mid =
      sys->define_method("inner", [&](CallContext&, auto, auto) {
        ++inner_ran;
        return HandlerResult{};
      });
  const auto inner_cs = sys->add_callsite(site(inner_mid, false));
  RemoteRef inner_ref;  // exported below, captured by the outer handler

  const auto outer_mid =
      sys->define_method("outer", [&](CallContext& ctx, auto, auto) {
        // Simulate slow handler work that burns the whole 1 ms budget,
        // then try to fan out: the nested invoke inherits the remaining
        // (now negative) budget through the ambient deadline and must
        // fail fast at the send, typed, without touching machine 2.
        ctx.machine().clock().advance(SimTime::millis(10));
        sys->invoke(1, inner_ref, inner_cs, {});
        return HandlerResult{};
      });
  const auto outer_cs = sys->add_callsite(site(outer_mid, false));

  const RemoteRef outer_ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  inner_ref =
      sys->export_object(2, cluster->machine(2).heap().alloc(point_id));
  sys->start();

  try {
    sys->invoke(0, outer_ref, outer_cs, {}, {},
                CallOptions{.budget_ns = 1'000'000});
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    // The typed verdict of the *nested* hop propagated all the way back.
    const std::string what = e.what();
    EXPECT_NE(what.find("budget exhausted before the send"),
              std::string::npos)
        << what;
  }
  sys->stop();
  EXPECT_EQ(inner_ran.load(), 0);
  // Machine 1, as the would-be caller of the nested hop, refused locally.
  EXPECT_EQ(sys->stats(1).deadline_rejects, 1u);
}

TEST_F(OverloadTest, DefaultDeadlineConfigAppliesToEveryCall) {
  ExecutorConfig exec;
  exec.default_deadline_ns = SimTime::seconds(1).as_nanos();
  boot(2, exec);
  std::atomic<std::int64_t> seen{-1};
  const auto mid = sys->define_method(
      "observe", [&](CallContext& ctx, auto, auto) {
        seen = ctx.deadline_ns();
        return HandlerResult{};
      });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();
  sys->invoke(0, ref, cs, {});
  sys->stop();
  EXPECT_GT(seen.load(), 0);  // the wire header carried the default budget

  // And under the default configuration, calls carry no deadline at all.
  boot(2);
  seen = -1;
  const auto mid2 = sys->define_method(
      "observe", [&](CallContext& ctx, auto, auto) {
        seen = ctx.deadline_ns();
        return HandlerResult{};
      });
  const auto cs2 = sys->add_callsite(site(mid2, false));
  const RemoteRef ref2 =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();
  sys->invoke(0, ref2, cs2, {});
  sys->stop();
  EXPECT_EQ(seen.load(), 0);
}

// ---- cancellation -----------------------------------------------------------

TEST_F(OverloadTest, CancelWhileTheHandlerRunsAbandonsTheReply) {
  ExecutorConfig exec;
  exec.dispatch_workers = 2;  // the dispatcher stays free to see the Cancel
  boot(2, exec);
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool open = false;
  const auto mid = sys->define_method("block", [&](CallContext&, auto, auto) {
    std::unique_lock lock(mu);
    ++entered;
    cv.notify_all();
    cv.wait_for(lock, 10s, [&] { return open; });
    return HandlerResult{};
  });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  RmiFuture f = sys->invoke_async(0, ref, cs, {});
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return entered == 1; }));
  }
  f.cancel();
  f.cancel();  // idempotent: still exactly one CancelRequest
  std::this_thread::sleep_for(200ms);  // let the callee flag the token
  {
    std::scoped_lock lock(mu);
    open = true;
    cv.notify_all();
  }
  try {
    f.get();
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_NE(std::string(e.what()).find("reply abandoned after cancellation"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(sys->stats(0).cancels_sent, 1u);
  sys->stop();
  EXPECT_EQ(sys->stats(1).cancels_honored, 1u);
  EXPECT_EQ(entered, 1);
}

TEST_F(OverloadTest, CancelBeforeExecutionRefusesTheCallAtTheBoundary) {
  ExecutorConfig exec;
  exec.dispatch_workers = 2;
  boot(2, exec);
  std::mutex mu;
  std::condition_variable cv;
  int entered = 0;
  bool open = false;
  const auto mid = sys->define_method("block", [&](CallContext&, auto, auto) {
    std::unique_lock lock(mu);
    ++entered;
    cv.notify_all();
    cv.wait_for(lock, 10s, [&] { return open; });
    return HandlerResult{};
  });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  // Fill both workers, then queue a third call behind them and cancel it
  // while it waits: the worker that eventually picks it up must refuse it
  // at the first poll boundary without running the handler.
  RmiFuture f1 = sys->invoke_async(0, ref, cs, {});
  RmiFuture f2 = sys->invoke_async(0, ref, cs, {});
  {
    std::unique_lock lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, 10s, [&] { return entered == 2; }));
  }
  RmiFuture f3 = sys->invoke_async(0, ref, cs, {});
  f3.cancel();
  std::this_thread::sleep_for(200ms);  // Cancel reaches the free dispatcher
  {
    std::scoped_lock lock(mu);
    open = true;
    cv.notify_all();
  }
  EXPECT_EQ(f1.get(), nullptr);
  EXPECT_EQ(f2.get(), nullptr);
  try {
    f3.get();
    FAIL() << "expected Cancelled";
  } catch (const Cancelled& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled before execution"),
              std::string::npos)
        << e.what();
  }
  sys->stop();
  EXPECT_EQ(entered, 2);  // the cancelled call's handler never ran
  EXPECT_EQ(sys->stats(1).cancels_honored, 1u);
}

// ---- admission control ------------------------------------------------------

TEST_F(OverloadTest, AdmissionBackpressuresAtHighWaterAndShedsAtTheBound) {
  ExecutorConfig exec;
  exec.inbox_bound = 4;
  exec.inbox_highwater = 2;
  exec.credit_stall_ns = 20'000;
  // Service time far beyond the test horizon: the modelled backlog never
  // drains during the burst, so the decisions are exact.
  exec.admission_service_ns = SimTime::seconds(1).as_nanos();
  boot(2, exec);
  const auto mid = sys->define_method(
      "sink", [](CallContext&, auto, auto) { return HandlerResult{}; });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();

  net::VirtualClock& clock = cluster->machine(0).clock();
  const std::int64_t t0 = clock.now().as_nanos();
  // Burst of oneways: depths 0 and 1 admit freely; depths 2 and 3 are at
  // or above the high-water mark, so the sender pays a flow-control
  // credit stall (20 us, then 40 us) but is still admitted; depth 4 hits
  // the bound and is shed with a typed Overload.
  sys->invoke_oneway(0, ref, cs, {});
  sys->invoke_oneway(0, ref, cs, {});
  sys->invoke_oneway(0, ref, cs, {});
  sys->invoke_oneway(0, ref, cs, {});
  try {
    sys->invoke_oneway(0, ref, cs, {});
    FAIL() << "expected Overload";
  } catch (const Overload& e) {
    EXPECT_NE(std::string(e.what()).find("inbox at its bound (4)"),
              std::string::npos)
        << e.what();
  }
  auto s0 = sys->stats(0);
  EXPECT_EQ(s0.credit_stalls, 2u);
  EXPECT_EQ(s0.sheds, 1u);
  EXPECT_EQ(s0.oneway_calls, 4u);  // the shed call was refused pre-send
  // The stalls were charged to the sender's virtual clock: 20 + 40 us.
  EXPECT_GE(clock.now().as_nanos() - t0, 60'000);

  // A cooperative sender that waits out the backlog is admitted freely
  // again: below the bound nothing is shed and nothing stalls.
  clock.advance(SimTime::seconds(5));
  sys->invoke_oneway(0, ref, cs, {});
  s0 = sys->stats(0);
  EXPECT_EQ(s0.credit_stalls, 2u);
  EXPECT_EQ(s0.sheds, 1u);
  EXPECT_EQ(s0.oneway_calls, 5u);
}

TEST_F(OverloadTest, AdmissionDecisionsAreDeterministic) {
  // The same seedless burst against two fresh systems must produce the
  // same decisions counter-for-counter: admission is a pure function of
  // virtual time.
  auto run_burst = [&]() -> RmiStatsSnapshot {
    ExecutorConfig exec;
    exec.inbox_bound = 3;
    exec.admission_service_ns = SimTime::millis(1).as_nanos();
    boot(2, exec);
    const auto mid = sys->define_method(
        "sink", [](CallContext&, auto, auto) { return HandlerResult{}; });
    const auto cs = sys->add_callsite(site(mid, false));
    const RemoteRef ref =
        sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
    sys->start();
    for (int i = 0; i < 10; ++i) {
      try {
        sys->invoke_oneway(0, ref, cs, {});
      } catch (const Overload&) {
        // sheds are counted; keep offering load
      }
    }
    sys->stop();
    RmiStatsSnapshot s = sys->stats(0);
    s.serial = {};  // compare the decision counters, not the byte volumes
    return s;
  };
  const RmiStatsSnapshot first = run_burst();
  const RmiStatsSnapshot second = run_burst();
  EXPECT_GT(first.sheds, 0u);
  EXPECT_EQ(first, second);
}

TEST_F(OverloadTest, DefaultConfigurationKeepsEveryRobustnessCounterAtZero) {
  // Byte-identity guard at the unit level: with the default executor
  // configuration the whole overload layer must be inert.
  boot(2);
  const auto mid = sys->define_method(
      "noop", [](CallContext&, auto, auto) { return HandlerResult{}; });
  const auto cs = sys->add_callsite(site(mid, false));
  const RemoteRef ref =
      sys->export_object(1, cluster->machine(1).heap().alloc(point_id));
  sys->start();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sys->invoke(0, ref, cs, {}), nullptr);
  }
  RmiFuture f = sys->invoke_async(0, ref, cs, {});
  EXPECT_EQ(f.get(), nullptr);
  sys->stop();
  for (std::uint16_t m = 0; m < 2; ++m) {
    const auto s = sys->stats(m);
    EXPECT_EQ(s.deadline_rejects, 0u);
    EXPECT_EQ(s.cancels_sent, 0u);
    EXPECT_EQ(s.cancels_honored, 0u);
    EXPECT_EQ(s.sheds, 0u);
    EXPECT_EQ(s.credit_stalls, 0u);
    EXPECT_EQ(s.oneway_calls, 0u);
  }
}

}  // namespace
}  // namespace rmiopt::rmi
