// Pass-manager tests: fingerprint-keyed analysis sharing, the plan cache's
// cold-vs-cached bit-identity guarantee, invalidation on module mutation,
// and profile-guided re-specialization.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/paper_figures.hpp"
#include "driver/pass_manager.hpp"
#include "trace/recorder.hpp"

namespace rmiopt::driver {
namespace {

using apps::figures::FigureProgram;
using codegen::OptLevel;

std::string render(const CompiledProgram& prog, const om::TypeRegistry& t) {
  std::string out;
  for (const auto& [tag, d] : prog.sites) out += codegen::to_string(d, t);
  return out;
}

std::vector<FigureProgram> all_models() {
  std::vector<FigureProgram> m;
  m.push_back(apps::figures::make_figure14());
  m.push_back(apps::figures::make_figure12());
  m.push_back(apps::figures::make_lu_model());
  m.push_back(apps::figures::make_superopt_model());
  m.push_back(apps::figures::make_webserver_model());
  return m;
}

TEST(PassManager, CachedCompilesAreByteIdenticalToCold) {
  auto models = all_models();
  PassManager::Options off;
  off.cache_analyses = false;
  off.cache_plans = false;
  PassManager uncached(off);
  PassManager cached;  // defaults: everything on
  for (auto& model : models) {
    for (OptLevel level : codegen::kPaperLevels) {
      const CompiledProgram cold = uncached.compile(*model.module, level);
      const CompiledProgram warm = cached.compile(*model.module, level);
      const CompiledProgram replay = cached.compile(*model.module, level);
      EXPECT_EQ(render(cold, *model.types), render(warm, *model.types));
      EXPECT_EQ(render(cold, *model.types), render(replay, *model.types));
      EXPECT_EQ(cold.fingerprint, warm.fingerprint);
    }
  }
}

TEST(PassManager, AnalysesRunOnceAcrossTheLevelSweep) {
  FigureProgram model = apps::figures::make_lu_model();
  PassManager pm;
  for (OptLevel level : codegen::kPaperLevels) {
    pm.compile(*model.module, level);
  }
  const CompileStats s = pm.stats();
  for (PassId id :
       {PassId::Verify, PassId::Heap, PassId::Cycle, PassId::Escape}) {
    EXPECT_EQ(s.pass(id).executions, 1u) << to_string(id);
    EXPECT_EQ(s.pass(id).cache_misses, 1u) << to_string(id);
    EXPECT_EQ(s.pass(id).cache_hits, 4u) << to_string(id);
  }
  // LU has 3 remote call sites; plan generation is per (level, site).
  EXPECT_EQ(s.pass(PassId::PlanGen).executions, 3u * 5u);
  EXPECT_EQ(s.pass(PassId::PlanGen).cache_hits, 0u);

  // A second sweep replays everything, plan generation included.
  for (OptLevel level : codegen::kPaperLevels) {
    const CompiledProgram p = pm.compile(*model.module, level);
    EXPECT_EQ(p.stats.total_executions(), 0u);
    EXPECT_EQ(p.stats.pass(PassId::PlanGen).cache_hits, 3u);
  }
  EXPECT_EQ(pm.cached_modules(), 1u);
  EXPECT_EQ(pm.cached_plans(), 5u);
}

TEST(PassManager, PreciseCyclesIsItsOwnPassAndPlanKey) {
  FigureProgram model = apps::figures::make_figure14();
  PassManager pm;
  const CompiledProgram base = pm.compile(*model.module, OptLevel::SiteCycle);
  EXPECT_EQ(base.stats.pass(PassId::Cycle).executions, 1u);
  EXPECT_EQ(base.stats.pass(PassId::PreciseCycles).executions, 0u);

  CompileOptions opts;
  opts.precise_cycles = true;
  const CompiledProgram precise =
      pm.compile(*model.module, OptLevel::SiteCycle, opts);
  // Same level but a different pass pipeline and a different plan key:
  // the refined analysis runs (no stale reuse of the base variant) and
  // plan generation is a miss, not a hit.
  EXPECT_EQ(precise.stats.pass(PassId::PreciseCycles).executions, 1u);
  EXPECT_EQ(precise.stats.pass(PassId::Cycle).executions, 0u);
  EXPECT_EQ(precise.stats.pass(PassId::PlanGen).executions, 1u);
  EXPECT_EQ(precise.stats.pass(PassId::PlanGen).cache_hits, 0u);
  // The refinement proves the single-site list acyclic — the plans differ,
  // which is exactly why the plan key carries the option.
  EXPECT_NE(render(base, *model.types), render(precise, *model.types));
}

TEST(PassManager, FingerprintIsContentAddressed) {
  FigureProgram a = apps::figures::make_figure12();
  FigureProgram b = apps::figures::make_figure12();
  // Independently built but structurally identical modules hash alike.
  EXPECT_EQ(a.module->fingerprint(), b.module->fingerprint());
  EXPECT_NE(a.module->fingerprint(),
            apps::figures::make_figure14().module->fingerprint());

  // One new allocation site is a semantic change for the heap analysis
  // (alloc-site ids are its logical nodes) — the fingerprint must move.
  b.module->next_alloc_site();
  EXPECT_NE(a.module->fingerprint(), b.module->fingerprint());
}

TEST(PassManager, MarkerClassesDoNotPerturbTheFingerprint) {
  FigureProgram a = apps::figures::make_figure12();
  const std::uint64_t before = a.module->fingerprint();
  // Apps define fieldless export-target classes *after* compilation; they
  // are not referenced by the IR, so the descriptor closure excludes them.
  a.types->define_class("SomeRuntimeMarker", {});
  EXPECT_EQ(a.module->fingerprint(), before);
}

TEST(PassManager, MutationInvalidatesExactlyTheDependentEntries) {
  FigureProgram stable = apps::figures::make_figure12();
  FigureProgram mutating = apps::figures::make_figure12();
  PassManager pm;
  pm.compile(*stable.module, OptLevel::Site);
  // The twin hits on every pass: same content, same fingerprint.
  const CompiledProgram twin = pm.compile(*mutating.module, OptLevel::Site);
  EXPECT_EQ(twin.stats.total_executions(), 0u);

  // Mutate the twin (one new allocation site): its next compile re-runs
  // every analysis and plan generation under the new fingerprint...
  mutating.module->next_alloc_site();
  const CompiledProgram fresh = pm.compile(*mutating.module, OptLevel::Site);
  EXPECT_EQ(fresh.stats.total_hits(), 0u);
  for (PassId id : {PassId::Verify, PassId::Heap, PassId::Cycle,
                    PassId::Escape, PassId::PlanGen}) {
    EXPECT_EQ(fresh.stats.pass(id).executions, 1u) << to_string(id);
  }
  // ...while the untouched module's entries survive and still hit.
  const CompiledProgram still = pm.compile(*stable.module, OptLevel::Site);
  EXPECT_EQ(still.stats.total_executions(), 0u);
  EXPECT_EQ(pm.cached_modules(), 2u);

  // Explicit invalidation drops exactly one module's entries.
  pm.invalidate(fresh.fingerprint);
  EXPECT_EQ(pm.cached_modules(), 1u);
  const CompiledProgram after = pm.compile(*stable.module, OptLevel::Site);
  EXPECT_EQ(after.stats.total_executions(), 0u);
}

TEST(PassManager, RespecializeRecompilesOnlyContradictedSites) {
  FigureProgram model = apps::figures::make_lu_model();
  PassManager pm;
  const CompiledProgram prog =
      pm.compile(*model.module, OptLevel::SiteReuseCycle);
  ASSERT_EQ(prog.sites.size(), 3u);
  const std::uint32_t fetch_tag = model.tag("fetch_row");
  const std::uint32_t flush_tag = model.tag("flush");
  ASSERT_TRUE(prog.site(fetch_tag).plan->reuse_ret);
  ASSERT_TRUE(prog.site(flush_tag).plan->reuse_args);

  // fetch_row ran once: its reuse cache never amortized -> demote.  flush
  // ran plenty -> keep.  barrier: no profile row -> keep.
  rmi::CallSiteProfile profile;
  profile.by_tag[fetch_tag] = {fetch_tag, 1, 1, 0, 0, 0};
  profile.by_tag[flush_tag] = {flush_tag, 500, 500, 400, 0, 0};
  const CompiledProgram re =
      pm.respecialize(prog, *model.module, profile, {});

  // Exactly one site re-ran plan generation; every analysis was a hit.
  EXPECT_EQ(re.stats.pass(PassId::PlanGen).executions, 1u);
  for (PassId id :
       {PassId::Verify, PassId::Heap, PassId::Cycle, PassId::Escape}) {
    EXPECT_EQ(re.stats.pass(id).executions, 0u) << to_string(id);
    EXPECT_EQ(re.stats.pass(id).cache_hits, 1u) << to_string(id);
  }
  EXPECT_EQ(re.sites.size(), prog.sites.size());
  // The demoted site lost its reuse machinery (SiteReuseCycle -> SiteCycle
  // keeps cycle elision), the untouched sites are identical clones.
  EXPECT_FALSE(re.site(fetch_tag).plan->reuse_ret);
  EXPECT_EQ(re.site(fetch_tag).plan->needs_cycle_table,
            prog.site(fetch_tag).plan->needs_cycle_table);
  EXPECT_TRUE(re.site(flush_tag).plan->reuse_args);
  EXPECT_EQ(codegen::to_string(re.site(flush_tag), *model.types),
            codegen::to_string(prog.site(flush_tag), *model.types));
}

TEST(PassManager, RespecializePromotesHotAckSites) {
  FigureProgram model = apps::figures::make_lu_model();
  PassManager pm;
  const CompiledProgram prog =
      pm.compile(*model.module, OptLevel::SiteReuseCycle);
  const std::uint32_t flush_tag = model.tag("flush");
  ASSERT_EQ(prog.site(flush_tag).plan->ret, nullptr);  // ACK-only replies
  ASSERT_FALSE(prog.site(flush_tag).batch_ack);

  rmi::CallSiteProfile profile;
  profile.by_tag[flush_tag] = {flush_tag, 5000, 5000, 0, 0, 0};
  const CompiledProgram re =
      pm.respecialize(prog, *model.module, profile, {});
  EXPECT_EQ(re.stats.pass(PassId::PlanGen).executions, 1u);
  EXPECT_TRUE(re.site(flush_tag).batch_ack);
  // Promotion only flips the reply-batching flag; the marshal plan is the
  // same code.
  EXPECT_EQ(codegen::to_string(re.site(flush_tag), *model.types)
                .find("batch_ack=n"),
            std::string::npos);
  // An agreeing profile is a no-op re-specialization: zero passes run.
  const CompiledProgram again =
      pm.respecialize(re, *model.module, profile, {});
  EXPECT_EQ(again.stats.pass(PassId::PlanGen).executions, 0u);
  EXPECT_TRUE(again.site(flush_tag).batch_ack);
}

TEST(PassManager, RespecializeRejectsAMismatchedModule) {
  FigureProgram model = apps::figures::make_lu_model();
  FigureProgram other = apps::figures::make_lu_model();
  other.module->next_alloc_site();
  PassManager pm;
  const CompiledProgram prog = pm.compile(*model.module, OptLevel::Site);
  EXPECT_THROW(pm.respecialize(prog, *other.module, {}, {}), CompileError);
}

TEST(PassManager, EmitsCompileSpansOnTheCompilerTrack) {
  FigureProgram model = apps::figures::make_figure12();
  trace::MemoryRecorder rec;
  PassManager::Options opts;
  opts.recorder = &rec;
  PassManager pm(opts);
  pm.compile(*model.module, OptLevel::Site);
  const auto passes = rec.events_of(trace::EventKind::CompilePass);
  ASSERT_EQ(passes.size(), 5u);  // verify, heap, cycle, escape, plangen
  for (const auto& e : passes) {
    EXPECT_EQ(e.machine, trace::kCompilerTrack);
    EXPECT_GE(e.dur_ns, 0);
  }
  pm.compile(*model.module, OptLevel::Site);
  EXPECT_EQ(rec.events_of(trace::EventKind::CompileCacheHit).size(), 5u);
}

TEST(PassManager, SiteLookupThrowsTypedCompileError) {
  FigureProgram model = apps::figures::make_figure12();
  PassManager pm;
  const CompiledProgram prog = pm.compile(*model.module, OptLevel::Site);
  EXPECT_THROW(prog.site(0xdead), CompileError);
}

}  // namespace
}  // namespace rmiopt::driver
