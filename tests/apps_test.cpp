// Integration tests for the three benchmark applications: functional
// correctness under every optimization level, plus the qualitative shapes
// of Tables 3–8.
#include <gtest/gtest.h>

#include "apps/lu.hpp"
#include "apps/superopt.hpp"
#include "apps/webserver.hpp"

namespace rmiopt::apps {
namespace {

using codegen::OptLevel;

// ---- LU (§5.2) --------------------------------------------------------------

TEST(Lu, FactorsCorrectlyAtEveryLevel) {
  LuConfig cfg;
  cfg.n = 24;
  for (OptLevel level : codegen::kPaperLevels) {
    const RunResult r = run_lu(level, cfg);
    EXPECT_LT(r.check, 1e-9) << codegen::to_string(level);
  }
}

TEST(Lu, WorksOnOneMachineAllLocal) {
  LuConfig cfg;
  cfg.n = 16;
  cfg.machines = 1;
  const RunResult r = run_lu(OptLevel::SiteReuseCycle, cfg);
  EXPECT_LT(r.check, 1e-9);
  EXPECT_EQ(r.total.remote_rpcs, 0u);
  EXPECT_GT(r.total.local_rpcs, 0u);  // barriers are local RMIs
}

TEST(Lu, WorksOnFourMachines) {
  LuConfig cfg;
  cfg.n = 24;
  cfg.machines = 4;
  const RunResult r = run_lu(OptLevel::SiteReuseCycle, cfg);
  EXPECT_LT(r.check, 1e-9);
}

TEST(Lu, Table3Shape) {
  LuConfig cfg;
  cfg.n = 32;
  const auto t_class = run_lu(OptLevel::Class, cfg).makespan;
  const auto t_site = run_lu(OptLevel::Site, cfg).makespan;
  const auto t_site_cycle = run_lu(OptLevel::SiteCycle, cfg).makespan;
  const auto t_all = run_lu(OptLevel::SiteReuseCycle, cfg).makespan;
  // Table 3: class slowest; site helps most; cycle elision helps further;
  // everything on is fastest.
  EXPECT_LT(t_site, t_class);
  EXPECT_LT(t_site_cycle, t_site);
  EXPECT_LE(t_all, t_site_cycle);
}

TEST(Lu, Table4StatsShape) {
  LuConfig cfg;
  cfg.n = 32;
  const RunResult klass = run_lu(OptLevel::Class, cfg);
  const RunResult site_cycle = run_lu(OptLevel::SiteCycle, cfg);
  const RunResult reuse = run_lu(OptLevel::SiteReuseCycle, cfg);

  // RPC counts are level-independent (Table 4 columns 3-4).
  EXPECT_EQ(klass.total.remote_rpcs, reuse.total.remote_rpcs);
  EXPECT_EQ(klass.total.local_rpcs, reuse.total.local_rpcs);
  // Reuse shrinks deserialization allocation volume and reuses objects.
  EXPECT_EQ(klass.total.serial.objects_reused, 0u);
  EXPECT_GT(reuse.total.serial.objects_reused, 0u);
  EXPECT_LT(reuse.total.serial.bytes_allocated,
            klass.total.serial.bytes_allocated);
  // Cycle elision removes (almost) all cycle lookups; the residue comes
  // from the runtime system's class-mode bootstrap RMIs, exactly like the
  // paper's Table 4 ("The remaining two cycle checks are from two RMIs
  // from the initialization of the Javaparty runtime system").
  EXPECT_GT(klass.total.serial.cycle_lookups,
            5 * site_cycle.total.serial.cycle_lookups);
  EXPECT_GT(site_cycle.total.serial.cycle_lookups, 0u);
  EXPECT_LE(site_cycle.total.serial.cycle_lookups, 16u);
}

// ---- superoptimizer (§5.3) ---------------------------------------------------

TEST(Superopt, InterpreterImplementsTheIsa) {
  std::int64_t regs[kSopRegs] = {5, 9};
  sop_execute({SopInstr{SopOp::Add, 0, {false, 0}, {false, 1}}}, regs);
  EXPECT_EQ(regs[0], 14);
  sop_execute({SopInstr{SopOp::Shl, 1, {false, 1}, {true, 1}}}, regs);
  EXPECT_EQ(regs[1], 18);
  sop_execute({SopInstr{SopOp::Xor, 0, {false, 0}, {false, 0}}}, regs);
  EXPECT_EQ(regs[0], 0);
  sop_execute({SopInstr{SopOp::Mov, 0, {true, 7}, {true, 0}}}, regs);
  EXPECT_EQ(regs[0], 7);
}

TEST(Superopt, FindsKnownEquivalences) {
  // Target r0 = r0 + r0.  Length-1 equivalents over the candidate space
  // must include at least ADD r0,r0,r0 and SHL r0,r0,1.
  SuperoptConfig cfg;
  cfg.max_len = 1;
  const RunResult r = run_superopt(OptLevel::SiteReuseCycle, cfg);
  EXPECT_GE(r.check, 2.0);
  // Candidates plus the tester's name-service bind (runtime bootstrap).
  EXPECT_GE(r.total.remote_rpcs, sop_candidates_per_length());
  EXPECT_LE(r.total.remote_rpcs, sop_candidates_per_length() + 8);
}

TEST(Superopt, ResultIndependentOfOptLevel) {
  SuperoptConfig cfg;
  cfg.max_len = 1;
  const double expected = run_superopt(OptLevel::Class, cfg).check;
  for (OptLevel level : {OptLevel::Site, OptLevel::SiteReuseCycle}) {
    EXPECT_EQ(run_superopt(level, cfg).check, expected)
        << codegen::to_string(level);
  }
}

TEST(Superopt, Table5And6Shape) {
  // Length-2 search: candidate graphs average ~10 objects, as in the
  // paper, which is what makes cycle elision this app's dominant win.
  SuperoptConfig cfg;
  cfg.max_len = 2;
  const RunResult klass = run_superopt(OptLevel::Class, cfg);
  const RunResult site = run_superopt(OptLevel::Site, cfg);
  const RunResult site_cycle = run_superopt(OptLevel::SiteCycle, cfg);
  const RunResult site_reuse = run_superopt(OptLevel::SiteReuse, cfg);
  const RunResult all = run_superopt(OptLevel::SiteReuseCycle, cfg);

  // Table 5: cycle elision is the biggest win for this app; reuse adds
  // nothing (queued arguments escape).
  EXPECT_LT(site.makespan, klass.makespan);
  EXPECT_LT(site_cycle.makespan, site.makespan);
  const auto gain_cycle =
      site.makespan.as_nanos() - site_cycle.makespan.as_nanos();
  const auto gain_site = klass.makespan.as_nanos() - site.makespan.as_nanos();
  EXPECT_GT(gain_cycle, gain_site);  // "12.7% due to cycle detection" vs 6.7%
  // Table 6: no reuse ever happens; cycle lookups collapse with elision.
  EXPECT_EQ(site_reuse.total.serial.objects_reused, 0u);
  EXPECT_EQ(all.total.serial.objects_reused, 0u);
  EXPECT_GT(klass.total.serial.cycle_lookups,
            100 * all.total.serial.cycle_lookups);
  // Residual bootstrap lookups, like the paper's Table 6 value of 17.
  EXPECT_LE(all.total.serial.cycle_lookups, 16u);
}

TEST(Superopt, ScalesToLengthTwoAndMoreTesters) {
  SuperoptConfig cfg;
  cfg.max_len = 2;
  cfg.machines = 3;
  const RunResult r = run_superopt(OptLevel::SiteReuseCycle, cfg);
  const auto per_len = sop_candidates_per_length();
  EXPECT_GE(r.total.remote_rpcs, per_len + per_len * per_len);
  EXPECT_LE(r.total.remote_rpcs, per_len + per_len * per_len + 8);
  EXPECT_GE(r.check, 2.0);
}

// ---- webserver (§5.4) ----------------------------------------------------------

TEST(Webserver, ServesEveryRequestAtEveryLevel) {
  WebserverConfig cfg;
  cfg.requests = 100;
  cfg.pages = 16;
  cfg.page_size = 512;
  for (OptLevel level : codegen::kPaperLevels) {
    const RunResult r = run_webserver(level, cfg);
    EXPECT_EQ(r.check, 100.0 * 512.0) << codegen::to_string(level);
  }
}

TEST(Webserver, Table7Shape) {
  WebserverConfig cfg;
  cfg.requests = 200;
  const auto t_class = run_webserver(OptLevel::Class, cfg).makespan;
  const auto t_site = run_webserver(OptLevel::Site, cfg).makespan;
  const auto t_site_cycle = run_webserver(OptLevel::SiteCycle, cfg).makespan;
  const auto t_all = run_webserver(OptLevel::SiteReuseCycle, cfg).makespan;
  // Table 7: every step helps; cycle elision is large (the page bodies are
  // big serialized graphs); all-on is fastest.
  EXPECT_LT(t_site, t_class);
  EXPECT_LT(t_site_cycle, t_site);
  EXPECT_LT(t_all, t_site_cycle);
}

TEST(Webserver, Table8ReuseEliminatesSteadyStateAllocations) {
  WebserverConfig cfg;
  cfg.requests = 200;
  cfg.pages = 16;
  const RunResult site = run_webserver(OptLevel::Site, cfg);
  const RunResult reuse = run_webserver(OptLevel::SiteReuse, cfg);
  // Table 8: "With object reuse enabled no new objects are created after
  // the first webpage has been retrieved."  First call allocates the url
  // and the page; every later call reuses both.  The constant 3 is the
  // name-service bootstrap (bind string, lookup string, RefBox reply).
  EXPECT_EQ(reuse.total.serial.objects_allocated, 2u + 3u);
  EXPECT_EQ(reuse.total.serial.objects_reused, 2u * (cfg.requests - 1));
  EXPECT_EQ(site.total.serial.objects_allocated, 2u * cfg.requests + 3u);
}

TEST(Webserver, MultipleSlavesShareTheLoad) {
  WebserverConfig cfg;
  cfg.machines = 3;
  cfg.requests = 300;
  const RunResult r = run_webserver(OptLevel::SiteReuseCycle, cfg);
  EXPECT_EQ(r.check, 300.0 * cfg.page_size);
  // Both slaves must have answered something (hash routing spreads URLs).
  EXPECT_GT(r.per_machine[1].serial.objects_reused +
                r.per_machine[1].serial.objects_allocated,
            0u);
  EXPECT_GT(r.per_machine[2].serial.objects_reused +
                r.per_machine[2].serial.objects_allocated,
            0u);
}

}  // namespace
}  // namespace rmiopt::apps
