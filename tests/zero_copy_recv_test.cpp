// Tests for the zero-copy receive path: the FramePool freelist, borrowed
// primitive-array storage (copy-on-write detach, reuse-slot rebind), the
// pin lifetime that keeps receive frames alive exactly as long as some
// object borrows from them, and the end-to-end guarantees — stopping the
// runtime with live borrowed graphs leaks nothing, and duplicated frames
// resolved from the dedup window/reply cache never alias a recycled
// pooled buffer.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "apps/microbench.hpp"
#include "rmi/runtime.hpp"
#include "serial/class_plans.hpp"
#include "serial/plan.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "support/frame_pool.hpp"

namespace rmiopt {
namespace {

// ---- FramePool unit ---------------------------------------------------------

TEST(FramePool, MissThenRecycleThenHit) {
  support::FramePool pool;
  {
    support::FramePool::BlockRef b = pool.acquire(128);
    ASSERT_NE(b, nullptr);
    EXPECT_GE(b->bytes.capacity(), 128u);
    EXPECT_EQ(pool.counters().misses, 1u);
    EXPECT_EQ(pool.counters().hits, 0u);
    EXPECT_EQ(pool.free_blocks(), 0u);  // still pinned by `b`
  }
  // Last ref dropped: the block is back on the freelist...
  EXPECT_EQ(pool.free_blocks(), 1u);
  // ...and the next acquire recycles it, cleared.
  support::FramePool::BlockRef b2 = pool.acquire(64);
  EXPECT_TRUE(b2->bytes.empty());
  EXPECT_EQ(pool.counters().hits, 1u);
  EXPECT_EQ(pool.counters().misses, 1u);
}

TEST(FramePool, CopiesOfTheRefPinTheBlock) {
  support::FramePool pool;
  support::FramePool::BlockRef a = pool.acquire(16);
  support::FramePool::BlockRef borrow = a;  // a second pin, e.g. a message view
  a.reset();
  EXPECT_EQ(pool.free_blocks(), 0u);  // the borrow still holds it
  borrow.reset();
  EXPECT_EQ(pool.free_blocks(), 1u);
}

TEST(FramePool, FreelistIsBounded) {
  support::FramePool pool(/*max_free=*/2);
  std::vector<support::FramePool::BlockRef> live;
  for (int i = 0; i < 5; ++i) live.push_back(pool.acquire(8));
  live.clear();  // five releases against a ring of two
  EXPECT_EQ(pool.free_blocks(), 2u);
}

TEST(FramePool, BlockOutlivesThePool) {
  // A borrowed object can drop the last pin after its machine (and the
  // machine's pool) is gone — the deleter keeps the core alive.
  support::FramePool::BlockRef survivor;
  {
    support::FramePool pool;
    survivor = pool.acquire(32);
    survivor->bytes.assign(32, 0xcd);
  }
  EXPECT_EQ(survivor->bytes[31], 0xcd);
  survivor.reset();  // must not crash or leak
}

// ---- borrowed storage: COW detach and reuse rebind --------------------------

class ZeroCopyRecvTest : public ::testing::Test {
 protected:
  ZeroCopyRecvTest() : class_plans(types), heap(types) {
    row_id = types.register_prim_array(om::TypeKind::Double);
    mat_id = types.register_ref_array(row_id);
  }

  om::ObjRef make_matrix(std::uint32_t rows, std::uint32_t cols,
                         double base) {
    om::ObjRef m = heap.alloc_array(mat_id, rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
      om::ObjRef row = heap.alloc_array(row_id, cols);
      auto e = row->elems<double>();
      for (std::uint32_t c = 0; c < cols; ++c) e[c] = base + r * 100.0 + c;
      m->set_elem_ref(r, row);
    }
    return m;
  }

  std::unique_ptr<serial::NodePlan> matrix_site_plan() {
    auto row = std::make_unique<serial::NodePlan>();
    row->expected_class = row_id;
    auto mat = std::make_unique<serial::NodePlan>();
    mat->expected_class = mat_id;
    mat->elem_plan = std::move(row);
    return mat;
  }

  // Serializes `m` and returns the image as a refcounted "frame": the
  // shared vector stands in for a pooled receive block.
  std::shared_ptr<std::vector<std::uint8_t>> encode_frame_bytes(
      om::ObjRef m, const serial::NodePlan& plan) {
    serial::SerialStats ws;
    serial::SerialWriter w(class_plans, ws, /*cycle_enabled=*/false);
    ByteBuffer buf;
    w.write(buf, plan, m);
    return std::make_shared<std::vector<std::uint8_t>>(std::move(buf).take());
  }

  om::TypeRegistry types;
  serial::ClassPlanRegistry class_plans;
  om::Heap heap;
  om::ClassId row_id = om::kNoClass;
  om::ClassId mat_id = om::kNoClass;
};

TEST_F(ZeroCopyRecvTest, MutationAfterDeliverDetachesWithoutTouchingFrame) {
  om::ObjRef m = make_matrix(2, 32, 0.0);  // 256-byte rows: both borrow
  auto plan = matrix_site_plan();
  auto frame = encode_frame_bytes(m, *plan);
  const std::vector<std::uint8_t> image = *frame;  // replay snapshot

  om::ObjRef copy = nullptr;
  {
    ByteBuffer in = ByteBuffer::view(frame->data(), frame->size(), frame);
    serial::SerialStats rs;
    serial::SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/false);
    r.enable_borrow(/*min_bytes=*/64);
    copy = r.read(in, *plan);
    EXPECT_EQ(rs.recv_segments, 2u);
    EXPECT_EQ(rs.recv_bytes_borrowed, 2u * 32u * sizeof(double));
    EXPECT_EQ(rs.bytes_copied_rx, 0u);
  }
  ASSERT_NE(copy, nullptr);
  om::ObjRef r0 = copy->get_elem_ref(0);
  om::ObjRef r1 = copy->get_elem_ref(1);
  EXPECT_TRUE(r0->is_pinned_borrow());
  EXPECT_TRUE(r1->is_pinned_borrow());
  // test ref + two row pins (the reader's view released its pin already).
  EXPECT_EQ(frame.use_count(), 3);

  // Reads through get_elem (memcpy, alignment-free) do NOT detach...
  EXPECT_DOUBLE_EQ(r0->get_elem<double>(5), 5.0);
  EXPECT_TRUE(r0->is_pinned_borrow());

  // ...but the first mutable access copies on write: the object sees the
  // new value, the frame image — which a retransmit or reply-cache replay
  // would resend — is untouched, and the row's pin is gone.
  r0->elems<double>()[5] = -1.0;
  EXPECT_FALSE(r0->is_pinned_borrow());
  EXPECT_TRUE(r0->has_borrowed_storage());  // detached, not inlined
  EXPECT_DOUBLE_EQ(r0->get_elem<double>(5), -1.0);
  EXPECT_DOUBLE_EQ(r0->get_elem<double>(6), 6.0);  // rest kept
  EXPECT_EQ(image, *frame);
  EXPECT_EQ(frame.use_count(), 2);  // only row 1 still pins

  // Freeing the graph releases the last borrow: the frame can recycle.
  heap.free_graph(copy);
  EXPECT_EQ(frame.use_count(), 1);
  EXPECT_EQ(image, *frame);
  heap.free_graph(m);
  EXPECT_EQ(heap.stats().live_objects(), 0u);
}

TEST_F(ZeroCopyRecvTest, MisalignedBorrowRejectsTypedSpansButReadsViaGetElem) {
  // Borrowed elements sit at arbitrary wire-stream offsets; binding a
  // typed span there would be UB, so elems<T>() fails closed with a typed
  // error while get_elem/memcpy access works and the mutable span — which
  // detaches into aligned owned storage first — keeps working.
  auto buf = std::make_shared<std::vector<std::uint8_t>>(1 + 4 * sizeof(double));
  for (std::uint32_t i = 0; i < 4; ++i) {
    const double v = 10.0 + i;
    std::memcpy(buf->data() + 1 + i * sizeof(double), &v, sizeof(v));
  }
  om::ObjRef a = heap.alloc_array_borrowed(types.get(row_id), 4,
                                           buf->data() + 1, buf);
  EXPECT_TRUE(a->is_pinned_borrow());
  EXPECT_THROW(std::as_const(*a).elems<double>(), Error);
  EXPECT_DOUBLE_EQ(a->get_elem<double>(3), 13.0);
  EXPECT_TRUE(a->is_pinned_borrow());  // get_elem never detaches

  auto e = a->elems<double>();  // mutable: detach first, then aligned
  EXPECT_DOUBLE_EQ(e[0], 10.0);
  EXPECT_FALSE(a->is_pinned_borrow());
  EXPECT_EQ(buf.use_count(), 1);
  heap.free(a);
  EXPECT_EQ(heap.stats().live_objects(), 0u);
}

TEST_F(ZeroCopyRecvTest, ReuseRebindsCachedRowsAndReleasesPriorFrame) {
  om::ObjRef a = make_matrix(2, 32, 0.0);
  om::ObjRef b = make_matrix(2, 32, 5000.0);
  auto plan = matrix_site_plan();
  auto frame_a = encode_frame_bytes(a, *plan);
  auto frame_b = encode_frame_bytes(b, *plan);

  // First delivery: the graph borrows from frame A.
  serial::SerialStats rs1;
  om::ObjRef cached = nullptr;
  {
    ByteBuffer in = ByteBuffer::view(frame_a->data(), frame_a->size(), frame_a);
    serial::SerialReader r(class_plans, heap, rs1, /*cycle_enabled=*/false);
    r.enable_borrow(64);
    cached = r.read(in, *plan);
  }
  EXPECT_EQ(frame_a.use_count(), 3);  // two borrowed rows

  // Second delivery reuses the cached graph: the rows are not rewritten
  // byte by byte but *rebound* to spans in frame B, releasing frame A.
  serial::SerialStats rs2;
  om::ObjRef reused = nullptr;
  {
    ByteBuffer in = ByteBuffer::view(frame_b->data(), frame_b->size(), frame_b);
    serial::SerialReader r(class_plans, heap, rs2, /*cycle_enabled=*/false);
    r.enable_borrow(64);
    reused = r.read_reusing(in, *plan, cached);
  }
  EXPECT_EQ(reused, cached);  // same objects, new storage
  EXPECT_GT(rs2.objects_reused, 0u);
  EXPECT_EQ(rs2.objects_allocated, 0u);
  EXPECT_EQ(rs2.recv_segments, 2u);
  EXPECT_EQ(frame_a.use_count(), 1);  // prior frame free to recycle
  EXPECT_EQ(frame_b.use_count(), 3);
  EXPECT_DOUBLE_EQ(reused->get_elem_ref(1)->get_elem<double>(3), 5103.0);

  heap.free_graph(reused);
  EXPECT_EQ(frame_b.use_count(), 1);
  heap.free_graph(a);
  heap.free_graph(b);
  EXPECT_EQ(heap.stats().live_objects(), 0u);
}

TEST_F(ZeroCopyRecvTest, DetachedCachedRowRebindsBackToAPin) {
  // A cached row that already detached (mutation between calls) must still
  // accept the next delivery — and may borrow again from the new frame.
  om::ObjRef a = make_matrix(1, 32, 0.0);
  om::ObjRef b = make_matrix(1, 32, 7000.0);
  auto plan = matrix_site_plan();
  auto frame_a = encode_frame_bytes(a, *plan);
  auto frame_b = encode_frame_bytes(b, *plan);

  serial::SerialStats rs1;
  om::ObjRef cached = nullptr;
  {
    ByteBuffer in = ByteBuffer::view(frame_a->data(), frame_a->size(), frame_a);
    serial::SerialReader r(class_plans, heap, rs1, false);
    r.enable_borrow(64);
    cached = r.read(in, *plan);
  }
  cached->get_elem_ref(0)->elems<double>()[0] = 9.0;  // detach
  EXPECT_EQ(frame_a.use_count(), 1);

  serial::SerialStats rs2;
  {
    ByteBuffer in = ByteBuffer::view(frame_b->data(), frame_b->size(), frame_b);
    serial::SerialReader r(class_plans, heap, rs2, false);
    r.enable_borrow(64);
    EXPECT_EQ(r.read_reusing(in, *plan, cached), cached);
  }
  om::ObjRef row = cached->get_elem_ref(0);
  EXPECT_TRUE(row->is_pinned_borrow());
  EXPECT_EQ(frame_b.use_count(), 2);
  EXPECT_DOUBLE_EQ(row->get_elem<double>(0), 7000.0);

  heap.free_graph(cached);
  heap.free_graph(a);
  heap.free_graph(b);
  EXPECT_EQ(frame_b.use_count(), 1);
  EXPECT_EQ(heap.stats().live_objects(), 0u);
}

// ---- end to end: runtime shutdown with live borrows -------------------------

TEST(ZeroCopyRecvEndToEnd, StopWithLiveBorrowedGraphsLeaksNothing) {
  om::TypeRegistry types;
  serial::CostModel cost;
  cost.zero_copy_receive = true;
  net::Cluster cluster(2, types, cost);
  rmi::RmiSystem sys(cluster, types);
  const om::ClassId row_id = types.register_prim_array(om::TypeKind::Double);
  const om::ClassId mat_id = types.register_ref_array(row_id);

  int calls = 0;
  const auto mid = sys.define_method(
      "sink", [&](rmi::CallContext&, auto, std::span<const om::ObjRef> args) {
        ++calls;
        EXPECT_DOUBLE_EQ(args[0]->get_elem_ref(1)->get_elem<double>(2),
                         102.0);
        return rmi::HandlerResult{};
      });

  // A site-mode call site (non-HEAVY) with argument reuse: the callee
  // keeps the deserialized — borrowed — graph cached between calls, so
  // stop() runs with a pinned receive frame still live.
  rmi::CompiledCallSite cs;
  cs.method_id = mid;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "zcr.sink";
  {
    auto row = std::make_unique<serial::NodePlan>();
    row->expected_class = row_id;
    auto mat = std::make_unique<serial::NodePlan>();
    mat->expected_class = mat_id;
    mat->elem_plan = std::move(row);
    cs.plan->args.push_back(std::move(mat));
  }
  cs.plan->needs_cycle_table = false;
  cs.plan->reuse_args = true;
  const auto site = sys.add_callsite(std::move(cs));

  om::Heap& callee_heap = cluster.machine(1).heap();
  om::ObjRef target = callee_heap.alloc_array(row_id, 1);
  const rmi::RemoteRef ref = sys.export_object(1, target);
  const std::uint64_t callee_baseline = callee_heap.stats().live_objects();
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  om::ObjRef arg = h0.alloc_array(mat_id, 4);
  for (std::uint32_t r = 0; r < 4; ++r) {
    om::ObjRef row = h0.alloc_array(row_id, 16);  // 128-byte rows: borrow
    auto e = row->elems<double>();
    for (std::uint32_t c = 0; c < 16; ++c) e[c] = r * 100.0 + c;
    arg->set_elem_ref(r, row);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sys.invoke(0, ref, site, std::array{arg}), nullptr);
  }
  EXPECT_EQ(calls, 8);

  // Borrowing engaged and the cached argument graph is still pinning a
  // frame right now.
  const auto callee_stats = sys.stats(1);
  EXPECT_GT(callee_stats.serial.recv_segments, 0u);
  EXPECT_GT(callee_stats.serial.recv_bytes_borrowed, 0u);
  EXPECT_GT(cluster.stats().frame_pool_hits, 0u);  // prior frames recycled
  EXPECT_GT(callee_heap.stats().live_objects(), callee_baseline);

  // stop() drains the dispatchers and frees the reuse caches: every
  // borrowed object goes, every pin drops, nothing leaks.
  sys.stop();
  EXPECT_EQ(callee_heap.stats().live_objects(), callee_baseline);

  h0.free_graph(arg);
  callee_heap.free(target);
}

// ---- end to end: duplicates, dedup, and the reply cache ---------------------

TEST(ZeroCopyRecvEndToEnd, DuplicatedFramesNeverAliasRecycledBuffers) {
  // Duplicate delivery makes the receiver decode the same pooled frame
  // image twice (the dedup window rejects the copy; stale call frames are
  // answered from the reply cache).  With pooling on, the duplicate's view
  // must pin its own ref — if a recycled buffer were aliased, the decoded
  // duplicate would diverge and the app checksum with it.
  apps::ArrayBenchConfig cfg;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.iterations = 120;
  cfg.cost.zero_copy_receive = true;
  cfg.faults.seed = 0xD0B1E;
  cfg.faults.default_link = {.duplicate = 0.15, .reorder = 0.05};

  apps::ArrayBenchConfig clean = cfg;
  clean.cost.zero_copy_receive = false;
  clean.faults = {};

  const apps::RunResult faulty =
      apps::run_array_bench(codegen::OptLevel::SiteReuseCycle, cfg);
  const apps::RunResult reference =
      apps::run_array_bench(codegen::OptLevel::SiteReuseCycle, clean);

  EXPECT_GT(faulty.net.duplicated, 0u);
  EXPECT_GT(faulty.net.dedup_hits, 0u);  // duplicates really were decoded
  EXPECT_GT(faulty.total.serial.recv_segments, 0u);
  EXPECT_GT(faulty.net.frame_pool_hits, 0u);  // ...while the pool recycled
  EXPECT_DOUBLE_EQ(faulty.check, reference.check);
}

}  // namespace
}  // namespace rmiopt
