// API-contract tests: the error behavior a downstream user relies on —
// wrong usage must fail loudly and early, never silently misbehave.
#include <gtest/gtest.h>

#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"
#include "frontend/compile.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt {
namespace {

TEST(ApiContract, RegistryRejectsDoubleDefinition) {
  om::TypeRegistry types;
  const om::ClassId id = types.declare_class("X");
  types.define_fields(id, {{"a", om::TypeKind::Int}});
  EXPECT_THROW(types.define_fields(id, {{"b", om::TypeKind::Int}}), Error);
  EXPECT_THROW(types.get(999), Error);
  EXPECT_EQ(types.find_by_name("nope"), nullptr);
}

TEST(ApiContract, RegistryRejectsArraySubclassing) {
  om::TypeRegistry types;
  const om::ClassId arr = types.register_prim_array(om::TypeKind::Int);
  EXPECT_THROW(types.define_class("Sub", {}, arr), Error);
  const om::ClassId cls = types.define_class("C", {});
  EXPECT_THROW(types.define_fields(cls, {}), Error);  // already defined
}

TEST(ApiContract, HeapRejectsKindMismatches) {
  om::TypeRegistry types;
  om::Heap heap(types);
  const om::ClassId cls = types.define_class("C", {{"x", om::TypeKind::Int}});
  const om::ClassId arr = types.register_prim_array(om::TypeKind::Int);
  EXPECT_THROW(heap.alloc(arr), Error);
  EXPECT_THROW(heap.alloc_array(cls, 4), Error);
  om::ObjRef o = heap.alloc(cls);
  EXPECT_THROW(o->get_ref(o->cls().fields[0]), Error);  // int, not ref
  EXPECT_THROW(o->as_string_view(), Error);
  heap.free(o);
}

TEST(ApiContract, RmiInvokeValidatesArgumentCount) {
  om::TypeRegistry types;
  const om::ClassId cls = types.define_class("C", {});
  net::Cluster cluster(2, types);
  rmi::RmiSystem sys(cluster, types);
  const auto m = sys.define_method(
      "m", [](rmi::CallContext&, auto, auto) { return rmi::HandlerResult{}; });
  rmi::CompiledCallSite cs;
  cs.method_id = m;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "one-arg";
  cs.plan->args.push_back(serial::make_dynamic_node(cls));
  const auto site = sys.add_callsite(std::move(cs));
  const rmi::RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(cls));
  sys.start();
  EXPECT_THROW(sys.invoke(0, ref, site, {}), Error);  // 0 args vs 1
  EXPECT_THROW(sys.invoke(0, ref, 999, {}), Error);   // unknown site
  sys.stop();
}

TEST(ApiContract, RmiSetupOrderingIsEnforced) {
  om::TypeRegistry types;
  net::Cluster cluster(1, types);
  rmi::RmiSystem sys(cluster, types);
  rmi::CompiledCallSite cs;  // null plan
  EXPECT_THROW(sys.add_callsite(std::move(cs)), Error);
  rmi::CompiledCallSite cs2;
  cs2.plan = std::make_unique<serial::CallSitePlan>();
  cs2.method_id = 42;  // no such method
  EXPECT_THROW(sys.add_callsite(std::move(cs2)), Error);
  sys.start();
  EXPECT_THROW(sys.define_method("late", {}), Error);
  EXPECT_THROW(sys.start(), Error);
  sys.stop();
}

TEST(ApiContract, FigureProgramRejectsUnknownTag) {
  apps::figures::FigureProgram p = apps::figures::make_figure12();
  EXPECT_THROW(p.site(777), Error);
  EXPECT_THROW(p.cls("Nope"), std::out_of_range);
}

TEST(ApiContract, UnitTagLookupsAreExact) {
  frontend::Unit unit = frontend::compile_source(R"(
    remote class R { void m(int x) { } }
    class A { static void f() { R r = new R(); r.m(1); } }
  )");
  EXPECT_EQ(unit.tags_for("R.m").size(), 1u);
  EXPECT_TRUE(unit.tags_for("R.missing").empty());
  EXPECT_THROW(unit.func("R.missing"), std::out_of_range);
}

TEST(ApiContract, CompiledProgramRejectsUnknownTag) {
  apps::figures::FigureProgram p = apps::figures::make_figure12();
  const driver::CompiledProgram prog =
      driver::compile(*p.module, codegen::OptLevel::Site);
  // A typed, recoverable error (an unknown tag is an app wiring mistake,
  // not an internal invariant) — still an Error for legacy catch sites.
  EXPECT_THROW(prog.site(123), CompileError);
  EXPECT_THROW(driver::to_runtime_site(prog, 123, 0), CompileError);
}

}  // namespace
}  // namespace rmiopt
