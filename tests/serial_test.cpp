// Tests for the serialization subsystem: cycle table, class-specific plans,
// call-site plans, the three wire protocols, and argument reuse.
#include <gtest/gtest.h>

#include "serial/class_plans.hpp"
#include "serial/cycle_table.hpp"
#include "serial/plan.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace rmiopt::serial {
namespace {

using om::ClassId;
using om::ObjRef;
using om::TypeKind;

// ---- cycle table -----------------------------------------------------------

TEST(CycleTable, AssignsSequentialHandles) {
  om::TypeRegistry types;
  om::Heap heap(types);
  const ClassId c = types.define_class("A", {{"x", TypeKind::Int}});
  ObjRef a = heap.alloc(c), b = heap.alloc(c);

  CycleTable t;
  EXPECT_EQ(t.lookup_or_insert(a), -1);
  EXPECT_EQ(t.lookup_or_insert(b), -1);
  EXPECT_EQ(t.lookup_or_insert(a), 0);
  EXPECT_EQ(t.lookup_or_insert(b), 1);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.probes(), 4u);
  heap.free(a);
  heap.free(b);
}

TEST(CycleTable, GrowsPastInitialCapacity) {
  om::TypeRegistry types;
  om::Heap heap(types);
  const ClassId c = types.define_class("A", {{"x", TypeKind::Int}});
  CycleTable t(8);
  std::vector<ObjRef> objs;
  for (int i = 0; i < 1000; ++i) objs.push_back(heap.alloc(c));
  for (ObjRef o : objs) EXPECT_EQ(t.lookup_or_insert(o), -1);
  for (std::size_t i = 0; i < objs.size(); ++i) {
    EXPECT_EQ(t.lookup_or_insert(objs[i]), static_cast<std::int32_t>(i));
  }
  for (ObjRef o : objs) heap.free(o);
}

TEST(CycleTable, ClearResetsHandles) {
  om::TypeRegistry types;
  om::Heap heap(types);
  const ClassId c = types.define_class("A", {});
  ObjRef a = heap.alloc(c);
  CycleTable t;
  t.lookup_or_insert(a);
  t.clear();
  EXPECT_FALSE(t.contains(a));
  EXPECT_EQ(t.lookup_or_insert(a), -1);
  heap.free(a);
}

// ---- fixtures --------------------------------------------------------------

class SerialTest : public ::testing::Test {
 protected:
  SerialTest() : class_plans(types), heap(types) {}

  // A linked-list node class, as in the paper's Figure 14.
  ClassId define_node() {
    node_id = types.define_class(
        "LinkedList", {{"val", TypeKind::Int}, {"Next", TypeKind::Ref}});
    // Self-referential field type.
    return node_id;
  }

  ObjRef make_list(int n, bool cyclic = false) {
    const om::ClassDescriptor& c = types.get(node_id);
    ObjRef head = nullptr, tail = nullptr;
    for (int i = n - 1; i >= 0; --i) {
      ObjRef node = heap.alloc(c);
      node->set<std::int32_t>(c.fields[0], i);
      node->set_ref(c.fields[1], head);
      head = node;
      if (!tail) tail = node;
    }
    if (cyclic && tail) tail->set_ref(types.get(node_id).fields[1], head);
    return head;
  }

  // double[rows][cols], values = r*100+c.
  ObjRef make_matrix(std::uint32_t rows, std::uint32_t cols) {
    const ClassId row_id = types.register_prim_array(TypeKind::Double);
    const ClassId mat_id = types.register_ref_array(row_id);
    ObjRef m = heap.alloc_array(mat_id, rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
      ObjRef row = heap.alloc_array(row_id, cols);
      auto e = row->elems<double>();
      for (std::uint32_t c = 0; c < cols; ++c) e[c] = r * 100.0 + c;
      m->set_elem_ref(r, row);
    }
    return m;
  }

  // A call-site plan for a linked list: inline nodes, cycle checks on.
  std::unique_ptr<NodePlan> list_site_plan(bool cycle_check) {
    const om::ClassDescriptor& c = types.get(node_id);
    // Build a one-node plan and tie the recursion by cloning a chain deep
    // enough is impossible for unbounded lists — the compiler handles
    // recursive types by falling back to a dynamic node for the recursive
    // field (see codegen); tests mirror that.
    auto plan = std::make_unique<NodePlan>();
    plan->expected_class = node_id;
    plan->cycle_check = cycle_check;
    NodePlan::FieldAction val;
    val.field = &c.fields[0];
    plan->fields.push_back(std::move(val));
    NodePlan::FieldAction next;
    next.field = &c.fields[1];
    next.ref_plan = make_dynamic_node(node_id);
    next.ref_plan->cycle_check = cycle_check;
    plan->fields.push_back(std::move(next));
    return plan;
  }

  // A fully inlined call-site plan for double[][]: Figure 13.
  std::unique_ptr<NodePlan> matrix_site_plan(bool cycle_check) {
    const ClassId row_id = types.register_prim_array(TypeKind::Double);
    const ClassId mat_id = types.register_ref_array(row_id);
    auto row = std::make_unique<NodePlan>();
    row->expected_class = row_id;
    row->cycle_check = cycle_check;
    auto mat = std::make_unique<NodePlan>();
    mat->expected_class = mat_id;
    mat->cycle_check = cycle_check;
    mat->elem_plan = std::move(row);
    return mat;
  }

  om::TypeRegistry types;
  ClassPlanRegistry class_plans;
  om::Heap heap;
  ClassId node_id = om::kNoClass;
};

// ---- class-specific (COMPACT) protocol -------------------------------------

TEST_F(SerialTest, ClassModeRoundTripsList) {
  define_node();
  ObjRef list = make_list(10);
  auto root = make_dynamic_node(node_id);

  SerialStats ws;
  SerialWriter w(class_plans, ws, /*cycle_enabled=*/true);
  ByteBuffer buf;
  w.write(buf, *root, list);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/true);
  ObjRef copy = r.read(buf, *root);

  EXPECT_TRUE(om::deep_equals(list, copy));
  EXPECT_EQ(ws.serializer_invocations, 10u);  // one per object
  EXPECT_EQ(ws.cycle_lookups, 10u);
  EXPECT_EQ(rs.objects_allocated, 10u);
  EXPECT_EQ(rs.type_decodes, 10u);
  EXPECT_GT(ws.type_info_bytes, 0u);
  heap.free_graph(list);
  heap.free_graph(copy);
}

TEST_F(SerialTest, ClassModeRoundTripsCyclicList) {
  define_node();
  ObjRef ring = make_list(5, /*cyclic=*/true);
  auto root = make_dynamic_node(node_id);

  SerialStats ws;
  SerialWriter w(class_plans, ws, true);
  ByteBuffer buf;
  w.write(buf, *root, ring);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read(buf, *root);
  EXPECT_TRUE(om::deep_equals(ring, copy));
  // 5 inserts + 1 re-probe when the cycle closes.
  EXPECT_EQ(ws.cycle_lookups, 6u);
  EXPECT_EQ(rs.objects_allocated, 5u);
  heap.free_graph(ring);
  heap.free_graph(copy);
}

TEST_F(SerialTest, ClassModePreservesSharing) {
  define_node();
  const ClassId arr = types.register_ref_array(node_id);
  ObjRef shared = make_list(1);
  ObjRef root_obj = heap.alloc_array(arr, 2);
  root_obj->set_elem_ref(0, shared);
  root_obj->set_elem_ref(1, shared);

  auto root = make_dynamic_node(arr);
  SerialStats ws;
  SerialWriter w(class_plans, ws, true);
  ByteBuffer buf;
  w.write(buf, *root, root_obj);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read(buf, *root);
  EXPECT_EQ(copy->get_elem_ref(0), copy->get_elem_ref(1));
  // Sharing means only 2 objects cross the wire, not 3.
  EXPECT_EQ(rs.objects_allocated, 2u);
  heap.free_graph(root_obj);
  heap.free_graph(copy);
}

TEST_F(SerialTest, ClassModeHandlesPolymorphism) {
  const ClassId base = types.define_class("Base", {{"data", TypeKind::Int}});
  const ClassId derived =
      types.define_class("Derived", {{"extra", TypeKind::Int}}, base);
  const om::ClassDescriptor& dc = types.get(derived);
  ObjRef d = heap.alloc(dc);
  d->set<std::int32_t>(dc.fields[0], 1);
  d->set<std::int32_t>(dc.fields[1], 2);

  // Declared type Base, runtime type Derived: class mode must transmit the
  // runtime type and reconstruct a Derived.
  auto root = make_dynamic_node(base);
  SerialStats ws;
  SerialWriter w(class_plans, ws, true);
  ByteBuffer buf;
  w.write(buf, *root, d);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read(buf, *root);
  EXPECT_EQ(copy->class_id(), derived);
  EXPECT_TRUE(om::deep_equals(d, copy));
  heap.free(d);
  heap.free(copy);
}

TEST_F(SerialTest, NullReferencesSurvive) {
  define_node();
  ObjRef one = make_list(1);  // Next == null
  auto root = make_dynamic_node(node_id);
  SerialStats ws;
  SerialWriter w(class_plans, ws, true);
  ByteBuffer buf;
  w.write(buf, *root, one);
  w.write(buf, *root, nullptr);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read(buf, *root);
  EXPECT_TRUE(om::deep_equals(one, copy));
  EXPECT_EQ(r.read(buf, *root), nullptr);
  heap.free_graph(one);
  heap.free_graph(copy);
}

// ---- call-site (BARE) protocol ---------------------------------------------

TEST_F(SerialTest, SitePlanRoundTripsMatrixWithoutTypeInfo) {
  ObjRef m = make_matrix(16, 16);
  auto plan = matrix_site_plan(/*cycle_check=*/false);

  SerialStats ws;
  SerialWriter w(class_plans, ws, /*cycle_enabled=*/false);
  ByteBuffer buf;
  w.write(buf, *plan, m);

  EXPECT_EQ(ws.type_info_bytes, 0u);        // §3.1: no type info on wire
  EXPECT_EQ(ws.serializer_invocations, 0u); // fully inlined
  EXPECT_EQ(ws.cycle_lookups, 0u);          // §3.2: cycle detection elided
  EXPECT_EQ(ws.bytes_copied, 16u * 16u * 8u);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, false);
  ObjRef copy = r.read(buf, *plan);
  EXPECT_TRUE(om::deep_equals(m, copy));
  EXPECT_EQ(rs.objects_allocated, 17u);
  heap.free_graph(m);
  heap.free_graph(copy);
}

TEST_F(SerialTest, SiteProtocolIsSmallerThanClassProtocol) {
  ObjRef m = make_matrix(16, 16);
  const ClassId row_id = types.register_prim_array(TypeKind::Double);
  const ClassId mat_id = types.register_ref_array(row_id);

  ByteBuffer site_buf, class_buf;
  SerialStats s1, s2;
  auto site = matrix_site_plan(false);
  SerialWriter w1(class_plans, s1, false);
  w1.write(site_buf, *site, m);
  auto klass = make_dynamic_node(mat_id);
  SerialWriter w2(class_plans, s2, true);
  w2.write(class_buf, *klass, m);

  EXPECT_LT(site_buf.size(), class_buf.size());
  EXPECT_EQ(class_buf.size() - site_buf.size(), s2.type_info_bytes);
  heap.free_graph(m);
}

TEST_F(SerialTest, SitePlanWithCycleChecksRoundTripsRing) {
  define_node();
  ObjRef ring = make_list(4, /*cyclic=*/true);
  auto plan = list_site_plan(/*cycle_check=*/true);

  SerialStats ws;
  SerialWriter w(class_plans, ws, /*cycle_enabled=*/true);
  ByteBuffer buf;
  w.write(buf, *plan, ring);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read(buf, *plan);
  EXPECT_TRUE(om::deep_equals(ring, copy));
  heap.free_graph(ring);
  heap.free_graph(copy);
}

TEST_F(SerialTest, SitePlanTypeMismatchIsACompilerBugAndThrows) {
  define_node();
  const ClassId other = types.define_class("Other", {{"x", TypeKind::Int}});
  ObjRef o = heap.alloc(other);
  auto plan = list_site_plan(false);
  SerialStats ws;
  SerialWriter w(class_plans, ws, false);
  ByteBuffer buf;
  EXPECT_THROW(w.write(buf, *plan, o), Error);
  heap.free(o);
}

// ---- HEAVY (introspective) protocol ----------------------------------------

TEST_F(SerialTest, IntrospectiveRoundTripsAndIsHeaviest) {
  define_node();
  ObjRef list = make_list(10);

  ByteBuffer heavy_buf, compact_buf;
  SerialStats hs, cs;
  SerialWriter wh(class_plans, hs, true);
  wh.write_introspective(heavy_buf, list);
  auto root = make_dynamic_node(node_id);
  SerialWriter wc(class_plans, cs, true);
  wc.write(compact_buf, *root, list);

  EXPECT_GT(heavy_buf.size(), compact_buf.size());
  EXPECT_GT(hs.introspected_fields, 0u);
  EXPECT_EQ(cs.introspected_fields, 0u);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read_introspective(heavy_buf);
  EXPECT_TRUE(om::deep_equals(list, copy));
  heap.free_graph(list);
  heap.free_graph(copy);
}

TEST_F(SerialTest, IntrospectiveRoundTripsCycles) {
  define_node();
  ObjRef ring = make_list(3, true);
  SerialStats ws;
  SerialWriter w(class_plans, ws, true);
  ByteBuffer buf;
  w.write_introspective(buf, ring);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read_introspective(buf);
  EXPECT_TRUE(om::deep_equals(ring, copy));
  heap.free_graph(ring);
  heap.free_graph(copy);
}

TEST_F(SerialTest, StringsSerializeAsBulkBytes) {
  ObjRef s = heap.alloc_string("GET /index.html HTTP/1.0");
  auto root = make_dynamic_node(types.string_class());
  SerialStats ws;
  SerialWriter w(class_plans, ws, true);
  ByteBuffer buf;
  w.write(buf, *root, s);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  ObjRef copy = r.read(buf, *root);
  EXPECT_EQ(copy->as_string_view(), "GET /index.html HTTP/1.0");
  heap.free(s);
  heap.free(copy);
}

// ---- argument reuse (§3.3, Figure 13) ---------------------------------------

TEST_F(SerialTest, ReuseRewritesCachedMatrixInPlace) {
  ObjRef m1 = make_matrix(16, 16);
  ObjRef m2 = make_matrix(16, 16);
  m2->get_elem_ref(3)->elems<double>()[7] = -42.0;
  auto plan = matrix_site_plan(false);

  // First call: cold, allocates.
  ByteBuffer b1;
  SerialStats s1;
  SerialWriter w1(class_plans, s1, false);
  w1.write(b1, *plan, m1);
  SerialStats r1;
  SerialReader rd1(class_plans, heap, r1, false);
  ObjRef cached = rd1.read_reusing(b1, *plan, nullptr);
  EXPECT_EQ(r1.objects_allocated, 17u);
  EXPECT_EQ(r1.objects_reused, 0u);

  // Second call: same shape, everything reused, zero allocations.
  ByteBuffer b2;
  SerialStats s2;
  SerialWriter w2(class_plans, s2, false);
  w2.write(b2, *plan, m2);
  SerialStats r2;
  SerialReader rd2(class_plans, heap, r2, false);
  ObjRef result = rd2.read_reusing(b2, *plan, cached);
  EXPECT_EQ(result, cached);  // same root object
  EXPECT_EQ(r2.objects_allocated, 0u);
  EXPECT_EQ(r2.objects_reused, 17u);
  EXPECT_TRUE(om::deep_equals(result, m2));
  heap.free_graph(m1);
  heap.free_graph(m2);
  heap.free_graph(result);
}

TEST_F(SerialTest, ReuseReallocatesOnSizeMismatch) {
  ObjRef m1 = make_matrix(16, 16);
  ObjRef m2 = make_matrix(16, 8);  // same row count, shorter rows
  auto plan = matrix_site_plan(false);

  ByteBuffer b1;
  SerialStats s;
  SerialWriter w1(class_plans, s, false);
  w1.write(b1, *plan, m1);
  SerialStats r1;
  SerialReader rd1(class_plans, heap, r1, false);
  ObjRef cached = rd1.read_reusing(b1, *plan, nullptr);

  ByteBuffer b2;
  SerialWriter w2(class_plans, s, false);
  w2.write(b2, *plan, m2);
  SerialStats r2;
  SerialReader rd2(class_plans, heap, r2, false);
  ObjRef result = rd2.read_reusing(b2, *plan, cached);

  // Outer array reused (length 16 matches); 16 rows reallocated at the new
  // size; the 16 orphaned cached rows are freed.
  EXPECT_EQ(r2.objects_reused, 1u);
  EXPECT_EQ(r2.objects_allocated, 16u);
  EXPECT_EQ(r2.objects_freed, 16u);
  EXPECT_TRUE(om::deep_equals(result, m2));
  heap.free_graph(m1);
  heap.free_graph(m2);
  heap.free_graph(result);
}

TEST_F(SerialTest, ReuseHandlesShrinkingList) {
  define_node();
  ObjRef l1 = make_list(10);
  ObjRef l2 = make_list(4);
  auto plan = list_site_plan(/*cycle_check=*/true);

  ByteBuffer b1;
  SerialStats s;
  SerialWriter w1(class_plans, s, true);
  w1.write(b1, *plan, l1);
  SerialStats r1;
  SerialReader rd1(class_plans, heap, r1, true);
  ObjRef cached = rd1.read_reusing(b1, *plan, nullptr);
  EXPECT_EQ(r1.objects_allocated, 10u);

  ByteBuffer b2;
  SerialWriter w2(class_plans, s, true);
  w2.write(b2, *plan, l2);
  SerialStats r2;
  SerialReader rd2(class_plans, heap, r2, true);
  ObjRef result = rd2.read_reusing(b2, *plan, cached);
  EXPECT_TRUE(om::deep_equals(result, l2));
  EXPECT_EQ(r2.objects_reused, 4u);
  EXPECT_EQ(r2.objects_freed, 6u);  // orphaned tail released
  heap.free_graph(l1);
  heap.free_graph(l2);
  heap.free_graph(result);
}

TEST_F(SerialTest, ReuseHandlesGrowingList) {
  define_node();
  ObjRef l1 = make_list(4);
  ObjRef l2 = make_list(9);
  auto plan = list_site_plan(true);

  ByteBuffer b1;
  SerialStats s;
  SerialWriter w1(class_plans, s, true);
  w1.write(b1, *plan, l1);
  SerialStats r1;
  SerialReader rd1(class_plans, heap, r1, true);
  ObjRef cached = rd1.read_reusing(b1, *plan, nullptr);

  ByteBuffer b2;
  SerialWriter w2(class_plans, s, true);
  w2.write(b2, *plan, l2);
  SerialStats r2;
  SerialReader rd2(class_plans, heap, r2, true);
  ObjRef result = rd2.read_reusing(b2, *plan, cached);
  EXPECT_TRUE(om::deep_equals(result, l2));
  EXPECT_EQ(r2.objects_reused, 4u);
  EXPECT_EQ(r2.objects_allocated, 5u);
  heap.free_graph(l1);
  heap.free_graph(l2);
  heap.free_graph(result);
}

TEST_F(SerialTest, ReuseRejectsTypeMismatch) {
  define_node();
  const ClassId other =
      types.define_class("Other", {{"val", TypeKind::Int},
                                   {"Next", TypeKind::Ref}});
  ObjRef cached_obj = heap.alloc(other);

  ObjRef l = make_list(1);
  auto plan = list_site_plan(false);
  ByteBuffer b;
  SerialStats s;
  SerialWriter w(class_plans, s, false);
  w.write(b, *plan, l);
  SerialStats rs;
  SerialReader rd(class_plans, heap, rs, false);
  ObjRef result = rd.read_reusing(b, *plan, cached_obj);
  EXPECT_NE(result, cached_obj);
  EXPECT_EQ(rs.objects_reused, 0u);
  EXPECT_EQ(rs.objects_allocated, 1u);
  EXPECT_EQ(rs.objects_freed, 1u);  // mismatched cache released
  heap.free_graph(l);
  heap.free_graph(result);
}

// ---- pseudocode printer ----------------------------------------------------

TEST_F(SerialTest, PseudocodeShowsInliningAndElision) {
  auto site = std::make_unique<CallSitePlan>();
  site->name = "ArrayBench.benchmark.send#0";
  site->args.push_back(matrix_site_plan(false));
  site->needs_cycle_table = false;
  site->reuse_args = true;
  const std::string code = to_pseudocode(*site, types);
  EXPECT_NE(code.find("cycle detection elided"), std::string::npos);
  EXPECT_NE(code.find("bulk copy, inlined"), std::string::npos);
  EXPECT_NE(code.find("wait_for_ack"), std::string::npos);

  define_node();
  auto classy = std::make_unique<CallSitePlan>();
  classy->name = "class_mode";
  classy->args.push_back(make_dynamic_node(node_id));
  classy->ret = make_dynamic_node(node_id);
  const std::string code2 = to_pseudocode(*classy, types);
  EXPECT_NE(code2.find("dynamic call"), std::string::npos);
  EXPECT_NE(code2.find("wait_for_return_value"), std::string::npos);
}

}  // namespace
}  // namespace rmiopt::serial
