// Codegen x serialization fuzz harness.
//
// For randomized MiniParty-shaped programs we let the compiler generate
// call-site plans, then *synthesize* random runtime object graphs that
// conform to each plan (exact classes at inline nodes, arbitrary
// subclasses at dynamic nodes, bounded recursion at recursive nodes) and
// round-trip them through the serializer at every optimization level.
// Invariant: whatever the compiler claims it can specialize, the runtime
// must transfer losslessly.
#include <gtest/gtest.h>

#include "driver/compile.hpp"
#include "ir/builder.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "support/rng.hpp"

namespace rmiopt {
namespace {

// Builds a random program: a class hierarchy with reference fields, one
// remote method, and a caller that constructs a random (acyclic) object
// graph and ships it.
struct RandomProgram {
  std::unique_ptr<om::TypeRegistry> types;
  std::unique_ptr<ir::Module> module;
  std::vector<om::ClassId> classes;
  om::ClassId root_class = om::kNoClass;
  std::uint32_t tag = 1;

  explicit RandomProgram(SplitMix64& rng) {
    types = std::make_unique<om::TypeRegistry>();
    module = std::make_unique<ir::Module>(*types);

    // 2-5 classes, each with 0-2 prim fields and 0-2 ref fields targeting
    // earlier classes (guaranteeing an acyclic class graph).
    const int n_classes = 2 + static_cast<int>(rng.next_below(4));
    for (int c = 0; c < n_classes; ++c) {
      std::vector<om::FieldSpec> fields;
      const int prims = static_cast<int>(rng.next_below(3));
      for (int p = 0; p < prims; ++p) {
        std::string pname = "p";
        pname += std::to_string(p);
        fields.push_back({pname,
                          rng.next_below(2) ? om::TypeKind::Long
                                            : om::TypeKind::Double,
                          om::kNoClass});
      }
      if (c > 0) {
        const int refs = static_cast<int>(rng.next_below(3));
        for (int r = 0; r < refs; ++r) {
          // Built with += rather than `"r" + std::to_string(r)`: GCC 12's
          // -Wrestrict false-positives on char*+string&& once inlined.
          std::string fname = "r";
          fname += std::to_string(r);
          fields.push_back({fname, om::TypeKind::Ref,
                            classes[rng.next_below(classes.size())]});
        }
      }
      std::string cname = "C";
      cname += std::to_string(c);
      classes.push_back(types->define_class(cname, fields));
    }
    root_class = classes.back();

    ir::Function& callee = module->add_function(
        "R.recv", {ir::Type::ref(root_class)}, ir::Type::void_type(),
        /*is_remote_method=*/true);
    {
      ir::FunctionBuilder b(*module, callee);
      b.ret();
    }
    ir::Function& caller =
        module->add_function("main", {}, ir::Type::void_type());
    {
      ir::FunctionBuilder b(*module, caller);
      // Allocate one object per class and wire random constructor-order
      // edges so the heap analysis sees a rich (acyclic) graph.
      std::vector<ir::ValueId> vals;
      for (om::ClassId cls : classes) {
        const ir::ValueId v = b.alloc(cls);
        const om::ClassDescriptor& d = types->get(cls);
        for (const auto& f : d.fields) {
          if (f.kind != om::TypeKind::Ref) continue;
          // point to some earlier value of a compatible class (or null)
          std::vector<ir::ValueId> candidates;
          for (std::size_t i = 0; i < vals.size(); ++i) {
            if (types->is_subclass_of(classes[i], f.ref_class)) {
              candidates.push_back(vals[i]);
            }
          }
          if (!candidates.empty() && rng.next_below(3) != 0) {
            b.store_field(v, f.name,
                          candidates[rng.next_below(candidates.size())]);
          }
        }
        vals.push_back(v);
      }
      b.remote_call(callee.id, {vals.back()}, tag);
      b.ret();
    }
  }
};

// Synthesizes a random object graph conforming to `plan`.
om::ObjRef synthesize(om::Heap& heap, const om::TypeRegistry& types,
                      const serial::NodePlan& plan, SplitMix64& rng,
                      int depth = 0) {
  const serial::NodePlan* p = &plan;
  if (p->recurse_to != nullptr) {
    if (depth > 4 || rng.next_below(3) == 0) return nullptr;  // end the chain
    p = p->recurse_to;
  }
  if (depth > 6) return nullptr;
  const om::ClassId cls_id = p->expected_class;
  if (p->dynamic_dispatch) {
    // Any class compatible with the declared bound; fall back to the
    // declared class itself when it is concrete.
    if (cls_id == om::kNoClass) return nullptr;
  }
  const om::ClassDescriptor& cls = types.get(cls_id);
  if (cls.is_array) {
    const auto len = static_cast<std::uint32_t>(rng.next_below(4));
    om::ObjRef arr = heap.alloc_array(cls, len);
    if (cls.elem_kind == om::TypeKind::Ref && p->elem_plan != nullptr) {
      for (std::uint32_t i = 0; i < len; ++i) {
        arr->set_elem_ref(
            i, synthesize(heap, types, *p->elem_plan, rng, depth + 1));
      }
    } else if (cls.elem_kind != om::TypeKind::Ref) {
      for (std::uint32_t i = 0; i < arr->payload_size(); ++i) {
        arr->payload()[i] = static_cast<std::uint8_t>(rng.next());
      }
    }
    return arr;
  }
  om::ObjRef obj = heap.alloc(cls);
  if (p->dynamic_dispatch) {
    // Fill fields per the runtime class's own plan shape.
    for (const auto& f : cls.fields) {
      if (f.kind == om::TypeKind::Ref) continue;
      obj->set<std::uint8_t>(f, static_cast<std::uint8_t>(rng.next()));
    }
    for (const auto& f : cls.fields) {
      if (f.kind != om::TypeKind::Ref || f.ref_class == om::kNoClass) continue;
      if (depth < 4 && rng.next_below(2) == 0) {
        serial::NodePlan sub;
        sub.expected_class = f.ref_class;
        sub.dynamic_dispatch = true;
        obj->set_ref(f, synthesize(heap, types, sub, rng, depth + 1));
      }
    }
    return obj;
  }
  for (std::size_t i = 0; i < p->fields.size(); ++i) {
    const om::FieldDescriptor& f = *p->fields[i].field;
    if (f.kind == om::TypeKind::Ref) {
      if (p->fields[i].ref_plan != nullptr) {
        obj->set_ref(f, synthesize(heap, types, *p->fields[i].ref_plan, rng,
                                   depth + 1));
      }
    } else {
      std::uint64_t v = rng.next();
      std::memcpy(obj->payload() + f.offset, &v, om::size_of(f.kind));
    }
  }
  return obj;
}

class PlanFuzzP : public ::testing::TestWithParam<int> {};

TEST_P(PlanFuzzP, GeneratedPlansTransferConformingGraphsLosslessly) {
  SplitMix64 rng(GetParam() * 7001 + 13);
  for (int round = 0; round < 6; ++round) {
    RandomProgram prog(rng);
    for (const auto level :
         {codegen::OptLevel::Class, codegen::OptLevel::Site,
          codegen::OptLevel::SiteCycle, codegen::OptLevel::SiteReuseCycle}) {
      const driver::CompiledProgram compiled =
          driver::compile(*prog.module, level);
      const auto& decision = compiled.site(prog.tag);
      ASSERT_EQ(decision.plan->args.size(), 1u);

      serial::ClassPlanRegistry class_plans(*prog.types);
      om::Heap heap(*prog.types);
      const serial::NodePlan& arg_plan = *decision.plan->args[0];
      om::ObjRef graph = synthesize(heap, *prog.types, arg_plan, rng);
      if (graph == nullptr) continue;

      const bool cycle_enabled = decision.plan->needs_cycle_table;
      serial::SerialStats ws;
      serial::SerialWriter w(class_plans, ws, cycle_enabled);
      ByteBuffer buf;
      w.write(buf, arg_plan, graph);
      serial::SerialStats rs;
      serial::SerialReader r(class_plans, heap, rs, cycle_enabled);
      om::ObjRef copy = r.read(buf, arg_plan);

      EXPECT_TRUE(om::deep_equals(graph, copy))
          << "seed=" << GetParam() << " round=" << round << " level="
          << codegen::to_string(level);
      EXPECT_EQ(buf.remaining(), 0u);
      heap.free_graph(graph);
      heap.free_graph(copy);
      EXPECT_EQ(heap.stats().live_objects(), 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzzP, ::testing::Range(0, 12));

}  // namespace
}  // namespace rmiopt
