// Configuration-path tests for the benchmark applications: custom
// superoptimizer targets, concurrent web-server pipelines, custom cost
// models, and input validation.
#include <gtest/gtest.h>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/superopt.hpp"
#include "apps/webserver.hpp"
#include "support/error.hpp"

namespace rmiopt::apps {
namespace {

using codegen::OptLevel;

TEST(AppConfig, SuperoptCustomTargetFindsItself) {
  // Target: r1 = r0 - r0 (always zero).  XOR r1,r0,r0 and MOV r1,#0 are
  // equivalents; the target's own encoding must be found too.
  SuperoptConfig cfg;
  cfg.target = {SopInstr{SopOp::Sub, 1, {false, 0}, {false, 0}}};
  cfg.max_len = 1;
  const RunResult r = run_superopt(OptLevel::SiteReuseCycle, cfg);
  EXPECT_GE(r.check, 3.0);  // SUB, XOR, MOV #0 at least
}

TEST(AppConfig, SuperoptWithLargerQueueSameResult) {
  SuperoptConfig a, b;
  a.max_len = 1;
  b.max_len = 1;
  a.queue_capacity = 2;   // heavy back-pressure
  b.queue_capacity = 512;
  EXPECT_EQ(run_superopt(OptLevel::Class, a).check,
            run_superopt(OptLevel::Class, b).check);
}

TEST(AppConfig, WebserverConcurrentClientsServeEverything) {
  WebserverConfig cfg;
  cfg.requests = 200;
  cfg.pages = 8;
  cfg.page_size = 256;
  cfg.concurrent_clients = 4;
  for (const auto level : {OptLevel::Class, OptLevel::SiteReuseCycle}) {
    const RunResult r = run_webserver(level, cfg);
    EXPECT_EQ(r.check, 200.0 * 256.0) << codegen::to_string(level);
    EXPECT_EQ(r.total.remote_rpcs, 200u + 1u);  // +1 name-service bind
  }
}

TEST(AppConfig, PipeliningReducesTimePerPage) {
  WebserverConfig seq;
  seq.requests = 200;
  WebserverConfig par = seq;
  par.concurrent_clients = 8;
  const auto t_seq = run_webserver(OptLevel::SiteReuseCycle, seq).makespan;
  const auto t_par = run_webserver(OptLevel::SiteReuseCycle, par).makespan;
  EXPECT_LT(t_par.as_nanos(), t_seq.as_nanos() / 2);
}

TEST(AppConfig, CustomCostModelChangesTiming) {
  ArrayBenchConfig slow;
  slow.iterations = 20;
  slow.cost.msg_latency_ns = 500'000;  // a WAN
  ArrayBenchConfig fast = slow;
  fast.cost.msg_latency_ns = 1'000;
  const auto t_slow = run_array_bench(OptLevel::Site, slow).makespan;
  const auto t_fast = run_array_bench(OptLevel::Site, fast).makespan;
  EXPECT_GT(t_slow.as_nanos(), 10 * t_fast.as_nanos());
}

TEST(AppConfig, ZeroCopyReceiveSpeedsUpBulkTransfers) {
  ArrayBenchConfig normal;
  normal.rows = 64;
  normal.cols = 64;
  normal.iterations = 50;
  ArrayBenchConfig zc = normal;
  zc.cost.zero_copy_receive = true;
  const auto t_normal = run_array_bench(OptLevel::Site, normal).makespan;
  const auto t_zc = run_array_bench(OptLevel::Site, zc).makespan;
  EXPECT_LT(t_zc, t_normal);
}

TEST(AppConfig, InvalidConfigsAreRejected) {
  ListBenchConfig list;
  list.machines = 1;
  EXPECT_THROW(run_list_bench(OptLevel::Class, list), rmiopt::Error);
  WebserverConfig web;
  web.machines = 1;
  EXPECT_THROW(run_webserver(OptLevel::Class, web), rmiopt::Error);
  SuperoptConfig sop;
  sop.machines = 1;
  EXPECT_THROW(run_superopt(OptLevel::Class, sop), rmiopt::Error);
  LuConfig lu;
  lu.n = 1;
  EXPECT_THROW(run_lu(OptLevel::Class, lu), rmiopt::Error);
}

TEST(AppConfig, LuComputeCostScalesWithFlopConstant) {
  LuConfig cheap;
  cheap.n = 48;
  cheap.flop_pair_ns = 0.0;
  LuConfig costly = cheap;
  costly.flop_pair_ns = 20.0;
  const auto t_cheap = run_lu(OptLevel::SiteReuseCycle, cheap).makespan;
  const auto t_costly = run_lu(OptLevel::SiteReuseCycle, costly).makespan;
  EXPECT_GT(t_costly.as_nanos(), t_cheap.as_nanos());
}

}  // namespace
}  // namespace rmiopt::apps
