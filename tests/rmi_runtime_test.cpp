// Integration tests for the RMI runtime over the simulated cluster:
// remote/local invocation, ACK elision, reuse caches, deferred replies,
// statistics, and virtual-time accounting.
#include <gtest/gtest.h>

#include "rmi/runtime.hpp"

namespace rmiopt::rmi {
namespace {

using om::ClassId;
using om::ObjRef;
using om::TypeKind;

class RmiTest : public ::testing::Test {
 protected:
  RmiTest() : cluster(2, types), sys(cluster, types) {
    point_id = types.define_class(
        "Point", {{"x", TypeKind::Double}, {"y", TypeKind::Double}});
    row_id = types.register_prim_array(TypeKind::Double);
    mat_id = types.register_ref_array(row_id);
  }

  ~RmiTest() override { sys.stop(); }

  // A class-mode call site: dynamic roots, cycle table on, no reuse.
  CompiledCallSite class_site(std::uint32_t method, bool with_ret,
                              std::vector<ClassId> arg_classes) {
    CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "test.site";
    for (ClassId c : arg_classes) {
      cs.plan->args.push_back(serial::make_dynamic_node(c));
    }
    if (with_ret) cs.plan->ret = serial::make_dynamic_node(om::kNoClass);
    cs.plan->needs_cycle_table = true;
    return cs;
  }

  ObjRef make_point(om::Heap& heap, double x, double y) {
    const om::ClassDescriptor& c = types.get(point_id);
    ObjRef p = heap.alloc(c);
    p->set<double>(c.fields[0], x);
    p->set<double>(c.fields[1], y);
    return p;
  }

  om::TypeRegistry types;
  net::Cluster cluster;
  RmiSystem sys;
  ClassId point_id = om::kNoClass;
  ClassId row_id = om::kNoClass;
  ClassId mat_id = om::kNoClass;
};

TEST_F(RmiTest, RemoteCallRoundTripsValue) {
  // Method: swap the point's coordinates and return a fresh point.
  const auto mid = sys.define_method(
      "swap", [&](CallContext& ctx, auto, std::span<const ObjRef> args) {
        const om::ClassDescriptor& c = types.get(point_id);
        ObjRef in = args[0];
        ObjRef out = make_point(ctx.heap(), in->get<double>(c.fields[1]),
                                in->get<double>(c.fields[0]));
        return HandlerResult{.value = out, .give_ownership = true};
      });
  const auto site = sys.add_callsite(class_site(mid, true, {point_id}));
  ObjRef target = cluster.machine(1).heap().alloc(point_id);
  const RemoteRef ref = sys.export_object(1, target);
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  ObjRef arg = make_point(h0, 3.0, 4.0);
  ObjRef result = sys.invoke(0, ref, site, std::array{arg});

  ASSERT_NE(result, nullptr);
  const om::ClassDescriptor& c = types.get(point_id);
  EXPECT_DOUBLE_EQ(result->get<double>(c.fields[0]), 4.0);
  EXPECT_DOUBLE_EQ(result->get<double>(c.fields[1]), 3.0);

  // The callee frees argument graphs *after* replying; join the
  // dispatchers before reading callee-side counters.
  sys.stop();
  const auto s0 = sys.stats(0);
  const auto s1 = sys.stats(1);
  EXPECT_EQ(s0.remote_rpcs, 1u);
  EXPECT_EQ(s0.local_rpcs, 0u);
  EXPECT_EQ(s1.serial.objects_allocated, 1u);  // the deserialized argument
  EXPECT_EQ(s1.serial.objects_freed, 2u);      // arg + owned return value
  h0.free(arg);
  h0.free(result);
}

TEST_F(RmiTest, SelfIsTheExportedObject) {
  ObjRef target = nullptr;
  const auto mid = sys.define_method(
      "check", [&](CallContext& ctx, auto, auto) {
        EXPECT_EQ(ctx.self(), target);
        return HandlerResult{};
      });
  CompiledCallSite cs = class_site(mid, false, {});
  const auto site = sys.add_callsite(std::move(cs));
  target = make_point(cluster.machine(1).heap(), 1, 2);
  const RemoteRef ref = sys.export_object(1, target);
  sys.start();
  EXPECT_EQ(sys.invoke(0, ref, site, {}), nullptr);
}

TEST_F(RmiTest, ScalarsTravelWithoutPlans) {
  std::int64_t seen = 0;
  const auto mid = sys.define_method(
      "scal", [&](CallContext&, std::span<const std::int64_t> s, auto) {
        seen = s[0] + s[1];
        return HandlerResult{};
      });
  const auto site = sys.add_callsite(class_site(mid, false, {}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();
  sys.invoke(0, ref, site, {}, std::array<std::int64_t, 2>{40, 2});
  EXPECT_EQ(seen, 42);
}

TEST_F(RmiTest, VoidCallReturnsAckAndNothingIsDeserialized) {
  const auto mid =
      sys.define_method("noop", [](CallContext&, auto, auto) {
        return HandlerResult{};
      });
  const auto site = sys.add_callsite(class_site(mid, false, {point_id}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();
  om::Heap& h0 = cluster.machine(0).heap();
  ObjRef arg = make_point(h0, 1, 2);
  EXPECT_EQ(sys.invoke(0, ref, site, std::array{arg}), nullptr);
  // The caller allocated nothing for the reply.
  EXPECT_EQ(sys.stats(0).serial.objects_allocated, 0u);
  h0.free(arg);
}

TEST_F(RmiTest, ReturnElisionSendsAckEvenWhenHandlerReturnsValue) {
  // §3.1: the call site ignores the return value, so the compiler elides
  // it (plan.ret == nullptr) and the callee discards the handler's value.
  const auto mid = sys.define_method(
      "produce", [&](CallContext& ctx, auto, auto) {
        return HandlerResult{.value = make_point(ctx.heap(), 9, 9),
                             .give_ownership = true};
      });
  const auto site = sys.add_callsite(class_site(mid, false, {}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();
  EXPECT_EQ(sys.invoke(0, ref, site, {}), nullptr);
  // The produced value was freed at the callee, not serialized.
  EXPECT_EQ(sys.stats(1).serial.objects_freed, 1u);
  EXPECT_EQ(sys.stats(0).serial.objects_allocated, 0u);
}

TEST_F(RmiTest, LocalCallClonesArgumentsAndReturnValue) {
  ObjRef observed = nullptr;
  const auto mid = sys.define_method(
      "id", [&](CallContext&, auto, std::span<const ObjRef> args) {
        observed = args[0];
        return HandlerResult{.value = args[0]};
      });
  const auto site = sys.add_callsite(class_site(mid, true, {point_id}));
  om::Heap& h0 = cluster.machine(0).heap();
  const RemoteRef ref = sys.export_object(0, h0.alloc(point_id));
  sys.start();

  ObjRef arg = make_point(h0, 7.0, 8.0);
  ObjRef result = sys.invoke(0, ref, site, std::array{arg});
  // Copy semantics: the handler saw a clone, and the caller got a clone of
  // the handler's return — three distinct objects, equal contents.
  EXPECT_NE(observed, arg);
  EXPECT_NE(result, arg);
  EXPECT_NE(result, observed);
  EXPECT_TRUE(om::deep_equals(result, arg));
  EXPECT_EQ(sys.stats(0).local_rpcs, 1u);
  EXPECT_EQ(sys.stats(0).remote_rpcs, 0u);
  h0.free(arg);
  h0.free(result);
}

TEST_F(RmiTest, ArgsConsumedKeepsHandlerOwnership) {
  std::vector<ObjRef> kept;
  const auto mid = sys.define_method(
      "keep", [&](CallContext&, auto, std::span<const ObjRef> args) {
        kept.push_back(args[0]);
        return HandlerResult{.args_consumed = true};
      });
  const auto site = sys.add_callsite(class_site(mid, false, {point_id}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();
  om::Heap& h0 = cluster.machine(0).heap();
  ObjRef arg = make_point(h0, 1, 1);
  sys.invoke(0, ref, site, std::array{arg});
  sys.invoke(0, ref, site, std::array{arg});
  ASSERT_EQ(kept.size(), 2u);
  // The kept graphs are alive and distinct.
  EXPECT_NE(kept[0], kept[1]);
  EXPECT_TRUE(om::deep_equals(kept[0], kept[1]));
  EXPECT_EQ(sys.stats(1).serial.objects_freed, 0u);
  h0.free(arg);
  cluster.machine(1).heap().free(kept[0]);
  cluster.machine(1).heap().free(kept[1]);
}

TEST_F(RmiTest, ReuseArgsRecyclesDeserializedGraphAcrossCalls) {
  // site+reuse: a double[16][16] argument, per the paper's array bench.
  ObjRef first_seen = nullptr;
  ObjRef second_seen = nullptr;
  const auto mid = sys.define_method(
      "send", [&](CallContext&, auto, std::span<const ObjRef> args) {
        (first_seen == nullptr ? first_seen : second_seen) = args[0];
        return HandlerResult{};
      });

  CompiledCallSite cs;
  cs.method_id = mid;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "ArrayBench.benchmark.send#0";
  auto row = std::make_unique<serial::NodePlan>();
  row->expected_class = row_id;
  auto mat = std::make_unique<serial::NodePlan>();
  mat->expected_class = mat_id;
  mat->elem_plan = std::move(row);
  cs.plan->args.push_back(std::move(mat));
  cs.plan->needs_cycle_table = false;  // proven acyclic
  cs.plan->reuse_args = true;          // escape analysis: does not escape
  const auto site = sys.add_callsite(std::move(cs));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  ObjRef m = h0.alloc_array(mat_id, 16);
  for (std::uint32_t r = 0; r < 16; ++r) {
    m->set_elem_ref(r, h0.alloc_array(row_id, 16));
  }
  sys.invoke(0, ref, site, std::array{m});
  sys.invoke(0, ref, site, std::array{m});

  // The callee saw the *same* (recycled) array object on the second call.
  EXPECT_EQ(first_seen, second_seen);
  const auto s1 = sys.stats(1);
  EXPECT_EQ(s1.serial.objects_allocated, 17u);  // only the first call
  EXPECT_EQ(s1.serial.objects_reused, 17u);     // entire second call
  EXPECT_EQ(s1.serial.cycle_lookups, 0u);       // cycle table elided
  h0.free_graph(m);
}

TEST_F(RmiTest, ReuseRetRecyclesReturnGraphAtCaller) {
  const auto mid = sys.define_method(
      "get", [&](CallContext& ctx, auto, auto) {
        return HandlerResult{.value = make_point(ctx.heap(), 5, 6),
                             .give_ownership = true};
      });
  CompiledCallSite cs;
  cs.method_id = mid;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "get#0";
  auto ret = std::make_unique<serial::NodePlan>();
  ret->expected_class = point_id;
  cs.plan->ret = std::move(ret);
  cs.plan->needs_cycle_table = false;
  cs.plan->reuse_ret = true;
  const auto site = sys.add_callsite(std::move(cs));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();

  ObjRef r1 = sys.invoke(0, ref, site, {});
  ObjRef r2 = sys.invoke(0, ref, site, {});
  EXPECT_EQ(r1, r2);  // recycled caller-side graph
  EXPECT_EQ(sys.stats(0).serial.objects_allocated, 1u);
  EXPECT_EQ(sys.stats(0).serial.objects_reused, 1u);
}

TEST_F(RmiTest, DeferredReplyCompletesLater) {
  // A two-party barrier: first caller's reply is deferred until the second
  // arrives.
  std::mutex mu;
  std::vector<ReplyToken> waiting;
  const auto mid = sys.define_method(
      "barrier", [&](CallContext& ctx, auto, auto) -> HandlerResult {
        std::scoped_lock lock(mu);
        waiting.push_back(ctx.reply_token());
        if (waiting.size() < 2) return HandlerResult{.deferred = true};
        for (const auto& t : waiting) {
          if (t.seq != ctx.reply_token().seq) {
            ctx.system().send_reply(t, nullptr);
          }
        }
        waiting.clear();
        return HandlerResult{};
      });
  const auto site = sys.add_callsite(class_site(mid, false, {}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();

  std::atomic<int> done{0};
  std::thread t0([&] {
    sys.invoke(0, ref, site, {});
    ++done;
  });
  // Give the first call time to arrive and block.
  while (true) {
    {
      std::scoped_lock lock(mu);
      if (!waiting.empty()) break;
    }
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), 0);
  sys.invoke(1, ref, site, {});  // local call releases the barrier
  t0.join();
  EXPECT_EQ(done.load(), 1);
}

TEST_F(RmiTest, VirtualTimeAdvancesWithCalls) {
  const auto mid = sys.define_method(
      "noop", [](CallContext&, auto, auto) { return HandlerResult{}; });
  const auto site = sys.add_callsite(class_site(mid, false, {}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();

  sys.invoke(0, ref, site, {});
  const SimTime after_one = cluster.machine(0).clock().now();
  // An empty optimized round trip should be in the tens of microseconds
  // (§3.3 quotes ~40 µs per optimized RMI on Myrinet).
  EXPECT_GT(after_one.as_micros(), 20.0);
  EXPECT_LT(after_one.as_micros(), 100.0);

  for (int i = 0; i < 9; ++i) sys.invoke(0, ref, site, {});
  const SimTime after_ten = cluster.machine(0).clock().now();
  EXPECT_GT(after_ten.as_nanos(), after_one.as_nanos() * 8);
}

TEST_F(RmiTest, BiggerPayloadsTakeLongerVirtualTime) {
  const auto mid = sys.define_method(
      "noop", [](CallContext&, auto, auto) { return HandlerResult{}; });
  const auto site = sys.add_callsite(class_site(mid, false, {row_id}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  ObjRef small = h0.alloc_array(row_id, 8);
  ObjRef large = h0.alloc_array(row_id, 64 * 1024);

  sys.invoke(0, ref, site, std::array{small});
  const SimTime t1 = cluster.machine(0).clock().now();
  sys.invoke(0, ref, site, std::array{large});
  const SimTime t2 = cluster.machine(0).clock().now();
  EXPECT_GT((t2 - t1).as_nanos(), t1.as_nanos() * 2);
  h0.free(small);
  h0.free(large);
}

TEST_F(RmiTest, NetworkStatsCountMessagesAndBytes) {
  const auto mid = sys.define_method(
      "noop", [](CallContext&, auto, auto) { return HandlerResult{}; });
  const auto site = sys.add_callsite(class_site(mid, false, {}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();
  sys.invoke(0, ref, site, {});
  EXPECT_EQ(cluster.stats().messages, 2u);  // call + ack
  EXPECT_GT(cluster.stats().bytes, 0u);
}

TEST_F(RmiTest, HeavyProtocolCostsMoreThanClassProtocol) {
  const auto mid = sys.define_method(
      "noop", [](CallContext&, auto, auto) { return HandlerResult{}; });
  const auto class_s = sys.add_callsite(class_site(mid, false, {point_id}));
  CompiledCallSite heavy = class_site(mid, false, {point_id});
  heavy.heavy = true;
  const auto heavy_s = sys.add_callsite(std::move(heavy));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  ObjRef p = make_point(h0, 1, 2);
  const auto bytes_before = cluster.stats().bytes;
  sys.invoke(0, ref, class_s, std::array{p});
  const auto class_bytes = cluster.stats().bytes - bytes_before;
  sys.invoke(0, ref, heavy_s, std::array{p});
  const auto heavy_bytes =
      cluster.stats().bytes - bytes_before - class_bytes;
  EXPECT_GT(heavy_bytes, class_bytes);
  h0.free(p);
}

TEST_F(RmiTest, ConcurrentCallersFromOneMachineAreMatchedBySeq) {
  const auto mid = sys.define_method(
      "echo", [&](CallContext& ctx, std::span<const std::int64_t> s,
                  auto) {
        ObjRef p = make_point(ctx.heap(), static_cast<double>(s[0]), 0);
        return HandlerResult{.value = p, .give_ownership = true};
      });
  const auto site = sys.add_callsite(class_site(mid, true, {}));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(point_id));
  sys.start();

  constexpr int kThreads = 4;
  constexpr int kCalls = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kCalls; ++i) {
        const std::int64_t tag = t * 1000 + i;
        ObjRef r = sys.invoke(0, ref, site, {},
                              std::array<std::int64_t, 1>{tag});
        const om::ClassDescriptor& c = types.get(point_id);
        if (r == nullptr ||
            r->get<double>(c.fields[0]) != static_cast<double>(tag)) {
          ++failures;
        }
        cluster.machine(0).heap().free(r);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(sys.stats(0).remote_rpcs,
            static_cast<std::uint64_t>(kThreads * kCalls));
}

}  // namespace
}  // namespace rmiopt::rmi
