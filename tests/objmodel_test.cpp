// Unit tests for the runtime object model: type registry, heap, object
// graph utilities (deep_equals / deep_clone / free_graph).
#include <gtest/gtest.h>

#include "objmodel/heap.hpp"

namespace rmiopt::om {
namespace {

class ObjModelTest : public ::testing::Test {
 protected:
  TypeRegistry types;
  Heap heap{types};
};

TEST_F(ObjModelTest, DefineClassAssignsOffsets) {
  const ClassId id = types.define_class(
      "Point", {{"x", TypeKind::Double}, {"y", TypeKind::Double},
                {"tag", TypeKind::Int}});
  const ClassDescriptor& c = types.get(id);
  EXPECT_EQ(c.fields.size(), 3u);
  EXPECT_EQ(c.fields[0].offset, 0u);
  EXPECT_EQ(c.fields[1].offset, 8u);
  EXPECT_EQ(c.fields[2].offset, 16u);
  EXPECT_EQ(c.instance_size % 8, 0u);
  EXPECT_FALSE(c.has_ref_fields());
}

TEST_F(ObjModelTest, FieldAlignmentIsRespected) {
  const ClassId id = types.define_class(
      "Mixed", {{"b", TypeKind::Byte}, {"d", TypeKind::Double},
                {"s", TypeKind::Short}});
  const ClassDescriptor& c = types.get(id);
  EXPECT_EQ(c.fields[0].offset, 0u);
  EXPECT_EQ(c.fields[1].offset, 8u);  // double aligned to 8
  EXPECT_EQ(c.fields[2].offset, 16u);
}

TEST_F(ObjModelTest, InheritanceFlattensFields) {
  const ClassId base = types.define_class("Base", {{"data", TypeKind::Int}});
  const ClassId derived =
      types.define_class("Derived", {{"extra", TypeKind::Long}}, base);
  const ClassDescriptor& d = types.get(derived);
  ASSERT_EQ(d.fields.size(), 2u);
  EXPECT_EQ(d.fields[0].name, "data");
  EXPECT_EQ(d.fields[1].name, "extra");
  EXPECT_TRUE(types.is_subclass_of(derived, base));
  EXPECT_FALSE(types.is_subclass_of(base, derived));
}

TEST_F(ObjModelTest, DuplicateClassNameThrows) {
  types.define_class("X", {});
  EXPECT_THROW(types.define_class("X", {}), Error);
}

TEST_F(ObjModelTest, ArrayClassesAreInterned) {
  const ClassId a = types.register_prim_array(TypeKind::Double);
  const ClassId b = types.register_prim_array(TypeKind::Double);
  EXPECT_EQ(a, b);
  EXPECT_EQ(types.get(a).name, "[double");

  const ClassId inner = types.register_prim_array(TypeKind::Double);
  const ClassId outer = types.register_ref_array(inner);
  EXPECT_EQ(types.get(outer).name, "[L[double;");
  EXPECT_EQ(types.get(outer).elem_kind, TypeKind::Ref);
  EXPECT_EQ(types.get(outer).elem_class, inner);
}

TEST_F(ObjModelTest, ScalarFieldsRoundTrip) {
  const ClassId id = types.define_class(
      "Point", {{"x", TypeKind::Double}, {"n", TypeKind::Int}});
  const ClassDescriptor& c = types.get(id);
  ObjRef p = heap.alloc(c);
  p->set<double>(c.fields[0], 2.5);
  p->set<std::int32_t>(c.fields[1], 7);
  EXPECT_DOUBLE_EQ(p->get<double>(c.fields[0]), 2.5);
  EXPECT_EQ(p->get<std::int32_t>(c.fields[1]), 7);
  heap.free(p);
}

TEST_F(ObjModelTest, NewObjectsAreZeroed) {
  const ClassId id = types.define_class(
      "Z", {{"x", TypeKind::Double}, {"r", TypeKind::Ref}});
  ObjRef o = heap.alloc(id);
  EXPECT_DOUBLE_EQ(o->get<double>(o->cls().fields[0]), 0.0);
  EXPECT_EQ(o->get_ref(o->cls().fields[1]), nullptr);
  heap.free(o);
}

TEST_F(ObjModelTest, RefFieldsLinkObjects) {
  const ClassId node =
      types.define_class("Node", {{"val", TypeKind::Int}, {"next", TypeKind::Ref}});
  const ClassDescriptor& c = types.get(node);
  ObjRef a = heap.alloc(c);
  ObjRef b = heap.alloc(c);
  a->set_ref(c.fields[1], b);
  EXPECT_EQ(a->get_ref(c.fields[1]), b);
  heap.free(a);
  heap.free(b);
}

TEST_F(ObjModelTest, PrimArraysRoundTrip) {
  const ClassId arr = types.register_prim_array(TypeKind::Double);
  ObjRef a = heap.alloc_array(arr, 16);
  EXPECT_EQ(a->length(), 16u);
  auto e = a->elems<double>();
  for (std::size_t i = 0; i < e.size(); ++i) e[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(a->elems<double>()[15], 15.0);
  EXPECT_EQ(a->payload_size(), 16 * sizeof(double));
  heap.free(a);
}

TEST_F(ObjModelTest, RefArraysRoundTrip) {
  const ClassId inner = types.register_prim_array(TypeKind::Int);
  const ClassId outer = types.register_ref_array(inner);
  ObjRef o = heap.alloc_array(outer, 3);
  ObjRef row = heap.alloc_array(inner, 2);
  o->set_elem_ref(1, row);
  EXPECT_EQ(o->get_elem_ref(0), nullptr);
  EXPECT_EQ(o->get_elem_ref(1), row);
  EXPECT_THROW(o->get_elem_ref(3), Error);
  heap.free(row);
  heap.free(o);
}

TEST_F(ObjModelTest, StringsRoundTrip) {
  ObjRef s = heap.alloc_string("/index.html");
  EXPECT_TRUE(s->cls().is_string);
  EXPECT_EQ(s->as_string_view(), "/index.html");
  heap.free(s);
}

TEST_F(ObjModelTest, HeapStatsTrackAllocationVolume) {
  const ClassId id = types.define_class("P", {{"x", TypeKind::Double}});
  const auto before = heap.stats().bytes_allocated.load();
  ObjRef o = heap.alloc(id);
  EXPECT_EQ(heap.stats().objects_allocated.load(), 1u);
  EXPECT_GT(heap.stats().bytes_allocated.load(), before);
  heap.free(o);
  EXPECT_EQ(heap.stats().live_objects(), 0u);
  EXPECT_EQ(heap.stats().bytes_freed.load(),
            heap.stats().bytes_allocated.load());
}

// ---- graph utilities ------------------------------------------------------

class GraphTest : public ObjModelTest {
 protected:
  void SetUp() override {
    node_id = types.define_class(
        "Node", {{"val", TypeKind::Int}, {"next", TypeKind::Ref}});
  }

  ObjRef make_list(int n, bool cyclic = false) {
    const ClassDescriptor& c = types.get(node_id);
    ObjRef head = nullptr;
    ObjRef tail = nullptr;
    for (int i = n - 1; i >= 0; --i) {
      ObjRef node = heap.alloc(c);
      node->set<std::int32_t>(c.fields[0], i);
      node->set_ref(c.fields[1], head);
      head = node;
      if (tail == nullptr) tail = node;
    }
    if (cyclic && tail != nullptr) tail->set_ref(types.get(node_id).fields[1], head);
    return head;
  }

  ClassId node_id = kNoClass;
};

TEST_F(GraphTest, DeepEqualsOnEqualLists) {
  ObjRef a = make_list(10);
  ObjRef b = make_list(10);
  EXPECT_TRUE(deep_equals(a, b));
  heap.free_graph(a);
  heap.free_graph(b);
}

TEST_F(GraphTest, DeepEqualsDetectsValueDifference) {
  ObjRef a = make_list(5);
  ObjRef b = make_list(5);
  const ClassDescriptor& c = types.get(node_id);
  b->get_ref(c.fields[1])->set<std::int32_t>(c.fields[0], 99);
  EXPECT_FALSE(deep_equals(a, b));
  heap.free_graph(a);
  heap.free_graph(b);
}

TEST_F(GraphTest, DeepEqualsDetectsShapeDifference) {
  ObjRef a = make_list(5);
  ObjRef b = make_list(6);
  EXPECT_FALSE(deep_equals(a, b));
  heap.free_graph(a);
  heap.free_graph(b);
}

TEST_F(GraphTest, DeepEqualsDistinguishesCyclicFromAcyclic) {
  ObjRef acyclic = make_list(4);
  ObjRef cyclic = make_list(4, /*cyclic=*/true);
  EXPECT_FALSE(deep_equals(acyclic, cyclic));
  EXPECT_TRUE(deep_equals(cyclic, cyclic));
  heap.free_graph(acyclic);
  heap.free_graph(cyclic);
}

TEST_F(GraphTest, DeepCloneCopiesValuesAndShape) {
  ObjRef a = make_list(8);
  ObjRef b = deep_clone(heap, a);
  EXPECT_NE(a, b);
  EXPECT_TRUE(deep_equals(a, b));
  heap.free_graph(a);
  heap.free_graph(b);
}

TEST_F(GraphTest, DeepClonePreservesCycles) {
  ObjRef a = make_list(4, /*cyclic=*/true);
  ObjRef b = deep_clone(heap, a);
  EXPECT_TRUE(deep_equals(a, b));
  // Walk 4 steps: must arrive back at the clone's head, not the original's.
  const ClassDescriptor& c = types.get(node_id);
  ObjRef cur = b;
  for (int i = 0; i < 4; ++i) cur = cur->get_ref(c.fields[1]);
  EXPECT_EQ(cur, b);
  heap.free_graph(a);
  heap.free_graph(b);
}

TEST_F(GraphTest, DeepClonePreservesSharing) {
  // Diamond: root array holds the same node twice.
  const ClassId arr = types.register_ref_array(node_id);
  ObjRef shared = make_list(1);
  ObjRef root = heap.alloc_array(arr, 2);
  root->set_elem_ref(0, shared);
  root->set_elem_ref(1, shared);

  ObjRef copy = deep_clone(heap, root);
  EXPECT_EQ(copy->get_elem_ref(0), copy->get_elem_ref(1));
  EXPECT_NE(copy->get_elem_ref(0), shared);
  heap.free_graph(root);
  heap.free_graph(copy);
}

TEST_F(GraphTest, FreeGraphReleasesEverythingOnce) {
  ObjRef a = make_list(100, /*cyclic=*/true);
  const auto allocated = heap.stats().objects_allocated.load();
  heap.free_graph(a);
  EXPECT_EQ(heap.stats().objects_freed.load(), allocated);
  EXPECT_EQ(heap.stats().live_objects(), 0u);
}

TEST_F(GraphTest, GraphObjectCountHandlesCycles) {
  ObjRef a = make_list(7, /*cyclic=*/true);
  EXPECT_EQ(graph_object_count(a), 7u);
  EXPECT_EQ(graph_object_count(nullptr), 0u);
  heap.free_graph(a);
}

}  // namespace
}  // namespace rmiopt::om
