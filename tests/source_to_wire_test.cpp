// Capstone integration: MiniParty source text -> frontend -> analyses ->
// generated marshal plans -> RMI runtime -> simulated cluster, end to end.
//
// This is the full pipeline the paper describes, driven from source code:
// the program text determines the generated marshalers, and the runtime
// executes them to move real data between machines.
#include <gtest/gtest.h>

#include "driver/compile.hpp"
#include "frontend/compile.hpp"
#include "frontend/figures_source.hpp"
#include "net/cluster.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt {
namespace {

TEST(SourceToWire, Figure12ArrayTransferFromSource) {
  // Compile the paper's Figure 12 program from source.
  frontend::Unit unit = frontend::compile_source(
      frontend::sources::kFigure12);
  const auto tags = unit.tags_for("ArrayBench.send");
  ASSERT_EQ(tags.size(), 1u);

  for (const auto level : codegen::kPaperLevels) {
    driver::CompiledProgram prog = driver::compile(*unit.module, level);

    net::Cluster cluster(2, *unit.types);
    rmi::RmiSystem sys(cluster, *unit.types);
    double received = 0.0;
    const auto method = sys.define_method(
        "ArrayBench.send",
        [&](rmi::CallContext&, auto, std::span<const om::ObjRef> args) {
          received = args[0]->get_elem_ref(1)->elems<double>()[2];
          return rmi::HandlerResult{};
        });
    const auto site = sys.add_callsite(
        driver::to_runtime_site(prog, tags[0], method));
    const rmi::RemoteRef target = sys.export_object(
        1, cluster.machine(1).heap().alloc(unit.cls("ArrayBench")));
    sys.start();

    // Build the 16x16 matrix the source program describes and send it.
    om::Heap& h0 = cluster.machine(0).heap();
    const om::ClassDescriptor* row_cls = unit.types->find_by_name("[double");
    const om::ClassDescriptor* mat_cls =
        unit.types->find_by_name("[L[double;");
    ASSERT_NE(row_cls, nullptr);
    ASSERT_NE(mat_cls, nullptr);
    om::ObjRef mat = h0.alloc_array(*mat_cls, 16);
    for (std::uint32_t r = 0; r < 16; ++r) {
      om::ObjRef row = h0.alloc_array(*row_cls, 16);
      row->elems<double>()[2] = 100.0 * r + 2;
      mat->set_elem_ref(r, row);
    }
    sys.invoke(0, target, site, std::array{mat});
    EXPECT_DOUBLE_EQ(received, 102.0) << codegen::to_string(level);
    sys.stop();

    // The compiled behavior matches the paper per level.
    const auto& d = prog.site(tags[0]);
    EXPECT_TRUE(d.proved_acyclic);
    EXPECT_TRUE(d.args_reusable);
    if (level == codegen::OptLevel::SiteReuseCycle) {
      EXPECT_EQ(sys.total_stats().serial.cycle_lookups, 0u);
      EXPECT_EQ(sys.total_stats().serial.type_info_bytes, 0u);
    }
    h0.free_graph(mat);
  }
}

TEST(SourceToWire, PolymorphicProgramFromSourceDispatchesCorrectly) {
  // A source program whose call site is polymorphic: the plan must fall
  // back to dynamic dispatch and still move the right runtime types.
  frontend::Unit unit = frontend::compile_source(R"(
    class Shape { int kind; }
    class Circle extends Shape { double r; }
    class Square extends Shape { double side; }
    remote class Renderer {
      void draw(Shape s) { }
    }
    class Main {
      static void go(int which) {
        Renderer r = new Renderer();
        Shape s = new Circle();
        if (which < 0) {
          s = new Square();
        }
        r.draw(s);
      }
    }
  )");
  const auto tags = unit.tags_for("Renderer.draw");
  ASSERT_EQ(tags.size(), 1u);
  driver::CompiledProgram prog =
      driver::compile(*unit.module, codegen::OptLevel::SiteReuseCycle);
  EXPECT_GE(prog.site(tags[0]).dynamic_nodes, 1u);  // polymorphic fallback

  net::Cluster cluster(2, *unit.types);
  rmi::RmiSystem sys(cluster, *unit.types);
  std::vector<std::string> seen;
  const auto method = sys.define_method(
      "Renderer.draw",
      [&](rmi::CallContext&, auto, std::span<const om::ObjRef> args) {
        seen.push_back(args[0]->cls().name);
        return rmi::HandlerResult{};
      });
  const auto site =
      sys.add_callsite(driver::to_runtime_site(prog, tags[0], method));
  const rmi::RemoteRef target = sys.export_object(
      1, cluster.machine(1).heap().alloc(unit.cls("Renderer")));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  om::ObjRef circle = h0.alloc(unit.cls("Circle"));
  om::ObjRef square = h0.alloc(unit.cls("Square"));
  sys.invoke(0, target, site, std::array{circle});
  sys.invoke(0, target, site, std::array{square});
  sys.stop();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "Circle");  // runtime type survives the wire
  EXPECT_EQ(seen[1], "Square");
  h0.free(circle);
  h0.free(square);
}

TEST(SourceToWire, LinkedListFromSourceRoundTripsWithReuse) {
  frontend::Unit unit =
      frontend::compile_source(frontend::sources::kFigure14);
  const auto tags = unit.tags_for("Foo.send");
  ASSERT_EQ(tags.size(), 1u);
  driver::CompiledProgram prog =
      driver::compile(*unit.module, codegen::OptLevel::SiteReuseCycle);
  ASSERT_TRUE(prog.site(tags[0]).plan->reuse_args);

  net::Cluster cluster(2, *unit.types);
  rmi::RmiSystem sys(cluster, *unit.types);
  int chain_length = 0;
  const om::ClassDescriptor& node_cls =
      unit.types->get(unit.cls("LinkedList"));
  const auto method = sys.define_method(
      "Foo.send",
      [&](rmi::CallContext&, auto, std::span<const om::ObjRef> args) {
        chain_length = 0;
        for (om::ObjRef n = args[0]; n != nullptr;
             n = n->get_ref(node_cls.fields[0])) {
          ++chain_length;
        }
        return rmi::HandlerResult{};
      });
  const auto site =
      sys.add_callsite(driver::to_runtime_site(prog, tags[0], method));
  const rmi::RemoteRef target = sys.export_object(
      1, cluster.machine(1).heap().alloc(unit.cls("Foo")));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  om::ObjRef head = nullptr;
  for (int i = 0; i < 100; ++i) {
    om::ObjRef n = h0.alloc(node_cls);
    n->set_ref(node_cls.fields[0], head);
    head = n;
  }
  sys.invoke(0, target, site, std::array{head});
  EXPECT_EQ(chain_length, 100);
  sys.invoke(0, target, site, std::array{head});
  EXPECT_EQ(chain_length, 100);
  sys.stop();
  // Second call recycled the whole chain at the callee (§3.3).
  EXPECT_EQ(sys.stats(1).serial.objects_reused, 100u);
  h0.free_graph(head);
}

}  // namespace
}  // namespace rmiopt
