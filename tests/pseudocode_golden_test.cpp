// Golden-structure tests: the pseudocode printer's output for the paper's
// Figure 5 program must contain the characteristic lines of the paper's
// Figures 6 (call-site specific) and 7 (class specific), and the safety
// guards of the analyses must fail loudly.
#include <gtest/gtest.h>

#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"

namespace rmiopt {
namespace {

using apps::figures::FigureProgram;

TEST(PseudocodeGolden, Figure6CallSiteMarshalers) {
  FigureProgram p = apps::figures::make_figure5();
  const driver::CompiledProgram prog =
      driver::compile(*p.module, codegen::OptLevel::SiteReuseCycle);

  // marshaler_Work.go.1: "p.writeInt(s.data)" — ours: m.write_int(a0.data)
  const std::string m1 =
      serial::to_pseudocode(*prog.site(p.tag("foo#1")).plan, *p.types);
  EXPECT_NE(m1.find("m.write_int(a0.data);  // inlined"), std::string::npos)
      << m1;
  EXPECT_EQ(m1.find("serialize(m)"), std::string::npos);  // no dynamic call
  EXPECT_EQ(m1.find("cycle_table"), std::string::npos);   // elided

  // marshaler_Work.go.2: "p.writeInt(s.p.data)" — the reference field is
  // followed at compile time.
  const std::string m2 =
      serial::to_pseudocode(*prog.site(p.tag("foo#2")).plan, *p.types);
  EXPECT_NE(m2.find("m.write_int(a0.p.data);  // inlined"), std::string::npos)
      << m2;
}

TEST(PseudocodeGolden, Figure7ClassMarshalers) {
  FigureProgram p = apps::figures::make_figure5();
  const driver::CompiledProgram prog =
      driver::compile(*p.module, codegen::OptLevel::Class);
  // "s.serialize(m); // note: method call" + cycle table + type info.
  const std::string m1 =
      serial::to_pseudocode(*prog.site(p.tag("foo#1")).plan, *p.types);
  EXPECT_NE(m1.find("a0.serialize(m);  // dynamic call, writes class id"),
            std::string::npos)
      << m1;
  EXPECT_NE(m1.find("cycle_table.lookup_or_insert"), std::string::npos);
}

TEST(PseudocodeGolden, Figure13ReuseAnnotations) {
  FigureProgram p = apps::figures::make_figure12();
  const driver::CompiledProgram prog =
      driver::compile(*p.module, codegen::OptLevel::SiteReuseCycle);
  const std::string code =
      serial::to_pseudocode(*prog.site(p.tag("send")).plan, *p.types);
  EXPECT_NE(code.find("(reusable at callee)"), std::string::npos) << code;
  EXPECT_NE(code.find("m.write_int(a0.length)"), std::string::npos);
  EXPECT_NE(code.find("append_double_array"), std::string::npos);
}

TEST(AnalysisGuards, NodeBudgetViolationThrows) {
  // Figure 3 needs 3 nodes; an absurdly small budget must be detected as
  // divergence rather than silently truncating the analysis.
  FigureProgram p = apps::figures::make_figure3();
  analysis::HeapAnalysis heap(*p.module);
  EXPECT_THROW(heap.run(/*max_nodes=*/2), Error);
}

TEST(AnalysisGuards, PlanCloneIsDeepAndIndependent) {
  FigureProgram p = apps::figures::make_figure14();
  const driver::CompiledProgram prog =
      driver::compile(*p.module, codegen::OptLevel::SiteReuseCycle);
  const auto& original = *prog.site(p.tag("send")).plan;
  auto copy = original.clone();
  // The recursion back edge must point into the COPY, not the original.
  const serial::NodePlan* orig_head = original.args[0].get();
  const serial::NodePlan* copy_head = copy->args[0].get();
  ASSERT_NE(copy_head, orig_head);
  ASSERT_NE(copy_head->fields[0].ref_plan->recurse_to, nullptr);
  EXPECT_EQ(copy_head->fields[0].ref_plan->recurse_to, copy_head);
  EXPECT_NE(copy_head->fields[0].ref_plan->recurse_to, orig_head);
}

}  // namespace
}  // namespace rmiopt
