// Tests for the zero-copy scatter-gather send path: the GatherBuffer
// segment list, the serializer's borrowed inline primitive-array rows,
// the seal that pins frame images against post-send mutation, and the
// end-to-end guarantee that gathering never changes the bytes on the
// wire — even across ARQ retransmits under a lossy fault plan.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apps/microbench.hpp"
#include "serial/class_plans.hpp"
#include "serial/plan.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "support/gather_buffer.hpp"
#include "wire/framing.hpp"
#include "wire/session.hpp"

namespace rmiopt {
namespace {

// ---- GatherBuffer unit ------------------------------------------------------

TEST(GatherBuffer, PutApisMatchByteBuffer) {
  ByteBuffer expect;
  support::GatherBuffer got;
  expect.put_u8(7);
  expect.put_i32(-5);
  expect.put_u32(0xdeadbeef);
  expect.put_i64(-1234567890123);
  expect.put_f64(3.25);
  expect.put_varint(0);
  expect.put_varint(127);
  expect.put_varint(128);
  expect.put_varint(UINT64_MAX);
  expect.put_string("gather");

  got.put_u8(7);
  got.put_i32(-5);
  got.put_u32(0xdeadbeef);
  got.put_i64(-1234567890123);
  got.put_f64(3.25);
  got.put_varint(0);
  got.put_varint(127);
  got.put_varint(128);
  got.put_varint(UINT64_MAX);
  got.put_string("gather");

  const auto e = expect.contents();
  EXPECT_EQ(got.gather(), std::vector<std::uint8_t>(e.begin(), e.end()));
  EXPECT_EQ(got.size(), e.size());
  EXPECT_EQ(got.bytes_borrowed(), 0u);
  EXPECT_EQ(got.segment_count(), 1u);  // pure puts coalesce into one chunk
}

TEST(GatherBuffer, SmallSpansDeclineTheBorrow) {
  support::GatherBuffer g(/*min_borrow_bytes=*/64);
  const std::vector<std::uint8_t> small(8, 0xab);
  EXPECT_FALSE(g.borrow(small.data(), small.size()));
  EXPECT_EQ(g.bytes_borrowed(), 0u);
  EXPECT_EQ(g.gather(), small);  // copied, not lost
}

TEST(GatherBuffer, BorrowAliasesUntilSealed) {
  support::GatherBuffer g(/*min_borrow_bytes=*/16,
                          /*pin_copy_threshold=*/16);
  std::vector<std::uint8_t> payload(64, 0x11);
  g.put_u8(0xfe);
  ASSERT_TRUE(g.borrow(payload.data(), payload.size()));
  g.put_u8(0xff);
  EXPECT_EQ(g.bytes_borrowed(), 64u);
  EXPECT_EQ(g.segment_count(), 3u);
  EXPECT_EQ(g.size(), 66u);

  // Before seal the segment aliases application memory: a mutation shows.
  payload[0] = 0x22;
  EXPECT_EQ(g.gather()[1], 0x22);

  // After seal the image is frozen, whatever the application does.
  g.seal();
  const std::vector<std::uint8_t> sealed_image = g.gather();
  payload.assign(payload.size(), 0x99);
  EXPECT_EQ(g.gather(), sealed_image);
  g.seal();  // idempotent
  EXPECT_EQ(g.gather(), sealed_image);
  EXPECT_EQ(g.bytes_pinned(), 64u);  // above the pin threshold: snapshot
}

TEST(GatherBuffer, SealFoldsSegmentsUnderThePinThreshold) {
  support::GatherBuffer g(/*min_borrow_bytes=*/16,
                          /*pin_copy_threshold=*/256);
  std::vector<std::uint8_t> payload(64, 0x44);
  ASSERT_TRUE(g.borrow(payload.data(), payload.size()));
  g.seal();
  EXPECT_EQ(g.bytes_pinned(), 0u);  // 64 < 256: copy-on-seal, no refcount
  payload.assign(payload.size(), 0x00);
  EXPECT_EQ(g.gather(), std::vector<std::uint8_t>(64, 0x44));
}

TEST(GatherBuffer, WritesAfterSealAreRejected) {
  support::GatherBuffer g;
  g.put_u8(1);
  g.seal();
  EXPECT_THROW(g.put_u8(2), Error);
  std::vector<std::uint8_t> payload(128, 0);
  EXPECT_THROW(g.borrow(payload.data(), payload.size()), Error);
}

// ---- serializer: gathered vs contiguous -------------------------------------

class GatherWriterTest : public ::testing::Test {
 protected:
  GatherWriterTest() : class_plans(types), heap(types) {}

  om::ObjRef make_matrix(std::uint32_t rows, std::uint32_t cols) {
    const om::ClassId row_id = types.register_prim_array(om::TypeKind::Double);
    const om::ClassId mat_id = types.register_ref_array(row_id);
    om::ObjRef m = heap.alloc_array(mat_id, rows);
    for (std::uint32_t r = 0; r < rows; ++r) {
      om::ObjRef row = heap.alloc_array(row_id, cols);
      auto e = row->elems<double>();
      for (std::uint32_t c = 0; c < cols; ++c) e[c] = r * 100.0 + c;
      m->set_elem_ref(r, row);
    }
    return m;
  }

  std::unique_ptr<serial::NodePlan> matrix_site_plan() {
    const om::ClassId row_id = types.register_prim_array(om::TypeKind::Double);
    const om::ClassId mat_id = types.register_ref_array(row_id);
    auto row = std::make_unique<serial::NodePlan>();
    row->expected_class = row_id;
    auto mat = std::make_unique<serial::NodePlan>();
    mat->expected_class = mat_id;
    mat->elem_plan = std::move(row);
    return mat;
  }

  om::TypeRegistry types;
  serial::ClassPlanRegistry class_plans;
  om::Heap heap;
};

TEST_F(GatherWriterTest, GatheredImageMatchesContiguousByteForByte) {
  om::ObjRef m = make_matrix(4, 16);  // 128-byte rows: all borrow
  auto plan = matrix_site_plan();

  serial::SerialStats cs;
  serial::SerialWriter cw(class_plans, cs, /*cycle_enabled=*/false);
  ByteBuffer contiguous;
  cw.write(contiguous, *plan, m);

  serial::SerialStats gs;
  serial::SerialWriter gw(class_plans, gs, /*cycle_enabled=*/false);
  support::GatherBuffer gathered(/*min_borrow_bytes=*/64);
  gw.write(gathered, *plan, m);

  const auto e = contiguous.contents();
  EXPECT_EQ(gathered.gather(), std::vector<std::uint8_t>(e.begin(), e.end()));

  // Every inline primitive-array row rode as a borrowed segment: zero
  // per-row memcpys, and the copy counter dropped by exactly those bytes.
  EXPECT_EQ(gs.gather_segments, 4u);
  EXPECT_EQ(gs.gather_bytes_borrowed, 4u * 16u * sizeof(double));
  EXPECT_EQ(cs.gather_segments, 0u);
  EXPECT_EQ(cs.bytes_copied, gs.bytes_copied + gs.gather_bytes_borrowed);

  // A reader pointed at the gathered image sees the same object graph.
  serial::SerialStats rs;
  serial::SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/false);
  ByteBuffer in{gathered.gather()};
  om::ObjRef copy = r.read(in, *plan);
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->length(), 4u);
  EXPECT_DOUBLE_EQ(copy->get_elem_ref(2)->elems<double>()[3], 203.0);
}

TEST_F(GatherWriterTest, DynamicFallbackRowsStillCopy) {
  om::ObjRef m = make_matrix(2, 16);
  // A dynamic-dispatch node (no compile-time class): the gathered path
  // must keep copying here — borrowing is an *inline* node optimization.
  auto dyn = serial::make_dynamic_node(m->class_id());

  serial::SerialStats gs;
  serial::SerialWriter gw(class_plans, gs, /*cycle_enabled=*/true);
  support::GatherBuffer gathered(/*min_borrow_bytes=*/16);
  gw.write(gathered, *dyn, m);
  EXPECT_EQ(gs.gather_segments, 0u);
  EXPECT_EQ(gs.gather_bytes_borrowed, 0u);
  EXPECT_EQ(gathered.bytes_borrowed(), 0u);
}

// ---- S4: retransmit after mutation ------------------------------------------

TEST_F(GatherWriterTest, RetransmittedGatheredFrameIsByteIdentical) {
  om::ObjRef m = make_matrix(2, 32);  // 256-byte rows: borrowed, then pinned
  auto plan = matrix_site_plan();

  wire::Message msg;
  msg.header.kind = wire::MsgKind::Call;
  msg.header.source_machine = 0;
  msg.header.dest_machine = 1;
  msg.gathered = std::make_shared<support::GatherBuffer>(
      /*min_borrow_bytes=*/64, /*pin_copy_threshold=*/128);
  serial::SerialStats s;
  serial::SerialWriter w(class_plans, s, /*cycle_enabled=*/false);
  w.write(*msg.gathered, *plan, m);
  ASSERT_GT(msg.gathered->bytes_borrowed(), 0u);
  // Deliberately NOT sealing here: Session::post seals defensively before
  // the frame can be queued or retransmitted.

  wire::Session session(0, 1, wire::SessionConfig{});
  std::vector<std::vector<std::uint8_t>> attempts;
  session.post(std::move(msg), [&](const wire::Frame& frame) {
    attempts.push_back(std::move(wire::encode_frame(frame)).take());
    if (attempts.size() == 1) {
      // Between the first transmission and the retransmit the application
      // rewrites the borrowed row in place — the classic zero-copy hazard.
      auto e = m->get_elem_ref(0)->elems<double>();
      for (std::uint32_t c = 0; c < 32; ++c) e[c] = -1.0;
      return wire::SendOutcome::Timeout;
    }
    return wire::SendOutcome::Delivered;
  });

  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attempts[0], attempts[1]);
  EXPECT_EQ(session.retransmits(), 1u);

  // And the image carries the *pre-mutation* bytes: the frame was sealed
  // when it entered the session, not re-gathered per attempt.
  ByteBuffer img{std::vector<std::uint8_t>(attempts[1])};
  const wire::Frame decoded = wire::decode_frame(img);
  serial::SerialStats rs;
  serial::SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/false);
  ByteBuffer in{std::vector<std::uint8_t>(
      decoded.messages.front().payload.contents().begin(),
      decoded.messages.front().payload.contents().end())};
  om::ObjRef copy = r.read(in, *plan);
  EXPECT_DOUBLE_EQ(copy->get_elem_ref(0)->elems<double>()[5], 5.0);
}

// ---- end to end: lossy link, both transports --------------------------------

TEST(GatherSendEndToEnd, LossyLinkRetransmitsDeliverCorrectResults) {
  for (const auto tk :
       {net::TransportKind::Sim, net::TransportKind::Loopback}) {
    apps::ArrayBenchConfig cfg;
    cfg.rows = 16;
    cfg.cols = 16;
    cfg.iterations = 60;
    cfg.cost.zero_copy_send = true;
    cfg.transport = tk;
    cfg.faults.seed = 0x5EA1;
    cfg.faults.default_link = {.drop = 0.08};

    apps::ArrayBenchConfig base = cfg;
    base.cost.zero_copy_send = false;

    const apps::RunResult gathered =
        apps::run_array_bench(codegen::OptLevel::Site, cfg);
    const apps::RunResult contiguous =
        apps::run_array_bench(codegen::OptLevel::Site, base);

    // Drops forced the ARQ to resend sealed gathered frames...
    EXPECT_GT(gathered.net.retransmits, 0u);
    EXPECT_GT(gathered.total.serial.gather_bytes_borrowed, 0u);
    // ...and the receiver still saw exactly the bytes the contiguous path
    // would have produced: the app-level checksum agrees.
    EXPECT_DOUBLE_EQ(gathered.check, contiguous.check);
  }
}

}  // namespace
}  // namespace rmiopt
