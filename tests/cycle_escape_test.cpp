// Cycle analysis (§3.2, Figures 8/9) and escape analysis (§3.3,
// Figures 10/11) tests, plus the application models' verdicts that drive
// Tables 1–8.
#include <gtest/gtest.h>

#include "analysis/cycle_analysis.hpp"
#include "analysis/escape_analysis.hpp"
#include "apps/paper_figures.hpp"

namespace rmiopt::analysis {
namespace {

using apps::figures::FigureProgram;

struct Analyzed {
  FigureProgram p;
  std::unique_ptr<HeapAnalysis> heap;
  std::unique_ptr<CycleAnalysis> cycles;
  std::unique_ptr<EscapeAnalysis> escapes;

  explicit Analyzed(FigureProgram prog) : p(std::move(prog)) {
    ir::verify(*p.module);
    heap = std::make_unique<HeapAnalysis>(*p.module);
    heap->run();
    cycles = std::make_unique<CycleAnalysis>(*heap);
    escapes = std::make_unique<EscapeAnalysis>(*heap);
  }

  ir::Module::RemoteCallRef site(const std::string& name) const {
    return p.site(p.tag(name));
  }
};

// ---- cycle analysis ---------------------------------------------------------

TEST(CycleAnalysis, Figure8AliasedArgumentsNeedCycleDetection) {
  Analyzed a(apps::figures::make_figure8());
  EXPECT_TRUE(a.cycles->callsite_needs_cycle_table(a.site("bar")));
}

TEST(CycleAnalysis, DistinctArgumentsNeedNoCycleDetection) {
  Analyzed a(apps::figures::make_figure8_distinct());
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(a.site("bar")));
}

TEST(CycleAnalysis, Figure9SelfReferenceNeedsCycleDetection) {
  Analyzed a(apps::figures::make_figure9());
  EXPECT_TRUE(a.cycles->callsite_needs_cycle_table(a.site("bar")));
}

TEST(CycleAnalysis, Figure12ArrayIsProvenAcyclic) {
  Analyzed a(apps::figures::make_figure12());
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(a.site("send")));
}

TEST(CycleAnalysis, Figure14LinkedListIsMisclassifiedAsCyclic) {
  // §7: "Currently linked lists (containing no dynamic cycles) are
  // mistakenly identified as having cycles" — the allocation-site
  // granularity cannot distinguish a chain from a ring.
  Analyzed a(apps::figures::make_figure14());
  EXPECT_TRUE(a.cycles->callsite_needs_cycle_table(a.site("send")));
}

TEST(CycleAnalysis, WebserverCallIsProvenAcyclicBothWays) {
  // §5.4: "both the returned webpage and the string parameter are cycle
  // free".
  Analyzed a(apps::figures::make_webserver_model());
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(a.site("get_page")));
}

TEST(CycleAnalysis, SuperoptProgramIsProvenAcyclic) {
  // §5.3: "the compiler is able to analyze that the program object is
  // cycle free".
  Analyzed a(apps::figures::make_superopt_model());
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(a.site("test")));
}

TEST(CycleAnalysis, LuCallsAreProvenAcyclic) {
  Analyzed a(apps::figures::make_lu_model());
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(a.site("flush")));
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(a.site("fetch_row")));
  EXPECT_FALSE(a.cycles->callsite_needs_cycle_table(a.site("barrier")));
}

// ---- escape analysis --------------------------------------------------------

TEST(EscapeAnalysis, Figure10ArgumentIsReusable) {
  // "the 'a' parameter is never assigned to a global variable nor ... to a
  // field of another object. Thus can the object safely be reused."
  Analyzed a(apps::figures::make_figure10());
  EXPECT_TRUE(a.escapes->args_reusable(a.site("foo")));
}

TEST(EscapeAnalysis, Figure11StaticStoreEscapes) {
  // "'d' escapes therefore escapes 'a' as well. Neither the Data-object
  // nor the Bar-object can be reused."
  Analyzed a(apps::figures::make_figure11());
  EXPECT_FALSE(a.escapes->args_reusable(a.site("foo")));
}

TEST(EscapeAnalysis, Figure3ReturnedArgumentEscapes) {
  // foo returns its argument: it flows back to the caller, so the callee
  // cannot recycle it.
  Analyzed a(apps::figures::make_figure3());
  EXPECT_FALSE(a.escapes->args_reusable(a.site("foo")));
}

TEST(EscapeAnalysis, Figure12ArrayIsReusable) {
  Analyzed a(apps::figures::make_figure12());
  EXPECT_TRUE(a.escapes->args_reusable(a.site("send")));
}

TEST(EscapeAnalysis, Figure14ListIsReusable) {
  // Table 1: 'site + reuse' shows the big win — 100 allocations saved per
  // RMI — so the list argument must be proven reusable.
  Analyzed a(apps::figures::make_figure14());
  EXPECT_TRUE(a.escapes->args_reusable(a.site("send")));
}

TEST(EscapeAnalysis, WebserverUrlAndPageAreReusable) {
  // §5.4: "The returned webpage and url string are both determined to be
  // reusable objects."
  Analyzed a(apps::figures::make_webserver_model());
  EXPECT_TRUE(a.escapes->args_reusable(a.site("get_page")));
  EXPECT_TRUE(a.escapes->return_reusable(a.site("get_page")));
}

TEST(EscapeAnalysis, SuperoptQueuedProgramEscapes) {
  // §5.3: "The programs themselves are pushed into a queue and are thus
  // not eligible for reuse."
  Analyzed a(apps::figures::make_superopt_model());
  EXPECT_FALSE(a.escapes->args_reusable(a.site("test")));
}

TEST(EscapeAnalysis, LuFlushDataIsReusableAndFetchRowIsReusable) {
  Analyzed a(apps::figures::make_lu_model());
  EXPECT_TRUE(a.escapes->args_reusable(a.site("flush")));
  EXPECT_TRUE(a.escapes->return_reusable(a.site("fetch_row")));
  // barrier has no reference arguments: nothing to reuse.
  EXPECT_FALSE(a.escapes->args_reusable(a.site("barrier")));
}

}  // namespace
}  // namespace rmiopt::analysis
