// Edge-case tests for the serialization subsystem: the inline+CompactId
// protocol variant, protocol violations, unknown classes, handle misuse,
// and the zero-copy cost accounting.
#include <gtest/gtest.h>

#include "serial/class_plans.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "wire/protocol.hpp"

namespace rmiopt::serial {
namespace {

using om::ClassId;
using om::ObjRef;
using om::TypeKind;

class SerialEdgeTest : public ::testing::Test {
 protected:
  SerialEdgeTest() : class_plans(types), heap(types) {
    point = types.define_class(
        "Point", {{"x", TypeKind::Double}, {"y", TypeKind::Double}});
    darr = types.register_prim_array(TypeKind::Double);
  }
  om::TypeRegistry types;
  ClassPlanRegistry class_plans;
  om::Heap heap;
  ClassId point = om::kNoClass;
  ClassId darr = om::kNoClass;
};

TEST_F(SerialEdgeTest, InlineNodeWithCompactIdRoundTrips) {
  // A plan variant between BARE and dynamic: statically known layout but
  // type id still on the wire (belt-and-suspenders protocols use this).
  auto plan = std::make_unique<NodePlan>();
  plan->expected_class = point;
  plan->type_info = TypeInfoMode::CompactId;
  const om::ClassDescriptor& c = types.get(point);
  for (const auto& f : c.fields) {
    NodePlan::FieldAction fa;
    fa.field = &f;
    plan->fields.push_back(std::move(fa));
  }

  ObjRef p = heap.alloc(c);
  p->set<double>(c.fields[0], 1.5);
  SerialStats ws;
  SerialWriter w(class_plans, ws, false);
  ByteBuffer buf;
  w.write(buf, *plan, p);
  EXPECT_GT(ws.type_info_bytes, 0u);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, false);
  ObjRef copy = r.read(buf, *plan);
  EXPECT_TRUE(om::deep_equals(p, copy));
  EXPECT_EQ(rs.type_decodes, 1u);
  heap.free(p);
  heap.free(copy);
}

TEST_F(SerialEdgeTest, WireTypeMismatchOnInlinePlanThrows) {
  auto plan = std::make_unique<NodePlan>();
  plan->expected_class = point;
  plan->type_info = TypeInfoMode::CompactId;

  // Hand-craft a stream claiming a different class id.
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_varint(darr);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, false);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, HandleTagWithoutCycleProtocolThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(wire::kTagHandle);
  buf.put_varint(0);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/false);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, DanglingHandleThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(wire::kTagHandle);
  buf.put_varint(7);  // no object was ever registered
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/true);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, UnknownClassIdOnWireThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_varint(9999);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, UnknownClassNameOnHeavyWireThrows) {
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_string("com/example/DoesNotExist");
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  EXPECT_THROW(r.read_introspective(buf), Error);
}

TEST_F(SerialEdgeTest, CorruptTagThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(0x7f);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, OversizedArrayLengthIsRejectedBeforeAllocation) {
  auto plan = std::make_unique<NodePlan>();
  plan->expected_class = darr;
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_varint(1ull << 40);  // claims ~8 TB of doubles
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, false);
  EXPECT_THROW(r.read(buf, *plan), Error);
  EXPECT_EQ(rs.objects_allocated, 0u);  // rejected before allocating
}

TEST_F(SerialEdgeTest, EmptyArraysAndStringsRoundTrip) {
  ObjRef arr = heap.alloc_array(darr, 0);
  ObjRef str = heap.alloc_string("");
  for (ObjRef obj : {arr, str}) {
    auto root = serial::make_dynamic_node(obj->class_id());
    SerialStats ws;
    SerialWriter w(class_plans, ws, true);
    ByteBuffer buf;
    w.write(buf, *root, obj);
    SerialStats rs;
    SerialReader r(class_plans, heap, rs, true);
    ObjRef copy = r.read(buf, *root);
    EXPECT_TRUE(om::deep_equals(obj, copy));
    EXPECT_EQ(copy->length(), 0u);
    heap.free(copy);
  }
  heap.free(arr);
  heap.free(str);
}

TEST_F(SerialEdgeTest, ZeroCopyReceiveReducesCpuCost) {
  // Real-counter semantics: a pass that borrowed a large row out of the
  // pinned frame (recv_*) is cheaper than the same volume memcpy'd out
  // (bytes_copied_rx) — per-segment bookkeeping + per-KB preprocessing
  // beat the per-byte copy above the threshold.
  CostModel m;
  SerialStats copied;
  copied.bytes_copied_rx = 4096;
  SerialStats borrowed;
  borrowed.recv_segments = 1;
  borrowed.recv_bytes_borrowed = 4096;
  EXPECT_LT(borrowed.cpu_cost(m), copied.cpu_cost(m));
  // Under the crossover, many tiny segments cost more than one memcpy.
  SerialStats tiny_borrows;
  tiny_borrows.recv_segments = 64;
  tiny_borrows.recv_bytes_borrowed = 4096;
  SerialStats tiny_copy;
  tiny_copy.bytes_copied_rx = 4096;
  EXPECT_GT(tiny_borrows.cpu_cost(m), tiny_copy.cpu_cost(m));
  // Bytes that really were copied are charged identically with the knob
  // on or off — the knob changes which counters get populated, not the
  // price of a copy.
  CostModel zc;
  zc.zero_copy_receive = true;
  EXPECT_EQ(copied.cpu_cost(zc), copied.cpu_cost(m));
}

TEST_F(SerialEdgeTest, LazyCycleTableOnlyCountsWhenProbed) {
  // A message with no reference arguments never sets up a cycle table.
  SerialStats ws;
  SerialWriter w(class_plans, ws, /*cycle_enabled=*/true);
  ByteBuffer buf;
  auto plan = serial::make_dynamic_node(point);
  w.write(buf, *plan, nullptr);  // null argument: tag only
  EXPECT_EQ(ws.cycle_tables_created, 0u);
  EXPECT_EQ(ws.cycle_lookups, 0u);

  ObjRef p = heap.alloc(point);
  w.write(buf, *plan, p);
  EXPECT_EQ(ws.cycle_tables_created, 1u);
  w.write(buf, *plan, p);  // same pass: still one table
  EXPECT_EQ(ws.cycle_tables_created, 1u);
  heap.free(p);
}

}  // namespace
}  // namespace rmiopt::serial
