// Edge-case tests for the serialization subsystem: the inline+CompactId
// protocol variant, protocol violations, unknown classes, handle misuse,
// and the zero-copy cost accounting.
#include <gtest/gtest.h>

#include "serial/class_plans.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "wire/protocol.hpp"

namespace rmiopt::serial {
namespace {

using om::ClassId;
using om::ObjRef;
using om::TypeKind;

class SerialEdgeTest : public ::testing::Test {
 protected:
  SerialEdgeTest() : class_plans(types), heap(types) {
    point = types.define_class(
        "Point", {{"x", TypeKind::Double}, {"y", TypeKind::Double}});
    darr = types.register_prim_array(TypeKind::Double);
  }
  om::TypeRegistry types;
  ClassPlanRegistry class_plans;
  om::Heap heap;
  ClassId point = om::kNoClass;
  ClassId darr = om::kNoClass;
};

TEST_F(SerialEdgeTest, InlineNodeWithCompactIdRoundTrips) {
  // A plan variant between BARE and dynamic: statically known layout but
  // type id still on the wire (belt-and-suspenders protocols use this).
  auto plan = std::make_unique<NodePlan>();
  plan->expected_class = point;
  plan->type_info = TypeInfoMode::CompactId;
  const om::ClassDescriptor& c = types.get(point);
  for (const auto& f : c.fields) {
    NodePlan::FieldAction fa;
    fa.field = &f;
    plan->fields.push_back(std::move(fa));
  }

  ObjRef p = heap.alloc(c);
  p->set<double>(c.fields[0], 1.5);
  SerialStats ws;
  SerialWriter w(class_plans, ws, false);
  ByteBuffer buf;
  w.write(buf, *plan, p);
  EXPECT_GT(ws.type_info_bytes, 0u);

  SerialStats rs;
  SerialReader r(class_plans, heap, rs, false);
  ObjRef copy = r.read(buf, *plan);
  EXPECT_TRUE(om::deep_equals(p, copy));
  EXPECT_EQ(rs.type_decodes, 1u);
  heap.free(p);
  heap.free(copy);
}

TEST_F(SerialEdgeTest, WireTypeMismatchOnInlinePlanThrows) {
  auto plan = std::make_unique<NodePlan>();
  plan->expected_class = point;
  plan->type_info = TypeInfoMode::CompactId;

  // Hand-craft a stream claiming a different class id.
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_varint(darr);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, false);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, HandleTagWithoutCycleProtocolThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(wire::kTagHandle);
  buf.put_varint(0);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/false);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, DanglingHandleThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(wire::kTagHandle);
  buf.put_varint(7);  // no object was ever registered
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, /*cycle_enabled=*/true);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, UnknownClassIdOnWireThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_varint(9999);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, UnknownClassNameOnHeavyWireThrows) {
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_string("com/example/DoesNotExist");
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  EXPECT_THROW(r.read_introspective(buf), Error);
}

TEST_F(SerialEdgeTest, CorruptTagThrows) {
  auto plan = serial::make_dynamic_node(point);
  ByteBuffer buf;
  buf.put_u8(0x7f);
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, true);
  EXPECT_THROW(r.read(buf, *plan), Error);
}

TEST_F(SerialEdgeTest, OversizedArrayLengthIsRejectedBeforeAllocation) {
  auto plan = std::make_unique<NodePlan>();
  plan->expected_class = darr;
  ByteBuffer buf;
  buf.put_u8(wire::kTagInline);
  buf.put_varint(1ull << 40);  // claims ~8 TB of doubles
  SerialStats rs;
  SerialReader r(class_plans, heap, rs, false);
  EXPECT_THROW(r.read(buf, *plan), Error);
  EXPECT_EQ(rs.objects_allocated, 0u);  // rejected before allocating
}

TEST_F(SerialEdgeTest, EmptyArraysAndStringsRoundTrip) {
  ObjRef arr = heap.alloc_array(darr, 0);
  ObjRef str = heap.alloc_string("");
  for (ObjRef obj : {arr, str}) {
    auto root = serial::make_dynamic_node(obj->class_id());
    SerialStats ws;
    SerialWriter w(class_plans, ws, true);
    ByteBuffer buf;
    w.write(buf, *root, obj);
    SerialStats rs;
    SerialReader r(class_plans, heap, rs, true);
    ObjRef copy = r.read(buf, *root);
    EXPECT_TRUE(om::deep_equals(obj, copy));
    EXPECT_EQ(copy->length(), 0u);
    heap.free(copy);
  }
  heap.free(arr);
  heap.free(str);
}

TEST_F(SerialEdgeTest, ZeroCopyReceiveReducesCpuCost) {
  SerialStats s;
  s.bytes_copied = 4096;     // send side always copies
  s.bytes_copied_rx = 4096;  // receive side is the zero-copy candidate
  CostModel normal;
  CostModel zc;
  zc.zero_copy_receive = true;
  EXPECT_LT(s.cpu_cost(zc), s.cpu_cost(normal));
  // The send-side copy cost is unaffected.
  SerialStats tx_only;
  tx_only.bytes_copied = 4096;
  EXPECT_EQ(tx_only.cpu_cost(zc), tx_only.cpu_cost(normal));
}

TEST_F(SerialEdgeTest, LazyCycleTableOnlyCountsWhenProbed) {
  // A message with no reference arguments never sets up a cycle table.
  SerialStats ws;
  SerialWriter w(class_plans, ws, /*cycle_enabled=*/true);
  ByteBuffer buf;
  auto plan = serial::make_dynamic_node(point);
  w.write(buf, *plan, nullptr);  // null argument: tag only
  EXPECT_EQ(ws.cycle_tables_created, 0u);
  EXPECT_EQ(ws.cycle_lookups, 0u);

  ObjRef p = heap.alloc(point);
  w.write(buf, *plan, p);
  EXPECT_EQ(ws.cycle_tables_created, 1u);
  w.write(buf, *plan, p);  // same pass: still one table
  EXPECT_EQ(ws.cycle_tables_created, 1u);
  heap.free(p);
}

}  // namespace
}  // namespace rmiopt::serial
