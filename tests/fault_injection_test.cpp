// Fault-injection tests: the seeded FaultPlan, the session ARQ, the
// receive-side dedup window, at-most-once RMI semantics, and end-to-end
// fault masking across the paper applications.
//
// The contract under test (docs/FAULTS.md): with any seeded plan of
// drop/duplicate/reorder/corrupt faults, every application completes with
// its fault-free result — faults cost virtual time, never correctness —
// and two runs with the same seed are identical, makespan and counters
// included.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/superopt.hpp"
#include "apps/webserver.hpp"
#include "net/fault.hpp"
#include "rmi/runtime.hpp"
#include "wire/session.hpp"

namespace rmiopt {
namespace {

using codegen::OptLevel;

// ---- DedupWindow ------------------------------------------------------------

TEST(DedupWindow, FreshDuplicateStale) {
  wire::DedupWindow w;
  EXPECT_EQ(w.accept(0), wire::DedupWindow::Verdict::Fresh);
  // A retransmit of a delivered seq arrives *behind* the horizon: stale.
  EXPECT_EQ(w.accept(0), wire::DedupWindow::Verdict::Stale);
  // An out-of-order seq is held above the horizon; its copy is a
  // duplicate, not stale.
  EXPECT_EQ(w.accept(2), wire::DedupWindow::Verdict::Fresh);
  EXPECT_EQ(w.accept(2), wire::DedupWindow::Verdict::Duplicate);
  EXPECT_EQ(w.accept(1), wire::DedupWindow::Verdict::Fresh);
  EXPECT_EQ(w.horizon(), 3u);  // contiguous prefix delivered
}

TEST(DedupWindow, OutOfOrderSequencesAreAcceptedOnce) {
  wire::DedupWindow w;
  EXPECT_EQ(w.accept(0), wire::DedupWindow::Verdict::Fresh);
  EXPECT_EQ(w.accept(5), wire::DedupWindow::Verdict::Fresh);
  EXPECT_EQ(w.accept(3), wire::DedupWindow::Verdict::Fresh);
  EXPECT_EQ(w.accept(5), wire::DedupWindow::Verdict::Duplicate);
  EXPECT_EQ(w.accept(1), wire::DedupWindow::Verdict::Fresh);
  EXPECT_EQ(w.accept(2), wire::DedupWindow::Verdict::Fresh);
  // 0..3 and 5 seen; horizon advanced over the contiguous 0..3.
  EXPECT_EQ(w.horizon(), 4u);
  EXPECT_EQ(w.accept(0), wire::DedupWindow::Verdict::Stale);
  EXPECT_EQ(w.accept(4), wire::DedupWindow::Verdict::Fresh);
  EXPECT_EQ(w.horizon(), 6u);  // ...and now over 4 and 5
  EXPECT_EQ(w.accept(5), wire::DedupWindow::Verdict::Stale);
}

TEST(DedupWindow, CapacityBoundForcesTheHorizonForward) {
  wire::DedupWindow w(/*capacity=*/4);
  for (std::uint64_t seq : {10u, 20u, 30u, 40u, 50u}) {
    EXPECT_EQ(w.accept(seq), wire::DedupWindow::Verdict::Fresh);
  }
  // The fifth out-of-order entry slid the window past the oldest.
  EXPECT_EQ(w.horizon(), 11u);
  EXPECT_EQ(w.accept(10), wire::DedupWindow::Verdict::Stale);
  EXPECT_EQ(w.accept(11), wire::DedupWindow::Verdict::Fresh);
}

// Regression: a forced horizon slide skips over sequences that were never
// delivered.  Those gap sequences used to be classified Stale when their
// (delayed or retransmitted) frame finally arrived — a silently dropped
// message.  The window now remembers skipped-over sequences and admits
// them exactly once.
TEST(DedupWindow, ForcedSlideKeepsSkippedSequencesRecoverable) {
  wire::DedupWindow w(/*capacity=*/4);
  EXPECT_EQ(w.accept(0), wire::DedupWindow::Verdict::Fresh);
  // 5..8 pile up out of order; 9 overflows the window and forces the
  // horizon past the still-missing 1..4.
  for (std::uint64_t s = 5; s <= 9; ++s) {
    EXPECT_EQ(w.accept(s), wire::DedupWindow::Verdict::Fresh);
  }
  EXPECT_EQ(w.forced_slides(), 1u);
  // The stragglers arrive after the slide: each delivers exactly once.
  for (std::uint64_t s = 1; s <= 4; ++s) {
    EXPECT_EQ(w.accept(s), wire::DedupWindow::Verdict::Fresh) << "seq " << s;
    EXPECT_EQ(w.accept(s), wire::DedupWindow::Verdict::Stale) << "seq " << s;
  }
  EXPECT_EQ(w.late_recoveries(), 4u);
  EXPECT_EQ(w.skipped_expired(), 0u);
}

// Sustained heavy reorder: every batch of 5 frames overtakes the 4 before
// it, forcing a slide per batch.  Every sequence must still deliver
// exactly once — no drops (Stale on first arrival), no double delivery.
TEST(DedupWindow, HeavyReorderDeliversEveryFrameExactlyOnce) {
  wire::DedupWindow w(/*capacity=*/4);
  std::uint64_t accepted = 0;
  auto deliver = [&](std::uint64_t s) {
    if (w.accept(s) == wire::DedupWindow::Verdict::Fresh) ++accepted;
    // A second copy of the same frame must never deliver again.
    EXPECT_NE(w.accept(s), wire::DedupWindow::Verdict::Fresh) << "seq " << s;
  };
  deliver(0);
  constexpr std::uint64_t kRounds = 50;
  for (std::uint64_t base = 1; base < 1 + 9 * kRounds; base += 9) {
    for (std::uint64_t s = base + 4; s <= base + 8; ++s) deliver(s);
    for (std::uint64_t s = base; s <= base + 3; ++s) deliver(s);
  }
  EXPECT_EQ(accepted, 1 + 9 * kRounds);  // exactly once, every frame
  EXPECT_EQ(w.forced_slides(), kRounds);
  EXPECT_EQ(w.late_recoveries(), 4 * kRounds);
  EXPECT_EQ(w.skipped_expired(), 0u);
}

// The recovery set is bounded: a slide over a gap wider than the window
// keeps only the newest `capacity` skipped sequences and counts the rest
// as expired — those are the only frames the window may still drop, and
// the counter makes the loss observable.
TEST(DedupWindow, SkippedSetIsBoundedAndExpiredGapsStayStale) {
  wire::DedupWindow w(/*capacity=*/4);
  EXPECT_EQ(w.accept(0), wire::DedupWindow::Verdict::Fresh);
  for (std::uint64_t s = 100; s <= 104; ++s) {
    EXPECT_EQ(w.accept(s), wire::DedupWindow::Verdict::Fresh);
  }
  EXPECT_EQ(w.forced_slides(), 1u);
  EXPECT_EQ(w.skipped_expired(), 95u);  // gap 1..99 minus the kept 96..99
  EXPECT_EQ(w.accept(97), wire::DedupWindow::Verdict::Fresh);  // kept tail
  EXPECT_EQ(w.accept(50), wire::DedupWindow::Verdict::Stale);  // expired
  EXPECT_EQ(w.late_recoveries(), 1u);
}

// ---- FaultPlan --------------------------------------------------------------

TEST(FaultPlan, DiceAreAPureFunctionOfTheFrameIdentity) {
  net::FaultPlan plan;
  plan.seed = 99;
  SplitMix64 a = plan.dice(0, 1, 7, 0);
  SplitMix64 b = plan.dice(0, 1, 7, 0);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.next(), b.next());

  // Any component of the identity perturbs the stream.
  SplitMix64 c = plan.dice(0, 1, 7, 1);
  SplitMix64 d = plan.dice(1, 0, 7, 0);
  SplitMix64 e = plan.dice(0, 1, 8, 0);
  const std::uint64_t base = plan.dice(0, 1, 7, 0).next();
  EXPECT_NE(c.next(), base);
  EXPECT_NE(d.next(), base);
  EXPECT_NE(e.next(), base);
}

TEST(FaultPlan, InertPlanIsDisabledAndPerLinkOverridesApply) {
  net::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.set_link(0, 1, {.drop = 0.5});
  EXPECT_TRUE(plan.enabled());
  EXPECT_DOUBLE_EQ(plan.link(0, 1).drop, 0.5);
  EXPECT_DOUBLE_EQ(plan.link(1, 0).drop, 0.0);  // directed

  net::FaultPlan crash_only;
  crash_only.crash_at(2, 1'000);
  EXPECT_TRUE(crash_only.enabled());
  EXPECT_FALSE(crash_only.crashed(2, 999));
  EXPECT_TRUE(crash_only.crashed(2, 1'000));
  EXPECT_FALSE(crash_only.crashed(1, 5'000));
}

// ---- session ARQ ------------------------------------------------------------

wire::Message arq_msg() {
  wire::Message m;
  m.header.kind = wire::MsgKind::Call;
  m.header.source_machine = 0;
  m.header.dest_machine = 1;
  return m;
}

TEST(SessionArq, TimeoutsAreChargedWithExponentialBackoffThenRetransmit) {
  std::int64_t charged = 0;
  wire::Session s(0, 1, wire::SessionConfig{},
                  [&](std::int64_t ns) { charged += ns; });
  int attempts = 0;
  const wire::FrameSink sink = [&](const wire::Frame&) {
    return ++attempts < 3 ? wire::SendOutcome::Timeout
                          : wire::SendOutcome::Delivered;
  };
  s.post(arq_msg(), sink);
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(s.retransmits(), 2u);
  EXPECT_EQ(charged, 60'000 + 120'000);  // doubling timer
}

TEST(SessionArq, NackedFramesPayOnlyTheTurnaround) {
  std::int64_t charged = 0;
  wire::Session s(0, 1, wire::SessionConfig{},
                  [&](std::int64_t ns) { charged += ns; });
  int attempts = 0;
  const wire::FrameSink sink = [&](const wire::Frame&) {
    return ++attempts < 2 ? wire::SendOutcome::Nacked
                          : wire::SendOutcome::Delivered;
  };
  s.post(arq_msg(), sink);
  EXPECT_EQ(charged, 30'000);
}

TEST(SessionArq, ADeadLinkRaisesProtocolErrorAfterTheRetransmitBudget) {
  wire::SessionConfig cfg;
  cfg.max_retransmits = 3;
  wire::Session s(0, 1, cfg, nullptr);
  int attempts = 0;
  const wire::FrameSink sink = [&](const wire::Frame&) {
    ++attempts;
    return wire::SendOutcome::Timeout;
  };
  EXPECT_THROW(s.post(arq_msg(), sink), ProtocolError);
  EXPECT_EQ(attempts, 4);  // initial send + 3 retransmits
}

// ---- end-to-end fault masking ----------------------------------------------

net::FaultPlan lossy_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.seed = seed;
  plan.default_link = {.drop = 0.05, .duplicate = 0.03, .reorder = 0.03,
                       .corrupt = 0.02};
  return plan;
}

TEST(FaultMasking, ArrayBenchIsCorrectAtEveryLevel) {
  for (OptLevel level : codegen::kPaperLevels) {
    apps::ArrayBenchConfig cfg;
    cfg.iterations = 20;
    const apps::RunResult clean = apps::run_array_bench(level, cfg);
    cfg.faults = lossy_plan(7);
    const apps::RunResult faulty = apps::run_array_bench(level, cfg);

    EXPECT_EQ(faulty.check, clean.check) << codegen::to_string(level);
    // The serializer/RPC event counts are untouched: retransmission lives
    // entirely below the RMI layer.
    EXPECT_EQ(faulty.total, clean.total) << codegen::to_string(level);
    EXPECT_GT(faulty.net.faults(), 0u);
    EXPECT_GT(faulty.net.retransmits, 0u);
    EXPECT_GE(faulty.makespan.as_nanos(), clean.makespan.as_nanos());
  }
}

TEST(FaultMasking, LinkedListBenchIsCorrectAtEveryLevel) {
  for (OptLevel level : codegen::kPaperLevels) {
    apps::ListBenchConfig cfg;
    cfg.iterations = 40;  // enough frames that the 5% drop rate must hit
    const apps::RunResult clean = apps::run_list_bench(level, cfg);
    cfg.faults = lossy_plan(11);
    const apps::RunResult faulty = apps::run_list_bench(level, cfg);
    EXPECT_EQ(faulty.check, clean.check) << codegen::to_string(level);
    EXPECT_EQ(faulty.total, clean.total) << codegen::to_string(level);
    EXPECT_GT(faulty.net.faults(), 0u);
  }
}

TEST(FaultMasking, LuStaysNumericallyCorrectAtEveryLevel) {
  for (OptLevel level : codegen::kPaperLevels) {
    apps::LuConfig cfg;
    cfg.n = 16;
    cfg.faults = lossy_plan(13);
    const apps::RunResult r = apps::run_lu(level, cfg);
    EXPECT_LT(r.check, 1e-9) << codegen::to_string(level);
    EXPECT_GT(r.net.faults(), 0u);
  }
}

TEST(FaultMasking, SuperoptFindsTheSameSequencesAtEveryLevel) {
  for (OptLevel level : codegen::kPaperLevels) {
    apps::SuperoptConfig cfg;
    const apps::RunResult clean = apps::run_superopt(level, cfg);
    cfg.faults = lossy_plan(17);
    const apps::RunResult faulty = apps::run_superopt(level, cfg);
    EXPECT_EQ(faulty.check, clean.check) << codegen::to_string(level);
    EXPECT_GT(faulty.net.faults(), 0u);
  }
}

TEST(FaultMasking, WebserverServesEveryPageAtEveryLevel) {
  for (OptLevel level : codegen::kPaperLevels) {
    apps::WebserverConfig cfg;
    cfg.requests = 100;
    cfg.faults = lossy_plan(19);
    const apps::RunResult r = apps::run_webserver(level, cfg);
    EXPECT_DOUBLE_EQ(r.check, 100.0 * cfg.page_size)
        << codegen::to_string(level);
    EXPECT_GT(r.net.faults(), 0u);
    EXPECT_EQ(r.failovers, 0u);  // lossy but nobody died
  }
}

// ---- seeded determinism -----------------------------------------------------

TEST(FaultDeterminism, SameSeedSameRunBitForBit) {
  apps::ArrayBenchConfig cfg;
  cfg.iterations = 20;
  cfg.faults = lossy_plan(23);
  const apps::RunResult a =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  const apps::RunResult b =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  EXPECT_EQ(a.makespan.as_nanos(), b.makespan.as_nanos());
  EXPECT_EQ(a.net, b.net);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.check, b.check);
}

TEST(FaultDeterminism, DifferentSeedDifferentFaultSchedule) {
  apps::ArrayBenchConfig cfg;
  cfg.iterations = 20;
  cfg.faults = lossy_plan(23);
  const apps::RunResult a =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  cfg.faults = lossy_plan(24);
  const apps::RunResult b =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  EXPECT_EQ(a.check, b.check);  // both still correct
  EXPECT_NE(a.makespan.as_nanos(), b.makespan.as_nanos());
}

TEST(FaultDeterminism, SimAndLoopbackBackendsAgreeUnderTheSamePlan) {
  apps::ArrayBenchConfig cfg;
  cfg.iterations = 20;
  cfg.faults = lossy_plan(29);
  cfg.transport = net::TransportKind::Sim;
  const apps::RunResult sim =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  cfg.transport = net::TransportKind::Loopback;
  const apps::RunResult loop =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  EXPECT_EQ(sim.makespan.as_nanos(), loop.makespan.as_nanos());
  EXPECT_EQ(sim.net, loop.net);
  EXPECT_EQ(sim.total, loop.total);
  EXPECT_EQ(sim.check, loop.check);
}

TEST(FaultDeterminism, FaultFreePlanLeavesTheRunUntouched) {
  apps::ArrayBenchConfig cfg;
  cfg.iterations = 20;
  const apps::RunResult bare =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  cfg.faults.seed = 42;  // a seed alone injects nothing
  const apps::RunResult seeded =
      apps::run_array_bench(OptLevel::SiteReuseCycle, cfg);
  EXPECT_EQ(bare.makespan.as_nanos(), seeded.makespan.as_nanos());
  EXPECT_EQ(bare.net, seeded.net);
  EXPECT_EQ(seeded.net.faults(), 0u);
  EXPECT_EQ(seeded.net.retransmits, 0u);
}

// ---- crashes and failover ---------------------------------------------------

TEST(Failover, WebserverMasksASlaveDeadFromStartup) {
  apps::WebserverConfig cfg;
  cfg.machines = 4;  // master + 3 slaves
  cfg.requests = 60;
  cfg.faults.crash_at(2, 0);  // slave machine 2 never comes up
  const apps::RunResult r =
      apps::run_webserver(OptLevel::SiteReuseCycle, cfg);
  EXPECT_DOUBLE_EQ(r.check, 60.0 * cfg.page_size);
  EXPECT_GE(r.failovers, 1u);
  EXPECT_GT(r.net.timeouts, 0u);
  EXPECT_GE(r.total.call_timeouts, 1u);  // the dead slave's bind attempt
}

TEST(Failover, WebserverReRoutesMidRunWhenALinkDies) {
  apps::WebserverConfig cfg;
  cfg.machines = 3;  // master + 2 slaves
  cfg.requests = 60;
  // The master's link to slave machine 1 silently eats every frame: the
  // first request routed there exhausts the ARQ, raises RmiTimeout, and
  // the master re-binds that slave's name to the survivor.
  cfg.faults.set_link(0, 1, {.drop = 1.0});
  // The slave's bind *call* gets through but its reply is eaten, so that
  // caller can only recover via the real-time backstop — keep it short.
  cfg.call_timeout_ms = 1'000;
  const apps::RunResult r =
      apps::run_webserver(OptLevel::SiteReuseCycle, cfg);
  EXPECT_DOUBLE_EQ(r.check, 60.0 * cfg.page_size);
  EXPECT_GE(r.failovers, 1u);
  EXPECT_GE(r.total.call_timeouts, 1u);
}

// ---- at-most-once and typed recoverable errors ------------------------------

class AtMostOnceTest : public ::testing::Test {
 protected:
  AtMostOnceTest() : cluster(2, types), sys(cluster, types) {}
  ~AtMostOnceTest() override { sys.stop(); }

  // Argument-free, return-free call site (the at-most-once machinery is
  // payload-agnostic).
  std::uint32_t add_site(std::uint32_t method) {
    rmi::CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "amo.site";
    return sys.add_callsite(std::move(cs));
  }

  // Crafted messages are processed by the dispatcher threads; poll the
  // counters (real time, generous bound) instead of racing stop().
  static void wait_until(const std::function<bool()>& done) {
    for (int i = 0; i < 5000 && !done(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(done());
  }

  // A hand-crafted argument-free Call, as the dispatcher would see it
  // after a (hypothetical) end-to-end duplication.
  wire::Message craft_call(std::uint32_t callsite, std::uint32_t export_id,
                           std::uint32_t seq) {
    wire::Message m;
    m.header.kind = wire::MsgKind::Call;
    m.header.callsite_id = callsite;
    m.header.target_export = export_id;
    m.header.seq = seq;
    m.header.source_machine = 0;
    m.header.dest_machine = 1;
    m.payload.put_varint(0);  // no scalars
    return m;
  }

  om::TypeRegistry types;
  net::Cluster cluster;
  rmi::RmiSystem sys;
};

TEST_F(AtMostOnceTest, DuplicateOfACompletedCallReplaysTheCachedReply) {
  std::atomic<int> executions{0};
  const auto mid = sys.define_method("count", [&](rmi::CallContext&, auto,
                                                  auto) {
    ++executions;
    return rmi::HandlerResult{};
  });
  const auto site = add_site(mid);
  const rmi::RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc_string("t"));
  sys.start();

  EXPECT_EQ(sys.invoke(0, ref, site, {}), nullptr);
  // Re-inject the same logical call (the runtime assigned it seq 1), as
  // if an end-to-end duplicate had slipped past the transport dedup.
  cluster.send(craft_call(site, ref.export_id, 1));
  wait_until([&] { return sys.stats(0).stray_replies >= 1; });
  sys.stop();

  EXPECT_EQ(executions.load(), 1);  // the handler never ran twice
  const auto callee = sys.stats(1);
  EXPECT_EQ(callee.duplicate_calls, 1u);
  EXPECT_EQ(callee.replayed_replies, 1u);
  // The replayed Ack found no pending call at the caller: dropped, counted.
  EXPECT_EQ(sys.stats(0).stray_replies, 1u);
}

TEST_F(AtMostOnceTest, DuplicateOfAnInFlightCallIsDropped) {
  std::atomic<int> executions{0};
  const auto mid = sys.define_method("defer", [&](rmi::CallContext&, auto,
                                                  auto) {
    ++executions;
    return rmi::HandlerResult{.deferred = true};  // never replies
  });
  const auto site = add_site(mid);
  const rmi::RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc_string("t"));
  sys.start();

  cluster.send(craft_call(site, ref.export_id, 77));
  cluster.send(craft_call(site, ref.export_id, 77));
  wait_until([&] { return sys.stats(1).duplicate_calls >= 1; });
  sys.stop();

  EXPECT_EQ(executions.load(), 1);
  const auto callee = sys.stats(1);
  EXPECT_EQ(callee.duplicate_calls, 1u);
  EXPECT_EQ(callee.replayed_replies, 0u);  // nothing to replay yet
}

// Regression: with more concurrent in-flight calls than the reply cache
// holds, FIFO eviction used to release entries whose handler was still
// running (or deferred) — a duplicate arriving then was admitted as a
// fresh call and the handler ran twice.  In-flight entries are now
// pinned: eviction skips (and counts) them until they reply.
TEST(ReplyCachePinning, InFlightEntriesSurviveEvictionPastCapacity) {
  om::TypeRegistry types;
  net::Cluster cluster(2, types);
  rmi::ExecutorConfig exec;
  exec.reply_cache_capacity = 2;  // tiny: 5 concurrent calls overflow it
  rmi::RmiSystem sys(cluster, types, exec);

  std::atomic<int> executions{0};
  const auto mid = sys.define_method(
      "park", [&](rmi::CallContext&, auto, auto) {
        ++executions;
        return rmi::HandlerResult{.deferred = true};  // never replies
      });
  rmi::CompiledCallSite cs;
  cs.method_id = mid;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "pin.site";
  const auto site = sys.add_callsite(std::move(cs));
  const rmi::RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc_string("t"));
  sys.start();

  auto craft = [&](std::uint32_t seq) {
    wire::Message m;
    m.header.kind = wire::MsgKind::Call;
    m.header.callsite_id = site;
    m.header.target_export = ref.export_id;
    m.header.seq = seq;
    m.header.source_machine = 0;
    m.header.dest_machine = 1;
    m.payload.put_varint(0);  // no scalars
    return m;
  };
  auto wait_until = [](const std::function<bool()>& done) {
    for (int i = 0; i < 5000 && !done(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(done());
  };

  constexpr int kCalls = 5;  // all deferred: all 5 in flight at once
  for (std::uint32_t seq = 1; seq <= kCalls; ++seq) {
    cluster.send(craft(seq));
  }
  wait_until([&] { return executions.load() == kCalls; });
  // Admitting calls 3..5 pushed the cache past capacity; eviction must
  // have skipped (and counted) the pinned in-flight entries.
  EXPECT_GT(sys.stats(1).reply_cache_pins, 0u);

  // Duplicates of every call — including the oldest, which unpinned FIFO
  // eviction would have forgotten — must be suppressed.
  for (std::uint32_t seq = 1; seq <= kCalls; ++seq) {
    cluster.send(craft(seq));
  }
  wait_until([&] { return sys.stats(1).duplicate_calls >= kCalls; });
  sys.stop();

  EXPECT_EQ(executions.load(), kCalls);  // no handler ever ran twice
  EXPECT_EQ(sys.stats(1).duplicate_calls, 5u);
  EXPECT_EQ(sys.stats(1).replayed_replies, 0u);  // none had replied yet
}

TEST_F(AtMostOnceTest, StrayReplyIsCountedNotFatal) {
  sys.start();
  wire::Message stray;
  stray.header.kind = wire::MsgKind::Ack;
  stray.header.seq = 4242;  // nobody is waiting
  stray.header.source_machine = 1;
  stray.header.dest_machine = 0;
  cluster.send(std::move(stray));
  wait_until([&] { return sys.stats(0).stray_replies >= 1; });
  sys.stop();
  EXPECT_EQ(sys.stats(0).stray_replies, 1u);
}

TEST_F(AtMostOnceTest, BadExportIdBecomesARemoteExceptionNotAnAbort) {
  const auto mid = sys.define_method(
      "noop", [](rmi::CallContext&, auto, auto) {
        return rmi::HandlerResult{};
      });
  const auto site = add_site(mid);
  sys.export_object(1, cluster.machine(1).heap().alloc_string("t"));
  sys.start();
  EXPECT_THROW(sys.invoke(0, rmi::RemoteRef{1, 999}, site, {}),
               rmi::RemoteException);
}

TEST_F(AtMostOnceTest, UnknownCallSiteIsAnsweredExceptionally) {
  sys.start();
  wire::Message bogus = craft_call(/*callsite=*/12345, 0, 555);
  cluster.send(std::move(bogus));
  // The callee answered with a typed exception; nobody was waiting for
  // it at the caller, so it lands as a stray reply.  No process died.
  wait_until([&] { return sys.stats(0).stray_replies >= 1; });
  sys.stop();
  EXPECT_EQ(sys.stats(0).stray_replies, 1u);
}

TEST(RmiTimeoutTest, CallToACrashedMachineRaisesTypedTimeout) {
  om::TypeRegistry types;
  net::FaultPlan plan;
  plan.crash_at(1, 0);
  net::Cluster cluster(2, types, serial::CostModel{},
                       net::TransportKind::Sim, wire::SessionConfig{}, plan);
  rmi::RmiSystem sys(cluster, types);
  const auto mid = sys.define_method(
      "noop", [](rmi::CallContext&, auto, auto) {
        return rmi::HandlerResult{};
      });
  rmi::CompiledCallSite cs;
  cs.method_id = mid;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "crash.site";
  const auto site = sys.add_callsite(std::move(cs));
  const rmi::RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc_string("t"));
  sys.start();
  EXPECT_THROW(sys.invoke(0, ref, site, {}), rmi::RmiTimeout);
  EXPECT_EQ(sys.stats(0).call_timeouts, 1u);
  EXPECT_GT(cluster.stats().timeouts, 0u);
  sys.stop();
}

}  // namespace
}  // namespace rmiopt
