// Tests for the heartbeat failure detector, fast-fail call routing
// (rmi::MachineDown) and the name service's automatic failover.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "apps/microbench.hpp"
#include "apps/webserver.hpp"
#include "net/cluster.hpp"
#include "net/failure_detector.hpp"
#include "rmi/name_service.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt {
namespace {

using codegen::OptLevel;

net::FailureDetectorConfig enabled_detector() {
  net::FailureDetectorConfig d;
  d.enabled = true;
  return d;
}

// ---- detector unit tests ----------------------------------------------------

TEST(FailureDetector, DisabledConfigLeavesTheClusterDetectorless) {
  om::TypeRegistry types;
  net::Cluster cluster(2, types);
  EXPECT_EQ(cluster.detector(), nullptr);
  EXPECT_EQ(cluster.stats().heartbeats, 0u);
  EXPECT_EQ(cluster.stats().machine_deaths, 0u);
}

TEST(FailureDetector, DeclaresACrashedMachineDeadWithinTheBudget) {
  net::FaultPlan plan;
  plan.seed = 7;
  plan.crash_at(1, 100'000);
  const net::FailureDetectorConfig cfg = enabled_detector();
  net::FailureDetector fd(cfg, 3, &plan);

  // Nothing is declared before virtual time reaches the miss rounds.
  fd.poll(SimTime::nanos(90'000));
  EXPECT_FALSE(fd.dead(1));

  fd.poll(SimTime::nanos(10'000'000));
  EXPECT_TRUE(fd.dead(1));
  EXPECT_EQ(fd.liveness(2), net::Liveness::Alive);
  const std::int64_t dead_at = fd.declared_dead_at(1).as_nanos();
  EXPECT_GT(dead_at, 100'000);
  EXPECT_LE(dead_at, 100'000 + cfg.detection_budget_ns());
  const auto c = fd.counters();
  EXPECT_EQ(c.deaths, 1u);
  EXPECT_EQ(c.suspicions, 1u);
  EXPECT_GE(c.heartbeat_misses, cfg.confirm_after_misses);
}

TEST(FailureDetector, CrashExactlyAtARoundBoundaryCountsAsAMiss) {
  net::FaultPlan plan;
  plan.crash_at(1, 80'000);  // exactly round 2's probe time
  const net::FailureDetectorConfig cfg = enabled_detector();
  net::FailureDetector fd(cfg, 2, &plan);
  fd.poll(SimTime::nanos(1'000'000));
  ASSERT_TRUE(fd.dead(1));
  // crashed() is boundary-inclusive: the round *at* the crash instant is
  // already a miss, so the 6th consecutive miss — the confirmation — lands
  // exactly confirm-1 rounds later.
  const std::int64_t expect =
      80'000 +
      static_cast<std::int64_t>(cfg.confirm_after_misses - 1) *
          cfg.heartbeat_period_ns;
  EXPECT_EQ(fd.declared_dead_at(1).as_nanos(), expect);
}

TEST(FailureDetector, DeathIsLatchedAndCallbacksFireExactlyOnce) {
  net::FaultPlan plan;
  plan.crash_at(1, 0);
  net::FailureDetector fd(enabled_detector(), 2, &plan);
  std::atomic<int> fired{0};
  fd.on_death([&](std::uint16_t machine, SimTime) {
    EXPECT_EQ(machine, 1);
    ++fired;
  });
  fd.poll(SimTime::nanos(1'000'000));
  fd.poll(SimTime::nanos(2'000'000));
  fd.poll(SimTime::nanos(3'000'000));
  EXPECT_TRUE(fd.dead(1));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(fd.counters().deaths, 1u);
}

TEST(FailureDetector, MonitorCrashHaltsProbingInsteadOfMassDeclaring) {
  net::FaultPlan plan;
  plan.crash_at(0, 50'000);  // the monitor itself dies
  plan.crash_at(1, 50'000);
  net::FailureDetector fd(enabled_detector(), 3, &plan);
  fd.poll(SimTime::nanos(10'000'000));
  // Probing halted at the first round past the monitor's crash: nobody is
  // declared dead (peers still fail over via the ARQ budget).
  EXPECT_FALSE(fd.dead(1));
  EXPECT_FALSE(fd.dead(2));
  EXPECT_EQ(fd.counters().deaths, 0u);
}

// ---- healthy-path inertness -------------------------------------------------

// An enabled detector on a fault-free run must not perturb the modelled
// timeline: probes are NIC-level keepalives that charge no CPU clock.
TEST(FailureDetector, EnabledDetectorLeavesAHealthyRunsTimelineUntouched) {
  apps::ListBenchConfig base;
  base.iterations = 20;
  apps::ListBenchConfig probed = base;
  probed.detector = enabled_detector();

  const apps::RunResult off = run_list_bench(OptLevel::SiteCycle, base);
  const apps::RunResult on = run_list_bench(OptLevel::SiteCycle, probed);

  EXPECT_EQ(off.makespan.as_nanos(), on.makespan.as_nanos());
  EXPECT_EQ(off.total, on.total);
  EXPECT_DOUBLE_EQ(off.check, on.check);
  EXPECT_GT(on.net.heartbeats, 0u);
  EXPECT_EQ(on.net.heartbeat_misses, 0u);
  EXPECT_EQ(on.net.machine_deaths, 0u);
  // Apart from the probe counters the traffic is identical.
  net::NetworkStats::Snapshot scrubbed = on.net;
  scrubbed.heartbeats = 0;
  EXPECT_EQ(off.net, scrubbed);
}

// ---- determinism across transports ------------------------------------------

// Detection latency is quantized to virtual-time probe rounds, so the
// failure timeline must be identical on the sequential SimTransport and
// the threaded LoopbackTransport.  (Total heartbeats can differ by a few
// trailing rounds — how far the last poll got is real-time dependent —
// but misses, suspicions, deaths and the app outcome may not.)
TEST(FailureDetector, DetectionTimelineIsDeterministicAcrossBackends) {
  apps::WebserverConfig cfg;
  cfg.machines = 4;
  cfg.requests = 40;
  cfg.pages = 16;
  cfg.page_size = 256;
  cfg.faults.seed = 11;
  cfg.faults.crash_at(2, 200'000);
  cfg.detector = enabled_detector();

  cfg.transport = net::TransportKind::Sim;
  const apps::RunResult sim = run_webserver(OptLevel::SiteReuseCycle, cfg);
  cfg.transport = net::TransportKind::Loopback;
  const apps::RunResult loop = run_webserver(OptLevel::SiteReuseCycle, cfg);

  // The makespan of a crash-failover run carries the same small
  // scheduling jitter documented for the LU bench (concurrent dispatch
  // interleaves max-merges with sum-advances, and a frame racing the
  // crash boundary reads a concurrently-advancing clock), so the two
  // backends agree only to within a few event charges — observed
  // jitter is one 60 ns free charge.  The detector's own timeline
  // below is exact; per-nanosecond death times are pinned by the
  // single-threaded tests above.
  EXPECT_NEAR(static_cast<double>(sim.makespan.as_nanos()),
              static_cast<double>(loop.makespan.as_nanos()), 10'000.0);
  EXPECT_EQ(sim.net.heartbeat_misses, loop.net.heartbeat_misses);
  EXPECT_EQ(sim.net.suspicions, loop.net.suspicions);
  EXPECT_EQ(sim.net.machine_deaths, loop.net.machine_deaths);
  EXPECT_EQ(sim.net.machine_deaths, 1u);
  EXPECT_EQ(sim.failovers, loop.failovers);
  EXPECT_DOUBLE_EQ(sim.check, loop.check);
  EXPECT_DOUBLE_EQ(sim.check,
                   static_cast<double>(cfg.requests * cfg.page_size));
}

// ---- fast-fail (rmi::MachineDown) -------------------------------------------

class FastFailTest : public ::testing::Test {
 protected:
  std::uint32_t void_site(rmi::RmiSystem& sys, std::uint32_t method) {
    rmi::CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "ff.site";
    return sys.add_callsite(std::move(cs));
  }

  om::TypeRegistry types;
};

TEST_F(FastFailTest, CallToADeadMachineFailsInDetectionTimeNotArqTime) {
  net::FaultPlan faults;
  faults.crash_at(1, 0);
  net::Cluster cluster(3, types, {}, net::TransportKind::Sim, {}, faults,
                       enabled_detector());
  rmi::RmiSystem sys(cluster, types);
  const auto mid = sys.define_method(
      "noop", [](rmi::CallContext&, auto, auto) {
        return rmi::HandlerResult{};
      });
  const auto site = void_site(sys, mid);
  const rmi::RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc_string("x"));
  sys.start();

  try {
    sys.invoke(0, ref, site, {});
    FAIL() << "expected MachineDown";
  } catch (const rmi::MachineDown& e) {
    EXPECT_EQ(e.machine(), 1);
  }
  // The typed failure is a RmiTimeout subclass: existing recovery loops
  // catch it unchanged.
  EXPECT_THROW(sys.invoke(0, ref, site, {}), rmi::RmiTimeout);

  // Fast: the caller burned at most a few ARQ attempts before the
  // detector confirmed the death — far less than the full retransmit
  // budget of 6'660'000 ns per failed call.
  EXPECT_LT(cluster.machine(0).clock().now().as_nanos(), 2'000'000);
  const auto stats = sys.stats(0);
  EXPECT_EQ(stats.machine_down_failures, 2u);
  EXPECT_EQ(stats.call_timeouts, 2u);
  EXPECT_EQ(cluster.stats().machine_deaths, 1u);
  sys.stop();
}

TEST_F(FastFailTest, DeathConfirmedMidWaitReleasesABlockedCaller) {
  net::FaultPlan faults;
  faults.crash_at(1, 500'000);
  net::Cluster cluster(3, types, {}, net::TransportKind::Sim, {}, faults,
                       enabled_detector());
  rmi::RmiSystem sys(cluster, types);
  // Machine 1 swallows the call (deferred, never replies) — as a machine
  // that crashes mid-handler would.
  const auto park_mid = sys.define_method(
      "park", [](rmi::CallContext&, auto, auto) {
        return rmi::HandlerResult{.deferred = true};
      });
  const auto tick_mid = sys.define_method(
      "tick", [](rmi::CallContext&, auto, auto) {
        return rmi::HandlerResult{};
      });
  const auto park = void_site(sys, park_mid);
  const auto tick = void_site(sys, tick_mid);
  const rmi::RemoteRef parked =
      sys.export_object(1, cluster.machine(1).heap().alloc_string("p"));
  const rmi::RemoteRef ticker =
      sys.export_object(2, cluster.machine(2).heap().alloc_string("t"));
  sys.start();

  std::atomic<bool> released{false};
  std::thread caller([&] {
    // No real-time backstop: only the death confirmation can release us.
    EXPECT_THROW(sys.invoke(0, parked, park, {}), rmi::MachineDown);
    released = true;
  });
  // Unrelated traffic advances virtual time past crash + budget; the
  // blocked caller's poll then confirms the death and fail_pending_to
  // releases it.
  while (!released.load()) {
    sys.invoke(0, ticker, tick, {});
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  caller.join();

  // The confirmation landed on the first probe round whose 6th
  // consecutive miss follows the 500'000 ns crash: rounds are quantized,
  // so the timestamp is exact, not schedule-dependent.
  const net::FailureDetectorConfig cfg = enabled_detector();
  const std::int64_t first_missed_round =
      ((500'000 + cfg.heartbeat_period_ns - 1) / cfg.heartbeat_period_ns) *
      cfg.heartbeat_period_ns;
  const std::int64_t expect =
      first_missed_round +
      static_cast<std::int64_t>(cfg.confirm_after_misses - 1) *
          cfg.heartbeat_period_ns;
  EXPECT_EQ(cluster.detector()->declared_dead_at(1).as_nanos(), expect);
  EXPECT_EQ(sys.stats(0).machine_down_failures, 1u);
  sys.stop();
}

// At-most-once across failover: the caller gives up on a *live* callee
// (slow, not dead), re-issues the call elsewhere, and the original callee
// completes afterwards.  The late reply must be dropped as a stray and
// each handler must have run exactly once.
TEST_F(FastFailTest, CallerFailsOverWhileTheOriginalCalleeStillCompletes) {
  net::Cluster cluster(3, types);
  rmi::ExecutorConfig exec;
  exec.call_timeout_ms = 200;  // short real-time backstop forces the retry
  rmi::RmiSystem sys(cluster, types, exec);

  std::optional<rmi::ReplyToken> held;
  std::mutex held_mu;
  std::atomic<int> slow_runs{0};
  std::atomic<int> fast_runs{0};
  const auto slow_mid = sys.define_method(
      "slow", [&](rmi::CallContext& ctx, auto, auto) {
        ++slow_runs;
        std::scoped_lock lock(held_mu);
        held = ctx.reply_token();
        return rmi::HandlerResult{.deferred = true};
      });
  const auto fast_mid = sys.define_method(
      "fast", [&](rmi::CallContext&, auto, auto) {
        ++fast_runs;
        return rmi::HandlerResult{};
      });
  const auto slow = void_site(sys, slow_mid);
  const auto fast = void_site(sys, fast_mid);
  const rmi::RemoteRef primary =
      sys.export_object(1, cluster.machine(1).heap().alloc_string("a"));
  const rmi::RemoteRef replica =
      sys.export_object(2, cluster.machine(2).heap().alloc_string("b"));
  sys.start();

  EXPECT_THROW(sys.invoke(0, primary, slow, {}), rmi::RmiTimeout);
  // Fail over: the replica answers.
  EXPECT_EQ(sys.invoke(0, replica, fast, {}), nullptr);
  // The original callee finally completes; its reply finds no pending
  // call and is dropped as a stray, never delivered to the replica's seq.
  {
    std::scoped_lock lock(held_mu);
    ASSERT_TRUE(held.has_value());
    sys.send_reply(*held, nullptr, false);
  }
  for (int i = 0; i < 5000 && sys.stats(0).stray_replies < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sys.stop();

  EXPECT_EQ(slow_runs.load(), 1);
  EXPECT_EQ(fast_runs.load(), 1);
  EXPECT_EQ(sys.stats(0).stray_replies, 1u);
  EXPECT_EQ(sys.stats(0).call_timeouts, 1u);
}

// ---- name-service failover --------------------------------------------------

class ReplicatedNamesTest : public ::testing::Test {
 protected:
  ReplicatedNamesTest()
      : cluster(3, types), sys(cluster, types), names(sys, types) {
    refs.push_back(
        sys.export_object(1, cluster.machine(1).heap().alloc_string("a")));
    refs.push_back(
        sys.export_object(2, cluster.machine(2).heap().alloc_string("b")));
    sys.start();
  }
  ~ReplicatedNamesTest() override { sys.stop(); }

  om::TypeRegistry types;
  net::Cluster cluster;
  rmi::RmiSystem sys;
  rmi::NameService names;
  std::vector<rmi::RemoteRef> refs;
};

TEST_F(ReplicatedNamesTest, ReportedFailureAdvancesToTheNextReplica) {
  names.bind_replicated(1, "svc", refs, /*preferred=*/0);
  rmi::RemoteRef r = names.lookup(0, "svc");
  EXPECT_EQ(r.machine, refs[0].machine);
  EXPECT_EQ(names.failovers(), 0u);

  names.report_failure(0, "svc", refs[0].machine);
  r = names.lookup(0, "svc");
  EXPECT_EQ(r.machine, refs[1].machine);
  EXPECT_EQ(names.failovers(), 1u);

  // Reporting a machine the binding no longer points at is a no-op.
  names.report_failure(0, "svc", refs[0].machine);
  EXPECT_EQ(names.lookup(0, "svc").machine, refs[1].machine);
  EXPECT_EQ(names.failovers(), 1u);
}

TEST_F(ReplicatedNamesTest, ExhaustedReplicaGroupRaisesARemoteException) {
  names.bind_replicated(1, "solo", std::span(refs.data(), 1));
  EXPECT_THROW(names.report_failure(0, "solo", refs[0].machine),
               rmi::RemoteException);
  EXPECT_THROW(names.report_failure(0, "missing", 1), rmi::RemoteException);
}

TEST_F(ReplicatedNamesTest, PlainBindAndRebindStillWork) {
  names.bind(1, "plain", refs[0]);
  EXPECT_THROW(names.bind(1, "plain", refs[1]), rmi::RemoteException);
  EXPECT_EQ(names.lookup(0, "plain").machine, refs[0].machine);
  names.rebind(2, "plain", refs[1]);
  EXPECT_EQ(names.lookup(0, "plain").machine, refs[1].machine);
  // A plain binding has no replica group to fail over to.
  EXPECT_THROW(names.report_failure(0, "plain", refs[1].machine),
               rmi::RemoteException);
}

// End-to-end: detector-driven auto-rebind.  The registry re-points the
// dead slave's name before the master even observes the failure, inside
// one detection budget — far under the 6'660'000 ns ARQ budget.
TEST(ReplicatedNamesE2E, DetectorRebindsAheadOfTheArqBudget) {
  apps::WebserverConfig cfg;
  cfg.machines = 4;
  cfg.requests = 40;
  cfg.pages = 16;
  cfg.page_size = 256;
  cfg.faults.crash_at(2, 0);  // a slave is dead from the start
  cfg.detector = enabled_detector();
  const apps::RunResult r = run_webserver(OptLevel::SiteReuseCycle, cfg);
  EXPECT_DOUBLE_EQ(r.check, static_cast<double>(cfg.requests * cfg.page_size));
  EXPECT_GE(r.failovers, 1u);
  EXPECT_EQ(r.net.machine_deaths, 1u);
  EXPECT_GE(r.total.machine_down_failures, 0u);
  // Every failed call was cut short by detection, so the run's makespan
  // stays well under what even one full ARQ budget per request would cost.
  EXPECT_LT(r.makespan.as_nanos(),
            static_cast<std::int64_t>(cfg.requests) * 6'660'000);
}

}  // namespace
}  // namespace rmiopt
