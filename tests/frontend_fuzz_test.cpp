// Frontend robustness fuzzing: arbitrary byte soup and mutated valid
// programs must either compile or raise ParseError with a position —
// never crash, hang, or corrupt memory.
#include <gtest/gtest.h>

#include "driver/compile.hpp"
#include "frontend/compile.hpp"
#include "frontend/figures_source.hpp"
#include "support/rng.hpp"

namespace rmiopt::frontend {
namespace {

class FrontendFuzzP : public ::testing::TestWithParam<int> {};

TEST_P(FrontendFuzzP, RandomBytesNeverCrashTheLexerOrParser) {
  SplitMix64 rng(GetParam() * 6151 + 17);
  const char alphabet[] =
      "abcz_ {}()[];,.=+-*/%<>!&|0123456789\n\t\"#@classremotenewhile";
  for (int trial = 0; trial < 50; ++trial) {
    std::string soup;
    const std::size_t len = rng.next_below(200);
    for (std::size_t i = 0; i < len; ++i) {
      soup.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
    }
    try {
      compile_source(soup);
    } catch (const Error&) {
      // ParseError (or a nested check) is the expected outcome.
    }
  }
}

TEST_P(FrontendFuzzP, MutatedValidProgramsFailGracefully) {
  SplitMix64 rng(GetParam() * 409 + 23);
  const char* corpus[] = {
      sources::kFigure2,  sources::kFigure5,  sources::kFigure12,
      sources::kFigure14, sources::kWebserver, sources::kSuperopt,
      sources::kLu,
  };
  for (int trial = 0; trial < 40; ++trial) {
    std::string src = corpus[rng.next_below(std::size(corpus))];
    // Apply 1-3 random mutations: delete a span, duplicate a span, or
    // flip a character.
    const int mutations = 1 + static_cast<int>(rng.next_below(3));
    for (int m = 0; m < mutations && !src.empty(); ++m) {
      const std::size_t pos = rng.next_below(src.size());
      switch (rng.next_below(3)) {
        case 0:
          src.erase(pos, 1 + rng.next_below(8));
          break;
        case 1:
          src.insert(pos, src.substr(pos, 1 + rng.next_below(8)));
          break;
        default:
          src[pos] = static_cast<char>('!' + rng.next_below(90));
          break;
      }
    }
    try {
      Unit unit = compile_source(src);
      // If it still compiles, the module must be verifiable and the
      // analyses must run (no hidden inconsistency).
      analysis::HeapAnalysis heap(*unit.module);
      heap.run();
    } catch (const Error&) {
      // Expected for most mutations.
    }
  }
}

TEST_P(FrontendFuzzP, ValidCorpusAlwaysCompiles) {
  const char* corpus[] = {
      sources::kFigure2,  sources::kFigure3,  sources::kFigure5,
      sources::kFigure8,  sources::kFigure9,  sources::kFigure10,
      sources::kFigure11, sources::kFigure12, sources::kFigure14,
      sources::kWebserver, sources::kSuperopt, sources::kLu,
  };
  for (const char* src : corpus) {
    EXPECT_NO_THROW({
      Unit unit = compile_source(src);
      driver::CompiledProgram prog = driver::compile(
          *unit.module, codegen::OptLevel::SiteReuseCycle);
      (void)prog;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendFuzzP, ::testing::Range(0, 8));

}  // namespace
}  // namespace rmiopt::frontend
