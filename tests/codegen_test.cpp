// Plan-generation tests: call-site vs class-specific generated code
// (Figures 5–7), the generated array marshaler (Figures 12/13), return
// elision, recursion/polymorphism fallbacks, and the end-to-end driver.
#include <gtest/gtest.h>

#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"

namespace rmiopt::driver {
namespace {

using apps::figures::FigureProgram;
using codegen::OptLevel;

TEST(Codegen, Figure5CallSitePlansAreSpecializedPerSite) {
  FigureProgram p = apps::figures::make_figure5();
  CompiledProgram prog = compile(*p.module, OptLevel::SiteReuseCycle);
  ASSERT_EQ(prog.sites.size(), 2u);

  // Call site 1: argument statically resolves to Derived1 — fully inlined,
  // one int field, no dynamic dispatch (Figure 6, marshaler_Work.go.1).
  const auto& s1 = prog.site(p.tag("foo#1"));
  ASSERT_EQ(s1.plan->args.size(), 1u);
  const serial::NodePlan& a1 = *s1.plan->args[0];
  EXPECT_FALSE(a1.dynamic_dispatch);
  EXPECT_EQ(a1.expected_class, p.cls("Derived1"));
  EXPECT_EQ(a1.type_info, serial::TypeInfoMode::None);
  ASSERT_EQ(a1.fields.size(), 1u);
  EXPECT_EQ(a1.fields[0].field->name, "data");

  // Call site 2: Derived2 whose 'p' field is followed into Derived1
  // (Figure 6, marshaler_Work.go.2 copies s.p.data directly).
  const auto& s2 = prog.site(p.tag("foo#2"));
  const serial::NodePlan& a2 = *s2.plan->args[0];
  EXPECT_FALSE(a2.dynamic_dispatch);
  EXPECT_EQ(a2.expected_class, p.cls("Derived2"));
  ASSERT_EQ(a2.fields.size(), 1u);
  ASSERT_NE(a2.fields[0].ref_plan, nullptr);
  EXPECT_FALSE(a2.fields[0].ref_plan->dynamic_dispatch);
  EXPECT_EQ(a2.fields[0].ref_plan->expected_class, p.cls("Derived1"));

  EXPECT_EQ(s1.dynamic_nodes, 0u);
  EXPECT_EQ(s2.dynamic_nodes, 0u);
  EXPECT_TRUE(s1.proved_acyclic);
  EXPECT_FALSE(s1.plan->needs_cycle_table);
}

TEST(Codegen, Figure7ClassModePlansAreDynamic) {
  FigureProgram p = apps::figures::make_figure5();
  CompiledProgram prog = compile(*p.module, OptLevel::Class);
  const auto& s1 = prog.site(p.tag("foo#1"));
  const serial::NodePlan& a1 = *s1.plan->args[0];
  // Figure 7: "s.serialize(m); // note: method call" — dynamic dispatch
  // from the declared type, type info on the wire, cycle table on.
  EXPECT_TRUE(a1.dynamic_dispatch);
  EXPECT_EQ(a1.expected_class, p.cls("Base"));
  EXPECT_EQ(a1.type_info, serial::TypeInfoMode::CompactId);
  EXPECT_TRUE(a1.cycle_check);
  EXPECT_TRUE(s1.plan->needs_cycle_table);
  EXPECT_FALSE(s1.plan->reuse_args);
}

TEST(Codegen, Figure13ArrayMarshalerShape) {
  FigureProgram p = apps::figures::make_figure12();
  CompiledProgram prog = compile(*p.module, OptLevel::SiteReuseCycle);
  const auto& s = prog.site(p.tag("send"));

  // Fully inlined double[][] plan: outer ref-array node -> inner
  // prim-array node, no cycle checks, argument reusable, ACK reply.
  EXPECT_FALSE(s.plan->needs_cycle_table);
  EXPECT_TRUE(s.plan->reuse_args);
  EXPECT_EQ(s.plan->ret, nullptr);
  const serial::NodePlan& outer = *s.plan->args[0];
  EXPECT_EQ(outer.expected_class, p.cls("[[D"));
  EXPECT_FALSE(outer.dynamic_dispatch);
  ASSERT_NE(outer.elem_plan, nullptr);
  EXPECT_EQ(outer.elem_plan->expected_class, p.cls("[D"));
  EXPECT_FALSE(outer.elem_plan->dynamic_dispatch);

  // The pseudo code reads like Figure 13.
  const std::string code = serial::to_pseudocode(*s.plan, *p.types);
  EXPECT_NE(code.find("cycle detection elided"), std::string::npos);
  EXPECT_NE(code.find("append_double_array"), std::string::npos);
  EXPECT_NE(code.find("wait_for_ack"), std::string::npos);
}

TEST(Codegen, Figure14RecursiveListInlinesAsMonomorphicLoop) {
  FigureProgram p = apps::figures::make_figure14();
  CompiledProgram prog = compile(*p.module, OptLevel::SiteReuseCycle);
  const auto& s = prog.site(p.tag("send"));
  // The head node is inlined; the recursive Next field unambiguously holds
  // a LinkedList, so §3.1 eliminates the recursive serializer call: the
  // generated code loops back into the head's inlined body.
  const serial::NodePlan& head = *s.plan->args[0];
  EXPECT_FALSE(head.dynamic_dispatch);
  EXPECT_EQ(head.expected_class, p.cls("LinkedList"));
  ASSERT_EQ(head.fields.size(), 1u);
  ASSERT_NE(head.fields[0].ref_plan, nullptr);
  EXPECT_FALSE(head.fields[0].ref_plan->dynamic_dispatch);
  EXPECT_EQ(head.fields[0].ref_plan->recurse_to, &head);
  EXPECT_EQ(s.recursive_nodes, 1u);
  EXPECT_EQ(s.dynamic_nodes, 0u);
  // §7: the list is misclassified as possibly cyclic, so the cycle table
  // stays on even at the site+cycle level...
  EXPECT_TRUE(s.plan->needs_cycle_table);
  // ...but reuse applies (Table 1's big win).
  EXPECT_TRUE(s.plan->reuse_args);
}

TEST(Codegen, ReturnElisionProducesAckOnlyPlan) {
  // Webserver model: result used -> return shipped.  LU fetch_row: result
  // used -> shipped.  A variant where the result is ignored -> elided.
  FigureProgram p = apps::figures::make_figure3();  // zoo ignores nothing:
  // foo returns Object and the loop uses it (phi input) -> must ship.
  CompiledProgram prog = compile(*p.module, OptLevel::SiteReuseCycle);
  const auto& used = prog.site(p.tag("foo"));
  EXPECT_NE(used.plan->ret, nullptr);
  EXPECT_FALSE(used.return_elided);

  // Build a caller that ignores the result.
  om::TypeRegistry types;
  const om::ClassId data = types.define_class("Data", {});
  ir::Module m(types);
  ir::Function& getter = m.add_function("get", {}, ir::Type::ref(data),
                                        /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(m, getter);
    b.ret(b.alloc(data));
  }
  ir::Function& caller = m.add_function("caller", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(m, caller);
    b.remote_call(getter.id, {}, /*tag=*/9);  // result ignored
    b.ret();
  }
  CompiledProgram prog2 = compile(m, OptLevel::Site);
  const auto& elided = prog2.site(9);
  EXPECT_TRUE(elided.return_elided);
  EXPECT_EQ(elided.plan->ret, nullptr);

  // Class mode never elides: the return value is "needlessly sent" (§3.1).
  CompiledProgram prog3 = compile(m, OptLevel::Class);
  EXPECT_NE(prog3.site(9).plan->ret, nullptr);
}

TEST(Codegen, PolymorphicArgumentFallsBackToDynamic) {
  om::TypeRegistry types;
  const om::ClassId base = types.define_class("Base", {});
  const om::ClassId d1 = types.define_class("D1", {}, base);
  const om::ClassId d2 = types.define_class("D2", {}, base);
  ir::Module m(types);
  ir::Function& foo = m.add_function("foo", {ir::Type::ref(base)},
                                     ir::Type::void_type(), true);
  {
    ir::FunctionBuilder b(m, foo);
    b.ret();
  }
  ir::Function& go = m.add_function("go", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(m, go);
    const auto x = b.alloc(d1);
    const auto y = b.alloc(d2);
    const auto ph = b.phi({x, y});  // could be either class
    b.remote_call(foo.id, {ph}, /*tag=*/1);
    b.ret();
  }
  CompiledProgram prog = compile(m, OptLevel::Site);
  const auto& s = prog.site(1);
  EXPECT_TRUE(s.plan->args[0]->dynamic_dispatch);
  EXPECT_EQ(s.plan->args[0]->expected_class, base);
  EXPECT_EQ(s.dynamic_nodes, 1u);
}

TEST(Codegen, WebserverPlansMatchPaperSection54) {
  FigureProgram p = apps::figures::make_webserver_model();
  CompiledProgram prog = compile(*p.module, OptLevel::SiteReuseCycle);
  const auto& s = prog.site(p.tag("get_page"));
  EXPECT_FALSE(s.plan->needs_cycle_table);  // both directions proven
  EXPECT_TRUE(s.plan->reuse_args);          // url string
  EXPECT_TRUE(s.plan->reuse_ret);           // returned page
  ASSERT_NE(s.plan->ret, nullptr);
  EXPECT_FALSE(s.plan->ret->dynamic_dispatch);  // inline String plan
}

TEST(Codegen, SuperoptPlansMatchPaperSection53) {
  FigureProgram p = apps::figures::make_superopt_model();
  CompiledProgram prog = compile(*p.module, OptLevel::SiteReuseCycle);
  const auto& s = prog.site(p.tag("test"));
  EXPECT_FALSE(s.plan->needs_cycle_table);  // program graph proven acyclic
  EXPECT_FALSE(s.plan->reuse_args);         // queued => escapes
  EXPECT_EQ(s.plan->ret, nullptr);          // void
  // Program -> code array -> Instruction -> three Operands, all inline.
  const serial::NodePlan& prog_node = *s.plan->args[0];
  EXPECT_FALSE(prog_node.dynamic_dispatch);
  const serial::NodePlan& arr = *prog_node.fields[0].ref_plan;
  EXPECT_FALSE(arr.dynamic_dispatch);
  const serial::NodePlan& ins = *arr.elem_plan;
  EXPECT_FALSE(ins.dynamic_dispatch);
  EXPECT_EQ(s.dynamic_nodes, 0u);
  EXPECT_EQ(s.inline_nodes, 6u);  // program + array + instr + 3 operands
}

TEST(Codegen, OptLevelGatesIndependentOfAnalysisVerdicts) {
  FigureProgram p = apps::figures::make_figure12();
  // Verdicts are facts at every site-specific level...
  for (OptLevel level : {OptLevel::Site, OptLevel::SiteCycle,
                         OptLevel::SiteReuse, OptLevel::SiteReuseCycle}) {
    CompiledProgram prog = compile(*p.module, level);
    const auto& s = prog.site(p.tag("send"));
    EXPECT_TRUE(s.proved_acyclic);
    EXPECT_TRUE(s.args_reusable);
    // ...but are only *applied* when the level enables them.
    EXPECT_EQ(s.plan->needs_cycle_table, !codegen::cycle_elision(level));
    EXPECT_EQ(s.plan->reuse_args, codegen::reuse_enabled(level));
  }
}

TEST(Codegen, ToRuntimeSiteBindsMethodAndHeavyFlag) {
  FigureProgram p = apps::figures::make_figure12();
  CompiledProgram site_prog = compile(*p.module, OptLevel::Site);
  rmi::CompiledCallSite cs = to_runtime_site(site_prog, p.tag("send"), 7);
  EXPECT_EQ(cs.method_id, 7u);
  EXPECT_FALSE(cs.heavy);
  ASSERT_NE(cs.plan, nullptr);

  CompiledProgram heavy_prog = compile(*p.module, OptLevel::Heavy);
  rmi::CompiledCallSite hs = to_runtime_site(heavy_prog, p.tag("send"), 7);
  EXPECT_TRUE(hs.heavy);
}

TEST(Codegen, PaperLevelNamesMatchTables) {
  EXPECT_EQ(codegen::to_string(OptLevel::Class), "class");
  EXPECT_EQ(codegen::to_string(OptLevel::Site), "site");
  EXPECT_EQ(codegen::to_string(OptLevel::SiteCycle), "site + cycle");
  EXPECT_EQ(codegen::to_string(OptLevel::SiteReuse), "site + reuse");
  EXPECT_EQ(codegen::to_string(OptLevel::SiteReuseCycle),
            "site + reuse + cycle");
}

}  // namespace
}  // namespace rmiopt::driver
