// Regression test for a shutdown message-loss bug: with a batching
// SessionConfig, RmiSystem::stop() flushed the coalescing queues (via
// Cluster::shutdown) *before* draining the executors.  A handler that
// finished during the executor drain posted its small reply into a
// session queue after that only flush — where it sat, silently held,
// forever.  stop() now re-flushes every session once no handler can
// produce more traffic, and asserts nothing is left queued.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "rmi/runtime.hpp"

namespace rmiopt::rmi {
namespace {

class SessionDrainTest : public ::testing::Test {
 protected:
  SessionDrainTest()
      : cluster(2, types, {}, net::TransportKind::Sim, batching_config()),
        sys(cluster, types, ExecutorConfig{/*dispatch_workers=*/2}) {}

  ~SessionDrainTest() override { sys.stop(); }

  static wire::SessionConfig batching_config() {
    wire::SessionConfig cfg;
    cfg.max_batch_messages = 8;  // replies/ACKs coalesce, Calls flush
    return cfg;
  }

  CompiledCallSite ack_site(std::uint32_t method) {
    CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "drain.site";
    cs.batch_replies = true;
    return cs;
  }

  om::TypeRegistry types;
  net::Cluster cluster;
  RmiSystem sys;
};

TEST_F(SessionDrainTest, StopFlushesRepliesPostedDuringExecutorDrain) {
  std::atomic<int> handled{0};
  const auto mid = sys.define_method(
      "slow_ack", [&](CallContext&, auto, auto) {
        // Real-time sleep: the handler is still running when the caller
        // reaches stop(), so its ACK is posted during the executor drain —
        // after the shutdown flush, the exact window the bug lived in.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
        handled.fetch_add(1);
        return HandlerResult{};
      });
  const auto site = sys.add_callsite(ack_site(mid));
  om::ObjRef target = cluster.machine(1).heap().alloc(
      types.define_class("Svc", {}));
  const RemoteRef ref = sys.export_object(1, target);
  sys.start();

  // Abandoned async calls: nobody waits for the ACKs, so nothing pulls
  // them out of the batching session queue on the reply link.
  for (int i = 0; i < 3; ++i) {
    RmiFuture f = sys.invoke_async(0, ref, site, {});
    // dropped un-consumed: the call itself still executes at the callee
  }
  // A oneway Call on the same link transmits immediately even under
  // batching (Calls are flush triggers, never held).
  sys.invoke_oneway(0, ref, site, {});

  sys.stop();

  // Every handler ran to completion during the drain...
  EXPECT_EQ(handled.load(), 4);
  // ...and no session is still holding its reply hostage.
  EXPECT_EQ(cluster.queued_messages(), 0u);
  // The ACKs physically reached the transport: 4 Calls out, 3 ACKs back
  // (the oneway Call is fire-and-forget, no reply message).
  EXPECT_EQ(cluster.stats().messages, 7u);
}

}  // namespace
}  // namespace rmiopt::rmi
