// Regression test for a silent deadlock: a handler that performs a nested
// *synchronous* remote invoke from the dispatcher thread, on a machine
// configured with dispatch_workers == 1, waits for a reply only that same
// (blocked) thread could process.  The call used to hang forever on a
// healthy link.  The runtime now detects the re-entrant wait at the
// executor boundary and fails fast with the typed, recoverable
// NestedInvokeDeadlock error naming the sizing rule.
#include <gtest/gtest.h>

#include "rmi/runtime.hpp"

namespace rmiopt::rmi {
namespace {

CompiledCallSite empty_site(std::uint32_t method) {
  CompiledCallSite cs;
  cs.method_id = method;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "nested.site";
  return cs;
}

TEST(NestedDeadlock, SingleWorkerNestedInvokeFailsFastWithTheRule) {
  om::TypeRegistry types;
  net::Cluster cluster(3, types);
  RmiSystem sys(cluster, types, ExecutorConfig{/*dispatch_workers=*/1});

  std::string caught;
  const auto leaf_mid = sys.define_method(
      "leaf", [](CallContext&, auto, auto) {
        return HandlerResult{};
      });
  const auto leaf_site = sys.add_callsite(empty_site(leaf_mid));

  RemoteRef leaf_ref;
  const auto nested_mid = sys.define_method(
      "nested", [&](CallContext&, auto, auto) -> HandlerResult {
        // Machine 1's dispatcher thread performs a synchronous invoke to
        // machine 2 — the re-entrant wait the guard must refuse.
        try {
          (void)sys.invoke(1, leaf_ref, leaf_site, {});
        } catch (const NestedInvokeDeadlock& e) {
          caught = e.what();
          throw;
        }
        return HandlerResult{};
      });
  const auto nested_site = sys.add_callsite(empty_site(nested_mid));

  const om::ClassId svc = types.define_class("Svc", {});
  const RemoteRef nested_ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(svc));
  leaf_ref = sys.export_object(2, cluster.machine(2).heap().alloc(svc));
  sys.start();

  // The outer caller sees the handler's failure as a RemoteException —
  // promptly, not after a retransmit budget or a wall-clock eternity.
  try {
    (void)sys.invoke(0, nested_ref, nested_site, {});
    FAIL() << "nested invoke did not fail";
  } catch (const RemoteException& e) {
    EXPECT_NE(std::string(e.what()).find("dispatch_workers"),
              std::string::npos);
  }

  // The handler-side error is the typed class and names the rule and the
  // escape hatches.
  EXPECT_NE(caught.find("would deadlock"), std::string::npos);
  EXPECT_NE(caught.find("dispatch_workers >= 2"), std::string::npos);
  EXPECT_NE(caught.find("invoke_oneway"), std::string::npos);

  sys.stop();
}

TEST(NestedDeadlock, HandlerCanCatchAndRecover) {
  om::TypeRegistry types;
  net::Cluster cluster(3, types);
  RmiSystem sys(cluster, types, ExecutorConfig{/*dispatch_workers=*/1});

  const auto leaf_mid = sys.define_method(
      "leaf", [](CallContext&, auto, auto) {
        return HandlerResult{};
      });
  const auto leaf_site = sys.add_callsite(empty_site(leaf_mid));

  RemoteRef leaf_ref;
  const auto nested_mid = sys.define_method(
      "nested", [&](CallContext&, auto, auto) {
        // Recoverable by contract: the handler catches the typed error,
        // degrades gracefully, and still produces its own reply.
        try {
          (void)sys.invoke(1, leaf_ref, leaf_site, {});
        } catch (const NestedInvokeDeadlock&) {
          // fall through: reply without the nested result
        }
        return HandlerResult{};
      });
  const auto nested_site = sys.add_callsite(empty_site(nested_mid));

  const om::ClassId svc = types.define_class("Svc", {});
  const RemoteRef nested_ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(svc));
  leaf_ref = sys.export_object(2, cluster.machine(2).heap().alloc(svc));
  sys.start();

  // No throw: the handler recovered and the call completes normally.
  EXPECT_EQ(sys.invoke(0, nested_ref, nested_site, {}), nullptr);

  sys.stop();
}

TEST(NestedDeadlock, TwoWorkersAllowNestedInvokes) {
  om::TypeRegistry types;
  net::Cluster cluster(3, types);
  RmiSystem sys(cluster, types, ExecutorConfig{/*dispatch_workers=*/2});

  const auto leaf_mid = sys.define_method(
      "leaf", [](CallContext&, auto, auto) {
        return HandlerResult{};
      });
  const auto leaf_site = sys.add_callsite(empty_site(leaf_mid));

  RemoteRef leaf_ref;
  std::atomic<bool> nested_ok{false};
  const auto nested_mid = sys.define_method(
      "nested", [&](CallContext&, auto, auto) {
        (void)sys.invoke(1, leaf_ref, leaf_site, {});
        nested_ok = true;
        return HandlerResult{};
      });
  const auto nested_site = sys.add_callsite(empty_site(nested_mid));

  const om::ClassId svc = types.define_class("Svc", {});
  const RemoteRef nested_ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(svc));
  leaf_ref = sys.export_object(2, cluster.machine(2).heap().alloc(svc));
  sys.start();

  EXPECT_EQ(sys.invoke(0, nested_ref, nested_site, {}), nullptr);
  EXPECT_TRUE(nested_ok.load());

  sys.stop();
}

}  // namespace
}  // namespace rmiopt::rmi
