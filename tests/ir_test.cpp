// Unit tests for the mini-language IR: builder, verifier (including
// negative cases), and printer.
#include <gtest/gtest.h>

#include "ir/builder.hpp"

namespace rmiopt::ir {
namespace {

class IrTest : public ::testing::Test {
 protected:
  IrTest() : module(types) {
    data = types.define_class("Data", {{"x", om::TypeKind::Int},
                                       {"next", om::TypeKind::Ref, 0}});
    // patch the self reference
    darr = types.register_prim_array(om::TypeKind::Double);
  }
  om::TypeRegistry types;
  Module module{types};
  om::ClassId data = om::kNoClass;
  om::ClassId darr = om::kNoClass;
};

TEST_F(IrTest, BuilderAssignsSsaIdsInOrder) {
  Function& f = module.add_function("f", {Type::ref(data)},
                                    Type::void_type());
  FunctionBuilder b(module, f);
  EXPECT_EQ(b.param(0), 0u);
  const auto v1 = b.alloc(data);
  const auto v2 = b.const_int(7);
  const auto v3 = b.move(v1);
  EXPECT_EQ(v1, 1u);
  EXPECT_EQ(v2, 2u);
  EXPECT_EQ(v3, 3u);
  b.ret();
  EXPECT_EQ(f.value_count, 4u);
  verify(module);
}

TEST_F(IrTest, AllocSitesAreUniqueModuleWide) {
  Function& f = module.add_function("f", {}, Type::void_type());
  Function& g = module.add_function("g", {}, Type::void_type());
  FunctionBuilder bf(module, f);
  bf.alloc(data);
  bf.ret();
  FunctionBuilder bg(module, g);
  bg.alloc(data);
  bg.alloc_array(darr);
  bg.ret();

  std::set<AllocSiteId> sites;
  for (std::size_t i = 0; i < module.function_count(); ++i) {
    for (const auto& block : module.function(static_cast<FuncId>(i)).blocks) {
      for (const auto& in : block.instrs) {
        if (in.op == Op::Alloc || in.op == Op::AllocArray) {
          EXPECT_TRUE(sites.insert(in.alloc_site).second);
        }
      }
    }
  }
  EXPECT_EQ(sites.size(), 3u);
}

TEST_F(IrTest, FieldAccessResolvesByName) {
  Function& f = module.add_function("f", {Type::ref(data)},
                                    Type::void_type());
  FunctionBuilder b(module, f);
  const auto x = b.load_field(b.param(0), "x");
  EXPECT_EQ(f.value_type(x).kind, om::TypeKind::Int);
  EXPECT_THROW(b.load_field(b.param(0), "nope"), Error);
  b.ret();
}

TEST_F(IrTest, RemoteCallRequiresRemoteMethod) {
  Function& plain = module.add_function("plain", {}, Type::void_type());
  {
    FunctionBuilder b(module, plain);
    b.ret();
  }
  Function& f = module.add_function("f", {}, Type::void_type());
  FunctionBuilder b(module, f);
  EXPECT_THROW(b.remote_call(plain.id, {}, 1), Error);
  b.call(plain.id, {});  // local call is fine
  b.ret();
}

TEST_F(IrTest, ArityMismatchThrows) {
  Function& callee = module.add_function(
      "callee", {Type::ref(data)}, Type::void_type(), true);
  {
    FunctionBuilder b(module, callee);
    b.ret();
  }
  Function& f = module.add_function("f", {}, Type::void_type());
  FunctionBuilder b(module, f);
  EXPECT_THROW(b.remote_call(callee.id, {}, 1), Error);
}

TEST_F(IrTest, VerifierRejectsUseBeforeDef) {
  Function& f = module.add_function("f", {}, Type::void_type());
  FunctionBuilder b(module, f);
  b.ret();
  // Hand-craft a bad instruction: move of an undefined value.
  Instr bad;
  bad.op = Op::Move;
  bad.operands = {5};
  bad.result = 0;
  f.value_count = 1;
  f.value_types = {Type::prim(om::TypeKind::Int)};
  f.blocks.back().instrs.insert(f.blocks.back().instrs.begin(), bad);
  EXPECT_THROW(verify(module), Error);
}

TEST_F(IrTest, VerifierRejectsDuplicateCallsiteTags) {
  Function& callee =
      module.add_function("callee", {}, Type::void_type(), true);
  {
    FunctionBuilder b(module, callee);
    b.ret();
  }
  Function& f = module.add_function("f", {}, Type::void_type());
  FunctionBuilder b(module, f);
  b.remote_call(callee.id, {}, 9);
  b.remote_call(callee.id, {}, 9);  // same tag twice
  b.ret();
  EXPECT_THROW(verify(module), Error);
}

TEST_F(IrTest, VerifierRejectsVoidReturnWithValue) {
  Function& f = module.add_function("f", {}, Type::void_type());
  FunctionBuilder b(module, f);
  const auto v = b.const_int(1);
  Instr bad;
  bad.op = Op::Return;
  bad.operands = {v};
  f.blocks.back().instrs.push_back(bad);
  EXPECT_THROW(verify(module), Error);
}

TEST_F(IrTest, VerifierAcceptsPhiBackEdges) {
  Function& f = module.add_function("f", {}, Type::void_type());
  FunctionBuilder b(module, f);
  const auto ph = b.empty_phi(Type::ref(data));
  const auto v = b.alloc(data);
  b.append_phi_input(ph, v);  // back edge: defined after the phi
  b.ret();
  EXPECT_NO_THROW(verify(module));
}

TEST_F(IrTest, PrinterShowsTheProgramShape) {
  Function& callee = module.add_function(
      "Remote.m", {Type::ref(data)}, Type::ref(data), true);
  {
    FunctionBuilder b(module, callee);
    b.ret(b.param(0));
  }
  const GlobalId g = module.add_global("G", Type::ref(data));
  Function& f = module.add_function("main", {}, Type::void_type());
  {
    FunctionBuilder b(module, f);
    const auto d = b.alloc(data);
    b.store_field(d, "x", b.const_int(42));
    b.store_static(g, d);
    b.remote_call(callee.id, {d}, 3);
    b.ret();
  }
  const std::string text = to_string(module);
  EXPECT_NE(text.find("remote Data Remote.m"), std::string::npos);
  EXPECT_NE(text.find("new Data"), std::string::npos);
  EXPECT_NE(text.find("; site"), std::string::npos);
  EXPECT_NE(text.find("remote-call Remote.m"), std::string::npos);
  EXPECT_NE(text.find("; tag 3"), std::string::npos);
  EXPECT_NE(text.find("static Data G"), std::string::npos);
}

TEST_F(IrTest, RemoteCallSitesEnumeratesAll) {
  Function& callee =
      module.add_function("callee", {}, Type::void_type(), true);
  {
    FunctionBuilder b(module, callee);
    b.ret();
  }
  Function& f = module.add_function("f", {}, Type::void_type());
  {
    FunctionBuilder b(module, f);
    b.remote_call(callee.id, {}, 1);
    b.set_block("second");
    b.remote_call(callee.id, {}, 2);
    b.ret();
  }
  const auto sites = module.remote_call_sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].instr->callsite_tag, 1u);
  EXPECT_EQ(sites[1].instr->callsite_tag, 2u);
  EXPECT_EQ(sites[1].caller, f.id);
}

TEST_F(IrTest, FunctionReferencesSurviveModuleGrowth) {
  // Regression: Function& from add_function must stay valid as more
  // functions are added (they are heap-allocated).
  Function& first = module.add_function("first", {}, Type::void_type());
  for (int i = 0; i < 100; ++i) {
    module.add_function("f" + std::to_string(i), {}, Type::void_type());
  }
  EXPECT_EQ(first.name, "first");
  FunctionBuilder b(module, first);
  b.ret();
  EXPECT_EQ(module.function(first.id).blocks.size(), 1u);
}

}  // namespace
}  // namespace rmiopt::ir
