// Unit tests for the wire layer added by the transport refactor: frame
// encode/decode round trips, malformed-image rejection, and the session
// layer's sequencing and ACK-coalescing queues.
#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "wire/framing.hpp"
#include "wire/session.hpp"

namespace rmiopt::wire {
namespace {

Message make_msg(MsgKind kind, std::uint16_t from, std::uint16_t to,
                 std::size_t payload_bytes = 0, std::uint32_t seq = 0) {
  Message m;
  m.header.kind = kind;
  m.header.callsite_id = 7;
  m.header.target_export = 3;
  m.header.seq = seq;
  m.header.source_machine = from;
  m.header.dest_machine = to;
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    m.payload.put_u8(static_cast<std::uint8_t>(i * 37 + seq));
  }
  return m;
}

void expect_equal(const Message& a, const Message& b) {
  EXPECT_EQ(a.header.kind, b.header.kind);
  EXPECT_EQ(a.header.callsite_id, b.header.callsite_id);
  EXPECT_EQ(a.header.target_export, b.header.target_export);
  EXPECT_EQ(a.header.seq, b.header.seq);
  EXPECT_EQ(a.header.source_machine, b.header.source_machine);
  EXPECT_EQ(a.header.dest_machine, b.header.dest_machine);
  ASSERT_EQ(a.payload.size(), b.payload.size());
  const auto pa = a.payload.contents();
  const auto pb = b.payload.contents();
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Framing, SingleMessageRoundTrip) {
  Frame frame;
  frame.link_seq = 41;
  frame.messages.push_back(make_msg(MsgKind::Call, 0, 1, 64, 9));

  ByteBuffer image = encode_frame(frame);
  EXPECT_EQ(image.contents()[0], kSingleFrameTag);

  const Frame back = decode_frame(image);
  EXPECT_EQ(back.link_seq, 41u);
  ASSERT_EQ(back.messages.size(), 1u);
  expect_equal(back.messages[0], frame.messages[0]);
  EXPECT_EQ(image.remaining(), 0u);  // the image was consumed exactly
}

TEST(Framing, BatchRoundTripPreservesOrderAndContent) {
  Frame frame;
  frame.link_seq = 129;  // forces a multi-byte varint
  frame.messages.push_back(make_msg(MsgKind::Ack, 2, 5, 0, 1));
  frame.messages.push_back(make_msg(MsgKind::Return, 2, 5, 17, 2));
  frame.messages.push_back(make_msg(MsgKind::Exception, 2, 5, 3, 3));

  ByteBuffer image = encode_frame(frame);
  EXPECT_EQ(image.contents()[0], kBatchFrameTag);

  const Frame back = decode_frame(image);
  EXPECT_EQ(back.link_seq, 129u);
  ASSERT_EQ(back.messages.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    expect_equal(back.messages[i], frame.messages[i]);
  }
}

TEST(Framing, ChargedBytesAreTheSimulatedSizesNotTheImageSize) {
  Frame frame;
  frame.messages.push_back(make_msg(MsgKind::Ack, 0, 1, 10));
  frame.messages.push_back(make_msg(MsgKind::Ack, 0, 1, 20));
  // The charged header size is frozen at kChargedHeaderBytes — NOT
  // sizeof(MessageHeader), which grew when the flags/deadline fields were
  // added; default traffic must price exactly as it always has.
  EXPECT_EQ(frame.charged_bytes(), 2 * kChargedHeaderBytes + 30);
  // The physical image uses explicit field-by-field encoding and varint
  // lengths — the cost model must never be driven by its size.
  const ByteBuffer image = encode_frame(frame);
  EXPECT_NE(image.size(), frame.charged_bytes());
}

TEST(Framing, DeadlineIsChargedOnlyWhenPresent) {
  Message plain = make_msg(MsgKind::Call, 0, 1, 10);
  Message dated = make_msg(MsgKind::Call, 0, 1, 10);
  dated.header.deadline_ns = 123'456'789;
  EXPECT_EQ(plain.wire_size(), kChargedHeaderBytes + 10);
  EXPECT_EQ(dated.wire_size(), kChargedHeaderBytes + 8 + 10);
}

TEST(Framing, FlagsAndDeadlineRoundTrip) {
  Frame frame;
  frame.link_seq = 3;
  Message m = make_msg(MsgKind::Call, 0, 1, 12, 44);
  m.header.flags = kFlagOneway;
  m.header.deadline_ns = 987'654'321'000;
  frame.messages.push_back(m);
  Message bare = make_msg(MsgKind::Cancel, 0, 1, 0, 45);
  frame.messages.push_back(bare);

  ByteBuffer image = encode_frame(frame);
  const Frame back = decode_frame(image);
  ASSERT_EQ(back.messages.size(), 2u);
  expect_equal(back.messages[0], m);
  EXPECT_EQ(back.messages[0].header.flags, kFlagOneway);
  EXPECT_EQ(back.messages[0].header.deadline_ns, 987'654'321'000);
  expect_equal(back.messages[1], bare);
  EXPECT_EQ(back.messages[1].header.flags, 0);
  EXPECT_EQ(back.messages[1].header.deadline_ns, 0);
}

TEST(Framing, RejectMessageRoundTripsItsCodeAndReason) {
  Frame frame;
  Message rej = make_msg(MsgKind::Reject, 1, 0, 0, 7);
  rej.payload.put_u8(static_cast<std::uint8_t>(RejectCode::Overload));
  rej.payload.put_string("inbox at its bound");
  frame.messages.push_back(rej);

  ByteBuffer image = encode_frame(frame);
  Frame back = decode_frame(image);
  ASSERT_EQ(back.messages.size(), 1u);
  EXPECT_EQ(back.messages[0].header.kind, MsgKind::Reject);
  EXPECT_EQ(static_cast<RejectCode>(back.messages[0].payload.get_u8()),
            RejectCode::Overload);
  EXPECT_EQ(back.messages[0].payload.get_string(), "inbox at its bound");
}

TEST(Framing, EveryTruncationOfAValidImageIsRejected) {
  Frame frame;
  frame.link_seq = 5;
  frame.messages.push_back(make_msg(MsgKind::Return, 1, 0, 33));
  frame.messages.push_back(make_msg(MsgKind::Ack, 1, 0, 2));
  const ByteBuffer image = encode_frame(frame);
  const auto bytes = image.contents();

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteBuffer truncated(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + cut));
    EXPECT_THROW((void)decode_frame(truncated), Error) << "cut=" << cut;
  }
}

TEST(Framing, UnknownTagAndKindAreRejected) {
  ByteBuffer bogus_tag;
  bogus_tag.put_u8(0x00);
  bogus_tag.put_varint(0);
  EXPECT_THROW((void)decode_frame(bogus_tag), Error);

  // A single frame whose message kind byte is out of range.
  ByteBuffer bogus_kind;
  bogus_kind.put_u8(kSingleFrameTag);
  bogus_kind.put_varint(0);  // link_seq
  bogus_kind.put_u8(0x7F);   // kind — no such MsgKind
  bogus_kind.put_u32(0);
  bogus_kind.put_u32(0);
  bogus_kind.put_u32(0);
  bogus_kind.put(std::uint16_t{0});
  bogus_kind.put(std::uint16_t{1});
  bogus_kind.put_varint(0);
  EXPECT_THROW((void)decode_frame(bogus_kind), Error);
}

TEST(Framing, AbsurdBatchCountIsRejectedBeforeAllocation) {
  ByteBuffer bogus;
  bogus.put_u8(kBatchFrameTag);
  bogus.put_varint(0);                     // link_seq
  bogus.put_varint(1'000'000'000'000ull);  // count far beyond the image
  EXPECT_THROW((void)decode_frame(bogus), Error);
}

TEST(Framing, EmptyFrameCannotBeEncoded) {
  EXPECT_THROW((void)encode_frame(Frame{}), Error);
}

// ---- session layer --------------------------------------------------------

TEST(Session, UnbatchedPostEmitsImmediatelyWithIncreasingLinkSeq) {
  Session s(0, 1, SessionConfig{});
  std::vector<Frame> frames;
  const FrameSink sink = [&](const Frame& f) {
    frames.push_back(f);
    return SendOutcome::Delivered;
  };
  for (std::uint32_t i = 0; i < 3; ++i) {
    s.post(make_msg(MsgKind::Call, 0, 1, 0, i), sink);
  }
  ASSERT_EQ(frames.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[i].link_seq, i);
    ASSERT_EQ(frames[i].messages.size(), 1u);
    EXPECT_EQ(frames[i].messages[0].header.seq, i);
  }
  EXPECT_EQ(s.queued(), 0u);
}

TEST(Session, WrongLinkIsRejected) {
  Session s(0, 1, SessionConfig{});
  const FrameSink sink = [](const Frame&) { return SendOutcome::Delivered; };
  EXPECT_THROW(s.post(make_msg(MsgKind::Call, 0, 2, 0), sink), Error);
  EXPECT_THROW(s.post(make_msg(MsgKind::Call, 1, 0, 0), sink), Error);
}

TEST(Session, SmallRepliesAreHeldUntilTheBatchFills) {
  SessionConfig cfg;
  cfg.max_batch_messages = 3;
  Session s(1, 0, cfg);
  std::vector<Frame> frames;
  const FrameSink sink = [&](const Frame& f) {
    frames.push_back(f);
    return SendOutcome::Delivered;
  };

  s.post(make_msg(MsgKind::Ack, 1, 0, 0, 0), sink);
  s.post(make_msg(MsgKind::Ack, 1, 0, 0, 1), sink);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(s.queued(), 2u);

  s.post(make_msg(MsgKind::Ack, 1, 0, 0, 2), sink);  // fills the batch
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].messages.size(), 3u);
  EXPECT_EQ(s.queued(), 0u);
}

TEST(Session, CallFlushesTheQueueInOneFifoFrame) {
  SessionConfig cfg;
  cfg.max_batch_messages = 8;
  Session s(0, 1, cfg);
  std::vector<Frame> frames;
  const FrameSink sink = [&](const Frame& f) {
    frames.push_back(f);
    return SendOutcome::Delivered;
  };

  s.post(make_msg(MsgKind::Ack, 0, 1, 0, 0), sink);
  s.post(make_msg(MsgKind::Return, 0, 1, 8, 1), sink);
  EXPECT_TRUE(frames.empty());
  s.post(make_msg(MsgKind::Call, 0, 1, 4, 2), sink);  // flush trigger

  // One frame; the held replies leave *ahead of* the Call (FIFO).
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].messages.size(), 3u);
  EXPECT_EQ(frames[0].messages[0].header.kind, MsgKind::Ack);
  EXPECT_EQ(frames[0].messages[1].header.kind, MsgKind::Return);
  EXPECT_EQ(frames[0].messages[2].header.kind, MsgKind::Call);
}

TEST(Session, BulkyReplyIsNotHeldBack) {
  SessionConfig cfg;
  cfg.max_batch_messages = 8;
  cfg.max_batch_payload = 16;
  Session s(0, 1, cfg);
  std::vector<Frame> frames;
  const FrameSink sink = [&](const Frame& f) {
    frames.push_back(f);
    return SendOutcome::Delivered;
  };

  s.post(make_msg(MsgKind::Return, 0, 1, 64), sink);  // over the threshold
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].messages.size(), 1u);
}

TEST(Session, ExplicitFlushSealsPartialBatches) {
  SessionConfig cfg;
  cfg.max_batch_messages = 8;
  Session s(0, 1, cfg);
  std::vector<Frame> frames;
  const FrameSink sink = [&](const Frame& f) {
    frames.push_back(f);
    return SendOutcome::Delivered;
  };

  s.post(make_msg(MsgKind::Ack, 0, 1, 0, 0), sink);
  s.post(make_msg(MsgKind::Ack, 0, 1, 0, 1), sink);
  s.flush(sink);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].messages.size(), 2u);

  s.flush(sink);  // idempotent on an empty queue
  EXPECT_EQ(frames.size(), 1u);
}

}  // namespace
}  // namespace rmiopt::wire
