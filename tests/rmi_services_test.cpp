// Tests for the RMI service layer: remote exception propagation and the
// JavaParty-style name service.
#include <gtest/gtest.h>

#include "rmi/name_service.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt::rmi {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest() : cluster(3, types), sys(cluster, types) {
    dummy_cls = types.define_class("Dummy", {{"x", om::TypeKind::Int}});
  }
  ~ServicesTest() override { sys.stop(); }

  CompiledCallSite void_site(std::uint32_t method) {
    CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "test";
    cs.plan->needs_cycle_table = true;
    return cs;
  }

  om::TypeRegistry types;
  net::Cluster cluster;
  RmiSystem sys;
  om::ClassId dummy_cls = om::kNoClass;
};

// ---- remote exceptions -------------------------------------------------------

TEST_F(ServicesTest, RemoteExceptionPropagatesToCaller) {
  const auto mid = sys.define_method(
      "boom", [](CallContext&, auto, auto) -> HandlerResult {
        return HandlerResult::exception("division by zero on the server");
      });
  const auto site = sys.add_callsite(void_site(mid));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(dummy_cls));
  sys.start();
  try {
    sys.invoke(0, ref, site, {});
    FAIL() << "expected RemoteException";
  } catch (const RemoteException& e) {
    EXPECT_STREQ(e.what(), "division by zero on the server");
  }
}

TEST_F(ServicesTest, ThrownErrorIsConvertedToRemoteException) {
  const auto mid = sys.define_method(
      "thrower", [](CallContext&, auto, auto) -> HandlerResult {
        fail("handler blew up");
      });
  const auto site = sys.add_callsite(void_site(mid));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(dummy_cls));
  sys.start();
  EXPECT_THROW(sys.invoke(0, ref, site, {}), RemoteException);
  // The dispatcher survives: a follow-up call still works.
  EXPECT_THROW(sys.invoke(0, ref, site, {}), RemoteException);
}

TEST_F(ServicesTest, LocalCallsPropagateExceptionsToo) {
  const auto mid = sys.define_method(
      "boom", [](CallContext&, auto, auto) -> HandlerResult {
        return HandlerResult::exception("local failure");
      });
  const auto site = sys.add_callsite(void_site(mid));
  const RemoteRef ref =
      sys.export_object(0, cluster.machine(0).heap().alloc(dummy_cls));
  sys.start();
  EXPECT_THROW(sys.invoke(0, ref, site, {}), RemoteException);
}

TEST_F(ServicesTest, DeferredExceptionCompletesCall) {
  std::optional<ReplyToken> pending;
  std::mutex mu;
  const auto mid = sys.define_method(
      "defer", [&](CallContext& ctx, auto, auto) -> HandlerResult {
        std::scoped_lock lock(mu);
        pending = ctx.reply_token();
        return HandlerResult{.deferred = true};
      });
  const auto site = sys.add_callsite(void_site(mid));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(dummy_cls));
  sys.start();

  std::thread completer([&] {
    while (true) {
      {
        std::scoped_lock lock(mu);
        if (pending.has_value()) break;
      }
      std::this_thread::yield();
    }
    sys.send_exception(*pending, "deferred failure");
  });
  EXPECT_THROW(sys.invoke(0, ref, site, {}), RemoteException);
  completer.join();
}

TEST_F(ServicesTest, ExceptionsDoNotLeakArgumentGraphs) {
  const auto mid = sys.define_method(
      "boom", [](CallContext&, auto, auto) -> HandlerResult {
        return HandlerResult::exception("nope");
      });
  CompiledCallSite cs = void_site(mid);
  cs.plan->args.push_back(serial::make_dynamic_node(dummy_cls));
  const auto site = sys.add_callsite(std::move(cs));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(dummy_cls));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  om::ObjRef arg = h0.alloc(dummy_cls);
  EXPECT_THROW(sys.invoke(0, ref, site, std::array{arg}), RemoteException);
  sys.stop();
  // The callee freed the deserialized argument despite the failure.
  const auto s1 = sys.stats(1);
  EXPECT_EQ(s1.serial.objects_allocated, s1.serial.objects_freed);
  h0.free(arg);
}

// ---- name service -------------------------------------------------------------

TEST_F(ServicesTest, BindAndLookupRoundTrip) {
  NameService names(sys, types);
  const RemoteRef obj =
      sys.export_object(2, cluster.machine(2).heap().alloc(dummy_cls));
  sys.start();

  names.bind(2, "worker#2", obj);
  const RemoteRef found = names.lookup(1, "worker#2");
  EXPECT_EQ(found.machine, obj.machine);
  EXPECT_EQ(found.export_id, obj.export_id);
}

TEST_F(ServicesTest, LookupOfUnboundNameThrows) {
  NameService names(sys, types);
  sys.start();
  EXPECT_THROW(names.lookup(1, "missing"), RemoteException);
}

TEST_F(ServicesTest, DoubleBindThrows) {
  NameService names(sys, types);
  const RemoteRef obj =
      sys.export_object(1, cluster.machine(1).heap().alloc(dummy_cls));
  sys.start();
  names.bind(1, "dup", obj);
  EXPECT_THROW(names.bind(2, "dup", obj), RemoteException);
}

TEST_F(ServicesTest, NameServiceUsesClassModeProtocol) {
  NameService names(sys, types);
  const RemoteRef obj =
      sys.export_object(1, cluster.machine(1).heap().alloc(dummy_cls));
  sys.start();
  names.bind(1, "svc", obj);
  names.lookup(0, "svc");
  sys.stop();
  // The runtime system's own RMIs probe the cycle table and ship type
  // info — the residue the paper's site+cycle statistics still show.
  const auto total = sys.total_stats();
  EXPECT_GT(total.serial.cycle_lookups, 0u);
  EXPECT_GT(total.serial.type_info_bytes, 0u);
}

TEST_F(ServicesTest, PerCallsiteStatsSeparateTraffic) {
  const auto noop = sys.define_method(
      "noop", [](CallContext&, auto, auto) { return HandlerResult{}; });
  CompiledCallSite a = void_site(noop);
  a.plan->name = "siteA";
  a.plan->args.push_back(serial::make_dynamic_node(dummy_cls));
  const auto site_a = sys.add_callsite(std::move(a));
  CompiledCallSite b2 = void_site(noop);
  b2.plan->name = "siteB";
  const auto site_b = sys.add_callsite(std::move(b2));
  const RemoteRef ref =
      sys.export_object(1, cluster.machine(1).heap().alloc(dummy_cls));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  om::ObjRef arg = h0.alloc(dummy_cls);
  for (int i = 0; i < 3; ++i) sys.invoke(0, ref, site_a, std::array{arg});
  sys.invoke(0, ref, site_b, {});
  sys.invoke(1, ref, site_b, {});  // local call at machine 1
  sys.stop();

  const auto sa = sys.callsite_stats(site_a);
  const auto sb = sys.callsite_stats(site_b);
  EXPECT_EQ(sa.remote_rpcs, 3u);
  EXPECT_EQ(sa.serial.cycle_lookups, 3u);   // one probe per shipped object
  EXPECT_EQ(sa.serial.objects_allocated, 3u);
  EXPECT_EQ(sb.remote_rpcs, 1u);
  EXPECT_EQ(sb.local_rpcs, 1u);
  EXPECT_EQ(sb.serial.cycle_lookups, 0u);

  const std::string report = sys.report();
  EXPECT_NE(report.find("siteA"), std::string::npos);
  EXPECT_NE(report.find("siteB"), std::string::npos);
  h0.free(arg);
}

TEST_F(ServicesTest, LookupFromEveryMachineAgrees) {
  NameService names(sys, types);
  const RemoteRef obj =
      sys.export_object(2, cluster.machine(2).heap().alloc(dummy_cls));
  sys.start();
  names.bind(0, "shared", obj);
  for (std::uint16_t m = 0; m < 3; ++m) {
    const RemoteRef r = names.lookup(m, "shared");
    EXPECT_EQ(r.machine, 2);
    EXPECT_EQ(r.export_id, obj.export_id);
  }
}

}  // namespace
}  // namespace rmiopt::rmi
