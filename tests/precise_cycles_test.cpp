// Tests for the construction-order cycle-analysis refinement (the paper's
// §7 future work: "Currently linked lists (containing no dynamic cycles)
// are mistakenly identified as having cycles").
//
// The refinement must prove `head = new LinkedList(head)` chains acyclic
// while still flagging everything that genuinely needs runtime handles:
// self references, ring closures, shared substructure, and anything whose
// construction pattern it cannot see through.
#include <gtest/gtest.h>

#include "apps/microbench.hpp"
#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"

namespace rmiopt::analysis {
namespace {

using apps::figures::FigureProgram;

struct Analyzed {
  FigureProgram p;
  std::unique_ptr<HeapAnalysis> heap;
  std::unique_ptr<CycleAnalysis> base;
  std::unique_ptr<CycleAnalysis> refined;

  explicit Analyzed(FigureProgram prog) : p(std::move(prog)) {
    ir::verify(*p.module);
    heap = std::make_unique<HeapAnalysis>(*p.module);
    heap->run();
    base = std::make_unique<CycleAnalysis>(*heap, false);
    refined = std::make_unique<CycleAnalysis>(*heap, true);
  }
};

// Common scaffold: remote bar(Node) plus a caller body supplied by `build`.
struct NodeProgram {
  FigureProgram p;

  template <typename Build>
  explicit NodeProgram(Build build) {
    p.types = std::make_unique<om::TypeRegistry>();
    p.module = std::make_unique<ir::Module>(*p.types);
    const om::ClassId node = p.types->declare_class("Node");
    p.types->define_fields(node, {{"Next", om::TypeKind::Ref, node}});
    p.classes["Node"] = node;
    ir::Function& bar = p.module->add_function(
        "bar", {ir::Type::ref(node)}, ir::Type::void_type(), true);
    {
      ir::FunctionBuilder b(*p.module, bar);
      b.ret();
    }
    ir::Function& foo =
        p.module->add_function("foo", {}, ir::Type::void_type());
    {
      ir::FunctionBuilder b(*p.module, foo);
      build(b, node, bar.id);
      b.ret();
    }
    p.tags["bar"] = 1;
  }
};

bool refined_says_cyclic(const FigureProgram& p) {
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();
  CycleAnalysis refined(heap, true);
  return refined.callsite_needs_cycle_table(p.site(1));
}

TEST(PreciseCycles, LinkedListChainIsProvenAcyclic) {
  Analyzed a(apps::figures::make_figure14());
  const auto site = a.p.site(a.p.tag("send"));
  EXPECT_TRUE(a.base->callsite_needs_cycle_table(site));    // paper behavior
  EXPECT_FALSE(a.refined->callsite_needs_cycle_table(site));  // §7 fixed
}

TEST(PreciseCycles, SelfReferenceStillFlagged) {
  Analyzed a(apps::figures::make_figure9());
  const auto site = a.p.site(a.p.tag("bar"));
  // b.self = b stores the object into itself: value id == target id, not
  // older — the refinement must keep runtime detection.
  EXPECT_TRUE(a.refined->callsite_needs_cycle_table(site));
}

TEST(PreciseCycles, AliasedArgumentsStillFlagged) {
  Analyzed a(apps::figures::make_figure8());
  EXPECT_TRUE(a.refined->callsite_needs_cycle_table(a.p.site(a.p.tag("bar"))));
}

TEST(PreciseCycles, RingClosureStillFlagged) {
  // Build a chain, then close the ring by mutating the oldest node:
  // old.Next = newest — the stored value is *younger* than the target.
  NodeProgram prog([](ir::FunctionBuilder& b, om::ClassId node,
                      ir::FuncId bar) {
    const auto oldest = b.alloc(node);
    const auto mid = b.alloc(node);
    b.store_field(mid, "Next", oldest);
    const auto newest = b.alloc(node);
    b.store_field(newest, "Next", mid);
    b.store_field(oldest, "Next", newest);  // closes the ring
    b.remote_call(bar, {newest}, 1);
  });
  EXPECT_TRUE(refined_says_cyclic(prog.p));
}

TEST(PreciseCycles, SharedTailAcrossArgumentsStillFlagged) {
  // p1.Next = x; p2.Next = x and both p1 and p2 are serialized in the same
  // message: x is reached twice — handles must stay (sharing, not a
  // cycle).  Caught by the seen-twice rule independent of ordering.
  FigureProgram p;
  p.types = std::make_unique<om::TypeRegistry>();
  p.module = std::make_unique<ir::Module>(*p.types);
  const om::ClassId node = p.types->declare_class("Node");
  p.types->define_fields(node, {{"Next", om::TypeKind::Ref, node}});
  ir::Function& bar2 = p.module->add_function(
      "bar2", {ir::Type::ref(node), ir::Type::ref(node)},
      ir::Type::void_type(), true);
  {
    ir::FunctionBuilder b(*p.module, bar2);
    b.ret();
  }
  ir::Function& foo = p.module->add_function("foo", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, foo);
    const auto x = b.alloc(node);
    const auto p1 = b.alloc(node);
    b.store_field(p1, "Next", x);
    const auto p2 = b.alloc(node);
    b.store_field(p2, "Next", x);
    b.remote_call(bar2.id, {p1, p2}, 1);
    b.ret();
  }
  EXPECT_TRUE(refined_says_cyclic(p));
}

TEST(PreciseCycles, LoadDerivedStoreTaintsTheField) {
  // A clean construction loop *plus* one store whose value comes out of
  // the heap: the load-derived store taints Node.Next for the whole
  // class, so the loop's back edge is no longer excusable.
  NodeProgram prog([](ir::FunctionBuilder& b, om::ClassId node,
                      ir::FuncId bar) {
    b.set_block("loop");
    const auto ph = b.empty_phi(ir::Type::ref(node));
    const auto n = b.alloc(node);
    b.store_field(n, "Next", ph);
    b.append_phi_input(ph, n);
    // Elsewhere: a rewiring store through a loaded reference.
    const auto y = b.load_field(n, "Next");
    const auto q = b.alloc(node);
    b.store_field(q, "Next", y);
    b.remote_call(bar, {n}, 1);
  });
  EXPECT_TRUE(refined_says_cyclic(prog.p));
}

TEST(PreciseCycles, TwoFieldDiamondRejectedByLinearity) {
  // Tree built in a loop with n.l = ph; n.r = ph: each iteration's node
  // reaches the previous one TWICE — intra-message sharing that the
  // elided protocol would duplicate.  The phi has two alias-creating
  // uses, so linearity rejects it and the field stays unordered.
  FigureProgram p;
  p.types = std::make_unique<om::TypeRegistry>();
  p.module = std::make_unique<ir::Module>(*p.types);
  const om::ClassId tree = p.types->declare_class("Tree");
  p.types->define_fields(tree, {{"l", om::TypeKind::Ref, tree},
                                {"r", om::TypeKind::Ref, tree}});
  ir::Function& bar = p.module->add_function(
      "bar", {ir::Type::ref(tree)}, ir::Type::void_type(), true);
  {
    ir::FunctionBuilder b(*p.module, bar);
    b.ret();
  }
  ir::Function& foo = p.module->add_function("foo", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, foo);
    b.set_block("loop");
    const auto ph = b.empty_phi(ir::Type::ref(tree));
    const auto n = b.alloc(tree);
    b.store_field(n, "l", ph);
    b.store_field(n, "r", ph);
    b.append_phi_input(ph, n);
    b.remote_call(bar.id, {n}, 1);
    b.ret();
  }
  EXPECT_TRUE(refined_says_cyclic(p));
}

TEST(PreciseCycles, SingleFieldTreeLoopIsProvenAcyclic) {
  // Control for the diamond test: the same loop storing ph only once is a
  // clean chain and the refinement proves it.
  FigureProgram p;
  p.types = std::make_unique<om::TypeRegistry>();
  p.module = std::make_unique<ir::Module>(*p.types);
  const om::ClassId tree = p.types->declare_class("Tree");
  p.types->define_fields(tree, {{"l", om::TypeKind::Ref, tree},
                                {"r", om::TypeKind::Ref, tree}});
  ir::Function& bar = p.module->add_function(
      "bar", {ir::Type::ref(tree)}, ir::Type::void_type(), true);
  {
    ir::FunctionBuilder b(*p.module, bar);
    b.ret();
  }
  ir::Function& foo = p.module->add_function("foo", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, foo);
    b.set_block("loop");
    const auto ph = b.empty_phi(ir::Type::ref(tree));
    const auto n = b.alloc(tree);
    b.store_field(n, "l", ph);
    b.append_phi_input(ph, n);
    b.remote_call(bar.id, {n}, 1);
    b.ret();
  }
  EXPECT_FALSE(refined_says_cyclic(p));
}

TEST(PreciseCycles, YoungerValueMutationTaintsTheField) {
  // old.Next = younger after construction (the rewiring half of a ring):
  // value id exceeds the target's alloc id, the field is tainted, and the
  // same-class construction loop gets flagged too.
  NodeProgram prog([](ir::FunctionBuilder& b, om::ClassId node,
                      ir::FuncId bar) {
    b.set_block("loop");
    const auto ph = b.empty_phi(ir::Type::ref(node));
    const auto n = b.alloc(node);
    b.store_field(n, "Next", ph);
    b.append_phi_input(ph, n);
    const auto later = b.alloc(node);
    b.store_field(n, "Next", later);  // younger value: taint
    b.remote_call(bar, {n}, 1);
  });
  EXPECT_TRUE(refined_says_cyclic(prog.p));
}

TEST(PreciseCycles, ArraysOfFreshRowsRemainAcyclicEitherWay) {
  Analyzed a(apps::figures::make_figure12());
  const auto site = a.p.site(a.p.tag("send"));
  EXPECT_FALSE(a.base->callsite_needs_cycle_table(site));
  EXPECT_FALSE(a.refined->callsite_needs_cycle_table(site));
}

TEST(PreciseCycles, FieldOrderingVerdicts) {
  Analyzed a(apps::figures::make_figure14());
  EXPECT_TRUE(a.refined->field_is_init_ordered(a.p.cls("LinkedList"), 0));
  Analyzed b(apps::figures::make_figure9());
  EXPECT_FALSE(b.refined->field_is_init_ordered(b.p.cls("Base"), 0));
}

TEST(PreciseCycles, ListBenchGainsFromTheRefinement) {
  apps::ListBenchConfig base;
  base.iterations = 50;
  apps::ListBenchConfig precise = base;
  precise.precise_cycles = true;

  const auto t_base =
      apps::run_list_bench(codegen::OptLevel::SiteCycle, base);
  const auto t_precise =
      apps::run_list_bench(codegen::OptLevel::SiteCycle, precise);
  // With the paper's analysis, site+cycle == site for lists (Table 1);
  // with the refinement the cycle table actually disappears.
  EXPECT_LT(t_precise.makespan, t_base.makespan);
  EXPECT_GT(t_base.total.serial.cycle_lookups, 0u);
  EXPECT_EQ(t_precise.total.serial.cycle_lookups, 0u);
  // The transferred list is identical either way.
  EXPECT_EQ(t_precise.check, t_base.check);
}

TEST(PreciseCycles, RoundTripStaysCorrectWithElision) {
  // End-to-end safety net: with the refinement eliding the cycle table,
  // the 100-node list must still arrive intact at every level.
  apps::ListBenchConfig cfg;
  cfg.iterations = 10;
  cfg.precise_cycles = true;
  for (const auto level : codegen::kPaperLevels) {
    const auto r = apps::run_list_bench(level, cfg);
    EXPECT_EQ(r.check, 10.0) << codegen::to_string(level);
  }
}

}  // namespace
}  // namespace rmiopt::analysis
