// Integration tests for the two microbenchmarks: correctness of delivery
// plus the qualitative shape of Tables 1 and 2.
#include <gtest/gtest.h>

#include "apps/microbench.hpp"

namespace rmiopt::apps {
namespace {

using codegen::OptLevel;

TEST(ListBench, DeliversEveryIteration) {
  ListBenchConfig cfg;
  cfg.iterations = 20;
  const RunResult r = run_list_bench(OptLevel::Class, cfg);
  EXPECT_EQ(r.check, 20.0);
  EXPECT_EQ(r.total.remote_rpcs, 20u);
}

TEST(ListBench, Table1Shape) {
  ListBenchConfig cfg;
  cfg.iterations = 50;
  const auto t_class = run_list_bench(OptLevel::Class, cfg).makespan;
  const auto t_site = run_list_bench(OptLevel::Site, cfg).makespan;
  const auto t_site_cycle = run_list_bench(OptLevel::SiteCycle, cfg).makespan;
  const auto t_site_reuse = run_list_bench(OptLevel::SiteReuse, cfg).makespan;
  const auto t_all = run_list_bench(OptLevel::SiteReuseCycle, cfg).makespan;

  // Table 1: site beats class; cycle elision does NOT fire (the list is
  // misclassified as cyclic, §7), so site+cycle == site; reuse is the big
  // win; site+reuse+cycle == site+reuse.
  EXPECT_LT(t_site, t_class);
  EXPECT_EQ(t_site_cycle.as_nanos(), t_site.as_nanos());
  EXPECT_LT(t_site_reuse, t_site);
  EXPECT_EQ(t_all.as_nanos(), t_site_reuse.as_nanos());
}

TEST(ListBench, ReuseEliminatesSteadyStateAllocations) {
  ListBenchConfig cfg;
  cfg.list_length = 100;
  cfg.iterations = 50;
  const RunResult no_reuse = run_list_bench(OptLevel::Site, cfg);
  const RunResult reuse = run_list_bench(OptLevel::SiteReuse, cfg);
  // Without reuse: 100 allocations per RMI.  With reuse: 100 on the first
  // call only ("per RMI there are 100 object allocations saved", §5.1).
  EXPECT_EQ(no_reuse.total.serial.objects_allocated, 100u * 50u);
  EXPECT_EQ(reuse.total.serial.objects_allocated, 100u);
  EXPECT_EQ(reuse.total.serial.objects_reused, 100u * 49u);
}

TEST(ArrayBench, DeliversMutatedValues) {
  ArrayBenchConfig cfg;
  cfg.iterations = 10;
  const RunResult r = run_array_bench(OptLevel::SiteReuseCycle, cfg);
  EXPECT_EQ(r.check, 45.0);  // sum 0..9
}

TEST(ArrayBench, Table2Shape) {
  ArrayBenchConfig cfg;
  cfg.iterations = 50;
  const auto t_class = run_array_bench(OptLevel::Class, cfg).makespan;
  const auto t_site = run_array_bench(OptLevel::Site, cfg).makespan;
  const auto t_site_cycle =
      run_array_bench(OptLevel::SiteCycle, cfg).makespan;
  const auto t_site_reuse =
      run_array_bench(OptLevel::SiteReuse, cfg).makespan;
  const auto t_all = run_array_bench(OptLevel::SiteReuseCycle, cfg).makespan;

  // Table 2: every optimization helps; the full stack wins.
  EXPECT_LT(t_site, t_class);
  EXPECT_LT(t_site_cycle, t_site);
  EXPECT_LT(t_site_reuse, t_site);
  EXPECT_LT(t_all, t_site_reuse);
  EXPECT_LT(t_all, t_site_cycle);
}

TEST(ArrayBench, SiteModeSendsNoTypeInfo) {
  ArrayBenchConfig cfg;
  cfg.iterations = 10;
  const RunResult klass = run_array_bench(OptLevel::Class, cfg);
  const RunResult site = run_array_bench(OptLevel::Site, cfg);
  EXPECT_GT(klass.total.serial.type_info_bytes, 0u);
  EXPECT_EQ(site.total.serial.type_info_bytes, 0u);
  EXPECT_LT(site.bytes, klass.bytes);
}

TEST(ArrayBench, CycleElisionRemovesAllLookups) {
  ArrayBenchConfig cfg;
  cfg.iterations = 10;
  const RunResult site = run_array_bench(OptLevel::Site, cfg);
  const RunResult cyc = run_array_bench(OptLevel::SiteCycle, cfg);
  EXPECT_GT(site.total.serial.cycle_lookups, 0u);
  EXPECT_EQ(cyc.total.serial.cycle_lookups, 0u);
}

TEST(Microbench, HeavyIsSlowerThanClass) {
  ArrayBenchConfig cfg;
  cfg.iterations = 20;
  const auto t_heavy = run_array_bench(OptLevel::Heavy, cfg).makespan;
  const auto t_class = run_array_bench(OptLevel::Class, cfg).makespan;
  EXPECT_GT(t_heavy, t_class);
}

TEST(Microbench, DeterministicVirtualTime) {
  ListBenchConfig cfg;
  cfg.iterations = 25;
  const auto a = run_list_bench(OptLevel::SiteReuse, cfg).makespan;
  const auto b = run_list_bench(OptLevel::SiteReuse, cfg).makespan;
  EXPECT_EQ(a.as_nanos(), b.as_nanos());
}

}  // namespace
}  // namespace rmiopt::apps
