// Backend-equivalence tests: the SimTransport (byte-framed, validating)
// and the LoopbackTransport (in-process struct passing) must drive the
// applications to *identical* virtual outcomes, because all virtual-time
// charging lives in the shared Transport base, not in the backends.
//
// The deterministic applications (microbenchmarks, web server) must match
// on the makespan to the nanosecond.  LU runs real worker threads whose
// interleaving perturbs virtual send moments run to run (a pre-existing
// property of the simulation, independent of the backend), so for LU we
// assert the deterministic observables only: event counts, traffic, and
// numerical correctness.
#include <gtest/gtest.h>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/webserver.hpp"

namespace rmiopt::apps {
namespace {

using codegen::OptLevel;

void expect_same_run(const RunResult& sim, const RunResult& loop,
                     bool compare_makespan = true) {
  if (compare_makespan) {
    EXPECT_EQ(sim.makespan.as_nanos(), loop.makespan.as_nanos());
  }
  EXPECT_EQ(sim.total, loop.total);  // every serializer event count
  ASSERT_EQ(sim.per_machine.size(), loop.per_machine.size());
  for (std::size_t i = 0; i < sim.per_machine.size(); ++i) {
    EXPECT_EQ(sim.per_machine[i], loop.per_machine[i]) << "machine " << i;
  }
  EXPECT_EQ(sim.messages, loop.messages);
  EXPECT_EQ(sim.bytes, loop.bytes);
  EXPECT_DOUBLE_EQ(sim.check, loop.check);
}

TEST(TransportEquivalence, LinkedListAllLevels) {
  for (OptLevel level : codegen::kPaperLevels) {
    ListBenchConfig cfg;
    cfg.iterations = 20;
    cfg.transport = net::TransportKind::Sim;
    const RunResult sim = run_list_bench(level, cfg);
    cfg.transport = net::TransportKind::Loopback;
    const RunResult loop = run_list_bench(level, cfg);
    expect_same_run(sim, loop);
  }
}

TEST(TransportEquivalence, ArrayAllLevels) {
  for (OptLevel level : codegen::kPaperLevels) {
    ArrayBenchConfig cfg;
    cfg.iterations = 20;
    cfg.transport = net::TransportKind::Sim;
    const RunResult sim = run_array_bench(level, cfg);
    cfg.transport = net::TransportKind::Loopback;
    const RunResult loop = run_array_bench(level, cfg);
    expect_same_run(sim, loop);
  }
}

TEST(TransportEquivalence, WebserverMatchesExactly) {
  for (OptLevel level : {OptLevel::Class, OptLevel::SiteReuseCycle}) {
    WebserverConfig cfg;
    cfg.requests = 100;
    cfg.transport = net::TransportKind::Sim;
    const RunResult sim = run_webserver(level, cfg);
    cfg.transport = net::TransportKind::Loopback;
    const RunResult loop = run_webserver(level, cfg);
    expect_same_run(sim, loop);
    EXPECT_DOUBLE_EQ(sim.check, 100.0 * cfg.page_size);
  }
}

TEST(TransportEquivalence, LuMatchesOnDeterministicObservables) {
  LuConfig cfg;
  cfg.n = 16;
  cfg.transport = net::TransportKind::Sim;
  const RunResult sim = run_lu(OptLevel::SiteReuseCycle, cfg);
  cfg.transport = net::TransportKind::Loopback;
  const RunResult loop = run_lu(OptLevel::SiteReuseCycle, cfg);
  // Thread interleaving makes LU's makespan noisy on *both* backends;
  // everything the serializers and the network counted must still agree.
  expect_same_run(sim, loop, /*compare_makespan=*/false);
  EXPECT_LT(sim.check, 1e-9);
  EXPECT_LT(loop.check, 1e-9);
}

}  // namespace
}  // namespace rmiopt::apps
