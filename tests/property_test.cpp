// Property-based tests: randomized object graphs swept over seeds with
// parameterized gtest.  Invariants checked:
//   * every wire protocol round-trips every graph shape (values, sharing,
//     cycles) — deep_equals(original, copy);
//   * serialization is deterministic (same graph -> same bytes);
//   * reuse sequences converge to zero allocations and never corrupt data;
//   * all heap objects are accounted for (no leaks, no double frees).
#include <gtest/gtest.h>

#include "serial/class_plans.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"
#include "support/rng.hpp"

namespace rmiopt::serial {
namespace {

using om::ClassId;
using om::ObjRef;
using om::TypeKind;

// A small class universe with mutual references, arrays and strings.
struct Universe {
  om::TypeRegistry types;
  ClassPlanRegistry class_plans{types};
  om::Heap heap{types};
  ClassId node = om::kNoClass;   // Node { long v; Node next; Pair buddy; }
  ClassId pair = om::kNoClass;   // Pair { int a; Node left; Node right; }
  ClassId darr = om::kNoClass;   // [double
  ClassId narr = om::kNoClass;   // [LNode;

  Universe() {
    node = types.declare_class("Node");
    pair = types.declare_class("Pair");
    types.define_fields(node, {{"v", TypeKind::Long},
                               {"next", TypeKind::Ref, node},
                               {"buddy", TypeKind::Ref, pair}});
    types.define_fields(pair, {{"a", TypeKind::Int},
                               {"left", TypeKind::Ref, node},
                               {"right", TypeKind::Ref, node}});
    darr = types.register_prim_array(TypeKind::Double);
    narr = types.register_ref_array(node);
  }
};

// Generates a random graph of up to `max_nodes` objects.  `wild` allows
// cycles and sharing (references may target any previously created
// object); otherwise references only target strictly older objects in a
// tree discipline (each object referenced at most once).
ObjRef random_graph(Universe& u, SplitMix64& rng, int max_nodes, bool wild) {
  const int n = 1 + static_cast<int>(rng.next_below(max_nodes));
  std::vector<ObjRef> pool;
  std::vector<bool> used(n, false);
  auto pick_target = [&](std::size_t upto) -> ObjRef {
    if (upto == 0 || rng.next_below(4) == 0) return nullptr;
    if (wild) {
      // may create sharing and (later, via field stores) cycles
      return pool[rng.next_below(upto)];
    }
    // tree discipline: each node referenced at most once
    for (int tries = 0; tries < 8; ++tries) {
      const std::size_t i = rng.next_below(upto);
      if (!used[i]) {
        used[i] = true;
        return pool[i];
      }
    }
    return nullptr;
  };

  for (int i = 0; i < n; ++i) {
    const std::uint64_t kind = rng.next_below(4);
    ObjRef obj;
    if (kind == 0) {
      obj = u.heap.alloc_array(u.darr, 1 + static_cast<std::uint32_t>(
                                               rng.next_below(8)));
      for (double& d : obj->elems<double>()) d = rng.next_double();
    } else if (kind == 1) {
      obj = u.heap.alloc_array(u.narr, static_cast<std::uint32_t>(
                                           rng.next_below(4)));
      for (std::uint32_t e = 0; e < obj->length(); ++e) {
        ObjRef t = pick_target(pool.size());
        if (t != nullptr && t->class_id() == u.node) obj->set_elem_ref(e, t);
      }
    } else if (kind == 2) {
      const om::ClassDescriptor& c = u.types.get(u.node);
      obj = u.heap.alloc(c);
      obj->set<std::int64_t>(c.fields[0], rng.next_i64());
      ObjRef t = pick_target(pool.size());
      if (t != nullptr && t->class_id() == u.node) obj->set_ref(c.fields[1], t);
      t = pick_target(pool.size());
      if (t != nullptr && t->class_id() == u.pair) obj->set_ref(c.fields[2], t);
    } else {
      const om::ClassDescriptor& c = u.types.get(u.pair);
      obj = u.heap.alloc(c);
      obj->set<std::int32_t>(c.fields[0],
                             static_cast<std::int32_t>(rng.next()));
      for (int f = 1; f <= 2; ++f) {
        ObjRef t = pick_target(pool.size());
        if (t != nullptr && t->class_id() == u.node) {
          obj->set_ref(c.fields[f], t);
        }
      }
    }
    pool.push_back(obj);
  }
  // Wild graphs: sprinkle back edges to create cycles.
  if (wild) {
    const om::ClassDescriptor& c = u.types.get(u.node);
    for (int i = 0; i < n / 3; ++i) {
      ObjRef a = pool[rng.next_below(pool.size())];
      ObjRef b = pool[rng.next_below(pool.size())];
      if (a->class_id() == u.node && b->class_id() == u.node) {
        a->set_ref(c.fields[1], b);
      }
    }
  }
  // Root object referencing a handful of pool members (ref array).
  ObjRef root = u.heap.alloc_array(
      u.narr, static_cast<std::uint32_t>(std::min<std::size_t>(4, pool.size())));
  for (std::uint32_t e = 0; e < root->length(); ++e) {
    // In tree mode the root must respect the once-only discipline too.
    ObjRef t = wild ? pool[rng.next_below(pool.size())]
                    : pick_target(pool.size());
    if (t != nullptr && t->class_id() == u.node) root->set_elem_ref(e, t);
  }
  // Anything unreachable from the root is freed to keep accounting exact.
  std::unordered_set<om::Object*> reachable;
  om::collect_graph(root, reachable);
  for (ObjRef o : pool) {
    if (!reachable.contains(o)) u.heap.free(o);
  }
  return root;
}

class RoundTripP : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripP, ClassModeRoundTripsWildGraphs) {
  Universe u;
  SplitMix64 rng(GetParam() * 7919 + 1);
  for (int round = 0; round < 8; ++round) {
    ObjRef g = random_graph(u, rng, 24, /*wild=*/true);
    auto root = make_dynamic_node(u.narr);
    SerialStats ws;
    SerialWriter w(u.class_plans, ws, /*cycle_enabled=*/true);
    ByteBuffer buf;
    w.write(buf, *root, g);
    SerialStats rs;
    SerialReader r(u.class_plans, u.heap, rs, true);
    ObjRef copy = r.read(buf, *root);
    EXPECT_TRUE(om::deep_equals(g, copy));
    EXPECT_EQ(buf.remaining(), 0u);
    u.heap.free_graph(g);
    u.heap.free_graph(copy);
  }
  EXPECT_EQ(u.heap.stats().live_objects(), 0u);
}

TEST_P(RoundTripP, HeavyModeRoundTripsWildGraphs) {
  Universe u;
  SplitMix64 rng(GetParam() * 104729 + 2);
  for (int round = 0; round < 6; ++round) {
    ObjRef g = random_graph(u, rng, 20, /*wild=*/true);
    SerialStats ws;
    SerialWriter w(u.class_plans, ws, true);
    ByteBuffer buf;
    w.write_introspective(buf, g);
    SerialStats rs;
    SerialReader r(u.class_plans, u.heap, rs, true);
    ObjRef copy = r.read_introspective(buf);
    EXPECT_TRUE(om::deep_equals(g, copy));
    u.heap.free_graph(g);
    u.heap.free_graph(copy);
  }
  EXPECT_EQ(u.heap.stats().live_objects(), 0u);
}

TEST_P(RoundTripP, SerializationIsDeterministic) {
  Universe u;
  SplitMix64 rng(GetParam() * 31 + 3);
  ObjRef g = random_graph(u, rng, 16, /*wild=*/true);
  auto root = make_dynamic_node(u.narr);
  ByteBuffer b1, b2;
  SerialStats s1, s2;
  SerialWriter w1(u.class_plans, s1, true);
  w1.write(b1, *root, g);
  SerialWriter w2(u.class_plans, s2, true);
  w2.write(b2, *root, g);
  ASSERT_EQ(b1.size(), b2.size());
  EXPECT_TRUE(std::equal(b1.contents().begin(), b1.contents().end(),
                         b2.contents().begin()));
  u.heap.free_graph(g);
}

TEST_P(RoundTripP, TreeGraphsSurviveBothCycleSettings) {
  // Tree-disciplined graphs contain no cycles or sharing, so they must
  // round-trip identically with and without the cycle protocol.
  Universe u;
  SplitMix64 rng(GetParam() * 977 + 4);
  ObjRef g = random_graph(u, rng, 20, /*wild=*/false);
  auto root = make_dynamic_node(u.narr);
  for (const bool cycles : {true, false}) {
    SerialStats ws;
    SerialWriter w(u.class_plans, ws, cycles);
    ByteBuffer buf;
    w.write(buf, *root, g);
    SerialStats rs;
    SerialReader r(u.class_plans, u.heap, rs, cycles);
    ObjRef copy = r.read(buf, *root);
    EXPECT_TRUE(om::deep_equals(g, copy));
    u.heap.free_graph(copy);
  }
  u.heap.free_graph(g);
  EXPECT_EQ(u.heap.stats().live_objects(), 0u);
}

TEST_P(RoundTripP, ReuseSequencesConvergeAndStayCorrect) {
  // A site plan for variable-length double[][]: send a random sequence of
  // matrices through the reuse cache; every delivery must match and the
  // live-object count must stay bounded by one cached graph.
  Universe u;
  SplitMix64 rng(GetParam() * 13 + 5);
  const ClassId mat_cls = u.types.register_ref_array(u.darr);
  auto row_plan = std::make_unique<NodePlan>();
  row_plan->expected_class = u.darr;
  auto mat_plan = std::make_unique<NodePlan>();
  mat_plan->expected_class = mat_cls;
  mat_plan->elem_plan = std::move(row_plan);

  ObjRef cached = nullptr;
  for (int round = 0; round < 12; ++round) {
    const auto rows = 1 + static_cast<std::uint32_t>(rng.next_below(6));
    ObjRef m = u.heap.alloc_array(mat_cls, rows);
    for (std::uint32_t r0 = 0; r0 < rows; ++r0) {
      ObjRef row = u.heap.alloc_array(
          u.darr, 1 + static_cast<std::uint32_t>(rng.next_below(6)));
      for (double& d : row->elems<double>()) d = rng.next_double();
      m->set_elem_ref(r0, row);
    }
    SerialStats ws;
    SerialWriter w(u.class_plans, ws, false);
    ByteBuffer buf;
    w.write(buf, *mat_plan, m);
    SerialStats rs;
    SerialReader r(u.class_plans, u.heap, rs, false);
    cached = r.read_reusing(buf, *mat_plan, cached);
    EXPECT_TRUE(om::deep_equals(m, cached));
    u.heap.free_graph(m);
  }
  u.heap.free_graph(cached);
  EXPECT_EQ(u.heap.stats().live_objects(), 0u);
}

TEST_P(RoundTripP, IdenticalShapesReuseEverythingAfterWarmup) {
  Universe u;
  SplitMix64 rng(GetParam() * 41 + 6);
  const ClassId mat_cls = u.types.register_ref_array(u.darr);
  auto row_plan = std::make_unique<NodePlan>();
  row_plan->expected_class = u.darr;
  auto mat_plan = std::make_unique<NodePlan>();
  mat_plan->expected_class = mat_cls;
  mat_plan->elem_plan = std::move(row_plan);

  const auto rows = 1 + static_cast<std::uint32_t>(rng.next_below(5));
  const auto cols = 1 + static_cast<std::uint32_t>(rng.next_below(7));
  ObjRef m = u.heap.alloc_array(mat_cls, rows);
  for (std::uint32_t r0 = 0; r0 < rows; ++r0) {
    m->set_elem_ref(r0, u.heap.alloc_array(u.darr, cols));
  }
  ObjRef cached = nullptr;
  for (int round = 0; round < 5; ++round) {
    m->get_elem_ref(0)->elems<double>()[0] = round;
    SerialStats ws;
    SerialWriter w(u.class_plans, ws, false);
    ByteBuffer buf;
    w.write(buf, *mat_plan, m);
    SerialStats rs;
    SerialReader r(u.class_plans, u.heap, rs, false);
    cached = r.read_reusing(buf, *mat_plan, cached);
    if (round > 0) {
      EXPECT_EQ(rs.objects_allocated, 0u);
      EXPECT_EQ(rs.objects_reused, 1u + rows);
    }
    EXPECT_TRUE(om::deep_equals(m, cached));
  }
  u.heap.free_graph(m);
  u.heap.free_graph(cached);
  EXPECT_EQ(u.heap.stats().live_objects(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripP, ::testing::Range(0, 16));

// ---- failure injection -------------------------------------------------------

class CorruptionP : public ::testing::TestWithParam<int> {};

TEST_P(CorruptionP, TruncatedStreamsThrowNeverCrash) {
  Universe u;
  SplitMix64 rng(GetParam() * 17 + 8);
  ObjRef g = random_graph(u, rng, 12, /*wild=*/true);
  auto root = make_dynamic_node(u.narr);
  SerialStats ws;
  SerialWriter w(u.class_plans, ws, true);
  ByteBuffer buf;
  w.write(buf, *root, g);
  const auto bytes = buf.contents();

  for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
    ByteBuffer truncated(
        std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + cut));
    SerialStats rs;
    SerialReader r(u.class_plans, u.heap, rs, true);
    ObjRef partial = nullptr;
    EXPECT_THROW(partial = r.read(truncated, *root), Error) << "cut=" << cut;
    if (partial != nullptr) u.heap.free_graph(partial);
    // A failed pass unwinds its own allocations (exception-safe decode).
    EXPECT_EQ(rs.objects_allocated, rs.objects_freed) << "cut=" << cut;
  }
  u.heap.free_graph(g);
}

TEST_P(CorruptionP, BitFlipsThrowOrProduceWellFormedGraphs) {
  Universe u;
  SplitMix64 rng(GetParam() * 19 + 9);
  ObjRef g = random_graph(u, rng, 10, /*wild=*/true);
  auto root = make_dynamic_node(u.narr);
  SerialStats ws;
  SerialWriter w(u.class_plans, ws, true);
  ByteBuffer buf;
  w.write(buf, *root, g);
  std::vector<std::uint8_t> bytes(buf.contents().begin(),
                                  buf.contents().end());

  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
    ByteBuffer in(std::move(mutated));
    SerialStats rs;
    SerialReader r(u.class_plans, u.heap, rs, true);
    try {
      ObjRef copy = r.read(in, *root);
      // Data corruption may go undetected (a flipped double), but the
      // resulting graph must be structurally sound: traversable and
      // freeable without fault.
      om::graph_object_count(copy);
      u.heap.free_graph(copy);
    } catch (const Error&) {
      // Structural corruption must surface as Error, never UB — and the
      // failed pass must have unwound everything it allocated.
      EXPECT_EQ(rs.objects_allocated, rs.objects_freed) << "trial=" << trial;
    }
  }
  u.heap.free_graph(g);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionP, ::testing::Range(0, 8));

}  // namespace
}  // namespace rmiopt::serial
