// Tests for the dispatch executor and for multi-worker RMI semantics:
// true handler concurrency, deferred replies completed off-thread, and
// reuse-cache integrity when several handlers of the same call site run
// at once (§3.3's locking discipline under real contention).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/webserver.hpp"
#include "rmi/executor.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt::rmi {
namespace {

using namespace std::chrono_literals;
using om::ClassId;
using om::ObjRef;
using om::TypeKind;

// ---- DispatchExecutor unit tests ------------------------------------------

TEST(DispatchExecutor, SingleWorkerRunsInlineOnTheCallingThread) {
  DispatchExecutor ex(1);
  EXPECT_EQ(ex.workers(), 1u);
  std::thread::id ran_on{};
  ex.execute([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  ex.drain_and_stop();
}

TEST(DispatchExecutor, PoolOverlapsTasks) {
  // Four tasks rendezvous: each waits (bounded) until all four have
  // started.  Only a pool that truly overlaps them can satisfy this.
  constexpr std::size_t kTasks = 4;
  DispatchExecutor ex(kTasks);
  std::mutex mu;
  std::condition_variable cv;
  std::size_t started = 0;
  bool all_overlapped = true;
  for (std::size_t i = 0; i < kTasks; ++i) {
    ex.execute([&] {
      std::unique_lock lock(mu);
      ++started;
      cv.notify_all();
      if (!cv.wait_for(lock, 10s, [&] { return started == kTasks; })) {
        all_overlapped = false;
      }
    });
  }
  ex.drain_and_stop();
  EXPECT_TRUE(all_overlapped);
  EXPECT_EQ(started, kTasks);
}

TEST(DispatchExecutor, DrainAndStopCompletesAllQueuedWork) {
  DispatchExecutor ex(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    ex.execute([&] { ++done; });
  }
  ex.drain_and_stop();
  EXPECT_EQ(done.load(), 200);
  ex.drain_and_stop();  // idempotent
  EXPECT_EQ(done.load(), 200);
}

// ---- multi-worker RMI semantics -------------------------------------------

class ExecutorRmiTest : public ::testing::Test {
 protected:
  // Machines 0 and 1 call into machine 2, whose handlers may overlap.
  ExecutorRmiTest()
      : cluster(3, types), sys(cluster, types, ExecutorConfig{2}) {
    point_id = types.define_class(
        "Point", {{"x", TypeKind::Double}, {"y", TypeKind::Double}});
  }

  ~ExecutorRmiTest() override { sys.stop(); }

  CompiledCallSite site_with_arg(std::uint32_t method, bool reuse_args) {
    CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "executor.test.site";
    auto node = std::make_unique<serial::NodePlan>();
    node->expected_class = point_id;
    cs.plan->args.push_back(std::move(node));
    cs.plan->needs_cycle_table = false;
    cs.plan->reuse_args = reuse_args;
    return cs;
  }

  CompiledCallSite site_no_args(std::uint32_t method) {
    CompiledCallSite cs;
    cs.method_id = method;
    cs.plan = std::make_unique<serial::CallSitePlan>();
    cs.plan->name = "executor.test.site";
    return cs;
  }

  ObjRef make_point(om::Heap& heap, double x, double y) {
    const om::ClassDescriptor& c = types.get(point_id);
    ObjRef p = heap.alloc(c);
    p->set<double>(c.fields[0], x);
    p->set<double>(c.fields[1], y);
    return p;
  }

  om::TypeRegistry types;
  net::Cluster cluster;
  RmiSystem sys;
  ClassId point_id = om::kNoClass;
};

TEST_F(ExecutorRmiTest, HandlersOfOneMachineRunConcurrently) {
  // Both calls rendezvous inside the handler: each waits (bounded) for
  // the other to arrive.  With the paper's single inline dispatcher the
  // second call could never start before the first finishes, so the peak
  // in-flight count proves the pool is live.
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  int peak = 0;
  const auto mid = sys.define_method("meet", [&](CallContext&, auto, auto) {
    std::unique_lock lock(mu);
    ++arrived;
    peak = std::max(peak, arrived);
    cv.notify_all();
    cv.wait_for(lock, 10s, [&] { return arrived >= 2; });
    return HandlerResult{};
  });
  const auto site = sys.add_callsite(site_no_args(mid));
  const RemoteRef ref =
      sys.export_object(2, cluster.machine(2).heap().alloc(point_id));
  sys.start();

  std::thread a([&] { sys.invoke(0, ref, site, {}); });
  std::thread b([&] { sys.invoke(1, ref, site, {}); });
  a.join();
  b.join();
  EXPECT_EQ(arrived, 2);
  EXPECT_EQ(peak, 2);  // the handlers overlapped
}

TEST_F(ExecutorRmiTest, DeferredRepliesReleaseConcurrentCallers) {
  // A two-party barrier: each handler defers; the second arrival releases
  // both via send_reply from the handler thread.  Exercises the
  // thread-safe reply path under pool execution.
  std::mutex mu;
  std::vector<ReplyToken> waiting;
  const auto mid =
      sys.define_method("barrier", [&](CallContext& ctx, auto, auto) {
        std::scoped_lock lock(mu);
        waiting.push_back(ctx.reply_token());
        if (waiting.size() == 2) {
          for (const ReplyToken& t : waiting) {
            sys.send_reply(t, nullptr);
          }
          waiting.clear();
        }
        return HandlerResult{.deferred = true};
      });
  const auto site = sys.add_callsite(site_no_args(mid));
  const RemoteRef ref =
      sys.export_object(2, cluster.machine(2).heap().alloc(point_id));
  sys.start();

  std::atomic<int> returned{0};
  std::thread a([&] {
    sys.invoke(0, ref, site, {});
    ++returned;
  });
  std::thread b([&] {
    sys.invoke(1, ref, site, {});
    ++returned;
  });
  a.join();
  b.join();
  EXPECT_EQ(returned.load(), 2);
}

TEST_F(ExecutorRmiTest, ReuseCacheStaysCoherentUnderConcurrentCallers) {
  // Two caller machines hammer the same reuse_args call site.  Whatever
  // the interleaving, every deserialized argument graph must be accounted
  // for exactly once (fresh allocation or recycled from the slot) and the
  // handler must always observe the values its caller sent.
  std::atomic<int> mismatches{0};
  const auto mid = sys.define_method(
      "consume", [&](CallContext&, auto, std::span<const ObjRef> args) {
        const om::ClassDescriptor& c = types.get(point_id);
        const double x = args[0]->get<double>(c.fields[0]);
        const double y = args[0]->get<double>(c.fields[1]);
        if (y != -x) ++mismatches;  // callers always send (v, -v)
        return HandlerResult{};
      });
  const auto site = sys.add_callsite(site_with_arg(mid, /*reuse_args=*/true));
  const RemoteRef ref =
      sys.export_object(2, cluster.machine(2).heap().alloc(point_id));
  sys.start();

  constexpr int kCallsPerCaller = 100;
  auto hammer = [&](std::uint16_t caller) {
    om::Heap& heap = cluster.machine(caller).heap();
    ObjRef arg = make_point(heap, 0, 0);
    const om::ClassDescriptor& c = types.get(point_id);
    for (int i = 0; i < kCallsPerCaller; ++i) {
      const double v = caller * 1000.0 + i;
      arg->set<double>(c.fields[0], v);
      arg->set<double>(c.fields[1], -v);
      sys.invoke(caller, ref, site, std::array{arg});
    }
    heap.free_graph(arg);
  };
  std::thread a([&] { hammer(0); });
  std::thread b([&] { hammer(1); });
  a.join();
  b.join();
  sys.stop();  // join dispatchers before reading callee counters

  EXPECT_EQ(mismatches.load(), 0);
  const auto s2 = sys.stats(2);
  // Every one of the 200 argument graphs was either freshly allocated or
  // recycled from the per-site slot — none double-counted, none lost.
  EXPECT_EQ(s2.serial.objects_allocated + s2.serial.objects_reused,
            2u * kCallsPerCaller);
  EXPECT_GT(s2.serial.objects_reused, 0u);
  EXPECT_EQ(sys.stats(0).remote_rpcs + sys.stats(1).remote_rpcs,
            2u * kCallsPerCaller);
}

// ---- full applications under a worker pool --------------------------------

TEST(ExecutorApps, ApplicationsStayCorrectWithTwoWorkers) {
  apps::ArrayBenchConfig array_cfg;
  array_cfg.iterations = 50;
  array_cfg.dispatch_workers = 2;
  const auto array = apps::run_array_bench(
      codegen::OptLevel::SiteReuseCycle, array_cfg);
  EXPECT_DOUBLE_EQ(array.check, 50.0 * 49.0 / 2.0);  // sum of iteration ids

  apps::WebserverConfig web_cfg;
  web_cfg.requests = 100;
  web_cfg.concurrent_clients = 4;
  web_cfg.dispatch_workers = 2;
  const auto web =
      apps::run_webserver(codegen::OptLevel::SiteReuseCycle, web_cfg);
  EXPECT_DOUBLE_EQ(web.check, 100.0 * web_cfg.page_size);

  // LU's step barrier is a deferred-reply RMI; the pool must not break it.
  apps::LuConfig lu_cfg;
  lu_cfg.n = 16;
  lu_cfg.dispatch_workers = 2;
  const auto lu = apps::run_lu(codegen::OptLevel::SiteReuseCycle, lu_cfg);
  EXPECT_LT(lu.check, 1e-9);
}

}  // namespace
}  // namespace rmiopt::rmi
