// Seeded chaos soak: every application, every paper optimization level,
// under a randomized (but fully seeded, hence reproducible) fault plan
// with the failure detector on.
//
// The invariants, checked against a clean baseline of the same config:
//  * the application check value is unchanged — at-most-once admission
//    means no handler ever runs twice, and ARQ + dedup + failover mean
//    no result is lost, so check-equality IS the no-double-execution /
//    no-lost-work oracle (the LU barrier counts arrivals, the superopt
//    queue counts hits: a duplicated or dropped handler moves the value);
//  * the virtual makespan stays bounded — faults cost time, never
//    livelock.
//
// Every assertion message carries (app, level, seed) so a violation
// pinpoints the reproducing plan.  bench/ablation_chaos.cpp sweeps the
// same harness over a wider seed range.
#include <gtest/gtest.h>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/superopt.hpp"
#include "apps/webserver.hpp"
#include "support/rng.hpp"

namespace rmiopt {
namespace {

using codegen::OptLevel;

constexpr OptLevel kLevels[] = {OptLevel::Class, OptLevel::Site,
                                OptLevel::SiteCycle, OptLevel::SiteReuse,
                                OptLevel::SiteReuseCycle};
constexpr std::uint64_t kSeeds[] = {1001, 2002};

// Randomized-but-seeded fault plan: lossy links everywhere, plus (for the
// webserver, whose replicas make a death survivable) one crashed machine.
// Machine 0 is never crashed — it anchors the registry and the detector.
net::FaultPlan chaos_plan(std::uint64_t seed, std::size_t machines,
                          bool allow_crash) {
  net::FaultPlan plan;
  plan.seed = seed;
  SplitMix64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  plan.default_link.drop = 0.06 * rng.next_double();
  plan.default_link.duplicate = 0.05 * rng.next_double();
  plan.default_link.reorder = 0.05 * rng.next_double();
  plan.default_link.corrupt = 0.04 * rng.next_double();
  if (allow_crash && machines > 2) {
    const auto victim = static_cast<std::uint16_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(machines) - 1));
    const auto at = static_cast<std::int64_t>(
        200'000 + rng.next_below(2'000'000));
    plan.crash_at(victim, at);
  }
  return plan;
}

net::FailureDetectorConfig chaos_detector() {
  net::FailureDetectorConfig d;
  d.enabled = true;
  return d;
}

// One clean + N seeded runs of one app at one level; asserts the
// invariants per seed.
template <typename Runner>
void soak(const char* app, OptLevel level, std::size_t machines,
          bool allow_crash, const Runner& run) {
  const apps::RunResult clean = run(net::FaultPlan{}, {});
  for (const std::uint64_t seed : kSeeds) {
    const net::FaultPlan plan = chaos_plan(seed, machines, allow_crash);
    const apps::RunResult r = run(plan, chaos_detector());
    const std::string where = std::string("app=") + app +
                              " level=" + std::string(to_string(level)) +
                              " seed=" + std::to_string(seed);
    ASSERT_DOUBLE_EQ(r.check, clean.check)
        << where << ": chaos changed the application result";
    // Generous but finite: a livelock or an unmasked fault storm blows
    // straight past 20x the healthy makespan plus slack.
    ASSERT_LE(r.makespan.as_nanos(),
              20 * clean.makespan.as_nanos() + 100'000'000)
        << where << ": makespan unbounded under chaos (clean="
        << clean.makespan.as_nanos() << " ns)";
  }
}

TEST(ChaosSoak, LinkedList) {
  for (const OptLevel level : kLevels) {
    soak("list", level, 2, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::ListBenchConfig cfg;
           cfg.list_length = 16;
           cfg.iterations = 6;
           cfg.faults = plan;
           cfg.detector = det;
           return run_list_bench(level, cfg);
         });
  }
}

TEST(ChaosSoak, Array2d) {
  for (const OptLevel level : kLevels) {
    soak("array", level, 2, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::ArrayBenchConfig cfg;
           cfg.rows = 8;
           cfg.cols = 8;
           cfg.iterations = 6;
           cfg.faults = plan;
           cfg.detector = det;
           return run_array_bench(level, cfg);
         });
  }
}

TEST(ChaosSoak, Lu) {
  for (const OptLevel level : kLevels) {
    soak("lu", level, 2, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::LuConfig cfg;
           cfg.n = 20;
           cfg.faults = plan;
           cfg.detector = det;
           return run_lu(level, cfg);
         });
  }
}

TEST(ChaosSoak, Superopt) {
  for (const OptLevel level : kLevels) {
    soak("superopt", level, 3, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::SuperoptConfig cfg;
           cfg.max_len = 1;
           cfg.test_vectors = 4;
           cfg.machines = 3;
           cfg.faults = plan;
           cfg.detector = det;
           return run_superopt(level, cfg);
         });
  }
}

TEST(ChaosSoak, Webserver) {
  for (const OptLevel level : kLevels) {
    soak("webserver", level, 4, /*allow_crash=*/true,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::WebserverConfig cfg;
           cfg.machines = 4;
           cfg.pages = 8;
           cfg.page_size = 128;
           cfg.requests = 30;
           cfg.call_timeout_ms = 5'000;  // real-time backstop, not the path
           cfg.faults = plan;
           cfg.detector = det;
           return run_webserver(level, cfg);
         });
  }
}

}  // namespace
}  // namespace rmiopt
