// Seeded chaos soak: every application, every paper optimization level,
// under a randomized (but fully seeded, hence reproducible) fault plan
// with the failure detector on.
//
// The invariants, checked against a clean baseline of the same config:
//  * the application check value is unchanged — at-most-once admission
//    means no handler ever runs twice, and ARQ + dedup + failover mean
//    no result is lost, so check-equality IS the no-double-execution /
//    no-lost-work oracle (the LU barrier counts arrivals, the superopt
//    queue counts hits: a duplicated or dropped handler moves the value);
//  * the virtual makespan stays bounded — faults cost time, never
//    livelock.
//
// Every assertion message carries (app, level, seed) so a violation
// pinpoints the reproducing plan.  bench/ablation_chaos.cpp sweeps the
// same harness over a wider seed range.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <map>
#include <mutex>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/superopt.hpp"
#include "apps/webserver.hpp"
#include "rmi/runtime.hpp"
#include "support/rng.hpp"

namespace rmiopt {
namespace {

using codegen::OptLevel;

constexpr OptLevel kLevels[] = {OptLevel::Class, OptLevel::Site,
                                OptLevel::SiteCycle, OptLevel::SiteReuse,
                                OptLevel::SiteReuseCycle};
constexpr std::uint64_t kSeeds[] = {1001, 2002};

// Randomized-but-seeded fault plan: lossy links everywhere, plus (for the
// webserver, whose replicas make a death survivable) one crashed machine.
// Machine 0 is never crashed — it anchors the registry and the detector.
net::FaultPlan chaos_plan(std::uint64_t seed, std::size_t machines,
                          bool allow_crash) {
  net::FaultPlan plan;
  plan.seed = seed;
  SplitMix64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  plan.default_link.drop = 0.06 * rng.next_double();
  plan.default_link.duplicate = 0.05 * rng.next_double();
  plan.default_link.reorder = 0.05 * rng.next_double();
  plan.default_link.corrupt = 0.04 * rng.next_double();
  if (allow_crash && machines > 2) {
    const auto victim = static_cast<std::uint16_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(machines) - 1));
    const auto at = static_cast<std::int64_t>(
        200'000 + rng.next_below(2'000'000));
    plan.crash_at(victim, at);
  }
  return plan;
}

net::FailureDetectorConfig chaos_detector() {
  net::FailureDetectorConfig d;
  d.enabled = true;
  return d;
}

// One clean + N seeded runs of one app at one level; asserts the
// invariants per seed.
template <typename Runner>
void soak(const char* app, OptLevel level, std::size_t machines,
          bool allow_crash, const Runner& run) {
  const apps::RunResult clean = run(net::FaultPlan{}, {});
  for (const std::uint64_t seed : kSeeds) {
    const net::FaultPlan plan = chaos_plan(seed, machines, allow_crash);
    const apps::RunResult r = run(plan, chaos_detector());
    const std::string where = std::string("app=") + app +
                              " level=" + std::string(to_string(level)) +
                              " seed=" + std::to_string(seed);
    ASSERT_DOUBLE_EQ(r.check, clean.check)
        << where << ": chaos changed the application result";
    // Generous but finite: a livelock or an unmasked fault storm blows
    // straight past 20x the healthy makespan plus slack.
    ASSERT_LE(r.makespan.as_nanos(),
              20 * clean.makespan.as_nanos() + 100'000'000)
        << where << ": makespan unbounded under chaos (clean="
        << clean.makespan.as_nanos() << " ns)";
  }
}

TEST(ChaosSoak, LinkedList) {
  for (const OptLevel level : kLevels) {
    soak("list", level, 2, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::ListBenchConfig cfg;
           cfg.list_length = 16;
           cfg.iterations = 6;
           cfg.faults = plan;
           cfg.detector = det;
           return run_list_bench(level, cfg);
         });
  }
}

TEST(ChaosSoak, Array2d) {
  for (const OptLevel level : kLevels) {
    soak("array", level, 2, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::ArrayBenchConfig cfg;
           cfg.rows = 8;
           cfg.cols = 8;
           cfg.iterations = 6;
           cfg.faults = plan;
           cfg.detector = det;
           return run_array_bench(level, cfg);
         });
  }
}

TEST(ChaosSoak, Lu) {
  for (const OptLevel level : kLevels) {
    soak("lu", level, 2, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::LuConfig cfg;
           cfg.n = 20;
           cfg.faults = plan;
           cfg.detector = det;
           return run_lu(level, cfg);
         });
  }
}

TEST(ChaosSoak, Superopt) {
  for (const OptLevel level : kLevels) {
    soak("superopt", level, 3, /*allow_crash=*/false,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::SuperoptConfig cfg;
           cfg.max_len = 1;
           cfg.test_vectors = 4;
           cfg.machines = 3;
           cfg.faults = plan;
           cfg.detector = det;
           return run_superopt(level, cfg);
         });
  }
}

TEST(ChaosSoak, Webserver) {
  for (const OptLevel level : kLevels) {
    soak("webserver", level, 4, /*allow_crash=*/true,
         [&](const net::FaultPlan& plan,
             const net::FailureDetectorConfig& det) {
           apps::WebserverConfig cfg;
           cfg.machines = 4;
           cfg.pages = 8;
           cfg.page_size = 128;
           cfg.requests = 30;
           cfg.call_timeout_ms = 5'000;  // real-time backstop, not the path
           cfg.faults = plan;
           cfg.detector = det;
           return run_webserver(level, cfg);
         });
  }
}

// Deadlines, cancellation and admission control under the same seeded
// chaos: a nested-call topology (0 -> 1, which fans out to 2) driven
// with randomized budgets, cancels and call modes over lossy links.
//
// The invariants:
//  * no handler ever starts after its call's deadline has passed — the
//    deadline gates (dispatcher and executor boundary) refuse expired
//    work before the upcall;
//  * at-most-once holds — no (caller, seq) key executes twice, even with
//    duplicating links, cancels racing replies, and reject tombstones;
//  * every failure is typed (RmiTimeout / DeadlineExceeded / Overload /
//    Cancelled / RemoteException) — anything else escapes and fails the
//    test — and the virtual makespan stays bounded.
TEST(ChaosSoak, DeadlinesAndCancelsStayTypedUnderChaos) {
  for (const std::uint64_t seed : kSeeds) {
    const net::FaultPlan plan = chaos_plan(seed, 3, /*allow_crash=*/false);
    om::TypeRegistry types;
    net::Cluster cluster(3, types, serial::CostModel{},
                         net::TransportKind::Sim, wire::SessionConfig{}, plan,
                         chaos_detector());
    rmi::ExecutorConfig exec;
    // A pool, not the paper's inline dispatcher: nested synchronous calls
    // need the dispatcher free to drain the nested reply, and a pool is
    // the only configuration where an in-flight cancel can be honored.
    exec.dispatch_workers = 2;
    exec.call_timeout_ms = 2'000;
    exec.inbox_bound = 8;  // admission control live under chaos too
    rmi::RmiSystem sys(cluster, types, exec);
    const std::string where = "seed=" + std::to_string(seed);

    std::mutex mu;
    std::map<std::uint64_t, int> runs;  // call_key -> handler executions
    std::atomic<int> deadline_violations{0};
    auto record = [&](rmi::CallContext& ctx) {
      const rmi::ReplyToken t = ctx.reply_token();
      const std::uint64_t key =
          (static_cast<std::uint64_t>(t.caller_machine) << 32) | t.seq;
      {
        std::scoped_lock lock(mu);
        ++runs[key];
      }
      // Concurrent workers share one per-machine clock, so another
      // handler may advance it between this call's boundary gate and this
      // read; tolerate that bounded skew (well under 2 ms of modelled
      // work).  A *missing* gate admits arbitrarily stale calls — those
      // still trip this.
      if (ctx.deadline_ns() != 0 &&
          ctx.machine().clock().now().as_nanos() >=
              ctx.deadline_ns() + 2'000'000) {
        ++deadline_violations;
      }
    };

    const auto inner_mid =
        sys.define_method("chaos.inner", [&](rmi::CallContext& ctx,
                                             std::span<const std::int64_t> s,
                                             auto) {
          record(ctx);
          ctx.machine().clock().advance(SimTime::nanos(s[0]));
          return rmi::HandlerResult{};
        });
    rmi::RemoteRef inner_ref;  // exported below
    std::uint32_t inner_cs = 0;

    const auto outer_mid =
        sys.define_method("chaos.outer", [&](rmi::CallContext& ctx,
                                             std::span<const std::int64_t> s,
                                             auto) {
          record(ctx);
          ctx.machine().clock().advance(SimTime::nanos(s[0]));
          if (s[1] != 0) {
            // Nested hop: inherits the remaining budget minus slack; its
            // typed verdict (if any) propagates back as a Reject.
            sys.invoke(1, inner_ref, inner_cs,
                       std::span<const om::ObjRef>{},
                       std::array<std::int64_t, 1>{s[0] / 2});
          }
          return rmi::HandlerResult{};
        });

    auto make_site = [&](std::uint32_t method, const char* name) {
      rmi::CompiledCallSite cs;
      cs.method_id = method;
      cs.plan = std::make_unique<serial::CallSitePlan>();
      cs.plan->name = name;
      return cs;
    };
    const auto outer_cs = sys.add_callsite(make_site(outer_mid, "chaos.outer"));
    inner_cs = sys.add_callsite(make_site(inner_mid, "chaos.inner"));
    const rmi::RemoteRef outer_ref = sys.export_object(1, nullptr);
    inner_ref = sys.export_object(2, nullptr);
    sys.start();

    SplitMix64 rng(seed * 31 + 7);
    int successes = 0;
    int typed_failures = 0;
    for (int i = 0; i < 40; ++i) {
      constexpr std::int64_t kBudgets[] = {0, 200'000, 2'000'000, 20'000'000};
      const rmi::CallOptions opts{.budget_ns = kBudgets[rng.next_below(4)]};
      const std::array<std::int64_t, 2> scalars = {
          static_cast<std::int64_t>(rng.next_below(500'000)),  // handler work
          static_cast<std::int64_t>(rng.next_below(2))};       // nest?
      try {
        switch (rng.next_below(3)) {
          case 0:
            sys.invoke(0, outer_ref, outer_cs, {}, scalars, opts);
            break;
          case 1: {
            rmi::RmiFuture f =
                sys.invoke_async(0, outer_ref, outer_cs, {}, scalars, opts);
            if (rng.next_below(2) == 0) f.cancel();
            f.get();
            break;
          }
          case 2:
            sys.invoke_oneway(0, outer_ref, outer_cs, {}, scalars, opts);
            break;
        }
        ++successes;
      } catch (const rmi::RmiTimeout&) {  // incl. MachineDown, DeadlineExceeded
        ++typed_failures;
      } catch (const rmi::Overload&) {
        ++typed_failures;
      } catch (const rmi::Cancelled&) {
        ++typed_failures;
      } catch (const rmi::RemoteException&) {
        ++typed_failures;
      }
    }
    sys.stop();

    ASSERT_EQ(deadline_violations.load(), 0)
        << where << ": a handler started after its deadline";
    {
      std::scoped_lock lock(mu);
      for (const auto& [key, count] : runs) {
        ASSERT_LE(count, 1) << where << ": call key " << key << " executed "
                            << count << " times (at-most-once violated)";
      }
    }
    ASSERT_GT(successes, 0) << where << ": chaos plan starved every call";
    ASSERT_EQ(successes + typed_failures, 40)
        << where << ": an untyped failure escaped";
    ASSERT_LE(cluster.makespan().as_nanos(), SimTime::seconds(30).as_nanos())
        << where << ": makespan unbounded under deadline/cancel chaos";
  }
}

}  // namespace
}  // namespace rmiopt
