// Unit tests for src/support: byte buffers, hashing, RNG, virtual time,
// table formatting.
#include <gtest/gtest.h>

#include <array>
#include <limits>

#include "support/bytebuffer.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/sim_time.hpp"
#include "support/table.hpp"

namespace rmiopt {
namespace {

TEST(ByteBuffer, RoundTripsPrimitives) {
  ByteBuffer b;
  b.put_u8(0xab);
  b.put_i32(-12345);
  b.put_u32(0xdeadbeef);
  b.put_i64(-1234567890123456789ll);
  b.put_f64(3.14159);

  EXPECT_EQ(b.get_u8(), 0xab);
  EXPECT_EQ(b.get_i32(), -12345);
  EXPECT_EQ(b.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(b.get_i64(), -1234567890123456789ll);
  EXPECT_DOUBLE_EQ(b.get_f64(), 3.14159);
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(ByteBuffer, RoundTripsVarints) {
  ByteBuffer b;
  const std::array<std::uint64_t, 7> values = {
      0, 1, 127, 128, 300, 1ull << 32, std::numeric_limits<std::uint64_t>::max()};
  for (auto v : values) b.put_varint(v);
  for (auto v : values) EXPECT_EQ(b.get_varint(), v);
}

TEST(ByteBuffer, VarintIsCompactForSmallValues) {
  ByteBuffer b;
  b.put_varint(5);
  EXPECT_EQ(b.size(), 1u);  // vs 4 bytes for a fixed i32 class id
}

TEST(ByteBuffer, RoundTripsStrings) {
  ByteBuffer b;
  b.put_string("hello world");
  b.put_string("");
  EXPECT_EQ(b.get_string(), "hello world");
  EXPECT_EQ(b.get_string(), "");
}

TEST(ByteBuffer, RoundTripsDoubleArrays) {
  ByteBuffer b;
  const std::array<double, 4> in = {1.0, 2.5, -3.0, 1e300};
  b.put_array(std::span<const double>(in));
  std::array<double, 4> out{};
  b.get_array(std::span<double>(out));
  EXPECT_EQ(in, out);
}

TEST(ByteBuffer, UnderflowThrows) {
  ByteBuffer b;
  b.put_u8(1);
  b.get_u8();
  EXPECT_THROW(b.get_i32(), Error);
}

TEST(ByteBuffer, RewindRereadsFromStart) {
  ByteBuffer b;
  b.put_i32(42);
  EXPECT_EQ(b.get_i32(), 42);
  b.rewind();
  EXPECT_EQ(b.get_i32(), 42);
}

TEST(Hash, JavaStringHashMatchesReference) {
  // Reference values computed with java.lang.String#hashCode.
  EXPECT_EQ(java_string_hash(""), 0);
  EXPECT_EQ(java_string_hash("a"), 97);
  EXPECT_EQ(java_string_hash("abc"), 96354);
  EXPECT_EQ(java_string_hash("/index.html"), 2144181430);
}

TEST(Hash, Fnv1aIsStable) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
}

TEST(Rng, IsDeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c;
  }
  SplitMix64 d(43);
  EXPECT_NE(SplitMix64(42).next(), d.next());
}

TEST(Rng, NextBelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  SplitMix64 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SimTime, ArithmeticIsExact) {
  const SimTime t = SimTime::micros(40) + SimTime::nanos(100) * 5;
  EXPECT_EQ(t.as_nanos(), 40'500);
  EXPECT_DOUBLE_EQ(t.as_micros(), 40.5);
  EXPECT_LT(SimTime::micros(1), SimTime::millis(1));
  EXPECT_EQ(max(SimTime::seconds(1), SimTime::millis(5)).as_nanos(),
            SimTime::seconds(1).as_nanos());
}

TEST(SimTime, FormatsHumanReadable) {
  EXPECT_EQ(SimTime::micros(40).to_string(), "40.000us");
  EXPECT_EQ(SimTime::millis(3).to_string(), "3.000ms");
  EXPECT_EQ(SimTime::seconds(2).to_string(), "2.000s");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Compiler Optimization", "seconds", "gain over 'class'"});
  t.add_row({"class", "161.5", "0"});
  t.add_row({"site + reuse + cycle", "91.5", "43.3%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Compiler Optimization"), std::string::npos);
  EXPECT_NE(out.find("43.3%"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, GainFormatMatchesPaper) {
  EXPECT_EQ(fmt_gain(161.5, 140.4), "13.1%");
  EXPECT_EQ(fmt_gain(100.0, 100.0), "0.0%");
  EXPECT_EQ(fmt_gain(0.0, 5.0), "n/a");
}

}  // namespace
}  // namespace rmiopt
