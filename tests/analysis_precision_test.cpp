// Precision tests for the analyses: per-call-site specialization (the
// reason the paper generates marshalers per call site rather than per
// callee), interactions of globals/arrays with RMI boundaries, and the
// heap-graph printer.
#include <gtest/gtest.h>

#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"

namespace rmiopt::analysis {
namespace {

using apps::figures::FigureProgram;

TEST(Precision, CalleeParamSetsMergeButCallSitesStayPrecise) {
  // Figure 5: Work.foo is called with Derived1 at site 1 and Derived2 at
  // site 2.  The callee's parameter set is the merge (2 classes), yet the
  // generated plans are exact per site — the central claim of §3.1.
  FigureProgram p = apps::figures::make_figure5();
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();

  const ir::Function& foo = *p.module->find_function("Work.foo");
  EXPECT_EQ(heap.points_to(foo.id, 0).size(), 2u);  // merged at the callee

  const auto site1_args = heap.remote_arg_sets(p.site(p.tag("foo#1")));
  const auto site2_args = heap.remote_arg_sets(p.site(p.tag("foo#2")));
  ASSERT_EQ(site1_args[0].size(), 1u);  // exact at each call site
  ASSERT_EQ(site2_args[0].size(), 1u);
  EXPECT_EQ(heap.node(*site1_args[0].begin()).cls, p.cls("Derived1"));
  EXPECT_EQ(heap.node(*site2_args[0].begin()).cls, p.cls("Derived2"));
}

TEST(Precision, CalleeLevelPlanWouldBePolymorphic) {
  // Control experiment: generating from the callee's merged parameter set
  // (what a per-callee generator would do) yields a dynamic plan, whereas
  // both per-site plans inline — quantifying the per-call-site advantage.
  FigureProgram p = apps::figures::make_figure5();
  driver::CompiledProgram prog =
      driver::compile(*p.module, codegen::OptLevel::Site);
  EXPECT_EQ(prog.site(p.tag("foo#1")).dynamic_nodes, 0u);
  EXPECT_EQ(prog.site(p.tag("foo#2")).dynamic_nodes, 0u);

  // The merged set has two classes — build_node would have to fall back.
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();
  const ir::Function& foo = *p.module->find_function("Work.foo");
  const NodeSet& merged = heap.points_to(foo.id, 0);
  std::set<om::ClassId> classes;
  for (LogicalId id : merged) classes.insert(heap.node(id).cls);
  EXPECT_EQ(classes.size(), 2u);
}

TEST(Precision, ReturnGraphsAreClonedPerCallSite) {
  // Two call sites invoking the same returning method get *separate*
  // clone sets — reuse/cycle decisions cannot leak between sites.
  om::TypeRegistry types;
  const om::ClassId data = types.define_class("Data", {});
  ir::Module m(types);
  ir::Function& get = m.add_function("get", {}, ir::Type::ref(data),
                                     /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(m, get);
    b.ret(b.alloc(data));
  }
  ir::Function& a = m.add_function("a", {}, ir::Type::void_type());
  ir::ValueId ra;
  {
    ir::FunctionBuilder b(m, a);
    ra = b.remote_call(get.id, {}, 1);
    b.move(ra);  // result is used
    b.ret();
  }
  ir::Function& c = m.add_function("c", {}, ir::Type::void_type());
  ir::ValueId rc;
  {
    ir::FunctionBuilder b(m, c);
    rc = b.remote_call(get.id, {}, 2);
    b.move(rc);
    b.ret();
  }
  ir::verify(m);
  HeapAnalysis heap(m);
  heap.run();
  const NodeSet& sa = heap.points_to(a.id, ra);
  const NodeSet& sc = heap.points_to(c.id, rc);
  ASSERT_EQ(sa.size(), 1u);
  ASSERT_EQ(sc.size(), 1u);
  EXPECT_NE(*sa.begin(), *sc.begin());  // distinct clones
  EXPECT_EQ(heap.node(*sa.begin()).physical,
            heap.node(*sc.begin()).physical);  // same origin site
}

TEST(Precision, ArrayElementsFlowThroughRmiClones) {
  // double[][] passed through an RMI: the callee's clone graph must keep
  // the outer->inner element edge.
  FigureProgram p = apps::figures::make_figure12();
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();
  const ir::Function& send = *p.module->find_function("ArrayBench.send");
  const NodeSet& param = heap.points_to(send.id, 0);
  ASSERT_EQ(param.size(), 1u);
  const HeapNode& outer = heap.node(*param.begin());
  EXPECT_TRUE(outer.is_clone);
  ASSERT_EQ(outer.elems.size(), 1u);
  EXPECT_TRUE(heap.node(*outer.elems.begin()).is_clone);
  EXPECT_EQ(heap.node(*outer.elems.begin()).cls, p.cls("[D"));
}

TEST(Precision, GlobalsReachedThroughRmiKeepIdentity) {
  // The webserver's pages live in a static table; the *originals* must
  // not be marked as clones, while the caller's result nodes are clones.
  FigureProgram p = apps::figures::make_webserver_model();
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();
  const ir::Function& get_page = *p.module->find_function("Server.get_page");
  for (LogicalId id : heap.return_set(get_page.id)) {
    EXPECT_FALSE(heap.node(id).is_clone);
  }
  const ir::Module::RemoteCallRef site = p.site(p.tag("get_page"));
  const ir::Function& master = *p.module->find_function("Master.serve");
  const NodeSet& result = heap.points_to(master.id, site.instr->result);
  ASSERT_FALSE(result.empty());
  for (LogicalId id : result) {
    EXPECT_TRUE(heap.node(id).is_clone);
  }
}

TEST(Precision, HeapGraphPrinterShowsFigure2Shape) {
  FigureProgram p = apps::figures::make_figure2();
  ir::verify(*p.module);
  HeapAnalysis heap(*p.module);
  heap.run();
  const std::string dump = to_string(heap);
  EXPECT_NE(dump.find("Foo"), std::string::npos);
  EXPECT_NE(dump.find(".bar"), std::string::npos);
  EXPECT_NE(dump.find(".a"), std::string::npos);
  EXPECT_NE(dump.find("[] ->"), std::string::npos);  // array element edges
  EXPECT_EQ(dump.find("clone"), std::string::npos);  // no RMIs here
}

TEST(Precision, EscapeVerdictsAreLevelIndependentFacts) {
  FigureProgram p = apps::figures::make_webserver_model();
  for (const auto level : codegen::kPaperLevels) {
    driver::CompiledProgram prog = driver::compile(*p.module, level);
    const auto& d = prog.site(p.tag("get_page"));
    EXPECT_TRUE(d.args_reusable) << codegen::to_string(level);
    EXPECT_TRUE(d.ret_reusable) << codegen::to_string(level);
    EXPECT_TRUE(d.proved_acyclic) << codegen::to_string(level);
  }
}

}  // namespace
}  // namespace rmiopt::analysis
