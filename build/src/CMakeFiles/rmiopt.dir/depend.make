# Empty dependencies file for rmiopt.
# This may be replaced when dependencies are built.
