file(REMOVE_RECURSE
  "librmiopt.a"
)
