
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cycle_analysis.cpp" "src/CMakeFiles/rmiopt.dir/analysis/cycle_analysis.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/analysis/cycle_analysis.cpp.o.d"
  "/root/repo/src/analysis/escape_analysis.cpp" "src/CMakeFiles/rmiopt.dir/analysis/escape_analysis.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/analysis/escape_analysis.cpp.o.d"
  "/root/repo/src/analysis/heap_analysis.cpp" "src/CMakeFiles/rmiopt.dir/analysis/heap_analysis.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/analysis/heap_analysis.cpp.o.d"
  "/root/repo/src/apps/lu.cpp" "src/CMakeFiles/rmiopt.dir/apps/lu.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/apps/lu.cpp.o.d"
  "/root/repo/src/apps/microbench.cpp" "src/CMakeFiles/rmiopt.dir/apps/microbench.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/apps/microbench.cpp.o.d"
  "/root/repo/src/apps/paper_figures.cpp" "src/CMakeFiles/rmiopt.dir/apps/paper_figures.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/apps/paper_figures.cpp.o.d"
  "/root/repo/src/apps/superopt.cpp" "src/CMakeFiles/rmiopt.dir/apps/superopt.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/apps/superopt.cpp.o.d"
  "/root/repo/src/apps/webserver.cpp" "src/CMakeFiles/rmiopt.dir/apps/webserver.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/apps/webserver.cpp.o.d"
  "/root/repo/src/codegen/plan_generator.cpp" "src/CMakeFiles/rmiopt.dir/codegen/plan_generator.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/codegen/plan_generator.cpp.o.d"
  "/root/repo/src/driver/compile.cpp" "src/CMakeFiles/rmiopt.dir/driver/compile.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/driver/compile.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/rmiopt.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/lower.cpp" "src/CMakeFiles/rmiopt.dir/frontend/lower.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/frontend/lower.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/rmiopt.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/rmiopt.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/module.cpp" "src/CMakeFiles/rmiopt.dir/ir/module.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/ir/module.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/rmiopt.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/rmiopt.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/ir/verifier.cpp.o.d"
  "/root/repo/src/net/cluster.cpp" "src/CMakeFiles/rmiopt.dir/net/cluster.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/net/cluster.cpp.o.d"
  "/root/repo/src/net/machine.cpp" "src/CMakeFiles/rmiopt.dir/net/machine.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/net/machine.cpp.o.d"
  "/root/repo/src/objmodel/class_desc.cpp" "src/CMakeFiles/rmiopt.dir/objmodel/class_desc.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/objmodel/class_desc.cpp.o.d"
  "/root/repo/src/objmodel/heap.cpp" "src/CMakeFiles/rmiopt.dir/objmodel/heap.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/objmodel/heap.cpp.o.d"
  "/root/repo/src/rmi/name_service.cpp" "src/CMakeFiles/rmiopt.dir/rmi/name_service.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/rmi/name_service.cpp.o.d"
  "/root/repo/src/rmi/runtime.cpp" "src/CMakeFiles/rmiopt.dir/rmi/runtime.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/rmi/runtime.cpp.o.d"
  "/root/repo/src/serial/class_plans.cpp" "src/CMakeFiles/rmiopt.dir/serial/class_plans.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/serial/class_plans.cpp.o.d"
  "/root/repo/src/serial/cycle_table.cpp" "src/CMakeFiles/rmiopt.dir/serial/cycle_table.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/serial/cycle_table.cpp.o.d"
  "/root/repo/src/serial/plan.cpp" "src/CMakeFiles/rmiopt.dir/serial/plan.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/serial/plan.cpp.o.d"
  "/root/repo/src/serial/reader.cpp" "src/CMakeFiles/rmiopt.dir/serial/reader.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/serial/reader.cpp.o.d"
  "/root/repo/src/serial/writer.cpp" "src/CMakeFiles/rmiopt.dir/serial/writer.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/serial/writer.cpp.o.d"
  "/root/repo/src/support/sim_time.cpp" "src/CMakeFiles/rmiopt.dir/support/sim_time.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/support/sim_time.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/rmiopt.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/rmiopt.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
