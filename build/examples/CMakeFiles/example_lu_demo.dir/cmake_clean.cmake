file(REMOVE_RECURSE
  "CMakeFiles/example_lu_demo.dir/lu_demo.cpp.o"
  "CMakeFiles/example_lu_demo.dir/lu_demo.cpp.o.d"
  "example_lu_demo"
  "example_lu_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lu_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
