# Empty compiler generated dependencies file for example_lu_demo.
# This may be replaced when dependencies are built.
