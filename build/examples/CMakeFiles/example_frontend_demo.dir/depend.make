# Empty dependencies file for example_frontend_demo.
# This may be replaced when dependencies are built.
