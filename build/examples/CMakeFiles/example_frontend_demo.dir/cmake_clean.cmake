file(REMOVE_RECURSE
  "CMakeFiles/example_frontend_demo.dir/frontend_demo.cpp.o"
  "CMakeFiles/example_frontend_demo.dir/frontend_demo.cpp.o.d"
  "example_frontend_demo"
  "example_frontend_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_frontend_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
