# Empty compiler generated dependencies file for example_superopt_demo.
# This may be replaced when dependencies are built.
