file(REMOVE_RECURSE
  "CMakeFiles/example_superopt_demo.dir/superopt_demo.cpp.o"
  "CMakeFiles/example_superopt_demo.dir/superopt_demo.cpp.o.d"
  "example_superopt_demo"
  "example_superopt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_superopt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
