# Empty compiler generated dependencies file for example_fault_handling.
# This may be replaced when dependencies are built.
