file(REMOVE_RECURSE
  "CMakeFiles/example_fault_handling.dir/fault_handling.cpp.o"
  "CMakeFiles/example_fault_handling.dir/fault_handling.cpp.o.d"
  "example_fault_handling"
  "example_fault_handling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_handling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
