file(REMOVE_RECURSE
  "CMakeFiles/example_compiler_tour.dir/compiler_tour.cpp.o"
  "CMakeFiles/example_compiler_tour.dir/compiler_tour.cpp.o.d"
  "example_compiler_tour"
  "example_compiler_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_compiler_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
