# Empty dependencies file for example_compiler_tour.
# This may be replaced when dependencies are built.
