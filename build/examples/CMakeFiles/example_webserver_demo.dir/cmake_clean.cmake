file(REMOVE_RECURSE
  "CMakeFiles/example_webserver_demo.dir/webserver_demo.cpp.o"
  "CMakeFiles/example_webserver_demo.dir/webserver_demo.cpp.o.d"
  "example_webserver_demo"
  "example_webserver_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_webserver_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
