# Empty dependencies file for example_webserver_demo.
# This may be replaced when dependencies are built.
