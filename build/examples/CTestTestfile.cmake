# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_compiler_tour "/root/repo/build/examples/example_compiler_tour")
set_tests_properties(example_compiler_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_handling "/root/repo/build/examples/example_fault_handling")
set_tests_properties(example_fault_handling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_frontend_demo "/root/repo/build/examples/example_frontend_demo")
set_tests_properties(example_frontend_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lu_demo "/root/repo/build/examples/example_lu_demo")
set_tests_properties(example_lu_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_superopt_demo "/root/repo/build/examples/example_superopt_demo")
set_tests_properties(example_superopt_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_webserver_demo "/root/repo/build/examples/example_webserver_demo")
set_tests_properties(example_webserver_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
