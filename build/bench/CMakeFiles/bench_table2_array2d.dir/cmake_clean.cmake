file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_array2d.dir/bench_table2_array2d.cpp.o"
  "CMakeFiles/bench_table2_array2d.dir/bench_table2_array2d.cpp.o.d"
  "bench_table2_array2d"
  "bench_table2_array2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_array2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
