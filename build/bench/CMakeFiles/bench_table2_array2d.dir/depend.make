# Empty dependencies file for bench_table2_array2d.
# This may be replaced when dependencies are built.
