# Empty dependencies file for bench_table8_webserver_stats.
# This may be replaced when dependencies are built.
