# Empty dependencies file for ablation_wire_typeinfo.
# This may be replaced when dependencies are built.
