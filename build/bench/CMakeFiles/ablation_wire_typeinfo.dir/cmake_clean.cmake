file(REMOVE_RECURSE
  "CMakeFiles/ablation_wire_typeinfo.dir/ablation_wire_typeinfo.cpp.o"
  "CMakeFiles/ablation_wire_typeinfo.dir/ablation_wire_typeinfo.cpp.o.d"
  "ablation_wire_typeinfo"
  "ablation_wire_typeinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wire_typeinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
