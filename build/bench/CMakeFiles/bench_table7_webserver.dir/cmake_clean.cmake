file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_webserver.dir/bench_table7_webserver.cpp.o"
  "CMakeFiles/bench_table7_webserver.dir/bench_table7_webserver.cpp.o.d"
  "bench_table7_webserver"
  "bench_table7_webserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_webserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
