# Empty compiler generated dependencies file for bench_table7_webserver.
# This may be replaced when dependencies are built.
