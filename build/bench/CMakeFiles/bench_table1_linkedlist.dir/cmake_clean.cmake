file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_linkedlist.dir/bench_table1_linkedlist.cpp.o"
  "CMakeFiles/bench_table1_linkedlist.dir/bench_table1_linkedlist.cpp.o.d"
  "bench_table1_linkedlist"
  "bench_table1_linkedlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_linkedlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
