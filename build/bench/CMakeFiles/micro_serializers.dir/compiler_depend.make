# Empty compiler generated dependencies file for micro_serializers.
# This may be replaced when dependencies are built.
