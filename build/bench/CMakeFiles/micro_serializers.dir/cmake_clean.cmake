file(REMOVE_RECURSE
  "CMakeFiles/micro_serializers.dir/micro_serializers.cpp.o"
  "CMakeFiles/micro_serializers.dir/micro_serializers.cpp.o.d"
  "micro_serializers"
  "micro_serializers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_serializers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
