# Empty compiler generated dependencies file for ablation_zero_copy.
# This may be replaced when dependencies are built.
