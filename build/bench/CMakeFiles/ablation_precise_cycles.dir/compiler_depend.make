# Empty compiler generated dependencies file for ablation_precise_cycles.
# This may be replaced when dependencies are built.
