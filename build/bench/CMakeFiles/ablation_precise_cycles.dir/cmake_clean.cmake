file(REMOVE_RECURSE
  "CMakeFiles/ablation_precise_cycles.dir/ablation_precise_cycles.cpp.o"
  "CMakeFiles/ablation_precise_cycles.dir/ablation_precise_cycles.cpp.o.d"
  "ablation_precise_cycles"
  "ablation_precise_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precise_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
