file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lu.dir/bench_table3_lu.cpp.o"
  "CMakeFiles/bench_table3_lu.dir/bench_table3_lu.cpp.o.d"
  "bench_table3_lu"
  "bench_table3_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
