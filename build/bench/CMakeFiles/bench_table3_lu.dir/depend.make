# Empty dependencies file for bench_table3_lu.
# This may be replaced when dependencies are built.
