file(REMOVE_RECURSE
  "CMakeFiles/ablation_cycle_table.dir/ablation_cycle_table.cpp.o"
  "CMakeFiles/ablation_cycle_table.dir/ablation_cycle_table.cpp.o.d"
  "ablation_cycle_table"
  "ablation_cycle_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cycle_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
