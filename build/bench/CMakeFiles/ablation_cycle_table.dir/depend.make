# Empty dependencies file for ablation_cycle_table.
# This may be replaced when dependencies are built.
