file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_superopt.dir/bench_table5_superopt.cpp.o"
  "CMakeFiles/bench_table5_superopt.dir/bench_table5_superopt.cpp.o.d"
  "bench_table5_superopt"
  "bench_table5_superopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_superopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
