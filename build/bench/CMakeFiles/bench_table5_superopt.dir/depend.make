# Empty dependencies file for bench_table5_superopt.
# This may be replaced when dependencies are built.
