file(REMOVE_RECURSE
  "CMakeFiles/ablation_reuse_shapecheck.dir/ablation_reuse_shapecheck.cpp.o"
  "CMakeFiles/ablation_reuse_shapecheck.dir/ablation_reuse_shapecheck.cpp.o.d"
  "ablation_reuse_shapecheck"
  "ablation_reuse_shapecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reuse_shapecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
