# Empty dependencies file for ablation_reuse_shapecheck.
# This may be replaced when dependencies are built.
