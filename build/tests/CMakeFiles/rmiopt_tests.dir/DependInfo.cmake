
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_precision_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/analysis_precision_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/analysis_precision_test.cpp.o.d"
  "/root/repo/tests/api_contract_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/api_contract_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/api_contract_test.cpp.o.d"
  "/root/repo/tests/apps_config_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/apps_config_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/apps_config_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/codegen_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/codegen_test.cpp.o.d"
  "/root/repo/tests/cycle_escape_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/cycle_escape_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/cycle_escape_test.cpp.o.d"
  "/root/repo/tests/frontend_fuzz_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/frontend_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/frontend_fuzz_test.cpp.o.d"
  "/root/repo/tests/frontend_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/frontend_test.cpp.o.d"
  "/root/repo/tests/heap_analysis_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/heap_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/heap_analysis_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/microbench_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/microbench_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/microbench_test.cpp.o.d"
  "/root/repo/tests/net_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/net_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/net_test.cpp.o.d"
  "/root/repo/tests/objmodel_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/objmodel_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/objmodel_test.cpp.o.d"
  "/root/repo/tests/plan_fuzz_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/plan_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/plan_fuzz_test.cpp.o.d"
  "/root/repo/tests/precise_cycles_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/precise_cycles_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/precise_cycles_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/pseudocode_golden_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/pseudocode_golden_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/pseudocode_golden_test.cpp.o.d"
  "/root/repo/tests/rmi_runtime_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/rmi_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/rmi_runtime_test.cpp.o.d"
  "/root/repo/tests/rmi_services_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/rmi_services_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/rmi_services_test.cpp.o.d"
  "/root/repo/tests/serial_edge_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/serial_edge_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/serial_edge_test.cpp.o.d"
  "/root/repo/tests/serial_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/serial_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/serial_test.cpp.o.d"
  "/root/repo/tests/source_to_wire_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/source_to_wire_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/source_to_wire_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/rmiopt_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/rmiopt_tests.dir/support_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rmiopt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
