# Empty dependencies file for rmiopt_tests.
# This may be replaced when dependencies are built.
