// Compiler tour: reruns the paper's own examples through the analysis
// pipeline and prints what the compiler sees and generates —
//
//   * Figure 2's heap graph,
//   * Figure 3/4's tuple-bounded data-flow across an RMI in a loop,
//   * Figures 5-7: call-site-specific vs class-specific generated code,
//   * Figures 8-9: when cycle detection must stay,
//   * Figures 10-11: when argument reuse is safe,
//   * Figures 12-13: the generated 2-D array (un)marshaler.
//
// Run: ./build/examples/example_compiler_tour
#include <cstdio>

#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"

using namespace rmiopt;
using apps::figures::FigureProgram;

namespace {

void banner(const char* title) {
  std::printf("\n===== %s =====\n", title);
}

void show_plans(const FigureProgram& p, std::uint32_t tag) {
  const driver::CompiledProgram site =
      driver::compile(*p.module, codegen::OptLevel::SiteReuseCycle);
  const driver::CompiledProgram klass =
      driver::compile(*p.module, codegen::OptLevel::Class);
  std::printf("--- class-specific (baseline, Figure 7 style):\n%s",
              serial::to_pseudocode(*klass.site(tag).plan, *p.types).c_str());
  std::printf("--- call-site-specific (Figure 6 style):\n%s",
              serial::to_pseudocode(*site.site(tag).plan, *p.types).c_str());
  const auto& d = site.site(tag);
  std::printf(
      "verdicts: acyclic=%s, args_reusable=%s, ret_reusable=%s, "
      "return_elided=%s, inline=%zu dynamic=%zu recursive=%zu\n",
      d.proved_acyclic ? "yes" : "no", d.args_reusable ? "yes" : "no",
      d.ret_reusable ? "yes" : "no", d.return_elided ? "yes" : "no",
      d.inline_nodes, d.dynamic_nodes, d.recursive_nodes);
}

}  // namespace

int main() {
  {
    banner("Figure 2: heap analysis of Foo { Bar bar; double[][][] a; }");
    FigureProgram p = apps::figures::make_figure2();
    std::printf("%s", ir::to_string(*p.module).c_str());
    analysis::HeapAnalysis heap(*p.module);
    heap.run();
    std::printf("heap graph (one node per allocation site, not per runtime "
                "object):\n%s",
                analysis::to_string(heap).c_str());
  }
  {
    banner("Figures 3/4: RMI in a loop — (logical, physical) tuples bound "
           "the data-flow");
    FigureProgram p = apps::figures::make_figure3();
    std::printf("%s", ir::to_string(*p.module).c_str());
    analysis::HeapAnalysis heap(*p.module);
    heap.run();
    std::printf("fixpoint after %zu iterations, %zu nodes "
                "(original + parameter clone + return clone)\n",
                heap.iterations(), heap.node_count());
  }
  {
    banner("Figures 5-7: per-call-site specialization (Derived1 / Derived2)");
    FigureProgram p = apps::figures::make_figure5();
    std::printf("call site 1 (argument is a Derived1):\n");
    show_plans(p, p.tag("foo#1"));
    std::printf("\ncall site 2 (argument is a Derived2 holding a Derived1):\n");
    show_plans(p, p.tag("foo#2"));
  }
  {
    banner("Figure 8: the same object passed twice -> cycle table stays");
    FigureProgram p = apps::figures::make_figure8();
    show_plans(p, p.tag("bar"));
  }
  {
    banner("Figure 9: self-referencing argument -> cycle table stays");
    FigureProgram p = apps::figures::make_figure9();
    show_plans(p, p.tag("bar"));
  }
  {
    banner("Figure 10: argument never escapes -> reusable");
    FigureProgram p = apps::figures::make_figure10();
    show_plans(p, p.tag("foo"));
  }
  {
    banner("Figure 11: argument's referent stored to a static -> escapes");
    FigureProgram p = apps::figures::make_figure11();
    show_plans(p, p.tag("foo"));
  }
  {
    banner("Figures 12/13: the generated double[][] (un)marshaler");
    FigureProgram p = apps::figures::make_figure12();
    show_plans(p, p.tag("send"));
  }
  {
    banner("Figure 14: linked list — misclassified as cyclic (paper §7), "
           "but monomorphic recursion is inlined and reuse applies");
    FigureProgram p = apps::figures::make_figure14();
    show_plans(p, p.tag("send"));
  }
  return 0;
}
