// Web-server demo (paper §5.4): serves pages from two slaves and prints
// per-level timing and allocation behaviour — a compact version of
// Tables 7/8 with a 3-machine cluster.
//
// Run: ./build/examples/example_webserver_demo
#include <cstdio>

#include "apps/webserver.hpp"
#include "support/error.hpp"
#include "support/table.hpp"

using namespace rmiopt;

int main() {
  apps::WebserverConfig cfg;
  cfg.machines = 3;  // master + 2 slaves
  cfg.pages = 32;
  cfg.page_size = 1024;
  cfg.requests = 400;

  std::printf(
      "master on machine 0, %zu slaves, %zu pages x %zu bytes, %zu "
      "requests routed by url.hashCode()\n\n",
      cfg.machines - 1, cfg.pages, cfg.page_size, cfg.requests);

  TextTable t({"level", "us/page", "objects allocated", "objects reused"});
  for (const auto level : codegen::kPaperLevels) {
    const apps::RunResult r = apps::run_webserver(level, cfg);
    RMIOPT_CHECK(r.check ==
                     static_cast<double>(cfg.requests * cfg.page_size),
                 "page bytes lost");
    t.add_row({std::string(codegen::to_string(level)),
               fmt_fixed(r.makespan.as_micros() /
                             static_cast<double>(cfg.requests),
                         2),
               std::to_string(r.total.serial.objects_allocated),
               std::to_string(r.total.serial.objects_reused)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nWith reuse the slaves rewrite the cached URL string and the master "
      "rewrites the cached page in place: steady-state allocation is zero "
      "(paper Table 8).\n");
  return 0;
}
