// rmioptc — the frontend as a command-line compiler.
//
//   ./build/examples/example_frontend_demo [file.mp] [--level=<level>]
//
// Compiles MiniParty source (default: the paper's Figure 5 program), runs
// the heap/cycle/escape analyses, and prints the lowered IR, the heap
// graph, and the generated marshaler for every remote call site at the
// chosen optimization level (default: site + reuse + cycle).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "driver/compile.hpp"
#include "frontend/compile.hpp"
#include "frontend/figures_source.hpp"

using namespace rmiopt;

int main(int argc, char** argv) {
  std::string source = frontend::sources::kFigure5;
  codegen::OptLevel level = codegen::OptLevel::SiteReuseCycle;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--level=", 8) == 0) {
      const std::string name = argv[i] + 8;
      bool found = false;
      for (const auto l :
           {codegen::OptLevel::Heavy, codegen::OptLevel::Class,
            codegen::OptLevel::Site, codegen::OptLevel::SiteCycle,
            codegen::OptLevel::SiteReuse, codegen::OptLevel::SiteReuseCycle}) {
        if (name == codegen::to_string(l)) {
          level = l;
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr, "unknown level '%s'\n", name.c_str());
        return 1;
      }
    } else {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      source = buf.str();
    }
  }

  try {
    frontend::Unit unit = frontend::compile_source(source);
    std::printf("===== lowered IR =====\n%s\n",
                ir::to_string(*unit.module).c_str());

    analysis::HeapAnalysis heap(*unit.module);
    heap.run();
    std::printf("===== heap graph (%zu nodes, %zu fixpoint iterations) "
                "=====\n%s\n",
                heap.node_count(), heap.iterations(),
                analysis::to_string(heap).c_str());

    const driver::CompiledProgram prog = driver::compile(*unit.module, level);
    std::printf("===== generated marshalers at '%s' =====\n",
                std::string(codegen::to_string(level)).c_str());
    for (const auto& [tag, name] : unit.callsites) {
      const auto& d = prog.site(tag);
      std::printf("--- call site %u: %s\n", tag, name.c_str());
      std::printf("%s", serial::to_pseudocode(*d.plan, *unit.types).c_str());
      std::printf(
          "    [acyclic=%s args_reusable=%s ret_reusable=%s "
          "return_elided=%s inline=%zu dynamic=%zu recursive=%zu]\n\n",
          d.proved_acyclic ? "yes" : "no", d.args_reusable ? "yes" : "no",
          d.ret_reusable ? "yes" : "no", d.return_elided ? "yes" : "no",
          d.inline_nodes, d.dynamic_nodes, d.recursive_nodes);
    }
  } catch (const frontend::ParseError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
