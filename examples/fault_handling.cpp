// Fault handling and service discovery: the parts of an RMI runtime the
// paper takes for granted.
//
//   * objects are published and resolved through the name service (the
//     JavaParty runtime's bootstrap — note its RMIs use generic class-mode
//     stubs, which is where the residual cycle lookups in the paper's
//     Tables 4/6/8 come from);
//   * remote failures marshal back as exceptions and re-throw at the
//     caller as rmi::RemoteException;
//   * a deferred call can also complete exceptionally.
//
// Run: ./build/examples/example_fault_handling
#include <cstdio>

#include "rmi/name_service.hpp"
#include "rmi/runtime.hpp"

using namespace rmiopt;

int main() {
  om::TypeRegistry types;
  const om::ClassId account =
      types.define_class("Account", {{"balance", om::TypeKind::Long}});

  net::Cluster cluster(2, types);
  rmi::RmiSystem sys(cluster, types);
  rmi::NameService names(sys, types);

  // remote void withdraw(long amount) — throws on insufficient funds.
  const auto withdraw = sys.define_method(
      "Account.withdraw",
      [&](rmi::CallContext& ctx, std::span<const std::int64_t> scalars,
          auto) -> rmi::HandlerResult {
        const om::ClassDescriptor& c = types.get(account);
        om::ObjRef self = ctx.self();
        const std::int64_t balance = self->get<std::int64_t>(c.fields[0]);
        const std::int64_t amount = scalars[0];
        if (amount > balance) {
          return rmi::HandlerResult::exception(
              "insufficient funds: balance " + std::to_string(balance) +
              ", requested " + std::to_string(amount));
        }
        self->set<std::int64_t>(c.fields[0], balance - amount);
        return rmi::HandlerResult{};
      });
  rmi::CompiledCallSite site;
  site.method_id = withdraw;
  site.plan = std::make_unique<serial::CallSitePlan>();
  site.plan->name = "Bank.withdraw#0";
  const auto withdraw_site = sys.add_callsite(std::move(site));

  // The account lives on machine 1 and is published by name.
  om::ObjRef acct = cluster.machine(1).heap().alloc(account);
  acct->set<std::int64_t>(types.get(account).fields[0], 100);
  const rmi::RemoteRef ref = sys.export_object(1, acct);
  sys.start();
  names.bind(1, "bank/account-42", ref);

  // The client (machine 0) discovers the account through the registry.
  const rmi::RemoteRef found = names.lookup(0, "bank/account-42");
  std::printf("resolved 'bank/account-42' -> machine %u, export %u\n",
              found.machine, found.export_id);

  sys.invoke(0, found, withdraw_site, {}, std::array<std::int64_t, 1>{60});
  std::printf("withdraw(60): ok\n");
  try {
    sys.invoke(0, found, withdraw_site, {}, std::array<std::int64_t, 1>{60});
  } catch (const rmi::RemoteException& e) {
    std::printf("withdraw(60): RemoteException: %s\n", e.what());
  }
  sys.invoke(0, found, withdraw_site, {}, std::array<std::int64_t, 1>{40});
  std::printf("withdraw(40): ok — balance drained, dispatcher survived "
              "the failure in between\n");

  try {
    names.lookup(0, "bank/no-such-account");
  } catch (const rmi::RemoteException& e) {
    std::printf("lookup miss: RemoteException: %s\n", e.what());
  }
  sys.stop();
  return 0;
}
