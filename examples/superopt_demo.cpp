// Superoptimizer demo (paper §5.3): searches for equivalents of
// "r0 = (r0 XOR r1) and r1 = (r0 XOR r1) chains" — actually of the classic
// doubling r0 = r0 + r0 — over all 1- and 2-instruction sequences, and
// prints the equivalents it finds together with the RMI statistics.
//
// Run: ./build/examples/example_superopt_demo
#include <cstdio>

#include "apps/superopt.hpp"

using namespace rmiopt;

int main() {
  apps::SuperoptConfig cfg;
  cfg.max_len = 2;
  cfg.machines = 3;  // one producer, two testers

  std::printf(
      "searching all sequences of length <= %d over %d ops, %d regs, "
      "%d immediates (%llu + %llu^2 candidates)\n",
      cfg.max_len, apps::kSopOps, apps::kSopRegs, apps::kSopImms,
      static_cast<unsigned long long>(apps::sop_candidates_per_length()),
      static_cast<unsigned long long>(apps::sop_candidates_per_length()));

  const apps::RunResult r =
      apps::run_superopt(codegen::OptLevel::SiteReuseCycle, cfg);
  std::printf("target: r0 = r0 + r0\n");
  std::printf("equivalent sequences found: %.0f (e.g. ADD r0,r0,r0 and "
              "SHL r0,r0,#1)\n",
              r.check);
  std::printf("candidates shipped over RMI: %llu, wire bytes: %llu\n",
              static_cast<unsigned long long>(r.total.remote_rpcs),
              static_cast<unsigned long long>(r.bytes));
  std::printf("cycle lookups (elided by the compiler): %llu\n",
              static_cast<unsigned long long>(r.total.serial.cycle_lookups));
  std::printf("virtual search time: %s\n", r.makespan.to_string().c_str());
  return 0;
}
