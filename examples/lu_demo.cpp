// LU demo (paper §5.2): factors a matrix over a 4-machine cluster with
// pivot-row broadcast + barrier per step, verifies L*U = A, and prints the
// communication statistics.
//
// Run: ./build/examples/example_lu_demo
#include <cstdio>

#include "apps/lu.hpp"

using namespace rmiopt;

int main() {
  apps::LuConfig cfg;
  cfg.n = 96;
  cfg.machines = 4;

  std::printf("LU factorization, %zux%zu matrix, %zu machines, rows "
              "distributed cyclically\n",
              cfg.n, cfg.n, cfg.machines);
  for (const auto level :
       {codegen::OptLevel::Class, codegen::OptLevel::SiteReuseCycle}) {
    const apps::RunResult r = apps::run_lu(level, cfg);
    std::printf(
        "%-22s time=%-10s residual=%.2e remote_rpcs=%llu "
        "bytes=%llu reused=%llu\n",
        std::string(codegen::to_string(level)).c_str(),
        r.makespan.to_string().c_str(), r.check,
        static_cast<unsigned long long>(r.total.remote_rpcs),
        static_cast<unsigned long long>(r.bytes),
        static_cast<unsigned long long>(r.total.serial.objects_reused));
  }
  std::printf("\nThe residual confirms the distributed factorization is "
              "numerically correct at every optimization level.\n");
  std::printf("\n(Per-call-site statistics come from the instrumented "
              "runtime, as in the paper's Tables 4/6/8 — see "
              "rmi::RmiSystem::report().)\n");
  return 0;
}
