// Quickstart: define a remote method, let the compiler generate a
// call-site-specific marshaler for it, and invoke it across the simulated
// cluster.
//
// The flow mirrors how the paper's system is used:
//   1. describe the classes (shared by compiler and runtime),
//   2. build the IR of the program around the RMI call site,
//   3. compile at an optimization level -> marshal plans,
//   4. bind runtime handlers and run.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart
#include <cstdio>

#include "driver/compile.hpp"
#include "ir/builder.hpp"
#include "net/cluster.hpp"
#include "rmi/runtime.hpp"

using namespace rmiopt;

int main() {
  // 1. Classes.  `Point { double x, y; }` is the RMI argument.
  om::TypeRegistry types;
  const om::ClassId point = types.define_class(
      "Point", {{"x", om::TypeKind::Double}, {"y", om::TypeKind::Double}});

  // 2. The program: `remote double norm2(Point p)` called from main().
  //    (Scalar returns travel as part of the ACK-free reply; here we use a
  //    Point -> Point method to show object flow both ways.)
  ir::Module module(types);
  ir::Function& mirror = module.add_function(
      "Geo.mirror", {ir::Type::ref(point)}, ir::Type::ref(point),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(module, mirror);
    const auto result = b.alloc(point);  // the callee allocates the reply
    b.ret(result);
  }
  ir::Function& main_fn =
      module.add_function("main", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(module, main_fn);
    const auto arg = b.alloc(point);
    const auto res = b.remote_call(mirror.id, {arg}, /*tag=*/1);
    b.load_field(res, "x");  // the result is used -> the reply is shipped
    b.ret();
  }

  // 3. Compile.  The analyses prove: argument and return graphs are
  //    acyclic (no cycle table), both are reusable (caches installed).
  const driver::CompiledProgram prog =
      driver::compile(module, codegen::OptLevel::SiteReuseCycle);
  const auto& decision = prog.site(1);
  std::printf("generated marshaler for the call site:\n%s\n",
              serial::to_pseudocode(*decision.plan, types).c_str());

  // 4. Runtime: 2 machines, the handler mirrors the point.
  net::Cluster cluster(2, types);
  rmi::RmiSystem sys(cluster, types);
  const auto method = sys.define_method(
      "Geo.mirror",
      [&](rmi::CallContext& ctx, auto, std::span<const om::ObjRef> args) {
        const om::ClassDescriptor& c = types.get(point);
        om::ObjRef out = ctx.heap().alloc(c);
        out->set<double>(c.fields[0], -args[0]->get<double>(c.fields[0]));
        out->set<double>(c.fields[1], -args[0]->get<double>(c.fields[1]));
        return rmi::HandlerResult{.value = out, .give_ownership = true};
      });
  const auto site = sys.add_callsite(driver::to_runtime_site(prog, 1, method));
  const rmi::RemoteRef geo =
      sys.export_object(1, cluster.machine(1).heap().alloc(point));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  const om::ClassDescriptor& c = types.get(point);
  om::ObjRef p = h0.alloc(c);
  p->set<double>(c.fields[0], 3.0);
  p->set<double>(c.fields[1], -4.0);

  om::ObjRef q = sys.invoke(0, geo, site, std::array{p});
  std::printf("mirror(3, -4) = (%g, %g)\n", q->get<double>(c.fields[0]),
              q->get<double>(c.fields[1]));

  sys.stop();
  const auto stats = sys.total_stats();
  std::printf(
      "remote rpcs: %llu, wire bytes: %llu, type-info bytes: %llu, "
      "cycle lookups: %llu\n",
      static_cast<unsigned long long>(stats.remote_rpcs),
      static_cast<unsigned long long>(cluster.stats().bytes),
      static_cast<unsigned long long>(stats.serial.type_info_bytes),
      static_cast<unsigned long long>(stats.serial.cycle_lookups));
  std::printf("virtual round-trip time: %s\n",
              cluster.makespan().to_string().c_str());
  return 0;
}
