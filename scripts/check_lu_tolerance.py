#!/usr/bin/env python3
"""Run-to-run tolerance gate for bench_table3_lu.

Unlike the other table binaries, the LU bench is NOT byte-identical from
run to run.  Its two workers issue RMIs concurrently, and a machine's
virtual clock composes *max*-merges (frame arrival stamps) with
*sum*-advances (per-call dispatch cost) in whatever real-time order the
dispatcher drained its inbox.  max and + do not commute, so the virtual
makespan legitimately varies by a small amount with thread scheduling —
under 1% on the optimized levels, up to ~10% on the chattier 'class'
level under machine load.  Every decision that feeds the other seven
tables is single-stream and stays byte-identical; LU is the one paper
benchmark whose parallelism exposes this.

This gate replaces byte-comparison for LU: it runs the binary twice and
asserts that, per optimization level,

  * the measured virtual seconds agree within --tolerance (default 15%,
    above the worst observed jitter, so the gate flags structural
    regressions, not scheduler noise), and
  * both runs order the levels the same relative to 'class' (the paper's
    qualitative claim: every optimization level is at least as fast),
    with a small epsilon so two jittering samples near parity cannot
    flake the qualitative check.

Usage: check_lu_tolerance.py <path-to-bench_table3_lu> [--tolerance 0.10]
Exits nonzero with a per-level report on violation.
"""

import argparse
import re
import subprocess
import sys

LEVELS = [
    "class",
    "site",
    "site + cycle",
    "site + reuse",
    "site + reuse + cycle",
]

# A reproduction row: level name, seconds, gain column.
ROW_RE = re.compile(
    r"^(class|site(?: \+ \w+)*)\s+(\d+\.\d+)\s+\S+%\s*$", re.MULTILINE
)


def measured_seconds(output: str) -> dict[str, float]:
    # Only the reproduction table (after the paper-reference block) has
    # this row shape; the reference block's lines carry the 2003 numbers
    # but a different significant-digit format is not guaranteed, so cut
    # at the reproduction header to be safe.
    repro = output[output.find("Reproduction:"):]
    rows = {m.group(1): float(m.group(2)) for m in ROW_RE.finditer(repro)}
    missing = [l for l in LEVELS if l not in rows]
    if missing:
        sys.exit(f"check_lu_tolerance: missing level rows {missing} in:\n{repro}")
    return rows


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("binary", help="path to bench_table3_lu")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max relative run-to-run deviation per level")
    args = ap.parse_args()

    runs = []
    for i in range(2):
        proc = subprocess.run([args.binary], capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"check_lu_tolerance: run {i + 1} exited "
                     f"{proc.returncode}:\n{proc.stderr}")
        runs.append(measured_seconds(proc.stdout))

    failures = []
    for level in LEVELS:
        a, b = runs[0][level], runs[1][level]
        rel = abs(a - b) / max(a, b)
        status = "ok" if rel <= args.tolerance else "FAIL"
        print(f"  {level:<22} {a:.4f}s vs {b:.4f}s  "
              f"rel-dev {rel * 100:.2f}%  {status}")
        if rel > args.tolerance:
            failures.append(level)

    for rows in runs:
        base = rows["class"]
        slower = [l for l in LEVELS[1:] if rows[l] > base * 1.05]
        if slower:
            failures.append(f"levels slower than 'class': {slower}")

    if failures:
        sys.exit(f"check_lu_tolerance: FAILED {failures} "
                 f"(tolerance {args.tolerance * 100:.0f}%)")
    print(f"check_lu_tolerance: both runs agree within "
          f"{args.tolerance * 100:.0f}% and keep the paper's ordering")


if __name__ == "__main__":
    main()
