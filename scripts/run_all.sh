#!/usr/bin/env bash
# Builds everything, runs the full test suite, regenerates every paper
# table and ablation, and runs the examples — the complete reproduction in
# one command.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

echo "=== tests ==="
ctest --test-dir build --output-on-failure

echo "=== paper tables + ablations + microbenchmarks ==="
for b in build/bench/*; do
  echo "----- $b"
  "$b"
done

echo "=== examples ==="
for e in build/examples/example_*; do
  echo "----- $e"
  "$e"
done
