#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by trace::chrome_trace_json.

Checks, in order:
  1. the file is valid JSON with a non-empty ``traceEvents`` array;
  2. every event carries the required trace_event fields for its phase
     (``M`` metadata, ``X`` complete spans, ``i`` instants);
  3. every track (pid, tid) has a ``thread_name`` metadata record;
  4. timestamps and durations are non-negative, and within each track the
     ``ts`` of timed events is monotonically non-decreasing — virtual
     time never runs backwards on a machine or link track.

Usage: validate_trace.py TRACE.json
"""

import json
import sys
from collections import defaultdict


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_trace.py TRACE.json")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    named_tracks = set()
    last_ts = defaultdict(lambda: None)
    counts = defaultdict(int)

    for i, e in enumerate(events):
        ph = e.get("ph")
        counts[ph] += 1
        if ph not in ("M", "X", "i"):
            fail(f"event {i}: unexpected phase {ph!r}")
        if "pid" not in e or "tid" not in e:
            fail(f"event {i}: missing pid/tid")
        track = (e["pid"], e["tid"])
        if ph == "M":
            if e.get("name") != "thread_name" or "name" not in e.get("args", {}):
                fail(f"event {i}: malformed metadata record")
            named_tracks.add(track)
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i}: bad dur {dur!r}")
        if track not in named_tracks:
            fail(f"event {i}: track {track} has no thread_name metadata")
        prev = last_ts[track]
        if prev is not None and ts < prev:
            fail(f"event {i}: ts {ts} < {prev} on track {track} "
                 "(virtual time ran backwards)")
        last_ts[track] = ts

    if counts["X"] == 0:
        fail("no complete ('X') spans recorded")
    print(f"validate_trace: OK: {len(events)} events "
          f"({counts['M']} tracks, {counts['X']} spans, {counts['i']} instants) "
          f"across {len(named_tracks)} named tracks")


if __name__ == "__main__":
    main()
