// Ablation: where do compile-time RMI optimizations matter?
//
// The paper's gains were measured on Myrinet (~15 us one-way).  Sweeping
// the modelled network latency shows the crossover: on a slower (WAN-ish)
// network the wire dominates and CPU-side optimizations shrink; on a
// faster (shared-memory-ish) interconnect they grow.
#include <cstdio>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;

int main() {
  TextTable t({"one-way latency", "class (s)", "all opts (s)", "total gain"});
  for (const std::int64_t latency_us : {1, 5, 15, 50, 200, 1000}) {
    apps::ArrayBenchConfig cfg;
    cfg.iterations = 300;
    cfg.cost.msg_latency_ns = latency_us * 1000;
    const double t_class =
        apps::run_array_bench(codegen::OptLevel::Class, cfg).makespan
            .as_seconds();
    const double t_all =
        apps::run_array_bench(codegen::OptLevel::SiteReuseCycle, cfg)
            .makespan.as_seconds();
    t.add_row({std::to_string(latency_us) + " us", fmt_fixed(t_class, 4),
               fmt_fixed(t_all, 4), fmt_gain(t_class, t_all)});
  }
  std::printf("Ablation: optimization gain vs network latency "
              "(double[16][16], 300 RMIs)\n%s",
              t.render().c_str());
  std::printf("\nThe paper's ~30%% array-benchmark gain presumes a "
              "Myrinet-class network; at WAN latencies serialization CPU "
              "is hidden behind the wire.\n");
  return 0;
}
