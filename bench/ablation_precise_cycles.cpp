// Ablation: the §7 future-work fix.
//
// "Currently linked lists (containing no dynamic cycles) are mistakenly
// identified as having cycles" — so Table 1's site+cycle row equals its
// site row.  With the construction-order refinement (see
// analysis/cycle_analysis.hpp) the compiler proves the list acyclic and
// cycle elision finally pays off on the linked-list benchmark.
#include <cstdio>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;

int main() {
  TextTable t({"analysis", "level", "seconds", "cycle lookups"});
  for (const bool precise : {false, true}) {
    apps::ListBenchConfig cfg;
    cfg.iterations = 1000;
    cfg.precise_cycles = precise;
    for (const auto level :
         {codegen::OptLevel::Site, codegen::OptLevel::SiteCycle,
          codegen::OptLevel::SiteReuseCycle}) {
      const apps::RunResult r = apps::run_list_bench(level, cfg);
      RMIOPT_CHECK(r.check == 1000.0, "list transfer lost messages");
      t.add_row({precise ? "construction-order (refined)" : "paper (§3.2)",
                 std::string(codegen::to_string(level)),
                 fmt_fixed(r.makespan.as_seconds(), 4),
                 std::to_string(r.total.serial.cycle_lookups)});
    }
  }
  std::printf("Ablation: precise cycle analysis on the LinkedList "
              "benchmark (100 nodes, 1000 RMIs)\n%s",
              t.render().c_str());
  std::printf("\nWith the paper's analysis site+cycle == site (Table 1); "
              "the refinement removes ~100 probes + 1 table per message "
              "while every transfer stays bit-identical.\n");
  return 0;
}
