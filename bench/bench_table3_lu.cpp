// Table 3: LU runtime, 1024 matrix, 2 CPUs (reproduced at n=256).
//
// Expected shape (paper): call-site-specific code helps most (~13%),
// cycle elision adds ~3%, reuse ~3%; everything on gains ~18.7%.
#include "apps/lu.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 3 (LU: runtime 1024 matrix, 2 CPU's)",
      {"class                 79.81   0%", "site                  69.23   13.2%",
       "site + cycle          66.88   16.2%",
       "site + reuse          67.28   15.6%",
       "site + reuse + cycle  64.85   18.7%"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_lu_model();
  driver::PassManager pm;
  apps::LuConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.n = 256;
  const auto runs = bench::run_levels([&](bench::OptLevel l) {
    const apps::RunResult r = apps::run_lu(l, cfg);
    RMIOPT_CHECK(r.check < 1e-8, "LU residual too large — wrong result");
    return r;
  });
  bench::print_runtime_table(
      "Reproduction: LU 256x256, 2 machines (virtual seconds; residual "
      "verified < 1e-8)",
      runs);
  bench::print_compile_table(runs);
  return 0;
}
