// Ablation: combining object reuse with Kono & Masuda's zero-copy receive
// (paper §6, related work [10]): "Our object reuse scheme can be used in
// combination with their zero copy scheme for increased performance."
//
// Zero-copy keeps received primitive payloads in the network buffer after
// light preprocessing, eliminating the receive-side bulk copy.  Reuse
// eliminates the allocation; together the receive path touches each byte
// zero times.
//
// The second half sweeps the *send* side: CostModel::zero_copy_send routes
// serialization into a scatter-gather list whose inline primitive-array
// rows are borrowed spans, not copies.  The sweep cross-checks every cell
// (app x opt level x gather on/off x Sim/Loopback) by digesting the frame
// images seen at the NIC boundary: gathering must change *when* bytes are
// copied, never *which* bytes go on the wire.  Any divergence dumps the
// cell digests to $RMIOPT_GATHER_DUMP (default gather_divergence.txt) and
// exits nonzero — CI uploads the dump as an artifact.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"
#include "support/hash.hpp"
#include "wire/framing.hpp"

using namespace rmiopt;

namespace {

// One sweep cell: an order-insensitive digest of every frame image the
// transport carried (XOR of per-frame FNV-1a hashes commutes, so Sim's
// inline delivery and Loopback's threaded delivery compare equal), plus
// the counters the assertions need.
struct Cell {
  std::string app;
  std::string level;
  bool gather = false;
  std::string transport;
  std::uint64_t digest = 0;
  std::uint64_t frames = 0;
  std::uint64_t gather_segments = 0;
  std::uint64_t bytes_borrowed = 0;
  std::uint64_t gathered_messages = 0;
  double seconds = 0.0;
};

template <typename Cfg>
Cell run_cell(const char* app, codegen::OptLevel level, bool gather,
              net::TransportKind transport, Cfg cfg,
              apps::RunResult (*runner)(codegen::OptLevel, const Cfg&)) {
  std::atomic<std::uint64_t> digest{0};
  std::atomic<std::uint64_t> frames{0};
  cfg.cost.zero_copy_send = gather;
  cfg.transport = transport;
  cfg.frame_probe = [&digest, &frames](std::uint16_t, std::uint16_t,
                                       const wire::Frame& frame) {
    const ByteBuffer image = wire::encode_frame(frame);
    digest.fetch_xor(fnv1a(image.contents().data(), image.contents().size()),
                     std::memory_order_relaxed);
    frames.fetch_add(1, std::memory_order_relaxed);
  };
  const apps::RunResult r = runner(level, cfg);

  Cell c;
  c.app = app;
  c.level = std::string(codegen::to_string(level));
  c.gather = gather;
  c.transport = transport == net::TransportKind::Sim ? "Sim" : "Loopback";
  c.digest = digest.load();
  c.frames = frames.load();
  c.gather_segments = r.total.serial.gather_segments;
  c.bytes_borrowed = r.total.serial.gather_bytes_borrowed;
  c.gathered_messages = r.net.gathered_messages;
  c.seconds = r.makespan.as_seconds();
  return c;
}

void dump_divergence(const std::vector<Cell>& cells,
                     const std::vector<std::string>& errors) {
  const char* env = std::getenv("RMIOPT_GATHER_DUMP");
  const std::string path = env != nullptr && env[0] != '\0'
                               ? env
                               : "gather_divergence.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "zero-copy send sweep: frame-image divergence\n\n");
  for (const auto& e : errors) std::fprintf(f, "FAIL: %s\n", e.c_str());
  std::fprintf(f, "\n%-6s %-14s %-7s %-9s %18s %8s %10s %14s\n", "app",
               "level", "gather", "transport", "digest", "frames",
               "segments", "borrowed");
  for (const auto& c : cells) {
    std::fprintf(f, "%-6s %-14s %-7s %-9s 0x%016llx %8llu %10llu %14llu\n",
                 c.app.c_str(), c.level.c_str(), c.gather ? "on" : "off",
                 c.transport.c_str(),
                 static_cast<unsigned long long>(c.digest),
                 static_cast<unsigned long long>(c.frames),
                 static_cast<unsigned long long>(c.gather_segments),
                 static_cast<unsigned long long>(c.bytes_borrowed));
  }
  std::fclose(f);
  std::fprintf(stderr, "divergence dump written to %s\n", path.c_str());
}

}  // namespace

int main() {
  // ---- receive side (unchanged): reuse x zero-copy receive ---------------
  TextTable t({"receive path", "level", "seconds", "gain over baseline"});
  double baseline = 0.0;
  for (const bool zero_copy : {false, true}) {
    apps::ArrayBenchConfig cfg;
    cfg.rows = 64;  // bigger payloads: the copy actually matters
    cfg.cols = 64;
    cfg.iterations = 300;
    cfg.cost.zero_copy_receive = zero_copy;
    for (const auto level :
         {codegen::OptLevel::Site, codegen::OptLevel::SiteReuseCycle}) {
      const apps::RunResult r = apps::run_array_bench(level, cfg);
      const double s = r.makespan.as_seconds();
      if (baseline == 0.0) baseline = s;
      t.add_row({zero_copy ? "zero-copy ([10])" : "copy-out (default)",
                 std::string(codegen::to_string(level)), fmt_fixed(s, 4),
                 fmt_gain(baseline, s)});
    }
  }
  std::printf("Ablation: reuse x zero-copy receive (double[64][64], "
              "300 RMIs)\n%s",
              t.render().c_str());
  std::printf("\nThe combination (bottom row) stacks both effects, as the "
              "paper's related-work discussion anticipates.\n\n");

  // ---- send side: scatter-gather sweep -----------------------------------
  const auto levels = {codegen::OptLevel::Site,
                       codegen::OptLevel::SiteReuseCycle};
  const auto transports = {net::TransportKind::Sim,
                           net::TransportKind::Loopback};
  std::vector<Cell> cells;
  for (const auto level : levels) {
    for (const bool gather : {false, true}) {
      for (const auto tk : transports) {
        apps::ArrayBenchConfig acfg;
        acfg.rows = 32;  // 32x8 = 256-byte rows: every row borrows
        acfg.cols = 32;
        acfg.iterations = 100;
        cells.push_back(run_cell<apps::ArrayBenchConfig>(
            "array", level, gather, tk, acfg, apps::run_array_bench));

        apps::ListBenchConfig lcfg;
        lcfg.list_length = 100;
        lcfg.iterations = 50;
        cells.push_back(run_cell<apps::ListBenchConfig>(
            "list", level, gather, tk, lcfg, apps::run_list_bench));
      }
    }
  }

  // Cross-cell checks: gathering must be invisible on the wire.
  std::vector<std::string> errors;
  auto find = [&](const std::string& app, const std::string& level,
                  bool gather, const std::string& transport) -> const Cell& {
    for (const auto& c : cells) {
      if (c.app == app && c.level == level && c.gather == gather &&
          c.transport == transport) {
        return c;
      }
    }
    RMIOPT_CHECK(false, "sweep cell missing");
    std::abort();
  };
  for (const auto& c : cells) {
    if (c.transport != "Sim") continue;
    // (1) Sim and Loopback carry byte-identical frame images per config.
    const Cell& lb = find(c.app, c.level, c.gather, "Loopback");
    if (c.digest != lb.digest || c.frames != lb.frames) {
      errors.push_back(c.app + "/" + c.level + "/gather=" +
                       (c.gather ? "on" : "off") +
                       ": Sim and Loopback frame images diverge");
    }
    // (2) Gathering never changes the bytes on the wire.
    if (c.gather) {
      const Cell& off = find(c.app, c.level, false, "Sim");
      if (c.digest != off.digest || c.frames != off.frames) {
        errors.push_back(c.app + "/" + c.level +
                         ": gather on/off frame images diverge");
      }
    }
  }
  for (const auto& c : cells) {
    // (3) Knob off leaves every gather counter at zero; knob on borrows
    // every inline primitive-array row (zero per-row memcpys on the array
    // bench — its 256-byte rows all clear the borrow threshold).
    if (!c.gather &&
        (c.gather_segments != 0 || c.bytes_borrowed != 0 ||
         c.gathered_messages != 0)) {
      errors.push_back(c.app + "/" + c.level + "/" + c.transport +
                       ": gather counters nonzero with the knob off");
    }
    if (c.gather && c.app == "array" &&
        (c.gather_segments == 0 || c.bytes_borrowed == 0 ||
         c.gathered_messages == 0)) {
      errors.push_back(c.app + "/" + c.level + "/" + c.transport +
                       ": knob on but no rows were borrowed");
    }
  }

  TextTable s({"app", "level", "gather", "seconds", "borrowed segs",
               "memcpy bytes eliminated"});
  for (const auto& c : cells) {
    if (c.transport != "Sim") continue;  // Loopback cells are cross-checks
    s.add_row({c.app, c.level, c.gather ? "on" : "off", fmt_fixed(c.seconds, 4),
               std::to_string(c.gather_segments),
               std::to_string(c.bytes_borrowed)});
  }
  std::printf("Ablation: zero-copy scatter-gather send "
              "(frame images cross-checked Sim vs Loopback, on vs off)\n%s",
              s.render().c_str());
  std::printf("\n'memcpy bytes eliminated' counts inline primitive-array "
              "bytes that rode as borrowed iovec segments instead of being "
              "copied into a contiguous payload.\n");

  if (!errors.empty()) {
    for (const auto& e : errors) std::fprintf(stderr, "FAIL: %s\n", e.c_str());
    dump_divergence(cells, errors);
    return 1;
  }
  std::printf("\nAll %zu sweep cells agree: gathering changed when bytes "
              "are copied, never which bytes go on the wire.\n",
              cells.size());
  return 0;
}
