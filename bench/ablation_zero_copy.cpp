// Ablation: combining object reuse with Kono & Masuda's zero-copy receive
// (paper §6, related work [10]): "Our object reuse scheme can be used in
// combination with their zero copy scheme for increased performance."
//
// Zero-copy keeps received primitive payloads in the network buffer after
// light preprocessing, eliminating the receive-side bulk copy.  Reuse
// eliminates the allocation; together the receive path touches each byte
// zero times.
#include <cstdio>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;

int main() {
  TextTable t({"receive path", "level", "seconds", "gain over baseline"});
  double baseline = 0.0;
  for (const bool zero_copy : {false, true}) {
    apps::ArrayBenchConfig cfg;
    cfg.rows = 64;  // bigger payloads: the copy actually matters
    cfg.cols = 64;
    cfg.iterations = 300;
    cfg.cost.zero_copy_receive = zero_copy;
    for (const auto level :
         {codegen::OptLevel::Site, codegen::OptLevel::SiteReuseCycle}) {
      const apps::RunResult r = apps::run_array_bench(level, cfg);
      const double s = r.makespan.as_seconds();
      if (baseline == 0.0) baseline = s;
      t.add_row({zero_copy ? "zero-copy ([10])" : "copy-out (default)",
                 std::string(codegen::to_string(level)), fmt_fixed(s, 4),
                 fmt_gain(baseline, s)});
    }
  }
  std::printf("Ablation: reuse x zero-copy receive (double[64][64], "
              "300 RMIs)\n%s",
              t.render().c_str());
  std::printf("\nThe combination (bottom row) stacks both effects, as the "
              "paper's related-work discussion anticipates.\n");
  return 0;
}
