// Ablation: combining object reuse with Kono & Masuda's zero-copy receive
// (paper §6, related work [10]): "Our object reuse scheme can be used in
// combination with their zero copy scheme for increased performance."
//
// The first half sweeps the *receive* side for real: with
// CostModel::zero_copy_receive on, delivery lands frame images in pooled
// pinned buffers and the reader borrows large primitive-array rows
// straight out of them (rebinding reuse-cached arrays to the new frame's
// span instead of rewriting bytes).  The sweep runs gather on/off x
// zero-copy-receive on/off x Sim/Loopback and asserts: result digests
// identical everywhere, frame images untouched by the receive knob,
// deserialize virtual time and real allocation volume strictly lower when
// borrowing engages, and every recv/pool counter zero with the knob off.
//
// The second half sweeps the *send* side: CostModel::zero_copy_send routes
// serialization into a scatter-gather list whose inline primitive-array
// rows are borrowed spans, not copies.  The sweep cross-checks every cell
// (app x opt level x gather on/off x Sim/Loopback) by digesting the frame
// images seen at the NIC boundary: gathering must change *when* bytes are
// copied, never *which* bytes go on the wire.  Any divergence in either
// sweep dumps the cell digests to $RMIOPT_GATHER_DUMP (default
// gather_divergence.txt) and exits nonzero — CI uploads the dump as an
// artifact.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"
#include "support/hash.hpp"
#include "wire/framing.hpp"

using namespace rmiopt;

namespace {

// One sweep cell: an order-insensitive digest of every frame image the
// transport carried (XOR of per-frame FNV-1a hashes commutes, so Sim's
// inline delivery and Loopback's threaded delivery compare equal), plus
// the counters the assertions need.
struct Cell {
  std::string app;
  std::string level;
  bool gather = false;
  std::string transport;
  std::uint64_t digest = 0;
  std::uint64_t frames = 0;
  std::uint64_t gather_segments = 0;
  std::uint64_t bytes_borrowed = 0;
  std::uint64_t gathered_messages = 0;
  double seconds = 0.0;
};

template <typename Cfg>
Cell run_cell(const char* app, codegen::OptLevel level, bool gather,
              net::TransportKind transport, Cfg cfg,
              apps::RunResult (*runner)(codegen::OptLevel, const Cfg&)) {
  std::atomic<std::uint64_t> digest{0};
  std::atomic<std::uint64_t> frames{0};
  cfg.cost.zero_copy_send = gather;
  cfg.transport = transport;
  cfg.frame_probe = [&digest, &frames](std::uint16_t, std::uint16_t,
                                       const wire::Frame& frame) {
    const ByteBuffer image = wire::encode_frame(frame);
    digest.fetch_xor(fnv1a(image.contents().data(), image.contents().size()),
                     std::memory_order_relaxed);
    frames.fetch_add(1, std::memory_order_relaxed);
  };
  const apps::RunResult r = runner(level, cfg);

  Cell c;
  c.app = app;
  c.level = std::string(codegen::to_string(level));
  c.gather = gather;
  c.transport = transport == net::TransportKind::Sim ? "Sim" : "Loopback";
  c.digest = digest.load();
  c.frames = frames.load();
  c.gather_segments = r.total.serial.gather_segments;
  c.bytes_borrowed = r.total.serial.gather_bytes_borrowed;
  c.gathered_messages = r.net.gathered_messages;
  c.seconds = r.makespan.as_seconds();
  return c;
}

// One receive-sweep cell: the 64x64 double-array bench under one
// (level, gather, zero_copy_receive, transport) configuration.
struct RecvCell {
  std::string level;
  bool gather = false;
  bool zcr = false;
  std::string transport;
  std::uint64_t digest = 0;  // XOR of per-frame image hashes (order-free)
  std::uint64_t frames = 0;
  double check = 0.0;
  std::int64_t deser_ns = 0;  // virtual CPU cost of the serial counters
  std::uint64_t recv_segments = 0;
  std::uint64_t recv_bytes_borrowed = 0;
  std::uint64_t bytes_copied_rx = 0;
  std::uint64_t new_bytes = 0;  // real allocation volume ("new (MBytes)")
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  double seconds = 0.0;
};

RecvCell run_recv_cell(codegen::OptLevel level, bool gather, bool zcr,
                       net::TransportKind transport) {
  std::atomic<std::uint64_t> digest{0};
  std::atomic<std::uint64_t> frames{0};
  apps::ArrayBenchConfig cfg;
  cfg.rows = 64;  // 512-byte rows: well past the borrow threshold
  cfg.cols = 64;
  cfg.iterations = 300;
  cfg.cost.zero_copy_send = gather;
  cfg.cost.zero_copy_receive = zcr;
  cfg.transport = transport;
  cfg.frame_probe = [&digest, &frames](std::uint16_t, std::uint16_t,
                                       const wire::Frame& frame) {
    const ByteBuffer image = wire::encode_frame(frame);
    digest.fetch_xor(fnv1a(image.contents().data(), image.contents().size()),
                     std::memory_order_relaxed);
    frames.fetch_add(1, std::memory_order_relaxed);
  };
  const apps::RunResult r = apps::run_array_bench(level, cfg);

  RecvCell c;
  c.level = std::string(codegen::to_string(level));
  c.gather = gather;
  c.zcr = zcr;
  c.transport = transport == net::TransportKind::Sim ? "Sim" : "Loopback";
  c.digest = digest.load();
  c.frames = frames.load();
  c.check = r.check;
  c.deser_ns = r.total.serial.cpu_cost(cfg.cost).as_nanos();
  c.recv_segments = r.total.serial.recv_segments;
  c.recv_bytes_borrowed = r.total.serial.recv_bytes_borrowed;
  c.bytes_copied_rx = r.total.serial.bytes_copied_rx;
  c.new_bytes = r.total.serial.bytes_allocated;
  c.pool_hits = r.net.frame_pool_hits;
  c.pool_misses = r.net.frame_pool_misses;
  c.seconds = r.makespan.as_seconds();
  return c;
}

void dump_divergence(const std::vector<RecvCell>& recv_cells,
                     const std::vector<Cell>& cells,
                     const std::vector<std::string>& errors) {
  const char* env = std::getenv("RMIOPT_GATHER_DUMP");
  const std::string path = env != nullptr && env[0] != '\0'
                               ? env
                               : "gather_divergence.txt";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "zero-copy sweep: divergence\n\n");
  for (const auto& e : errors) std::fprintf(f, "FAIL: %s\n", e.c_str());
  std::fprintf(f, "\nreceive sweep cells\n");
  std::fprintf(f, "%-14s %-7s %-4s %-9s %18s %8s %10s %14s %12s %12s\n",
               "level", "gather", "zcr", "transport", "digest", "frames",
               "rx spans", "rx borrowed", "pool hits", "pool misses");
  for (const auto& c : recv_cells) {
    std::fprintf(
        f, "%-14s %-7s %-4s %-9s 0x%016llx %8llu %10llu %14llu %12llu %12llu\n",
        c.level.c_str(), c.gather ? "on" : "off", c.zcr ? "on" : "off",
        c.transport.c_str(), static_cast<unsigned long long>(c.digest),
        static_cast<unsigned long long>(c.frames),
        static_cast<unsigned long long>(c.recv_segments),
        static_cast<unsigned long long>(c.recv_bytes_borrowed),
        static_cast<unsigned long long>(c.pool_hits),
        static_cast<unsigned long long>(c.pool_misses));
  }
  std::fprintf(f, "\nsend sweep cells\n");
  std::fprintf(f, "%-6s %-14s %-7s %-9s %18s %8s %10s %14s\n", "app",
               "level", "gather", "transport", "digest", "frames",
               "segments", "borrowed");
  for (const auto& c : cells) {
    std::fprintf(f, "%-6s %-14s %-7s %-9s 0x%016llx %8llu %10llu %14llu\n",
                 c.app.c_str(), c.level.c_str(), c.gather ? "on" : "off",
                 c.transport.c_str(),
                 static_cast<unsigned long long>(c.digest),
                 static_cast<unsigned long long>(c.frames),
                 static_cast<unsigned long long>(c.gather_segments),
                 static_cast<unsigned long long>(c.bytes_borrowed));
  }
  std::fclose(f);
  std::fprintf(stderr, "divergence dump written to %s\n", path.c_str());
}

}  // namespace

int main() {
  std::vector<std::string> errors;

  // ---- receive side: gather x zero-copy-receive x transport --------------
  std::vector<RecvCell> recv_cells;
  for (const auto level :
       {codegen::OptLevel::Site, codegen::OptLevel::SiteReuseCycle}) {
    for (const bool gather : {false, true}) {
      for (const bool zcr : {false, true}) {
        for (const auto tk :
             {net::TransportKind::Sim, net::TransportKind::Loopback}) {
          recv_cells.push_back(run_recv_cell(level, gather, zcr, tk));
        }
      }
    }
  }

  auto find_recv = [&](const std::string& level, bool gather, bool zcr,
                       const std::string& transport) -> const RecvCell& {
    for (const auto& c : recv_cells) {
      if (c.level == level && c.gather == gather && c.zcr == zcr &&
          c.transport == transport) {
        return c;
      }
    }
    RMIOPT_CHECK(false, "receive sweep cell missing");
    std::abort();
  };
  for (const auto& c : recv_cells) {
    const std::string where = c.level + "/gather=" + (c.gather ? "on" : "off") +
                              "/zcr=" + (c.zcr ? "on" : "off") + "/" +
                              c.transport;
    // (1) Identical results everywhere: borrowing must be semantically
    // invisible to the application.
    const RecvCell& base = find_recv(c.level, false, false, "Sim");
    if (c.check != base.check) {
      errors.push_back(where + ": result digest diverges from baseline");
    }
    // (2) The receive knob must not change a single wire byte.
    if (c.transport == "Sim") {
      const RecvCell& off = find_recv(c.level, c.gather, false, "Sim");
      if (c.digest != off.digest || c.frames != off.frames) {
        errors.push_back(where + ": frame images diverge with zcr toggled");
      }
      const RecvCell& lb = find_recv(c.level, c.gather, c.zcr, "Loopback");
      if (c.digest != lb.digest || c.frames != lb.frames) {
        errors.push_back(where + ": Sim and Loopback frame images diverge");
      }
    }
    if (c.zcr) {
      const RecvCell& off = find_recv(c.level, c.gather, false, c.transport);
      // (3) Borrowing engaged (512-byte rows clear the threshold) and the
      // pool recycled at least once over 300 iterations.
      if (c.recv_segments == 0 || c.recv_bytes_borrowed == 0) {
        errors.push_back(where + ": zcr on but no rows were borrowed");
      }
      if (c.pool_hits == 0 || c.pool_misses == 0) {
        errors.push_back(where + ": zcr on but the frame pool never cycled");
      }
      // (4) The whole point: strictly lower deserialize virtual time and
      // strictly fewer real allocation bytes at identical results.
      if (c.deser_ns >= off.deser_ns) {
        errors.push_back(where + ": deserialize virtual time did not drop");
      }
      if (c.new_bytes >= off.new_bytes) {
        errors.push_back(where + ": allocation volume did not drop");
      }
      if (c.seconds >= off.seconds) {
        errors.push_back(where + ": makespan did not drop");
      }
    } else if (c.recv_segments != 0 || c.recv_bytes_borrowed != 0 ||
               c.pool_hits != 0 || c.pool_misses != 0) {
      // (5) Knob off: the pool and the borrow path must not exist.
      errors.push_back(where + ": recv/pool counters nonzero with zcr off");
    }
  }

  TextTable t({"level", "gather", "zero-copy recv", "seconds", "deser ms",
               "rx spans", "rx borrowed KB", "new KB", "pool hit/miss"});
  for (const auto& c : recv_cells) {
    if (c.transport != "Sim") continue;  // Loopback cells are cross-checks
    t.add_row({c.level, c.gather ? "on" : "off", c.zcr ? "on" : "off",
               fmt_fixed(c.seconds, 4),
               fmt_fixed(static_cast<double>(c.deser_ns) / 1e6, 2),
               std::to_string(c.recv_segments),
               std::to_string(c.recv_bytes_borrowed / 1024),
               std::to_string(c.new_bytes / 1024),
               std::to_string(c.pool_hits) + "/" +
                   std::to_string(c.pool_misses)});
  }
  std::printf("Ablation: zero-copy receive (double[64][64], 300 RMIs; "
              "result digests cross-checked per cell)\n%s",
              t.render().c_str());
  std::printf("\nWith the knob on the reader borrows rows out of pooled "
              "pinned frames (reuse rebinds cached arrays to the new span), "
              "cutting deserialize time and allocation volume at identical "
              "results and identical wire bytes.\n\n");

  // ---- send side: scatter-gather sweep -----------------------------------
  const auto levels = {codegen::OptLevel::Site,
                       codegen::OptLevel::SiteReuseCycle};
  const auto transports = {net::TransportKind::Sim,
                           net::TransportKind::Loopback};
  std::vector<Cell> cells;
  for (const auto level : levels) {
    for (const bool gather : {false, true}) {
      for (const auto tk : transports) {
        apps::ArrayBenchConfig acfg;
        acfg.rows = 32;  // 32x8 = 256-byte rows: every row borrows
        acfg.cols = 32;
        acfg.iterations = 100;
        cells.push_back(run_cell<apps::ArrayBenchConfig>(
            "array", level, gather, tk, acfg, apps::run_array_bench));

        apps::ListBenchConfig lcfg;
        lcfg.list_length = 100;
        lcfg.iterations = 50;
        cells.push_back(run_cell<apps::ListBenchConfig>(
            "list", level, gather, tk, lcfg, apps::run_list_bench));
      }
    }
  }

  // Cross-cell checks: gathering must be invisible on the wire.
  auto find = [&](const std::string& app, const std::string& level,
                  bool gather, const std::string& transport) -> const Cell& {
    for (const auto& c : cells) {
      if (c.app == app && c.level == level && c.gather == gather &&
          c.transport == transport) {
        return c;
      }
    }
    RMIOPT_CHECK(false, "sweep cell missing");
    std::abort();
  };
  for (const auto& c : cells) {
    if (c.transport != "Sim") continue;
    // (1) Sim and Loopback carry byte-identical frame images per config.
    const Cell& lb = find(c.app, c.level, c.gather, "Loopback");
    if (c.digest != lb.digest || c.frames != lb.frames) {
      errors.push_back(c.app + "/" + c.level + "/gather=" +
                       (c.gather ? "on" : "off") +
                       ": Sim and Loopback frame images diverge");
    }
    // (2) Gathering never changes the bytes on the wire.
    if (c.gather) {
      const Cell& off = find(c.app, c.level, false, "Sim");
      if (c.digest != off.digest || c.frames != off.frames) {
        errors.push_back(c.app + "/" + c.level +
                         ": gather on/off frame images diverge");
      }
    }
  }
  for (const auto& c : cells) {
    // (3) Knob off leaves every gather counter at zero; knob on borrows
    // every inline primitive-array row (zero per-row memcpys on the array
    // bench — its 256-byte rows all clear the borrow threshold).
    if (!c.gather &&
        (c.gather_segments != 0 || c.bytes_borrowed != 0 ||
         c.gathered_messages != 0)) {
      errors.push_back(c.app + "/" + c.level + "/" + c.transport +
                       ": gather counters nonzero with the knob off");
    }
    if (c.gather && c.app == "array" &&
        (c.gather_segments == 0 || c.bytes_borrowed == 0 ||
         c.gathered_messages == 0)) {
      errors.push_back(c.app + "/" + c.level + "/" + c.transport +
                       ": knob on but no rows were borrowed");
    }
  }

  TextTable s({"app", "level", "gather", "seconds", "borrowed segs",
               "memcpy bytes eliminated"});
  for (const auto& c : cells) {
    if (c.transport != "Sim") continue;  // Loopback cells are cross-checks
    s.add_row({c.app, c.level, c.gather ? "on" : "off", fmt_fixed(c.seconds, 4),
               std::to_string(c.gather_segments),
               std::to_string(c.bytes_borrowed)});
  }
  std::printf("Ablation: zero-copy scatter-gather send "
              "(frame images cross-checked Sim vs Loopback, on vs off)\n%s",
              s.render().c_str());
  std::printf("\n'memcpy bytes eliminated' counts inline primitive-array "
              "bytes that rode as borrowed iovec segments instead of being "
              "copied into a contiguous payload.\n");

  if (!errors.empty()) {
    for (const auto& e : errors) std::fprintf(stderr, "FAIL: %s\n", e.c_str());
    dump_divergence(recv_cells, cells, errors);
    return 1;
  }
  std::printf("\nAll %zu sweep cells agree: zero-copy changed when bytes "
              "are copied, never which bytes go on the wire or what the "
              "application computes.\n",
              recv_cells.size() + cells.size());
  return 0;
}
