// Shared helpers for the table-reproduction benchmark binaries.
//
// Every binary prints (a) the paper's original table and (b) the measured
// reproduction in the same format, so the two can be compared side by
// side.  Absolute values differ from 2003 hardware by construction; the
// *shape* — ordering of configurations and rough gain factors — is the
// reproduction target (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "apps/run_result.hpp"
#include "codegen/opt_level.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "trace/profile.hpp"
#include "trace/recorder.hpp"

namespace rmiopt::bench {

using apps::RunResult;
using codegen::OptLevel;

struct LevelRun {
  OptLevel level;
  RunResult result;
};

inline std::vector<LevelRun> run_levels(
    const std::function<RunResult(OptLevel)>& runner) {
  std::vector<LevelRun> runs;
  for (OptLevel level : codegen::kPaperLevels) {
    runs.push_back(LevelRun{level, runner(level)});
  }
  return runs;
}

// Prints the fault/reliability counters — but only when something actually
// went wrong on the wire, so healthy benchmark output stays bit-for-bit
// identical to a build without fault support.
inline void print_fault_table(const std::vector<LevelRun>& runs) {
  bool any = false;
  for (const auto& run : runs) {
    const auto& n = run.result.net;
    any = any || n.faults() > 0 || n.retransmits > 0 || n.timeouts > 0;
  }
  if (!any) return;
  TextTable t({"Optimization", "dropped", "dup'd", "reord", "corrupt",
               "retrans", "dedup", "timeouts", "failovers"});
  for (const auto& run : runs) {
    const auto& n = run.result.net;
    t.add_row({std::string(codegen::to_string(run.level)),
               std::to_string(n.dropped), std::to_string(n.duplicated),
               std::to_string(n.reordered), std::to_string(n.corrupted),
               std::to_string(n.retransmits), std::to_string(n.dedup_hits),
               std::to_string(n.timeouts),
               std::to_string(run.result.failovers)});
  }
  std::printf("injected faults and recovery\n%s\n", t.render().c_str());
}

// Prints the zero-copy receive counters — borrowed spans/bytes and the
// frame pool's hit/miss traffic — but only when borrowing actually
// engaged (CostModel::zero_copy_receive on a non-HEAVY workload), so
// default knob-off output stays bit-for-bit identical to a build without
// zero-copy receive support.
inline void print_zero_copy_recv_table(const std::vector<LevelRun>& runs) {
  bool any = false;
  for (const auto& run : runs) {
    any = any || run.result.total.serial.recv_segments > 0 ||
          run.result.net.frame_pool_hits > 0 ||
          run.result.net.frame_pool_misses > 0;
  }
  if (!any) return;
  TextTable t({"Optimization", "rx spans", "rx borrowed B", "rx copied B",
               "pool hits", "pool misses"});
  for (const auto& run : runs) {
    const auto& s = run.result.total.serial;
    const auto& n = run.result.net;
    t.add_row({std::string(codegen::to_string(run.level)),
               std::to_string(s.recv_segments),
               std::to_string(s.recv_bytes_borrowed),
               std::to_string(s.bytes_copied_rx),
               std::to_string(n.frame_pool_hits),
               std::to_string(n.frame_pool_misses)});
  }
  std::printf("zero-copy receive\n%s\n", t.render().c_str());
}

// Prints a "seconds | gain over 'class'" table like Tables 1/2/3/5,
// followed by the fault table when fault injection was active and the
// zero-copy receive table when borrowing engaged.
inline void print_runtime_table(const std::string& title,
                                const std::vector<LevelRun>& runs) {
  std::printf("%s\n", title.c_str());
  TextTable t({"Compiler Optimization", "seconds", "gain over 'class'"});
  const double base = runs.front().result.makespan.as_seconds();
  for (const auto& run : runs) {
    const double s = run.result.makespan.as_seconds();
    t.add_row({std::string(codegen::to_string(run.level)), fmt_fixed(s, 4),
               fmt_gain(base, s)});
  }
  std::printf("%s\n", t.render().c_str());
  print_fault_table(runs);
  print_zero_copy_recv_table(runs);
}

// Prints a runtime-statistics table like Tables 4/6/8.  The
// "invocations" column is the count of dynamically dispatched serializer
// calls ("how many calls were made to serialization methods during the
// serialization process", §5.2) — call-site inlining reduces it.
inline void print_stats_table(const std::string& title,
                              const std::vector<LevelRun>& runs) {
  std::printf("%s\n", title.c_str());
  TextTable t({"Optimization", "reused objs", "local rpcs", "remote rpcs",
               "new (MBytes)", "cycle lookups", "invocations"});
  for (const auto& run : runs) {
    const auto& s = run.result.total;
    t.add_row({std::string(codegen::to_string(run.level)),
               std::to_string(s.serial.objects_reused),
               std::to_string(s.local_rpcs), std::to_string(s.remote_rpcs),
               fmt_fixed(s.deserialization_mbytes(), 2),
               std::to_string(s.serial.cycle_lookups),
               std::to_string(s.serial.serializer_invocations)});
  }
  std::printf("%s\n", t.render().c_str());
}

// Prints the compile pipeline's pass/cache counters summed over a level
// sweep — opt-in via RMIOPT_COMPILE_STATS=1, so default table output
// stays byte-for-bit identical run to run.  Only the deterministic
// counters are printed; per-pass wall time varies and never appears.
inline void print_compile_table(const std::vector<LevelRun>& runs) {
  const char* env = std::getenv("RMIOPT_COMPILE_STATS");
  if (env == nullptr || env[0] == '\0' || env[0] == '0') return;
  driver::CompileStats total;
  for (const auto& run : runs) total += run.result.compile;
  TextTable t({"pass", "executions", "cache hits", "cache misses"});
  for (std::size_t i = 0; i < driver::kPassCount; ++i) {
    const auto id = static_cast<driver::PassId>(i);
    const auto& p = total.pass(id);
    t.add_row({std::string(driver::to_string(id)),
               std::to_string(p.executions), std::to_string(p.cache_hits),
               std::to_string(p.cache_misses)});
  }
  std::printf("compile pipeline (level-sweep totals; fixpoint iterations %s)\n%s\n",
              std::to_string(total.fixpoint_iterations).c_str(),
              t.render().c_str());
}

inline void print_paper_reference(const std::string& caption,
                                  const std::vector<std::string>& lines) {
  std::printf("--- paper reference: %s ---\n", caption.c_str());
  for (const auto& l : lines) std::printf("  %s\n", l.c_str());
  std::printf("\n");
}

// ---- tracing ---------------------------------------------------------------

// Prints the per-call-site profile (invocations, p50/p95/max virtual
// latency, bytes, reuse/cycle activity) built from a recorded trace.
inline void print_callsite_profile(const std::string& title,
                                   const trace::MemoryRecorder& recorder,
                                   const trace::CallsiteNameFn& name = {}) {
  const auto rows = trace::build_profile(recorder.events());
  std::printf("%s\n%s\n", title.c_str(),
              trace::render_profile(rows, name).c_str());
}

// Writes the recorded trace as Chrome trace_event JSON (load in
// chrome://tracing or ui.perfetto.dev).  Returns false when the file
// cannot be written.
inline bool write_chrome_trace(const std::string& path,
                               const trace::MemoryRecorder& recorder,
                               const trace::CallsiteNameFn& name = {}) {
  const std::string json = trace::chrome_trace_json(recorder.events(), name);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace rmiopt::bench
