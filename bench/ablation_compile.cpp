// Compile-pipeline ablation: what does the pass manager's memoization buy
// across the full app x level matrix, and is it *safe*?
//
// For every one of the five application models and the five paper levels
// this binary compiles three times:
//
//   cold    — one-shot driver::compile (no caches at all),
//   shared  — through one PassManager (analyses shared across levels/apps,
//             plans cached),
//   replay  — the same PassManager again (everything should hit).
//
// It prints deterministic counters only (pass executions, cache hits and
// misses, per-pass hit rates); measured per-pass wall time is shown only
// with --times so default output is byte-stable.  It also renders every
// decision of every compile through codegen::to_string and EXITS NONZERO
// if a cached compile differs from the cold compile anywhere — CI runs
// this binary as the shared-analysis correctness gate.
//
// Finally it demonstrates profile-guided re-specialization on a real LU
// run: the exported CallSiteProfile demotes a reuse site the run invoked
// too rarely and promotes a hot ACK-only site to batched replies, while
// the untouched sites are cloned without re-running any pass.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/lu.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

namespace {

using namespace rmiopt;

std::string render(const driver::CompiledProgram& prog,
                   const om::TypeRegistry& types) {
  std::string out;
  for (const auto& [tag, decision] : prog.sites) {
    out += codegen::to_string(decision, types);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool times = false;
  for (int i = 1; i < argc; ++i) {
    times = times || std::strcmp(argv[i], "--times") == 0;
  }

  struct AppModel {
    const char* name;
    apps::figures::FigureProgram model;
  };
  std::vector<AppModel> models;
  models.push_back({"linkedlist", apps::figures::make_figure14()});
  models.push_back({"array2d", apps::figures::make_figure12()});
  models.push_back({"lu", apps::figures::make_lu_model()});
  models.push_back({"superopt", apps::figures::make_superopt_model()});
  models.push_back({"webserver", apps::figures::make_webserver_model()});

  driver::PassManager pm;  // shared analyses + plan cache for the matrix
  bool mismatch = false;

  TextTable matrix({"app", "level", "sites", "passes run", "cache hits",
                    "replay hits"});
  for (auto& app : models) {
    for (codegen::OptLevel level : codegen::kPaperLevels) {
      const driver::CompiledProgram cold =
          driver::compile(*app.model.module, level);
      const driver::CompiledProgram shared =
          pm.compile(*app.model.module, level);
      const driver::CompiledProgram replay =
          pm.compile(*app.model.module, level);

      const std::string want = render(cold, *app.model.types);
      for (const auto* got : {&shared, &replay}) {
        if (render(*got, *app.model.types) != want) {
          std::fprintf(stderr,
                       "FAIL: %s @ %s: cached compile differs from cold\n",
                       app.name,
                       std::string(codegen::to_string(level)).c_str());
          mismatch = true;
        }
      }

      matrix.add_row({app.name, std::string(codegen::to_string(level)),
                      std::to_string(cold.sites.size()),
                      std::to_string(shared.stats.total_executions()),
                      std::to_string(shared.stats.total_hits()),
                      std::to_string(replay.stats.total_hits())});
    }
  }
  std::printf(
      "Compile matrix: 5 apps x 5 levels, one shared pass manager\n"
      "(passes run / cache hits are the first shared compile; a replay\n"
      "hits on every pass including plan generation)\n%s\n",
      matrix.render().c_str());

  const driver::CompileStats total = pm.stats();
  TextTable passes({"pass", "executions", "cache hits", "cache misses",
                    "hit rate"});
  for (std::size_t i = 0; i < driver::kPassCount; ++i) {
    const auto id = static_cast<driver::PassId>(i);
    const auto& p = total.pass(id);
    const std::uint64_t lookups = p.cache_hits + p.cache_misses;
    passes.add_row(
        {std::string(driver::to_string(id)), std::to_string(p.executions),
         std::to_string(p.cache_hits), std::to_string(p.cache_misses),
         lookups == 0 ? "-"
                      : fmt_fixed(100.0 * static_cast<double>(p.cache_hits) /
                                      static_cast<double>(lookups),
                                  1) + "%"});
  }
  std::printf("Per-pass totals over the whole matrix (fixpoint iterations %s)\n%s\n",
              std::to_string(total.fixpoint_iterations).c_str(),
              passes.render().c_str());

  if (times) {
    TextTable tt({"pass", "wall ms"});
    for (std::size_t i = 0; i < driver::kPassCount; ++i) {
      const auto id = static_cast<driver::PassId>(i);
      tt.add_row({std::string(driver::to_string(id)),
                  fmt_fixed(static_cast<double>(total.pass(id).wall_ns) / 1e6,
                            3)});
    }
    std::printf("Measured per-pass wall time (--times; varies run to run)\n%s\n",
                tt.render().c_str());
  }

  // ---- profile-guided re-specialization on a real LU run -------------------
  // n=16 over 2 machines: fetch_row runs 8 times (every machine-1-owned
  // row), flush 16 times, barrier 32 times — all deterministic, so the
  // demote/promote verdicts below are too.
  auto& lu = models[2].model;
  apps::LuConfig lucfg;
  lucfg.n = 16;
  lucfg.model = &lu;
  lucfg.pass_manager = &pm;
  const apps::RunResult lurun =
      apps::run_lu(codegen::OptLevel::SiteReuseCycle, lucfg);

  const driver::CompiledProgram prog =
      pm.compile(*lu.module, codegen::OptLevel::SiteReuseCycle);
  driver::RespecializeOptions ropts;
  ropts.cold_reuse_invocations = 8;  // fetch_row's exact count: demoted
  ropts.hot_ack_remote_rpcs = 30;    // barrier qualifies, flush does not
  const driver::CompiledProgram respec =
      pm.respecialize(prog, *lu.module, lurun.profile, ropts);

  TextTable rt({"site", "invocations", "remote rpcs", "verdict"});
  for (const auto& [tag, decision] : prog.sites) {
    const rmi::CallSiteProfileRow* row = lurun.profile.row(tag);
    const auto& fresh = respec.site(tag);
    std::string verdict = "kept";
    const bool had_reuse =
        decision.plan->reuse_args || decision.plan->reuse_ret;
    const bool has_reuse = fresh.plan->reuse_args || fresh.plan->reuse_ret;
    if (had_reuse && !has_reuse) verdict = "demoted (reuse dropped)";
    if (fresh.batch_ack) verdict = "promoted (batched ACKs)";
    rt.add_row({decision.callee_name,
                row ? std::to_string(row->invocations) : "0",
                row ? std::to_string(row->remote_rpcs) : "0", verdict});
  }
  std::printf(
      "Re-specialization of LU @ site+reuse+cycle against an n=16 run\n"
      "(plangen re-ran for %s of %zu sites; every analysis was a cache hit)\n%s\n",
      std::to_string(respec.stats.pass(driver::PassId::PlanGen).executions)
          .c_str(),
      prog.sites.size(), rt.render().c_str());

  if (mismatch) {
    std::fprintf(stderr, "ablation_compile: PLAN MISMATCH (see above)\n");
    return 1;
  }
  std::printf("cold-vs-cached check: all %zu x 5 x 2 compiles identical\n",
              models.size());
  return 0;
}
