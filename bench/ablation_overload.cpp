// Overload ablation: offered load x inbox bound x optimization level,
// on both transports.
//
// Phase 1 (open loop): one sender machine fires RMIOPT_OVERLOAD_CALLS
// fire-and-forget calls at a fixed virtual-time gap — 0.5x/1x/2x/4x the
// modelled admission service time — against a callee whose inbox is
// unbounded (bound 0), loosely bounded (16) or tightly bounded (4).
// Oneway calls keep the sender's clock free of reply merges, so every
// admission decision is a pure function of virtual time: the Sim and
// Loopback transports must agree counter-for-counter.
//
// The flow-control credit is deliberately undersized (2 us per unit of
// excess backlog vs 40 us of service): a sender this aggressive cannot
// be paced to capacity, so sustained overload genuinely reaches the
// bound and sheds.  With the default 20 us credit, backpressure alone
// holds the backlog below any reasonable bound — that regime is covered
// by the zero-shed low-load cells.
//
// Phase 2 (closed loop): synchronous calls carrying a 1 ms budget against
// a callee whose clock sits 10 ms ahead — every one must come back as a
// typed DeadlineExceeded without running the handler.
//
// Checked per cell (the binary aborts on violation, after writing a
// Chrome trace of a re-run to RMIOPT_OVERLOAD_TRACE for CI to attach):
//  * Sim and Loopback agree exactly;
//  * at or below 1x load (or with no bound) nothing is shed and goodput
//    is within 10% of the offered load;
//  * above 1x load with a bound, sheds are nonzero but bounded, and
//    every refusal is a typed Overload — never a ProtocolError, never a
//    hang;
//  * every phase-2 call fails as DeadlineExceeded.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.hpp"
#include "rmi/runtime.hpp"
#include "trace/recorder.hpp"

using namespace rmiopt;
using codegen::OptLevel;

namespace {

constexpr std::uint64_t kDeadlineCalls = 10;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10)
                                    : fallback;
}

struct CellResult {
  std::uint64_t admitted = 0;
  std::uint64_t sheds = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t deadline_rejects = 0;
  std::uint64_t other_errors = 0;  // anything untyped: must stay 0

  friend bool operator==(const CellResult&, const CellResult&) = default;
};

CellResult run_cell(OptLevel level, net::TransportKind transport,
                    std::size_t bound, std::int64_t gap_ns,
                    std::uint64_t calls, trace::Recorder* rec) {
  om::TypeRegistry types;
  net::Cluster cluster(2, types, serial::CostModel{}, transport);
  if (rec != nullptr) cluster.set_recorder(rec);
  rmi::ExecutorConfig exec;
  exec.inbox_bound = bound;
  exec.credit_stall_ns = 2'000;  // undersized credit: see header comment
  rmi::RmiSystem sys(cluster, types, exec);
  const std::int64_t service = exec.admission_service_ns;

  const auto mid = sys.define_method(
      "sink", [](rmi::CallContext&, auto, auto) {
        return rmi::HandlerResult{};
      });
  rmi::CompiledCallSite cs;
  cs.method_id = mid;
  cs.plan = std::make_unique<serial::CallSitePlan>();
  cs.plan->name = "overload.sink";
  cs.level = level;
  cs.site_specific = codegen::site_specific(level);
  const auto site = sys.add_callsite(std::move(cs));
  const rmi::RemoteRef ref = sys.export_object(1, nullptr);
  sys.start();

  CellResult r;
  net::VirtualClock& clock = cluster.machine(0).clock();
  for (std::uint64_t i = 0; i < calls; ++i) {
    clock.advance(SimTime::nanos(gap_ns));
    try {
      sys.invoke_oneway(0, ref, site, {});
      ++r.admitted;
    } catch (const rmi::Overload&) {
      ++r.sheds;
    } catch (const Error&) {
      ++r.other_errors;
    }
  }
  r.credit_stalls = sys.stats(0).credit_stalls;

  // Phase 2: drain the modelled backlog, then issue budgeted calls
  // against a callee whose clock is far ahead — each must be refused
  // with a typed DeadlineExceeded before its handler runs.
  clock.advance(
      SimTime::nanos(static_cast<std::int64_t>(calls + 1) * service));
  for (std::uint64_t i = 0; i < kDeadlineCalls; ++i) {
    cluster.machine(1).clock().merge_at_least(
        SimTime::nanos(clock.now().as_nanos() + 10'000'000));
    try {
      sys.invoke(0, ref, site, {}, {},
                 rmi::CallOptions{.budget_ns = 1'000'000});
      ++r.other_errors;  // a success here means the deadline gate failed
    } catch (const rmi::DeadlineExceeded&) {
      ++r.deadline_rejects;
    } catch (const Error&) {
      ++r.other_errors;
    }
  }
  sys.stop();
  return r;
}

void dump_failure_trace(OptLevel level, std::size_t bound, std::int64_t gap,
                        std::uint64_t calls) {
  const char* path = std::getenv("RMIOPT_OVERLOAD_TRACE");
  if (path == nullptr || *path == '\0') path = "overload_failure_trace.json";
  trace::MemoryRecorder rec;
  try {
    run_cell(level, net::TransportKind::Sim, bound, gap, calls, &rec);
  } catch (const Error&) {
    // A partial trace of the failing cell is still the artifact we want.
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  const std::string json = chrome_trace_json(rec.events());
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "overload: failing-cell trace written to %s\n", path);
}

void require(bool ok, const std::string& what, OptLevel level,
             std::size_t bound, std::int64_t gap, std::uint64_t calls) {
  if (ok) return;
  dump_failure_trace(level, bound, gap, calls);
  RMIOPT_CHECK(false, what);
}

}  // namespace

int main() {
  const std::uint64_t calls = env_u64("RMIOPT_OVERLOAD_CALLS", 200);
  const std::int64_t service = rmi::ExecutorConfig{}.admission_service_ns;
  struct Load {
    const char* name;
    std::int64_t gap_ns;
    bool overload;  // offered rate above the modelled service rate
  };
  const Load loads[] = {
      {"0.5x", 2 * service, false},
      {"1x", service, false},
      {"2x", service / 2, true},
      {"4x", service / 4, true},
  };
  const std::size_t bounds[] = {0, 16, 4};

  std::printf(
      "overload ablation: %llu oneway calls per cell, %llu budgeted calls,\n"
      "offered load x inbox bound x optimization level, Sim vs Loopback\n\n",
      static_cast<unsigned long long>(calls),
      static_cast<unsigned long long>(kDeadlineCalls));

  TextTable t({"Optimization", "bound", "offered", "admitted", "sheds",
               "credit stalls", "deadline rejects"});
  for (OptLevel level : codegen::kPaperLevels) {
    for (const std::size_t bound : bounds) {
      for (const Load& load : loads) {
        const CellResult sim = run_cell(level, net::TransportKind::Sim,
                                        bound, load.gap_ns, calls, nullptr);
        const CellResult loop =
            run_cell(level, net::TransportKind::Loopback, bound,
                     load.gap_ns, calls, nullptr);
        const std::string where =
            std::string("level=") + std::string(to_string(level)) +
            " bound=" + std::to_string(bound) + " load=" + load.name;
        require(sim == loop,
                "Sim and Loopback transports disagree (" + where + ")",
                level, bound, load.gap_ns, calls);
        require(sim.other_errors == 0,
                "untyped failure escaped the overload layer (" + where + ")",
                level, bound, load.gap_ns, calls);
        require(sim.admitted + sim.sheds == calls,
                "calls lost without a verdict (" + where + ")", level,
                bound, load.gap_ns, calls);
        require(sim.deadline_rejects == kDeadlineCalls,
                "expired-budget call not refused as DeadlineExceeded (" +
                    where + ")",
                level, bound, load.gap_ns, calls);
        if (bound == 0 || !load.overload) {
          require(sim.sheds == 0,
                  "shed below the inbox bound (" + where + ")", level,
                  bound, load.gap_ns, calls);
          // Goodput within 10% of the offered load (here: all of it).
          require(sim.admitted * 10 >= calls * 9,
                  "goodput below 90% of offered load (" + where + ")",
                  level, bound, load.gap_ns, calls);
        } else {
          require(sim.sheds > 0 && sim.sheds < calls,
                  "sustained overload not shed (or starved) (" + where +
                      ")",
                  level, bound, load.gap_ns, calls);
        }
        t.add_row({std::string(to_string(level)),
                   bound == 0 ? "off" : std::to_string(bound), load.name,
                   std::to_string(sim.admitted), std::to_string(sim.sheds),
                   std::to_string(sim.credit_stalls),
                   std::to_string(sim.deadline_rejects)});
      }
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Every cell agreed across transports; below the bound goodput\n"
      "tracked the offered load with zero sheds, above it the excess was\n"
      "shed with typed Overload verdicts and expired budgets were refused\n"
      "as DeadlineExceeded before the handler ran.\n");
  return 0;
}
