// Table 2: 2-D array transmission, 16x16 doubles, 2 CPUs.
//
// Expected shape (paper): every optimization helps; call-site-specific
// marshalers (type-info removal) are the biggest single step; the full
// stack gains ~30%.
#include "apps/microbench.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 2 (2D array transmission, 16x16, 2 CPU's)",
      {"class                 130.5   0%", "site                  110.0   15.7%",
       "site + cycle           97.5   25.2%",
       "site + reuse          103.0   21.0%",
       "site + reuse + cycle   91.5   29.8%"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_figure12();
  driver::PassManager pm;
  apps::ArrayBenchConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.iterations = 1000;
  const auto runs = bench::run_levels(
      [&](bench::OptLevel l) { return apps::run_array_bench(l, cfg); });
  bench::print_runtime_table(
      "Reproduction: double[16][16], 1000 RMIs, 2 machines (virtual "
      "seconds)",
      runs);
  bench::print_compile_table(runs);
  return 0;
}
