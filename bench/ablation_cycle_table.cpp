// Ablation: cycle-table implementation.
//
// §3.2 attributes the cycle-detection overhead to "the creation and
// deletion of a hash-table, adding every single object reference to that
// hash-table and finally, checking".  This bench compares (real wall
// clock) our open-addressing pointer table against std::unordered_map —
// the std-container shape a naive implementation would use — for the
// insert+re-probe pattern serialization produces.
#include <chrono>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "objmodel/heap.hpp"
#include "serial/cycle_table.hpp"
#include "support/table.hpp"

using namespace rmiopt;
using Clock = std::chrono::steady_clock;

namespace {

double ns_per_op(Clock::time_point a, Clock::time_point b, std::size_t ops) {
  return std::chrono::duration<double, std::nano>(b - a).count() /
         static_cast<double>(ops);
}

}  // namespace

int main() {
  om::TypeRegistry types;
  const om::ClassId cls = types.define_class("N", {{"x", om::TypeKind::Int}});
  om::Heap heap(types);

  constexpr std::size_t kObjects = 1000;
  constexpr int kMessages = 2000;
  std::vector<om::ObjRef> objs;
  objs.reserve(kObjects);
  for (std::size_t i = 0; i < kObjects; ++i) objs.push_back(heap.alloc(cls));

  // Pattern per message: fresh table, insert every object, re-probe 10%.
  // (lookup_or_insert is out-of-line, so the calls cannot be elided; the
  // sink is printed at the end to keep the results observable.)
  std::int64_t sink = 0;

  const auto t0 = Clock::now();
  for (int m = 0; m < kMessages; ++m) {
    serial::CycleTable table(64);
    for (om::ObjRef o : objs) sink += table.lookup_or_insert(o);
    for (std::size_t i = 0; i < kObjects; i += 10) {
      sink += table.lookup_or_insert(objs[i]);
    }
  }
  const auto t1 = Clock::now();
  for (int m = 0; m < kMessages; ++m) {
    std::unordered_map<om::ObjRef, std::int32_t> table;
    std::int32_t next = 0;
    for (om::ObjRef o : objs) {
      auto [it, fresh] = table.emplace(o, next);
      sink += fresh ? (++next, -1) : it->second;
    }
    for (std::size_t i = 0; i < kObjects; i += 10) {
      sink += table.at(objs[i]);
    }
  }
  const auto t2 = Clock::now();

  const std::size_t ops = kMessages * (kObjects + kObjects / 10);
  TextTable t({"implementation", "ns/probe (real)", "relative"});
  const double open_ns = ns_per_op(t0, t1, ops);
  const double std_ns = ns_per_op(t1, t2, ops);
  t.add_row({"open addressing (ours)", fmt_fixed(open_ns, 1), "1.00x"});
  t.add_row({"std::unordered_map", fmt_fixed(std_ns, 1),
             fmt_fixed(std_ns / open_ns, 2) + "x"});
  std::printf("Ablation: cycle-table implementation "
              "(%d messages x %zu objects)\n%s",
              kMessages, kObjects, t.render().c_str());
  std::printf("\nEither way, the compile-time elision of §3.2 removes the "
              "cost entirely — the point of the paper's optimization.\n");
  for (om::ObjRef o : objs) heap.free(o);
  std::printf("(checksum %lld)\n", static_cast<long long>(sink));
  return 0;
}
