// Table 6: superoptimizer runtime statistics, 2 CPUs.
//
// Expected shape (paper): essentially zero reuse at every level; ~10
// cycle lookups per shipped candidate in cycle-checking configurations,
// collapsing to ~0 with elision; allocation volume unchanged by reuse
// (the arguments escape into the queue).
#include "apps/superopt.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 6 (Superoptimizer: runtime statistics, 2 CPU's)",
      {"opt                   reused objs  local rpcs  remote rpcs  new(MB) "
       " cycle lookups",
       "class                 0            5250554     5250570      1101    "
       " 52499065",
       "site                  0            5250554     5250570      1101    "
       " 52499082",
       "site + cycle          0            5250554     5250570      1101    "
       " 17",
       "site + reuse          2            5250554     5250570      1101    "
       " 52499082",
       "site + reuse + cycle  2            5250554     5250570      1101    "
       " 17"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_superopt_model();
  driver::PassManager pm;
  apps::SuperoptConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.max_len = 2;
  const auto runs = bench::run_levels(
      [&](bench::OptLevel l) { return apps::run_superopt(l, cfg); });
  bench::print_stats_table(
      "Reproduction: superoptimizer, <=2-instruction search, 2 machines",
      runs);
  bench::print_compile_table(runs);
  return 0;
}
