// Ablation: what does call-site specialization (§3.1) actually buy?
//
// The 'site' gain has two separable parts: (a) CPU — no per-object
// serializer dispatch, no generic stub/boxing; (b) network — no type
// information on the wire.  We isolate them by zeroing parts of the cost
// model and rerunning the 16x16 array benchmark at 'class' vs 'site'.
#include <cstdio>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;

namespace {

template <typename Cfg, typename Runner>
double gain(const Cfg& cfg, Runner run) {
  const double t_class =
      run(codegen::OptLevel::Class, cfg).makespan.as_seconds();
  const double t_site =
      run(codegen::OptLevel::Site, cfg).makespan.as_seconds();
  return (t_class - t_site) / t_class * 100.0;
}

template <typename Cfg>
void zero_network(Cfg& cfg) {
  cfg.cost.msg_latency_ns = 0;
  cfg.cost.wire_byte_ns = 0;
  cfg.cost.send_overhead_ns = 0;
}

template <typename Cfg>
void zero_dispatch(Cfg& cfg) {
  cfg.cost.serializer_invoke_ns = 0;
  cfg.cost.type_decode_ns = 0;
  cfg.cost.generic_stub_ns = cfg.cost.site_stub_ns;
  cfg.cost.generic_arg_box_ns = 0;
}

template <typename Cfg, typename Runner>
void report(const char* workload, Cfg base, Runner run, TextTable& t) {
  Cfg free_net = base;
  zero_network(free_net);
  Cfg free_cpu = base;
  zero_dispatch(free_cpu);
  t.add_row({workload, "full model", fmt_fixed(gain(base, run), 1) + "%"});
  t.add_row({workload, "network free (CPU effects only)",
             fmt_fixed(gain(free_net, run), 1) + "%"});
  t.add_row({workload, "dispatch free (wire effects only)",
             fmt_fixed(gain(free_cpu, run), 1) + "%"});
}

}  // namespace

int main() {
  TextTable t({"workload", "cost model", "site gain over class"});

  // Bulk payload: type info is a negligible fraction of the bytes; the
  // 'site' gain is almost entirely dispatch CPU.
  apps::ArrayBenchConfig array_cfg;
  array_cfg.iterations = 500;
  report("double[16][16]", array_cfg,
         [](codegen::OptLevel l, const apps::ArrayBenchConfig& c) {
           return apps::run_array_bench(l, c);
         },
         t);

  // Many tiny objects: per-node type info is comparable to the payload;
  // the wire component matters ("a lot of network traffic is saved to
  // transmit type information for each linked list node", §5.1).
  apps::ListBenchConfig list_cfg;
  list_cfg.iterations = 500;
  report("LinkedList(100)", list_cfg,
         [](codegen::OptLevel l, const apps::ListBenchConfig& c) {
           return apps::run_list_bench(l, c);
         },
         t);

  std::printf("Ablation: decomposing the call-site-specialization gain\n%s",
              t.render().c_str());
  std::printf(
      "\nThe class->site wire saving is small because the 'class' baseline "
      "already uses KaRMI/Manta-style compact class ids; the big wire "
      "reduction happened going introspective->class.  Measured type-info "
      "bytes per message:\n");

  apps::ListBenchConfig one;
  one.iterations = 1;
  for (const auto level : {codegen::OptLevel::Heavy, codegen::OptLevel::Class,
                           codegen::OptLevel::Site}) {
    const apps::RunResult r = apps::run_list_bench(level, one);
    std::printf("  %-12s %6llu bytes of type info, %6llu wire bytes\n",
                std::string(codegen::to_string(level)).c_str(),
                static_cast<unsigned long long>(r.total.serial.type_info_bytes),
                static_cast<unsigned long long>(r.bytes));
  }
  return 0;
}
