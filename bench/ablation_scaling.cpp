// Ablation: machine scaling (the paper evaluates 2 CPUs only).
//
// The web server scales by adding slaves; LU scales by adding workers.
// This bench sweeps the machine count at the 'class' and fully-optimized
// levels to show that (a) the applications actually parallelize on the
// simulated cluster and (b) the optimization gains persist as machines
// are added.
#include <cstdio>

#include "apps/lu.hpp"
#include "apps/webserver.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;

int main() {
  {
    TextTable t({"pipelines", "machines", "class (us/page)",
                 "all opts (us/page)", "gain"});
    for (const std::size_t clients : {1, 2, 4, 8}) {
      for (const std::size_t machines : {2, 3}) {
        apps::WebserverConfig cfg;
        cfg.machines = machines;
        cfg.requests = 1000;
        cfg.concurrent_clients = clients;
        const double t_class =
            apps::run_webserver(codegen::OptLevel::Class, cfg)
                .makespan.as_micros() /
            static_cast<double>(cfg.requests);
        const double t_all =
            apps::run_webserver(codegen::OptLevel::SiteReuseCycle, cfg)
                .makespan.as_micros() /
            static_cast<double>(cfg.requests);
        t.add_row({std::to_string(clients), std::to_string(machines),
                   fmt_fixed(t_class, 2), fmt_fixed(t_all, 2),
                   fmt_gain(t_class, t_all)});
      }
    }
    std::printf("Ablation: webserver pipelining and slaves "
                "(1000 requests)\n%s\n",
                t.render().c_str());
    std::printf(
        "One pipeline is round-trip-latency bound (~%s per page is pure "
        "network); with several pipelines the master's own per-request CPU "
        "becomes the ceiling, so extra slaves barely move it — the gain "
        "from the compiler optimizations, however, persists at every "
        "configuration.\n\n",
        "30 us");
  }
  {
    TextTable t({"machines", "class (s)", "all opts (s)", "gain"});
    for (const std::size_t machines : {1, 2, 4}) {
      apps::LuConfig cfg;
      cfg.machines = machines;
      cfg.n = 128;
      const apps::RunResult rc = apps::run_lu(codegen::OptLevel::Class, cfg);
      const apps::RunResult ra =
          apps::run_lu(codegen::OptLevel::SiteReuseCycle, cfg);
      RMIOPT_CHECK(rc.check < 1e-8 && ra.check < 1e-8, "LU wrong result");
      t.add_row({std::to_string(machines),
                 fmt_fixed(rc.makespan.as_seconds(), 4),
                 fmt_fixed(ra.makespan.as_seconds(), 4),
                 fmt_gain(rc.makespan.as_seconds(),
                          ra.makespan.as_seconds())});
    }
    std::printf("Ablation: LU machine scaling (128x128, residual "
                "verified)\n%s",
                t.render().c_str());
    std::printf("\nNote: with a fixed matrix the per-step pivot broadcast "
                "grows with the machine count — the classic surface-to-"
                "volume communication effect.\n");
  }
  return 0;
}
