// Ablation: the transport backend and the session layer's ACK coalescing.
//
// Part 1 — backend equivalence.  The layered stack charges virtual time in
// Transport::charge_and_schedule, shared by every backend, so swapping the
// byte-framing SimTransport for the struct-passing LoopbackTransport must
// not move a single makespan.  We run the deterministic applications
// (linked list, Table 1; web server, Table 7) under both and print the
// difference, which a correct build shows as exactly zero.
//
// Part 2 — ACK coalescing (§3.1: "combining micro messages").  The session
// layer can hold back small non-Call messages and ship several per frame.
// A synthetic stream of ACKs shows what coalescing buys on the GM model:
// one send overhead + one wire latency per *frame* instead of per message.
#include <cstdio>

#include "apps/microbench.hpp"
#include "apps/webserver.hpp"
#include "bench/bench_common.hpp"
#include "net/cluster.hpp"

using namespace rmiopt;

namespace {

double run_list(codegen::OptLevel level, net::TransportKind kind) {
  apps::ListBenchConfig cfg;
  cfg.transport = kind;
  return apps::run_list_bench(level, cfg).makespan.as_seconds();
}

double run_web(codegen::OptLevel level, net::TransportKind kind) {
  apps::WebserverConfig cfg;
  cfg.requests = 200;
  cfg.transport = kind;
  return apps::run_webserver(level, cfg).makespan.as_seconds();
}

// Sends `count` bare ACKs 0 -> 1 through a cluster configured with the
// given per-link batch budget and reports the resulting network stats.
net::NetworkStats::Snapshot ack_stream(std::size_t batch, std::size_t count,
                                       SimTime* makespan) {
  om::TypeRegistry types;
  wire::SessionConfig session;
  session.max_batch_messages = batch;
  net::Cluster cluster(2, types, serial::CostModel{},
                       net::TransportKind::Sim, session);
  for (std::size_t i = 0; i < count; ++i) {
    wire::Message ack;
    ack.header.kind = wire::MsgKind::Ack;
    ack.header.seq = static_cast<std::uint32_t>(i);
    ack.header.source_machine = 0;
    ack.header.dest_machine = 1;
    cluster.send(std::move(ack));
  }
  cluster.flush();  // seal any partially filled batch
  for (std::size_t i = 0; i < count; ++i) {
    (void)cluster.machine(1).receive_blocking();
  }
  *makespan = cluster.makespan();
  return cluster.stats();
}

}  // namespace

int main() {
  using codegen::OptLevel;

  std::printf("Part 1: SimTransport vs LoopbackTransport (must be equal)\n");
  TextTable eq({"application", "level", "sim (s)", "loopback (s)", "delta"});
  for (OptLevel level : {OptLevel::Class, OptLevel::SiteReuseCycle}) {
    const double ls = run_list(level, net::TransportKind::Sim);
    const double ll = run_list(level, net::TransportKind::Loopback);
    eq.add_row({"linked list", std::string(codegen::to_string(level)),
                fmt_fixed(ls, 6), fmt_fixed(ll, 6), fmt_fixed(ls - ll, 6)});
    const double ws = run_web(level, net::TransportKind::Sim);
    const double wl = run_web(level, net::TransportKind::Loopback);
    eq.add_row({"web server", std::string(codegen::to_string(level)),
                fmt_fixed(ws, 6), fmt_fixed(wl, 6), fmt_fixed(ws - wl, 6)});
  }
  std::printf("%s\n", eq.render().c_str());

  std::printf("Part 2: session-layer ACK coalescing (1024 ACKs, 0 -> 1)\n");
  TextTable co({"batch budget", "frames", "coalesced msgs", "wire bytes",
                "makespan (us)"});
  for (const std::size_t batch : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}, std::size_t{32}}) {
    SimTime makespan;
    const net::NetworkStats::Snapshot s = ack_stream(batch, 1024, &makespan);
    co.add_row({std::to_string(batch), std::to_string(s.frames),
                std::to_string(s.coalesced), std::to_string(s.bytes),
                fmt_fixed(makespan.as_micros(), 1)});
  }
  std::printf("%s\n", co.render().c_str());
  std::printf(
      "Charged payload bytes are identical; batching amortizes the per-frame\n"
      "send overhead and wire latency across the coalesced messages.\n");
  return 0;
}
