// Table 8: web server runtime statistics, 2 CPUs.
//
// Expected shape (paper): with reuse "no new objects are created after
// the first webpage has been retrieved" — allocation volume drops to ~0;
// cycle elision removes all lookups.
#include "apps/webserver.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 8 (Webserver: runtime statistics, 2 CPU's)",
      {"opt                   reused objs  local rpcs  remote rpcs  new(MB) "
       " cycle lookups",
       "class                 0            500.007     500.003      226.94  "
       " 5.000.004",
       "site                  0            500.007     500.003      165.90  "
       " 3.500.003",
       "site + cycle          0            500.007     500.003      165.90  "
       " 3",
       "site + reuse          3.499.988    500.007     500.003      0.0     "
       " 3.500.003",
       "site + reuse + cycle  3.499.988    500.007     500.003      0.0     "
       " 3"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_webserver_model();
  driver::PassManager pm;
  apps::WebserverConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.requests = 2000;
  const auto runs = bench::run_levels(
      [&](bench::OptLevel l) { return apps::run_webserver(l, cfg); });
  bench::print_stats_table(
      "Reproduction: webserver, 2000 requests, 2 machines", runs);
  bench::print_compile_table(runs);
  return 0;
}
