// Table 8: web server runtime statistics, 2 CPUs.
//
// Expected shape (paper): with reuse "no new objects are created after
// the first webpage has been retrieved" — allocation volume drops to ~0;
// cycle elision removes all lookups.
#include "apps/webserver.hpp"
#include "bench/bench_common.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 8 (Webserver: runtime statistics, 2 CPU's)",
      {"opt                   reused objs  local rpcs  remote rpcs  new(MB) "
       " cycle lookups",
       "class                 0            500.007     500.003      226.94  "
       " 5.000.004",
       "site                  0            500.007     500.003      165.90  "
       " 3.500.003",
       "site + cycle          0            500.007     500.003      165.90  "
       " 3",
       "site + reuse          3.499.988    500.007     500.003      0.0     "
       " 3.500.003",
       "site + reuse + cycle  3.499.988    500.007     500.003      0.0     "
       " 3"});

  apps::WebserverConfig cfg;
  cfg.requests = 2000;
  const auto runs = bench::run_levels(
      [&](bench::OptLevel l) { return apps::run_webserver(l, cfg); });
  bench::print_stats_table(
      "Reproduction: webserver, 2000 requests, 2 machines", runs);
  return 0;
}
