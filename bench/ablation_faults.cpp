// Ablation: fault injection vs the optimization levels.
//
// Sweeps the per-link drop probability (with matching duplicate/reorder/
// corrupt rates riding along) over the 2-D array microbenchmark at every
// paper optimization level and reports the virtual makespan.  Two things
// to read off the table:
//
//  * correctness — the application check value never moves: the session
//    ARQ plus the receive-side dedup window mask every injected fault, at
//    every optimization level, so the columns only get *slower*, never
//    wrong;
//  * proportion — the optimized levels send the same number of frames but
//    far fewer bytes, so the absolute retransmit tax shrinks with the
//    same optimizations that shrink the healthy runtime.
#include <cstdio>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;

namespace {

apps::RunResult run_at(codegen::OptLevel level, double drop) {
  apps::ArrayBenchConfig cfg;
  cfg.iterations = 50;
  cfg.faults.seed = 1234;
  cfg.faults.default_link.drop = drop;
  cfg.faults.default_link.duplicate = drop / 2;
  cfg.faults.default_link.reorder = drop / 2;
  cfg.faults.default_link.corrupt = drop / 4;
  return apps::run_array_bench(level, cfg);
}

}  // namespace

int main() {
  constexpr double kRates[] = {0.0, 0.02, 0.05, 0.10, 0.20};

  std::printf(
      "fault sweep: 16x16 double[][] x50, seeded drop/dup/reorder/corrupt\n"
      "(cells: virtual makespan in ms; check value verified unchanged)\n\n");
  TextTable t({"drop rate", "class", "site", "site+cycle", "site+reuse",
               "site+reuse+cycle", "retrans", "faults"});
  double baseline_check = -1.0;
  for (const double rate : kRates) {
    std::vector<std::string> row{fmt_fixed(rate, 2)};
    std::uint64_t retrans = 0, faults = 0;
    for (codegen::OptLevel level : codegen::kPaperLevels) {
      const apps::RunResult r = run_at(level, rate);
      if (baseline_check < 0) baseline_check = r.check;
      RMIOPT_CHECK(r.check == baseline_check,
                   "fault injection changed an application result");
      row.push_back(fmt_fixed(r.makespan.as_seconds() * 1e3, 3));
      retrans += r.net.retransmits;
      faults += r.net.faults();
    }
    row.push_back(std::to_string(retrans));
    row.push_back(std::to_string(faults));
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Every cell completed with the same application check value: the ARQ\n"
      "and dedup window mask the injected faults; they only cost time.\n");
  return 0;
}
