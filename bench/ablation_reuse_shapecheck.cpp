// Ablation: the reuse cache's runtime shape check (Figure 13).
//
// Reuse only pays off when consecutive messages match the cached graph's
// types and array sizes.  Alternating two different row lengths defeats
// the check on every call: rows reallocate, the gain evaporates — but
// correctness is unaffected (the mismatch path allocates fresh arrays).
#include <cstdio>

#include "apps/microbench.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;

int main() {
  apps::ArrayBenchConfig stable;
  stable.iterations = 500;
  apps::ArrayBenchConfig varying = stable;
  varying.alternate_cols = 8;  // every other message: 16x8 instead of 16x16

  TextTable t({"workload", "level", "seconds", "objects reused",
               "objects allocated"});
  for (const bool vary : {false, true}) {
    const auto& cfg = vary ? varying : stable;
    for (const auto level :
         {codegen::OptLevel::Site, codegen::OptLevel::SiteReuse}) {
      const apps::RunResult r = apps::run_array_bench(level, cfg);
      t.add_row({vary ? "alternating 16x16 / 16x8" : "stable 16x16",
                 std::string(codegen::to_string(level)),
                 fmt_fixed(r.makespan.as_seconds(), 4),
                 std::to_string(r.total.serial.objects_reused),
                 std::to_string(r.total.serial.objects_allocated)});
    }
  }
  std::printf("Ablation: reuse shape check (Fig. 13 mismatch path), "
              "500 RMIs\n%s",
              t.render().c_str());
  std::printf("\nWith alternating shapes only the outer array (matching "
              "length 16) is reused; all 16 rows reallocate per call, as "
              "Figure 13's size check dictates.\n");
  return 0;
}
