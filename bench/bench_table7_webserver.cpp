// Table 7: web server, microseconds per webpage retrieval, 2 CPUs.
//
// Expected shape (paper): ~18% from call-site-specific marshalers, ~18%
// more from cycle elision (every page body is probed per request
// otherwise), reuse contributes via allocation elimination; total ~37%.
#include "apps/webserver.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 7 (Webserver: microseconds per webpage retrieval, 2 CPU's)",
      {"class                 47.7   0%", "site                  39.2   17.8%",
       "site + cycle          30.9   35.2%",
       "site + reuse          38.0   20.3%",
       "site + reuse + cycle  29.7   37.7%"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_webserver_model();
  driver::PassManager pm;
  apps::WebserverConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.requests = 2000;
  const auto runs = bench::run_levels([&](bench::OptLevel l) {
    const apps::RunResult r = apps::run_webserver(l, cfg);
    RMIOPT_CHECK(r.check ==
                     static_cast<double>(cfg.requests * cfg.page_size),
                 "webserver dropped page bytes");
    return r;
  });

  std::printf(
      "Reproduction: %zu requests, %zu-byte pages, 2 machines "
      "(virtual microseconds per webpage)\n",
      cfg.requests, cfg.page_size);
  TextTable t({"Compiler Optimization", "us per Webpage", "gain on 'class'"});
  const double base =
      runs.front().result.makespan.as_micros() / cfg.requests;
  for (const auto& run : runs) {
    const double us = run.result.makespan.as_micros() / cfg.requests;
    t.add_row({std::string(codegen::to_string(run.level)), fmt_fixed(us, 2),
               fmt_gain(base, us)});
  }
  std::printf("%s\n", t.render().c_str());
  bench::print_compile_table(runs);
  return 0;
}
