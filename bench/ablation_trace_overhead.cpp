// Ablation: tracing overhead and fidelity.
//
// The trace recorder is attached behind a null-pointer hook, so the claim
// to verify is twofold:
//
//  * zero simulation overhead — attaching a recorder must not move a
//    single virtual nanosecond or statistics counter: the simulation is
//    unchanged, only observed.  Every off/on pair below is asserted
//    identical (makespan, RMI stats, network stats); the table reports
//    the *real* wall-clock cost of buffering the events, which is the
//    only price tracing pays.
//  * fidelity under faults — a faulty webserver run must show its
//    retransmits and duplicate-suppression verdicts as events on the
//    affected link, matching the network counters.
//
// With a path argument, the faulty webserver's Chrome trace JSON is
// written there (load in chrome://tracing or ui.perfetto.dev; CI
// validates the schema and per-track timestamp monotonicity).
#include <chrono>
#include <cstdio>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/webserver.hpp"
#include "bench/bench_common.hpp"

using namespace rmiopt;
using Clock = std::chrono::steady_clock;

namespace {

struct OffOn {
  apps::RunResult off;
  apps::RunResult on;
  double off_ms = 0.0;  // real wall time, recorder detached
  double on_ms = 0.0;   // real wall time, recorder attached
  std::size_t events = 0;
};

double real_ms(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

// Runs `runner` once without and once with a recorder and asserts the
// simulation did not move.  `deterministic` is false for runs whose
// makespan is scheduling-sensitive even without tracing (LU's GM wakeup
// heuristic); those only assert the statistics.
template <typename Runner>
OffOn measure(const char* name, Runner runner, trace::MemoryRecorder& rec,
              bool deterministic = true) {
  OffOn r;
  const auto t0 = Clock::now();
  r.off = runner(nullptr);
  const auto t1 = Clock::now();
  r.on = runner(&rec);
  const auto t2 = Clock::now();
  r.off_ms = real_ms(t0, t1);
  r.on_ms = real_ms(t1, t2);
  r.events = rec.size();
  if (deterministic) {
    RMIOPT_CHECK(r.off.makespan == r.on.makespan,
                 std::string(name) + ": tracing moved the virtual makespan");
    RMIOPT_CHECK(r.off.net == r.on.net,
                 std::string(name) + ": tracing moved the network counters");
  }
  RMIOPT_CHECK(r.off.total == r.on.total,
               std::string(name) + ": tracing moved the RMI statistics");
  RMIOPT_CHECK(r.off.check == r.on.check,
               std::string(name) + ": tracing changed an application result");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const codegen::OptLevel level = codegen::OptLevel::SiteReuseCycle;

  std::printf(
      "tracing ablation: identical simulation with the recorder attached\n"
      "(cells: virtual makespan ms | real run ms off/on | events)\n\n");

  TextTable t({"workload", "virtual (ms)", "real off (ms)", "real on (ms)",
               "events"});

  trace::MemoryRecorder list_rec;
  const OffOn list = measure(
      "linkedlist",
      [&](trace::Recorder* rec) {
        apps::ListBenchConfig cfg;
        cfg.recorder = rec;
        return apps::run_list_bench(level, cfg);
      },
      list_rec);
  t.add_row({"linkedlist x100", fmt_fixed(list.on.makespan.as_seconds() * 1e3, 3),
             fmt_fixed(list.off_ms, 1), fmt_fixed(list.on_ms, 1),
             std::to_string(list.events)});

  trace::MemoryRecorder lu_rec;
  const OffOn lu = measure(
      "lu",
      [&](trace::Recorder* rec) {
        apps::LuConfig cfg;
        cfg.n = 64;
        cfg.recorder = rec;
        return apps::run_lu(level, cfg);
      },
      lu_rec, /*deterministic=*/false);
  t.add_row({"lu 64x64", fmt_fixed(lu.on.makespan.as_seconds() * 1e3, 3),
             fmt_fixed(lu.off_ms, 1), fmt_fixed(lu.on_ms, 1),
             std::to_string(lu.events)});

  trace::MemoryRecorder web_rec;
  const OffOn web = measure(
      "webserver",
      [&](trace::Recorder* rec) {
        apps::WebserverConfig cfg;
        cfg.requests = 200;
        cfg.recorder = rec;
        return apps::run_webserver(level, cfg);
      },
      web_rec);
  t.add_row({"webserver x200", fmt_fixed(web.on.makespan.as_seconds() * 1e3, 3),
             fmt_fixed(web.off_ms, 1), fmt_fixed(web.on_ms, 1),
             std::to_string(web.events)});

  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Every row ran twice; makespan, RMI stats and network counters were\n"
      "asserted identical with and without the recorder (LU: stats only —\n"
      "its makespan is scheduling-sensitive with or without tracing).\n\n");

  // ---- fidelity under faults ----------------------------------------------
  trace::MemoryRecorder faulty_rec;
  apps::WebserverConfig fcfg;
  fcfg.requests = 300;
  fcfg.faults.seed = 99;
  fcfg.faults.set_link(0, 1, {.drop = 0.05, .duplicate = 0.05});
  fcfg.recorder = &faulty_rec;
  const apps::RunResult faulty = apps::run_webserver(level, fcfg);

  const auto retrans = faulty_rec.events_of(trace::EventKind::Retransmit);
  const auto dedup = faulty_rec.events_of(trace::EventKind::DedupDrop);
  std::size_t retrans_01 = 0, dedup_01 = 0;
  for (const auto& e : retrans) retrans_01 += e.machine == 0 && e.peer == 1;
  for (const auto& e : dedup) dedup_01 += e.machine == 0 && e.peer == 1;
  std::printf(
      "faulty webserver (5%% drop + 5%% duplicate on link 0->1, seed 99):\n"
      "  net counters: %llu retransmits, %llu dedup hits\n"
      "  trace events: %zu retransmit spans (%zu on 0->1), "
      "%zu dedup drops (%zu on 0->1)\n",
      static_cast<unsigned long long>(faulty.net.retransmits),
      static_cast<unsigned long long>(faulty.net.dedup_hits),
      retrans.size(), retrans_01, dedup.size(), dedup_01);
  RMIOPT_CHECK(faulty.net.retransmits == 0 || retrans_01 > 0,
               "retransmits occurred but none were traced on link 0->1");
  RMIOPT_CHECK(faulty.net.dedup_hits == 0 || dedup_01 > 0,
               "dedup hits occurred but none were traced on link 0->1");
  RMIOPT_CHECK(retrans.size() == faulty.net.retransmits,
               "traced retransmit spans != network retransmit counter");

  bench::print_callsite_profile("\nper-call-site profile (faulty webserver):",
                                faulty_rec);

  if (argc > 1) {
    if (bench::write_chrome_trace(argv[1], faulty_rec)) {
      std::printf("wrote Chrome trace: %s\n", argv[1]);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
  }
  return 0;
}
