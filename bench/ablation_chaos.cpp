// Chaos soak sweep: seeded fault plans (lossy links + a crashed webserver
// slave) across every application and every paper optimization level,
// with the heartbeat failure detector enabled.
//
// Same harness as tests/chaos_soak_test.cpp, scaled out: the test pins a
// small fixed seed set for the tier-1 suite; this binary sweeps
// RMIOPT_CHAOS_SEEDS consecutive seeds (default 10, CI passes more on
// manual dispatch) starting at RMIOPT_CHAOS_BASE_SEED (default 1).
//
// Invariants per (app, level, seed), against a clean same-config run:
//  * check value unchanged — no handler double-execution, no lost work;
//  * virtual makespan bounded — faults cost time, never livelock.
//
// On a violation the binary re-runs the failing config with tracing on,
// writes the Chrome trace to RMIOPT_CHAOS_TRACE (default
// chaos_failure_trace.json, uploaded as a CI artifact) and aborts with
// the reproducing (app, level, seed) in the message.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/lu.hpp"
#include "apps/microbench.hpp"
#include "apps/superopt.hpp"
#include "apps/webserver.hpp"
#include "bench/bench_common.hpp"
#include "support/rng.hpp"

using namespace rmiopt;
using codegen::OptLevel;

namespace {

// Keep in sync with tests/chaos_soak_test.cpp: same generator, so a seed
// that fails here reproduces under the test harness too.
net::FaultPlan chaos_plan(std::uint64_t seed, std::size_t machines,
                          bool allow_crash) {
  net::FaultPlan plan;
  plan.seed = seed;
  SplitMix64 rng(seed ^ 0x9e3779b97f4a7c15ull);
  plan.default_link.drop = 0.06 * rng.next_double();
  plan.default_link.duplicate = 0.05 * rng.next_double();
  plan.default_link.reorder = 0.05 * rng.next_double();
  plan.default_link.corrupt = 0.04 * rng.next_double();
  if (allow_crash && machines > 2) {
    const auto victim = static_cast<std::uint16_t>(
        1 + rng.next_below(static_cast<std::uint64_t>(machines) - 1));
    const auto at = static_cast<std::int64_t>(
        200'000 + rng.next_below(2'000'000));
    plan.crash_at(victim, at);
  }
  return plan;
}

net::FailureDetectorConfig chaos_detector() {
  net::FailureDetectorConfig d;
  d.enabled = true;
  return d;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::strtoull(v, nullptr, 10)
                                    : fallback;
}

struct ChaosApp {
  const char* name;
  std::size_t machines;
  bool allow_crash;
  // Runs the app at `level` under `plan`; a recorder re-runs a failure
  // with tracing on.
  std::function<apps::RunResult(OptLevel, const net::FaultPlan&,
                                const net::FailureDetectorConfig&,
                                trace::Recorder*)>
      run;
};

std::vector<ChaosApp> make_apps() {
  std::vector<ChaosApp> apps;
  apps.push_back({"list", 2, false,
                  [](OptLevel level, const net::FaultPlan& plan,
                     const net::FailureDetectorConfig& det,
                     trace::Recorder* rec) {
                    apps::ListBenchConfig cfg;
                    cfg.list_length = 16;
                    cfg.iterations = 6;
                    cfg.faults = plan;
                    cfg.detector = det;
                    cfg.recorder = rec;
                    return run_list_bench(level, cfg);
                  }});
  apps.push_back({"array", 2, false,
                  [](OptLevel level, const net::FaultPlan& plan,
                     const net::FailureDetectorConfig& det,
                     trace::Recorder* rec) {
                    apps::ArrayBenchConfig cfg;
                    cfg.rows = 8;
                    cfg.cols = 8;
                    cfg.iterations = 6;
                    cfg.faults = plan;
                    cfg.detector = det;
                    cfg.recorder = rec;
                    return run_array_bench(level, cfg);
                  }});
  apps.push_back({"lu", 2, false,
                  [](OptLevel level, const net::FaultPlan& plan,
                     const net::FailureDetectorConfig& det,
                     trace::Recorder* rec) {
                    apps::LuConfig cfg;
                    cfg.n = 20;
                    cfg.faults = plan;
                    cfg.detector = det;
                    cfg.recorder = rec;
                    return run_lu(level, cfg);
                  }});
  apps.push_back({"superopt", 3, false,
                  [](OptLevel level, const net::FaultPlan& plan,
                     const net::FailureDetectorConfig& det,
                     trace::Recorder* rec) {
                    apps::SuperoptConfig cfg;
                    cfg.max_len = 1;
                    cfg.test_vectors = 4;
                    cfg.machines = 3;
                    cfg.faults = plan;
                    cfg.detector = det;
                    cfg.recorder = rec;
                    return run_superopt(level, cfg);
                  }});
  apps.push_back({"webserver", 4, true,
                  [](OptLevel level, const net::FaultPlan& plan,
                     const net::FailureDetectorConfig& det,
                     trace::Recorder* rec) {
                    apps::WebserverConfig cfg;
                    cfg.machines = 4;
                    cfg.pages = 8;
                    cfg.page_size = 128;
                    cfg.requests = 30;
                    cfg.call_timeout_ms = 5'000;
                    cfg.faults = plan;
                    cfg.detector = det;
                    cfg.recorder = rec;
                    return run_webserver(level, cfg);
                  }});
  return apps;
}

// Dumps a traced re-run of the failing config so CI can attach it.
void dump_failure_trace(const ChaosApp& app, OptLevel level,
                        const net::FaultPlan& plan) {
  const char* path = std::getenv("RMIOPT_CHAOS_TRACE");
  if (path == nullptr || *path == '\0') path = "chaos_failure_trace.json";
  trace::MemoryRecorder rec;
  try {
    app.run(level, plan, chaos_detector(), &rec);
  } catch (const Error&) {
    // The re-run may throw where the invariant run merely mis-counted;
    // the partial trace is still the artifact we want.
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return;
  const std::string json = chrome_trace_json(rec.events());
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "chaos: failing-run trace written to %s\n", path);
}

}  // namespace

int main() {
  const std::uint64_t seeds = env_u64("RMIOPT_CHAOS_SEEDS", 10);
  const std::uint64_t base = env_u64("RMIOPT_CHAOS_BASE_SEED", 1);
  const auto apps = make_apps();

  std::printf(
      "chaos soak: %llu seeds x %zu apps x %zu levels, detector on\n"
      "(seeded lossy links everywhere; webserver also crashes one slave)\n\n",
      static_cast<unsigned long long>(seeds), apps.size(),
      std::size(codegen::kPaperLevels));

  TextTable t({"app", "runs", "faults", "retrans", "deaths",
                      "failovers", "max slowdown"});
  for (const ChaosApp& app : apps) {
    std::uint64_t runs = 0, faults = 0, retrans = 0, deaths = 0,
                  failovers = 0;
    double max_slowdown = 1.0;
    for (OptLevel level : codegen::kPaperLevels) {
      const apps::RunResult clean =
          app.run(level, net::FaultPlan{}, {}, nullptr);
      for (std::uint64_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = base + s;
        const net::FaultPlan plan =
            chaos_plan(seed, app.machines, app.allow_crash);
        const apps::RunResult r =
            app.run(level, plan, chaos_detector(), nullptr);
        ++runs;
        faults += r.net.faults();
        retrans += r.net.retransmits;
        deaths += r.net.machine_deaths;
        failovers += r.failovers;
        const std::string where =
            std::string("app=") + app.name +
            " level=" + std::string(to_string(level)) +
            " seed=" + std::to_string(seed);
        const bool check_ok = r.check == clean.check;
        const bool time_ok =
            r.makespan.as_nanos() <=
            20 * clean.makespan.as_nanos() + 100'000'000;
        if (!check_ok || !time_ok) dump_failure_trace(app, level, plan);
        RMIOPT_CHECK(check_ok,
                     "chaos changed the application result (" + where + ")");
        RMIOPT_CHECK(time_ok, "makespan unbounded under chaos (" + where +
                                  ": " +
                                  std::to_string(r.makespan.as_nanos()) +
                                  " ns vs clean " +
                                  std::to_string(clean.makespan.as_nanos()) +
                                  " ns)");
        if (clean.makespan.as_nanos() > 0) {
          max_slowdown = std::max(
              max_slowdown, static_cast<double>(r.makespan.as_nanos()) /
                                static_cast<double>(clean.makespan.as_nanos()));
        }
      }
    }
    t.add_row({app.name, std::to_string(runs), std::to_string(faults),
               std::to_string(retrans), std::to_string(deaths),
               std::to_string(failovers), fmt_fixed(max_slowdown, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Every run finished with its clean-run check value and a bounded\n"
      "makespan: at-most-once admission, ARQ recovery, fast-fail routing\n"
      "and name-service failover masked every injected fault.\n");
  return 0;
}
