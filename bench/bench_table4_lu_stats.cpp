// Table 4: LU runtime statistics, 1024 matrix, 2 CPUs (reproduced at
// n=256).
//
// Expected shape (paper): rpc counts identical across levels; reuse
// recycles most deserialized objects and cuts "new (MBytes)" to a
// quarter; cycle elision drops cycle lookups to (almost) zero.
#include "apps/lu.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 4 (LU: runtime statistics 1024 matrix, 2 CPU's)",
      {"opt                   reused objs  local rpcs  remote rpcs  new(MB) "
       " cycle lookups",
       "class                 0            545.192     538.006      348.14  "
       " 176.998",
       "site                  0            545.192     538.006      348.14  "
       " 176.866",
       "site + cycle          0            545.192     538.006      348.14  "
       " 2",
       "site + reuse          132.645      545.192     538.006      87.04   "
       " 176.866",
       "site + reuse + cycle  132.645      545.192     538.006      87.04   "
       " 2"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_lu_model();
  driver::PassManager pm;
  apps::LuConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.n = 256;
  const auto runs = bench::run_levels(
      [&](bench::OptLevel l) { return apps::run_lu(l, cfg); });
  bench::print_stats_table("Reproduction: LU 256x256, 2 machines", runs);
  bench::print_compile_table(runs);
  return 0;
}
