// Google-benchmark microbenchmarks for the *compiler* itself: heap
// analysis fixpoint, cycle/escape queries, and full compilation of the
// application models.  Real wall clock — the analyses must stay cheap
// enough to run per call site, which is the premise of §3.1.
#include <benchmark/benchmark.h>

#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"

namespace {

using namespace rmiopt;
using apps::figures::FigureProgram;

void BM_HeapAnalysisLu(benchmark::State& state) {
  FigureProgram p = apps::figures::make_lu_model();
  for (auto _ : state) {
    analysis::HeapAnalysis heap(*p.module);
    heap.run();
    benchmark::DoNotOptimize(heap.node_count());
  }
}
BENCHMARK(BM_HeapAnalysisLu);

void BM_HeapAnalysisRmiLoop(benchmark::State& state) {
  // Figure 3: the tuple-rule fixpoint with boundary cloning.
  FigureProgram p = apps::figures::make_figure3();
  for (auto _ : state) {
    analysis::HeapAnalysis heap(*p.module);
    heap.run();
    benchmark::DoNotOptimize(heap.iterations());
  }
}
BENCHMARK(BM_HeapAnalysisRmiLoop);

void BM_CompileSuperoptModel(benchmark::State& state) {
  FigureProgram p = apps::figures::make_superopt_model();
  for (auto _ : state) {
    driver::CompiledProgram prog =
        driver::compile(*p.module, codegen::OptLevel::SiteReuseCycle);
    benchmark::DoNotOptimize(prog.sites.size());
  }
}
BENCHMARK(BM_CompileSuperoptModel);

void BM_CompileWebserverAllLevels(benchmark::State& state) {
  FigureProgram p = apps::figures::make_webserver_model();
  for (auto _ : state) {
    for (const auto level : codegen::kPaperLevels) {
      driver::CompiledProgram prog = driver::compile(*p.module, level);
      benchmark::DoNotOptimize(prog.sites.size());
    }
  }
}
BENCHMARK(BM_CompileWebserverAllLevels);

void BM_CompilePreciseCycles(benchmark::State& state) {
  // The refinement scans every store in the module: measure its overhead.
  FigureProgram p = apps::figures::make_figure14();
  for (auto _ : state) {
    driver::CompiledProgram prog = driver::compile(
        *p.module, codegen::OptLevel::SiteReuseCycle,
        driver::CompileOptions{.precise_cycles = true});
    benchmark::DoNotOptimize(prog.sites.size());
  }
}
BENCHMARK(BM_CompilePreciseCycles);

void BM_PlanClone(benchmark::State& state) {
  FigureProgram p = apps::figures::make_superopt_model();
  driver::CompiledProgram prog =
      driver::compile(*p.module, codegen::OptLevel::SiteReuseCycle);
  const auto& plan = *prog.site(p.tag("test")).plan;
  for (auto _ : state) {
    auto copy = plan.clone();
    benchmark::DoNotOptimize(copy->args.size());
  }
}
BENCHMARK(BM_PlanClone);

}  // namespace

BENCHMARK_MAIN();
