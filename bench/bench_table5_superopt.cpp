// Table 5: superoptimizer exhaustive-search runtime, 2 CPUs.
//
// Expected shape (paper): cycle-detection elision is the dominant win for
// this application (~12.7% of the 19.4% total) because every candidate
// program is a ~10-object graph whose every node is probed; reuse adds
// nothing (the queued candidates escape).
#include "apps/superopt.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 5 (Superoptimizer: seconds for the exhaustive search, 2 CPU's)",
      {"class                 400.03   0%", "site                  373.22   6.7%",
       "site + cycle          322.52   19.3%",
       "site + reuse          375.47   6.1%",
       "site + reuse + cycle  322.06   19.4%"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_superopt_model();
  driver::PassManager pm;
  apps::SuperoptConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.max_len = 2;
  const auto runs = bench::run_levels([&](bench::OptLevel l) {
    const apps::RunResult r = apps::run_superopt(l, cfg);
    RMIOPT_CHECK(r.check >= 2.0, "superoptimizer lost known equivalences");
    return r;
  });
  bench::print_runtime_table(
      "Reproduction: exhaustive search over <=2-instruction sequences, "
      "2 machines (virtual seconds; equivalences verified)",
      runs);
  std::printf("equivalent sequences found: %.0f\n", runs[0].result.check);
  bench::print_compile_table(runs);
  return 0;
}
