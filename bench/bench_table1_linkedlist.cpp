// Table 1: LinkedList transmission, 100 elements, 2 CPUs.
//
// Expected shape (paper): 'site' gains ~13% over 'class'; '+cycle' adds
// nothing (the list is conservatively kept cyclic, §7); '+reuse' is the
// big win (~43%) because 100 allocations per RMI are saved.
#include "apps/microbench.hpp"
#include "apps/paper_figures.hpp"
#include "bench/bench_common.hpp"
#include "driver/pass_manager.hpp"

int main() {
  using namespace rmiopt;
  bench::print_paper_reference(
      "Table 1 (LinkedList: 100 elements, 2 CPU's)",
      {"class                 161.5   0", "site                  140.4   13.0%",
       "site + cycle          140.5   13.0%",
       "site + reuse           91.5   43.3%",
       "site + reuse + cycle   91.5   43.3%"});

  // One shared model + pass manager for the whole level sweep: the
  // analyses run once and every level's plan generation reuses them.
  apps::figures::FigureProgram model = apps::figures::make_figure14();
  driver::PassManager pm;
  apps::ListBenchConfig cfg;
  cfg.model = &model;
  cfg.pass_manager = &pm;
  cfg.list_length = 100;
  cfg.iterations = 1000;
  const auto runs = bench::run_levels(
      [&](bench::OptLevel l) { return apps::run_list_bench(l, cfg); });
  bench::print_runtime_table(
      "Reproduction: LinkedList, 100 elements, 1000 RMIs, 2 machines "
      "(virtual seconds)",
      runs);
  bench::print_compile_table(runs);
  return 0;
}
