// Google-benchmark microbenchmarks: *real wall-clock* throughput of the
// three serializer families on this machine.
//
// These complement the table benches (which report deterministic virtual
// time): they demonstrate that the generated-code *structure* itself —
// independent of the calibrated cost model — favors call-site plans: no
// per-object dispatch, no type info, no cycle probes; and that in-place
// reuse beats fresh allocation on deserialization.
#include <benchmark/benchmark.h>

#include "objmodel/heap.hpp"
#include "serial/class_plans.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace {

using namespace rmiopt;

struct Fixture {
  om::TypeRegistry types;
  serial::ClassPlanRegistry class_plans{types};
  om::Heap heap{types};
  om::ClassId row = om::kNoClass;
  om::ClassId mat = om::kNoClass;
  om::ObjRef matrix = nullptr;
  std::unique_ptr<serial::NodePlan> site_plan;

  Fixture() {
    row = types.register_prim_array(om::TypeKind::Double);
    mat = types.register_ref_array(row);
    matrix = heap.alloc_array(mat, 16);
    for (std::uint32_t r = 0; r < 16; ++r) {
      om::ObjRef rr = heap.alloc_array(row, 16);
      auto e = rr->elems<double>();
      for (std::uint32_t c = 0; c < 16; ++c) e[c] = r * 16.0 + c;
      matrix->set_elem_ref(r, rr);
    }
    auto inner = std::make_unique<serial::NodePlan>();
    inner->expected_class = row;
    site_plan = std::make_unique<serial::NodePlan>();
    site_plan->expected_class = mat;
    site_plan->elem_plan = std::move(inner);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SerializeIntrospective(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    serial::SerialStats stats;
    serial::SerialWriter w(f.class_plans, stats, /*cycle_enabled=*/true);
    ByteBuffer out;
    w.write_introspective(out, f.matrix);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SerializeIntrospective);

void BM_SerializeClassSpecific(benchmark::State& state) {
  Fixture& f = fixture();
  auto root = serial::make_dynamic_node(f.mat);
  for (auto _ : state) {
    serial::SerialStats stats;
    serial::SerialWriter w(f.class_plans, stats, /*cycle_enabled=*/true);
    ByteBuffer out;
    w.write(out, *root, f.matrix);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SerializeClassSpecific);

void BM_SerializeCallSite(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    serial::SerialStats stats;
    serial::SerialWriter w(f.class_plans, stats, /*cycle_enabled=*/false);
    ByteBuffer out;
    w.write(out, *f.site_plan, f.matrix);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SerializeCallSite);

void BM_DeserializeCallSiteFresh(benchmark::State& state) {
  Fixture& f = fixture();
  serial::SerialStats ws;
  serial::SerialWriter w(f.class_plans, ws, false);
  ByteBuffer buf;
  w.write(buf, *f.site_plan, f.matrix);
  for (auto _ : state) {
    buf.rewind();
    serial::SerialStats rs;
    serial::SerialReader r(f.class_plans, f.heap, rs, false);
    om::ObjRef copy = r.read(buf, *f.site_plan);
    benchmark::DoNotOptimize(copy);
    f.heap.free_graph(copy);
  }
}
BENCHMARK(BM_DeserializeCallSiteFresh);

void BM_DeserializeCallSiteReusing(benchmark::State& state) {
  Fixture& f = fixture();
  serial::SerialStats ws;
  serial::SerialWriter w(f.class_plans, ws, false);
  ByteBuffer buf;
  w.write(buf, *f.site_plan, f.matrix);
  serial::SerialStats rs0;
  serial::SerialReader r0(f.class_plans, f.heap, rs0, false);
  om::ObjRef cached = r0.read(buf, *f.site_plan);
  for (auto _ : state) {
    buf.rewind();
    serial::SerialStats rs;
    serial::SerialReader r(f.class_plans, f.heap, rs, false);
    cached = r.read_reusing(buf, *f.site_plan, cached);
    benchmark::DoNotOptimize(cached);
  }
  f.heap.free_graph(cached);
}
BENCHMARK(BM_DeserializeCallSiteReusing);

void BM_CycleTableProbe(benchmark::State& state) {
  Fixture& f = fixture();
  std::vector<om::ObjRef> objs;
  for (int i = 0; i < 256; ++i) objs.push_back(f.heap.alloc_array(f.row, 1));
  for (auto _ : state) {
    serial::CycleTable t(64);
    for (om::ObjRef o : objs) benchmark::DoNotOptimize(t.lookup_or_insert(o));
  }
  state.SetItemsProcessed(state.iterations() * 256);
  for (om::ObjRef o : objs) f.heap.free(o);
}
BENCHMARK(BM_CycleTableProbe);

}  // namespace

BENCHMARK_MAIN();
