// Google-benchmark microbenchmarks: *real wall-clock* throughput of the
// three serializer families on this machine.
//
// These complement the table benches (which report deterministic virtual
// time): they demonstrate that the generated-code *structure* itself —
// independent of the calibrated cost model — favors call-site plans: no
// per-object dispatch, no type info, no cycle probes; and that in-place
// reuse beats fresh allocation on deserialization.
#include <benchmark/benchmark.h>

#include "objmodel/heap.hpp"
#include "serial/class_plans.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace {

using namespace rmiopt;

struct Fixture {
  om::TypeRegistry types;
  serial::ClassPlanRegistry class_plans{types};
  om::Heap heap{types};
  om::ClassId row = om::kNoClass;
  om::ClassId mat = om::kNoClass;
  om::ObjRef matrix = nullptr;
  std::unique_ptr<serial::NodePlan> site_plan;

  Fixture() {
    row = types.register_prim_array(om::TypeKind::Double);
    mat = types.register_ref_array(row);
    matrix = heap.alloc_array(mat, 16);
    for (std::uint32_t r = 0; r < 16; ++r) {
      om::ObjRef rr = heap.alloc_array(row, 16);
      auto e = rr->elems<double>();
      for (std::uint32_t c = 0; c < 16; ++c) e[c] = r * 16.0 + c;
      matrix->set_elem_ref(r, rr);
    }
    auto inner = std::make_unique<serial::NodePlan>();
    inner->expected_class = row;
    site_plan = std::make_unique<serial::NodePlan>();
    site_plan->expected_class = mat;
    site_plan->elem_plan = std::move(inner);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_SerializeIntrospective(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    serial::SerialStats stats;
    serial::SerialWriter w(f.class_plans, stats, /*cycle_enabled=*/true);
    ByteBuffer out;
    w.write_introspective(out, f.matrix);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SerializeIntrospective);

void BM_SerializeClassSpecific(benchmark::State& state) {
  Fixture& f = fixture();
  auto root = serial::make_dynamic_node(f.mat);
  for (auto _ : state) {
    serial::SerialStats stats;
    serial::SerialWriter w(f.class_plans, stats, /*cycle_enabled=*/true);
    ByteBuffer out;
    w.write(out, *root, f.matrix);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SerializeClassSpecific);

void BM_SerializeCallSite(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    serial::SerialStats stats;
    serial::SerialWriter w(f.class_plans, stats, /*cycle_enabled=*/false);
    ByteBuffer out;
    w.write(out, *f.site_plan, f.matrix);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_SerializeCallSite);

void BM_DeserializeCallSiteFresh(benchmark::State& state) {
  Fixture& f = fixture();
  serial::SerialStats ws;
  serial::SerialWriter w(f.class_plans, ws, false);
  ByteBuffer buf;
  w.write(buf, *f.site_plan, f.matrix);
  for (auto _ : state) {
    buf.rewind();
    serial::SerialStats rs;
    serial::SerialReader r(f.class_plans, f.heap, rs, false);
    om::ObjRef copy = r.read(buf, *f.site_plan);
    benchmark::DoNotOptimize(copy);
    f.heap.free_graph(copy);
  }
}
BENCHMARK(BM_DeserializeCallSiteFresh);

void BM_DeserializeCallSiteReusing(benchmark::State& state) {
  Fixture& f = fixture();
  serial::SerialStats ws;
  serial::SerialWriter w(f.class_plans, ws, false);
  ByteBuffer buf;
  w.write(buf, *f.site_plan, f.matrix);
  serial::SerialStats rs0;
  serial::SerialReader r0(f.class_plans, f.heap, rs0, false);
  om::ObjRef cached = r0.read(buf, *f.site_plan);
  for (auto _ : state) {
    buf.rewind();
    serial::SerialStats rs;
    serial::SerialReader r(f.class_plans, f.heap, rs, false);
    cached = r.read_reusing(buf, *f.site_plan, cached);
    benchmark::DoNotOptimize(cached);
  }
  f.heap.free_graph(cached);
}
BENCHMARK(BM_DeserializeCallSiteReusing);

// ---- receive path: copy out vs borrow from the pinned frame ----------------
// One 8-row matrix whose row payload is Arg(0) bytes, decoded from a
// refcounted frame image.  The copy variant materializes rows into fresh
// inline storage; the borrow variant hands out spans into the pinned
// frame (what zero_copy_receive does for rows >= gather_min_borrow_bytes).
// Sweeping the row size shows where borrowing starts to win in real time —
// the wall-clock justification for the threshold default.

struct RecvFixture {
  om::TypeRegistry types;
  serial::ClassPlanRegistry class_plans{types};
  om::Heap heap{types};
  std::unique_ptr<serial::NodePlan> plan;
  std::shared_ptr<std::vector<std::uint8_t>> frame;

  explicit RecvFixture(std::uint32_t row_bytes) {
    const om::ClassId row = types.register_prim_array(om::TypeKind::Double);
    const om::ClassId mat = types.register_ref_array(row);
    const auto cols =
        static_cast<std::uint32_t>(row_bytes / sizeof(double));
    om::ObjRef m = heap.alloc_array(mat, 8);
    for (std::uint32_t r = 0; r < 8; ++r) {
      om::ObjRef rr = heap.alloc_array(row, cols);
      auto e = rr->elems<double>();
      for (std::uint32_t c = 0; c < cols; ++c) e[c] = r * 1000.0 + c;
      m->set_elem_ref(r, rr);
    }
    auto inner = std::make_unique<serial::NodePlan>();
    inner->expected_class = row;
    plan = std::make_unique<serial::NodePlan>();
    plan->expected_class = mat;
    plan->elem_plan = std::move(inner);

    serial::SerialStats ws;
    serial::SerialWriter w(class_plans, ws, false);
    ByteBuffer buf;
    w.write(buf, *plan, m);
    heap.free_graph(m);
    frame =
        std::make_shared<std::vector<std::uint8_t>>(std::move(buf).take());
  }
};

void deserialize_receive(benchmark::State& state, bool borrow) {
  RecvFixture f(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    ByteBuffer in = ByteBuffer::view(f.frame->data(), f.frame->size(), f.frame);
    serial::SerialStats rs;
    serial::SerialReader r(f.class_plans, f.heap, rs, false);
    if (borrow) r.enable_borrow(/*min_bytes=*/1);
    om::ObjRef copy = r.read(in, *f.plan);
    benchmark::DoNotOptimize(copy);
    f.heap.free_graph(copy);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(8 * state.range(0)));
}

void BM_DeserializeReceiveCopy(benchmark::State& state) {
  deserialize_receive(state, /*borrow=*/false);
}
BENCHMARK(BM_DeserializeReceiveCopy)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DeserializeReceiveBorrow(benchmark::State& state) {
  deserialize_receive(state, /*borrow=*/true);
}
BENCHMARK(BM_DeserializeReceiveBorrow)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_CycleTableProbe(benchmark::State& state) {
  Fixture& f = fixture();
  std::vector<om::ObjRef> objs;
  for (int i = 0; i < 256; ++i) objs.push_back(f.heap.alloc_array(f.row, 1));
  for (auto _ : state) {
    serial::CycleTable t(64);
    for (om::ObjRef o : objs) benchmark::DoNotOptimize(t.lookup_or_insert(o));
  }
  state.SetItemsProcessed(state.iterations() * 256);
  for (om::ObjRef o : objs) f.heap.free(o);
}
BENCHMARK(BM_CycleTableProbe);

}  // namespace

BENCHMARK_MAIN();
