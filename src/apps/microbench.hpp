// The paper's two microbenchmarks (§5.1):
//  * LinkedList transmission — Figure 14, Table 1,
//  * 2-D array (16x16 doubles) transmission — Figure 12, Table 2.
//
// Each run compiles the corresponding IR model at the requested level,
// installs the generated plans into a 2-machine cluster, and sends the
// structure `iterations` times from machine 0 to machine 1.
#pragma once

#include "apps/run_result.hpp"
#include "codegen/opt_level.hpp"
#include "net/failure_detector.hpp"
#include "net/transport.hpp"

namespace rmiopt::driver {
class PassManager;
}

namespace rmiopt::apps {

namespace figures {
struct FigureProgram;
}

struct ListBenchConfig {
  int list_length = 100;   // paper: 100 elements
  int iterations = 100;    // paper: benchmark routine run 100 times
  std::size_t machines = 2;
  // §7 future-work refinement: prove the list acyclic at compile time.
  bool precise_cycles = false;
  serial::CostModel cost{};
  net::TransportKind transport = net::TransportKind::Sim;
  std::size_t dispatch_workers = 1;
  net::FaultPlan faults{};  // seeded fault injection (inert by default)
  net::FailureDetectorConfig detector{};  // heartbeat failure detection (inert by default)
  // Optional trace recorder (nullptr = tracing off, zero overhead).
  trace::Recorder* recorder = nullptr;
  // Optional frame probe installed on the cluster's transport: sees every
  // frame at the NIC boundary (bench/ablation_zero_copy digests frame
  // images with it to prove Sim/Loopback/gather-on/gather-off equality).
  net::Transport::FrameProbe frame_probe = nullptr;
  // Optional shared IR model (nullptr = build a fresh one per run).  Must
  // outlive any PassManager that compiled it (see driver/pass_manager.hpp).
  figures::FigureProgram* model = nullptr;
  // Optional shared pass manager: analyses and plans are then cached
  // across runs and levels (nullptr = one-shot driver::compile).  Honored
  // only together with `model` — a caching manager must never hold
  // analyses of a run-local module that dies with the run.
  driver::PassManager* pass_manager = nullptr;
};

RunResult run_list_bench(codegen::OptLevel level,
                         const ListBenchConfig& cfg = {});

struct ArrayBenchConfig {
  std::uint32_t rows = 16;  // paper: 16x16 doubles
  std::uint32_t cols = 16;
  int iterations = 100;
  std::size_t machines = 2;
  // When nonzero, every other send uses this column count instead: the
  // reuse cache's runtime size check (Fig. 13) fails and rows reallocate.
  std::uint32_t alternate_cols = 0;
  serial::CostModel cost{};
  net::TransportKind transport = net::TransportKind::Sim;
  std::size_t dispatch_workers = 1;
  net::FaultPlan faults{};  // seeded fault injection (inert by default)
  net::FailureDetectorConfig detector{};  // heartbeat failure detection (inert by default)
  // Optional trace recorder (nullptr = tracing off, zero overhead).
  trace::Recorder* recorder = nullptr;
  // Optional frame probe installed on the cluster's transport (see
  // ListBenchConfig::frame_probe).
  net::Transport::FrameProbe frame_probe = nullptr;
  // Optional shared IR model (nullptr = build a fresh one per run).  Must
  // outlive any PassManager that compiled it (see driver/pass_manager.hpp).
  figures::FigureProgram* model = nullptr;
  // Optional shared pass manager: analyses and plans are then cached
  // across runs and levels (nullptr = one-shot driver::compile).  Honored
  // only together with `model` — a caching manager must never hold
  // analyses of a run-local module that dies with the run.
  driver::PassManager* pass_manager = nullptr;
};

RunResult run_array_bench(codegen::OptLevel level,
                          const ArrayBenchConfig& cfg = {});

}  // namespace rmiopt::apps
