#include "apps/microbench.hpp"

#include "apps/harness.hpp"
#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"

namespace rmiopt::apps {

RunResult run_list_bench(codegen::OptLevel level, const ListBenchConfig& cfg) {
  RMIOPT_CHECK(cfg.machines >= 2, "microbenchmarks need >= 2 machines");
  figures::FigureProgram local_model;
  if (cfg.model == nullptr) local_model = figures::make_figure14();
  const figures::FigureProgram& model = cfg.model ? *cfg.model : local_model;
  driver::CompiledProgram prog = compile_model(
      model, level, cfg.model ? cfg.pass_manager : nullptr,
      driver::CompileOptions{.precise_cycles = cfg.precise_cycles});

  net::Cluster cluster(cfg.machines, *model.types, cfg.cost, cfg.transport,
                       {}, cfg.faults, cfg.detector);
  if (cfg.recorder != nullptr) cluster.set_recorder(cfg.recorder);
  if (cfg.frame_probe) cluster.transport().set_frame_probe(cfg.frame_probe);
  rmi::RmiSystem sys(cluster, *model.types,
                     rmi::ExecutorConfig{cfg.dispatch_workers});

  // remote void send(LinkedList l): the handler only receives (Figure 14).
  std::uint64_t received = 0;
  const auto send_method = sys.define_method(
      "Foo.send", [&](rmi::CallContext&, auto, auto) {
        ++received;
        return rmi::HandlerResult{};
      });
  const auto site_id = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("send"), send_method));

  om::Heap& h1 = cluster.machine(1).heap();
  const rmi::RemoteRef foo = sys.export_object(
      1, h1.alloc(marker_class(*model.types, "Foo")));
  sys.start();

  // Build the list once on machine 0 (same shape every call — the reuse
  // cache's sweet spot, §3.3).
  om::Heap& h0 = cluster.machine(0).heap();
  const om::ClassDescriptor& node_cls =
      model.types->get(model.cls("LinkedList"));
  om::ObjRef head = nullptr;
  for (int i = 0; i < cfg.list_length; ++i) {
    om::ObjRef node = h0.alloc(node_cls);
    node->set_ref(node_cls.fields[0], head);
    head = node;
  }

  for (int i = 0; i < cfg.iterations; ++i) {
    sys.invoke(0, foo, site_id, std::array{head});
  }
  sys.stop();

  RunResult r = collect_run(cluster, sys);
  r.compile = prog.stats;
  r.check = static_cast<double>(received);
  h0.free_graph(head);
  return r;
}

RunResult run_array_bench(codegen::OptLevel level,
                          const ArrayBenchConfig& cfg) {
  RMIOPT_CHECK(cfg.machines >= 2, "microbenchmarks need >= 2 machines");
  figures::FigureProgram local_model;
  if (cfg.model == nullptr) local_model = figures::make_figure12();
  const figures::FigureProgram& model = cfg.model ? *cfg.model : local_model;
  driver::CompiledProgram prog =
      compile_model(model, level, cfg.model ? cfg.pass_manager : nullptr);

  net::Cluster cluster(cfg.machines, *model.types, cfg.cost, cfg.transport,
                       {}, cfg.faults, cfg.detector);
  if (cfg.recorder != nullptr) cluster.set_recorder(cfg.recorder);
  if (cfg.frame_probe) cluster.transport().set_frame_probe(cfg.frame_probe);
  rmi::RmiSystem sys(cluster, *model.types,
                     rmi::ExecutorConfig{cfg.dispatch_workers});

  double checksum = 0.0;
  const auto send_method = sys.define_method(
      "ArrayBench.send",
      [&](rmi::CallContext&, auto, std::span<const om::ObjRef> args) {
        // Touch the data so the transfer is observable.
        const om::ObjRef m = args[0];
        checksum += m->get_elem_ref(0)->get_elem<double>(0);
        return rmi::HandlerResult{};
      });
  const auto site_id = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("send"), send_method));

  om::Heap& h1 = cluster.machine(1).heap();
  const rmi::RemoteRef target = sys.export_object(
      1, h1.alloc(marker_class(*model.types, "ArrayBench")));
  sys.start();

  om::Heap& h0 = cluster.machine(0).heap();
  om::ObjRef mat = h0.alloc_array(model.cls("[[D"), cfg.rows);
  for (std::uint32_t rr = 0; rr < cfg.rows; ++rr) {
    om::ObjRef row = h0.alloc_array(model.cls("[D"), cfg.cols);
    auto e = row->elems<double>();
    for (std::uint32_t c = 0; c < cfg.cols; ++c) {
      e[c] = rr * 1000.0 + c;
    }
    mat->set_elem_ref(rr, row);
  }

  // Optional shape-check ablation: a second matrix with different row
  // lengths alternates with the first, defeating the reuse cache's size
  // check (Fig. 13's mismatch path) on every call.
  om::ObjRef alt = nullptr;
  if (cfg.alternate_cols != 0) {
    alt = h0.alloc_array(model.cls("[[D"), cfg.rows);
    for (std::uint32_t rr = 0; rr < cfg.rows; ++rr) {
      alt->set_elem_ref(rr,
                        h0.alloc_array(model.cls("[D"), cfg.alternate_cols));
    }
  }

  for (int i = 0; i < cfg.iterations; ++i) {
    om::ObjRef to_send = (alt != nullptr && (i & 1)) ? alt : mat;
    to_send->get_elem_ref(0)->elems<double>()[0] = static_cast<double>(i);
    sys.invoke(0, target, site_id, std::array{to_send});
  }
  sys.stop();

  RunResult r = collect_run(cluster, sys);
  r.compile = prog.stats;
  r.check = checksum;  // sum of i = iters*(iters-1)/2 when delivered right
  h0.free_graph(mat);
  if (alt != nullptr) h0.free_graph(alt);
  return r;
}

}  // namespace rmiopt::apps
