#include "apps/webserver.hpp"

#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "apps/harness.hpp"
#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"
#include "rmi/name_service.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace rmiopt::apps {

namespace {

std::string url_for(std::size_t page) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "/page%06zu.html", page);
  return buf;
}

}  // namespace

RunResult run_webserver(codegen::OptLevel level, const WebserverConfig& cfg) {
  RMIOPT_CHECK(cfg.machines >= 2, "webserver needs a master and a slave");
  figures::FigureProgram local_model;
  if (cfg.model == nullptr) local_model = figures::make_webserver_model();
  const figures::FigureProgram& model = cfg.model ? *cfg.model : local_model;
  driver::CompiledProgram prog =
      compile_model(model, level, cfg.model ? cfg.pass_manager : nullptr);

  net::Cluster cluster(cfg.machines, *model.types, cfg.cost, cfg.transport,
                       {}, cfg.faults);
  if (cfg.recorder != nullptr) cluster.set_recorder(cfg.recorder);
  rmi::RmiSystem sys(cluster, *model.types,
                     rmi::ExecutorConfig{cfg.dispatch_workers,
                                         cfg.call_timeout_ms});
  // JavaParty runtime bootstrap (class-mode stubs): the residual cycle
  // lookups of Table 8.
  rmi::NameService names(sys, *model.types);
  const std::size_t slaves = cfg.machines - 1;

  // ---- slave state: per-slave page table (url -> page object) -------------
  struct Slave {
    std::unordered_map<std::string, om::ObjRef> table;
  };
  std::vector<Slave> slave_state(cfg.machines);  // index by machine id
  std::atomic<std::uint64_t> misses{0};

  for (std::size_t s = 1; s < cfg.machines; ++s) {
    om::Heap& heap = cluster.machine(s).heap();
    for (std::size_t p = 0; p < cfg.pages; ++p) {
      std::string body(cfg.page_size, '\0');
      for (std::size_t i = 0; i < body.size(); ++i) {
        body[i] = static_cast<char>('a' + (p + i) % 26);
      }
      slave_state[s].table.emplace(url_for(p), heap.alloc_string(body));
    }
  }

  const auto get_page = sys.define_method(
      "Server.get_page", [&](rmi::CallContext& ctx, auto,
                             std::span<const om::ObjRef> args) {
        Slave& me = slave_state[ctx.machine().id()];
        const std::string url(args[0]->as_string_view());
        auto it = me.table.find(url);
        if (it == me.table.end()) {
          ++misses;
          return rmi::HandlerResult{};  // 404: null page
        }
        // The page is owned by the table; the runtime serializes it but
        // must not free it.
        return rmi::HandlerResult{.value = it->second};
      });
  const auto site = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("get_page"), get_page));
  const bool ret_reused = sys.callsite(site).plan->reuse_ret;

  const om::ClassId server_cls = marker_class(*model.types, "Server");
  std::vector<rmi::RemoteRef> servers;
  for (std::size_t s = 1; s < cfg.machines; ++s) {
    servers.push_back(
        sys.export_object(static_cast<std::uint16_t>(s),
                          cluster.machine(s).heap().alloc(server_cls)));
  }
  sys.start();
  for (std::size_t s = 0; s < slaves; ++s) {
    try {
      names.bind(static_cast<std::uint16_t>(s + 1),
                 "Server#" + std::to_string(s), servers[s]);
    } catch (const rmi::RmiTimeout&) {
      // The slave is dead (crashed before it could register); the master
      // notices below when its lookup fails and re-binds the name.
    }
  }

  // ---- master request loop ---------------------------------------------------
  // Every slave holds every page, so the master can degrade gracefully:
  // a slave that crashed (its bind missing, or a later call timing out)
  // has its name re-bound to a live replica and its traffic re-routed.
  om::Heap& h0 = cluster.machine(0).heap();
  std::mutex fo_mu;                              // guards resolved + liveness
  std::vector<rmi::RemoteRef> resolved(slaves);
  std::vector<bool> slave_live(slaves, false);
  std::vector<std::size_t> unbound;
  std::uint64_t failovers = 0;
  for (std::size_t s = 0; s < slaves; ++s) {
    try {
      resolved[s] = names.lookup(0, "Server#" + std::to_string(s));
      slave_live[s] = true;
    } catch (const rmi::RemoteException&) {
      unbound.push_back(s);  // never registered: crashed at startup
    }
  }
  // `resolved` and the registry entry must point at live machines before
  // requests flow.  Live replicas are interchangeable (uniform page set).
  auto live_replica = [&]() -> std::size_t {
    for (std::size_t s = 0; s < slaves; ++s) {
      if (slave_live[s]) return s;
    }
    throw Error("webserver: no live slave remains");
  };
  for (const std::size_t s : unbound) {
    resolved[s] = resolved[live_replica()];
    names.rebind(0, "Server#" + std::to_string(s), resolved[s]);
    ++failovers;
  }

  // Routes a request hash to (the current stand-in for) its server.
  // Invariant under fo_mu: a live slot's ref points at its own, live
  // machine; a dead slot's ref was re-pointed at a live replica.
  auto route = [&](std::uint32_t hash) -> rmi::RemoteRef {
    std::scoped_lock lock(fo_mu);
    return resolved[hash % slaves];
  };
  // A call into `machine` timed out: mark every slot it serves dead and
  // re-bind those names to a live replica.
  auto mark_dead = [&](std::uint16_t machine) {
    std::scoped_lock lock(fo_mu);
    std::vector<std::size_t> dead_slots;
    for (std::size_t s = 0; s < slaves; ++s) {
      if (slave_live[s] && resolved[s].machine == machine) {
        slave_live[s] = false;
        dead_slots.push_back(s);
      }
    }
    for (const std::size_t s : dead_slots) {
      resolved[s] = resolved[live_replica()];
      names.rebind(0, "Server#" + std::to_string(s), resolved[s]);
      ++failovers;
    }
  };
  // The master forwards requests from `concurrent_clients` pipelines; a
  // single pipeline is latency-bound (one RTT per page), several overlap
  // their round trips across the slaves.
  std::atomic<std::uint64_t> bytes_received{0};
  const std::size_t clients =
      std::max<std::size_t>(1, cfg.concurrent_clients);
  auto client = [&](std::size_t id) {
    SplitMix64 rng(cfg.seed + id);
    const std::size_t quota =
        cfg.requests / clients + (id < cfg.requests % clients ? 1 : 0);
    for (std::size_t r = 0; r < quota; ++r) {
      const std::size_t page = rng.next_below(cfg.pages);
      const std::string url = url_for(page);
      // Route by the URL's Java hash code, as the paper does.
      const auto h = static_cast<std::uint32_t>(java_string_hash(url));
      // Retry loop: a timed-out call fails over to a live replica and the
      // request is re-issued there (every slave holds every page, so the
      // response is identical).  At-most-once semantics make the retry
      // safe: get_page is read-only and the dead callee never replies.
      for (;;) {
        const rmi::RemoteRef server = route(h);
        om::ObjRef url_obj = h0.alloc_string(url);
        try {
          om::ObjRef page_obj =
              sys.invoke(0, server, site, std::array{url_obj});
          if (page_obj != nullptr) {
            bytes_received += page_obj->length();
            if (!ret_reused) h0.free_graph(page_obj);
          }
          h0.free(url_obj);
          break;
        } catch (const rmi::RmiTimeout&) {
          h0.free(url_obj);
          mark_dead(server.machine);
        }
      }
    }
  };
  if (clients == 1) {
    client(0);
  } else {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client, c);
    for (auto& t : threads) t.join();
  }
  sys.stop();

  RunResult r = collect_run(cluster, sys);
  r.compile = prog.stats;
  r.failovers = failovers;
  r.check = static_cast<double>(bytes_received.load());
  RMIOPT_CHECK(misses.load() == 0, "webserver served a 404");
  return r;
}

}  // namespace rmiopt::apps
