#include "apps/webserver.hpp"

#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "apps/harness.hpp"
#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"
#include "rmi/name_service.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"

namespace rmiopt::apps {

namespace {

std::string url_for(std::size_t page) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "/page%06zu.html", page);
  return buf;
}

}  // namespace

RunResult run_webserver(codegen::OptLevel level, const WebserverConfig& cfg) {
  RMIOPT_CHECK(cfg.machines >= 2, "webserver needs a master and a slave");
  figures::FigureProgram local_model;
  if (cfg.model == nullptr) local_model = figures::make_webserver_model();
  const figures::FigureProgram& model = cfg.model ? *cfg.model : local_model;
  driver::CompiledProgram prog =
      compile_model(model, level, cfg.model ? cfg.pass_manager : nullptr);

  net::Cluster cluster(cfg.machines, *model.types, cfg.cost, cfg.transport,
                       {}, cfg.faults, cfg.detector);
  if (cfg.recorder != nullptr) cluster.set_recorder(cfg.recorder);
  rmi::RmiSystem sys(cluster, *model.types,
                     rmi::ExecutorConfig{cfg.dispatch_workers,
                                         cfg.call_timeout_ms});
  // JavaParty runtime bootstrap (class-mode stubs): the residual cycle
  // lookups of Table 8.
  rmi::NameService names(sys, *model.types);
  const std::size_t slaves = cfg.machines - 1;

  // ---- slave state: per-slave page table (url -> page object) -------------
  struct Slave {
    std::unordered_map<std::string, om::ObjRef> table;
  };
  std::vector<Slave> slave_state(cfg.machines);  // index by machine id
  std::atomic<std::uint64_t> misses{0};

  for (std::size_t s = 1; s < cfg.machines; ++s) {
    om::Heap& heap = cluster.machine(s).heap();
    for (std::size_t p = 0; p < cfg.pages; ++p) {
      std::string body(cfg.page_size, '\0');
      for (std::size_t i = 0; i < body.size(); ++i) {
        body[i] = static_cast<char>('a' + (p + i) % 26);
      }
      slave_state[s].table.emplace(url_for(p), heap.alloc_string(body));
    }
  }

  const auto get_page = sys.define_method(
      "Server.get_page", [&](rmi::CallContext& ctx, auto,
                             std::span<const om::ObjRef> args) {
        Slave& me = slave_state[ctx.machine().id()];
        const std::string url(args[0]->as_string_view());
        auto it = me.table.find(url);
        if (it == me.table.end()) {
          ++misses;
          return rmi::HandlerResult{};  // 404: null page
        }
        // The page is owned by the table; the runtime serializes it but
        // must not free it.
        return rmi::HandlerResult{.value = it->second};
      });
  const auto site = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("get_page"), get_page));
  const bool ret_reused = sys.callsite(site).plan->reuse_ret;

  const om::ClassId server_cls = marker_class(*model.types, "Server");
  std::vector<rmi::RemoteRef> servers;
  for (std::size_t s = 1; s < cfg.machines; ++s) {
    servers.push_back(
        sys.export_object(static_cast<std::uint16_t>(s),
                          cluster.machine(s).heap().alloc(server_cls)));
  }
  sys.start();
  for (std::size_t s = 0; s < slaves; ++s) {
    try {
      names.bind(static_cast<std::uint16_t>(s + 1),
                 "Server#" + std::to_string(s), servers[s]);
    } catch (const rmi::RmiTimeout&) {
      // The slave is dead (crashed before it could register); the
      // replicated bind below re-points its name at a live replica.
    }
  }
  if (cfg.faults.enabled()) {
    // Failover is the name service's job now: publish each name with its
    // full replica group (every slave holds every page, so live replicas
    // are interchangeable) and let the registry advance the binding when
    // a machine dies — via the failure detector's death callback, or via
    // a caller's report_failure after a timeout.  Gated on an active
    // fault plan so a healthy run's traffic stays byte-identical.
    for (std::size_t s = 0; s < slaves; ++s) {
      names.bind_replicated(0, "Server#" + std::to_string(s), servers,
                            /*preferred=*/s);
    }
  }

  // ---- master request loop ---------------------------------------------------
  om::Heap& h0 = cluster.machine(0).heap();
  std::mutex fo_mu;  // guards resolved
  std::vector<rmi::RemoteRef> resolved(slaves);
  for (std::size_t s = 0; s < slaves; ++s) {
    resolved[s] = names.lookup(0, "Server#" + std::to_string(s));
  }

  // The master forwards requests from `concurrent_clients` pipelines; a
  // single pipeline is latency-bound (one RTT per page), several overlap
  // their round trips across the slaves.
  std::atomic<std::uint64_t> bytes_received{0};
  const std::size_t clients =
      std::max<std::size_t>(1, cfg.concurrent_clients);
  auto client = [&](std::size_t id) {
    SplitMix64 rng(cfg.seed + id);
    const std::size_t quota =
        cfg.requests / clients + (id < cfg.requests % clients ? 1 : 0);
    for (std::size_t r = 0; r < quota; ++r) {
      const std::size_t page = rng.next_below(cfg.pages);
      const std::string url = url_for(page);
      // Route by the URL's Java hash code, as the paper does.
      const auto h = static_cast<std::uint32_t>(java_string_hash(url));
      const std::size_t slot = h % slaves;
      // Retry loop: a failed call (ARQ-budget RmiTimeout, or the typed
      // fast-fail MachineDown subclass when the detector is on) is
      // reported to the name service, which re-points the name at a live
      // replica; the request is then re-issued there.  At-most-once
      // semantics make the retry safe: get_page is read-only and the dead
      // callee never replies.
      for (;;) {
        rmi::RemoteRef server;
        {
          std::scoped_lock lock(fo_mu);
          server = resolved[slot];
        }
        om::ObjRef url_obj = h0.alloc_string(url);
        try {
          om::ObjRef page_obj =
              sys.invoke(0, server, site, std::array{url_obj});
          if (page_obj != nullptr) {
            bytes_received += page_obj->length();
            if (!ret_reused) h0.free_graph(page_obj);
          }
          h0.free(url_obj);
          break;
        } catch (const rmi::RmiTimeout&) {
          h0.free(url_obj);
          const std::string name = "Server#" + std::to_string(slot);
          try {
            names.report_failure(0, name, server.machine);
          } catch (const rmi::RemoteException& e) {
            throw Error(std::string("webserver: ") + e.what());
          }
          const rmi::RemoteRef fresh = names.lookup(0, name);
          std::scoped_lock lock(fo_mu);
          resolved[slot] = fresh;
        }
      }
    }
  };
  if (clients == 1) {
    client(0);
  } else {
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client, c);
    for (auto& t : threads) t.join();
  }
  sys.stop();

  RunResult r = collect_run(cluster, sys);
  r.compile = prog.stats;
  r.failovers = names.failovers();
  r.check = static_cast<double>(bytes_received.load());
  RMIOPT_CHECK(misses.load() == 0, "webserver served a 404");
  return r;
}

}  // namespace rmiopt::apps
