// Distributed LU factorization (paper §5.2, SPLASH-2 style).
//
// A dense n×n matrix is factored in place (no pivoting, as in SPLASH-2
// LU).  Rows are distributed cyclically over the machines; at step k the
// owner of row k pushes the pivot row to every peer (the paper's "updates
// are flushed"), everyone updates their rows below k, and a barrier
// (deferred-reply RMI on machine 0) closes the step.  At the end machine 0
// fetches every remotely-owned row (exercising return-value reuse) and the
// result is verified against L·U = A.
#pragma once

#include "apps/run_result.hpp"
#include "codegen/opt_level.hpp"
#include "net/failure_detector.hpp"
#include "net/transport.hpp"

namespace rmiopt::driver {
class PassManager;
}

namespace rmiopt::apps {

namespace figures {
struct FigureProgram;
}

struct LuConfig {
  std::size_t n = 64;          // matrix dimension (paper: 1024)
  std::size_t machines = 2;    // paper: 2 CPUs
  std::uint64_t seed = 42;     // matrix generator
  // Virtual cost of one multiply-add of the update loop (P-III-era,
  // non-vectorized).  Charged to the worker's machine clock so compute
  // and communication trade off realistically in the makespan.
  double flop_pair_ns = 2.0;
  serial::CostModel cost{};    // network/serialization cost model
  net::TransportKind transport = net::TransportKind::Sim;
  std::size_t dispatch_workers = 1;  // RMI handler pool per machine
  net::FaultPlan faults{};     // seeded fault injection (inert by default)
  net::FailureDetectorConfig detector{};  // heartbeat failure detection (inert by default)
  // Optional trace recorder (nullptr = tracing off, zero overhead).
  trace::Recorder* recorder = nullptr;
  // Optional shared IR model (nullptr = build a fresh one per run).  Must
  // outlive any PassManager that compiled it (see driver/pass_manager.hpp).
  figures::FigureProgram* model = nullptr;
  // Optional shared pass manager: analyses and plans are then cached
  // across runs and levels (nullptr = one-shot driver::compile).  Honored
  // only together with `model` — a caching manager must never hold
  // analyses of a run-local module that dies with the run.
  driver::PassManager* pass_manager = nullptr;
};

// RunResult::check is the maximum |L·U - A| residual entry (machine 0's
// reassembled matrix); a correct run keeps it tiny relative to ‖A‖.
RunResult run_lu(codegen::OptLevel level, const LuConfig& cfg = {});

}  // namespace rmiopt::apps
