#include "apps/lu.hpp"

#include <cmath>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "apps/harness.hpp"
#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"
#include "rmi/name_service.hpp"
#include "support/rng.hpp"

namespace rmiopt::apps {

namespace {

// Per-machine application state: the local matrix copy plus the pivot-row
// arrival ledger the workers synchronize on.
struct LuMachine {
  std::vector<double> a;  // row-major n*n
  std::size_t n = 0;

  std::mutex mu;
  std::condition_variable cv;
  std::vector<bool> have_row;

  double& at(std::size_t i, std::size_t j) { return a[i * n + j]; }

  void mark_row(std::size_t k) {
    {
      std::scoped_lock lock(mu);
      have_row[k] = true;
    }
    cv.notify_all();
  }
  void wait_row(std::size_t k) {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return have_row[k]; });
  }
};

struct Barrier {
  std::mutex mu;
  std::vector<rmi::ReplyToken> waiting;
  std::size_t parties = 0;
};

}  // namespace

RunResult run_lu(codegen::OptLevel level, const LuConfig& cfg) {
  const std::size_t n = cfg.n;
  const std::size_t P = cfg.machines;
  RMIOPT_CHECK(P >= 1 && n >= 2, "LU needs >=1 machine and n>=2");

  figures::FigureProgram local_model;
  if (cfg.model == nullptr) local_model = figures::make_lu_model();
  const figures::FigureProgram& model = cfg.model ? *cfg.model : local_model;
  driver::CompiledProgram prog =
      compile_model(model, level, cfg.model ? cfg.pass_manager : nullptr);

  net::Cluster cluster(P, *model.types, cfg.cost, cfg.transport, {},
                       cfg.faults, cfg.detector);
  if (cfg.recorder != nullptr) cluster.set_recorder(cfg.recorder);
  rmi::RmiSystem sys(cluster, *model.types,
                     rmi::ExecutorConfig{cfg.dispatch_workers});
  // The JavaParty runtime's own bootstrap RMIs use generic class-mode
  // stubs — the source of the residual cycle lookups in Table 4.
  rmi::NameService names(sys, *model.types);
  const om::ClassId row_cls = model.cls("[D");

  // ---- application state ---------------------------------------------------
  std::vector<LuMachine> state(P);
  SplitMix64 rng(cfg.seed);
  std::vector<double> original(n * n);
  for (double& v : original) v = rng.next_double() * 2.0 - 1.0;
  // Diagonal dominance keeps the factorization stable without pivoting.
  for (std::size_t i = 0; i < n; ++i) {
    original[i * n + i] += static_cast<double>(n);
  }
  for (auto& st : state) {
    st.a = original;
    st.n = n;
    st.have_row.assign(n, false);
  }

  Barrier barrier;
  barrier.parties = P;

  // ---- remote methods ------------------------------------------------------
  const auto flush_method = sys.define_method(
      "LU.flush", [&](rmi::CallContext& ctx,
                      std::span<const std::int64_t> scalars,
                      std::span<const om::ObjRef> args) {
        const auto k = static_cast<std::size_t>(scalars[0]);
        LuMachine& st = state[ctx.machine().id()];
        // memcpy through the const payload: a zero-copy-received row may
        // be a pinned borrow at an arbitrary wire offset, where a typed
        // span is rejected and a mutable access would detach it.
        const om::Object& row = *args[0];
        std::memcpy(st.a.data() + k * n, row.payload(),
                    row.length() * sizeof(double));
        st.mark_row(k);
        return rmi::HandlerResult{};
      });

  const auto fetch_method = sys.define_method(
      "LU.fetch_row", [&](rmi::CallContext& ctx,
                          std::span<const std::int64_t> scalars, auto) {
        const auto k = static_cast<std::size_t>(scalars[0]);
        LuMachine& st = state[ctx.machine().id()];
        om::ObjRef row = ctx.heap().alloc_array(
            row_cls, static_cast<std::uint32_t>(n));
        auto e = row->elems<double>();
        std::copy(st.a.begin() + k * n, st.a.begin() + (k + 1) * n,
                  e.begin());
        return rmi::HandlerResult{.value = row, .give_ownership = true};
      });

  const auto barrier_method = sys.define_method(
      "LU.barrier", [&](rmi::CallContext& ctx, auto, auto) {
        std::scoped_lock lock(barrier.mu);
        barrier.waiting.push_back(ctx.reply_token());
        if (barrier.waiting.size() < barrier.parties) {
          return rmi::HandlerResult{.deferred = true};
        }
        // Last arrival: release everyone (including this call, whose
        // token is in the list too — reply to the others, return normally
        // for ourselves).
        for (const auto& t : barrier.waiting) {
          if (t.seq != ctx.reply_token().seq) ctx.system().send_reply(t, nullptr);
        }
        barrier.waiting.clear();
        return rmi::HandlerResult{};
      });

  const auto flush_site = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("flush"), flush_method));
  const auto fetch_site = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("fetch_row"), fetch_method));
  const auto barrier_site = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("barrier"), barrier_method));
  const bool fetch_reuses_ret = sys.callsite(fetch_site).plan->reuse_ret;

  // One exported "LU" object per machine (its methods above act on the
  // machine's LuMachine state); the barrier object lives on machine 0.
  std::vector<rmi::RemoteRef> lu_refs;
  const om::ClassId lu_cls = marker_class(*model.types, "LU");
  for (std::size_t m = 0; m < P; ++m) {
    lu_refs.push_back(sys.export_object(
        static_cast<std::uint16_t>(m),
        cluster.machine(m).heap().alloc(lu_cls)));
  }
  sys.start();
  for (std::size_t m = 0; m < P; ++m) {
    names.bind(static_cast<std::uint16_t>(m), "LU#" + std::to_string(m),
               lu_refs[m]);
  }

  // ---- workers ---------------------------------------------------------------
  auto worker = [&](std::uint16_t me) {
    LuMachine& st = state[me];
    om::Heap& heap = cluster.machine(me).heap();
    // Resolve the peers through the runtime's name service (bootstrap).
    std::vector<rmi::RemoteRef> peers(P);
    for (std::size_t m = 0; m < P; ++m) {
      peers[m] = names.lookup(me, "LU#" + std::to_string(m));
    }
    om::ObjRef send_buf =
        heap.alloc_array(row_cls, static_cast<std::uint32_t>(n));

    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t owner = k % P;
      if (owner == me) {
        st.mark_row(k);
        auto buf = send_buf->elems<double>();
        std::copy(st.a.begin() + k * n, st.a.begin() + (k + 1) * n,
                  buf.begin());
        for (std::size_t peer = 0; peer < P; ++peer) {
          if (peer == me) continue;
          sys.invoke(me, peers[peer], flush_site, std::array{send_buf},
                     std::array<std::int64_t, 1>{
                         static_cast<std::int64_t>(k)});
        }
      } else {
        st.wait_row(k);
      }
      // Update owned rows below k.
      const double pivot = st.at(k, k);
      std::uint64_t updates = 0;
      for (std::size_t i = k + 1; i < n; ++i) {
        if (i % P != me) continue;
        const double l = st.at(i, k) / pivot;
        st.at(i, k) = l;
        for (std::size_t j = k + 1; j < n; ++j) {
          st.at(i, j) -= l * st.at(k, j);
        }
        updates += n - k;
      }
      cluster.machine(me).clock().advance(SimTime::nanos(
          static_cast<std::int64_t>(cfg.flop_pair_ns *
                                    static_cast<double>(updates))));
      sys.invoke(me, peers[0], barrier_site, {});
    }

    // Collection phase: machine 0 fetches every remotely-owned row — the
    // return-value-reuse path (§3.3).
    if (me == 0) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t owner = i % P;
        if (owner == 0) continue;
        om::ObjRef row = sys.invoke(
            0, peers[owner], fetch_site, {},
            std::array<std::int64_t, 1>{static_cast<std::int64_t>(i)});
        const om::Object& r = *row;  // possibly a pinned (unaligned) borrow
        std::memcpy(st.a.data() + i * n, r.payload(),
                    r.length() * sizeof(double));
        if (!fetch_reuses_ret) heap.free_graph(row);
      }
    }
    heap.free(send_buf);
  };

  std::vector<std::thread> threads;
  for (std::size_t m = 0; m < P; ++m) {
    threads.emplace_back(worker, static_cast<std::uint16_t>(m));
  }
  for (auto& t : threads) t.join();
  sys.stop();

  // ---- verification: max |L*U - A| over machine 0's assembled result ------
  LuMachine& r0 = state[0];
  double residual = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k <= kmax; ++k) {
        const double l = (k == i) ? 1.0 : r0.at(i, k);  // unit diagonal L
        sum += l * r0.at(k, j);
      }
      residual = std::max(residual, std::abs(sum - original[i * n + j]));
    }
  }

  RunResult r = collect_run(cluster, sys);
  r.compile = prog.stats;
  r.check = residual;
  return r;
}

}  // namespace rmiopt::apps
