// The parallel superoptimizer (paper §5.3, after Massalin).
//
// A producer thread on machine 0 enumerates every instruction sequence up
// to `max_len` instructions over a small register ISA and ships each
// candidate as an RMI (`Tester.test(Program)`) round-robin to the tester
// machines.  A tester's handler pushes the received program graph into a
// bounded queue (so the argument *escapes* — no reuse, as the paper notes)
// and a tester thread pops candidates and checks them for behavioural
// equivalence with the target sequence on random register states.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/run_result.hpp"
#include "codegen/opt_level.hpp"
#include "net/failure_detector.hpp"
#include "net/transport.hpp"

namespace rmiopt::driver {
class PassManager;
}

namespace rmiopt::apps {

namespace figures {
struct FigureProgram;
}

// The tiny target ISA.
enum class SopOp : std::int32_t { Add, Sub, And, Or, Xor, Mov, Shl };
inline constexpr int kSopOps = 7;
inline constexpr int kSopRegs = 2;   // r0, r1
inline constexpr int kSopImms = 2;   // immediates 0, 1

struct SopOperand {
  bool is_imm = false;
  std::int64_t value = 0;  // register index or immediate
};

struct SopInstr {
  SopOp op = SopOp::Add;
  int dst = 0;           // destination register
  SopOperand src1, src2;  // Mov/Shl use src1 (and src2 for shift amount)
};

using SopProgram = std::vector<SopInstr>;

// Reference interpreter (used by the testers and by unit tests).
void sop_execute(const SopProgram& prog, std::int64_t regs[kSopRegs]);

struct SuperoptConfig {
  SopProgram target = {};      // empty => default target r0 = r0 + r0
  int max_len = 1;             // candidate sequence length 1..max_len
  int test_vectors = 8;        // random states per equivalence check
  std::size_t machines = 2;    // producer + (machines-1) testers
  std::size_t queue_capacity = 64;
  std::uint64_t seed = 7;
  serial::CostModel cost{};
  net::TransportKind transport = net::TransportKind::Sim;
  std::size_t dispatch_workers = 1;
  net::FaultPlan faults{};     // seeded fault injection (inert by default)
  net::FailureDetectorConfig detector{};  // heartbeat failure detection (inert by default)
  // Optional trace recorder (nullptr = tracing off, zero overhead).
  trace::Recorder* recorder = nullptr;
  // Optional shared IR model (nullptr = build a fresh one per run).  Must
  // outlive any PassManager that compiled it (see driver/pass_manager.hpp).
  figures::FigureProgram* model = nullptr;
  // Optional shared pass manager: analyses and plans are then cached
  // across runs and levels (nullptr = one-shot driver::compile).  Honored
  // only together with `model` — a caching manager must never hold
  // analyses of a run-local module that dies with the run.
  driver::PassManager* pass_manager = nullptr;
};

// RunResult::check = number of equivalent sequences found (deterministic
// for a given config).
RunResult run_superopt(codegen::OptLevel level,
                       const SuperoptConfig& cfg = {});

// Exposed for tests: the number of candidate sequences of length exactly
// `len` the producer enumerates.
std::uint64_t sop_candidates_per_length();

}  // namespace rmiopt::apps
