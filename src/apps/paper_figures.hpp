// IR reconstructions of the paper's running examples (Figures 2–14).
//
// Each factory builds a self-contained program: the classes involved, the
// functions (remote methods and their callers), and the remote call sites
// with stable tags.  Tests validate the analyses against the paper's
// stated outcomes on these exact programs; the compiler_tour example prints
// the generated code for them; the microbenchmarks (Tables 1 and 2) use
// Figure 12 (2-D array transmission) and Figure 14 (linked list
// transmission) as their workload models.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "ir/builder.hpp"

namespace rmiopt::apps::figures {

struct FigureProgram {
  std::unique_ptr<om::TypeRegistry> types;
  std::unique_ptr<ir::Module> module;
  std::map<std::string, om::ClassId> classes;
  std::map<std::string, ir::FuncId> funcs;
  std::map<std::string, std::uint32_t> tags;  // remote call sites by name

  om::ClassId cls(const std::string& name) const { return classes.at(name); }
  ir::FuncId func(const std::string& name) const { return funcs.at(name); }
  std::uint32_t tag(const std::string& name) const { return tags.at(name); }

  // The module's remote call site with the given tag.
  ir::Module::RemoteCallRef site(std::uint32_t tag) const;
};

// Figure 2: class Foo { Bar bar; double[][][] a; } — heap-graph shape of
// nested allocations (5 allocation sites).
FigureProgram make_figure2();

// Figures 3/4: remote Object foo(Object a){return a;} called in a loop —
// the data-flow must terminate via the (logical, physical) tuple rule.
FigureProgram make_figure3();

// Figure 5: remote void foo(Base b) called once with Derived1, once with
// Derived2 (which references a Derived1) — call-site specialization.
FigureProgram make_figure5();

// Figure 8: bar(b, b) — the same object passed twice needs cycle handling.
FigureProgram make_figure8();
// Variant: bar(b1, b2) with distinct objects — no cycle handling needed.
FigureProgram make_figure8_distinct();

// Figure 9: b.self = b — a self-referencing argument.
FigureProgram make_figure9();

// Figure 10: remote foo(double[] a) never stores a — reusable.
FigureProgram make_figure10();

// Figure 11: remote foo(Bar a) { d = a.d; } with static d — escapes.
FigureProgram make_figure11();

// Figure 12: remote void send(double[][] arr) with a 16x16 argument —
// the 2-D array transmission benchmark (Table 2), and the program whose
// generated unmarshaler the paper shows in Figure 13.
FigureProgram make_figure12();

// Figure 14: remote void send(LinkedList l) with a 100-element list —
// the linked-list transmission benchmark (Table 1).  The single-site list
// allocation makes the cycle analysis conservatively keep runtime cycle
// detection (paper §7 admits this imprecision).
FigureProgram make_figure14();

// The paper's webserver RMI: remote Page get_page(String url) where pages
// live in a static table (returned graph reusable at the caller; argument
// string reusable at the callee) — Tables 7/8.
FigureProgram make_webserver_model();

// The paper's superoptimizer RMI: remote void test(Program p) where the
// handler pushes p into a static queue — p escapes, no reuse; the program
// graph (program -> instrs[] -> operands[]) is acyclic — Tables 5/6.
FigureProgram make_superopt_model();

// The paper's LU RMI: remote void flush(double[][] block) writing into a
// static matrix (primitive stores only) plus remote void barrier() —
// arguments acyclic and reusable — Tables 3/4.
FigureProgram make_lu_model();

}  // namespace rmiopt::apps::figures
