// Common result type for the benchmark applications.
#pragma once

#include <vector>

#include "driver/compile_stats.hpp"
#include "net/transport.hpp"
#include "rmi/stats.hpp"
#include "support/sim_time.hpp"

namespace rmiopt::apps {

struct RunResult {
  SimTime makespan;                 // cluster-wide virtual wall time
  rmi::RmiStatsSnapshot total;      // summed over machines
  std::vector<rmi::RmiStatsSnapshot> per_machine;
  std::uint64_t messages = 0;       // network messages
  std::uint64_t bytes = 0;          // network bytes
  net::NetworkStats::Snapshot net;  // full traffic + fault counters
  std::uint64_t failovers = 0;      // app-level re-routes around dead nodes
  double check = 0.0;               // app-specific correctness value

  // The compile that produced this run's call sites: per-pass executions,
  // cache hits/misses and wall time (see driver/compile_stats.hpp).
  driver::CompileStats compile;
  // Per-call-site runtime profile, keyed by compile-time tag — the input
  // to driver::PassManager::respecialize.
  rmi::CallSiteProfile profile;
};

}  // namespace rmiopt::apps
