// The parallel web server (paper §5.4).
//
// A master on machine 0 accepts page requests and forwards each to a slave
// selected by the URL's Java hash code; the slave looks the page up in its
// in-memory table and returns it.  The whole application revolves around a
// single RMI — page = server[url.hashCode()].get_page(url) — whose URL
// argument and page return value the compiler proves cycle-free and
// reusable (Tables 7 and 8).
#pragma once

#include "apps/run_result.hpp"
#include "codegen/opt_level.hpp"
#include "net/failure_detector.hpp"
#include "net/transport.hpp"

namespace rmiopt::driver {
class PassManager;
}

namespace rmiopt::apps {

namespace figures {
struct FigureProgram;
}

struct WebserverConfig {
  std::size_t machines = 2;     // master + (machines-1) slaves
  std::size_t pages = 64;       // distinct pages per slave
  std::size_t page_size = 2048; // bytes per page (uniform: reuse-friendly)
  std::size_t requests = 500;   // total page retrievals
  std::size_t concurrent_clients = 1;  // master-side request pipelines
  std::uint64_t seed = 3;       // request sequence
  serial::CostModel cost{};
  net::TransportKind transport = net::TransportKind::Sim;
  std::size_t dispatch_workers = 1;
  net::FaultPlan faults{};  // seeded fault injection (inert by default)
  // Heartbeat failure detection (inert by default).  Enabled, a crashed
  // slave is confirmed dead in bounded virtual time and its traffic fails
  // fast (rmi::MachineDown) instead of burning the full ARQ budget.
  net::FailureDetectorConfig detector{};
  // Real-time backstop per blocked call (forwarded to the RMI runtime;
  // virtual-time failures do not wait on it).
  std::int64_t call_timeout_ms = 30'000;
  // Optional trace recorder (nullptr = tracing off, zero overhead).
  trace::Recorder* recorder = nullptr;
  // Optional shared IR model (nullptr = build a fresh one per run).  Must
  // outlive any PassManager that compiled it (see driver/pass_manager.hpp).
  figures::FigureProgram* model = nullptr;
  // Optional shared pass manager: analyses and plans are then cached
  // across runs and levels (nullptr = one-shot driver::compile).  Honored
  // only together with `model` — a caching manager must never hold
  // analyses of a run-local module that dies with the run.
  driver::PassManager* pass_manager = nullptr;
};

// RunResult::check = total page bytes received by the master; a correct
// run returns requests * page_size.
RunResult run_webserver(codegen::OptLevel level,
                        const WebserverConfig& cfg = {});

}  // namespace rmiopt::apps
