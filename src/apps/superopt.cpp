#include "apps/superopt.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "apps/harness.hpp"
#include "apps/paper_figures.hpp"
#include "driver/compile.hpp"
#include "rmi/name_service.hpp"
#include "support/rng.hpp"

namespace rmiopt::apps {

void sop_execute(const SopProgram& prog, std::int64_t regs[kSopRegs]) {
  auto read = [&](const SopOperand& o) {
    return o.is_imm ? o.value : regs[o.value];
  };
  for (const SopInstr& in : prog) {
    const std::int64_t a = read(in.src1);
    const std::int64_t b = read(in.src2);
    std::int64_t r = 0;
    switch (in.op) {
      // Two's-complement wraparound semantics (Java's long): compute in
      // unsigned to avoid signed-overflow UB on random register values.
      case SopOp::Add:
        r = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                      static_cast<std::uint64_t>(b));
        break;
      case SopOp::Sub:
        r = static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                      static_cast<std::uint64_t>(b));
        break;
      case SopOp::And:
        r = a & b;
        break;
      case SopOp::Or:
        r = a | b;
        break;
      case SopOp::Xor:
        r = a ^ b;
        break;
      case SopOp::Mov:
        r = a;
        break;
      case SopOp::Shl:
        r = static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                      << (b & 63));
        break;
    }
    regs[in.dst] = r;
  }
}

namespace {

// Operand encoding space: registers then immediates.
inline constexpr int kOperandSpace = kSopRegs + kSopImms;

SopOperand decode_operand(int code) {
  SopOperand o;
  if (code < kSopRegs) {
    o.is_imm = false;
    o.value = code;
  } else {
    o.is_imm = true;
    o.value = code - kSopRegs;
  }
  return o;
}

// A bounded queue of received program graphs; pushing a full queue blocks
// the dispatcher, which is exactly the paper's producer back-pressure
// ("the producer thread blocks whenever the queue ... is full").
struct TesterQueue {
  std::mutex mu;
  std::condition_variable cv_push, cv_pop;
  std::deque<om::ObjRef> items;
  std::size_t capacity = 64;
  bool done = false;

  void push(om::ObjRef p) {
    std::unique_lock lock(mu);
    cv_push.wait(lock, [&] { return items.size() < capacity; });
    items.push_back(p);
    cv_pop.notify_one();
  }
  // Returns nullptr when drained and closed.
  om::ObjRef pop() {
    std::unique_lock lock(mu);
    cv_pop.wait(lock, [&] { return !items.empty() || done; });
    if (items.empty()) return nullptr;
    om::ObjRef p = items.front();
    items.pop_front();
    cv_push.notify_one();
    return p;
  }
  void close() {
    std::scoped_lock lock(mu);
    done = true;
    cv_pop.notify_all();
  }
};

}  // namespace

std::uint64_t sop_candidates_per_length() {
  return static_cast<std::uint64_t>(kSopOps) * kSopRegs * kOperandSpace *
         kOperandSpace;
}

RunResult run_superopt(codegen::OptLevel level, const SuperoptConfig& cfg) {
  figures::FigureProgram local_model;
  if (cfg.model == nullptr) local_model = figures::make_superopt_model();
  const figures::FigureProgram& model = cfg.model ? *cfg.model : local_model;
  driver::CompiledProgram prog =
      compile_model(model, level, cfg.model ? cfg.pass_manager : nullptr);

  const SopProgram target =
      cfg.target.empty()
          ? SopProgram{SopInstr{SopOp::Add, 0, decode_operand(0),
                                decode_operand(0)}}
          : cfg.target;

  net::Cluster cluster(cfg.machines, *model.types, cfg.cost, cfg.transport,
                       {}, cfg.faults, cfg.detector);
  if (cfg.recorder != nullptr) cluster.set_recorder(cfg.recorder);
  rmi::RmiSystem sys(cluster, *model.types,
                     rmi::ExecutorConfig{cfg.dispatch_workers});
  // JavaParty runtime bootstrap (class-mode stubs): the residual cycle
  // lookups of Table 6.
  rmi::NameService names(sys, *model.types);
  RMIOPT_CHECK(cfg.machines >= 2, "superopt needs >=2 machines");

  const om::ClassDescriptor& operand_cls =
      model.types->get(model.cls("Operand"));
  const om::ClassDescriptor& instr_cls =
      model.types->get(model.cls("Instruction"));
  const om::ClassId instr_arr_cls = model.cls("[LInstruction;");
  const om::ClassDescriptor& program_cls =
      model.types->get(model.cls("Program"));

  // ---- object-graph <-> SopProgram codecs ----------------------------------
  auto encode = [&](om::Heap& heap, const SopProgram& p) {
    om::ObjRef prog_obj = heap.alloc(program_cls);
    om::ObjRef code =
        heap.alloc_array(instr_arr_cls, static_cast<std::uint32_t>(p.size()));
    prog_obj->set_ref(program_cls.fields[0], code);
    for (std::size_t i = 0; i < p.size(); ++i) {
      om::ObjRef ins = heap.alloc(instr_cls);
      ins->set<std::int32_t>(instr_cls.fields[0],
                             static_cast<std::int32_t>(p[i].op) * 8 +
                                 p[i].dst);
      const SopOperand ops[3] = {p[i].src1, p[i].src2, {}};
      for (int k = 0; k < 3; ++k) {
        om::ObjRef o = heap.alloc(operand_cls);
        o->set<std::int32_t>(operand_cls.fields[0], ops[k].is_imm ? 1 : 0);
        o->set<std::int64_t>(operand_cls.fields[1], ops[k].value);
        ins->set_ref(instr_cls.fields[1 + k], o);
      }
      code->set_elem_ref(static_cast<std::uint32_t>(i), ins);
    }
    return prog_obj;
  };
  auto decode = [&](om::ObjRef prog_obj) {
    SopProgram p;
    om::ObjRef code = prog_obj->get_ref(program_cls.fields[0]);
    for (std::uint32_t i = 0; i < code->length(); ++i) {
      om::ObjRef ins = code->get_elem_ref(i);
      const std::int32_t packed = ins->get<std::int32_t>(instr_cls.fields[0]);
      SopInstr si;
      si.op = static_cast<SopOp>(packed / 8);
      si.dst = packed % 8;
      om::ObjRef o1 = ins->get_ref(instr_cls.fields[1]);
      om::ObjRef o2 = ins->get_ref(instr_cls.fields[2]);
      si.src1 = {o1->get<std::int32_t>(operand_cls.fields[0]) != 0,
                 o1->get<std::int64_t>(operand_cls.fields[1])};
      si.src2 = {o2->get<std::int32_t>(operand_cls.fields[0]) != 0,
                 o2->get<std::int64_t>(operand_cls.fields[1])};
      p.push_back(si);
    }
    return p;
  };

  // ---- tester state ----------------------------------------------------------
  const std::size_t testers = cfg.machines - 1;
  std::vector<TesterQueue> queues(testers);
  for (auto& q : queues) q.capacity = cfg.queue_capacity;
  std::atomic<std::uint64_t> equivalences{0};
  std::atomic<std::uint64_t> tested{0};

  const auto test_method = sys.define_method(
      "Tester.test", [&](rmi::CallContext& ctx, auto,
                         std::span<const om::ObjRef> args) {
        // The program is queued: it escapes the remote method (§5.3), the
        // runtime must not free it, and reuse is impossible.
        queues[ctx.machine().id() - 1].push(args[0]);
        return rmi::HandlerResult{.args_consumed = true};
      });
  const auto test_site = sys.add_callsite(
      driver::to_runtime_site(prog, model.tag("test"), test_method));

  const om::ClassId tester_cls = marker_class(*model.types, "Tester");
  std::vector<rmi::RemoteRef> tester_refs;
  for (std::size_t t = 0; t < testers; ++t) {
    tester_refs.push_back(
        sys.export_object(static_cast<std::uint16_t>(t + 1),
                          cluster.machine(t + 1).heap().alloc(tester_cls)));
  }
  sys.start();
  for (std::size_t t = 0; t < testers; ++t) {
    names.bind(static_cast<std::uint16_t>(t + 1),
               "Tester#" + std::to_string(t), tester_refs[t]);
  }
  for (std::size_t t = 0; t < testers; ++t) {
    tester_refs[t] = names.lookup(0, "Tester#" + std::to_string(t));
  }

  // Tester threads: pop, decode, equivalence-test against the target.
  auto tester_thread = [&](std::size_t t) {
    om::Heap& heap = cluster.machine(t + 1).heap();
    SplitMix64 rng(cfg.seed + t);
    // Pre-generate shared test vectors (same for all candidates).
    std::vector<std::array<std::int64_t, kSopRegs>> vectors(
        static_cast<std::size_t>(cfg.test_vectors));
    SplitMix64 vec_rng(cfg.seed);
    for (auto& v : vectors) {
      for (auto& r : v) r = vec_rng.next_i64();
    }
    while (om::ObjRef obj = queues[t].pop()) {
      const SopProgram candidate = decode(obj);
      bool equal = true;
      for (const auto& v : vectors) {
        std::int64_t r1[kSopRegs], r2[kSopRegs];
        std::copy(v.begin(), v.end(), r1);
        std::copy(v.begin(), v.end(), r2);
        sop_execute(target, r1);
        sop_execute(candidate, r2);
        if (!std::equal(r1, r1 + kSopRegs, r2)) {
          equal = false;
          break;
        }
      }
      if (equal) equivalences.fetch_add(1);
      tested.fetch_add(1);
      heap.free_graph(obj);  // the queue owned it
    }
    (void)rng;
  };
  std::vector<std::thread> tester_threads;
  for (std::size_t t = 0; t < testers; ++t) {
    tester_threads.emplace_back(tester_thread, t);
  }

  // ---- producer (machine 0) -------------------------------------------------
  om::Heap& h0 = cluster.machine(0).heap();
  std::uint64_t sent = 0;
  SopProgram candidate;
  auto emit = [&](const SopProgram& p) {
    om::ObjRef obj = encode(h0, p);
    sys.invoke(0, tester_refs[sent % testers], test_site, std::array{obj});
    h0.free_graph(obj);  // the producer's copy; the tester has its own
    ++sent;
  };
  // Depth-first enumeration of sequences of length 1..max_len.
  auto enumerate = [&](auto&& self, int depth) -> void {
    for (int op = 0; op < kSopOps; ++op) {
      for (int dst = 0; dst < kSopRegs; ++dst) {
        for (int s1 = 0; s1 < kOperandSpace; ++s1) {
          for (int s2 = 0; s2 < kOperandSpace; ++s2) {
            candidate.push_back(SopInstr{static_cast<SopOp>(op), dst,
                                         decode_operand(s1),
                                         decode_operand(s2)});
            emit(candidate);
            if (depth + 1 < cfg.max_len) self(self, depth + 1);
            candidate.pop_back();
          }
        }
      }
    }
  };
  enumerate(enumerate, 0);

  // Drain: all candidates tested, then close the queues.
  while (tested.load() < sent) std::this_thread::yield();
  for (auto& q : queues) q.close();
  for (auto& t : tester_threads) t.join();
  sys.stop();

  RunResult r = collect_run(cluster, sys);
  r.compile = prog.stats;
  r.check = static_cast<double>(equivalences.load());
  return r;
}

}  // namespace rmiopt::apps
