// Shared helpers for the benchmark applications.
#pragma once

#include "apps/run_result.hpp"
#include "net/cluster.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt::apps {

inline RunResult collect_run(net::Cluster& cluster, rmi::RmiSystem& sys) {
  RunResult r;
  r.makespan = cluster.makespan();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    r.per_machine.push_back(sys.stats(static_cast<std::uint16_t>(i)));
    r.total += r.per_machine.back();
  }
  r.net = cluster.stats();
  r.messages = r.net.messages;
  r.bytes = r.net.bytes;
  return r;
}

}  // namespace rmiopt::apps
