// Shared helpers for the benchmark applications.
#pragma once

#include "apps/run_result.hpp"
#include "net/cluster.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt::apps {

inline RunResult collect_run(net::Cluster& cluster, rmi::RmiSystem& sys) {
  RunResult r;
  r.makespan = cluster.makespan();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    r.per_machine.push_back(sys.stats(static_cast<std::uint16_t>(i)));
    r.total += r.per_machine.back();
  }
  const net::NetworkStats::Snapshot net = cluster.stats();
  r.messages = net.messages;
  r.bytes = net.bytes;
  return r;
}

}  // namespace rmiopt::apps
