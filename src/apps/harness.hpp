// Shared helpers for the benchmark applications.
#pragma once

#include <string>

#include "apps/paper_figures.hpp"
#include "apps/run_result.hpp"
#include "driver/pass_manager.hpp"
#include "net/cluster.hpp"
#include "rmi/runtime.hpp"

namespace rmiopt::apps {

inline RunResult collect_run(net::Cluster& cluster, rmi::RmiSystem& sys) {
  RunResult r;
  r.makespan = cluster.makespan();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    r.per_machine.push_back(sys.stats(static_cast<std::uint16_t>(i)));
    r.total += r.per_machine.back();
  }
  r.net = cluster.stats();
  r.messages = r.net.messages;
  r.bytes = r.net.bytes;
  r.profile = sys.export_profile();
  return r;
}

// Find-or-define for the fieldless marker classes the apps export their
// state objects under ("LU", "Server", ...).  Idempotent, so a figure
// model can be shared across runs (a PassManager's analyses then hit on
// every run); the classes carry no fields and are never referenced by the
// IR, so defining them after compilation does not perturb the module's
// fingerprint.
inline om::ClassId marker_class(om::TypeRegistry& types,
                                const std::string& name) {
  if (const om::ClassDescriptor* d = types.find_by_name(name)) return d->id;
  return types.define_class(name, {});
}

// Compiles an app's figure model, through the caller's shared PassManager
// when one is configured (analyses and plans then hit across runs and
// levels) and through the one-shot driver::compile otherwise.  Runners
// pass a null `pm` when the model is run-local: a caching manager must
// never hold analyses of a module that dies with the run (the lifetime
// contract in driver/pass_manager.hpp).
inline driver::CompiledProgram compile_model(
    const figures::FigureProgram& model, codegen::OptLevel level,
    driver::PassManager* pm, const driver::CompileOptions& opts = {}) {
  return pm != nullptr ? pm->compile(*model.module, level, opts)
                       : driver::compile(*model.module, level, opts);
}

}  // namespace rmiopt::apps
