#include "apps/paper_figures.hpp"

namespace rmiopt::apps::figures {

namespace {

FigureProgram make_base() {
  FigureProgram p;
  p.types = std::make_unique<om::TypeRegistry>();
  p.module = std::make_unique<ir::Module>(*p.types);
  return p;
}

}  // namespace

ir::Module::RemoteCallRef FigureProgram::site(std::uint32_t tag) const {
  for (const auto& s : module->remote_call_sites()) {
    if (s.instr->callsite_tag == tag) return s;
  }
  fail("no remote call site with tag " + std::to_string(tag));
}

FigureProgram make_figure2() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId bar = t.define_class("Bar", {});
  const om::ClassId d1 = t.register_prim_array(om::TypeKind::Double);
  const om::ClassId d2 = t.register_ref_array(d1);
  const om::ClassId d3 = t.register_ref_array(d2);
  const om::ClassId foo = t.define_class(
      "Foo", {{"bar", om::TypeKind::Ref, bar}, {"a", om::TypeKind::Ref, d3}});
  p.classes = {{"Bar", bar}, {"Foo", foo}, {"[D", d1}, {"[[D", d2},
               {"[[[D", d3}};

  ir::Function& main =
      p.module->add_function("main", {}, ir::Type::void_type());
  ir::FunctionBuilder b(*p.module, main);
  const auto v_foo = b.alloc(foo);        // allocation 1
  const auto v_bar = b.alloc(bar);        // allocation 2
  b.store_field(v_foo, "bar", v_bar);
  const auto v_a3 = b.alloc_array(d3);    // allocation 3
  b.store_field(v_foo, "a", v_a3);
  const auto v_a2 = b.alloc_array(d2);    // allocation 4
  b.store_index(v_a3, v_a2);
  const auto v_a1 = b.alloc_array(d1);    // allocation 5
  b.store_index(v_a2, v_a1);
  b.ret();
  p.funcs = {{"main", main.id}};
  return p;
}

FigureProgram make_figure3() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId data = t.define_class("Data", {});
  p.classes = {{"Data", data}};

  ir::Function& foo = p.module->add_function(
      "Foo.foo", {ir::Type::object()}, ir::Type::object(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, foo);
    b.ret(b.param(0));  // Object foo(Object a) { return a; }
  }

  ir::Function& zoo =
      p.module->add_function("zoo", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, zoo);
    const auto v_t = b.alloc(data);  // allocation (2)
    b.set_block("loop");
    const auto v_phi = b.phi({v_t});
    const auto v_call = b.remote_call(foo.id, {v_phi}, /*tag=*/1);
    b.append_phi_input(v_phi, v_call);  // t = me.foo(t) around the loop
    b.ret();
  }
  p.funcs = {{"Foo.foo", foo.id}, {"zoo", zoo.id}};
  p.tags = {{"foo", 1}};
  return p;
}

FigureProgram make_figure5() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId base = t.define_class("Base", {});
  const om::ClassId derived1 =
      t.define_class("Derived1", {{"data", om::TypeKind::Int}}, base);
  const om::ClassId derived2 = t.define_class(
      "Derived2", {{"p", om::TypeKind::Ref, derived1}}, base);
  p.classes = {{"Base", base}, {"Derived1", derived1},
               {"Derived2", derived2}};

  ir::Function& foo = p.module->add_function(
      "Work.foo", {ir::Type::ref(base)}, ir::Type::void_type(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, foo);
    b.ret();
  }

  ir::Function& go = p.module->add_function("Work.go", {},
                                            ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, go);
    const auto b1 = b.alloc(derived1);  // allocation (2)
    b.remote_call(foo.id, {b1}, /*tag=*/1);
    const auto b2 = b.alloc(derived2);  // allocation (3)
    const auto pfield = b.alloc(derived1);  // allocation (1): Derived2.p
    b.store_field(b2, "p", pfield);
    b.remote_call(foo.id, {b2}, /*tag=*/2);
    b.ret();
  }
  p.funcs = {{"Work.foo", foo.id}, {"Work.go", go.id}};
  p.tags = {{"foo#1", 1}, {"foo#2", 2}};
  return p;
}

namespace {

FigureProgram make_figure8_impl(bool aliased) {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId base = t.define_class("Base", {});
  p.classes = {{"Base", base}};

  ir::Function& bar = p.module->add_function(
      "bar", {ir::Type::ref(base), ir::Type::ref(base)},
      ir::Type::void_type(), /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, bar);
    b.ret();
  }
  ir::Function& foo =
      p.module->add_function("foo", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, foo);
    const auto v1 = b.alloc(base);  // allocation (3)
    if (aliased) {
      b.remote_call(bar.id, {v1, v1}, /*tag=*/1);  // bar(b, b)
    } else {
      const auto v2 = b.alloc(base);
      b.remote_call(bar.id, {v1, v2}, /*tag=*/1);  // bar(b1, b2)
    }
    b.ret();
  }
  p.funcs = {{"bar", bar.id}, {"foo", foo.id}};
  p.tags = {{"bar", 1}};
  return p;
}

}  // namespace

FigureProgram make_figure8() { return make_figure8_impl(/*aliased=*/true); }
FigureProgram make_figure8_distinct() {
  return make_figure8_impl(/*aliased=*/false);
}

FigureProgram make_figure9() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId base = t.declare_class("Base");
  t.define_fields(base, {{"self", om::TypeKind::Ref, base}});
  p.classes = {{"Base", base}};

  ir::Function& bar = p.module->add_function(
      "bar", {ir::Type::ref(base)}, ir::Type::void_type(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, bar);
    b.ret();
  }
  ir::Function& foo =
      p.module->add_function("foo", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, foo);
    const auto v = b.alloc(base);  // allocation (4)
    b.store_field(v, "self", v);   // b.self = b
    b.remote_call(bar.id, {v}, /*tag=*/1);
    b.ret();
  }
  p.funcs = {{"bar", bar.id}, {"foo", foo.id}};
  p.tags = {{"bar", 1}};
  return p;
}

FigureProgram make_figure10() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId darr = t.register_prim_array(om::TypeKind::Double);
  p.classes = {{"[D", darr}};
  const ir::GlobalId sum =
      p.module->add_global("Foo.sum", ir::Type::prim(om::TypeKind::Double));

  ir::Function& foo = p.module->add_function(
      "Foo.foo", {ir::Type::ref(darr)}, ir::Type::void_type(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, foo);
    const auto a0 = b.load_index(b.param(0));
    const auto a1 = b.load_index(b.param(0));
    const auto s = b.arith({a0, a1}, om::TypeKind::Double);
    b.store_static(sum, s);  // this.sum = a[0] + a[1] (primitive)
    b.ret();
  }
  ir::Function& caller =
      p.module->add_function("caller", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, caller);
    const auto arr = b.alloc_array(darr);
    b.remote_call(foo.id, {arr}, /*tag=*/1);
    b.ret();
  }
  p.funcs = {{"Foo.foo", foo.id}, {"caller", caller.id}};
  p.tags = {{"foo", 1}};
  return p;
}

FigureProgram make_figure11() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId data = t.define_class("Data", {});
  const om::ClassId bar =
      t.define_class("Bar", {{"d", om::TypeKind::Ref, data}});
  p.classes = {{"Data", data}, {"Bar", bar}};
  const ir::GlobalId g_d = p.module->add_global("Foo.d", ir::Type::ref(data));

  ir::Function& foo = p.module->add_function(
      "Foo.foo", {ir::Type::ref(bar)}, ir::Type::void_type(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, foo);
    const auto d = b.load_field(b.param(0), "d");
    b.store_static(g_d, d);  // d = a.d — escapes (Figure 11)
    b.ret();
  }
  ir::Function& caller =
      p.module->add_function("caller", {}, ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, caller);
    const auto v_bar = b.alloc(bar);
    const auto v_data = b.alloc(data);
    b.store_field(v_bar, "d", v_data);
    b.remote_call(foo.id, {v_bar}, /*tag=*/1);
    b.ret();
  }
  p.funcs = {{"Foo.foo", foo.id}, {"caller", caller.id}};
  p.tags = {{"foo", 1}};
  return p;
}

FigureProgram make_figure12() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId row = t.register_prim_array(om::TypeKind::Double);
  const om::ClassId mat = t.register_ref_array(row);
  p.classes = {{"[D", row}, {"[[D", mat}};

  ir::Function& send = p.module->add_function(
      "ArrayBench.send", {ir::Type::ref(mat)}, ir::Type::void_type(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, send);
    b.ret();
  }
  ir::Function& bench = p.module->add_function("ArrayBench.benchmark", {},
                                               ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, bench);
    const auto v_mat = b.alloc_array(mat);  // new double[16][16] (outer)
    const auto v_row = b.alloc_array(row);  //   ... (inner rows)
    b.store_index(v_mat, v_row);
    b.remote_call(send.id, {v_mat}, /*tag=*/1);
    b.ret();
  }
  p.funcs = {{"ArrayBench.send", send.id},
             {"ArrayBench.benchmark", bench.id}};
  p.tags = {{"send", 1}};
  return p;
}

FigureProgram make_figure14() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId list = t.declare_class("LinkedList");
  t.define_fields(list, {{"Next", om::TypeKind::Ref, list}});
  p.classes = {{"LinkedList", list}};

  ir::Function& send = p.module->add_function(
      "Foo.send", {ir::Type::ref(list)}, ir::Type::void_type(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, send);
    b.ret();
  }
  ir::Function& bench = p.module->add_function("Foo.benchmark", {},
                                               ir::Type::void_type());
  {
    // for (i..100) head = new LinkedList(head); f.send(head);
    // One allocation site in a loop: the node's Next may point to a node
    // from the same site — the heap graph has a self edge.
    ir::FunctionBuilder b(*p.module, bench);
    b.set_block("loop");
    const auto v_phi = b.empty_phi(ir::Type::ref(list));
    const auto v_node = b.alloc(list);
    b.store_field(v_node, "Next", v_phi);
    b.append_phi_input(v_phi, v_node);
    b.remote_call(send.id, {v_node}, /*tag=*/1);
    b.ret();
  }
  p.funcs = {{"Foo.send", send.id}, {"Foo.benchmark", bench.id}};
  p.tags = {{"send", 1}};
  return p;
}

FigureProgram make_webserver_model() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId str = t.string_class();
  const om::ClassId str_arr = t.register_ref_array(str);
  p.classes = {{"String", str}, {"[LString;", str_arr}};
  const ir::GlobalId g_pages =
      p.module->add_global("Server.pages", ir::Type::ref(str_arr));

  ir::Function& get_page = p.module->add_function(
      "Server.get_page", {ir::Type::ref(str)}, ir::Type::ref(str),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, get_page);
    const auto table = b.load_static(g_pages);
    const auto page = b.load_index(table);
    b.ret(page);  // page = table[url.hashCode() % n]
  }
  ir::Function& init = p.module->add_function("Server.init", {},
                                              ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, init);
    const auto table = b.alloc_array(str_arr);
    b.store_static(g_pages, table);
    const auto page = b.alloc_array(str);  // the stored pages
    b.store_index(table, page);
    b.ret();
  }
  ir::Function& master = p.module->add_function("Master.serve", {},
                                                ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, master);
    const auto url = b.alloc_array(str);  // request URL string
    const auto page = b.remote_call(get_page.id, {url}, /*tag=*/1);
    b.load_index(page);  // the master forwards the page: result is used
    b.ret();
  }
  p.funcs = {{"Server.get_page", get_page.id}, {"Server.init", init.id},
             {"Master.serve", master.id}};
  p.tags = {{"get_page", 1}};
  return p;
}

FigureProgram make_superopt_model() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId operand = t.define_class(
      "Operand", {{"kind", om::TypeKind::Int}, {"value", om::TypeKind::Long}});
  const om::ClassId instr = t.define_class(
      "Instruction", {{"opcode", om::TypeKind::Int},
                      {"a", om::TypeKind::Ref, operand},
                      {"b", om::TypeKind::Ref, operand},
                      {"c", om::TypeKind::Ref, operand}});
  const om::ClassId instr_arr = t.register_ref_array(instr);
  const om::ClassId program = t.define_class(
      "Program", {{"code", om::TypeKind::Ref, instr_arr}});
  const om::ClassId prog_arr = t.register_ref_array(program);
  p.classes = {{"Operand", operand}, {"Instruction", instr},
               {"[LInstruction;", instr_arr}, {"Program", program}};
  const ir::GlobalId g_queue =
      p.module->add_global("Tester.queue", ir::Type::ref(prog_arr));

  ir::Function& test = p.module->add_function(
      "Tester.test", {ir::Type::ref(program)}, ir::Type::void_type(),
      /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, test);
    const auto q = b.load_static(g_queue);
    b.store_index(q, b.param(0));  // queued: the program escapes (§5.3)
    b.ret();
  }
  ir::Function& init = p.module->add_function("Tester.init", {},
                                              ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, init);
    const auto q = b.alloc_array(prog_arr);
    b.store_static(g_queue, q);
    b.ret();
  }
  ir::Function& producer = p.module->add_function("Producer.run", {},
                                                  ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, producer);
    const auto v_prog = b.alloc(program);
    const auto v_code = b.alloc_array(instr_arr);
    b.store_field(v_prog, "code", v_code);
    const auto v_ins = b.alloc(instr);
    b.store_index(v_code, v_ins);
    const auto v_a = b.alloc(operand);
    b.store_field(v_ins, "a", v_a);
    const auto v_b = b.alloc(operand);
    b.store_field(v_ins, "b", v_b);
    const auto v_c = b.alloc(operand);
    b.store_field(v_ins, "c", v_c);
    b.remote_call(test.id, {v_prog}, /*tag=*/1);
    b.ret();
  }
  p.funcs = {{"Tester.test", test.id}, {"Tester.init", init.id},
             {"Producer.run", producer.id}};
  p.tags = {{"test", 1}};
  return p;
}

FigureProgram make_lu_model() {
  FigureProgram p = make_base();
  om::TypeRegistry& t = *p.types;
  const om::ClassId row = t.register_prim_array(om::TypeKind::Double);
  const om::ClassId mat = t.register_ref_array(row);
  p.classes = {{"[D", row}, {"[[D", mat}};
  const ir::GlobalId g_matrix =
      p.module->add_global("LU.matrix", ir::Type::ref(mat));

  // remote void flush(long row_index, double[] data): writes the received
  // values into the master's matrix (primitive stores only).
  ir::Function& flush = p.module->add_function(
      "LU.flush",
      {ir::Type::prim(om::TypeKind::Long), ir::Type::ref(row)},
      ir::Type::void_type(), /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, flush);
    const auto m = b.load_static(g_matrix);
    const auto r = b.load_index(m);
    const auto x = b.load_index(b.param(1));
    b.store_index(r, x);  // matrix[i][j] = data[j] (primitive)
    b.ret();
  }
  // remote double[] fetch_row(long row_index): returns a row of the master
  // matrix (the workers' read path).
  ir::Function& fetch = p.module->add_function(
      "LU.fetch_row", {ir::Type::prim(om::TypeKind::Long)},
      ir::Type::ref(row), /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, fetch);
    const auto m = b.load_static(g_matrix);
    const auto r = b.load_index(m);
    b.ret(r);
  }
  // remote void barrier(): blocks until all machines arrive.
  ir::Function& barrier = p.module->add_function(
      "LU.barrier", {}, ir::Type::void_type(), /*is_remote_method=*/true);
  {
    ir::FunctionBuilder b(*p.module, barrier);
    b.ret();
  }
  ir::Function& init = p.module->add_function("LU.init", {},
                                              ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, init);
    const auto m = b.alloc_array(mat);
    b.store_static(g_matrix, m);
    const auto r = b.alloc_array(row);
    b.store_index(m, r);
    b.ret();
  }
  ir::Function& worker = p.module->add_function("LU.worker", {},
                                                ir::Type::void_type());
  {
    ir::FunctionBuilder b(*p.module, worker);
    const auto idx = b.const_int(0);
    const auto fetched = b.remote_call(fetch.id, {idx}, /*tag=*/2);
    b.load_index(fetched);  // row values are consumed: result is used
    const auto data = b.alloc_array(row);
    b.remote_call(flush.id, {idx, data}, /*tag=*/1);
    b.remote_call(barrier.id, {}, /*tag=*/3);
    b.ret();
  }
  p.funcs = {{"LU.flush", flush.id}, {"LU.fetch_row", fetch.id},
             {"LU.barrier", barrier.id}, {"LU.init", init.id},
             {"LU.worker", worker.id}};
  p.tags = {{"flush", 1}, {"fetch_row", 2}, {"barrier", 3}};
  return p;
}

}  // namespace rmiopt::apps::figures
