// Frontend entry point: MiniParty source text -> type registry + IR
// module, ready for driver::compile().
//
// Semantics notes (documented divergences from full Java, all irrelevant
// to the paper's analyses):
//  * no constructors — `new C(a, b)` assigns a, b to C's first fields in
//    declaration order ("record-style" construction, enough for the
//    paper's `new LinkedList(head)`);
//  * no implicit `this`: instance state of *remote* classes is per-VM
//    (JavaParty remote objects act as per-machine singletons here), so
//    `this.f` in a remote class lowers to a module global `Class.f`;
//    regular classes access fields only through explicit references;
//  * no overloading; locals must be initialized at declaration;
//  * `while`/`if` lower to SSA phis — conditions are evaluated for their
//    data-flow effects only (the analyses are flow-insensitive).
#pragma once

#include <map>
#include <memory>

#include "frontend/ast.hpp"
#include "ir/builder.hpp"

namespace rmiopt::frontend {

struct Unit {
  std::unique_ptr<om::TypeRegistry> types;
  std::unique_ptr<ir::Module> module;
  std::map<std::string, om::ClassId> classes;
  std::map<std::string, ir::FuncId> functions;     // "Class.method"
  std::map<std::uint32_t, std::string> callsites;  // tag -> "Class.method@line"

  om::ClassId cls(const std::string& name) const { return classes.at(name); }
  ir::FuncId func(const std::string& name) const {
    return functions.at(name);
  }
  // The tags of every remote call to `Class.method`, in source order.
  std::vector<std::uint32_t> tags_for(const std::string& callee) const;
};

// Parses, type-checks and lowers `source`; throws ParseError on any
// lexical, syntactic or semantic error (with line:column).  The returned
// module is verified.
Unit compile_source(std::string_view source);

}  // namespace rmiopt::frontend
