// Abstract syntax tree of MiniParty.
//
// MiniParty is the JavaParty-like subset the frontend accepts — enough to
// express every program in the paper (all of Figures 2–14 plus the three
// applications' communication structure):
//
//   program    := class-decl*
//   class-decl := ['remote'] 'class' Ident ['extends' Ident]
//                 '{' (field-decl | method-decl)* '}'
//   field-decl := ['static'] type Ident ';'
//   method-decl:= ['static'] (type | 'void') Ident '(' params ')' block
//   type       := ('int'|'long'|'double'|float...|Ident) ('[' ']')*
//   stmt       := type Ident '=' expr ';'        (local declaration)
//              | lvalue '=' expr ';'             (assignment)
//              | expr ';'                        (call statement)
//              | 'return' [expr] ';'
//              | 'while' '(' expr ')' block
//              | 'if' '(' expr ')' block ['else' block]
//   expr       := primary (('.' Ident ['(' args ')']) | '[' expr ']')*
//                 with binary operators + - * / % < > <= >= == != && ||
//   primary    := literal | 'null' | Ident | 'new' Ident '(' args ')'
//              | 'new' type ('[' expr ']')+ | '(' expr ')'
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "frontend/lexer.hpp"

namespace rmiopt::frontend {

// A (possibly array) type as written: base name + array dimensions.
struct TypeName {
  std::string base;  // "int", "double", ... or a class name; "void"
  int dims = 0;
  SourceLoc loc;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  IntLit,
  DoubleLit,
  Null,
  Var,       // name
  New,       // new C(args)
  NewArray,  // new base[d0][d1]... (args = dimension exprs)
  FieldGet,  // target.name
  Index,     // target[args[0]]
  Call,      // target.name(args) or name(args) (target may be a Var that
             //   names a class -> static call, resolved in sema)
  Binary,    // lhs op rhs
};

struct Expr {
  ExprKind kind = ExprKind::Null;
  SourceLoc loc;
  std::string name;          // Var / New class / FieldGet field / Call method
  TypeName array_base;       // NewArray element type
  ExprPtr target;            // FieldGet / Index / Call receiver (may be null)
  std::vector<ExprPtr> args; // Call args, New args, NewArray dims, Index idx
  ExprPtr lhs, rhs;          // Binary
  std::string op;            // Binary operator text
  std::int64_t int_value = 0;
  double double_value = 0.0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  LocalDecl,  // type name = value;
  Assign,     // lvalue = value;   (lvalue: Var / FieldGet / Index)
  ExprStmt,   // value;
  Return,     // return [value];
  While,      // while (cond) body
  If,         // if (cond) body [else else_body]
};

struct Stmt {
  StmtKind kind = StmtKind::ExprStmt;
  SourceLoc loc;
  TypeName decl_type;  // LocalDecl
  std::string name;    // LocalDecl variable name
  ExprPtr lvalue;      // Assign target
  ExprPtr value;       // LocalDecl init / Assign rhs / ExprStmt / Return
  ExprPtr cond;        // While / If
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
};

struct ParamDecl {
  TypeName type;
  std::string name;
};

struct MethodDecl {
  SourceLoc loc;
  bool is_static = false;
  TypeName ret;  // base == "void" for void
  std::string name;
  std::vector<ParamDecl> params;
  std::vector<StmtPtr> body;
};

struct FieldDecl {
  SourceLoc loc;
  bool is_static = false;
  TypeName type;
  std::string name;
};

struct ClassDecl {
  SourceLoc loc;
  bool is_remote = false;
  std::string name;
  std::string extends;  // empty if none
  std::vector<FieldDecl> fields;
  std::vector<MethodDecl> methods;
};

struct ProgramAst {
  std::vector<ClassDecl> classes;
};

// Parses MiniParty source; throws ParseError with position info.
ProgramAst parse(std::string_view source);

}  // namespace rmiopt::frontend
