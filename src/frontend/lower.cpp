// Semantic analysis and SSA lowering: MiniParty AST -> ir::Module.
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "frontend/compile.hpp"

namespace rmiopt::frontend {

namespace {

om::TypeKind prim_kind(const std::string& name, const SourceLoc& loc) {
  if (name == "boolean") return om::TypeKind::Bool;
  if (name == "byte") return om::TypeKind::Byte;
  if (name == "short") return om::TypeKind::Short;
  if (name == "int") return om::TypeKind::Int;
  if (name == "long") return om::TypeKind::Long;
  if (name == "float") return om::TypeKind::Float;
  if (name == "double") return om::TypeKind::Double;
  throw ParseError(loc, "unknown primitive type '" + name + "'");
}

bool is_prim_name(const std::string& name) {
  return name == "boolean" || name == "byte" || name == "short" ||
         name == "int" || name == "long" || name == "float" ||
         name == "double";
}

struct MethodInfo {
  const ClassDecl* owner = nullptr;
  const MethodDecl* decl = nullptr;
  ir::FuncId func = 0;
  bool remote = false;
};

class Lowerer {
 public:
  Lowerer(const ProgramAst& ast, Unit& unit) : ast_(ast), unit_(unit) {}

  void run() {
    declare_classes();
    define_class_fields();
    declare_globals();
    declare_methods();
    lower_bodies();
    ir::verify(*unit_.module);
  }

 private:
  // ---- type resolution ------------------------------------------------------

  const ClassDecl* find_class(const std::string& name) const {
    for (const auto& c : ast_.classes) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }

  ir::Type resolve(const TypeName& t) {
    if (t.base == "void") {
      if (t.dims != 0) throw ParseError(t.loc, "void cannot be an array");
      return ir::Type::void_type();
    }
    om::ClassId cls = om::kNoClass;
    om::TypeKind kind = om::TypeKind::Ref;
    if (is_prim_name(t.base)) {
      kind = prim_kind(t.base, t.loc);
    } else {
      auto it = unit_.classes.find(t.base);
      if (it == unit_.classes.end()) {
        throw ParseError(t.loc, "unknown type '" + t.base + "'");
      }
      cls = it->second;
    }
    if (t.dims == 0) {
      return kind == om::TypeKind::Ref ? ir::Type::ref(cls)
                                       : ir::Type::prim(kind);
    }
    om::TypeRegistry& types = *unit_.types;
    om::ClassId arr = kind == om::TypeKind::Ref
                          ? types.register_ref_array(cls)
                          : types.register_prim_array(kind);
    for (int d = 1; d < t.dims; ++d) arr = types.register_ref_array(arr);
    return ir::Type::ref(arr);
  }

  static om::FieldSpec to_field_spec(const std::string& name,
                                     const ir::Type& t) {
    om::FieldSpec spec;
    spec.name = name;
    spec.kind = t.is_ref() ? om::TypeKind::Ref : t.kind;
    spec.ref_class = t.is_ref() ? t.class_id : om::kNoClass;
    return spec;
  }

  // ---- declaration passes ---------------------------------------------------

  void declare_classes() {
    for (const auto& c : ast_.classes) {
      if (unit_.classes.contains(c.name)) {
        throw ParseError(c.loc, "duplicate class '" + c.name + "'");
      }
      unit_.classes.emplace(c.name, unit_.types->declare_class(c.name));
    }
  }

  void define_class_fields() {
    for (const auto& c : ast_.classes) {
      om::ClassId super = om::kNoClass;
      if (!c.extends.empty()) {
        auto it = unit_.classes.find(c.extends);
        if (it == unit_.classes.end()) {
          throw ParseError(c.loc, "unknown superclass '" + c.extends + "'");
        }
        super = it->second;
      }
      std::vector<om::FieldSpec> specs;
      for (const auto& f : c.fields) {
        // Remote-class instance fields are per-VM state (see compile.hpp);
        // they become globals, not object fields.
        if (f.is_static || c.is_remote) continue;
        specs.push_back(to_field_spec(f.name, resolve(f.type)));
      }
      unit_.types->define_fields(unit_.cls(c.name), specs, super);
    }
  }

  void declare_globals() {
    for (const auto& c : ast_.classes) {
      for (const auto& f : c.fields) {
        if (!f.is_static && !c.is_remote) continue;
        const std::string qualified = c.name + "." + f.name;
        globals_.emplace(qualified,
                         unit_.module->add_global(qualified, resolve(f.type)));
      }
    }
  }

  void declare_methods() {
    for (const auto& c : ast_.classes) {
      for (const auto& m : c.methods) {
        const std::string qualified = c.name + "." + m.name;
        if (methods_.contains(qualified)) {
          throw ParseError(m.loc, "duplicate method '" + qualified +
                                      "' (no overloading)");
        }
        std::vector<ir::Type> params;
        for (const auto& p : m.params) params.push_back(resolve(p.type));
        const bool remote = c.is_remote && !m.is_static;
        ir::Function& f = unit_.module->add_function(
            qualified, std::move(params), resolve(m.ret), remote);
        MethodInfo info;
        info.owner = &c;
        info.decl = &m;
        info.func = f.id;
        info.remote = remote;
        methods_.emplace(qualified, info);
        unit_.functions.emplace(qualified, f.id);
      }
    }
  }

  // Looks `method` up on `cls` or its ancestors.
  const MethodInfo* find_method(const std::string& cls_name,
                                const std::string& method) const {
    const ClassDecl* c = find_class(cls_name);
    while (c != nullptr) {
      auto it = methods_.find(c->name + "." + method);
      if (it != methods_.end()) return &it->second;
      c = c->extends.empty() ? nullptr : find_class(c->extends);
    }
    return nullptr;
  }

  // ---- body lowering ---------------------------------------------------------

  struct Value {
    ir::ValueId id = ir::kNoValue;
    ir::Type type;
  };

  struct BodyCtx {
    const ClassDecl* cls = nullptr;
    const MethodDecl* method = nullptr;
    ir::FunctionBuilder* b = nullptr;
    std::unordered_map<std::string, Value> env;
  };

  void lower_bodies() {
    for (const auto& c : ast_.classes) {
      for (const auto& m : c.methods) {
        const MethodInfo& info = methods_.at(c.name + "." + m.name);
        ir::Function& f = unit_.module->function(info.func);
        ir::FunctionBuilder b(*unit_.module, f);
        BodyCtx ctx;
        ctx.cls = &c;
        ctx.method = &m;
        ctx.b = &b;
        for (std::size_t i = 0; i < m.params.size(); ++i) {
          ctx.env[m.params[i].name] =
              Value{b.param(i), f.params[i]};
        }
        lower_stmts(ctx, m.body);
        // Implicit trailing return for void methods.
        if (f.ret.is_void) b.ret();
      }
    }
  }

  void lower_stmts(BodyCtx& ctx, const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) lower_stmt(ctx, *s);
  }

  void check_assignable(const ir::Type& dst, const Value& src,
                        const SourceLoc& loc) {
    if (dst.is_ref()) {
      if (!src.type.is_ref()) {
        throw ParseError(loc, "cannot assign a primitive to a reference");
      }
      if (dst.class_id == om::kNoClass || src.type.class_id == om::kNoClass) {
        return;  // Object / null: always assignable
      }
      if (!unit_.types->is_subclass_of(src.type.class_id, dst.class_id)) {
        throw ParseError(loc, "cannot assign " +
                                  unit_.types->get(src.type.class_id).name +
                                  " to " +
                                  unit_.types->get(dst.class_id).name);
      }
      return;
    }
    if (src.type.is_ref() || src.type.is_void) {
      throw ParseError(loc, "cannot assign a reference to a primitive");
    }
  }

  void lower_stmt(BodyCtx& ctx, const Stmt& s) {
    switch (s.kind) {
      case StmtKind::LocalDecl: {
        const ir::Type t = resolve(s.decl_type);
        if (ctx.env.contains(s.name)) {
          throw ParseError(s.loc, "redefinition of '" + s.name + "'");
        }
        Value v = lower_expr(ctx, *s.value);
        v = coerce_null(ctx, v, t);
        check_assignable(t, v, s.loc);
        ctx.env[s.name] = Value{v.id, t};
        return;
      }
      case StmtKind::Assign:
        lower_assign(ctx, *s.lvalue, *s.value, s.loc);
        return;
      case StmtKind::ExprStmt:
        lower_expr(ctx, *s.value);
        return;
      case StmtKind::Return: {
        const ir::Function& f = unit_.module->function(
            methods_.at(ctx.cls->name + "." + ctx.method->name).func);
        if (s.value == nullptr) {
          if (!f.ret.is_void) {
            throw ParseError(s.loc, "non-void method must return a value");
          }
          ctx.b->ret();
          return;
        }
        if (f.ret.is_void) {
          throw ParseError(s.loc, "void method cannot return a value");
        }
        Value v = lower_expr(ctx, *s.value);
        v = coerce_null(ctx, v, f.ret);
        check_assignable(f.ret, v, s.loc);
        ctx.b->ret(v.id);
        return;
      }
      case StmtKind::While:
        lower_while(ctx, s);
        return;
      case StmtKind::If:
        lower_if(ctx, s);
        return;
    }
  }

  // Variables (re)assigned anywhere below `stmts` (for phi placement).
  static void collect_assigned(const std::vector<StmtPtr>& stmts,
                               std::unordered_set<std::string>& out) {
    for (const auto& s : stmts) {
      if (s->kind == StmtKind::Assign &&
          s->lvalue->kind == ExprKind::Var) {
        out.insert(s->lvalue->name);
      }
      collect_assigned(s->body, out);
      collect_assigned(s->else_body, out);
    }
  }

  void lower_while(BodyCtx& ctx, const Stmt& s) {
    std::unordered_set<std::string> assigned;
    collect_assigned(s.body, assigned);

    ctx.b->set_block("loop@" + std::to_string(s.loc.line));
    std::unordered_map<std::string, ir::ValueId> phis;
    for (const auto& name : assigned) {
      auto it = ctx.env.find(name);
      if (it == ctx.env.end()) continue;  // loop-local, scoped below
      const ir::ValueId ph = ctx.b->phi({it->second.id});
      phis.emplace(name, ph);
      it->second.id = ph;
    }
    lower_expr(ctx, *s.cond);  // data-flow effects only

    auto loop_env = ctx.env;
    BodyCtx body_ctx = ctx;
    lower_stmts(body_ctx, s.body);
    for (const auto& [name, ph] : phis) {
      ctx.b->append_phi_input(ph, body_ctx.env.at(name).id);
      // After the loop the variable's value is the phi (0, 1, ... trips).
      ctx.env[name].id = ph;
    }
    ctx.b->set_block("endloop@" + std::to_string(s.loc.line));
  }

  void lower_if(BodyCtx& ctx, const Stmt& s) {
    lower_expr(ctx, *s.cond);
    BodyCtx then_ctx = ctx;
    lower_stmts(then_ctx, s.body);
    BodyCtx else_ctx = ctx;
    lower_stmts(else_ctx, s.else_body);
    // Merge: any pre-existing variable whose value diverged gets a phi.
    for (auto& [name, v] : ctx.env) {
      const ir::ValueId tv = then_ctx.env.at(name).id;
      const ir::ValueId ev = else_ctx.env.at(name).id;
      if (tv != ev) {
        v.id = ctx.b->phi({tv, ev});
      } else {
        v.id = tv;
      }
    }
  }

  void lower_assign(BodyCtx& ctx, const Expr& lvalue, const Expr& rhs,
                    const SourceLoc& loc) {
    if (lvalue.kind == ExprKind::Var) {
      // Static field of the current class shadows... locals first.
      auto it = ctx.env.find(lvalue.name);
      if (it != ctx.env.end()) {
        Value v = lower_expr(ctx, rhs);
        v = coerce_null(ctx, v, it->second.type);
        check_assignable(it->second.type, v, loc);
        it->second.id = v.id;
        return;
      }
      // Unqualified static/per-VM field of the enclosing class.
      const auto g = find_global(ctx.cls->name, lvalue.name);
      if (g.has_value()) {
        Value v = lower_expr(ctx, rhs);
        const ir::Type gt = unit_.module->global(*g).type;
        v = coerce_null(ctx, v, gt);
        check_assignable(gt, v, loc);
        ctx.b->store_static(*g, v.id);
        return;
      }
      throw ParseError(loc, "unknown variable '" + lvalue.name + "'");
    }
    if (lvalue.kind == ExprKind::FieldGet) {
      // Class-qualified static?  `this.f`?  Otherwise an object field.
      if (auto g = resolve_static_target(ctx, lvalue)) {
        Value v = lower_expr(ctx, rhs);
        const ir::Type gt = unit_.module->global(*g).type;
        v = coerce_null(ctx, v, gt);
        check_assignable(gt, v, loc);
        ctx.b->store_static(*g, v.id);
        return;
      }
      Value target = lower_expr(ctx, *lvalue.target);
      require_class_ref(target, lvalue.loc);
      Value v = lower_expr(ctx, rhs);
      const om::ClassDescriptor& cls = unit_.types->get(target.type.class_id);
      const ir::Type ft = field_type(cls, lvalue.name, lvalue.loc);
      v = coerce_null(ctx, v, ft);
      check_assignable(ft, v, loc);
      ctx.b->store_field(target.id, lvalue.name, v.id);
      return;
    }
    if (lvalue.kind == ExprKind::Index) {
      Value target = lower_expr(ctx, *lvalue.target);
      require_class_ref(target, lvalue.loc);
      lower_expr(ctx, *lvalue.args[0]);  // index: data-flow only
      Value v = lower_expr(ctx, rhs);
      const om::ClassDescriptor& cls = unit_.types->get(target.type.class_id);
      if (!cls.is_array) {
        throw ParseError(lvalue.loc, "indexed assignment to a non-array");
      }
      const ir::Type et = cls.elem_kind == om::TypeKind::Ref
                              ? ir::Type::ref(cls.elem_class)
                              : ir::Type::prim(cls.elem_kind);
      v = coerce_null(ctx, v, et);
      check_assignable(et, v, loc);
      ctx.b->store_index(target.id, v.id);
      return;
    }
    throw ParseError(loc, "expression is not assignable");
  }

  // ---- expression lowering ----------------------------------------------------

  void require_class_ref(const Value& v, const SourceLoc& loc) {
    if (!v.type.is_ref() || v.type.class_id == om::kNoClass) {
      throw ParseError(loc, "expression is not an object reference of a "
                            "known class");
    }
  }

  ir::Type field_type(const om::ClassDescriptor& cls, const std::string& name,
                      const SourceLoc& loc) {
    for (const auto& f : cls.fields) {
      if (f.name == name) {
        return f.kind == om::TypeKind::Ref ? ir::Type::ref(f.ref_class)
                                           : ir::Type::prim(f.kind);
      }
    }
    throw ParseError(loc, "class " + cls.name + " has no field '" + name +
                              "'");
  }

  std::optional<ir::GlobalId> find_global(const std::string& cls_name,
                                          const std::string& field) const {
    // Walk the inheritance chain for statics too.
    const ClassDecl* c = find_class(cls_name);
    while (c != nullptr) {
      auto it = globals_.find(c->name + "." + field);
      if (it != globals_.end()) return it->second;
      c = c->extends.empty() ? nullptr : find_class(c->extends);
    }
    return std::nullopt;
  }

  // Resolves `lvalue`/expr of shape target.name to a global when the
  // target is a class name or `this` inside a remote class.
  std::optional<ir::GlobalId> resolve_static_target(BodyCtx& ctx,
                                                    const Expr& e) {
    if (e.kind != ExprKind::FieldGet || e.target == nullptr ||
        e.target->kind != ExprKind::Var) {
      return std::nullopt;
    }
    const std::string& base = e.target->name;
    if (ctx.env.contains(base)) return std::nullopt;  // a real object
    if (base == "this") {
      if (!ctx.cls->is_remote) {
        throw ParseError(e.loc,
                         "'this' is only supported in remote classes "
                         "(per-VM state)");
      }
      const auto g = find_global(ctx.cls->name, e.name);
      if (!g.has_value()) {
        throw ParseError(e.loc, "remote class " + ctx.cls->name +
                                    " has no field '" + e.name + "'");
      }
      return g;
    }
    if (find_class(base) != nullptr) {
      const auto g = find_global(base, e.name);
      if (!g.has_value()) {
        throw ParseError(e.loc,
                         "class " + base + " has no static '" + e.name + "'");
      }
      return g;
    }
    return std::nullopt;
  }

  Value coerce_null(BodyCtx& ctx, Value v, const ir::Type& expected) {
    // An untyped null adopts the expected reference type.
    if (v.type.is_ref() && v.type.class_id == om::kNoClass &&
        expected.is_ref() && expected.class_id != om::kNoClass &&
        v.id != ir::kNoValue) {
      (void)ctx;
      v.type = expected;
    }
    return v;
  }

  Value lower_expr(BodyCtx& ctx, const Expr& e) {
    ir::FunctionBuilder& b = *ctx.b;
    switch (e.kind) {
      case ExprKind::IntLit:
        return Value{b.const_int(e.int_value),
                     ir::Type::prim(om::TypeKind::Long)};
      case ExprKind::DoubleLit:
        return Value{b.arith({}, om::TypeKind::Double),
                     ir::Type::prim(om::TypeKind::Double)};
      case ExprKind::Null:
        return Value{b.const_null(), ir::Type::object()};
      case ExprKind::Var: {
        auto it = ctx.env.find(e.name);
        if (it != ctx.env.end()) return it->second;
        if (const auto g = find_global(ctx.cls->name, e.name)) {
          return Value{b.load_static(*g), unit_.module->global(*g).type};
        }
        throw ParseError(e.loc, "unknown variable '" + e.name + "'");
      }
      case ExprKind::New: {
        auto it = unit_.classes.find(e.name);
        if (it == unit_.classes.end()) {
          throw ParseError(e.loc, "unknown class '" + e.name + "'");
        }
        const om::ClassDescriptor& cls = unit_.types->get(it->second);
        if (cls.is_array) throw ParseError(e.loc, "cannot 'new' an array class");
        const ir::ValueId obj = b.alloc(it->second);
        // Record-style construction: arguments initialize the first
        // fields in declaration order.
        if (e.args.size() > cls.fields.size()) {
          throw ParseError(e.loc, "too many constructor arguments for " +
                                      cls.name);
        }
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          Value v = lower_expr(ctx, *e.args[i]);
          const om::FieldDescriptor& f = cls.fields[i];
          const ir::Type ft = f.kind == om::TypeKind::Ref
                                  ? ir::Type::ref(f.ref_class)
                                  : ir::Type::prim(f.kind);
          v = coerce_null(ctx, v, ft);
          check_assignable(ft, v, e.loc);
          if (f.kind == om::TypeKind::Ref) {
            b.store_field(obj, f.name, v.id);
          }
          // primitive ctor args have no data-flow effect: dropped
        }
        return Value{obj, ir::Type::ref(it->second)};
      }
      case ExprKind::NewArray: {
        for (const auto& dim : e.args) lower_expr(ctx, *dim);
        TypeName tn = e.array_base;
        tn.dims = static_cast<int>(e.args.size());
        const ir::Type outer_t = resolve(tn);
        ir::ValueId outer = b.alloc_array(outer_t.class_id);
        // `new double[2][3][4]` allocates one site per dimension level,
        // nested, exactly like the paper's Figure 2.
        ir::ValueId cur = outer;
        om::ClassId cur_cls = outer_t.class_id;
        for (std::size_t d = 1; d < e.args.size(); ++d) {
          const om::ClassDescriptor& cd = unit_.types->get(cur_cls);
          RMIOPT_CHECK(cd.elem_kind == om::TypeKind::Ref,
                       "multi-dim array shape");
          const ir::ValueId inner = b.alloc_array(cd.elem_class);
          b.store_index(cur, inner);
          cur = inner;
          cur_cls = cd.elem_class;
        }
        return Value{outer, outer_t};
      }
      case ExprKind::FieldGet: {
        if (e.target->kind == ExprKind::Var) {
          if (auto g = resolve_static_target(ctx, e)) {
            return Value{b.load_static(*g), unit_.module->global(*g).type};
          }
        }
        Value target = lower_expr(ctx, *e.target);
        require_class_ref(target, e.loc);
        const om::ClassDescriptor& cls =
            unit_.types->get(target.type.class_id);
        if (cls.is_array && e.name == "length") {
          return Value{b.arith({}, om::TypeKind::Int),
                       ir::Type::prim(om::TypeKind::Int)};
        }
        const ir::Type ft = field_type(cls, e.name, e.loc);
        return Value{b.load_field(target.id, e.name), ft};
      }
      case ExprKind::Index: {
        Value target = lower_expr(ctx, *e.target);
        require_class_ref(target, e.loc);
        lower_expr(ctx, *e.args[0]);
        const om::ClassDescriptor& cls =
            unit_.types->get(target.type.class_id);
        if (!cls.is_array) throw ParseError(e.loc, "indexing a non-array");
        const ir::Type et = cls.elem_kind == om::TypeKind::Ref
                                ? ir::Type::ref(cls.elem_class)
                                : ir::Type::prim(cls.elem_kind);
        return Value{b.load_index(target.id), et};
      }
      case ExprKind::Call:
        return lower_call(ctx, e);
      case ExprKind::Binary: {
        Value l = lower_expr(ctx, *e.lhs);
        Value r = lower_expr(ctx, *e.rhs);
        if (l.type.is_ref() || r.type.is_ref()) {
          // Only == / != compare references; the result is a plain value.
          if (e.op != "==" && e.op != "!=") {
            throw ParseError(e.loc, "operator '" + e.op +
                                        "' needs primitive operands");
          }
          return Value{b.arith({}, om::TypeKind::Bool),
                       ir::Type::prim(om::TypeKind::Bool)};
        }
        const bool cmp = e.op == "<" || e.op == ">" || e.op == "<=" ||
                         e.op == ">=" || e.op == "==" || e.op == "!=" ||
                         e.op == "&&" || e.op == "||";
        const om::TypeKind out =
            cmp ? om::TypeKind::Bool
                : (l.type.kind == om::TypeKind::Double ||
                           r.type.kind == om::TypeKind::Double
                       ? om::TypeKind::Double
                       : om::TypeKind::Long);
        return Value{b.arith({l.id, r.id}, out), ir::Type::prim(out)};
      }
    }
    throw ParseError(e.loc, "unsupported expression");
  }

  Value lower_call(BodyCtx& ctx, const Expr& e) {
    ir::FunctionBuilder& b = *ctx.b;

    std::string owner_class;
    bool remote_dispatch = false;
    std::vector<ir::ValueId> args;

    if (e.target == nullptr) {
      owner_class = ctx.cls->name;  // bare call: current class
    } else if (e.target->kind == ExprKind::Var &&
               !ctx.env.contains(e.target->name) &&
               find_class(e.target->name) != nullptr) {
      owner_class = e.target->name;  // static call Class.m(...)
    } else {
      Value recv = lower_expr(ctx, *e.target);
      require_class_ref(recv, e.loc);
      const om::ClassDescriptor& cls = unit_.types->get(recv.type.class_id);
      if (cls.is_array) throw ParseError(e.loc, "calling a method on an array");
      owner_class = cls.name;
      const ClassDecl* decl = find_class(owner_class);
      remote_dispatch = decl != nullptr && decl->is_remote;
      // The receiver itself is not an argument (our IR remote methods have
      // no `this`); its data-flow effects were lowered above.
    }

    const MethodInfo* info = find_method(owner_class, e.name);
    if (info == nullptr) {
      throw ParseError(e.loc, "class " + owner_class + " has no method '" +
                                  e.name + "'");
    }
    const ir::Function& callee = unit_.module->function(info->func);
    if (e.args.size() != callee.params.size()) {
      throw ParseError(e.loc, "wrong number of arguments to " +
                                  callee.name + " (" +
                                  std::to_string(e.args.size()) + " vs " +
                                  std::to_string(callee.params.size()) + ")");
    }
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      Value v = lower_expr(ctx, *e.args[i]);
      v = coerce_null(ctx, v, callee.params[i]);
      check_assignable(callee.params[i], v, e.loc);
      args.push_back(v.id);
    }

    if (remote_dispatch && info->remote) {
      const std::uint32_t tag = next_tag_++;
      unit_.callsites.emplace(
          tag, callee.name + "@" + std::to_string(e.loc.line));
      const ir::ValueId r = b.remote_call(info->func, std::move(args), tag);
      return Value{r, callee.ret};
    }
    const ir::ValueId r = b.call(info->func, std::move(args));
    return Value{r, callee.ret};
  }

  const ProgramAst& ast_;
  Unit& unit_;
  std::unordered_map<std::string, ir::GlobalId> globals_;
  std::unordered_map<std::string, MethodInfo> methods_;
  std::uint32_t next_tag_ = 1;
};

}  // namespace

std::vector<std::uint32_t> Unit::tags_for(const std::string& callee) const {
  std::vector<std::uint32_t> tags;
  for (const auto& [tag, name] : callsites) {
    if (name.substr(0, name.find('@')) == callee) tags.push_back(tag);
  }
  return tags;
}

Unit compile_source(std::string_view source) {
  Unit unit;
  unit.types = std::make_unique<om::TypeRegistry>();
  unit.module = std::make_unique<ir::Module>(*unit.types);
  const ProgramAst ast = parse(source);
  Lowerer(ast, unit).run();
  return unit;
}

}  // namespace rmiopt::frontend
