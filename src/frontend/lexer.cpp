#include "frontend/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace rmiopt::frontend {

namespace {

const std::unordered_map<std::string_view, Tok>& keywords() {
  static const std::unordered_map<std::string_view, Tok> kw = {
      {"class", Tok::KwClass},     {"remote", Tok::KwRemote},
      {"extends", Tok::KwExtends}, {"static", Tok::KwStatic},
      {"void", Tok::KwVoid},       {"new", Tok::KwNew},
      {"return", Tok::KwReturn},   {"while", Tok::KwWhile},
      {"if", Tok::KwIf},           {"else", Tok::KwElse},
      {"null", Tok::KwNull},       {"int", Tok::KwPrim},
      {"long", Tok::KwPrim},       {"double", Tok::KwPrim},
      {"float", Tok::KwPrim},      {"short", Tok::KwPrim},
      {"byte", Tok::KwPrim},       {"boolean", Tok::KwPrim},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (true) {
      skip_trivia();
      Token t = next();
      out.push_back(t);
      if (t.kind == Tok::End) break;
    }
    return out;
  }

 private:
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.column = 1;
    } else {
      ++loc_.column;
    }
    return c;
  }
  bool at_end() const { return pos_ >= src_.size(); }

  void skip_trivia() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        const SourceLoc start = loc_;
        advance();
        advance();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (at_end()) throw ParseError(start, "unterminated comment");
          advance();
        }
        advance();
        advance();
      } else {
        break;
      }
    }
  }

  Token make(Tok kind, std::string text, SourceLoc loc) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.loc = loc;
    return t;
  }

  Token next() {
    const SourceLoc loc = loc_;
    if (at_end()) return make(Tok::End, "", loc);
    const char c = peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        word.push_back(advance());
      }
      auto it = keywords().find(word);
      if (it != keywords().end()) return make(it->second, std::move(word), loc);
      return make(Tok::Identifier, std::move(word), loc);
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool is_double = false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        num.push_back(advance());
      }
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_double = true;
        num.push_back(advance());
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
          num.push_back(advance());
        }
      }
      Token t = make(is_double ? Tok::DoubleLiteral : Tok::IntLiteral, num,
                     loc);
      if (is_double) {
        t.double_value = std::stod(num);
      } else {
        t.int_value = std::stoll(num);
      }
      return t;
    }

    advance();
    switch (c) {
      case '{':
        return make(Tok::LBrace, "{", loc);
      case '}':
        return make(Tok::RBrace, "}", loc);
      case '(':
        return make(Tok::LParen, "(", loc);
      case ')':
        return make(Tok::RParen, ")", loc);
      case '[':
        return make(Tok::LBracket, "[", loc);
      case ']':
        return make(Tok::RBracket, "]", loc);
      case ';':
        return make(Tok::Semicolon, ";", loc);
      case ',':
        return make(Tok::Comma, ",", loc);
      case '.':
        return make(Tok::Dot, ".", loc);
      case '+':
        return make(Tok::Plus, "+", loc);
      case '-':
        return make(Tok::Minus, "-", loc);
      case '*':
        return make(Tok::Star, "*", loc);
      case '/':
        return make(Tok::Slash, "/", loc);
      case '%':
        return make(Tok::Percent, "%", loc);
      case '=':
        if (peek() == '=') {
          advance();
          return make(Tok::EqEq, "==", loc);
        }
        return make(Tok::Assign, "=", loc);
      case '<':
        if (peek() == '=') {
          advance();
          return make(Tok::Le, "<=", loc);
        }
        return make(Tok::Lt, "<", loc);
      case '>':
        if (peek() == '=') {
          advance();
          return make(Tok::Ge, ">=", loc);
        }
        return make(Tok::Gt, ">", loc);
      case '!':
        if (peek() == '=') {
          advance();
          return make(Tok::NotEq, "!=", loc);
        }
        return make(Tok::Not, "!", loc);
      case '&':
        if (peek() == '&') {
          advance();
          return make(Tok::AndAnd, "&&", loc);
        }
        throw ParseError(loc, "stray '&'");
      case '|':
        if (peek() == '|') {
          advance();
          return make(Tok::OrOr, "||", loc);
        }
        throw ParseError(loc, "stray '|'");
      default:
        throw ParseError(loc, std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return Lexer(source).run();
}

std::string_view token_name(Tok t) {
  switch (t) {
    case Tok::Identifier:
      return "identifier";
    case Tok::IntLiteral:
      return "integer literal";
    case Tok::DoubleLiteral:
      return "double literal";
    case Tok::KwClass:
      return "'class'";
    case Tok::KwRemote:
      return "'remote'";
    case Tok::KwExtends:
      return "'extends'";
    case Tok::KwStatic:
      return "'static'";
    case Tok::KwVoid:
      return "'void'";
    case Tok::KwNew:
      return "'new'";
    case Tok::KwReturn:
      return "'return'";
    case Tok::KwWhile:
      return "'while'";
    case Tok::KwIf:
      return "'if'";
    case Tok::KwElse:
      return "'else'";
    case Tok::KwNull:
      return "'null'";
    case Tok::KwPrim:
      return "primitive type";
    case Tok::LBrace:
      return "'{'";
    case Tok::RBrace:
      return "'}'";
    case Tok::LParen:
      return "'('";
    case Tok::RParen:
      return "')'";
    case Tok::LBracket:
      return "'['";
    case Tok::RBracket:
      return "']'";
    case Tok::Semicolon:
      return "';'";
    case Tok::Comma:
      return "','";
    case Tok::Dot:
      return "'.'";
    case Tok::Assign:
      return "'='";
    case Tok::Plus:
      return "'+'";
    case Tok::Minus:
      return "'-'";
    case Tok::Star:
      return "'*'";
    case Tok::Slash:
      return "'/'";
    case Tok::Percent:
      return "'%'";
    case Tok::Lt:
      return "'<'";
    case Tok::Gt:
      return "'>'";
    case Tok::Le:
      return "'<='";
    case Tok::Ge:
      return "'>='";
    case Tok::EqEq:
      return "'=='";
    case Tok::NotEq:
      return "'!='";
    case Tok::AndAnd:
      return "'&&'";
    case Tok::OrOr:
      return "'||'";
    case Tok::Not:
      return "'!'";
    case Tok::End:
      return "end of input";
  }
  return "?";
}

}  // namespace rmiopt::frontend
