// Lexer for MiniParty, the JavaParty-like surface language of the
// frontend (see parser.hpp for the grammar).  Tokens carry source
// positions for diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace rmiopt::frontend {

enum class Tok : std::uint8_t {
  // literals / identifiers
  Identifier,
  IntLiteral,
  DoubleLiteral,
  // keywords
  KwClass,
  KwRemote,
  KwExtends,
  KwStatic,
  KwVoid,
  KwNew,
  KwReturn,
  KwWhile,
  KwIf,
  KwElse,
  KwNull,
  KwPrim,  // int long double float short byte boolean (name in text)
  // punctuation
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Assign,  // =
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  AndAnd,
  OrOr,
  Not,
  End,
};

struct SourceLoc {
  int line = 1;
  int column = 1;
  std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  SourceLoc loc;
};

// Raised with a source position on any frontend failure.
class ParseError : public Error {
 public:
  ParseError(const SourceLoc& loc, const std::string& msg)
      : Error(loc.to_string() + ": " + msg) {}
};

// Tokenizes the whole input (// and /* */ comments skipped); throws
// ParseError on malformed input.  The final token is Tok::End.
std::vector<Token> lex(std::string_view source);

std::string_view token_name(Tok t);

}  // namespace rmiopt::frontend
