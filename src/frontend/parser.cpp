// Recursive-descent parser for MiniParty (grammar in ast.hpp).
#include "frontend/ast.hpp"

namespace rmiopt::frontend {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  ProgramAst run() {
    ProgramAst prog;
    while (!check(Tok::End)) {
      prog.classes.push_back(parse_class());
    }
    return prog;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  bool check(Tok t) const { return peek().kind == t; }
  const Token& advance() { return toks_[pos_++]; }
  bool match(Tok t) {
    if (!check(t)) return false;
    advance();
    return true;
  }
  const Token& expect(Tok t, const char* what) {
    if (!check(t)) {
      throw ParseError(peek().loc,
                       std::string("expected ") + what + " (" +
                           std::string(token_name(t)) + "), found " +
                           std::string(token_name(peek().kind)) +
                           (peek().text.empty() ? "" : " '" + peek().text + "'"));
    }
    return advance();
  }

  // ---- declarations ---------------------------------------------------------

  ClassDecl parse_class() {
    ClassDecl cls;
    cls.loc = peek().loc;
    cls.is_remote = match(Tok::KwRemote);
    expect(Tok::KwClass, "'class'");
    cls.name = expect(Tok::Identifier, "class name").text;
    if (match(Tok::KwExtends)) {
      cls.extends = expect(Tok::Identifier, "superclass name").text;
    }
    expect(Tok::LBrace, "'{'");
    while (!match(Tok::RBrace)) {
      parse_member(cls);
    }
    return cls;
  }

  void parse_member(ClassDecl& cls) {
    const SourceLoc loc = peek().loc;
    const bool is_static = match(Tok::KwStatic);

    TypeName type;
    if (match(Tok::KwVoid)) {
      type.base = "void";
      type.loc = loc;
    } else {
      type = parse_type();
    }
    const std::string name = expect(Tok::Identifier, "member name").text;

    if (check(Tok::LParen)) {
      MethodDecl m;
      m.loc = loc;
      m.is_static = is_static;
      m.ret = type;
      m.name = name;
      expect(Tok::LParen, "'('");
      if (!check(Tok::RParen)) {
        do {
          ParamDecl p;
          p.type = parse_type();
          p.name = expect(Tok::Identifier, "parameter name").text;
          m.params.push_back(std::move(p));
        } while (match(Tok::Comma));
      }
      expect(Tok::RParen, "')'");
      m.body = parse_block();
      cls.methods.push_back(std::move(m));
      return;
    }

    RMIOPT_CHECK(type.base != "void", "fields cannot be void");
    FieldDecl f;
    f.loc = loc;
    f.is_static = is_static;
    f.type = type;
    f.name = name;
    expect(Tok::Semicolon, "';' after field");
    cls.fields.push_back(std::move(f));
  }

  TypeName parse_type() {
    TypeName t;
    t.loc = peek().loc;
    if (check(Tok::KwPrim)) {
      t.base = advance().text;
    } else {
      t.base = expect(Tok::Identifier, "type name").text;
    }
    while (check(Tok::LBracket) && peek(1).kind == Tok::RBracket) {
      advance();
      advance();
      ++t.dims;
    }
    return t;
  }

  // ---- statements -----------------------------------------------------------

  std::vector<StmtPtr> parse_block() {
    expect(Tok::LBrace, "'{'");
    std::vector<StmtPtr> stmts;
    while (!match(Tok::RBrace)) {
      stmts.push_back(parse_stmt());
    }
    return stmts;
  }

  StmtPtr parse_stmt() {
    auto s = std::make_unique<Stmt>();
    s->loc = peek().loc;

    if (match(Tok::KwReturn)) {
      s->kind = StmtKind::Return;
      if (!check(Tok::Semicolon)) s->value = parse_expr();
      expect(Tok::Semicolon, "';'");
      return s;
    }
    if (match(Tok::KwWhile)) {
      s->kind = StmtKind::While;
      expect(Tok::LParen, "'('");
      s->cond = parse_expr();
      expect(Tok::RParen, "')'");
      s->body = parse_block();
      return s;
    }
    if (match(Tok::KwIf)) {
      s->kind = StmtKind::If;
      expect(Tok::LParen, "'('");
      s->cond = parse_expr();
      expect(Tok::RParen, "')'");
      s->body = parse_block();
      if (match(Tok::KwElse)) s->else_body = parse_block();
      return s;
    }

    // Local declaration: `Type name = expr;` — distinguished from an
    // expression by lookahead: (prim | Ident) followed by Ident, or by
    // `[` `]` (array type).
    if (looks_like_decl()) {
      s->kind = StmtKind::LocalDecl;
      s->decl_type = parse_type();
      s->name = expect(Tok::Identifier, "variable name").text;
      expect(Tok::Assign, "'=' (locals must be initialized)");
      s->value = parse_expr();
      expect(Tok::Semicolon, "';'");
      return s;
    }

    ExprPtr e = parse_expr();
    if (match(Tok::Assign)) {
      s->kind = StmtKind::Assign;
      s->lvalue = std::move(e);
      s->value = parse_expr();
    } else {
      s->kind = StmtKind::ExprStmt;
      s->value = std::move(e);
    }
    expect(Tok::Semicolon, "';'");
    return s;
  }

  bool looks_like_decl() const {
    if (check(Tok::KwPrim)) return true;
    if (!check(Tok::Identifier)) return false;
    std::size_t i = 1;
    while (peek(i).kind == Tok::LBracket && peek(i + 1).kind == Tok::RBracket) {
      i += 2;
    }
    return peek(i).kind == Tok::Identifier;
  }

  // ---- expressions ----------------------------------------------------------

  ExprPtr parse_expr() { return parse_binary(0); }

  static int precedence(Tok t) {
    switch (t) {
      case Tok::OrOr:
        return 1;
      case Tok::AndAnd:
        return 2;
      case Tok::EqEq:
      case Tok::NotEq:
        return 3;
      case Tok::Lt:
      case Tok::Gt:
      case Tok::Le:
      case Tok::Ge:
        return 4;
      case Tok::Plus:
      case Tok::Minus:
        return 5;
      case Tok::Star:
      case Tok::Slash:
      case Tok::Percent:
        return 6;
      default:
        return 0;
    }
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_postfix();
    while (true) {
      const int prec = precedence(peek().kind);
      if (prec == 0 || prec < min_prec) return lhs;
      const Token op = advance();
      ExprPtr rhs = parse_binary(prec + 1);
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::Binary;
      e->loc = op.loc;
      e->op = op.text;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    while (true) {
      if (match(Tok::Dot)) {
        const Token name = expect(Tok::Identifier, "member name");
        if (check(Tok::LParen)) {
          auto call = std::make_unique<Expr>();
          call->kind = ExprKind::Call;
          call->loc = name.loc;
          call->name = name.text;
          call->target = std::move(e);
          call->args = parse_args();
          e = std::move(call);
        } else {
          auto get = std::make_unique<Expr>();
          get->kind = ExprKind::FieldGet;
          get->loc = name.loc;
          get->name = name.text;
          get->target = std::move(e);
          e = std::move(get);
        }
      } else if (check(Tok::LBracket)) {
        const SourceLoc loc = advance().loc;
        auto idx = std::make_unique<Expr>();
        idx->kind = ExprKind::Index;
        idx->loc = loc;
        idx->target = std::move(e);
        idx->args.push_back(parse_expr());
        expect(Tok::RBracket, "']'");
        e = std::move(idx);
      } else {
        return e;
      }
    }
  }

  std::vector<ExprPtr> parse_args() {
    expect(Tok::LParen, "'('");
    std::vector<ExprPtr> args;
    if (!check(Tok::RParen)) {
      do {
        args.push_back(parse_expr());
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    return args;
  }

  ExprPtr parse_primary() {
    auto e = std::make_unique<Expr>();
    e->loc = peek().loc;
    if (check(Tok::IntLiteral)) {
      e->kind = ExprKind::IntLit;
      e->int_value = advance().int_value;
      return e;
    }
    if (check(Tok::DoubleLiteral)) {
      e->kind = ExprKind::DoubleLit;
      e->double_value = advance().double_value;
      return e;
    }
    if (match(Tok::KwNull)) {
      e->kind = ExprKind::Null;
      return e;
    }
    if (match(Tok::LParen)) {
      ExprPtr inner = parse_expr();
      expect(Tok::RParen, "')'");
      return inner;
    }
    if (match(Tok::KwNew)) {
      TypeName base;
      base.loc = peek().loc;
      base.base = check(Tok::KwPrim)
                      ? advance().text
                      : expect(Tok::Identifier, "type after 'new'").text;
      if (check(Tok::LBracket)) {
        e->kind = ExprKind::NewArray;
        e->array_base = base;
        while (check(Tok::LBracket)) {
          advance();
          e->args.push_back(parse_expr());
          expect(Tok::RBracket, "']'");
        }
        return e;
      }
      e->kind = ExprKind::New;
      e->name = base.base;
      e->args = parse_args();
      return e;
    }
    if (check(Tok::Identifier)) {
      e->kind = ExprKind::Var;
      e->name = advance().text;
      if (check(Tok::LParen)) {
        // bare call: method on the current class (static context)
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::Call;
        call->loc = e->loc;
        call->name = e->name;
        call->args = parse_args();
        return call;
      }
      return e;
    }
    throw ParseError(peek().loc,
                     "expected an expression, found " +
                         std::string(token_name(peek().kind)));
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

ProgramAst parse(std::string_view source) {
  return Parser(lex(source)).run();
}

}  // namespace rmiopt::frontend
