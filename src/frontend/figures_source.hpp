// The paper's figure programs as MiniParty source text.
//
// These are the frontend twins of the hand-built IR models in
// apps/paper_figures.cpp; tests assert both roads produce the same
// analysis verdicts, and the frontend example compiles them from source.
#pragma once

namespace rmiopt::frontend::sources {

// Figure 2: heap-graph construction example.
inline constexpr const char* kFigure2 = R"(
class Bar { }
class Foo {
  Bar bar;
  double[][][] a;
}
class Main {
  static void main() {
    Foo foo = new Foo();
    foo.bar = new Bar();
    foo.a = new double[2][3][4];
  }
}
)";

// Figures 3/4: remote identity in a loop — the tuple-rule termination test.
inline constexpr const char* kFigure3 = R"(
class Data { }
remote class Foo {
  Data foo(Data a) {
    return a;
  }
}
class Main {
  static void zoo() {
    Foo me = new Foo();
    Data t = new Data();
    int i = 0;
    while (i < 100000) {
      t = me.foo(t);
      i = i + 1;
    }
  }
}
)";

// Figure 5: two call sites with different derived classes.
inline constexpr const char* kFigure5 = R"(
class Base { }
class Derived1 extends Base {
  int data;
}
class Derived2 extends Base {
  Derived1 p;
}
remote class Work {
  void foo(Base b) { }
}
class Main {
  static void go() {
    Work w = new Work();
    Derived1 b1 = new Derived1();
    w.foo(b1);
    Derived2 b2 = new Derived2();
    b2.p = new Derived1();
    w.foo(b2);
  }
}
)";

// Figure 8: the same object passed twice.
inline constexpr const char* kFigure8 = R"(
class Base { }
remote class Worker {
  void bar(Base x, Base y) { }
}
class Main {
  static void foo() {
    Worker w = new Worker();
    Base b = new Base();
    w.bar(b, b);
  }
}
)";

// Figure 9: self reference.
inline constexpr const char* kFigure9 = R"(
class Base {
  Base self;
}
remote class Worker {
  void bar(Base b) { }
}
class Main {
  static void foo() {
    Worker w = new Worker();
    Base b = new Base();
    b.self = b;
    w.bar(b);
  }
}
)";

// Figure 10: reusable argument (this.sum is per-VM remote state).
inline constexpr const char* kFigure10 = R"(
remote class Foo {
  double sum;
  void foo(double[] a) {
    this.sum = a[0] + a[1];
  }
}
class Main {
  static void caller() {
    Foo f = new Foo();
    double[] arr = new double[2];
    f.foo(arr);
  }
}
)";

// Figure 11: the argument's referent escapes through a static.
inline constexpr const char* kFigure11 = R"(
class Data { }
class Bar {
  Data d;
}
remote class Foo {
  static Data d;
  void foo(Bar a) {
    Foo.d = a.d;
  }
}
class Main {
  static void caller() {
    Foo f = new Foo();
    Bar bar = new Bar();
    bar.d = new Data();
    f.foo(bar);
  }
}
)";

// Figure 12: 2-D array transmission (the Table 2 benchmark).
inline constexpr const char* kFigure12 = R"(
remote class ArrayBench {
  void send(double[][] arr) { }
}
class Main {
  static void benchmark() {
    double[][] arr = new double[16][16];
    ArrayBench f = new ArrayBench();
    f.send(arr);
  }
}
)";

// Figure 14: linked-list transmission (the Table 1 benchmark).
inline constexpr const char* kFigure14 = R"(
class LinkedList {
  LinkedList Next;
}
remote class Foo {
  void send(LinkedList l) { }
}
class Main {
  static void benchmark() {
    LinkedList head = null;
    int i = 0;
    while (i < 100) {
      head = new LinkedList(head);
      i = i + 1;
    }
    Foo f = new Foo();
    f.send(head);
  }
}
)";

// The web server's single RMI (§5.4), with a byte[] standing in for the
// page/url strings of the runtime model.
inline constexpr const char* kWebserver = R"(
remote class Server {
  static byte[][] pages;
  byte[] get_page(byte[] url) {
    byte[][] table = Server.pages;
    byte[] page = table[0];
    return page;
  }
  static void init() {
    Server.pages = new byte[64][128];
  }
}
class Master {
  static void serve() {
    Server s = new Server();
    byte[] url = new byte[16];
    byte[] page = s.get_page(url);
    byte b = page[0];
  }
}
)";

// The superoptimizer's test RMI (§5.3): the candidate escapes into a queue.
inline constexpr const char* kSuperopt = R"(
class Operand {
  int kind;
  long value;
}
class Instruction {
  int opcode;
  Operand a;
  Operand b;
  Operand c;
}
class Program {
  Instruction[] code;
}
remote class Tester {
  static Program[] queue;
  void test(Program p) {
    Program[] q = Tester.queue;
    q[0] = p;
  }
  static void init() {
    Tester.queue = new Program[64];
  }
}
class Producer {
  static void run() {
    Tester t = new Tester();
    Program p = new Program();
    p.code = new Instruction[3];
    Instruction ins = new Instruction();
    ins.a = new Operand();
    ins.b = new Operand();
    ins.c = new Operand();
    p.code[0] = ins;
    t.test(p);
  }
}
)";

// The LU communication structure (§5.2): pivot-row flush (reusable,
// acyclic), row fetch (return reusable), and a barrier.
inline constexpr const char* kLu = R"(
remote class LU {
  static double[][] matrix;
  void flush(long row, double[] data) {
    double[][] m = LU.matrix;
    double[] r = m[0];
    double x = data[0];
    r[0] = x;
  }
  double[] fetch_row(long row) {
    double[][] m = LU.matrix;
    double[] r = m[0];
    return r;
  }
  void barrier() { }
  static void init() {
    LU.matrix = new double[256][256];
  }
}
class Worker {
  static void run() {
    LU lu = new LU();
    double[] buf = new double[256];
    long k = 0;
    while (k < 256) {
      lu.flush(k, buf);
      double[] row = lu.fetch_row(k);
      double x = row[0];
      lu.barrier();
      k = k + 1;
    }
  }
}
)";

}  // namespace rmiopt::frontend::sources
