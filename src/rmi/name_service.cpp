#include "rmi/name_service.hpp"

#include "serial/class_plans.hpp"

namespace rmiopt::rmi {

NameService::NameService(RmiSystem& sys, om::TypeRegistry& types)
    : sys_(sys) {
  // Find-or-define so a shared TypeRegistry survives repeated runs (the
  // bench tables reuse one figure model across the whole level sweep).
  if (const om::ClassDescriptor* d = types.find_by_name("rmi/RefBox")) {
    refbox_ = d->id;
  } else {
    refbox_ = types.define_class("rmi/RefBox",
                                 {{"machine", om::TypeKind::Int},
                                  {"export_id", om::TypeKind::Int}});
  }

  const auto bind_method = sys.define_method(
      "rmi/Registry.bind",
      [this](CallContext&, std::span<const std::int64_t> scalars,
             std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        const RemoteRef ref{static_cast<std::uint16_t>(scalars[0]),
                            static_cast<std::uint32_t>(scalars[1])};
        std::scoped_lock lock(mu_);
        if (!table_.emplace(name, Binding{ref, {}}).second) {
          return HandlerResult::exception("name already bound: " + name);
        }
        return HandlerResult{};
      });

  const auto rebind_method = sys.define_method(
      "rmi/Registry.rebind",
      [this](CallContext&, std::span<const std::int64_t> scalars,
             std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        const RemoteRef ref{static_cast<std::uint16_t>(scalars[0]),
                            static_cast<std::uint32_t>(scalars[1])};
        std::scoped_lock lock(mu_);
        table_[name] = Binding{ref, {}};  // create-or-overwrite, unlike bind
        return HandlerResult{};
      });

  const auto bind_replicated_method = sys.define_method(
      "rmi/Registry.bindReplicated",
      [this](CallContext&, std::span<const std::int64_t> scalars,
             std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        const auto preferred = static_cast<std::size_t>(scalars[0]);
        const auto n = static_cast<std::size_t>(scalars[1]);
        if (n == 0 || preferred >= n || scalars.size() != 2 + 2 * n) {
          return HandlerResult::exception("malformed replica group for " +
                                          name);
        }
        Binding b;
        b.group.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          b.group.push_back(
              RemoteRef{static_cast<std::uint16_t>(scalars[2 + 2 * i]),
                        static_cast<std::uint32_t>(scalars[3 + 2 * i])});
        }
        b.ref = b.group[preferred];
        std::scoped_lock lock(mu_);
        // The preferred replica may already be confirmed dead (bound late,
        // after a crash): advance up front so the first lookup never hands
        // out a dead machine.
        if (detector_ != nullptr && detector_->dead(b.ref.machine) &&
            !advance_binding(b, b.ref.machine)) {
          return HandlerResult::exception("no live replica remains for " +
                                          name);
        }
        table_[name] = std::move(b);  // create-or-overwrite, like rebind
        return HandlerResult{};
      });

  const auto report_failure_method = sys.define_method(
      "rmi/Registry.reportFailure",
      [this](CallContext&, std::span<const std::int64_t> scalars,
             std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        const auto failed = static_cast<std::uint16_t>(scalars[0]);
        std::scoped_lock lock(mu_);
        auto it = table_.find(name);
        if (it == table_.end()) {
          return HandlerResult::exception("name not bound: " + name);
        }
        // Another caller (or the detector) may have failed it over first;
        // reporting is then a no-op and the caller just re-looks-up.
        if (it->second.ref.machine != failed) return HandlerResult{};
        if (!advance_binding(it->second, failed)) {
          return HandlerResult::exception("no live replica remains for " +
                                          name);
        }
        return HandlerResult{};
      });

  const auto lookup_method = sys.define_method(
      "rmi/Registry.lookup",
      [this, &types](CallContext& ctx, auto,
                     std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        RemoteRef ref;
        {
          std::scoped_lock lock(mu_);
          auto it = table_.find(name);
          if (it == table_.end()) {
            return HandlerResult::exception("name not bound: " + name);
          }
          ref = it->second.ref;
        }
        const om::ClassDescriptor& cls = types.get(refbox_);
        om::ObjRef box = ctx.heap().alloc(cls);
        box->set<std::int32_t>(cls.fields[0], ref.machine);
        box->set<std::int32_t>(cls.fields[1],
                               static_cast<std::int32_t>(ref.export_id));
        return HandlerResult{.value = box, .give_ownership = true};
      });

  // The runtime system's own stubs are generic: class-mode plans (dynamic
  // roots, compact type ids, cycle table on).  These calls are the small
  // residue the paper's site+cycle statistics still show.
  auto make_plan = [&](const char* name, bool with_ret) {
    auto plan = std::make_unique<serial::CallSitePlan>();
    plan->name = name;
    plan->args.push_back(serial::make_dynamic_node(types.string_class()));
    if (with_ret) plan->ret = serial::make_dynamic_node(refbox_);
    plan->needs_cycle_table = true;
    return plan;
  };
  CompiledCallSite bind_site;
  bind_site.plan = make_plan("rmi/Registry.bind#rts", false);
  bind_site.method_id = bind_method;
  bind_site_ = sys.add_callsite(std::move(bind_site));
  CompiledCallSite rebind_site;
  rebind_site.plan = make_plan("rmi/Registry.rebind#rts", false);
  rebind_site.method_id = rebind_method;
  rebind_site_ = sys.add_callsite(std::move(rebind_site));
  CompiledCallSite lookup_site;
  lookup_site.plan = make_plan("rmi/Registry.lookup#rts", true);
  lookup_site.method_id = lookup_method;
  lookup_site_ = sys.add_callsite(std::move(lookup_site));
  CompiledCallSite bind_replicated_site;
  bind_replicated_site.plan =
      make_plan("rmi/Registry.bindReplicated#rts", false);
  bind_replicated_site.method_id = bind_replicated_method;
  bind_replicated_site_ = sys.add_callsite(std::move(bind_replicated_site));
  CompiledCallSite report_failure_site;
  report_failure_site.plan = make_plan("rmi/Registry.reportFailure#rts", false);
  report_failure_site.method_id = report_failure_method;
  report_failure_site_ = sys.add_callsite(std::move(report_failure_site));

  registry_ = sys.export_object(
      0, sys.cluster().machine(0).heap().alloc(refbox_));

  detector_ = sys.cluster().detector();
  if (detector_ != nullptr) {
    // Death-triggered auto-rebind: the moment a machine is confirmed dead,
    // every binding that points at it advances to a live replica — before
    // any caller even observes a failure.  The callback runs on whichever
    // thread confirmed the death and must not issue RMIs, so it mutates
    // the table directly under the registry lock.  Lifetime: the name
    // service must outlive RMI traffic (every app keeps it alive for the
    // whole run); after sys.stop() nobody polls, so it cannot fire.
    detector_->on_death([this](std::uint16_t dead, SimTime) {
      std::scoped_lock lock(mu_);
      for (auto& [name, binding] : table_) {
        if (binding.ref.machine == dead) advance_binding(binding, dead);
      }
    });
  }
}

bool NameService::advance_binding(Binding& b, std::uint16_t failed) {
  for (const RemoteRef& candidate : b.group) {
    if (candidate.machine == failed) continue;
    if (detector_ != nullptr && detector_->dead(candidate.machine)) continue;
    b.ref = candidate;
    failovers_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void NameService::bind(std::uint16_t caller, const std::string& name,
                       RemoteRef ref) {
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  const std::int64_t scalars[2] = {ref.machine, ref.export_id};
  sys_.invoke(caller, registry_, bind_site_, std::array{name_obj}, scalars);
  heap.free(name_obj);
}

void NameService::rebind(std::uint16_t caller, const std::string& name,
                         RemoteRef ref) {
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  const std::int64_t scalars[2] = {ref.machine, ref.export_id};
  sys_.invoke(caller, registry_, rebind_site_, std::array{name_obj},
              scalars);
  heap.free(name_obj);
}

void NameService::bind_replicated(std::uint16_t caller,
                                  const std::string& name,
                                  std::span<const RemoteRef> replicas,
                                  std::size_t preferred) {
  RMIOPT_CHECK(!replicas.empty() && preferred < replicas.size(),
               "bind_replicated needs a non-empty group and a valid "
               "preferred index");
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  std::vector<std::int64_t> scalars;
  scalars.reserve(2 + 2 * replicas.size());
  scalars.push_back(static_cast<std::int64_t>(preferred));
  scalars.push_back(static_cast<std::int64_t>(replicas.size()));
  for (const RemoteRef& r : replicas) {
    scalars.push_back(r.machine);
    scalars.push_back(r.export_id);
  }
  sys_.invoke(caller, registry_, bind_replicated_site_, std::array{name_obj},
              scalars);
  heap.free(name_obj);
}

void NameService::report_failure(std::uint16_t caller, const std::string& name,
                                 std::uint16_t failed_machine) {
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  const std::int64_t scalars[1] = {failed_machine};
  sys_.invoke(caller, registry_, report_failure_site_, std::array{name_obj},
              scalars);
  heap.free(name_obj);
}

RemoteRef NameService::lookup(std::uint16_t caller, const std::string& name) {
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  om::ObjRef box = sys_.invoke(caller, registry_, lookup_site_,
                               std::array{name_obj});
  heap.free(name_obj);
  const om::ClassDescriptor& cls = box->cls();
  RemoteRef ref{static_cast<std::uint16_t>(box->get<std::int32_t>(cls.fields[0])),
                static_cast<std::uint32_t>(box->get<std::int32_t>(cls.fields[1]))};
  heap.free(box);
  return ref;
}

}  // namespace rmiopt::rmi
