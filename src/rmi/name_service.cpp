#include "rmi/name_service.hpp"

#include "serial/class_plans.hpp"

namespace rmiopt::rmi {

NameService::NameService(RmiSystem& sys, om::TypeRegistry& types)
    : sys_(sys) {
  // Find-or-define so a shared TypeRegistry survives repeated runs (the
  // bench tables reuse one figure model across the whole level sweep).
  if (const om::ClassDescriptor* d = types.find_by_name("rmi/RefBox")) {
    refbox_ = d->id;
  } else {
    refbox_ = types.define_class("rmi/RefBox",
                                 {{"machine", om::TypeKind::Int},
                                  {"export_id", om::TypeKind::Int}});
  }

  const auto bind_method = sys.define_method(
      "rmi/Registry.bind",
      [this](CallContext&, std::span<const std::int64_t> scalars,
             std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        const RemoteRef ref{static_cast<std::uint16_t>(scalars[0]),
                            static_cast<std::uint32_t>(scalars[1])};
        std::scoped_lock lock(mu_);
        if (!table_.emplace(name, ref).second) {
          return HandlerResult::exception("name already bound: " + name);
        }
        return HandlerResult{};
      });

  const auto rebind_method = sys.define_method(
      "rmi/Registry.rebind",
      [this](CallContext&, std::span<const std::int64_t> scalars,
             std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        const RemoteRef ref{static_cast<std::uint16_t>(scalars[0]),
                            static_cast<std::uint32_t>(scalars[1])};
        std::scoped_lock lock(mu_);
        table_[name] = ref;  // create-or-overwrite, unlike bind
        return HandlerResult{};
      });

  const auto lookup_method = sys.define_method(
      "rmi/Registry.lookup",
      [this, &types](CallContext& ctx, auto,
                     std::span<const om::ObjRef> args) -> HandlerResult {
        const std::string name(args[0]->as_string_view());
        RemoteRef ref;
        {
          std::scoped_lock lock(mu_);
          auto it = table_.find(name);
          if (it == table_.end()) {
            return HandlerResult::exception("name not bound: " + name);
          }
          ref = it->second;
        }
        const om::ClassDescriptor& cls = types.get(refbox_);
        om::ObjRef box = ctx.heap().alloc(cls);
        box->set<std::int32_t>(cls.fields[0], ref.machine);
        box->set<std::int32_t>(cls.fields[1],
                               static_cast<std::int32_t>(ref.export_id));
        return HandlerResult{.value = box, .give_ownership = true};
      });

  // The runtime system's own stubs are generic: class-mode plans (dynamic
  // roots, compact type ids, cycle table on).  These calls are the small
  // residue the paper's site+cycle statistics still show.
  auto make_plan = [&](const char* name, bool with_ret) {
    auto plan = std::make_unique<serial::CallSitePlan>();
    plan->name = name;
    plan->args.push_back(serial::make_dynamic_node(types.string_class()));
    if (with_ret) plan->ret = serial::make_dynamic_node(refbox_);
    plan->needs_cycle_table = true;
    return plan;
  };
  CompiledCallSite bind_site;
  bind_site.plan = make_plan("rmi/Registry.bind#rts", false);
  bind_site.method_id = bind_method;
  bind_site_ = sys.add_callsite(std::move(bind_site));
  CompiledCallSite rebind_site;
  rebind_site.plan = make_plan("rmi/Registry.rebind#rts", false);
  rebind_site.method_id = rebind_method;
  rebind_site_ = sys.add_callsite(std::move(rebind_site));
  CompiledCallSite lookup_site;
  lookup_site.plan = make_plan("rmi/Registry.lookup#rts", true);
  lookup_site.method_id = lookup_method;
  lookup_site_ = sys.add_callsite(std::move(lookup_site));

  registry_ = sys.export_object(
      0, sys.cluster().machine(0).heap().alloc(refbox_));
}

void NameService::bind(std::uint16_t caller, const std::string& name,
                       RemoteRef ref) {
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  const std::int64_t scalars[2] = {ref.machine, ref.export_id};
  sys_.invoke(caller, registry_, bind_site_, std::array{name_obj}, scalars);
  heap.free(name_obj);
}

void NameService::rebind(std::uint16_t caller, const std::string& name,
                         RemoteRef ref) {
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  const std::int64_t scalars[2] = {ref.machine, ref.export_id};
  sys_.invoke(caller, registry_, rebind_site_, std::array{name_obj},
              scalars);
  heap.free(name_obj);
}

RemoteRef NameService::lookup(std::uint16_t caller, const std::string& name) {
  om::Heap& heap = sys_.cluster().machine(caller).heap();
  om::ObjRef name_obj = heap.alloc_string(name);
  om::ObjRef box = sys_.invoke(caller, registry_, lookup_site_,
                               std::array{name_obj});
  heap.free(name_obj);
  const om::ClassDescriptor& cls = box->cls();
  RemoteRef ref{static_cast<std::uint16_t>(box->get<std::int32_t>(cls.fields[0])),
                static_cast<std::uint32_t>(box->get<std::int32_t>(cls.fields[1]))};
  heap.free(box);
  return ref;
}

}  // namespace rmiopt::rmi
