// The JavaParty-runtime name service.
//
// JavaParty hides object placement behind the runtime system; bootstrap
// still needs a way to find remote objects by name (Java RMI's
// rmiregistry).  The name service lives on machine 0 and is itself built
// from RMI calls — with *class-mode* marshal plans, because the runtime
// system is compiled generically, not per call site.  This reproduces a
// detail of the paper's statistics: the handful of cycle lookups that
// remain even at site+cycle levels "are from two RMIs from the
// initialization of the Javaparty runtime system" (§5.2; Tables 4/8 show
// 2 and 3 residual lookups).
#pragma once

#include <atomic>
#include <span>
#include <string>
#include <vector>

#include "rmi/runtime.hpp"

namespace rmiopt::rmi {

class NameService {
 public:
  // Registers the service's methods and call sites with `sys` and creates
  // the registry object on machine 0.  Must run before sys.start(); the
  // type registry gains a `rmi/RefBox` class for lookup replies.
  NameService(RmiSystem& sys, om::TypeRegistry& types);
  NameService(const NameService&) = delete;
  NameService& operator=(const NameService&) = delete;

  // Publishes `ref` under `name` (an RMI to machine 0).  Throws
  // RemoteException if the name is already bound.
  void bind(std::uint16_t caller, const std::string& name, RemoteRef ref);

  // Re-points `name` at `ref`, creating or overwriting the binding (an
  // RMI to machine 0).  The failover primitive: when a machine dies, a
  // survivor re-binds the dead machine's names to live replicas so later
  // lookups resolve to a serving machine.
  void rebind(std::uint16_t caller, const std::string& name, RemoteRef ref);

  // Resolves `name` (an RMI to machine 0).  Throws RemoteException if the
  // name is unbound.
  RemoteRef lookup(std::uint16_t caller, const std::string& name);

  // Publishes `name` together with its whole replica group (an RMI to
  // machine 0).  The binding initially points at `replicas[preferred]` —
  // unless the failure detector already confirmed that machine dead, in
  // which case the registry advances to the first live replica up front.
  // Later deaths (detector callback) or caller reports (report_failure)
  // re-point the binding automatically; plain bind/rebind still work and
  // simply leave the group empty (no failover candidates).
  void bind_replicated(std::uint16_t caller, const std::string& name,
                       std::span<const RemoteRef> replicas,
                       std::size_t preferred = 0);

  // Tells the registry machine `failed_machine` did not answer for `name`
  // (an RMI to machine 0).  If the binding still points at the failed
  // machine, the registry advances it to the next live replica; if another
  // caller already failed it over this is a no-op.  Throws RemoteException
  // when no live replica remains.  This is the detector-less failover
  // path: it works off a caller-observed RmiTimeout alone.
  void report_failure(std::uint16_t caller, const std::string& name,
                      std::uint16_t failed_machine);

  // How many times any binding was re-pointed away from a failed machine
  // (report_failure + detector-triggered rebinds combined).
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  // One name's registry entry: the ref lookups resolve to, plus the
  // replica group failover draws from (empty for plain bind/rebind).
  struct Binding {
    RemoteRef ref{};
    std::vector<RemoteRef> group;
  };

  // Re-points `b` at the first group member that is neither `failed` nor
  // detector-confirmed dead.  Returns false when no candidate is left.
  // Caller holds mu_.
  bool advance_binding(Binding& b, std::uint16_t failed);

  RmiSystem& sys_;
  net::FailureDetector* detector_ = nullptr;
  om::ClassId refbox_ = om::kNoClass;
  std::uint32_t bind_site_ = 0;
  std::uint32_t rebind_site_ = 0;
  std::uint32_t lookup_site_ = 0;
  std::uint32_t bind_replicated_site_ = 0;
  std::uint32_t report_failure_site_ = 0;
  RemoteRef registry_{};
  std::atomic<std::uint64_t> failovers_{0};
  // Server-side table.  Normally touched only by machine 0's dispatcher;
  // the detector's death callback also mutates it directly (it runs on
  // whichever thread confirmed the death and must not issue RMIs), hence
  // the mutex.
  std::unordered_map<std::string, Binding> table_;
  std::mutex mu_;
};

}  // namespace rmiopt::rmi
