// The JavaParty-runtime name service.
//
// JavaParty hides object placement behind the runtime system; bootstrap
// still needs a way to find remote objects by name (Java RMI's
// rmiregistry).  The name service lives on machine 0 and is itself built
// from RMI calls — with *class-mode* marshal plans, because the runtime
// system is compiled generically, not per call site.  This reproduces a
// detail of the paper's statistics: the handful of cycle lookups that
// remain even at site+cycle levels "are from two RMIs from the
// initialization of the Javaparty runtime system" (§5.2; Tables 4/8 show
// 2 and 3 residual lookups).
#pragma once

#include <string>

#include "rmi/runtime.hpp"

namespace rmiopt::rmi {

class NameService {
 public:
  // Registers the service's methods and call sites with `sys` and creates
  // the registry object on machine 0.  Must run before sys.start(); the
  // type registry gains a `rmi/RefBox` class for lookup replies.
  NameService(RmiSystem& sys, om::TypeRegistry& types);
  NameService(const NameService&) = delete;
  NameService& operator=(const NameService&) = delete;

  // Publishes `ref` under `name` (an RMI to machine 0).  Throws
  // RemoteException if the name is already bound.
  void bind(std::uint16_t caller, const std::string& name, RemoteRef ref);

  // Re-points `name` at `ref`, creating or overwriting the binding (an
  // RMI to machine 0).  The failover primitive: when a machine dies, a
  // survivor re-binds the dead machine's names to live replicas so later
  // lookups resolve to a serving machine.
  void rebind(std::uint16_t caller, const std::string& name, RemoteRef ref);

  // Resolves `name` (an RMI to machine 0).  Throws RemoteException if the
  // name is unbound.
  RemoteRef lookup(std::uint16_t caller, const std::string& name);

 private:
  RmiSystem& sys_;
  om::ClassId refbox_ = om::kNoClass;
  std::uint32_t bind_site_ = 0;
  std::uint32_t rebind_site_ = 0;
  std::uint32_t lookup_site_ = 0;
  RemoteRef registry_{};
  // Server-side table, touched only by machine 0's dispatcher.
  std::unordered_map<std::string, RemoteRef> table_;
  std::mutex mu_;
};

}  // namespace rmiopt::rmi
