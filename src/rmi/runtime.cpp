#include "rmi/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_set>

namespace rmiopt::rmi {

namespace {

// The deadline of the call whose handler this thread is currently
// running (0 = none).  Nested invokes issued from inside a handler read
// it to inherit the remaining budget; it is set strictly around handler
// execution, so app threads and idle workers always see 0.
thread_local std::int64_t t_ambient_deadline_ns = 0;

class AmbientDeadlineScope {
 public:
  explicit AmbientDeadlineScope(std::int64_t deadline_ns)
      : saved_(t_ambient_deadline_ns) {
    t_ambient_deadline_ns = deadline_ns;
  }
  ~AmbientDeadlineScope() { t_ambient_deadline_ns = saved_; }
  AmbientDeadlineScope(const AmbientDeadlineScope&) = delete;
  AmbientDeadlineScope& operator=(const AmbientDeadlineScope&) = delete;

 private:
  std::int64_t saved_;
};

}  // namespace

// Shared state of one invoke_async: the send half fills it on the
// caller's thread; RmiFuture::get() hands it back to finish_remote.  For
// a local target the call already ran inline and the outcome is stored
// directly.
struct AsyncCallState {
  RmiSystem* sys = nullptr;
  std::uint16_t caller = 0;
  RemoteRef target;
  std::uint32_t callsite_id = 0;
  std::uint32_t seq = 0;
  bool is_local = false;
  om::ObjRef local_value = nullptr;
  std::exception_ptr local_error;
  std::future<RmiSystem::PendingReply> fut;
  std::int64_t call_start_ns = 0;  // caller-perceived Call span (tracing)
  std::uint64_t request_bytes = 0;
  std::atomic<bool> cancel_sent{false};
};

// ---- RmiFuture --------------------------------------------------------------

RmiFuture::RmiFuture() noexcept = default;
RmiFuture::~RmiFuture() = default;
RmiFuture::RmiFuture(RmiFuture&&) noexcept = default;
RmiFuture& RmiFuture::operator=(RmiFuture&&) noexcept = default;
RmiFuture::RmiFuture(std::shared_ptr<AsyncCallState> state) noexcept
    : state_(std::move(state)) {}

bool RmiFuture::valid() const { return state_ != nullptr; }

om::ObjRef RmiFuture::get() {
  RMIOPT_CHECK(state_ != nullptr, "get() on an invalid RmiFuture");
  const std::shared_ptr<AsyncCallState> st = std::move(state_);
  if (st->is_local) {
    if (st->local_error) std::rethrow_exception(st->local_error);
    return st->local_value;
  }
  return st->sys->finish_remote(*st);
}

bool RmiFuture::wait_for(std::int64_t real_ms) {
  RMIOPT_CHECK(state_ != nullptr, "wait_for() on an invalid RmiFuture");
  if (state_->is_local) return true;
  return state_->fut.wait_for(std::chrono::milliseconds(
             real_ms > 0 ? real_ms : 0)) == std::future_status::ready;
}

void RmiFuture::cancel() {
  if (state_ == nullptr || state_->is_local) return;
  if (state_->cancel_sent.exchange(true)) return;  // idempotent
  state_->sys->send_cancel_raw(state_->caller, state_->target.machine,
                               state_->callsite_id, state_->seq);
}

RmiSystem::RmiSystem(net::Cluster& cluster, const om::TypeRegistry& types,
                     const ExecutorConfig& executor)
    : cluster_(cluster), exec_cfg_(executor), class_plans_(types) {
  contexts_.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    contexts_.push_back(std::make_unique<MachineContext>());
    contexts_.back()->executor =
        std::make_unique<DispatchExecutor>(executor.dispatch_workers);
    contexts_.back()->admission = std::make_unique<AdmissionController>(
        executor.inbox_bound, executor.inbox_highwater,
        executor.credit_stall_ns, executor.admission_service_ns);
  }
}

RmiSystem::~RmiSystem() { stop(); }

std::uint32_t RmiSystem::define_method(std::string name, Handler handler) {
  RMIOPT_CHECK(!started_, "define_method after start");
  methods_.emplace_back(std::move(name), std::move(handler));
  return static_cast<std::uint32_t>(methods_.size() - 1);
}

std::uint32_t RmiSystem::add_callsite(CompiledCallSite site) {
  RMIOPT_CHECK(site.plan != nullptr, "call site needs a plan");
  RMIOPT_CHECK(site.method_id < methods_.size(),
               "call site references unknown method");
  const auto id = static_cast<std::uint32_t>(callsites_.size());
  site.plan->id = id;
  callsites_.push_back(std::move(site));
  return id;
}

const CompiledCallSite& RmiSystem::callsite(std::uint32_t id) const {
  RMIOPT_CHECK(id < callsites_.size(), "unknown call site");
  return callsites_[id];
}

RemoteRef RmiSystem::export_object(std::uint16_t machine, om::ObjRef obj) {
  MachineContext& ctx = *contexts_.at(machine);
  std::scoped_lock lock(ctx.exports_mu);
  ctx.exports.push_back(obj);
  return RemoteRef{machine,
                   static_cast<std::uint32_t>(ctx.exports.size() - 1)};
}

void RmiSystem::start() {
  RMIOPT_CHECK(!started_, "already started");
  started_ = true;
  if (net::FailureDetector* fd = cluster_.detector()) {
    // Fast-fail propagation: a confirmed death immediately releases every
    // caller blocked on that machine.  The callback outlives traffic, not
    // this object — the cluster (and its detector) must outlive the
    // RmiSystem, which the construction order of every app guarantees;
    // after stop() nothing polls, so the callback can no longer fire.
    fd->on_death([this](std::uint16_t machine, SimTime) {
      fail_pending_to(machine);
    });
  }
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    contexts_[i]->dispatcher = std::thread(
        [this, i] { dispatch_loop(static_cast<std::uint16_t>(i)); });
  }
}

void RmiSystem::stop() {
  if (!started_) return;
  cluster_.shutdown();
  for (auto& ctx : contexts_) {
    if (ctx->dispatcher.joinable()) ctx->dispatcher.join();
  }
  // Dispatchers are gone; let the pools finish whatever they queued.
  for (auto& ctx : contexts_) ctx->executor->drain_and_stop();
  // Handlers that finished during the executor drain may have posted
  // replies/ACKs *after* the shutdown flush above; under a batching
  // session config those sit coalesced in a session queue and would be
  // silently dropped.  Drain every session again now that no handler can
  // produce more traffic.
  cluster_.flush();
  // Callee-side reuse caches are runtime-owned (§3.3): release them now
  // that nothing can dispatch into them.  Return-value caches are not —
  // their top graph is the value the caller last received and may still
  // hold.  Slots may share substructure across arguments, so free the
  // union per machine exactly once.
  for (std::size_t id = 0; id < contexts_.size(); ++id) {
    MachineContext& ctx = *contexts_[id];
    std::unordered_set<om::Object*> graphs;
    {
      std::scoped_lock lock(ctx.cache_mu);
      for (auto& [site, slot] : ctx.arg_cache) {
        std::scoped_lock slot_lock(slot->mu);
        for (om::ObjRef o : slot->cached) om::collect_graph(o, graphs);
        slot->cached.clear();
      }
    }
    om::Heap& heap = cluster_.machine(static_cast<std::uint16_t>(id)).heap();
    for (om::Object* o : graphs) heap.free(o);
  }
  started_ = false;
}

void RmiSystem::charge(std::uint16_t machine_id,
                       const serial::SerialStats& pass) {
  cluster_.machine(machine_id).clock().advance(
      pass.cpu_cost(cluster_.cost()));
}

// ---- tracing ----------------------------------------------------------------

trace::PassTrace RmiSystem::pass_trace(trace::EventKind kind,
                                       std::uint16_t machine_id,
                                       std::uint32_t callsite_id,
                                       std::uint32_t seq) const {
  trace::PassTrace pt;
  pt.recorder = recorder();
  if (pt.recorder == nullptr) return pt;  // inert: no clock read
  pt.kind = kind;
  pt.machine = machine_id;
  pt.callsite = callsite_id;
  pt.seq = seq;
  pt.virtual_start_ns = cluster_.machine(machine_id).clock().now().as_nanos();
  pt.cost = &cluster_.cost();
  return pt;
}

void RmiSystem::trace_instant(trace::EventKind kind, std::uint16_t machine_id,
                              std::uint32_t callsite_id,
                              std::uint32_t seq) const {
  trace::Recorder* rec = recorder();
  if (rec == nullptr) return;
  trace::Event e;
  e.kind = kind;
  e.machine = machine_id;
  e.callsite = callsite_id;
  e.seq = seq;
  e.start_ns = cluster_.machine(machine_id).clock().now().as_nanos();
  rec->record(e);
}

void RmiSystem::trace_span(trace::EventKind kind, std::uint16_t machine_id,
                           std::uint32_t callsite_id, std::uint32_t seq,
                           std::int64_t start_ns, std::uint64_t bytes) const {
  trace::Recorder* rec = recorder();
  if (rec == nullptr) return;
  trace::Event e;
  e.kind = kind;
  e.machine = machine_id;
  e.callsite = callsite_id;
  e.seq = seq;
  e.start_ns = start_ns;
  const std::int64_t now =
      cluster_.machine(machine_id).clock().now().as_nanos();
  e.dur_ns = now > start_ns ? now - start_ns : 0;
  e.bytes = bytes;
  rec->record(e);
}

void RmiSystem::charge_stub(std::uint16_t machine_id,
                            const CompiledCallSite& site, std::size_t nargs,
                            std::size_t nscalars) {
  const serial::CostModel& c = cluster_.cost();
  std::int64_t ns = site.site_specific ? c.site_stub_ns : c.generic_stub_ns;
  if (!site.site_specific) {
    const std::size_t boxed =
        nargs + nscalars + (site.plan->ret != nullptr ? 1 : 0);
    ns += static_cast<std::int64_t>(boxed) * c.generic_arg_box_ns;
  }
  cluster_.machine(machine_id).clock().advance(SimTime::nanos(ns));
}

std::string RmiSystem::site_desc(std::uint32_t callsite_id) const {
  if (callsite_id >= callsites_.size()) {
    return "site " + std::to_string(callsite_id) + " (unknown)";
  }
  const CompiledCallSite& s = callsites_[callsite_id];
  return "site " + std::to_string(callsite_id) + " (" + s.plan->name + ", " +
         std::string(codegen::to_string(s.level)) + ")";
}

std::int64_t RmiSystem::compute_deadline(std::int64_t now_ns,
                                         const CallOptions& opts) const {
  std::int64_t base = 0;
  if (opts.budget_ns > 0) {
    base = now_ns + opts.budget_ns;
  } else if (exec_cfg_.default_deadline_ns > 0) {
    base = now_ns + exec_cfg_.default_deadline_ns;
  }
  std::int64_t inherited = 0;
  if (t_ambient_deadline_ns != 0) {
    inherited = t_ambient_deadline_ns - exec_cfg_.deadline_slack_ns;
    // 0 means "no deadline"; an inherited budget that erodes to exactly 0
    // is *expired*, so keep it distinguishable (any nonzero value <= now
    // reads as expired downstream).
    if (inherited == 0) inherited = -1;
  }
  if (base == 0) return inherited;
  if (inherited == 0) return base;
  return std::min(base, inherited);
}

void RmiSystem::send_cancel_raw(std::uint16_t caller, std::uint16_t dest,
                                std::uint32_t callsite_id,
                                std::uint32_t seq) {
  MachineContext& cctx = *contexts_.at(caller);
  cctx.stats.count_cancel_sent();
  trace_instant(trace::EventKind::CancelSent, caller, callsite_id, seq);
  wire::Message c;
  c.header.kind = wire::MsgKind::Cancel;
  c.header.callsite_id = callsite_id;
  c.header.seq = seq;
  c.header.source_machine = caller;
  c.header.dest_machine = dest;
  try {
    cluster_.send(std::move(c));
  } catch (const Error&) {
    // Best-effort by contract: an undeliverable cancel only means the
    // callee computes a reply the caller will drop as a stray.
  }
}

void RmiSystem::reject_remote_call(MachineContext& ctx,
                                   const ReplyToken& token,
                                   wire::RejectCode code,
                                   const std::string& reason) {
  wire::Message rej;
  rej.header.kind = wire::MsgKind::Reject;
  rej.header.callsite_id = token.callsite_id;
  rej.header.seq = token.seq;
  rej.header.source_machine = token.callee_machine;
  rej.header.dest_machine = token.caller_machine;
  rej.payload.put_u8(static_cast<std::uint8_t>(code));
  rej.payload.put_string(reason);
  // Tombstone: a duplicate of this call replays the typed refusal instead
  // of re-executing (at-most-once holds across cancellation).
  cache_reply(ctx, call_key(token.caller_machine, token.seq), rej);
  if (token.oneway) return;  // fire-and-forget: nobody is waiting
  try {
    cluster_.send(std::move(rej));
  } catch (const ProtocolError&) {
    ctx.stats.count_undeliverable_reply();
  }
}

std::promise<RmiSystem::PendingReply>& RmiSystem::register_pending(
    MachineContext& ctx, std::uint32_t seq, std::uint16_t dest) {
  std::scoped_lock lock(ctx.pending_mu);
  PendingSlot& slot = ctx.pending[seq];
  slot.dest = dest;
  return slot.promise;
}

RmiSystem::PendingReply RmiSystem::await_pending(
    MachineContext& ctx, std::uint16_t caller, std::uint32_t callsite_id,
    std::uint32_t seq, std::future<PendingReply> fut, std::uint16_t dest) {
  const std::int64_t budget_ms = exec_cfg_.call_timeout_ms;
  net::FailureDetector* const fd = cluster_.detector();
  bool timed_out = false;
  if (fd == nullptr) {
    timed_out =
        budget_ms > 0 &&
        fut.wait_for(std::chrono::milliseconds(budget_ms)) ==
            std::future_status::timeout;
  } else {
    // Slice the real-time wait: between slices, drive the probe rounds
    // with the cluster-wide makespan (the dead callee's own burning ARQ
    // advances virtual time even while this thread is parked) and bail
    // out the moment `dest` is confirmed dead.  Slices are real time, so
    // they affect only how promptly a blocked caller notices; the death
    // declaration itself stays on the deterministic virtual-time axis.
    constexpr std::int64_t kSliceMs = 2;
    for (std::int64_t waited_ms = 0;;) {
      if (fut.wait_for(std::chrono::milliseconds(kSliceMs)) ==
          std::future_status::ready) {
        break;
      }
      fd->poll(cluster_.makespan());
      if (fd->dead(dest) &&
          fut.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
        {
          std::scoped_lock lock(ctx.pending_mu);
          ctx.pending.erase(seq);
        }
        ctx.stats.count_call_timeout();
        ctx.stats.count_machine_down();
        throw MachineDown(
            dest, "call seq " + std::to_string(seq) + " via " +
                      site_desc(callsite_id) + " to machine " +
                      std::to_string(dest) +
                      ": machine declared dead while awaiting the reply");
      }
      waited_ms += kSliceMs;
      if (budget_ms > 0 && waited_ms >= budget_ms) {
        timed_out = true;
        break;
      }
    }
  }
  if (timed_out) {
    {
      std::scoped_lock lock(ctx.pending_mu);
      ctx.pending.erase(seq);
    }
    ctx.stats.count_call_timeout();
    // The callee may still be computing: tell it to stop (best-effort) so
    // the reply nobody will read is abandoned at the next poll boundary.
    if (dest != caller) send_cancel_raw(caller, dest, callsite_id, seq);
    throw RmiTimeout("call seq " + std::to_string(seq) + " via " +
                     site_desc(callsite_id) + ": no reply within " +
                     std::to_string(budget_ms) + " ms");
  }
  PendingReply rep = fut.get();
  {
    std::scoped_lock lock(ctx.pending_mu);
    ctx.pending.erase(seq);
  }
  if (rep.machine_down) {
    ctx.stats.count_call_timeout();
    ctx.stats.count_machine_down();
    throw MachineDown(dest, "call seq " + std::to_string(seq) + " via " +
                                site_desc(callsite_id) + " to machine " +
                                std::to_string(dest) +
                                ": machine declared dead");
  }
  if (rep.is_exception) throw RemoteException(rep.error);
  if (!rep.is_local && rep.msg.header.kind == wire::MsgKind::Exception) {
    throw RemoteException(rep.msg.payload.get_string());
  }
  if (!rep.is_local && rep.msg.header.kind == wire::MsgKind::Reject) {
    // The callee refused (or abandoned) the call without running its
    // handler to completion: map the code back to the typed exception.
    const auto code = static_cast<wire::RejectCode>(rep.msg.payload.get_u8());
    const std::string reason = rep.msg.payload.get_string();
    const std::string what = "call seq " + std::to_string(seq) + " via " +
                             site_desc(callsite_id) + " to machine " +
                             std::to_string(dest) + ": " + reason;
    switch (code) {
      case wire::RejectCode::DeadlineExceeded:
        ctx.stats.count_call_timeout();
        throw DeadlineExceeded(what);
      case wire::RejectCode::Overload:
        throw Overload(what);
      case wire::RejectCode::Cancelled:
        throw Cancelled(what);
    }
    throw RmiTimeout(what);  // unknown code from a newer peer
  }
  return rep;
}

bool RmiSystem::try_fulfill_pending(MachineContext& ctx, std::uint32_t seq,
                                    PendingReply reply) {
  std::promise<PendingReply> prom;
  {
    std::scoped_lock lock(ctx.pending_mu);
    auto it = ctx.pending.find(seq);
    if (it == ctx.pending.end()) return false;
    prom = std::move(it->second.promise);
    // Erase now: a promise fulfills exactly once, so leaving the consumed
    // slot behind would let a second reply for this seq (late real reply
    // after a fail_pending_to, or a duplicate) hit a moved-from promise.
    ctx.pending.erase(it);
  }
  prom.set_value(std::move(reply));
  return true;
}

void RmiSystem::fail_pending_to(std::uint16_t machine) {
  for (auto& ctxp : contexts_) {
    std::vector<std::promise<PendingReply>> victims;
    {
      std::scoped_lock lock(ctxp->pending_mu);
      for (auto it = ctxp->pending.begin(); it != ctxp->pending.end();) {
        if (it->second.dest == machine) {
          victims.push_back(std::move(it->second.promise));
          it = ctxp->pending.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Fulfill outside the lock: the woken caller's first act is to take
    // pending_mu for its own erase (now a no-op).
    for (std::promise<PendingReply>& p : victims) {
      PendingReply rep;
      rep.machine_down = true;
      p.set_value(std::move(rep));
    }
  }
}

void RmiSystem::fulfill_pending(MachineContext& ctx, std::uint32_t seq,
                                PendingReply reply) {
  // Local-path replies are produced by the runtime itself, so a missing
  // entry here is a programmer error, not network noise.
  RMIOPT_CHECK(try_fulfill_pending(ctx, seq, std::move(reply)),
               "reply without matching call");
}

// ---- at-most-once -----------------------------------------------------------

RmiSystem::CallAdmission RmiSystem::admit_call(std::uint16_t machine_id,
                                               MachineContext& ctx,
                                               std::uint64_t key,
                                               wire::Message* replay) {
  std::scoped_lock lock(ctx.amo_mu);
  auto it = ctx.reply_cache.find(key);
  if (it != ctx.reply_cache.end()) {
    if (!it->second.replied) return CallAdmission::InProgress;
    *replay = it->second.reply;  // copy: the cache keeps its own
    return CallAdmission::Replied;
  }
  ctx.reply_cache.emplace(key, ReplyCacheEntry{});
  ctx.reply_cache_order.push_back(key);
  // Bounded FIFO eviction of *completed* entries only.  An in-flight
  // entry (admitted, not yet replied) is the sole record that its call is
  // executing: evicting it would let a delayed duplicate be re-admitted
  // as Fresh and the handler run twice.  Such entries are pinned — moved
  // to the back of the order and counted — and the cache transiently
  // exceeds its capacity by the number of concurrent in-flight calls.
  std::size_t scanned = 0;
  while (ctx.reply_cache.size() > exec_cfg_.reply_cache_capacity &&
         scanned < ctx.reply_cache_order.size()) {
    ++scanned;
    const std::uint64_t victim = ctx.reply_cache_order.front();
    ctx.reply_cache_order.pop_front();
    auto vit = ctx.reply_cache.find(victim);
    if (vit == ctx.reply_cache.end()) continue;  // already released
    if (!vit->second.replied) {
      ctx.reply_cache_order.push_back(victim);  // pinned: still in flight
      ctx.stats.count_reply_cache_pin();
      trace_instant(trace::EventKind::ReplyCachePinned, machine_id,
                    trace::Event::kNoCallsite,
                    static_cast<std::uint32_t>(victim));
      continue;
    }
    ctx.reply_cache.erase(vit);
  }
  return CallAdmission::Fresh;
}

void RmiSystem::cache_reply(MachineContext& ctx, std::uint64_t key,
                            const wire::Message& reply) {
  std::scoped_lock lock(ctx.amo_mu);
  auto it = ctx.reply_cache.find(key);
  if (it == ctx.reply_cache.end()) return;  // already evicted
  it->second.replied = true;
  it->second.reply = reply;
}

RmiSystem::ReuseSlot& RmiSystem::reuse_slot(MachineContext& ctx,
                                            bool ret_side,
                                            std::uint32_t callsite_id,
                                            std::size_t arity) {
  std::scoped_lock lock(ctx.cache_mu);
  auto& map = ret_side ? ctx.ret_cache : ctx.arg_cache;
  auto& slot = map[callsite_id];
  if (!slot) slot = std::make_unique<ReuseSlot>();
  if (slot->cached.size() < arity) slot->cached.resize(arity, nullptr);
  return *slot;
}

void RmiSystem::free_arg_graphs(om::Heap& heap,
                                std::span<const om::ObjRef> args,
                                serial::SerialStats& pass) {
  // Arguments may share substructure (Figure 8 passes the same object
  // twice), so free the *union* of the graphs exactly once.
  std::unordered_set<om::Object*> all;
  for (om::ObjRef a : args) om::collect_graph(a, all);
  for (om::Object* o : all) {
    heap.free(o);
    ++pass.objects_freed;
  }
}

// ---- invocation -------------------------------------------------------------

om::ObjRef RmiSystem::invoke(std::uint16_t caller, RemoteRef target,
                             std::uint32_t callsite_id,
                             std::span<const om::ObjRef> args,
                             std::span<const std::int64_t> scalars,
                             const CallOptions& opts) {
  // The one code path: synchronous RMI is an async send consumed at once.
  return invoke_async(caller, target, callsite_id, args, scalars, opts)
      .get();
}

RmiFuture RmiSystem::invoke_async(std::uint16_t caller, RemoteRef target,
                                  std::uint32_t callsite_id,
                                  std::span<const om::ObjRef> args,
                                  std::span<const std::int64_t> scalars,
                                  const CallOptions& opts) {
  const CompiledCallSite& site = callsite(callsite_id);
  const serial::CallSitePlan& plan = *site.plan;
  RMIOPT_CHECK(args.size() == plan.args.size(),
               "argument count does not match call-site plan");
  const std::uint32_t seq = next_seq_.fetch_add(1);
  MachineContext& cctx = *contexts_.at(caller);
  net::Machine& m = cluster_.machine(caller);

  const std::int64_t deadline =
      compute_deadline(m.clock().now().as_nanos(), opts);
  if (deadline != 0 && m.clock().now().as_nanos() >= deadline) {
    // Fail fast at the first hop that cannot finish in time: do not
    // serialize, do not send.
    cctx.stats.count_deadline_reject();
    trace_instant(trace::EventKind::DeadlineReject, caller, callsite_id,
                  seq);
    throw DeadlineExceeded("call via " + site_desc(callsite_id) +
                           " to machine " + std::to_string(target.machine) +
                           ": budget exhausted before the send");
  }

  auto st = std::make_shared<AsyncCallState>();
  st->sys = this;
  st->caller = caller;
  st->target = target;
  st->callsite_id = callsite_id;
  st->seq = seq;

  if (target.machine == caller) {
    // The local path is synchronous by construction (the handler runs
    // inline on this thread): execute now, hand back a ready future.
    st->is_local = true;
    try {
      st->local_value =
          invoke_local(caller, target, site, args, scalars, seq, deadline);
    } catch (...) {
      st->local_error = std::current_exception();
    }
    return RmiFuture(std::move(st));
  }

  // Admission control, evaluated against the callee's deterministic
  // virtual-time inbox model *before* any work is invested in the call.
  AdmissionController& adm = *contexts_.at(target.machine)->admission;
  if (adm.enabled()) {
    const AdmissionController::Decision d =
        adm.admit(m.clock().now().as_nanos());
    if (d.stall_ns > 0) {
      // Backpressure: the flow-control credit delays this sender's
      // virtual-time send, pacing it to the callee's capacity.
      trace::Recorder* const rec = recorder();
      const std::int64_t stall_start =
          rec != nullptr ? m.clock().now().as_nanos() : 0;
      m.clock().advance(SimTime::nanos(d.stall_ns));
      cctx.stats.count_credit_stall();
      trace_span(trace::EventKind::CreditStall, caller, callsite_id, seq,
                 stall_start);
    }
    if (!d.admitted) {
      cctx.stats.count_shed();
      trace_instant(trace::EventKind::OverloadShed, caller, callsite_id,
                    seq);
      throw Overload("call via " + site_desc(callsite_id) + " to machine " +
                     std::to_string(target.machine) +
                     " shed: inbox at its bound (" +
                     std::to_string(exec_cfg_.inbox_bound) +
                     "); retry with backoff");
    }
    // The stall consumed part of the budget; re-check before sending.
    if (deadline != 0 && m.clock().now().as_nanos() >= deadline) {
      cctx.stats.count_deadline_reject();
      trace_instant(trace::EventKind::DeadlineReject, caller, callsite_id,
                    seq);
      throw DeadlineExceeded(
          "call via " + site_desc(callsite_id) + " to machine " +
          std::to_string(target.machine) +
          ": budget exhausted by flow-control backpressure");
    }
  }

  cctx.stats.count_remote_rpc();
  // Caller-perceived Call span: from here to the reply's deserialization.
  trace::Recorder* const rec = recorder();
  st->call_start_ns = rec != nullptr ? m.clock().now().as_nanos() : 0;
  st->fut = register_pending(cctx, seq, target.machine).get_future();

  wire::Message msg;
  msg.header.kind = wire::MsgKind::Call;
  msg.header.callsite_id = callsite_id;
  msg.header.target_export = target.export_id;
  msg.header.seq = seq;
  msg.header.source_machine = caller;
  msg.header.dest_machine = target.machine;
  msg.header.deadline_ns = deadline;

  // Scatter-gather send (CostModel::zero_copy_send): serialize into a
  // gather list so inline primitive-array rows ride as borrowed segments.
  // The HEAVY protocol keeps the contiguous path — it is the baseline the
  // ablations compare against.
  const serial::CostModel& cmodel = cluster_.cost();
  if (cmodel.zero_copy_send && !site.heavy) {
    msg.gathered = std::make_shared<support::GatherBuffer>(
        cmodel.gather_min_borrow_bytes, cmodel.gather_pin_copy_threshold);
    msg.gathered->put_varint(scalars.size());
    for (const std::int64_t s : scalars) msg.gathered->put_i64(s);
  } else {
    msg.payload.put_varint(scalars.size());
    for (const std::int64_t s : scalars) msg.payload.put_i64(s);
  }

  // Per-call marshaler machinery: generic stub vs generated code (§3.1).
  charge_stub(caller, site, args.size(), scalars.size());

  const bool cycle_enabled = site.heavy || plan.needs_cycle_table;
  serial::SerialStats pass;
  {
    serial::SerialWriter w(
        class_plans_, pass, cycle_enabled,
        pass_trace(trace::EventKind::Serialize, caller, callsite_id, seq));
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (site.heavy) {
        w.write_introspective(msg.payload, args[i]);
      } else if (msg.gathered) {
        w.write(*msg.gathered, *plan.args[i], args[i]);
      } else {
        w.write(msg.payload, *plan.args[i], args[i]);
      }
    }
  }
  // Pin/fold borrowed spans *before* the caller can touch its argument
  // graphs again: from here on the payload image is frozen, so ARQ
  // retransmits and fault-plan copies stay byte-identical.
  msg.seal_gathered();
  st->request_bytes = msg.payload_size();
  charge(caller, pass);
  cctx.stats.add_pass(pass);
  add_site_pass(callsite_id, pass, 0, 1);

  try {
    cluster_.send(std::move(msg));
  } catch (const MachineDeadError& e) {
    // The failure detector already confirmed the endpoint dead: fail the
    // call immediately with the typed form instead of waiting out the ARQ
    // retransmit budget.
    {
      std::scoped_lock lock(cctx.pending_mu);
      cctx.pending.erase(seq);
    }
    cctx.stats.count_call_timeout();
    cctx.stats.count_machine_down();
    trace_instant(trace::EventKind::CallTimeout, caller, callsite_id, seq);
    throw MachineDown(e.machine(),
                      "call via " + site_desc(callsite_id) + " to machine " +
                          std::to_string(target.machine) +
                          " failed fast: " + e.what());
  } catch (const ProtocolError& e) {
    // The link's ARQ gave up: the callee is crashed or unreachable.  The
    // failure is synchronous (virtual-time timers, not wall-clock), so it
    // converts directly into the typed caller-visible form.
    {
      std::scoped_lock lock(cctx.pending_mu);
      cctx.pending.erase(seq);
    }
    cctx.stats.count_call_timeout();
    trace_instant(trace::EventKind::CallTimeout, caller, callsite_id, seq);
    throw RmiTimeout("call via " + site_desc(callsite_id) + " to machine " +
                     std::to_string(target.machine) +
                     " undeliverable: " + e.what());
  }
  return RmiFuture(std::move(st));
}

om::ObjRef RmiSystem::finish_remote(AsyncCallState& st) {
  const std::uint16_t caller = st.caller;
  const std::uint32_t callsite_id = st.callsite_id;
  const std::uint32_t seq = st.seq;
  const CompiledCallSite& site = callsite(callsite_id);
  const serial::CallSitePlan& plan = *site.plan;
  MachineContext& cctx = *contexts_.at(caller);
  net::Machine& m = cluster_.machine(caller);

  // Nested-invoke deadlock guard: with a single dispatch worker, a handler
  // that performs a synchronous remote invoke from the dispatcher thread
  // waits for a reply only that same thread could process.  Before this
  // check the call hung until the retransmit budget drained (or forever on
  // a fault-free link).  Fail fast with a typed, recoverable error instead
  // — unless the reply is somehow already in hand.
  if (exec_cfg_.dispatch_workers == 1 &&
      std::this_thread::get_id() == cctx.dispatcher.get_id() &&
      st.fut.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
    {
      std::scoped_lock lock(cctx.pending_mu);
      cctx.pending.erase(seq);
    }
    cctx.stats.count_call_timeout();
    trace_instant(trace::EventKind::CallTimeout, caller, callsite_id, seq);
    // Best-effort: tell the callee not to bother computing the reply.
    send_cancel_raw(caller, st.target.machine, callsite_id, seq);
    throw NestedInvokeDeadlock(
        "nested synchronous invoke via " + site_desc(callsite_id) +
        " from the dispatcher thread of machine " + std::to_string(caller) +
        " would deadlock: dispatch_workers == 1, so the reply could only be "
        "processed by the thread that is blocked waiting for it. Configure "
        "dispatch_workers >= 2 on the calling machine, or use invoke_oneway "
        "/ invoke_async with the future consumed off the dispatcher thread.");
  }

  PendingReply rep;
  try {
    rep = await_pending(cctx, caller, callsite_id, seq, std::move(st.fut),
                        st.target.machine);
  } catch (const RmiTimeout&) {
    trace_instant(trace::EventKind::CallTimeout, caller, callsite_id, seq);
    throw;
  }
  RMIOPT_CHECK(!rep.is_local, "local reply on remote path");
  if (rep.msg.header.kind == wire::MsgKind::Ack) {
    trace_span(trace::EventKind::Call, caller, callsite_id, seq,
               st.call_start_ns, st.request_bytes);
    return nullptr;
  }

  const bool cycle_enabled = site.heavy || plan.needs_cycle_table;
  const std::uint64_t reply_bytes = rep.msg.payload.size();
  serial::SerialStats rpass;
  serial::SerialReader r(
      class_plans_, m.heap(), rpass, cycle_enabled,
      pass_trace(trace::EventKind::Deserialize, caller, callsite_id, seq));
  // Zero-copy receive: a non-HEAVY reply decoded from a pinned frame may
  // borrow its large primitive-array rows instead of copying them out.
  if (cluster_.cost().zero_copy_receive && !site.heavy) {
    r.enable_borrow(cluster_.cost().gather_min_borrow_bytes);
  }
  om::ObjRef value = nullptr;
  if (site.heavy) {
    value = r.read_introspective(rep.msg.payload);
  } else if (plan.reuse_ret) {
    ReuseSlot& slot = reuse_slot(cctx, /*ret_side=*/true, callsite_id, 1);
    om::ObjRef cached = nullptr;
    {
      std::scoped_lock lock(slot.mu);
      cached = slot.cached[0];
      slot.cached[0] = nullptr;  // multithreading guard (Fig. 13)
    }
    value = r.read_reusing(rep.msg.payload, *plan.ret, cached);
    {
      std::scoped_lock lock(slot.mu);
      slot.cached[0] = value;
    }
  } else {
    value = r.read(rep.msg.payload, *plan.ret);
  }
  charge(caller, rpass);
  cctx.stats.add_pass(rpass);
  add_site_pass(callsite_id, rpass);
  trace_span(trace::EventKind::Call, caller, callsite_id, seq,
             st.call_start_ns, st.request_bytes + reply_bytes);
  return value;
}

void RmiSystem::invoke_oneway(std::uint16_t caller, RemoteRef target,
                              std::uint32_t callsite_id,
                              std::span<const om::ObjRef> args,
                              std::span<const std::int64_t> scalars,
                              const CallOptions& opts) {
  const CompiledCallSite& site = callsite(callsite_id);
  const serial::CallSitePlan& plan = *site.plan;
  RMIOPT_CHECK(args.size() == plan.args.size(),
               "argument count does not match call-site plan");
  const std::uint32_t seq = next_seq_.fetch_add(1);
  MachineContext& cctx = *contexts_.at(caller);
  net::Machine& m = cluster_.machine(caller);

  const std::int64_t deadline =
      compute_deadline(m.clock().now().as_nanos(), opts);
  if (deadline != 0 && m.clock().now().as_nanos() >= deadline) {
    cctx.stats.count_deadline_reject();
    trace_instant(trace::EventKind::DeadlineReject, caller, callsite_id,
                  seq);
    throw DeadlineExceeded("oneway call via " + site_desc(callsite_id) +
                           " to machine " + std::to_string(target.machine) +
                           ": budget exhausted before the send");
  }

  if (target.machine == caller) {
    // Local fire-and-forget: clone (copy semantics, §1), run inline,
    // discard the outcome.  The oneway token suppresses every reply path,
    // including a handler's deferred send_reply.
    cctx.stats.count_local_rpc();
    cctx.stats.count_oneway_call();
    trace_instant(trace::EventKind::OnewaySend, caller, callsite_id, seq);
    charge_stub(caller, site, args.size(), scalars.size());

    serial::SerialStats pass;
    std::vector<om::ObjRef> cloned;
    cloned.reserve(args.size());
    for (om::ObjRef a : args) {
      om::ObjRef c = a ? om::deep_clone(m.heap(), a) : nullptr;
      const om::GraphExtent ext = om::graph_extent(c);
      pass.objects_allocated += ext.objects;
      pass.bytes_allocated += ext.bytes;
      pass.bytes_copied += ext.bytes;
      cloned.push_back(c);
    }
    charge(caller, pass);
    cctx.stats.add_pass(pass);
    add_site_pass(callsite_id, pass, 1, 0);

    om::ObjRef self = nullptr;
    {
      std::scoped_lock lock(cctx.exports_mu);
      RMIOPT_CHECK(target.export_id < cctx.exports.size(),
                   "unknown export id");
      self = cctx.exports[target.export_id];
    }
    ReplyToken token{callsite_id, seq, caller, caller};
    token.oneway = true;
    CallContext cc(*this, m, self, token, deadline);
    m.clock().advance(SimTime::nanos(cluster_.cost().upcall_dispatch_ns));
    HandlerResult res;
    try {
      AmbientDeadlineScope scope(deadline);
      res = methods_[site.method_id].second(cc, scalars, cloned);
    } catch (const Error& e) {
      res = HandlerResult::exception(e.what());
    }
    if (!res.deferred) {
      if (res.is_exception) {
        send_exception(token, res.error);  // oneway: swallowed
      } else {
        send_reply(token, res.value, res.give_ownership);
      }
    }
    if (!res.args_consumed) {
      serial::SerialStats freep;
      free_arg_graphs(m.heap(), cloned, freep);
      charge(caller, freep);
      cctx.stats.add_pass(freep);
      add_site_pass(callsite_id, freep);
    }
    return;
  }

  // Remote fire-and-forget: same admission and pricing as invoke_async,
  // but no pending slot — nothing will ever come back.
  AdmissionController& adm = *contexts_.at(target.machine)->admission;
  if (adm.enabled()) {
    const AdmissionController::Decision d =
        adm.admit(m.clock().now().as_nanos());
    if (d.stall_ns > 0) {
      trace::Recorder* const rec = recorder();
      const std::int64_t stall_start =
          rec != nullptr ? m.clock().now().as_nanos() : 0;
      m.clock().advance(SimTime::nanos(d.stall_ns));
      cctx.stats.count_credit_stall();
      trace_span(trace::EventKind::CreditStall, caller, callsite_id, seq,
                 stall_start);
    }
    if (!d.admitted) {
      cctx.stats.count_shed();
      trace_instant(trace::EventKind::OverloadShed, caller, callsite_id,
                    seq);
      throw Overload("oneway call via " + site_desc(callsite_id) +
                     " to machine " + std::to_string(target.machine) +
                     " shed: inbox at its bound (" +
                     std::to_string(exec_cfg_.inbox_bound) +
                     "); retry with backoff");
    }
  }

  cctx.stats.count_remote_rpc();
  cctx.stats.count_oneway_call();
  trace_instant(trace::EventKind::OnewaySend, caller, callsite_id, seq);

  wire::Message msg;
  msg.header.kind = wire::MsgKind::Call;
  msg.header.callsite_id = callsite_id;
  msg.header.target_export = target.export_id;
  msg.header.seq = seq;
  msg.header.source_machine = caller;
  msg.header.dest_machine = target.machine;
  msg.header.flags = wire::kFlagOneway;
  msg.header.deadline_ns = deadline;

  // Same gathered-send gate as invoke_async: oneway bodies borrow inline
  // primitive-array rows when the knob is on.
  const serial::CostModel& cmodel = cluster_.cost();
  if (cmodel.zero_copy_send && !site.heavy) {
    msg.gathered = std::make_shared<support::GatherBuffer>(
        cmodel.gather_min_borrow_bytes, cmodel.gather_pin_copy_threshold);
    msg.gathered->put_varint(scalars.size());
    for (const std::int64_t s : scalars) msg.gathered->put_i64(s);
  } else {
    msg.payload.put_varint(scalars.size());
    for (const std::int64_t s : scalars) msg.payload.put_i64(s);
  }
  charge_stub(caller, site, args.size(), scalars.size());

  const bool cycle_enabled = site.heavy || plan.needs_cycle_table;
  serial::SerialStats pass;
  {
    serial::SerialWriter w(
        class_plans_, pass, cycle_enabled,
        pass_trace(trace::EventKind::Serialize, caller, callsite_id, seq));
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (site.heavy) {
        w.write_introspective(msg.payload, args[i]);
      } else if (msg.gathered) {
        w.write(*msg.gathered, *plan.args[i], args[i]);
      } else {
        w.write(msg.payload, *plan.args[i], args[i]);
      }
    }
  }
  msg.seal_gathered();
  charge(caller, pass);
  cctx.stats.add_pass(pass);
  add_site_pass(callsite_id, pass, 0, 1);

  try {
    cluster_.send(std::move(msg));
  } catch (const MachineDeadError& e) {
    cctx.stats.count_call_timeout();
    cctx.stats.count_machine_down();
    trace_instant(trace::EventKind::CallTimeout, caller, callsite_id, seq);
    throw MachineDown(e.machine(),
                      "oneway call via " + site_desc(callsite_id) +
                          " to machine " + std::to_string(target.machine) +
                          " failed fast: " + e.what());
  } catch (const ProtocolError& e) {
    cctx.stats.count_call_timeout();
    trace_instant(trace::EventKind::CallTimeout, caller, callsite_id, seq);
    throw RmiTimeout("oneway call via " + site_desc(callsite_id) +
                     " to machine " + std::to_string(target.machine) +
                     " undeliverable: " + e.what());
  }
}

om::ObjRef RmiSystem::invoke_local(std::uint16_t caller, RemoteRef target,
                                   const CompiledCallSite& site,
                                   std::span<const om::ObjRef> args,
                                   std::span<const std::int64_t> scalars,
                                   std::uint32_t seq,
                                   std::int64_t deadline_ns) {
  MachineContext& cctx = *contexts_.at(caller);
  net::Machine& m = cluster_.machine(caller);
  cctx.stats.count_local_rpc();
  trace::Recorder* const rec = recorder();
  const std::int64_t call_start_ns =
      rec != nullptr ? m.clock().now().as_nanos() : 0;
  auto fut = register_pending(cctx, seq, caller).get_future();
  charge_stub(caller, site, args.size(), scalars.size());

  // RMI parameter-passing semantics must hold regardless of placement
  // (§1): clone the argument graphs.
  serial::SerialStats pass;
  std::vector<om::ObjRef> cloned;
  cloned.reserve(args.size());
  for (om::ObjRef a : args) {
    om::ObjRef c = a ? om::deep_clone(m.heap(), a) : nullptr;
    const om::GraphExtent ext = om::graph_extent(c);
    pass.objects_allocated += ext.objects;
    pass.bytes_allocated += ext.bytes;
    pass.bytes_copied += ext.bytes;
    cloned.push_back(c);
  }
  charge(caller, pass);
  cctx.stats.add_pass(pass);
  add_site_pass(site.plan->id, pass, 1, 0);

  om::ObjRef self = nullptr;
  {
    std::scoped_lock lock(cctx.exports_mu);
    RMIOPT_CHECK(target.export_id < cctx.exports.size(),
                 "unknown export id");
    self = cctx.exports[target.export_id];
  }
  const ReplyToken token{site.plan->id, seq, caller, caller};
  CallContext cc(*this, m, self, token, deadline_ns);
  m.clock().advance(SimTime::nanos(cluster_.cost().upcall_dispatch_ns));
  HandlerResult res;
  try {
    // Nested invokes from inside this handler inherit the remaining
    // budget (minus slack) through the ambient deadline.
    AmbientDeadlineScope scope(deadline_ns);
    res = methods_[site.method_id].second(cc, scalars, cloned);
  } catch (const Error& e) {
    res = HandlerResult::exception(e.what());
  }

  // Reply first: the return value may alias the argument graphs, so the
  // arguments stay live until the reply is out (as a GC would ensure).
  if (!res.deferred) {
    if (res.is_exception) {
      send_exception(token, res.error);
    } else {
      send_reply(token, res.value, res.give_ownership);
    }
  }
  if (!res.args_consumed) {
    serial::SerialStats freep;
    free_arg_graphs(m.heap(), cloned, freep);
    charge(caller, freep);
    cctx.stats.add_pass(freep);
    add_site_pass(site.plan->id, freep);
  }

  PendingReply rep =
      await_pending(cctx, caller, site.plan->id, seq, std::move(fut), caller);
  RMIOPT_CHECK(rep.is_local, "remote reply on local path");
  trace_span(trace::EventKind::LocalCall, caller, site.plan->id, seq,
             call_start_ns);
  return rep.local_value;
}

void RmiSystem::send_reply(const ReplyToken& token, om::ObjRef value,
                           bool give_ownership) {
  const CompiledCallSite& site = callsite(token.callsite_id);
  const serial::CallSitePlan& plan = *site.plan;
  net::Machine& callee = cluster_.machine(token.callee_machine);
  MachineContext& callee_ctx = *contexts_.at(token.callee_machine);
  const bool has_ret = plan.ret != nullptr;

  if (token.oneway) {
    // Fire-and-forget: nothing goes on the wire and nobody is fulfilled.
    // Free a per-call return value, and record completion in the
    // at-most-once cache so a duplicate is suppressed (silently — the
    // cached marker is never replayed for oneway calls).
    if (give_ownership && value != nullptr) {
      serial::SerialStats pass;
      const om::GraphExtent ext = om::graph_extent(value);
      callee.heap().free_graph(value);
      pass.objects_freed += ext.objects;
      charge(token.callee_machine, pass);
      callee_ctx.stats.add_pass(pass);
      add_site_pass(token.callsite_id, pass);
    }
    if (token.caller_machine != token.callee_machine) {
      wire::Message done;
      done.header.kind = wire::MsgKind::Ack;
      done.header.callsite_id = token.callsite_id;
      done.header.seq = token.seq;
      done.header.source_machine = token.callee_machine;
      done.header.dest_machine = token.caller_machine;
      cache_reply(callee_ctx, call_key(token.caller_machine, token.seq),
                  done);
    }
    return;
  }

  if (token.caller_machine == token.callee_machine) {
    // Local reply: clone the return graph (copy semantics, §1).
    om::ObjRef result = nullptr;
    serial::SerialStats pass;
    if (has_ret && value != nullptr) {
      result = om::deep_clone(callee.heap(), value);
      const om::GraphExtent ext = om::graph_extent(result);
      pass.objects_allocated += ext.objects;
      pass.bytes_allocated += ext.bytes;
      pass.bytes_copied += ext.bytes;
    }
    if (give_ownership && value != nullptr) {
      const om::GraphExtent ext = om::graph_extent(value);
      callee.heap().free_graph(value);
      pass.objects_freed += ext.objects;
    }
    charge(token.callee_machine, pass);
    callee_ctx.stats.add_pass(pass);
    add_site_pass(token.callsite_id, pass);

    PendingReply rep;
    rep.is_local = true;
    rep.local_value = result;
    fulfill_pending(callee_ctx, token.seq, std::move(rep));
    return;
  }

  wire::Message reply;
  reply.header.kind = has_ret ? wire::MsgKind::Return : wire::MsgKind::Ack;
  reply.header.callsite_id = token.callsite_id;
  reply.header.seq = token.seq;
  reply.header.source_machine = token.callee_machine;
  reply.header.dest_machine = token.caller_machine;
  reply.coalesce_hint = site.batch_replies;

  serial::SerialStats pass;
  if (has_ret) {
    const serial::CostModel& cmodel = cluster_.cost();
    if (cmodel.zero_copy_send && !site.heavy) {
      reply.gathered = std::make_shared<support::GatherBuffer>(
          cmodel.gather_min_borrow_bytes, cmodel.gather_pin_copy_threshold);
    }
    const bool cycle_enabled = site.heavy || plan.needs_cycle_table;
    serial::SerialWriter w(class_plans_, pass, cycle_enabled,
                           pass_trace(trace::EventKind::Serialize,
                                      token.callee_machine,
                                      token.callsite_id, token.seq));
    if (site.heavy) {
      w.write_introspective(reply.payload, value);
    } else if (reply.gathered) {
      w.write(*reply.gathered, *plan.ret, value);
    } else {
      w.write(reply.payload, *plan.ret, value);
    }
  }
  // Seal before the give_ownership free below and before the reply cache
  // takes its copy: borrowed spans may alias `value`'s payload rows, and
  // from here the frame image must be frozen (replayed duplicates and ARQ
  // retransmits must match the first transmission byte for byte).
  reply.seal_gathered();
  if (give_ownership && value != nullptr) {
    const om::GraphExtent ext = om::graph_extent(value);
    callee.heap().free_graph(value);
    pass.objects_freed += ext.objects;
  }
  charge(token.callee_machine, pass);
  callee_ctx.stats.add_pass(pass);
  add_site_pass(token.callsite_id, pass);
  // At-most-once: keep the serialized reply so a duplicate of this call
  // can be answered by replay instead of re-executing the handler.
  cache_reply(callee_ctx, call_key(token.caller_machine, token.seq), reply);
  try {
    cluster_.send(std::move(reply));
  } catch (const ProtocolError&) {
    // The caller's machine is unreachable; the call has already executed,
    // so all we can do is count the lost reply.  A surviving caller will
    // surface its own RmiTimeout.
    callee_ctx.stats.count_undeliverable_reply();
  }
}

void RmiSystem::send_exception(const ReplyToken& token, std::string message) {
  if (token.oneway) {
    // Fire-and-forget: the exception has nowhere to go.  Record
    // completion so a duplicate of the call is suppressed, not re-run.
    if (token.caller_machine != token.callee_machine) {
      wire::Message done;
      done.header.kind = wire::MsgKind::Ack;
      done.header.callsite_id = token.callsite_id;
      done.header.seq = token.seq;
      done.header.source_machine = token.callee_machine;
      done.header.dest_machine = token.caller_machine;
      cache_reply(*contexts_.at(token.callee_machine),
                  call_key(token.caller_machine, token.seq), done);
    }
    return;
  }
  if (token.caller_machine == token.callee_machine) {
    PendingReply rep;
    rep.is_local = true;
    rep.is_exception = true;
    rep.error = std::move(message);
    fulfill_pending(*contexts_.at(token.callee_machine), token.seq,
                    std::move(rep));
    return;
  }
  wire::Message reply;
  reply.header.kind = wire::MsgKind::Exception;
  reply.header.callsite_id = token.callsite_id;
  reply.header.seq = token.seq;
  reply.header.source_machine = token.callee_machine;
  reply.header.dest_machine = token.caller_machine;
  reply.payload.put_string(message);
  MachineContext& callee_ctx = *contexts_.at(token.callee_machine);
  cache_reply(callee_ctx, call_key(token.caller_machine, token.seq), reply);
  try {
    cluster_.send(std::move(reply));
  } catch (const ProtocolError&) {
    callee_ctx.stats.count_undeliverable_reply();
  }
}

// ---- dispatcher ---------------------------------------------------------------

void RmiSystem::dispatch_loop(std::uint16_t machine_id) {
  net::Machine& m = cluster_.machine(machine_id);
  MachineContext& ctx = *contexts_.at(machine_id);
  while (auto env = m.receive_blocking()) {
    const wire::MessageHeader h = env->msg.header;
    if (h.kind == wire::MsgKind::Call) {
      const bool oneway = (h.flags & wire::kFlagOneway) != 0;
      // At-most-once: a duplicate of a call already executing is dropped;
      // a duplicate of a call already answered gets the cached reply
      // re-sent verbatim (the handler never runs twice).  A duplicate of
      // a oneway call is suppressed silently — its completion marker is
      // never a real reply.
      const std::uint64_t key = call_key(h.source_machine, h.seq);
      wire::Message replay;
      switch (admit_call(machine_id, ctx, key, &replay)) {
        case CallAdmission::InProgress:
          ctx.stats.count_duplicate_call();
          trace_instant(trace::EventKind::DuplicateDropped, machine_id,
                        h.callsite_id, h.seq);
          continue;
        case CallAdmission::Replied:
          ctx.stats.count_duplicate_call();
          if (oneway) continue;
          ctx.stats.count_replayed_reply();
          trace_instant(trace::EventKind::ReplyReplayed, machine_id,
                        h.callsite_id, h.seq);
          try {
            cluster_.send(std::move(replay));
          } catch (const ProtocolError&) {
            ctx.stats.count_undeliverable_reply();
          }
          continue;
        case CallAdmission::Fresh:
          break;
      }
      ReplyToken token{h.callsite_id, h.seq, h.source_machine, machine_id};
      token.oneway = oneway;
      if (h.callsite_id >= callsites_.size()) {
        // Externally-derived index: answer with a typed remote exception
        // instead of bringing the callee down.
        send_exception(token, "unknown call site " +
                                  std::to_string(h.callsite_id));
        continue;
      }
      // Deadline gate: refuse to even *decode* a call whose deadline has
      // passed — the caller already timed out, so every cycle spent here
      // is wasted.  The Reject is cached as the call's tombstone.
      if (h.deadline_ns != 0 &&
          m.clock().now().as_nanos() >= h.deadline_ns) {
        ctx.stats.count_deadline_reject();
        trace_instant(trace::EventKind::DeadlineReject, machine_id,
                      h.callsite_id, h.seq);
        reject_remote_call(ctx, token, wire::RejectCode::DeadlineExceeded,
                           "deadline expired before dispatch at " +
                               site_desc(h.callsite_id));
        continue;
      }
      // Deserialize on the dispatcher (the unmarshaler lock discipline of
      // §4), then hand the handler to the executor — inline with one
      // worker, concurrent with a pool.
      std::shared_ptr<DecodedCall> call;
      try {
        call = std::make_shared<DecodedCall>(
            decode_call(machine_id, std::move(*env)));
      } catch (const Error& e) {
        // A call whose payload does not match its plan (possible only
        // from hand-crafted or damaged-but-checksum-colliding input) is
        // answered exceptionally, not fatally.
        send_exception(token, std::string("undecodable call: ") + e.what());
        continue;
      }
      // Register the cancellation flag before the handler is queued.  The
      // per-link FIFO means a CancelRequest for this call can only be
      // processed after this point, so the lookup below never misses a
      // cancellable call.
      call->cancel = std::make_shared<CancelToken>();
      {
        std::scoped_lock lock(ctx.cancel_mu);
        ctx.cancel_tokens[key] = call->cancel;
      }
      ctx.executor->execute([this, machine_id, call] {
        execute_call(machine_id, std::move(*call));
      });
      continue;
    }
    if (h.kind == wire::MsgKind::Cancel) {
      // Best-effort cancellation: flag the call if it is still here.  A
      // miss means the call already completed (or was never admitted) —
      // the cancel simply lost the race.
      std::shared_ptr<CancelToken> tok;
      {
        std::scoped_lock lock(ctx.cancel_mu);
        auto it = ctx.cancel_tokens.find(call_key(h.source_machine, h.seq));
        if (it != ctx.cancel_tokens.end()) tok = it->second;
      }
      if (tok) tok->request();
      continue;
    }
    if (h.kind == wire::MsgKind::Heartbeat) {
      // Defensive: detector probes never enter inboxes (they terminate in
      // the detector's own sink), but a hand-crafted frame could carry the
      // kind.  Swallow it rather than misread it as a reply.
      continue;
    }
    // A reply: wake the caller blocked on this sequence number.  A reply
    // nobody is waiting for (stray duplicate, or the caller already timed
    // out) is dropped and counted, never fatal.
    PendingReply rep;
    rep.is_local = false;
    const std::uint32_t seq = h.seq;
    rep.msg = std::move(env->msg);
    if (try_fulfill_pending(ctx, seq, std::move(rep))) {
      trace_instant(trace::EventKind::ReplyDeliver, machine_id,
                    h.callsite_id, seq);
    } else {
      ctx.stats.count_stray_reply();
    }
  }
}

RmiSystem::DecodedCall RmiSystem::decode_call(std::uint16_t machine_id,
                                              net::Envelope env) {
  net::Machine& m = cluster_.machine(machine_id);
  MachineContext& ctx = *contexts_.at(machine_id);
  const wire::MessageHeader& h = env.msg.header;
  const CompiledCallSite& site = callsite(h.callsite_id);
  const serial::CallSitePlan& plan = *site.plan;
  const bool cycle_enabled = site.heavy || plan.needs_cycle_table;

  DecodedCall call;
  call.callsite_id = h.callsite_id;
  call.seq = h.seq;
  call.source = h.source_machine;
  call.target_export = h.target_export;
  call.deadline_ns = h.deadline_ns;
  call.oneway = (h.flags & wire::kFlagOneway) != 0;

  // Scalars.
  const std::size_t nscalars = env.msg.payload.get_varint();
  // Skeleton machinery (generic vs generated unmarshaler).
  charge_stub(machine_id, site, plan.args.size(), nscalars);
  call.scalars.resize(nscalars);
  for (auto& s : call.scalars) s = env.msg.payload.get_i64();

  // Object arguments.
  serial::SerialStats pass;
  serial::SerialReader reader(
      class_plans_, m.heap(), pass, cycle_enabled,
      pass_trace(trace::EventKind::Deserialize, machine_id, h.callsite_id,
                 h.seq));
  // Zero-copy receive: non-HEAVY argument decodes from a pinned frame may
  // borrow large primitive-array rows straight out of it (threshold shared
  // with the send-side gather — the crossover is the same iovec-vs-memcpy
  // trade in the other direction).
  if (cluster_.cost().zero_copy_receive && !site.heavy) {
    reader.enable_borrow(cluster_.cost().gather_min_borrow_bytes);
  }
  call.args.assign(plan.args.size(), nullptr);
  std::vector<om::ObjRef> cached;
  call.reuse = plan.reuse_args && !site.heavy;
  if (call.reuse) {
    call.slot = &reuse_slot(ctx, /*ret_side=*/false, h.callsite_id,
                            plan.args.size());
    std::scoped_lock lock(call.slot->mu);
    cached = call.slot->cached;
    // Guard against concurrent executions of this unmarshaler (Fig. 13:
    // "temp_arr = null" while in use).
    std::fill(call.slot->cached.begin(), call.slot->cached.end(), nullptr);
    // The slot is detached: if the decode throws mid-argument, the reader
    // must release the old graphs (even ones the stream never reached).
    reader.adopt_cache_roots(cached);
  }
  for (std::size_t i = 0; i < call.args.size(); ++i) {
    if (site.heavy) {
      call.args[i] = reader.read_introspective(env.msg.payload);
    } else if (call.reuse) {
      call.args[i] = reader.read_reusing(env.msg.payload, *plan.args[i],
                                         cached[i]);
    } else {
      call.args[i] = reader.read(env.msg.payload, *plan.args[i]);
    }
  }
  charge(machine_id, pass);
  ctx.stats.add_pass(pass);
  add_site_pass(h.callsite_id, pass);
  return call;
}

void RmiSystem::execute_call(std::uint16_t machine_id, DecodedCall call) {
  net::Machine& m = cluster_.machine(machine_id);
  MachineContext& ctx = *contexts_.at(machine_id);
  const CompiledCallSite& site = callsite(call.callsite_id);
  m.clock().advance(SimTime::nanos(cluster_.cost().upcall_dispatch_ns));

  ReplyToken token{call.callsite_id, call.seq, call.source, machine_id};
  token.oneway = call.oneway;
  const std::uint64_t key = call_key(call.source, call.seq);
  // The cancellation flag is only live while the call is here: once the
  // reply (or reject) is decided, a late cancel has lost the race.
  auto drop_cancel_token = [&] {
    if (!call.cancel) return;
    std::scoped_lock lock(ctx.cancel_mu);
    ctx.cancel_tokens.erase(key);
  };
  // Put the decoded arguments back where they belong without running the
  // handler: reinsert into the reuse slot (§3.3) or free the graphs.
  auto release_args = [&] {
    if (call.reuse) {
      std::scoped_lock lock(call.slot->mu);
      call.slot->cached = call.args;
    } else {
      serial::SerialStats freep;
      free_arg_graphs(m.heap(), call.args, freep);
      charge(machine_id, freep);
      ctx.stats.add_pass(freep);
      add_site_pass(call.callsite_id, freep);
    }
  };

  // Reuse-slot boundary poll #1: a call cancelled (or expired) while it
  // sat in the executor queue is refused without running the handler.
  if (call.cancel && call.cancel->requested()) {
    ctx.stats.count_cancel_honored();
    trace_instant(trace::EventKind::CancelHonored, machine_id,
                  call.callsite_id, call.seq);
    reject_remote_call(ctx, token, wire::RejectCode::Cancelled,
                       "cancelled before execution at " +
                           site_desc(call.callsite_id));
    release_args();
    drop_cancel_token();
    return;
  }
  if (call.deadline_ns != 0 &&
      m.clock().now().as_nanos() >= call.deadline_ns) {
    ctx.stats.count_deadline_reject();
    trace_instant(trace::EventKind::DeadlineReject, machine_id,
                  call.callsite_id, call.seq);
    reject_remote_call(ctx, token, wire::RejectCode::DeadlineExceeded,
                       "deadline expired before execution at " +
                           site_desc(call.callsite_id));
    release_args();
    drop_cancel_token();
    return;
  }

  om::ObjRef self = nullptr;
  bool bad_export = false;
  {
    std::scoped_lock lock(ctx.exports_mu);
    // Externally-derived index: a bad export id becomes a remote
    // exception at the caller, not a callee abort.
    if (call.target_export < ctx.exports.size()) {
      self = ctx.exports[call.target_export];
    } else {
      bad_export = true;
    }
  }
  CallContext cc(*this, m, self, token, call.deadline_ns,
                 call.cancel.get());
  trace::Recorder* const rec = recorder();
  const std::int64_t handler_start_ns =
      rec != nullptr ? m.clock().now().as_nanos() : 0;
  HandlerResult res;
  // A nested invoke that failed fast on deadline or admission propagates
  // its *typed* verdict to this call's caller (as a Reject, which the
  // caller maps back), so a deep chain fails with the true reason.
  bool propagate_reject = false;
  wire::RejectCode propagate_code = wire::RejectCode::DeadlineExceeded;
  if (bad_export) {
    res = HandlerResult::exception("unknown export id " +
                                   std::to_string(call.target_export));
  } else {
    try {
      // Nested invokes inherit the remaining budget via the ambient
      // deadline (minus ExecutorConfig::deadline_slack_ns per hop).
      AmbientDeadlineScope scope(call.deadline_ns);
      res = methods_[site.method_id].second(cc, call.scalars, call.args);
    } catch (const DeadlineExceeded& e) {
      propagate_reject = true;
      propagate_code = wire::RejectCode::DeadlineExceeded;
      res = HandlerResult::exception(e.what());
    } catch (const Overload& e) {
      propagate_reject = true;
      propagate_code = wire::RejectCode::Overload;
      res = HandlerResult::exception(e.what());
    } catch (const Error& e) {
      res = HandlerResult::exception(e.what());
    }
  }
  trace_span(trace::EventKind::HandlerRun, machine_id, call.callsite_id,
             call.seq, handler_start_ns);

  // Reply first: the return value may alias the argument graphs, so the
  // arguments stay live until the reply is serialized (as a GC would
  // ensure).  Handlers whose *deferred* reply uses argument data must set
  // args_consumed and manage the graphs themselves.
  //
  // Reuse-slot boundary poll #2: a cancel that arrived while the handler
  // ran abandons the computed reply — the caller is gone; the tombstone
  // answers any duplicate with Cancelled instead of re-execution.
  if (!res.deferred) {
    if (call.cancel && call.cancel->requested()) {
      ctx.stats.count_cancel_honored();
      trace_instant(trace::EventKind::CancelHonored, machine_id,
                    call.callsite_id, call.seq);
      if (res.give_ownership && res.value != nullptr) {
        serial::SerialStats pass;
        const om::GraphExtent ext = om::graph_extent(res.value);
        m.heap().free_graph(res.value);
        pass.objects_freed += ext.objects;
        charge(machine_id, pass);
        ctx.stats.add_pass(pass);
        add_site_pass(call.callsite_id, pass);
      }
      reject_remote_call(ctx, token, wire::RejectCode::Cancelled,
                         "reply abandoned after cancellation at " +
                             site_desc(call.callsite_id));
    } else if (propagate_reject) {
      reject_remote_call(ctx, token, propagate_code, res.error);
    } else if (res.is_exception) {
      send_exception(token, res.error);
    } else {
      send_reply(token, res.value, res.give_ownership);
    }
  }
  if (call.reuse) {
    RMIOPT_CHECK(!res.args_consumed,
                 "reuse_args call site must not consume its arguments");
    std::scoped_lock lock(call.slot->mu);
    call.slot->cached = call.args;  // retain for the next invocation (§3.3)
  } else if (!res.args_consumed) {
    serial::SerialStats freep;
    free_arg_graphs(m.heap(), call.args, freep);
    charge(machine_id, freep);
    ctx.stats.add_pass(freep);
    add_site_pass(call.callsite_id, freep);
  }
  drop_cancel_token();
}

void RmiSystem::add_site_pass(std::uint32_t callsite_id,
                              const serial::SerialStats& pass,
                              int local_rpcs, int remote_rpcs) {
  std::scoped_lock lock(site_stats_mu_);
  RmiStatsSnapshot& s = site_stats_[callsite_id];
  s.serial += pass;
  s.local_rpcs += static_cast<std::uint64_t>(local_rpcs);
  s.remote_rpcs += static_cast<std::uint64_t>(remote_rpcs);
}

RmiStatsSnapshot RmiSystem::callsite_stats(std::uint32_t callsite_id) const {
  std::scoped_lock lock(site_stats_mu_);
  auto it = site_stats_.find(callsite_id);
  return it == site_stats_.end() ? RmiStatsSnapshot{} : it->second;
}

std::string RmiSystem::report() const {
  std::string out =
      "call site                                 level                 "
      "local      remote     reused     new(KB)    cycle lookups\n";
  for (std::size_t id = 0; id < callsites_.size(); ++id) {
    const RmiStatsSnapshot s =
        callsite_stats(static_cast<std::uint32_t>(id));
    char line[256];
    std::snprintf(line, sizeof line,
                  "%-40s  %-20s  %-9llu  %-9llu  %-9llu  %-9.1f  %llu\n",
                  callsites_[id].plan->name.c_str(),
                  std::string(codegen::to_string(callsites_[id].level))
                      .c_str(),
                  static_cast<unsigned long long>(s.local_rpcs),
                  static_cast<unsigned long long>(s.remote_rpcs),
                  static_cast<unsigned long long>(s.serial.objects_reused),
                  static_cast<double>(s.serial.bytes_allocated) / 1024.0,
                  static_cast<unsigned long long>(s.serial.cycle_lookups));
    out += line;
  }
  return out;
}

CallSiteProfile RmiSystem::export_profile() const {
  CallSiteProfile profile;
  for (std::size_t id = 0; id < callsites_.size(); ++id) {
    const std::uint32_t tag = callsites_[id].tag;
    if (tag == 0) continue;  // hand-built site: no compile-time identity
    const RmiStatsSnapshot s = callsite_stats(static_cast<std::uint32_t>(id));
    CallSiteProfileRow& row = profile.by_tag[tag];
    row.tag = tag;
    row.invocations += s.local_rpcs + s.remote_rpcs;
    row.remote_rpcs += s.remote_rpcs;
    row.reused_objects += s.serial.objects_reused;
    row.cycle_lookups += s.serial.cycle_lookups;
    row.bytes_allocated += s.serial.bytes_allocated;
  }
  return profile;
}

RmiStatsSnapshot RmiSystem::stats(std::uint16_t machine) const {
  return contexts_.at(machine)->stats.snapshot();
}

RmiStatsSnapshot RmiSystem::total_stats() const {
  RmiStatsSnapshot total;
  for (const auto& ctx : contexts_) total += ctx->stats.snapshot();
  return total;
}

}  // namespace rmiopt::rmi
