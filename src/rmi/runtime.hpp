// The RMI runtime: marshaler/unmarshaler dispatch, call execution,
// argument/return-value reuse caches, and per-machine statistics.
//
// Execution model (mirrors Manta-JavaParty, §5):
//  * every machine runs one dispatcher thread that drains its inbox —
//    "at any time only one thread can drain the network";
//  * incoming Call messages are deserialized by the dispatcher (the paper
//    holds the unmarshaler lock until the user's code starts), then the
//    user handler runs through the machine's DispatchExecutor: inline on
//    the dispatcher with the default single worker (the paper's model),
//    concurrently on a pool with ExecutorConfig::dispatch_workers >= 2;
//  * handlers may *defer* their reply (blocking semantics, e.g. a barrier)
//    and reply later via send_reply() from any thread;
//  * a same-machine ("local") RMI does not cross the network: arguments
//    and return value are deep-cloned to preserve RMI's copy semantics
//    (paper §1) and counted as local rpcs.
//
// Per optimization level, the driver installs a CompiledCallSite for every
// static call site: the marshal plan (class-mode or call-site-specific),
// the needs-cycle-table flag, and the reuse flags.  The runtime simply
// executes what the compiler produced.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "codegen/opt_level.hpp"
#include "net/cluster.hpp"
#include "rmi/admission.hpp"
#include "rmi/executor.hpp"
#include "rmi/remote_ref.hpp"
#include "rmi/stats.hpp"
#include "serial/class_plans.hpp"
#include "serial/plan.hpp"
#include "serial/reader.hpp"
#include "serial/writer.hpp"

namespace rmiopt::rmi {

// A compiled call site: everything the compiler decided about one static
// RMI call site.  `heavy` selects the introspective wire protocol (the
// pre-KaRMI baseline, used by ablation benches only).
struct CompiledCallSite {
  std::unique_ptr<serial::CallSitePlan> plan;
  std::uint32_t method_id = 0;
  bool heavy = false;
  // Call-site-generated marshalers are straight-line code; generic (class
  // mode) stubs pay per-call boxing/dispatch/skeleton indirections (§1).
  // Controls which per-call overhead the cost model charges.
  bool site_specific = false;
  // The optimization level this site was compiled at (report labelling;
  // set by driver::to_runtime_site).
  codegen::OptLevel level = codegen::OptLevel::Class;
  // The compile-time call-site tag (RemoteCall instruction), so runtime
  // statistics can be exported back to the driver keyed the way the
  // compiler keys its decisions.  0 when the site was hand-built.
  std::uint32_t tag = 0;
  // Profile-guided promotion: replies from this site are marked
  // coalescible for a *batching* session (§3.1 ACK batching).  Inert
  // under the default non-batching session config.
  bool batch_replies = false;
};

class RmiSystem;

// Thrown at the caller when the remote method raised; carries the remote
// message (Java RMI's RemoteException/cause chain collapsed to a string).
class RemoteException : public Error {
 public:
  explicit RemoteException(const std::string& what) : Error(what) {}
};

// Thrown at the caller when a remote call cannot complete: the link's ARQ
// exhausted its retransmit budget (the callee is crashed or unreachable),
// or the reply never arrived within the real-time backstop.  The call may
// or may not have executed on the callee — at-most-once, not exactly-once
// — so callers that retry must route around the failed machine (see the
// webserver's failover) rather than blindly re-invoke.
class RmiTimeout : public Error {
 public:
  explicit RmiTimeout(const std::string& what) : Error(what) {}
};

// The failure detector confirmed the callee (or the caller's own machine)
// dead, so the call failed in detection time instead of exhausting the
// retransmit budget.  A subclass of RmiTimeout: existing failover code
// that catches the base type keeps working, while callers that care can
// route on the typed form and the machine id.  Same at-most-once caveat
// as the base class — the call may have executed before the death.
class MachineDown : public RmiTimeout {
 public:
  MachineDown(std::uint16_t machine, const std::string& what)
      : RmiTimeout(what), machine_(machine) {}
  std::uint16_t machine() const { return machine_; }

 private:
  std::uint16_t machine_;
};

// The call's virtual-time deadline passed before the callee could start
// (or finish) it: the handler did NOT run at this hop — the callee
// refuses expired work instead of computing replies nobody will read.
// Subclass of RmiTimeout so existing failover code keeps working.
class DeadlineExceeded : public RmiTimeout {
 public:
  explicit DeadlineExceeded(const std::string& what) : RmiTimeout(what) {}
};

// Admission control shed the call: the callee's modelled inbox is at its
// bound.  The handler did not run and nothing was sent, so the caller may
// retry with backoff — ideally after its virtual clock has advanced past
// the backlog (see docs/FAULTS.md, "Overload & deadlines").
class Overload : public Error {
 public:
  explicit Overload(const std::string& what) : Error(what) {}
};

// The call was cancelled — by RmiFuture::cancel() or the caller's
// real-time backstop — and the callee abandoned it before the reply.
// At-most-once still holds: the handler ran zero or one times, never two.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

// A handler running inline on its machine's only dispatcher thread
// (ExecutorConfig::dispatch_workers == 1, the paper's model) blocked on a
// nested synchronous remote invoke.  The reply can only be dispatched by
// the very thread that is blocked waiting for it, so without this check
// the call would hang until the 30 s real-time backstop.  Recoverable:
// the nested call is failed *before* the wait, the handler can catch it
// (or surface it to its own caller as a RemoteException), and the system
// keeps running.  The sizing rule: nested synchronous RMI requires
// dispatch_workers >= 2 on the calling machine — or use invoke_oneway /
// invoke_async with the future consumed off the dispatcher thread.
class NestedInvokeDeadlock : public Error {
 public:
  explicit NestedInvokeDeadlock(const std::string& what) : Error(what) {}
};

// Per-invocation options for invoke / invoke_async / invoke_oneway.
struct CallOptions {
  // Explicit virtual-time budget for this call, in nanoseconds; the call
  // carries `caller_now + budget_ns` as an absolute deadline in its wire
  // header.  0 = fall back to ExecutorConfig::default_deadline_ns (and to
  // the ambient parent deadline when invoked from inside a handler —
  // nested calls always inherit `parent_deadline - deadline_slack_ns`,
  // whichever bound is tighter).
  std::int64_t budget_ns = 0;
};

// Cooperative cancellation flag for one in-flight call.  The dispatcher
// sets it when a CancelRequest arrives; executor workers poll it at the
// reuse-slot boundaries (before the handler starts, and again before the
// reply is sent) and abandon the call with a typed Cancelled reject.
class CancelToken {
 public:
  void request() { cancelled_.store(true, std::memory_order_relaxed); }
  bool requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

struct AsyncCallState;

// A handle to one in-flight invocation started by RmiSystem::invoke_async.
// Move-only.  get() blocks for the reply, deserializes it on the caller's
// clock and returns the value (or throws the call's typed failure);
// cancel() sends a best-effort CancelRequest — the callee abandons the
// call at its next poll boundary and the reply comes back as Cancelled,
// unless a real reply already won the race.  Dropping an un-consumed
// future abandons the call: a late reply is counted as a stray, never an
// error.  The future must not outlive its RmiSystem.
class RmiFuture {
 public:
  RmiFuture() noexcept;
  ~RmiFuture();
  RmiFuture(RmiFuture&&) noexcept;
  RmiFuture& operator=(RmiFuture&&) noexcept;
  RmiFuture(const RmiFuture&) = delete;
  RmiFuture& operator=(const RmiFuture&) = delete;

  bool valid() const;
  // Blocks until the reply arrives, then deserializes and returns it.
  // Consumes the future.  Throws the typed failure: RemoteException,
  // RmiTimeout / MachineDown / DeadlineExceeded, Overload, Cancelled.
  om::ObjRef get();
  // True once the reply is ready (get() will not block).  Real-time wait;
  // purely observational — no virtual time is charged.
  bool wait_for(std::int64_t real_ms);
  // Best-effort cancellation: sends one CancelRequest to the callee.
  // Idempotent; never blocks; get() remains callable and reports how the
  // race resolved (Cancelled, or the real reply).
  void cancel();

 private:
  friend class RmiSystem;
  explicit RmiFuture(std::shared_ptr<AsyncCallState> state) noexcept;

  std::shared_ptr<AsyncCallState> state_;
};

struct HandlerResult {
  om::ObjRef value = nullptr;
  // Callee frees the value graph after the reply is serialized (for return
  // values allocated per call; leave false for values owned by app state).
  bool give_ownership = false;
  // Handler took ownership of the argument graphs (they escaped, e.g. into
  // a queue); the runtime must not free them.
  bool args_consumed = false;
  // Reply will be produced later via RmiSystem::send_reply(token, ...).
  bool deferred = false;
  // Remote exception: `error` is marshaled back and invoke() throws a
  // RemoteException at the caller.  Handlers may also simply throw
  // rmiopt::Error — the dispatcher converts it to this form.
  bool is_exception = false;
  std::string error;

  static HandlerResult exception(std::string message) {
    HandlerResult r;
    r.is_exception = true;
    r.error = std::move(message);
    return r;
  }
};

class CallContext {
 public:
  CallContext(RmiSystem& sys, net::Machine& machine, om::ObjRef self,
              ReplyToken token, std::int64_t deadline_ns = 0,
              const CancelToken* cancel = nullptr)
      : sys_(sys),
        machine_(machine),
        self_(self),
        token_(token),
        deadline_ns_(deadline_ns),
        cancel_(cancel) {}

  RmiSystem& system() { return sys_; }
  net::Machine& machine() { return machine_; }
  om::Heap& heap() { return machine_.heap(); }
  om::ObjRef self() const { return self_; }
  ReplyToken reply_token() const { return token_; }
  // The absolute virtual-time deadline this call carries (0 = none) and
  // its cancellation flag, so long-running handlers can bail out
  // cooperatively instead of computing replies nobody will read.
  std::int64_t deadline_ns() const { return deadline_ns_; }
  bool cancelled() const { return cancel_ != nullptr && cancel_->requested(); }

 private:
  RmiSystem& sys_;
  net::Machine& machine_;
  om::ObjRef self_;
  ReplyToken token_;
  std::int64_t deadline_ns_ = 0;
  const CancelToken* cancel_ = nullptr;
};

// A remote method implementation.  `scalars` carries primitive parameters
// (they need no marshal plan); `args` carries the object parameters.
using Handler = std::function<HandlerResult(
    CallContext&, std::span<const std::int64_t> scalars,
    std::span<const om::ObjRef> args)>;

class RmiSystem {
 public:
  RmiSystem(net::Cluster& cluster, const om::TypeRegistry& types,
            const ExecutorConfig& executor = {});
  ~RmiSystem();
  RmiSystem(const RmiSystem&) = delete;
  RmiSystem& operator=(const RmiSystem&) = delete;

  // ---- setup (before start) ----------------------------------------------
  std::uint32_t define_method(std::string name, Handler handler);
  std::uint32_t add_callsite(CompiledCallSite site);
  RemoteRef export_object(std::uint16_t machine, om::ObjRef obj);

  void start();  // spawns one dispatcher thread per machine
  void stop();   // drains and joins the dispatchers

  // ---- invocation ----------------------------------------------------------
  // Synchronous RMI from `caller` to `target` — a thin wrapper over
  // invoke_async(...).get(), so there is exactly one code path.  Returns
  // the deserialized return value: caller-owned, EXCEPT at reuse_ret call
  // sites where the runtime retains ownership and recycles the graph on
  // the next call.
  om::ObjRef invoke(std::uint16_t caller, RemoteRef target,
                    std::uint32_t callsite_id,
                    std::span<const om::ObjRef> args,
                    std::span<const std::int64_t> scalars = {},
                    const CallOptions& opts = {});

  // Asynchronous RMI: serializes, charges and sends on the caller's clock
  // *now*, returns a future for the reply — so one app thread can
  // pipeline many calls.  Pre-send failures (expired deadline, admission
  // shed, unreachable callee) throw eagerly from this call; in-flight
  // failures surface from RmiFuture::get().  A same-machine target runs
  // the handler inline (the local path is synchronous by construction)
  // and the returned future is already ready.
  RmiFuture invoke_async(std::uint16_t caller, RemoteRef target,
                         std::uint32_t callsite_id,
                         std::span<const om::ObjRef> args,
                         std::span<const std::int64_t> scalars = {},
                         const CallOptions& opts = {});

  // Fire-and-forget RMI for ACK-elided sites: the callee runs the handler
  // but sends no reply of any kind (not even an Ack), and the caller
  // keeps no pending state.  Return values and handler exceptions are
  // discarded; at-most-once duplicate suppression still applies.  Send
  // failures (dead callee, expired deadline, shed) still throw eagerly —
  // they are synchronous, deterministic verdicts, not reply timeouts.
  void invoke_oneway(std::uint16_t caller, RemoteRef target,
                     std::uint32_t callsite_id,
                     std::span<const om::ObjRef> args,
                     std::span<const std::int64_t> scalars = {},
                     const CallOptions& opts = {});

  // Completes a deferred call.  Thread-safe; callable from any thread.
  void send_reply(const ReplyToken& token, om::ObjRef value,
                  bool give_ownership = false);
  // Completes a deferred call exceptionally.
  void send_exception(const ReplyToken& token, std::string message);

  // ---- introspection ---------------------------------------------------------
  RmiStatsSnapshot stats(std::uint16_t machine) const;
  RmiStatsSnapshot total_stats() const;
  // Per-call-site counters (the paper gathered its Tables 4/6/8 "on a
  // separate run of the program with an instrumented runtime system").
  RmiStatsSnapshot callsite_stats(std::uint32_t callsite_id) const;
  // Number of registered call sites (ids are 0..count-1).
  std::size_t callsite_count() const { return callsites_.size(); }
  // A formatted per-call-site report: one row per site with rpc counts,
  // reuse, allocation volume and cycle lookups.
  std::string report() const;
  // The per-call-site profile keyed by compile-time tag — the feedback
  // input of driver::respecialize.  Runtime sites sharing one tag (rare)
  // are summed; hand-built sites with tag 0 are skipped.
  CallSiteProfile export_profile() const;
  net::Cluster& cluster() { return cluster_; }
  const serial::ClassPlanRegistry& class_plans() const { return class_plans_; }
  const CompiledCallSite& callsite(std::uint32_t id) const;

 private:
  friend class RmiFuture;
  friend struct AsyncCallState;

  struct PendingReply {
    bool is_local = false;
    om::ObjRef local_value = nullptr;
    bool is_exception = false;
    std::string error;
    // The callee was declared dead while the call was in flight
    // (fail_pending_to): await_pending converts this to MachineDown.
    bool machine_down = false;
    wire::Message msg;
  };

  // One in-flight synchronous call, keyed by seq in MachineContext::
  // pending.  `dest` lets fail_pending_to find every call addressed to a
  // machine the detector just declared dead.
  struct PendingSlot {
    std::promise<PendingReply> promise;
    std::uint16_t dest = 0;
  };

  struct ReuseSlot {
    std::mutex mu;
    // One cached graph per object argument (or one entry for the return
    // value).  nullptr while in use by another thread — the Figure 13
    // "temp_arr = null" guard.  Under concurrent executions of the same
    // call site the late finisher's graph wins the slot; the loser's graph
    // stays live with its caller (bounded by the thread count), exactly
    // like the paper's per-site static under its unmarshaler lock.
    std::vector<om::ObjRef> cached;
  };

  // Callee-side at-most-once record of one remote call: in progress until
  // the reply is cached, then replayable verbatim for late duplicates.
  // A cancelled or rejected call caches its Reject message here — the
  // tombstone: a duplicate replays the typed refusal, never re-executes.
  struct ReplyCacheEntry {
    bool replied = false;
    wire::Message reply;
  };

  struct MachineContext {
    RmiStats stats;
    std::vector<om::ObjRef> exports;
    std::mutex exports_mu;
    std::mutex pending_mu;
    std::unordered_map<std::uint32_t, PendingSlot> pending;
    // At-most-once state, keyed on call_key(caller, seq): every remote
    // call this machine has accepted.  Bounded FIFO eviction — the window
    // must outlive any plausible duplicate, not the whole run.
    std::mutex amo_mu;
    std::unordered_map<std::uint64_t, ReplyCacheEntry> reply_cache;
    std::deque<std::uint64_t> reply_cache_order;
    // callsite id -> reuse state (callee side for args, caller side for ret)
    std::unordered_map<std::uint32_t, std::unique_ptr<ReuseSlot>> arg_cache;
    std::unordered_map<std::uint32_t, std::unique_ptr<ReuseSlot>> ret_cache;
    std::mutex cache_mu;
    // Deterministic virtual-time admission model for calls *into* this
    // machine, evaluated on the sender's thread (rmi/admission.hpp).
    // Inert (enabled() == false) under the default unbounded config.
    std::unique_ptr<AdmissionController> admission;
    // Cancellation flags for calls currently decoding/executing here,
    // keyed on call_key(caller, seq).  Registered by the dispatcher on
    // Fresh admission, erased when execute_call finishes; the per-link
    // FIFO guarantees a CancelRequest is processed after its Call.
    std::mutex cancel_mu;
    std::unordered_map<std::uint64_t, std::shared_ptr<CancelToken>>
        cancel_tokens;
    std::thread dispatcher;
    std::unique_ptr<DispatchExecutor> executor;
  };

  // An incoming call after the dispatcher deserialized it: everything the
  // executor needs to run the handler on any thread.
  struct DecodedCall {
    std::uint32_t callsite_id = 0;
    std::uint32_t seq = 0;
    std::uint16_t source = 0;
    std::uint32_t target_export = 0;
    std::vector<std::int64_t> scalars;
    std::vector<om::ObjRef> args;
    bool reuse = false;        // reinsert args into the reuse slot after
    ReuseSlot* slot = nullptr;
    std::int64_t deadline_ns = 0;  // absolute deadline from the header
    bool oneway = false;           // fire-and-forget: never reply
    std::shared_ptr<CancelToken> cancel;  // polled at reuse-slot boundaries
  };

  void dispatch_loop(std::uint16_t machine_id);
  // Dispatcher side: deserialize the call while "holding the network"
  // (the unmarshaler-lock discipline of §4).
  DecodedCall decode_call(std::uint16_t machine_id, net::Envelope env);
  // Executor side: run the handler, reply, and release/retain arguments.
  void execute_call(std::uint16_t machine_id, DecodedCall call);
  om::ObjRef invoke_local(std::uint16_t caller, RemoteRef target,
                          const CompiledCallSite& site,
                          std::span<const om::ObjRef> args,
                          std::span<const std::int64_t> scalars,
                          std::uint32_t seq, std::int64_t deadline_ns);
  // The blocking half of a remote call (RmiFuture::get): await the reply
  // and deserialize it on the caller's clock.
  om::ObjRef finish_remote(AsyncCallState& st);
  // Best-effort CancelRequest for an in-flight remote call.  Never
  // throws: an undeliverable cancel just means the callee computes a
  // reply the caller will drop as a stray.
  void send_cancel_raw(std::uint16_t caller, std::uint16_t dest,
                       std::uint32_t callsite_id, std::uint32_t seq);
  // Callee side: refuse (or abandon) a remote call with a typed Reject.
  // Caches the reject as the call's at-most-once tombstone, then sends it
  // as the reply — except for oneway calls, where nobody is waiting.
  void reject_remote_call(MachineContext& ctx, const ReplyToken& token,
                          wire::RejectCode code, const std::string& reason);
  // The absolute deadline a call starting at `now_ns` carries: explicit
  // budget or configured default, tightened by the ambient parent
  // deadline minus slack when invoked from inside a handler.  0 = none.
  std::int64_t compute_deadline(std::int64_t now_ns,
                                const CallOptions& opts) const;
  // "site N (name, level)" — failure messages carry the call-site id and
  // opt level so chaos failures are attributable without a trace.
  std::string site_desc(std::uint32_t callsite_id) const;
  ReuseSlot& reuse_slot(MachineContext& ctx, bool ret_side,
                        std::uint32_t callsite_id, std::size_t arity);
  void charge(std::uint16_t machine_id, const serial::SerialStats& pass);
  // Per-call marshaler/skeleton machinery: generic stubs additionally box
  // every argument/scalar/return value (§1's "method table lookups and
  // skeleton indirections").
  void charge_stub(std::uint16_t machine_id, const CompiledCallSite& site,
                   std::size_t nargs, std::size_t nscalars);
  void free_arg_graphs(om::Heap& heap, std::span<const om::ObjRef> args,
                       serial::SerialStats& pass);
  std::promise<PendingReply>& register_pending(MachineContext& ctx,
                                               std::uint32_t seq,
                                               std::uint16_t dest);
  void fulfill_pending(MachineContext& ctx, std::uint32_t seq,
                       PendingReply reply);
  // Dispatcher-facing variant: a reply whose call is not pending (a stray
  // from the network) is reported as false, never fatal.  Fulfillment
  // erases the entry, so a second reply for the same seq — e.g. a late
  // real reply after fail_pending_to already failed the call — is a
  // counted stray, never a write to a consumed promise.
  bool try_fulfill_pending(MachineContext& ctx, std::uint32_t seq,
                           PendingReply reply);
  // Fails every pending call addressed to `machine` with machine_down —
  // the failure detector's death callback, releasing callers already
  // blocked before the death was confirmed.
  void fail_pending_to(std::uint16_t machine);
  // Blocks until the reply arrives.  With a failure detector attached the
  // real-time wait is sliced so a blocked caller periodically polls the
  // detector at the cluster makespan and fails over with MachineDown as
  // soon as `dest` is confirmed dead (its burning ARQ advances virtual
  // time even when the caller's own thread is parked).  A Reject reply is
  // mapped here to its typed exception (DeadlineExceeded / Overload /
  // Cancelled); a real-time backstop expiry sends a best-effort cancel
  // before throwing so the callee can stop computing an unread reply.
  PendingReply await_pending(MachineContext& ctx, std::uint16_t caller,
                             std::uint32_t callsite_id, std::uint32_t seq,
                             std::future<PendingReply> fut,
                             std::uint16_t dest);

  // ---- at-most-once ---------------------------------------------------------
  static constexpr std::uint64_t call_key(std::uint16_t caller,
                                          std::uint32_t seq) {
    return (static_cast<std::uint64_t>(caller) << 32) | seq;
  }
  enum class CallAdmission { Fresh, InProgress, Replied };
  // Classifies an incoming Call against the reply cache; Fresh admits it
  // (and records it in progress), Replied fills `*replay` with the cached
  // reply message.  `machine_id` is the callee (for stats/trace of forced
  // pins).  Eviction only releases completed entries — an in-flight
  // call's entry is pinned until its reply is cached, so a delayed
  // duplicate can never be re-admitted as Fresh while the handler runs.
  CallAdmission admit_call(std::uint16_t machine_id, MachineContext& ctx,
                           std::uint64_t key, wire::Message* replay);
  // Records the outgoing reply so a duplicate of its call can be answered
  // by replay instead of re-execution.
  void cache_reply(MachineContext& ctx, std::uint64_t key,
                   const wire::Message& reply);

  void add_site_pass(std::uint32_t callsite_id, const serial::SerialStats& pass,
                     int local_rpcs = 0, int remote_rpcs = 0);

  // ---- tracing --------------------------------------------------------------
  // The recorder attached to the cluster (nullptr when tracing is off —
  // the default; every emission site checks before building an Event).
  trace::Recorder* recorder() const { return cluster_.recorder(); }
  // Builds the pass-trace context for a SerialWriter/SerialReader: null
  // recorder yields an inert context (no clock read, nothing recorded).
  trace::PassTrace pass_trace(trace::EventKind kind, std::uint16_t machine_id,
                              std::uint32_t callsite_id,
                              std::uint32_t seq) const;
  // Instant event on `machine_id`'s machine track at its current clock.
  void trace_instant(trace::EventKind kind, std::uint16_t machine_id,
                     std::uint32_t callsite_id, std::uint32_t seq) const;
  // Span on `machine_id`'s machine track from virtual `start_ns` to now.
  void trace_span(trace::EventKind kind, std::uint16_t machine_id,
                  std::uint32_t callsite_id, std::uint32_t seq,
                  std::int64_t start_ns, std::uint64_t bytes = 0) const;

  net::Cluster& cluster_;
  const ExecutorConfig exec_cfg_;
  serial::ClassPlanRegistry class_plans_;
  mutable std::mutex site_stats_mu_;
  std::unordered_map<std::uint32_t, RmiStatsSnapshot> site_stats_;
  std::vector<std::unique_ptr<MachineContext>> contexts_;
  std::vector<std::pair<std::string, Handler>> methods_;
  std::vector<CompiledCallSite> callsites_;
  std::atomic<std::uint32_t> next_seq_{1};
  bool started_ = false;
};

}  // namespace rmiopt::rmi
