// Remote object references and reply tokens.
#pragma once

#include <cstdint>

namespace rmiopt::rmi {

// A reference to an object exported on some machine.  This is what a
// JavaParty `remote` object reference lowers to: the paper's runtime hides
// placement behind it.
struct RemoteRef {
  std::uint16_t machine = 0;
  std::uint32_t export_id = 0;
};

// Identifies one in-flight invocation so a handler can defer its reply
// (used by blocking remote methods such as a barrier: the handler returns
// without replying and replies later via RmiSystem::send_reply).
struct ReplyToken {
  std::uint32_t callsite_id = 0;
  std::uint32_t seq = 0;
  std::uint16_t caller_machine = 0;
  std::uint16_t callee_machine = 0;
  // Fire-and-forget call: the caller keeps no pending slot, so send_reply /
  // send_exception must not put a reply on the wire (the at-most-once cache
  // still records completion so duplicates are suppressed).
  bool oneway = false;
};

}  // namespace rmiopt::rmi
