// Deterministic admission control for one callee machine.
//
// The controller models the callee's dispatch inbox as a queue on the
// *virtual-time* axis: every admitted call occupies the callee for a
// configured service estimate, and backlog drains as virtual time passes.
// Admission decisions are therefore pure functions of (the sender's
// virtual clock at the send, the sequence of prior admissions) — real
// thread scheduling never enters, so Sim and Loopback runs agree
// seed-for-seed and an overloaded run is reproducible byte-for-byte.
//
// Two-level policy (ExecutorConfig knobs):
//  * depth < high-water          — admit untouched;
//  * high-water <= depth < bound — admit, but charge the sender a
//    flow-control *credit stall* in virtual time, one credit_stall_ns per
//    unit of backlog above the mark (session-level backpressure: the
//    sender's own send is delayed, so a cooperative caller slows to the
//    callee's capacity before anything is lost);
//  * depth >= bound              — shed: the newest, not-yet-admitted
//    call is refused with a typed rmi::Overload the caller can retry
//    with backoff.  Shed calls never enter the backlog, so the model
//    cannot collapse under a misbehaving sender.
//
// With inbox_bound == 0 (the default) the controller is inert: admit()
// is never called and no state exists, keeping the default invoke path
// byte-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <mutex>

namespace rmiopt::rmi {

class AdmissionController {
 public:
  struct Decision {
    bool admitted = true;
    // Virtual nanoseconds of backpressure the sender must charge to its
    // own clock before the send (0 when below the high-water mark).
    std::int64_t stall_ns = 0;
  };

  AdmissionController(std::size_t bound, std::size_t highwater,
                      std::int64_t credit_stall_ns,
                      std::int64_t service_ns)
      : bound_(bound),
        highwater_(highwater != 0 ? highwater
                                  : std::max<std::size_t>(bound / 2, 1)),
        credit_stall_ns_(credit_stall_ns),
        service_ns_(service_ns) {}

  bool enabled() const { return bound_ != 0; }

  // One call offered at the sender's virtual time `now_ns`.  Returns the
  // decision; the caller charges `stall_ns` to its clock (the delayed
  // send) and, on admitted == false, raises Overload without sending.
  Decision admit(std::int64_t now_ns) {
    std::scoped_lock lock(mu_);
    drain(now_ns);
    Decision d;
    if (backlog_.size() >= bound_) {
      d.admitted = false;
      return d;
    }
    if (backlog_.size() >= highwater_) {
      d.stall_ns = credit_stall_ns_ *
                   static_cast<std::int64_t>(backlog_.size() - highwater_ + 1);
      // The stall advanced the sender's clock; backlog keeps draining
      // underneath it before the call is finally enqueued.
      now_ns += d.stall_ns;
      drain(now_ns);
    }
    const std::int64_t start =
        backlog_.empty() ? now_ns : std::max(now_ns, backlog_.back());
    backlog_.push_back(start + service_ns_);
    return d;
  }

  // Modelled backlog depth at `now_ns` (introspection/tests).
  std::size_t depth(std::int64_t now_ns) {
    std::scoped_lock lock(mu_);
    drain(now_ns);
    return backlog_.size();
  }

 private:
  // Completed-by-now entries leave the model.  Entries are completion
  // times in nondecreasing order, so the drain is a front pop.
  void drain(std::int64_t now_ns) {
    while (!backlog_.empty() && backlog_.front() <= now_ns) {
      backlog_.pop_front();
    }
  }

  const std::size_t bound_;
  const std::size_t highwater_;
  const std::int64_t credit_stall_ns_;
  const std::int64_t service_ns_;
  std::mutex mu_;
  std::deque<std::int64_t> backlog_;  // virtual completion times, ascending
};

}  // namespace rmiopt::rmi
