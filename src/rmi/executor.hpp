// The dispatch executor: who runs an incoming call's handler.
//
// The paper's runtime (Manta-JavaParty, §5) hardwires "one dispatcher
// thread drains the network and runs the handler inline".  That policy is
// now explicit and configurable: each machine's dispatcher still drains
// its inbox and deserializes arguments (the unmarshaler-lock discipline
// of §4), but *handler execution* goes through a DispatchExecutor.
//
//  * workers == 1 (default): the task runs inline on the dispatcher
//    thread — byte-for-byte the paper's semantics, no pool threads exist.
//  * workers >= 2: tasks queue to a pool and handlers execute
//    concurrently.  Correctness under concurrency rests on the per-call-
//    site reuse-cache locking of §3.3 (ReuseSlot's mutex + the Figure 13
//    null-guard) and on the thread-safe reply path; CPU time still
//    serializes on the machine's single virtual clock, so N workers model
//    latency hiding, not extra CPUs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmiopt::rmi {

struct ExecutorConfig {
  // Handler-execution workers per machine.  1 preserves the paper's
  // single-dispatcher semantics (and every benchmark result); N >= 2
  // enables concurrent handler execution.
  std::size_t dispatch_workers = 1;

  // Real-time backstop on a blocked synchronous call, in milliseconds
  // (0 = wait forever).  Link failures surface *synchronously* through
  // the virtual-time ARQ (the send itself throws, converted to a typed
  // RmiTimeout), so on the deterministic paths this timer never fires;
  // it only converts a genuinely lost reply — e.g. a callee that crashed
  // after accepting the call — from a hang into an RmiTimeout.
  std::int64_t call_timeout_ms = 30'000;

  // At-most-once reply-cache entries kept per callee machine.  The FIFO
  // eviction only releases *completed* entries; in-flight calls are
  // pinned (and counted) until they reply, so the cache may transiently
  // exceed this bound by the number of concurrent in-flight calls.
  std::size_t reply_cache_capacity = 4096;
};

class DispatchExecutor {
 public:
  explicit DispatchExecutor(std::size_t workers = 1);
  ~DispatchExecutor();
  DispatchExecutor(const DispatchExecutor&) = delete;
  DispatchExecutor& operator=(const DispatchExecutor&) = delete;

  std::size_t workers() const { return workers_; }

  // Runs `task` inline when single-threaded, else enqueues it to the
  // pool.  Tasks submitted by one thread start in submission order.
  void execute(std::function<void()> task);

  // Waits for every queued and in-flight task, then joins the pool.
  // Idempotent; called by RmiSystem::stop after the dispatchers exit.
  void drain_and_stop();

 private:
  void worker_loop();

  const std::size_t workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // queue non-empty or stopping
  std::condition_variable idle_cv_;  // queue empty and nothing running
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> pool_;
};

}  // namespace rmiopt::rmi
