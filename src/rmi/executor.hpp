// The dispatch executor: who runs an incoming call's handler.
//
// The paper's runtime (Manta-JavaParty, §5) hardwires "one dispatcher
// thread drains the network and runs the handler inline".  That policy is
// now explicit and configurable: each machine's dispatcher still drains
// its inbox and deserializes arguments (the unmarshaler-lock discipline
// of §4), but *handler execution* goes through a DispatchExecutor.
//
//  * workers == 1 (default): the task runs inline on the dispatcher
//    thread — byte-for-byte the paper's semantics, no pool threads exist.
//  * workers >= 2: tasks queue to a pool and handlers execute
//    concurrently.  Correctness under concurrency rests on the per-call-
//    site reuse-cache locking of §3.3 (ReuseSlot's mutex + the Figure 13
//    null-guard) and on the thread-safe reply path; CPU time still
//    serializes on the machine's single virtual clock, so N workers model
//    latency hiding, not extra CPUs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmiopt::rmi {

struct ExecutorConfig {
  // Handler-execution workers per machine.  1 preserves the paper's
  // single-dispatcher semantics (and every benchmark result); N >= 2
  // enables concurrent handler execution.
  std::size_t dispatch_workers = 1;

  // Real-time backstop on a blocked synchronous call, in milliseconds.
  // Any value <= 0 *disables* the backstop: the caller waits forever (the
  // defined semantics — 0 and negative values are equivalent, tested by
  // OverloadTest.NonPositiveCallTimeoutDisablesTheBackstop).  Link
  // failures surface *synchronously* through the virtual-time ARQ (the
  // send itself throws, converted to a typed RmiTimeout), so on the
  // deterministic paths this timer never fires; it only converts a
  // genuinely lost reply — e.g. a callee that crashed after accepting the
  // call — from a hang into an RmiTimeout.  When it fires, the caller
  // also sends a best-effort CancelRequest so the callee can stop
  // computing a reply nobody will read.
  std::int64_t call_timeout_ms = 30'000;

  // ---- deadlines (virtual-time, disabled by default) ----------------------
  // Default per-call budget in virtual nanoseconds: every invoke with no
  // explicit CallOptions budget carries `now + default_deadline_ns` as an
  // absolute deadline in its wire header.  0 (default) = calls carry no
  // deadline and the wire image is unchanged.
  std::int64_t default_deadline_ns = 0;
  // Slack subtracted when a handler's nested invoke inherits its parent
  // call's remaining budget: child deadline = parent deadline - slack, so
  // a deep chain fails fast at the first hop that cannot finish in time.
  std::int64_t deadline_slack_ns = 5'000;

  // ---- admission control (disabled by default) ----------------------------
  // Bound on the modelled per-callee inbox depth, in calls.  0 (default)
  // = unbounded: no admission state is kept and the invoke path is
  // untouched.  When set, each callee machine runs a deterministic
  // virtual-time queue model (see rmi/admission.hpp): calls that would
  // push the backlog past the bound are shed with a typed Overload; calls
  // landing between the high-water mark and the bound are admitted but
  // charge the *sender* a flow-control credit stall in virtual time
  // (backpressure), so a cooperative sender slows to the callee's
  // capacity before anything is shed.
  std::size_t inbox_bound = 0;
  // High-water mark where backpressure starts.  0 = inbox_bound / 2.
  std::size_t inbox_highwater = 0;
  // Virtual nanoseconds of send delay charged per unit of backlog above
  // the high-water mark (the flow-control credit stall).
  std::int64_t credit_stall_ns = 20'000;
  // Modelled virtual service time of one admitted call, used by the
  // admission queue model to drain backlog as virtual time passes.
  // Defaults to roughly one optimized RMI round trip (§3.3: ~40 µs).
  std::int64_t admission_service_ns = 40'000;

  // At-most-once reply-cache entries kept per callee machine.  The FIFO
  // eviction only releases *completed* entries; in-flight calls are
  // pinned (and counted) until they reply, so the cache may transiently
  // exceed this bound by the number of concurrent in-flight calls.
  std::size_t reply_cache_capacity = 4096;
};

class DispatchExecutor {
 public:
  explicit DispatchExecutor(std::size_t workers = 1);
  ~DispatchExecutor();
  DispatchExecutor(const DispatchExecutor&) = delete;
  DispatchExecutor& operator=(const DispatchExecutor&) = delete;

  std::size_t workers() const { return workers_; }

  // Runs `task` inline when single-threaded, else enqueues it to the
  // pool.  Tasks submitted by one thread start in submission order.
  void execute(std::function<void()> task);

  // Waits for every queued and in-flight task, then joins the pool.
  // Idempotent; called by RmiSystem::stop after the dispatchers exit.
  void drain_and_stop();

 private:
  void worker_loop();

  const std::size_t workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // queue non-empty or stopping
  std::condition_variable idle_cv_;  // queue empty and nothing running
  std::deque<std::function<void()>> queue_;
  std::size_t running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> pool_;
};

}  // namespace rmiopt::rmi
