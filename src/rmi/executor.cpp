#include "rmi/executor.hpp"

#include "support/error.hpp"

namespace rmiopt::rmi {

DispatchExecutor::DispatchExecutor(std::size_t workers) : workers_(workers) {
  RMIOPT_CHECK(workers_ >= 1, "executor needs at least one worker");
  if (workers_ == 1) return;  // inline mode: no pool threads
  pool_.reserve(workers_);
  for (std::size_t i = 0; i < workers_; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

DispatchExecutor::~DispatchExecutor() { drain_and_stop(); }

void DispatchExecutor::execute(std::function<void()> task) {
  if (workers_ == 1) {
    task();
    return;
  }
  {
    std::scoped_lock lock(mu_);
    RMIOPT_CHECK(!stopping_, "execute after drain_and_stop");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void DispatchExecutor::drain_and_stop() {
  if (workers_ == 1) return;
  {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
    if (stopping_) return;  // another caller already joined the pool
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) {
    if (t.joinable()) t.join();
  }
}

void DispatchExecutor::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::scoped_lock lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace rmiopt::rmi
