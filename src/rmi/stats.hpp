// Per-machine RMI statistics — the counters behind the paper's
// "runtime statistics" tables (Tables 4, 6 and 8).
#pragma once

#include <mutex>

#include "serial/stats.hpp"

namespace rmiopt::rmi {

struct RmiStatsSnapshot {
  std::uint64_t local_rpcs = 0;
  std::uint64_t remote_rpcs = 0;
  serial::SerialStats serial;

  RmiStatsSnapshot& operator+=(const RmiStatsSnapshot& o) {
    local_rpcs += o.local_rpcs;
    remote_rpcs += o.remote_rpcs;
    serial += o.serial;
    return *this;
  }

  friend bool operator==(const RmiStatsSnapshot&,
                         const RmiStatsSnapshot&) = default;

  // "new (MBytes)": allocation volume caused by deserialization (§5.2).
  double deserialization_mbytes() const {
    return static_cast<double>(serial.bytes_allocated) / (1024.0 * 1024.0);
  }
};

class RmiStats {
 public:
  void count_local_rpc() {
    std::scoped_lock lock(mu_);
    ++snap_.local_rpcs;
  }
  void count_remote_rpc() {
    std::scoped_lock lock(mu_);
    ++snap_.remote_rpcs;
  }
  void add_pass(const serial::SerialStats& pass) {
    std::scoped_lock lock(mu_);
    snap_.serial += pass;
  }

  RmiStatsSnapshot snapshot() const {
    std::scoped_lock lock(mu_);
    return snap_;
  }

 private:
  mutable std::mutex mu_;
  RmiStatsSnapshot snap_;
};

}  // namespace rmiopt::rmi
