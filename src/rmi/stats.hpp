// Per-machine RMI statistics — the counters behind the paper's
// "runtime statistics" tables (Tables 4, 6 and 8) — and the per-call-site
// profile the runtime exports back to the driver for profile-guided
// re-specialization.
#pragma once

#include <map>
#include <mutex>

#include "serial/stats.hpp"

namespace rmiopt::rmi {

// One profiled static call site, keyed by its *compile-time tag* (the
// stable id the application used to wire the site), so the driver can
// match profile rows against CompiledProgram decisions without knowing
// runtime call-site ids.
struct CallSiteProfileRow {
  std::uint32_t tag = 0;
  std::uint64_t invocations = 0;  // local + remote rpcs through the site
  std::uint64_t remote_rpcs = 0;
  std::uint64_t reused_objects = 0;  // reuse-cache hits (§3.3)
  std::uint64_t cycle_lookups = 0;   // runtime cycle-table probes (§3.2)
  std::uint64_t bytes_allocated = 0;  // deserialization allocation volume
};

// What one run taught us about every static call site — the feedback
// input of driver::respecialize.  Exported by RmiSystem::export_profile
// and carried in apps::RunResult.
struct CallSiteProfile {
  std::map<std::uint32_t, CallSiteProfileRow> by_tag;

  bool empty() const { return by_tag.empty(); }
  const CallSiteProfileRow* row(std::uint32_t tag) const {
    auto it = by_tag.find(tag);
    return it == by_tag.end() ? nullptr : &it->second;
  }
};

struct RmiStatsSnapshot {
  std::uint64_t local_rpcs = 0;
  std::uint64_t remote_rpcs = 0;
  serial::SerialStats serial;

  // Reliability counters (all zero on a healthy run).
  std::uint64_t duplicate_calls = 0;    // calls suppressed by at-most-once
  std::uint64_t replayed_replies = 0;   // cached replies re-sent verbatim
  std::uint64_t stray_replies = 0;      // replies with no pending call
  std::uint64_t call_timeouts = 0;      // invocations that raised RmiTimeout
  std::uint64_t machine_down_failures = 0;  // of which: typed MachineDown
  std::uint64_t undeliverable_replies = 0;  // replies lost to a dead link
  std::uint64_t reply_cache_pins = 0;   // evictions skipped: call in flight

  // Overload-robustness counters (all zero under default configuration).
  std::uint64_t deadline_rejects = 0;  // calls refused: deadline already past
  std::uint64_t cancels_sent = 0;      // CancelRequests this machine sent
  std::uint64_t cancels_honored = 0;   // handlers/replies abandoned to cancel
  std::uint64_t sheds = 0;             // calls refused by admission control
  std::uint64_t credit_stalls = 0;     // sends delayed by flow-control credit
  std::uint64_t oneway_calls = 0;      // fire-and-forget invocations sent

  RmiStatsSnapshot& operator+=(const RmiStatsSnapshot& o) {
    local_rpcs += o.local_rpcs;
    remote_rpcs += o.remote_rpcs;
    serial += o.serial;
    duplicate_calls += o.duplicate_calls;
    replayed_replies += o.replayed_replies;
    stray_replies += o.stray_replies;
    call_timeouts += o.call_timeouts;
    machine_down_failures += o.machine_down_failures;
    undeliverable_replies += o.undeliverable_replies;
    reply_cache_pins += o.reply_cache_pins;
    deadline_rejects += o.deadline_rejects;
    cancels_sent += o.cancels_sent;
    cancels_honored += o.cancels_honored;
    sheds += o.sheds;
    credit_stalls += o.credit_stalls;
    oneway_calls += o.oneway_calls;
    return *this;
  }

  friend bool operator==(const RmiStatsSnapshot&,
                         const RmiStatsSnapshot&) = default;

  // "new (MBytes)": allocation volume caused by deserialization (§5.2).
  double deserialization_mbytes() const {
    return static_cast<double>(serial.bytes_allocated) / (1024.0 * 1024.0);
  }
};

class RmiStats {
 public:
  void count_local_rpc() {
    std::scoped_lock lock(mu_);
    ++snap_.local_rpcs;
  }
  void count_remote_rpc() {
    std::scoped_lock lock(mu_);
    ++snap_.remote_rpcs;
  }
  void add_pass(const serial::SerialStats& pass) {
    std::scoped_lock lock(mu_);
    snap_.serial += pass;
  }
  void count_duplicate_call() {
    std::scoped_lock lock(mu_);
    ++snap_.duplicate_calls;
  }
  void count_replayed_reply() {
    std::scoped_lock lock(mu_);
    ++snap_.replayed_replies;
  }
  void count_stray_reply() {
    std::scoped_lock lock(mu_);
    ++snap_.stray_replies;
  }
  void count_call_timeout() {
    std::scoped_lock lock(mu_);
    ++snap_.call_timeouts;
  }
  void count_machine_down() {
    std::scoped_lock lock(mu_);
    ++snap_.machine_down_failures;
  }
  void count_undeliverable_reply() {
    std::scoped_lock lock(mu_);
    ++snap_.undeliverable_replies;
  }
  void count_reply_cache_pin() {
    std::scoped_lock lock(mu_);
    ++snap_.reply_cache_pins;
  }
  void count_deadline_reject() {
    std::scoped_lock lock(mu_);
    ++snap_.deadline_rejects;
  }
  void count_cancel_sent() {
    std::scoped_lock lock(mu_);
    ++snap_.cancels_sent;
  }
  void count_cancel_honored() {
    std::scoped_lock lock(mu_);
    ++snap_.cancels_honored;
  }
  void count_shed() {
    std::scoped_lock lock(mu_);
    ++snap_.sheds;
  }
  void count_credit_stall() {
    std::scoped_lock lock(mu_);
    ++snap_.credit_stalls;
  }
  void count_oneway_call() {
    std::scoped_lock lock(mu_);
    ++snap_.oneway_calls;
  }

  RmiStatsSnapshot snapshot() const {
    std::scoped_lock lock(mu_);
    return snap_;
  }

 private:
  mutable std::mutex mu_;
  RmiStatsSnapshot snap_;
};

}  // namespace rmiopt::rmi
