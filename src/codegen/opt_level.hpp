// The optimization levels of the paper's evaluation (§5 legend), plus the
// introspective pre-KaRMI baseline used by ablation benchmarks.
#pragma once

#include <array>
#include <string_view>

namespace rmiopt::codegen {

enum class OptLevel {
  Heavy,           // runtime introspection, class names on the wire
  Class,           // 'class' — class-specific serializers (baseline)
  Site,            // 'site'  — call-site-specific marshalers (§3.1)
  SiteCycle,       // 'site + cycle' — plus cycle-detection elision (§3.2)
  SiteReuse,       // 'site + reuse' — plus argument/return reuse (§3.3)
  SiteReuseCycle,  // 'site + reuse + cycle' — everything
};

constexpr std::string_view to_string(OptLevel l) {
  switch (l) {
    case OptLevel::Heavy:
      return "introspect";
    case OptLevel::Class:
      return "class";
    case OptLevel::Site:
      return "site";
    case OptLevel::SiteCycle:
      return "site + cycle";
    case OptLevel::SiteReuse:
      return "site + reuse";
    case OptLevel::SiteReuseCycle:
      return "site + reuse + cycle";
  }
  return "?";
}

// The five rows every table in the paper reports, in paper order.
inline constexpr std::array<OptLevel, 5> kPaperLevels = {
    OptLevel::Class, OptLevel::Site, OptLevel::SiteCycle, OptLevel::SiteReuse,
    OptLevel::SiteReuseCycle};

constexpr bool site_specific(OptLevel l) {
  return l != OptLevel::Heavy && l != OptLevel::Class;
}
constexpr bool cycle_elision(OptLevel l) {
  return l == OptLevel::SiteCycle || l == OptLevel::SiteReuseCycle;
}
constexpr bool reuse_enabled(OptLevel l) {
  return l == OptLevel::SiteReuse || l == OptLevel::SiteReuseCycle;
}

}  // namespace rmiopt::codegen
