// Marshal-plan generation (paper §3.1).
//
// For each remote call site the generator consumes the heap analysis and
// emits a CallSitePlan:
//
//  * `class`/`introspect` levels produce the baseline shape: every argument
//    root is a dynamic-dispatch node (the class-specific serializer of the
//    runtime class is invoked per object, Figure 7), the return value is
//    always shipped, the cycle table is always on;
//  * `site*` levels inline: where the points-to set of a node resolves to
//    exactly one runtime class, the plan embeds the field layout directly
//    (no serializer invocation, no wire type info — Figure 6); recursive
//    or polymorphic positions fall back to dynamic nodes; unused return
//    values are elided into an ACK; cycle detection and reuse are switched
//    by the corresponding analyses at the SiteCycle/SiteReuse levels.
#pragma once

#include <memory>

#include "analysis/cycle_analysis.hpp"
#include "analysis/escape_analysis.hpp"
#include "codegen/opt_level.hpp"
#include "serial/plan.hpp"

namespace rmiopt::codegen {

struct CallSiteDecision {
  std::uint32_t tag = 0;
  std::string callee_name;
  // Indices of the callee's reference parameters, in order; the runtime
  // call passes exactly these as object arguments.
  std::vector<std::size_t> ref_params;
  std::unique_ptr<serial::CallSitePlan> plan;

  // Analysis verdicts (for reporting / EXPERIMENTS.md):
  bool proved_acyclic = false;
  bool args_reusable = false;
  bool ret_reusable = false;
  bool return_elided = false;
  std::size_t inline_nodes = 0;     // fully inlined plan nodes
  std::size_t dynamic_nodes = 0;    // dynamic-dispatch fallback nodes
  std::size_t recursive_nodes = 0;  // inlined monomorphic recursion loops

  // Profile-guided promotion (driver::respecialize): the site's ACK-style
  // replies may be held back and coalesced by a batching session.  Never
  // set by a plain compile — the runtime ignores it unless session
  // batching is on, so the default behaviour is untouched.
  bool batch_ack = false;

  // Deep copy (the plan cache stores decisions; retrieval clones them).
  CallSiteDecision clone() const;
};

// Canonical single-string rendering of everything a decision carries —
// flags, node counts and the full plan pseudocode.  Two decisions are
// byte-identical under this rendering iff the compiler made identical
// choices; the cache-correctness test and the CI cold-vs-cached gate
// compare exactly these strings.
std::string to_string(const CallSiteDecision& d, const om::TypeRegistry& types);

class PlanGenerator {
 public:
  PlanGenerator(const analysis::HeapAnalysis& heap,
                const analysis::CycleAnalysis& cycles,
                const analysis::EscapeAnalysis& escapes)
      : heap_(heap), cycles_(cycles), escapes_(escapes) {}

  CallSiteDecision generate(const ir::Module::RemoteCallRef& site,
                            OptLevel level) const;

 private:
  // One frame per plan node under construction, so recursive positions can
  // loop back to the matching ancestor (§3.1 eliminates the recursive call
  // when the type is unambiguous).
  struct Frame {
    const analysis::NodeSet* targets;
    serial::NodePlan* plan;
  };
  std::unique_ptr<serial::NodePlan> build_node(
      const analysis::NodeSet& targets, om::ClassId declared,
      bool cycle_checks, std::vector<Frame>& path,
      CallSiteDecision& out) const;
  std::unique_ptr<serial::NodePlan> dynamic_node(om::ClassId declared,
                                                 bool cycle_checks,
                                                 CallSiteDecision& out) const;
  static bool result_is_used(const ir::Function& caller,
                             const ir::Instr& call);

  const analysis::HeapAnalysis& heap_;
  const analysis::CycleAnalysis& cycles_;
  const analysis::EscapeAnalysis& escapes_;
};

}  // namespace rmiopt::codegen
