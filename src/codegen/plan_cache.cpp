#include "codegen/plan_cache.hpp"

namespace rmiopt::codegen {

const std::map<std::uint32_t, CallSiteDecision>* PlanCache::find(
    const PlanKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void PlanCache::insert(
    const PlanKey& key,
    const std::map<std::uint32_t, CallSiteDecision>& decisions) {
  std::map<std::uint32_t, CallSiteDecision> copy;
  for (const auto& [tag, decision] : decisions) {
    copy.emplace(tag, decision.clone());
  }
  entries_[key] = std::move(copy);
}

void PlanCache::invalidate(std::uint64_t fingerprint) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.fingerprint == fingerprint) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace rmiopt::codegen
