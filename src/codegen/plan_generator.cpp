#include "codegen/plan_generator.hpp"

#include "serial/class_plans.hpp"

namespace rmiopt::codegen {

CallSiteDecision CallSiteDecision::clone() const {
  CallSiteDecision c;
  c.tag = tag;
  c.callee_name = callee_name;
  c.ref_params = ref_params;
  c.plan = plan ? plan->clone() : nullptr;
  c.proved_acyclic = proved_acyclic;
  c.args_reusable = args_reusable;
  c.ret_reusable = ret_reusable;
  c.return_elided = return_elided;
  c.inline_nodes = inline_nodes;
  c.dynamic_nodes = dynamic_nodes;
  c.recursive_nodes = recursive_nodes;
  c.batch_ack = batch_ack;
  return c;
}

std::string to_string(const CallSiteDecision& d,
                      const om::TypeRegistry& types) {
  std::string out;
  out += "site tag=" + std::to_string(d.tag) + " callee=" + d.callee_name;
  out += " ref_params=[";
  for (std::size_t i = 0; i < d.ref_params.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(d.ref_params[i]);
  }
  out += "]";
  out += std::string(" acyclic=") + (d.proved_acyclic ? "y" : "n");
  out += std::string(" args_reusable=") + (d.args_reusable ? "y" : "n");
  out += std::string(" ret_reusable=") + (d.ret_reusable ? "y" : "n");
  out += std::string(" return_elided=") + (d.return_elided ? "y" : "n");
  out += std::string(" batch_ack=") + (d.batch_ack ? "y" : "n");
  out += " inline=" + std::to_string(d.inline_nodes);
  out += " dynamic=" + std::to_string(d.dynamic_nodes);
  out += " recursive=" + std::to_string(d.recursive_nodes);
  out += "\n";
  if (d.plan != nullptr) out += serial::to_pseudocode(*d.plan, types);
  return out;
}

bool PlanGenerator::result_is_used(const ir::Function& caller,
                                   const ir::Instr& call) {
  if (!call.has_result()) return false;
  for (const auto& block : caller.blocks) {
    for (const auto& in : block.instrs) {
      for (ir::ValueId op : in.operands) {
        if (op == call.result) return true;
      }
    }
  }
  return false;
}

std::unique_ptr<serial::NodePlan> PlanGenerator::dynamic_node(
    om::ClassId declared, bool cycle_checks, CallSiteDecision& out) const {
  auto n = serial::make_dynamic_node(declared);
  n->cycle_check = cycle_checks;
  ++out.dynamic_nodes;
  return n;
}

std::unique_ptr<serial::NodePlan> PlanGenerator::build_node(
    const analysis::NodeSet& targets, om::ClassId declared, bool cycle_checks,
    std::vector<Frame>& path, CallSiteDecision& out) const {
  // Inline only when the heap analysis "guarantees that a reference will
  // unambiguously refer to a certain type at a call site" (§3.1).
  if (targets.empty()) return dynamic_node(declared, cycle_checks, out);
  om::ClassId cls = om::kNoClass;
  bool on_path = false;
  for (analysis::LogicalId id : targets) {
    const om::ClassId node_cls = heap_.node(id).cls;
    if (cls == om::kNoClass) {
      cls = node_cls;
    } else if (cls != node_cls) {
      return dynamic_node(declared, cycle_checks, out);  // polymorphic
    }
    for (const Frame& f : path) {
      if (f.targets->contains(id)) on_path = true;
    }
  }
  if (on_path) {
    // Recursive position.  If it unambiguously re-enters an ancestor
    // (identical target set), the generated code loops back into that
    // ancestor's inlined body — the paper "can eliminate that recursive
    // call if heap analysis guarantees that a reference will unambiguously
    // refer to a certain type" (§3.1).  Otherwise fall back to the
    // class-specific serializer for the tail.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (*it->targets == targets) {
        auto rec = std::make_unique<serial::NodePlan>();
        rec->expected_class = cls;
        rec->recurse_to = it->plan;
        ++out.recursive_nodes;
        return rec;
      }
    }
    return dynamic_node(declared, cycle_checks, out);
  }

  const om::TypeRegistry& types = heap_.module().types();
  const om::ClassDescriptor& desc = types.get(cls);
  auto plan = std::make_unique<serial::NodePlan>();
  plan->expected_class = cls;
  plan->type_info = serial::TypeInfoMode::None;
  plan->cycle_check = cycle_checks;
  plan->dynamic_dispatch = false;
  ++out.inline_nodes;

  path.push_back(Frame{&targets, plan.get()});
  if (desc.is_array) {
    if (desc.elem_kind == om::TypeKind::Ref) {
      analysis::NodeSet elem_targets;
      for (analysis::LogicalId id : targets) {
        const auto& e = heap_.node(id).elems;
        elem_targets.insert(e.begin(), e.end());
      }
      plan->elem_plan =
          build_node(elem_targets, desc.elem_class, cycle_checks, path, out);
    }
  } else {
    for (std::size_t fi = 0; fi < desc.fields.size(); ++fi) {
      serial::NodePlan::FieldAction fa;
      fa.field = &desc.fields[fi];
      if (desc.fields[fi].kind == om::TypeKind::Ref) {
        analysis::NodeSet field_targets;
        for (analysis::LogicalId id : targets) {
          auto it = heap_.node(id).fields.find(static_cast<std::uint32_t>(fi));
          if (it != heap_.node(id).fields.end()) {
            field_targets.insert(it->second.begin(), it->second.end());
          }
        }
        fa.ref_plan = build_node(field_targets, desc.fields[fi].ref_class,
                                 cycle_checks, path, out);
      }
      plan->fields.push_back(std::move(fa));
    }
  }
  path.pop_back();
  return plan;
}

CallSiteDecision PlanGenerator::generate(
    const ir::Module::RemoteCallRef& site, OptLevel level) const {
  const ir::Module& m = heap_.module();
  const ir::Function& caller = m.function(site.caller);
  const ir::Instr& call = *site.instr;
  const ir::Function& callee = m.function(call.callee);

  CallSiteDecision out;
  out.tag = call.callsite_tag;
  out.callee_name = callee.name;
  for (std::size_t i = 0; i < callee.params.size(); ++i) {
    if (callee.params[i].is_ref()) out.ref_params.push_back(i);
  }

  auto plan = std::make_unique<serial::CallSitePlan>();
  plan->name = caller.name + "." + callee.name + "#" +
               std::to_string(call.callsite_tag);

  const bool has_ret_value = !callee.ret.is_void && callee.ret.is_ref();
  // Analysis verdicts are level-independent facts; whether they are *used*
  // depends on the level.
  out.proved_acyclic = !cycles_.callsite_needs_cycle_table(site);
  out.args_reusable =
      !out.ref_params.empty() && escapes_.args_reusable(site);
  out.ret_reusable = has_ret_value && escapes_.return_reusable(site);

  if (!site_specific(level)) {
    // Baseline marshalers: one dynamic root per declared reference
    // parameter, return value always shipped, cycle table always on.
    for (std::size_t i : out.ref_params) {
      plan->args.push_back(
          dynamic_node(callee.params[i].class_id, /*cycle_checks=*/true, out));
    }
    if (has_ret_value) {
      plan->ret =
          dynamic_node(callee.ret.class_id, /*cycle_checks=*/true, out);
    }
    plan->needs_cycle_table = true;
    out.plan = std::move(plan);
    return out;
  }

  // ---- call-site-specific generation (§3.1) --------------------------------
  out.return_elided = has_ret_value && !result_is_used(caller, call);
  const bool ship_ret = has_ret_value && !out.return_elided;

  plan->needs_cycle_table = cycle_elision(level) ? !out.proved_acyclic : true;
  plan->reuse_args = reuse_enabled(level) && out.args_reusable;
  plan->reuse_ret = reuse_enabled(level) && ship_ret && out.ret_reusable;

  // Argument plans come from the *caller-side* points-to sets: this is what
  // makes the marshalers call-site specific (the callee's parameter sets
  // merge every call site and would lose precision, §3.1).
  std::vector<Frame> path;
  for (std::size_t i : out.ref_params) {
    plan->args.push_back(build_node(
        heap_.points_to(site.caller, call.operands[i]),
        callee.params[i].class_id, plan->needs_cycle_table, path, out));
  }
  if (ship_ret) {
    // The caller-side view of the return graph: the clones bound to the
    // call's result value.
    plan->ret = build_node(heap_.points_to(site.caller, call.result),
                           callee.ret.class_id, plan->needs_cycle_table,
                           path, out);
  }
  out.plan = std::move(plan);
  return out;
}

}  // namespace rmiopt::codegen
