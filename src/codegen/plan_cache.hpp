// Content-keyed cache of per-call-site marshal plans (the codegen half of
// the pass manager's memoization).
//
// Key: (module fingerprint, optimization level, precise-cycles option) —
// exactly the inputs plan generation consumes on top of the analyses,
// which are themselves keyed by the same fingerprint.  A hit hands back
// deep clones of the stored CallSiteDecisions, so cached and fresh
// compiles are interchangeable by construction: the stored decisions were
// produced by PlanGenerator::generate and clones are structurally
// byte-identical (tests/pass_manager_test.cpp and bench/ablation_compile
// assert this via codegen::to_string).
#pragma once

#include <map>

#include "codegen/plan_generator.hpp"

namespace rmiopt::codegen {

struct PlanKey {
  std::uint64_t fingerprint = 0;
  OptLevel level = OptLevel::Class;
  bool precise_cycles = false;

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    if (a.fingerprint != b.fingerprint) return a.fingerprint < b.fingerprint;
    if (a.level != b.level) return a.level < b.level;
    return a.precise_cycles < b.precise_cycles;
  }
};

class PlanCache {
 public:
  // nullptr on miss; the entry (by tag) on hit.  Callers clone what they
  // keep — entries stay owned by the cache.
  const std::map<std::uint32_t, CallSiteDecision>* find(
      const PlanKey& key) const;

  // Stores deep clones of `decisions` under `key` (overwrites).
  void insert(const PlanKey& key,
              const std::map<std::uint32_t, CallSiteDecision>& decisions);

  // Drops every level's entry for one module fingerprint.
  void invalidate(std::uint64_t fingerprint);
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }

 private:
  std::map<PlanKey, std::map<std::uint32_t, CallSiteDecision>> entries_;
};

}  // namespace rmiopt::codegen
