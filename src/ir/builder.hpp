// FunctionBuilder: fluent construction of SSA IR.
//
// Field accesses are written by field *name*; the builder resolves them
// against the TypeRegistry descriptor of the object operand's static class
// and stores the field index, so analyses never do string lookups.
#pragma once

#include "ir/module.hpp"

namespace rmiopt::ir {

class FunctionBuilder {
 public:
  FunctionBuilder(Module& module, Function& func);

  // Parameters are values 0..params-1.
  ValueId param(std::size_t i) const;

  void set_block(std::string label);  // starts a new basic block

  ValueId alloc(om::ClassId cls);
  ValueId alloc_array(om::ClassId array_cls,
                      ValueId length = kNoValue);
  ValueId const_int(std::int64_t v);
  ValueId const_null(om::ClassId cls = om::kNoClass);
  ValueId move(ValueId src);
  ValueId phi(std::vector<ValueId> inputs);
  // A phi whose inputs are all back edges (appended later); the type must
  // be given explicitly.
  ValueId empty_phi(Type t);
  // Appends a loop back-edge input to an existing phi (the value may be
  // defined later in listing order, as SSA back edges are).
  void append_phi_input(ValueId phi_result, ValueId input);
  ValueId arith(std::vector<ValueId> inputs,
                om::TypeKind result = om::TypeKind::Int);

  ValueId load_field(ValueId obj, const std::string& field);
  void store_field(ValueId obj, const std::string& field, ValueId value);
  ValueId load_index(ValueId array);
  void store_index(ValueId array, ValueId value);

  ValueId load_static(GlobalId g);
  void store_static(GlobalId g, ValueId value);

  ValueId call(FuncId callee, std::vector<ValueId> args);
  // `tag` is a stable application-chosen id used to match the compiled
  // call site to the runtime call site (one tag per static RMI call).
  ValueId remote_call(FuncId callee, std::vector<ValueId> args,
                      std::uint32_t tag);

  void ret(ValueId value = kNoValue);

 private:
  ValueId new_value(Type t);
  Instr& emit(Instr instr);
  const om::ClassDescriptor& class_of(ValueId obj) const;
  std::uint32_t field_index_of(const om::ClassDescriptor& cls,
                               const std::string& field) const;

  Module& module_;
  Function& func_;
};

}  // namespace rmiopt::ir
