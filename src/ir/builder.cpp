#include "ir/builder.hpp"

namespace rmiopt::ir {

FunctionBuilder::FunctionBuilder(Module& module, Function& func)
    : module_(module), func_(func) {
  if (func_.blocks.empty()) func_.blocks.push_back(BasicBlock{"entry", {}});
}

ValueId FunctionBuilder::param(std::size_t i) const {
  RMIOPT_CHECK(i < func_.params.size(), "parameter index out of range");
  return static_cast<ValueId>(i);
}

void FunctionBuilder::set_block(std::string label) {
  func_.blocks.push_back(BasicBlock{std::move(label), {}});
}

ValueId FunctionBuilder::new_value(Type t) {
  func_.value_types.push_back(t);
  return func_.value_count++;
}

Instr& FunctionBuilder::emit(Instr instr) {
  func_.blocks.back().instrs.push_back(std::move(instr));
  return func_.blocks.back().instrs.back();
}

const om::ClassDescriptor& FunctionBuilder::class_of(ValueId obj) const {
  const Type& t = func_.value_type(obj);
  RMIOPT_CHECK(t.is_ref(), "value is not a reference");
  RMIOPT_CHECK(t.class_id != om::kNoClass,
               "field access on statically unknown class");
  return module_.types().get(t.class_id);
}

std::uint32_t FunctionBuilder::field_index_of(
    const om::ClassDescriptor& cls, const std::string& field) const {
  for (std::size_t i = 0; i < cls.fields.size(); ++i) {
    if (cls.fields[i].name == field) return static_cast<std::uint32_t>(i);
  }
  fail("class " + cls.name + " has no field '" + field + "'");
}

ValueId FunctionBuilder::alloc(om::ClassId cls) {
  RMIOPT_CHECK(!module_.types().get(cls).is_array,
               "use alloc_array for arrays");
  Instr in;
  in.op = Op::Alloc;
  in.class_id = cls;
  in.alloc_site = module_.next_alloc_site();
  in.type = Type::ref(cls);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::alloc_array(om::ClassId array_cls, ValueId length) {
  RMIOPT_CHECK(module_.types().get(array_cls).is_array,
               "alloc_array requires an array class");
  Instr in;
  in.op = Op::AllocArray;
  in.class_id = array_cls;
  in.alloc_site = module_.next_alloc_site();
  if (length != kNoValue) in.operands.push_back(length);
  in.type = Type::ref(array_cls);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::const_int(std::int64_t v) {
  Instr in;
  in.op = Op::ConstInt;
  in.imm = v;
  in.type = Type::prim(om::TypeKind::Long);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::const_null(om::ClassId cls) {
  Instr in;
  in.op = Op::ConstNull;
  in.type = Type::ref(cls);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::move(ValueId src) {
  Instr in;
  in.op = Op::Move;
  in.operands = {src};
  in.type = func_.value_type(src);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

void FunctionBuilder::append_phi_input(ValueId phi_result, ValueId input) {
  for (auto& block : func_.blocks) {
    for (auto& in : block.instrs) {
      if (in.op == Op::Phi && in.result == phi_result) {
        in.operands.push_back(input);
        return;
      }
    }
  }
  fail("append_phi_input: no such phi");
}

ValueId FunctionBuilder::phi(std::vector<ValueId> inputs) {
  RMIOPT_CHECK(!inputs.empty(), "phi needs inputs (or use empty_phi)");
  Instr in;
  in.op = Op::Phi;
  in.type = func_.value_type(inputs[0]);
  in.operands = std::move(inputs);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::empty_phi(Type t) {
  Instr in;
  in.op = Op::Phi;
  in.type = t;
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::arith(std::vector<ValueId> inputs,
                               om::TypeKind result) {
  Instr in;
  in.op = Op::Arith;
  in.operands = std::move(inputs);
  in.type = Type::prim(result);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::load_field(ValueId obj, const std::string& field) {
  const om::ClassDescriptor& cls = class_of(obj);
  const std::uint32_t idx = field_index_of(cls, field);
  const om::FieldDescriptor& f = cls.fields[idx];
  Instr in;
  in.op = Op::LoadField;
  in.operands = {obj};
  in.field_index = idx;
  in.type = f.kind == om::TypeKind::Ref ? Type::ref(f.ref_class)
                                        : Type::prim(f.kind);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

void FunctionBuilder::store_field(ValueId obj, const std::string& field,
                                  ValueId value) {
  const om::ClassDescriptor& cls = class_of(obj);
  Instr in;
  in.op = Op::StoreField;
  in.operands = {obj, value};
  in.field_index = field_index_of(cls, field);
  emit(std::move(in));
}

ValueId FunctionBuilder::load_index(ValueId array) {
  const om::ClassDescriptor& cls = class_of(array);
  RMIOPT_CHECK(cls.is_array, "load_index on non-array");
  Instr in;
  in.op = Op::LoadIndex;
  in.operands = {array};
  in.type = cls.elem_kind == om::TypeKind::Ref ? Type::ref(cls.elem_class)
                                               : Type::prim(cls.elem_kind);
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

void FunctionBuilder::store_index(ValueId array, ValueId value) {
  RMIOPT_CHECK(class_of(array).is_array, "store_index on non-array");
  Instr in;
  in.op = Op::StoreIndex;
  in.operands = {array, value};
  emit(std::move(in));
}

ValueId FunctionBuilder::load_static(GlobalId g) {
  Instr in;
  in.op = Op::LoadStatic;
  in.global_index = g;
  in.type = module_.global(g).type;
  in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

void FunctionBuilder::store_static(GlobalId g, ValueId value) {
  Instr in;
  in.op = Op::StoreStatic;
  in.global_index = g;
  in.operands = {value};
  emit(std::move(in));
}

ValueId FunctionBuilder::call(FuncId callee, std::vector<ValueId> args) {
  const Function& target = module_.function(callee);
  RMIOPT_CHECK(args.size() == target.params.size(),
               "argument count mismatch calling " + target.name);
  Instr in;
  in.op = Op::Call;
  in.callee = callee;
  in.operands = std::move(args);
  in.type = target.ret;
  if (!target.ret.is_void) in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

ValueId FunctionBuilder::remote_call(FuncId callee, std::vector<ValueId> args,
                                     std::uint32_t tag) {
  const Function& target = module_.function(callee);
  RMIOPT_CHECK(target.is_remote_method,
               "remote_call target must be a remote method");
  RMIOPT_CHECK(args.size() == target.params.size(),
               "argument count mismatch calling " + target.name);
  Instr in;
  in.op = Op::RemoteCall;
  in.callee = callee;
  in.callsite_tag = tag;
  in.operands = std::move(args);
  in.type = target.ret;
  if (!target.ret.is_void) in.result = new_value(in.type);
  return emit(std::move(in)).result;
}

void FunctionBuilder::ret(ValueId value) {
  Instr in;
  in.op = Op::Return;
  if (value != kNoValue) in.operands.push_back(value);
  emit(std::move(in));
}

}  // namespace rmiopt::ir
