#include <algorithm>

#include "ir/module.hpp"

namespace rmiopt::ir {

namespace {

void verify_function(const Module& m, const Function& f) {
  auto ctx = [&](const char* what) { return f.name + ": " + what; };
  RMIOPT_CHECK(f.value_types.size() == f.value_count,
               ctx("value table size mismatch"));

  std::vector<bool> defined(f.value_count, false);
  for (std::size_t i = 0; i < f.params.size(); ++i) defined[i] = true;

  auto check_operand = [&](ValueId v) {
    RMIOPT_CHECK(v < f.value_count, ctx("operand out of range"));
    RMIOPT_CHECK(defined[v], ctx("use before definition (not SSA)"));
  };

  for (const auto& block : f.blocks) {
    for (const auto& in : block.instrs) {
      if (in.op == Op::Phi) {
        // Phi inputs may be loop back edges (defined later in listing
        // order); only range-check them.
        for (ValueId v : in.operands) {
          RMIOPT_CHECK(v < f.value_count, ctx("phi operand out of range"));
        }
      } else {
        for (ValueId v : in.operands) check_operand(v);
      }
      switch (in.op) {
        case Op::Alloc:
          RMIOPT_CHECK(!m.types().get(in.class_id).is_array,
                       ctx("Alloc of array class"));
          RMIOPT_CHECK(in.alloc_site != 0, ctx("missing alloc site id"));
          break;
        case Op::AllocArray:
          RMIOPT_CHECK(m.types().get(in.class_id).is_array,
                       ctx("AllocArray of non-array class"));
          RMIOPT_CHECK(in.alloc_site != 0, ctx("missing alloc site id"));
          break;
        case Op::LoadField:
        case Op::StoreField: {
          const Type& ot = f.value_type(in.operands[0]);
          RMIOPT_CHECK(ot.is_ref() && ot.class_id != om::kNoClass,
                       ctx("field access needs a typed reference"));
          const auto& cls = m.types().get(ot.class_id);
          RMIOPT_CHECK(in.field_index < cls.fields.size(),
                       ctx("field index out of range"));
          break;
        }
        case Op::LoadIndex:
        case Op::StoreIndex: {
          const Type& ot = f.value_type(in.operands[0]);
          RMIOPT_CHECK(ot.is_ref() && m.types().get(ot.class_id).is_array,
                       ctx("index access needs an array reference"));
          break;
        }
        case Op::LoadStatic:
        case Op::StoreStatic:
          RMIOPT_CHECK(in.global_index < m.global_count(),
                       ctx("unknown global"));
          break;
        case Op::Call:
        case Op::RemoteCall: {
          RMIOPT_CHECK(in.callee < m.function_count(), ctx("unknown callee"));
          const Function& callee = m.function(in.callee);
          RMIOPT_CHECK(in.operands.size() == callee.params.size(),
                       ctx("call arity mismatch"));
          if (in.op == Op::RemoteCall) {
            RMIOPT_CHECK(callee.is_remote_method,
                         ctx("RemoteCall to non-remote method"));
          }
          break;
        }
        case Op::Return:
          if (f.ret.is_void) {
            RMIOPT_CHECK(in.operands.empty(), ctx("void return with value"));
          } else {
            RMIOPT_CHECK(in.operands.size() == 1,
                         ctx("non-void return without value"));
          }
          break;
        default:
          break;
      }
      if (in.has_result()) {
        RMIOPT_CHECK(in.result < f.value_count, ctx("result out of range"));
        RMIOPT_CHECK(!defined[in.result], ctx("value defined twice"));
        defined[in.result] = true;
      }
    }
  }
}

}  // namespace

void verify(const Module& module) {
  // Remote-call-site tags must be unique module-wide (they key the mapping
  // to runtime call sites).
  std::vector<std::uint32_t> tags;
  for (const auto& site : module.remote_call_sites()) {
    tags.push_back(site.instr->callsite_tag);
  }
  std::sort(tags.begin(), tags.end());
  RMIOPT_CHECK(std::adjacent_find(tags.begin(), tags.end()) == tags.end(),
               "duplicate remote call-site tag");

  for (std::size_t i = 0; i < module.function_count(); ++i) {
    verify_function(module, module.function(static_cast<FuncId>(i)));
  }
}

}  // namespace rmiopt::ir
