#include "ir/module.hpp"

namespace rmiopt::ir {

const Type& Function::value_type(ValueId v) const {
  RMIOPT_CHECK(v < value_types.size(), "unknown SSA value");
  return value_types[v];
}

Function& Module::add_function(std::string name, std::vector<Type> params,
                               Type ret, bool is_remote_method) {
  auto f = std::make_unique<Function>();
  f->id = static_cast<FuncId>(funcs_.size());
  f->name = std::move(name);
  f->params = std::move(params);
  f->ret = ret;
  f->is_remote_method = is_remote_method;
  f->value_count = static_cast<std::uint32_t>(f->params.size());
  f->value_types = f->params;
  funcs_.push_back(std::move(f));
  return *funcs_.back();
}

GlobalId Module::add_global(std::string name, Type type) {
  Global g;
  g.id = static_cast<GlobalId>(globals_.size());
  g.name = std::move(name);
  g.type = type;
  globals_.push_back(std::move(g));
  return globals_.back().id;
}

const Function* Module::find_function(const std::string& name) const {
  for (const auto& f : funcs_) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

std::vector<Module::RemoteCallRef> Module::remote_call_sites() const {
  std::vector<RemoteCallRef> sites;
  for (const auto& f : funcs_) {
    for (std::size_t b = 0; b < f->blocks.size(); ++b) {
      const auto& block = f->blocks[b];
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        if (block.instrs[i].op == Op::RemoteCall) {
          sites.push_back(RemoteCallRef{f->id, b, i, &block.instrs[i]});
        }
      }
    }
  }
  return sites;
}

}  // namespace rmiopt::ir
