#include "ir/module.hpp"

#include <set>

#include "support/hash.hpp"

namespace rmiopt::ir {

namespace {

// Incremental FNV-1a over heterogeneous fields.  Every integral field is
// widened to 64 bits and strings are length-prefixed, so adjacent fields
// cannot alias each other's bytes.
struct Hasher {
  std::uint64_t h = 0xcbf29ce484222325ull;

  void bytes(const void* data, std::size_t len) { h = fnv1a(data, len, h); }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void type(const Type& t) {
    u64(static_cast<std::uint64_t>(t.kind));
    u64(t.class_id);
    u64(t.is_void ? 1 : 0);
  }
};

// Class ids the IR mentions directly: function signatures, value types,
// and instruction annotations.
void collect_direct_classes(const Module& m, std::set<om::ClassId>& out) {
  auto add = [&](const Type& t) {
    if (t.kind == om::TypeKind::Ref && t.class_id != om::kNoClass) {
      out.insert(t.class_id);
    }
  };
  for (std::size_t f = 0; f < m.function_count(); ++f) {
    const Function& fn = m.function(static_cast<FuncId>(f));
    for (const Type& p : fn.params) add(p);
    add(fn.ret);
    for (const Type& v : fn.value_types) add(v);
    for (const auto& block : fn.blocks) {
      for (const Instr& in : block.instrs) {
        add(in.type);
        if (in.class_id != om::kNoClass) out.insert(in.class_id);
      }
    }
  }
  for (std::size_t g = 0; g < m.global_count(); ++g) {
    add(m.global(static_cast<GlobalId>(g)).type);
  }
}

}  // namespace

const Type& Function::value_type(ValueId v) const {
  RMIOPT_CHECK(v < value_types.size(), "unknown SSA value");
  return value_types[v];
}

Function& Module::add_function(std::string name, std::vector<Type> params,
                               Type ret, bool is_remote_method) {
  auto f = std::make_unique<Function>();
  f->id = static_cast<FuncId>(funcs_.size());
  f->name = std::move(name);
  f->params = std::move(params);
  f->ret = ret;
  f->is_remote_method = is_remote_method;
  f->value_count = static_cast<std::uint32_t>(f->params.size());
  f->value_types = f->params;
  funcs_.push_back(std::move(f));
  return *funcs_.back();
}

GlobalId Module::add_global(std::string name, Type type) {
  Global g;
  g.id = static_cast<GlobalId>(globals_.size());
  g.name = std::move(name);
  g.type = type;
  globals_.push_back(std::move(g));
  return globals_.back().id;
}

const Function* Module::find_function(const std::string& name) const {
  for (const auto& f : funcs_) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

std::vector<Module::RemoteCallRef> Module::remote_call_sites() const {
  std::vector<RemoteCallRef> sites;
  for (const auto& f : funcs_) {
    for (std::size_t b = 0; b < f->blocks.size(); ++b) {
      const auto& block = f->blocks[b];
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        if (block.instrs[i].op == Op::RemoteCall) {
          sites.push_back(RemoteCallRef{f->id, b, i, &block.instrs[i]});
        }
      }
    }
  }
  return sites;
}

std::uint64_t Module::fingerprint() const {
  Hasher hash;

  hash.u64(funcs_.size());
  for (const auto& f : funcs_) {
    hash.u64(f->id);
    hash.str(f->name);
    hash.u64(f->params.size());
    for (const Type& p : f->params) hash.type(p);
    hash.type(f->ret);
    hash.u64(f->is_remote_method ? 1 : 0);
    hash.u64(f->value_count);
    hash.u64(f->blocks.size());
    for (const auto& block : f->blocks) {
      hash.str(block.label);
      hash.u64(block.instrs.size());
      for (const Instr& in : block.instrs) {
        hash.u64(static_cast<std::uint64_t>(in.op));
        hash.u64(in.result);
        hash.type(in.type);
        hash.u64(in.operands.size());
        for (ValueId op : in.operands) hash.u64(op);
        hash.u64(in.class_id);
        hash.u64(in.alloc_site);
        hash.u64(in.field_index);
        hash.u64(in.global_index);
        hash.u64(in.callee);
        hash.u64(in.callsite_tag);
        hash.u64(static_cast<std::uint64_t>(in.imm));
      }
    }
  }

  hash.u64(globals_.size());
  for (const Global& g : globals_) {
    hash.u64(g.id);
    hash.str(g.name);
    hash.type(g.type);
  }
  hash.u64(alloc_site_counter_);

  // Descriptor closure: the classes the passes may walk — directly
  // referenced ones plus everything reachable through fields, array
  // elements and superclasses.  std::set keeps the iteration (and hence
  // the hash) deterministic.
  std::set<om::ClassId> closure;
  collect_direct_classes(*this, closure);
  std::set<om::ClassId> frontier = closure;
  while (!frontier.empty()) {
    std::set<om::ClassId> next;
    for (om::ClassId id : frontier) {
      const om::ClassDescriptor& desc = types_.get(id);
      auto grow = [&](om::ClassId c) {
        if (c != om::kNoClass && closure.insert(c).second) next.insert(c);
      };
      grow(desc.super);
      grow(desc.elem_class);
      for (const auto& field : desc.fields) grow(field.ref_class);
    }
    frontier = std::move(next);
  }
  hash.u64(closure.size());
  for (om::ClassId id : closure) {
    const om::ClassDescriptor& desc = types_.get(id);
    hash.u64(desc.id);
    hash.str(desc.name);
    hash.u64(desc.super);
    hash.u64(desc.instance_size);
    hash.u64(desc.is_array ? 1 : 0);
    hash.u64(static_cast<std::uint64_t>(desc.elem_kind));
    hash.u64(desc.elem_class);
    hash.u64(desc.is_string ? 1 : 0);
    hash.u64(desc.fields.size());
    for (const auto& field : desc.fields) {
      hash.str(field.name);
      hash.u64(static_cast<std::uint64_t>(field.kind));
      hash.u64(field.ref_class);
      hash.u64(field.offset);
    }
  }
  return hash.h;
}

}  // namespace rmiopt::ir
