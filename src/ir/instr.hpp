// Instructions of the mini-language IR.
//
// The IR is in SSA form by construction: the builder assigns every result a
// fresh value id and merge points use explicit Phi instructions (§2 step 1:
// "convert all code to SSA form").  Control flow is kept minimal — the
// paper's heap analysis is a flow-insensitive fixpoint over assignments
// (steps 3–6), so basic blocks only group instructions for readability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.hpp"

namespace rmiopt::ir {

using ValueId = std::uint32_t;
inline constexpr ValueId kNoValue = 0xffffffffu;
using FuncId = std::uint32_t;
using GlobalId = std::uint32_t;

// Global numbering of object allocation sites (§2 step 2).
using AllocSiteId = std::uint32_t;

enum class Op : std::uint8_t {
  Alloc,        // result = new C                  [class_id, alloc_site]
  AllocArray,   // result = new T[...]             [class_id, alloc_site]
  ConstInt,     // result = constant               [imm]
  ConstNull,    // result = null (typed reference)
  Move,         // result = operand0
  Phi,          // result = phi(operands...)
  Arith,        // result = op(operands...)        opaque primitive compute
  LoadField,    // result = operand0.f             [field_index]
  StoreField,   // operand0.f = operand1           [field_index]
  LoadIndex,    // result = operand0[*]
  StoreIndex,   // operand0[*] = operand1
  LoadStatic,   // result = G                      [global_index]
  StoreStatic,  // G = operand0                    [global_index]
  Call,         // result = callee(operands...)    [callee]
  RemoteCall,   // result = callee(operands...) over RMI   [callee, callsite_tag]
  Return,       // return operand0 (or void)
};

struct Instr {
  Op op = Op::Move;
  ValueId result = kNoValue;
  Type type;  // type of the result (when any)
  std::vector<ValueId> operands;

  om::ClassId class_id = om::kNoClass;  // Alloc / AllocArray
  AllocSiteId alloc_site = 0;           // Alloc / AllocArray
  std::uint32_t field_index = 0;        // LoadField / StoreField
  GlobalId global_index = 0;            // LoadStatic / StoreStatic
  FuncId callee = 0;                    // Call / RemoteCall
  std::uint32_t callsite_tag = 0;       // RemoteCall: app-chosen stable tag
  std::int64_t imm = 0;                 // ConstInt

  bool has_result() const { return result != kNoValue; }
};

}  // namespace rmiopt::ir
