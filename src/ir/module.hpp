// Module, Function and Global containers of the mini-language IR.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/instr.hpp"
#include "support/error.hpp"

namespace rmiopt::ir {

struct BasicBlock {
  std::string label;
  std::vector<Instr> instrs;
};

struct Function {
  FuncId id = 0;
  std::string name;
  std::vector<Type> params;  // parameter i is ValueId i
  Type ret = Type::void_type();
  // JavaParty `remote` methods are the targets of RemoteCall instructions.
  bool is_remote_method = false;
  std::vector<BasicBlock> blocks;
  std::uint32_t value_count = 0;  // SSA values 0..value_count-1

  const Type& value_type(ValueId v) const;
  // Recomputed by the builder: type of every SSA value.
  std::vector<Type> value_types;
};

struct Global {
  GlobalId id = 0;
  std::string name;
  Type type;
};

class Module {
 public:
  explicit Module(const om::TypeRegistry& types) : types_(types) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const om::TypeRegistry& types() const { return types_; }

  Function& add_function(std::string name, std::vector<Type> params,
                         Type ret, bool is_remote_method = false);
  GlobalId add_global(std::string name, Type type);

  Function& function(FuncId id) { return *funcs_.at(id); }
  const Function& function(FuncId id) const { return *funcs_.at(id); }
  const Function* find_function(const std::string& name) const;
  std::size_t function_count() const { return funcs_.size(); }
  const Global& global(GlobalId id) const { return globals_.at(id); }
  std::size_t global_count() const { return globals_.size(); }

  AllocSiteId next_alloc_site() { return ++alloc_site_counter_; }
  AllocSiteId max_alloc_site() const { return alloc_site_counter_; }

  // All RemoteCall instructions in the module, with their caller.
  struct RemoteCallRef {
    FuncId caller;
    std::size_t block;
    std::size_t index;
    const Instr* instr;
  };
  std::vector<RemoteCallRef> remote_call_sites() const;

  // Content hash of everything the compiler passes read: every function
  // (signature, blocks, instructions with all operand/annotation fields),
  // every global, the allocation-site counter, and the descriptors of the
  // classes the IR references (closed transitively over fields, array
  // elements and superclasses).  Two independently built modules with
  // identical content hash equal; classes defined in the registry but
  // unreachable from the IR (runtime marker classes) do not perturb the
  // hash.  The driver's analysis and plan caches key on this.
  std::uint64_t fingerprint() const;

 private:
  const om::TypeRegistry& types_;
  // unique_ptr: Function& returned by add_function stays valid as the
  // module grows.
  std::vector<std::unique_ptr<Function>> funcs_;
  std::vector<Global> globals_;
  AllocSiteId alloc_site_counter_ = 0;  // 0 reserved; sites start at 1
};

// Structural sanity checks: operand def-before-use within a function (SSA
// listing order), field indices valid for the classes involved, callee ids
// in range, remote calls target remote methods, returns match signatures.
// Throws rmiopt::Error on the first violation.
void verify(const Module& module);

// Textual dump of a function / module, for tests and the compiler_tour
// example.
std::string to_string(const Function& f, const Module& m);
std::string to_string(const Module& m);

}  // namespace rmiopt::ir
