// Types of the mini-language IR.
//
// The IR models the Java subset the paper's compiler analyses: primitives,
// class references and array references.  Reference types carry the
// om::ClassId of the *same* TypeRegistry the runtime uses — compiler and
// runtime share class metadata, as they do in Manta.
#pragma once

#include "objmodel/class_desc.hpp"

namespace rmiopt::ir {

struct Type {
  om::TypeKind kind = om::TypeKind::Int;
  om::ClassId class_id = om::kNoClass;  // for kind == Ref; kNoClass = Object
  bool is_void = false;

  static Type prim(om::TypeKind k) { return Type{k, om::kNoClass, false}; }
  static Type ref(om::ClassId c) {
    return Type{om::TypeKind::Ref, c, false};
  }
  static Type object() { return Type{om::TypeKind::Ref, om::kNoClass, false}; }
  static Type void_type() {
    return Type{om::TypeKind::Ref, om::kNoClass, true};
  }

  bool is_ref() const { return kind == om::TypeKind::Ref && !is_void; }
  bool operator==(const Type&) const = default;
};

}  // namespace rmiopt::ir
