#include <sstream>

#include "ir/module.hpp"

namespace rmiopt::ir {

namespace {

std::string type_str(const Module& m, const Type& t) {
  if (t.is_void) return "void";
  if (!t.is_ref()) return std::string(om::name_of(t.kind));
  if (t.class_id == om::kNoClass) return "Object";
  return m.types().get(t.class_id).name;
}

std::string v(ValueId id) { return "%" + std::to_string(id); }

void print_instr(std::ostringstream& out, const Module& m, const Function& f,
                 const Instr& in) {
  out << "  ";
  if (in.has_result()) out << v(in.result) << " = ";
  switch (in.op) {
    case Op::Alloc:
      out << "new " << m.types().get(in.class_id).name << "  ; site "
          << in.alloc_site;
      break;
    case Op::AllocArray:
      out << "new-array " << m.types().get(in.class_id).name << "  ; site "
          << in.alloc_site;
      break;
    case Op::ConstInt:
      out << "const " << in.imm;
      break;
    case Op::ConstNull:
      out << "null";
      break;
    case Op::Move:
      out << "move " << v(in.operands[0]);
      break;
    case Op::Phi: {
      out << "phi";
      for (ValueId o : in.operands) out << " " << v(o);
      break;
    }
    case Op::Arith: {
      out << "arith";
      for (ValueId o : in.operands) out << " " << v(o);
      break;
    }
    case Op::LoadField: {
      const auto& cls = m.types().get(f.value_type(in.operands[0]).class_id);
      out << v(in.operands[0]) << "." << cls.fields[in.field_index].name;
      break;
    }
    case Op::StoreField: {
      const auto& cls = m.types().get(f.value_type(in.operands[0]).class_id);
      out << v(in.operands[0]) << "." << cls.fields[in.field_index].name
          << " = " << v(in.operands[1]);
      break;
    }
    case Op::LoadIndex:
      out << v(in.operands[0]) << "[*]";
      break;
    case Op::StoreIndex:
      out << v(in.operands[0]) << "[*] = " << v(in.operands[1]);
      break;
    case Op::LoadStatic:
      out << "static " << m.global(in.global_index).name;
      break;
    case Op::StoreStatic:
      out << "static " << m.global(in.global_index).name << " = "
          << v(in.operands[0]);
      break;
    case Op::Call:
    case Op::RemoteCall: {
      out << (in.op == Op::RemoteCall ? "remote-call " : "call ")
          << m.function(in.callee).name << "(";
      for (std::size_t i = 0; i < in.operands.size(); ++i) {
        if (i) out << ", ";
        out << v(in.operands[i]);
      }
      out << ")";
      if (in.op == Op::RemoteCall) out << "  ; tag " << in.callsite_tag;
      break;
    }
    case Op::Return:
      out << "return";
      if (!in.operands.empty()) out << " " << v(in.operands[0]);
      break;
  }
  out << "\n";
}

}  // namespace

std::string to_string(const Function& f, const Module& m) {
  std::ostringstream out;
  out << (f.is_remote_method ? "remote " : "") << type_str(m, f.ret) << " "
      << f.name << "(";
  for (std::size_t i = 0; i < f.params.size(); ++i) {
    if (i) out << ", ";
    out << type_str(m, f.params[i]) << " " << v(static_cast<ValueId>(i));
  }
  out << ") {\n";
  for (const auto& block : f.blocks) {
    if (f.blocks.size() > 1 || !block.label.empty()) {
      out << block.label << ":\n";
    }
    for (const auto& in : block.instrs) print_instr(out, m, f, in);
  }
  out << "}\n";
  return out.str();
}

std::string to_string(const Module& m) {
  std::ostringstream out;
  for (std::size_t g = 0; g < m.global_count(); ++g) {
    const Global& gl = m.global(static_cast<GlobalId>(g));
    out << "static " << type_str(m, gl.type) << " " << gl.name << "\n";
  }
  for (std::size_t i = 0; i < m.function_count(); ++i) {
    out << to_string(m.function(static_cast<FuncId>(i)), m) << "\n";
  }
  return out.str();
}

}  // namespace rmiopt::ir
