#include "trace/recorder.hpp"

#include <algorithm>
#include <cstdio>

namespace rmiopt::trace {

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::Call:
      return "call";
    case EventKind::LocalCall:
      return "local call";
    case EventKind::Serialize:
      return "serialize";
    case EventKind::Deserialize:
      return "deserialize";
    case EventKind::HandlerRun:
      return "handler";
    case EventKind::ReplyDeliver:
      return "reply delivered";
    case EventKind::CallTimeout:
      return "call timeout";
    case EventKind::DuplicateDropped:
      return "duplicate dropped";
    case EventKind::ReplyReplayed:
      return "reply replayed";
    case EventKind::ReplyCachePinned:
      return "reply-cache pin";
    case EventKind::DeadlineReject:
      return "deadline reject";
    case EventKind::CancelSent:
      return "cancel sent";
    case EventKind::CancelHonored:
      return "cancel honored";
    case EventKind::OverloadShed:
      return "overload shed";
    case EventKind::CreditStall:
      return "credit stall";
    case EventKind::OnewaySend:
      return "oneway send";
    case EventKind::SessionEnqueue:
      return "enqueue";
    case EventKind::FrameEmit:
      return "frame";
    case EventKind::Retransmit:
      return "retransmit";
    case EventKind::NackTurnaround:
      return "nack turnaround";
    case EventKind::Flight:
      return "flight";
    case EventKind::FaultDrop:
      return "fault: drop";
    case EventKind::FaultDuplicate:
      return "fault: duplicate";
    case EventKind::FaultReorder:
      return "fault: reorder";
    case EventKind::FaultCorrupt:
      return "fault: corrupt";
    case EventKind::DedupDrop:
      return "dedup drop";
    case EventKind::DedupLateRecovery:
      return "dedup late recovery";
    case EventKind::Heartbeat:
      return "heartbeat";
    case EventKind::HeartbeatMiss:
      return "heartbeat miss";
    case EventKind::MachineSuspected:
      return "machine suspected";
    case EventKind::MachineDead:
      return "machine dead";
    case EventKind::CompilePass:
      return "compile pass";
    case EventKind::CompileCacheHit:
      return "compile cache hit";
  }
  return "?";
}

void MemoryRecorder::record(const Event& e) noexcept {
  try {
    std::scoped_lock lock(mu_);
    events_.push_back(e);
  } catch (...) {
    // Out of memory while buffering a trace event: drop the event.  The
    // trace becomes incomplete; the simulation must not.
  }
}

std::vector<Event> MemoryRecorder::events() const {
  std::scoped_lock lock(mu_);
  return events_;
}

std::size_t MemoryRecorder::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

void MemoryRecorder::clear() {
  std::scoped_lock lock(mu_);
  events_.clear();
}

std::vector<Event> MemoryRecorder::events_of(EventKind kind) const {
  std::scoped_lock lock(mu_);
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

namespace {

// Stable track id: machines first, then directed links.  Cluster sizes
// are small (the paper used 2-8 nodes), so src*4096+dst never collides
// with a machine id.
std::uint64_t track_tid(const Event& e) {
  if (e.track == TrackKind::Machine) return e.machine;
  return 1ull << 20 | (static_cast<std::uint64_t>(e.machine) << 12) | e.peer;
}

std::string track_name(const Event& e) {
  if (e.track == TrackKind::Machine) {
    if (e.machine == kCompilerTrack) return "compiler";
    return "machine " + std::to_string(e.machine);
  }
  return "link " + std::to_string(e.machine) + "->" + std::to_string(e.peer);
}

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

// Virtual nanoseconds -> trace_event microseconds (fixed 3 decimals keeps
// the output deterministic across platforms).
std::string micros(std::int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<Event>& events,
                              const CallsiteNameFn& name) {
  // Group per track and sort by virtual start so each track is monotone.
  std::vector<const Event*> sorted;
  sorted.reserve(events.size());
  for (const Event& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) {
                     const auto ta = track_tid(*a);
                     const auto tb = track_tid(*b);
                     if (ta != tb) return ta < tb;
                     return a->start_ns < b->start_ns;
                   });

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) out.push_back(',');
    first = false;
    out += obj;
  };

  // Track-name metadata, one per distinct track.
  std::uint64_t last_tid = ~0ull;
  for (const Event* e : sorted) {
    const std::uint64_t tid = track_tid(*e);
    if (tid == last_tid) continue;
    last_tid = tid;
    std::string meta = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                       "\"tid\":" + std::to_string(tid) + ",\"args\":{\"name\":\"";
    append_escaped(meta, track_name(*e));
    meta += "\"}}";
    emit(meta);
  }

  for (const Event* e : sorted) {
    std::string obj = "{\"name\":\"";
    append_escaped(obj, to_string(e->kind));
    if (e->callsite != Event::kNoCallsite) {
      std::string site = name ? name(e->callsite)
                              : "site " + std::to_string(e->callsite);
      obj += " ";
      append_escaped(obj, site);
    }
    obj += "\",\"cat\":\"";
    obj += e->track == TrackKind::Machine ? "machine" : "link";
    obj += "\",\"pid\":0,\"tid\":" + std::to_string(track_tid(*e));
    obj += ",\"ts\":" + micros(e->start_ns);
    if (e->dur_ns > 0) {
      obj += ",\"ph\":\"X\",\"dur\":" + micros(e->dur_ns);
    } else {
      obj += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    obj += ",\"args\":{";
    obj += "\"seq\":" + std::to_string(e->seq);
    if (e->bytes != 0) obj += ",\"bytes\":" + std::to_string(e->bytes);
    if (e->count != 0) obj += ",\"messages\":" + std::to_string(e->count);
    if (e->reuse_hits != 0) {
      obj += ",\"reuse_hits\":" + std::to_string(e->reuse_hits);
    }
    if (e->cycle_lookups != 0) {
      obj += ",\"cycle_lookups\":" + std::to_string(e->cycle_lookups);
    }
    if (e->real_ns != 0) obj += ",\"real_ns\":" + std::to_string(e->real_ns);
    obj += "}}";
    emit(obj);
  }
  out += "]}";
  return out;
}

}  // namespace rmiopt::trace
