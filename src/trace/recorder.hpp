// MemoryRecorder: the default Recorder implementation, plus the Chrome
// trace_event JSON exporter.
//
// MemoryRecorder buffers every event in memory (a mutex-guarded vector —
// tracing is an observability tool, not a hot path).  Export produces the
// Chrome/Perfetto `trace_event` JSON format: one named track per machine
// ("machine N") and one per directed link ("link S->D"), complete ("X")
// events for spans and instant ("i") events for point happenings, all
// stamped in virtual microseconds.  Load the file in chrome://tracing or
// https://ui.perfetto.dev to see where a run's virtual time went.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace rmiopt::trace {

// Resolves a call-site id to a human-readable name for export; may be
// empty (ids are printed raw).
using CallsiteNameFn = std::function<std::string(std::uint32_t)>;

class MemoryRecorder final : public Recorder {
 public:
  void record(const Event& e) noexcept override;

  std::vector<Event> events() const;  // snapshot copy
  std::size_t size() const;
  void clear();

  // Events of one kind (convenience for tests/benches).
  std::vector<Event> events_of(EventKind kind) const;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// Serializes `events` as Chrome trace_event JSON.  Events are grouped
// into per-track timelines and sorted by virtual start within each track,
// so every track's timestamps are monotone (scripts/validate_trace.py
// checks exactly this invariant in CI).
std::string chrome_trace_json(const std::vector<Event>& events,
                              const CallsiteNameFn& name = {});

}  // namespace rmiopt::trace
