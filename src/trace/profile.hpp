// Per-call-site profiling over a recorded trace.
//
// The paper's Tables 4/6/8 aggregate whole runs; the profile here keeps
// the per-invocation distribution instead: for every static call site it
// reports how many invocations completed, the p50/p95/max *virtual*
// latency a caller perceived, the wire bytes moved, and the reuse-cache /
// cycle-table activity — the per-callsite lens for "which site regressed
// when the optimization level changed".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace rmiopt::trace {

struct CallsiteProfile {
  std::uint32_t callsite = 0;
  std::uint64_t invocations = 0;  // completed Call + LocalCall spans
  std::uint64_t remote = 0;       // Call spans only
  std::uint64_t bytes = 0;        // request + reply wire bytes
  std::uint64_t reuse_hits = 0;   // reuse-cache hits across all passes
  std::uint64_t cycle_lookups = 0;
  std::int64_t p50_ns = 0;  // virtual caller-perceived latency quantiles
  std::int64_t p95_ns = 0;
  std::int64_t max_ns = 0;
};

// Builds one profile row per call site seen in `events`, ordered by call
// site id.  Quantiles use deterministic nearest-rank indexing.
std::vector<CallsiteProfile> build_profile(const std::vector<Event>& events);

// Renders the profile as a text table (same family as the bench tables).
std::string render_profile(const std::vector<CallsiteProfile>& rows,
                           const CallsiteNameFn& name = {});

}  // namespace rmiopt::trace
