#include "trace/profile.hpp"

#include <algorithm>
#include <map>

#include "support/table.hpp"

namespace rmiopt::trace {

namespace {

struct Accum {
  CallsiteProfile row;
  std::vector<std::int64_t> latencies;
};

// Deterministic nearest-rank quantile over a sorted sample.
std::int64_t quantile(const std::vector<std::int64_t>& sorted, int pct) {
  if (sorted.empty()) return 0;
  const std::size_t idx = (sorted.size() - 1) * static_cast<std::size_t>(pct) / 100;
  return sorted[idx];
}

}  // namespace

std::vector<CallsiteProfile> build_profile(const std::vector<Event>& events) {
  std::map<std::uint32_t, Accum> by_site;  // ordered by call site id
  for (const Event& e : events) {
    if (e.callsite == Event::kNoCallsite) continue;
    Accum& a = by_site[e.callsite];
    a.row.callsite = e.callsite;
    switch (e.kind) {
      case EventKind::Call:
        ++a.row.remote;
        [[fallthrough]];
      case EventKind::LocalCall:
        ++a.row.invocations;
        a.row.bytes += e.bytes;
        a.latencies.push_back(e.dur_ns);
        break;
      case EventKind::Serialize:
      case EventKind::Deserialize:
        a.row.reuse_hits += e.reuse_hits;
        a.row.cycle_lookups += e.cycle_lookups;
        break;
      default:
        break;
    }
  }
  std::vector<CallsiteProfile> rows;
  rows.reserve(by_site.size());
  for (auto& [site, a] : by_site) {
    std::sort(a.latencies.begin(), a.latencies.end());
    a.row.p50_ns = quantile(a.latencies, 50);
    a.row.p95_ns = quantile(a.latencies, 95);
    a.row.max_ns = a.latencies.empty() ? 0 : a.latencies.back();
    rows.push_back(a.row);
  }
  return rows;
}

std::string render_profile(const std::vector<CallsiteProfile>& rows,
                           const CallsiteNameFn& name) {
  TextTable t({"call site", "invocations", "remote", "p50 (us)", "p95 (us)",
               "max (us)", "bytes", "reuse hits", "cycle lookups"});
  for (const CallsiteProfile& r : rows) {
    t.add_row({name ? name(r.callsite) : "site " + std::to_string(r.callsite),
               std::to_string(r.invocations), std::to_string(r.remote),
               fmt_fixed(static_cast<double>(r.p50_ns) / 1000.0, 2),
               fmt_fixed(static_cast<double>(r.p95_ns) / 1000.0, 2),
               fmt_fixed(static_cast<double>(r.max_ns) / 1000.0, 2),
               std::to_string(r.bytes), std::to_string(r.reuse_hits),
               std::to_string(r.cycle_lookups)});
  }
  return t.render();
}

}  // namespace rmiopt::trace
