// Virtual-time tracing: the event model and the Recorder hook.
//
// Every layer of the communication stack can report what it did as an
// Event stamped with the simulator's virtual clock: the RMI runtime emits
// invocation/handler/admission events, the serializers emit per-pass
// events (with a measured *real-time* duration alongside the virtual
// one), the session layer emits enqueue/frame/ARQ events, the transports
// emit flight and injected-fault events, and the receive windows emit
// dedup verdicts.  Together they reconstruct where a call's virtual time
// goes — serialize vs. wire vs. dispatch — per machine and per directed
// link (exporters: trace/recorder.hpp for Chrome trace_event JSON,
// trace/profile.hpp for the per-call-site profile table).
//
// The hook is a plain `Recorder*` that is nullptr by default, checked
// before every emission: with no recorder attached not a single event is
// constructed, no clock is read and no virtual time is charged, so every
// benchmark's output stays bit-for-bit identical to a build without
// tracing (the repo's established convention for optional machinery).
// Recording itself never advances a virtual clock either, so attaching a
// recorder changes *observability*, never the simulation.
#pragma once

#include <cstdint>
#include <string_view>

namespace rmiopt::serial {
struct CostModel;
}

namespace rmiopt::trace {

// Which timeline an event belongs to: a machine's CPU track or a
// directed src->dst link track.
enum class TrackKind : std::uint8_t { Machine, Link };

// The compiler runs before any machine exists, so its phase spans live on
// a dedicated pseudo-machine track (named "compiler" in the Chrome
// export).  Compile events are stamped with *real* nanoseconds measured
// from the pass manager's construction — the only track whose timeline is
// wall clock, not virtual time; it stays monotone because passes run
// sequentially.
inline constexpr std::uint16_t kCompilerTrack = 0xfffe;

enum class EventKind : std::uint8_t {
  // ---- RMI runtime (machine tracks) ---------------------------------------
  Call,             // one remote invocation, caller-perceived (span)
  LocalCall,        // one same-machine invocation (span)
  Serialize,        // one serializer pass (span; carries real_ns too)
  Deserialize,      // one deserializer pass (span; carries real_ns too)
  HandlerRun,       // callee-side user handler execution (span)
  ReplyDeliver,     // reply matched to its pending call (instant)
  CallTimeout,      // invocation raised RmiTimeout (instant)
  // ---- at-most-once admission (callee machine track, instant) -------------
  DuplicateDropped,  // duplicate of an in-flight call discarded
  ReplyReplayed,     // duplicate answered from the reply cache
  ReplyCachePinned,  // eviction skipped (pinned) an in-flight entry
  // ---- overload robustness (machine tracks, instant) -----------------------
  DeadlineReject,  // call refused without running: deadline already past
  CancelSent,      // caller sent a best-effort CancelRequest
  CancelHonored,   // callee abandoned a handler/reply to a cancel
  OverloadShed,    // admission control refused the newest call (caller side)
  CreditStall,     // send delayed by flow-control credit; dur = stall charged
  OnewaySend,      // fire-and-forget call sent; no reply will exist
  // ---- session / wire (link tracks) ---------------------------------------
  SessionEnqueue,  // message held back for coalescing (instant)
  FrameEmit,       // frame sealed and handed to the transport (instant)
  Retransmit,      // ARQ re-send; dur = backoff timer charged (span)
  NackTurnaround,  // receiver NACKed; dur = control round trip (span)
  Flight,          // transport traversal; dur = latency + wire time (span)
  // ---- injected faults (link tracks, instant) ------------------------------
  FaultDrop,
  FaultDuplicate,
  FaultReorder,
  FaultCorrupt,
  // ---- receive window (link tracks, instant) -------------------------------
  DedupDrop,          // duplicate/stale frame discarded by the window
  DedupLateRecovery,  // delayed frame below a forced horizon delivered
  // ---- failure detection (heartbeats on link tracks, verdicts on the
  // suspected machine's track; all instant) ----------------------------------
  Heartbeat,         // probe-round heartbeat reached the monitor
  HeartbeatMiss,     // expected heartbeat missing (crash or drop)
  MachineSuspected,  // consecutive misses crossed the suspicion threshold
  MachineDead,       // suspicion confirmed: machine declared dead (latched)
  // ---- compiler (kCompilerTrack, real-time axis) ---------------------------
  CompilePass,      // one pipeline pass executed (span; seq = PassId)
  CompileCacheHit,  // pass result served from the cache (instant; seq = PassId)
};

std::string_view to_string(EventKind k);

struct Event {
  static constexpr std::uint32_t kNoCallsite = 0xffffffffu;

  EventKind kind = EventKind::Call;
  TrackKind track = TrackKind::Machine;
  std::uint16_t machine = 0;  // machine track: the machine; link track: src
  std::uint16_t peer = 0;     // link track: dst (unused on machine tracks)
  std::int64_t start_ns = 0;  // virtual start
  std::int64_t dur_ns = 0;    // virtual duration; 0 for instant events

  // Optional dimensions; 0 / kNoCallsite when not meaningful.
  std::uint32_t callsite = kNoCallsite;
  std::uint32_t seq = 0;       // RMI sequence number or link_seq
  std::uint32_t count = 0;     // e.g. messages coalesced into a frame
  std::uint64_t bytes = 0;     // wire/payload bytes the event moved
  std::uint64_t reuse_hits = 0;      // reuse-cache hits in the pass (§3.3)
  std::uint64_t cycle_lookups = 0;   // cycle-table probes in the pass (§3.2)
  std::int64_t real_ns = 0;    // measured wall-clock duration (passes only)
};

// The hook every layer holds (as a possibly-null pointer).  Implementations
// must be thread-safe: dispatchers, executors and app threads record
// concurrently.  record() must not throw.
class Recorder {
 public:
  virtual ~Recorder() = default;
  virtual void record(const Event& e) noexcept = 0;
};

// Context for tracing one (de)serialization pass, carried by
// serial::SerialWriter / serial::SerialReader (one instance == one pass).
// The serializer emits a Serialize/Deserialize event when the pass ends:
// virtual duration from its event counts under `cost` (exactly what the
// runtime charges afterwards), real duration from a steady clock.
struct PassTrace {
  Recorder* recorder = nullptr;  // null => the pass is not traced
  EventKind kind = EventKind::Serialize;
  std::uint16_t machine = 0;
  std::uint32_t callsite = Event::kNoCallsite;
  std::uint32_t seq = 0;
  std::int64_t virtual_start_ns = 0;
  const serial::CostModel* cost = nullptr;
};

}  // namespace rmiopt::trace
