// The simulated cluster: N machines plus the Myrinet-like network model.
//
// send() charges the sender's CPU for the GM send descriptor, computes the
// arrival time from one-way latency plus the message's wire size over the
// modelled bandwidth, and delivers the message to the destination inbox.
// Payload bytes are moved, never copied — the copy cost is charged
// virtually by the serializer's cost model.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "net/machine.hpp"

namespace rmiopt::net {

struct NetworkStats {
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
};

class Cluster {
 public:
  Cluster(std::size_t machine_count, const om::TypeRegistry& types,
          const serial::CostModel& cost = {});

  std::size_t size() const { return machines_.size(); }
  Machine& machine(std::size_t i) { return *machines_.at(i); }
  const serial::CostModel& cost() const { return cost_; }

  // Sends `msg` from its header's source machine to its dest machine.
  void send(wire::Message msg);

  // Closes every machine's inbox (dispatchers drain and stop).
  void shutdown();

  const NetworkStats& stats() const { return net_stats_; }

  // Virtual makespan: the maximum clock across machines — the cluster-wide
  // "wall time" a benchmark reports.
  SimTime makespan() const;

 private:
  serial::CostModel cost_;
  std::vector<std::unique_ptr<Machine>> machines_;
  NetworkStats net_stats_;
};

}  // namespace rmiopt::net
