// The simulated cluster: N machines, one session per directed link, and a
// pluggable transport backend.
//
// send() routes a message through the (src,dst) session — which stamps
// the link sequence and applies the optional coalescing policy — and the
// resulting frames through the transport, which charges the sender's CPU
// for the GM send descriptor, computes the arrival time from one-way
// latency plus the frame's wire size over the modelled bandwidth, and
// delivers to the destination inbox.  Payload bytes are moved, never
// copied — the copy cost is charged virtually by the serializer's cost
// model.
#pragma once

#include <memory>
#include <vector>

#include "net/failure_detector.hpp"
#include "net/fault.hpp"
#include "net/machine.hpp"
#include "net/transport.hpp"
#include "wire/session.hpp"

namespace rmiopt::net {

class Cluster {
 public:
  // With a non-trivial `faults` plan the chosen backend is wrapped in a
  // FaultyTransport and the plan executed; an all-zero plan (the default)
  // leaves the backend bare and the byte stream bit-for-bit identical to
  // a build without fault support.  An enabled `detector` config adds the
  // heartbeat failure detector: sends then poll probe rounds and fail
  // fast (MachineDeadError) once an endpoint is confirmed dead.
  Cluster(std::size_t machine_count, const om::TypeRegistry& types,
          const serial::CostModel& cost = {},
          TransportKind transport = TransportKind::Sim,
          const wire::SessionConfig& session = {},
          const FaultPlan& faults = {},
          const FailureDetectorConfig& detector = {});

  std::size_t size() const { return machines_.size(); }
  Machine& machine(std::size_t i) { return *machines_.at(i); }
  const serial::CostModel& cost() const { return cost_; }

  // Sends `msg` from its header's source machine to its dest machine.
  // With a coalescing session config, small replies may be held back
  // until a flush trigger (a Call on the same link, a full queue, or an
  // explicit flush()).  Throws ProtocolError when the link's ARQ exhausts
  // its retransmit budget (only possible under an active fault plan), or
  // the typed MachineDeadError subclass as soon as the failure detector
  // confirms either endpoint dead — in-ARQ frames included, so a call to
  // a dead machine fails in detection time, not retransmit-budget time.
  void send(wire::Message msg);

  // The failure detector (nullptr unless an enabled config was passed at
  // construction).  Callers outside the send path — e.g. an RMI caller
  // blocked on a reply — poll() it with makespan() so deaths are declared
  // even when no new traffic flows.
  FailureDetector* detector() { return detector_.get(); }
  const FailureDetector* detector() const { return detector_.get(); }

  // Forces every session's held-back messages out.
  void flush();

  // Messages currently held back in session coalescing queues, summed over
  // every directed link.  Zero after a flush; the runtime's stop() asserts
  // nothing is left stranded at shutdown.
  std::size_t queued_messages() const;

  // Flushes, then closes every machine's inbox (dispatchers drain and
  // stop).
  void shutdown();

  // Aggregated traffic over every transport this cluster drives, plus
  // the machines' receive-window health counters.
  NetworkStats::Snapshot stats() const;

  // The backend itself (per-transport stats, name).
  Transport& transport() { return *transport_; }
  const Transport& transport() const { return *transport_; }

  // Attaches a trace recorder to every layer the cluster owns — machines
  // (dedup verdicts), sessions (enqueue/frames/ARQ) and the transport
  // (flights, injected faults).  nullptr detaches.  Call before traffic
  // flows; the RMI runtime reads recorder() for its own spans.
  void set_recorder(trace::Recorder* recorder);
  trace::Recorder* recorder() const { return recorder_; }

  // Virtual makespan: the maximum clock across machines — the cluster-wide
  // "wall time" a benchmark reports.
  SimTime makespan() const;

 private:
  wire::Session& session(std::uint16_t src, std::uint16_t dst);
  // Throws MachineDeadError when the detector has confirmed either
  // endpoint dead.  Only called with detector_ present.
  void fail_if_dead(std::uint16_t src, std::uint16_t dst) const;

  serial::CostModel cost_;
  trace::Recorder* recorder_ = nullptr;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<FailureDetector> detector_;
  std::vector<std::unique_ptr<Machine>> machines_;
  // Directed links, indexed src * size() + dst; the src == dst diagonal
  // is unused (local RMIs never reach the network).
  std::vector<std::unique_ptr<wire::Session>> sessions_;
};

}  // namespace rmiopt::net
