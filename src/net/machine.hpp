// A simulated cluster node: heap + virtual clock + message inbox.
//
// Receive semantics follow the paper's modified GM (§5): the runtime polls
// the network from user level when it has nothing else to do; a message
// that was already pending when the receiver looked costs only a poll
// (recv_poll_ns), while a message the receiver had to *wait* for wakes the
// blocked kernel poll thread (poll_wakeup_ns) and merges the arrival time
// into the receiver's clock.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "net/clock.hpp"
#include "objmodel/heap.hpp"
#include "serial/cost_model.hpp"
#include "support/frame_pool.hpp"
#include "trace/trace.hpp"
#include "wire/protocol.hpp"
#include "wire/session.hpp"

namespace rmiopt::net {

struct Envelope {
  wire::Message msg;
  SimTime arrival;  // virtual time the message reaches the receiver's NIC
};

class Machine {
 public:
  Machine(std::uint16_t id, const om::TypeRegistry& types,
          const serial::CostModel& cost)
      : id_(id), heap_(types), cost_(cost) {}
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  std::uint16_t id() const { return id_; }
  om::Heap& heap() { return heap_; }
  VirtualClock& clock() { return clock_; }
  const serial::CostModel& cost() const { return cost_; }

  // Receive-ring freelist for the zero-copy delivery path; transports
  // acquire a block here when CostModel::zero_copy_receive is on.  Only
  // ever touched with the knob on, so its counters stay zero otherwise.
  support::FramePool& frame_pool() { return pool_; }
  const support::FramePool& frame_pool() const { return pool_; }

  // Called by the cluster: enqueue a message that arrives at `arrival`.
  void deliver(wire::Message msg, SimTime arrival);

  // Receive-side NIC dedup: classifies `link_seq` of a frame arriving
  // from `src` against this machine's per-source sliding window.  Only a
  // Fresh verdict may be delivered; Duplicate (ARQ retransmit or injected
  // copy) and Stale (reordered copy behind the window) must be discarded
  // by the transport.
  wire::DedupWindow::Verdict accept_link_seq(std::uint16_t src,
                                             std::uint64_t link_seq);

  // Blocks until a message is available or the machine is closed.
  // Applies the GM poll/wakeup cost model to the virtual clock.
  std::optional<Envelope> receive_blocking();

  // After close(), receive_blocking drains the queue and then returns
  // nullopt.
  void close();

  std::size_t pending_messages() const;

  // Attaches a trace recorder (nullptr detaches); dedup verdicts on this
  // machine's receive windows become DedupDrop / DedupLateRecovery events.
  void set_recorder(trace::Recorder* recorder);

  // Receive-window health, aggregated over all source links.
  struct DedupCounters {
    std::uint64_t forced_slides = 0;
    std::uint64_t late_recoveries = 0;
    std::uint64_t skipped_expired = 0;
  };
  DedupCounters dedup_counters() const;

 private:
  const std::uint16_t id_;
  om::Heap heap_;
  VirtualClock clock_;
  const serial::CostModel& cost_;
  support::FramePool pool_;

  trace::Recorder* recorder_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> inbox_;
  std::unordered_map<std::uint16_t, wire::DedupWindow> dedup_;  // by source
  bool closed_ = false;
  // Virtual time of the last receive: a host that drained the network
  // recently is considered to be polling (no kernel wakeup charge).
  SimTime last_receive_;
};

}  // namespace rmiopt::net
