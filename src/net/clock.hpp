// Per-machine virtual clock.
//
// Each simulated machine is single-CPU (the paper's nodes were 1 GHz
// Pentium IIIs), so CPU work done by any thread of a machine *adds* to its
// clock, and message arrival *merges* (max) the sender-determined arrival
// time into it.  advance() from concurrent threads therefore models the
// serialization of work on one CPU, which is exactly right for the
// simulation.
#pragma once

#include <mutex>

#include "support/sim_time.hpp"

namespace rmiopt::net {

class VirtualClock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  void advance(SimTime d) {
    std::scoped_lock lock(mu_);
    now_ += d;
  }

  // now = max(now, t); returns true if the clock had to jump forward
  // (i.e. the event was waited for rather than already past).
  bool merge_at_least(SimTime t) {
    std::scoped_lock lock(mu_);
    if (now_ < t) {
      now_ = t;
      return true;
    }
    return false;
  }

  SimTime now() const {
    std::scoped_lock lock(mu_);
    return now_;
  }

  void reset() {
    std::scoped_lock lock(mu_);
    now_ = SimTime();
  }

 private:
  mutable std::mutex mu_;
  SimTime now_;
};

}  // namespace rmiopt::net
