#include "net/transport.hpp"

#include <algorithm>

#include "net/machine.hpp"
#include "support/error.hpp"
#include "support/frame_pool.hpp"

namespace rmiopt::net {

SimTime Transport::charge_and_schedule(Machine& sender,
                                       std::size_t charged_bytes) {
  sender.clock().advance(SimTime::nanos(cost_.send_overhead_ns));
  // GM fragments frames larger than one MTU; every fragment after the
  // first adds pipeline overhead to the arrival time.
  const std::int64_t extra_fragments =
      cost_.fragment_bytes > 0
          ? static_cast<std::int64_t>(charged_bytes) / cost_.fragment_bytes
          : 0;
  return sender.clock().now() + SimTime::nanos(cost_.msg_latency_ns) +
         cost_.for_wire_bytes(charged_bytes) +
         SimTime::nanos(extra_fragments * cost_.fragment_overhead_ns);
}

void Transport::probe_frame(const Machine& sender, const Machine& receiver,
                            const wire::Frame& frame) {
  if (frame_probe_) frame_probe_(sender.id(), receiver.id(), frame);
}

void Transport::trace_flight(Machine& sender, const Machine& receiver,
                             const wire::Frame& frame,
                             std::size_t charged_bytes, SimTime arrival) {
  if (recorder_ == nullptr) return;
  trace::Event e;
  e.kind = trace::EventKind::Flight;
  e.track = trace::TrackKind::Link;
  e.machine = sender.id();
  e.peer = receiver.id();
  e.start_ns = sender.clock().now().as_nanos();
  e.dur_ns = std::max<std::int64_t>(arrival.as_nanos() - e.start_ns, 0);
  e.seq = static_cast<std::uint32_t>(frame.link_seq);
  e.count = static_cast<std::uint32_t>(frame.messages.size());
  e.bytes = charged_bytes;
  recorder_->record(e);
}

void Transport::trace_instant(trace::EventKind kind, Machine& sender,
                              const Machine& receiver,
                              std::uint64_t link_seq) {
  if (recorder_ == nullptr) return;
  trace::Event e;
  e.kind = kind;
  e.track = trace::TrackKind::Link;
  e.machine = sender.id();
  e.peer = receiver.id();
  e.start_ns = sender.clock().now().as_nanos();
  e.seq = static_cast<std::uint32_t>(link_seq);
  recorder_->record(e);
}

wire::SendOutcome SimTransport::submit(Machine& sender, Machine& receiver,
                                       const wire::Frame& frame) {
  const std::size_t charged = frame.charged_bytes();
  record(frame.messages.size(), charged);
  stats_.record_gathered(gathered_count(frame));
  const SimTime arrival = charge_and_schedule(sender, charged);
  trace_flight(sender, receiver, frame, charged, arrival);
  probe_frame(sender, receiver, frame);

  // Physical transmission: only the byte image crosses the "wire".  For
  // gathered payloads encode_frame walks the segment list — this is where
  // the NIC concatenates the iovec.
  ByteBuffer image;
  if (cost_.zero_copy_receive) {
    // Zero-copy receive: the image lands in a pooled buffer from the
    // receiver's ring, and decode hands every message a pinned view into
    // it instead of a per-message copy.  The block recycles when the last
    // payload view (or borrowing object) releases it; a dedup-rejected
    // duplicate drops its ref right here when `image` dies.
    support::FramePool::BlockRef block =
        receiver.frame_pool().acquire(charged + 32);
    wire::encode_frame_into(frame, block->bytes);
    const std::uint8_t* data = block->bytes.data();
    const std::size_t size = block->bytes.size();
    image = ByteBuffer::view(data, size, std::move(block));
  } else {
    image = wire::encode_frame(frame);
  }
  wire::Frame received;
  try {
    received = wire::decode_frame(image);
  } catch (const DecodeError&) {
    // A frame this backend itself encoded cannot fail to decode unless
    // something corrupted it in flight; fail closed and let ARQ resend.
    stats_.record_corrupted();
    return wire::SendOutcome::Nacked;
  }

  // Receiver-NIC dedup: a retransmitted or injected copy of a frame the
  // receiver already has is acknowledged but not delivered again.
  if (receiver.accept_link_seq(sender.id(), received.link_seq) !=
      wire::DedupWindow::Verdict::Fresh) {
    stats_.record_dedup_hit();
    return wire::SendOutcome::Delivered;
  }

  for (wire::Message& msg : received.messages) {
    receiver.deliver(std::move(msg), arrival);
  }
  return wire::SendOutcome::Delivered;
}

wire::SendOutcome LoopbackTransport::submit(Machine& sender,
                                            Machine& receiver,
                                            const wire::Frame& frame) {
  const std::size_t charged = frame.charged_bytes();
  record(frame.messages.size(), charged);
  stats_.record_gathered(gathered_count(frame));
  const SimTime arrival = charge_and_schedule(sender, charged);
  trace_flight(sender, receiver, frame, charged, arrival);
  probe_frame(sender, receiver, frame);
  if (receiver.accept_link_seq(sender.id(), frame.link_seq) !=
      wire::DedupWindow::Verdict::Fresh) {
    stats_.record_dedup_hit();
    return wire::SendOutcome::Delivered;
  }
  for (const wire::Message& msg : frame.messages) {
    wire::Message copy;
    copy.header = msg.header;
    // Gathered payloads pass through as segments all the way to delivery;
    // the receive side only ever sees contiguous bytes, so concatenate
    // here, at this backend's NIC boundary.
    if (cost_.zero_copy_receive) {
      // Zero-copy receive: this backend's NIC boundary writes the payload
      // into a pooled buffer from the receiver's ring and delivers a
      // pinned view (one block per message — struct delivery has no frame
      // image for messages to share).
      support::FramePool::BlockRef block =
          receiver.frame_pool().acquire(msg.payload_size());
      if (msg.gathered) {
        msg.gathered->for_each_segment(
            [&](const std::uint8_t* d, std::size_t n) {
              block->bytes.insert(block->bytes.end(), d, d + n);
            });
      } else {
        const auto contents = msg.payload.contents();
        block->bytes.assign(contents.begin(), contents.end());
      }
      const std::uint8_t* data = block->bytes.data();
      const std::size_t size = block->bytes.size();
      copy.payload = ByteBuffer::view(data, size, std::move(block));
    } else {
      copy.payload = msg.gathered
                         ? ByteBuffer(msg.gathered->gather())
                         : ByteBuffer(std::vector<std::uint8_t>(
                               msg.payload.contents().begin(),
                               msg.payload.contents().end()));
    }
    receiver.deliver(std::move(copy), arrival);
  }
  return wire::SendOutcome::Delivered;
}

// ---- FaultyTransport --------------------------------------------------------

FaultyTransport::FaultyTransport(const serial::CostModel& cost,
                                 std::unique_ptr<Transport> inner,
                                 FaultPlan plan)
    : Transport(cost),
      plan_(std::move(plan)),
      inner_(std::move(inner)),
      name_("faulty(" + std::string(inner_->name()) + ")") {}

FaultyTransport::LinkState& FaultyTransport::link_state(std::uint16_t src,
                                                        std::uint16_t dst) {
  return links_[FaultPlan::link_key(src, dst)];
}

wire::SendOutcome FaultyTransport::submit(Machine& sender, Machine& receiver,
                                          const wire::Frame& frame) {
  const std::uint16_t src = sender.id();
  const std::uint16_t dst = receiver.id();

  // Attempt bookkeeping: stop-and-wait under the session lock means a
  // link's retransmits are consecutive submits of the same link_seq.
  std::uint32_t attempt = 0;
  std::unique_ptr<wire::Frame> late_release;
  {
    std::scoped_lock lock(mu_);
    LinkState& st = link_state(src, dst);
    if (st.last_seq == frame.link_seq) {
      attempt = ++st.attempt;
    } else {
      st.last_seq = frame.link_seq;
      st.attempt = 0;
    }
    // A copy held back for reordering arrives late: behind this (newer)
    // frame.  Take it out under the lock, deliver it after the new frame.
    if (st.late != nullptr && st.late->link_seq != frame.link_seq) {
      late_release = std::move(st.late);
    }
  }
  if (attempt > 0) stats_.record_retransmit();

  // A crashed machine neither sends nor receives: the frame vanishes and
  // the sender's ARQ times out.  (Charging the attempt would perturb the
  // sender's clock for traffic that never left a dead NIC, so crashes are
  // silent on the wire; the ARQ backoff timers are still charged by the
  // session.)
  if (plan_.crashed(dst, receiver.clock().now().as_nanos()) ||
      plan_.crashed(src, sender.clock().now().as_nanos())) {
    stats_.record_dropped();
    stats_.record_timeout();
    return wire::SendOutcome::Timeout;
  }

  SplitMix64 dice = plan_.dice(src, dst, frame.link_seq, attempt);
  const LinkFaults& faults = plan_.link(src, dst);

  // Corruption: the byte image is damaged in flight; the receiver's
  // checksum rejects it and NACKs.  The wasted transmission is charged
  // like any other frame (bytes crossed the wire; nothing was delivered).
  if (dice.next_double() < faults.corrupt) {
    stats_.record_corrupted();
    trace_instant(trace::EventKind::FaultCorrupt, sender, receiver,
                  frame.link_seq);
    record(0, frame.charged_bytes());
    (void)charge_and_schedule(sender, frame.charged_bytes());
    // Demonstrate the fail-closed path end to end: flip one bit of the
    // real image and insist the decoder rejects it.
    ByteBuffer image = wire::encode_frame(frame);
    std::vector<std::uint8_t> bytes(std::move(image).take());
    const std::size_t bit = static_cast<std::size_t>(
        dice.next_below(bytes.size() * 8));
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ByteBuffer damaged(std::move(bytes));
    try {
      (void)wire::decode_frame(damaged);
      // A flip the checksum failed to catch would be a decoder bug; the
      // 32-bit FNV residual makes this unreachable in practice.
    } catch (const DecodeError&) {
      // expected: rejected, never decoded into the runtime
    }
    return wire::SendOutcome::Nacked;
  }

  // Drop: the frame is lost; the sender's only signal is silence.  The
  // send-descriptor cost was still paid.
  if (dice.next_double() < faults.drop) {
    stats_.record_dropped();
    stats_.record_timeout();
    trace_instant(trace::EventKind::FaultDrop, sender, receiver,
                  frame.link_seq);
    record(0, frame.charged_bytes());
    (void)charge_and_schedule(sender, frame.charged_bytes());
    return wire::SendOutcome::Timeout;
  }

  const bool duplicate = dice.next_double() < faults.duplicate;
  const bool reorder = dice.next_double() < faults.reorder;

  const wire::SendOutcome out = inner_->submit(sender, receiver, frame);

  if (duplicate) {
    stats_.record_duplicated();
    trace_instant(trace::EventKind::FaultDuplicate, sender, receiver,
                  frame.link_seq);
    (void)inner_->submit(sender, receiver, frame);  // window discards it
  }
  if (reorder) {
    // Hold a stale copy; it arrives behind the next frame on this link —
    // the only reordering a stop-and-wait link can exhibit (in-order
    // delivery of *fresh* frames is guaranteed by the ARQ itself).
    std::scoped_lock lock(mu_);
    link_state(src, dst).late = std::make_unique<wire::Frame>(frame);
  }
  if (late_release != nullptr) {
    stats_.record_reordered();
    trace_instant(trace::EventKind::FaultReorder, sender, receiver,
                  late_release->link_seq);
    (void)inner_->submit(sender, receiver, *late_release);  // stale: dedup
  }
  return out;
}

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const serial::CostModel& cost) {
  switch (kind) {
    case TransportKind::Sim:
      return std::make_unique<SimTransport>(cost);
    case TransportKind::Loopback:
      return std::make_unique<LoopbackTransport>(cost);
  }
  RMIOPT_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace rmiopt::net
