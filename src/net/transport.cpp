#include "net/transport.hpp"

#include "net/machine.hpp"
#include "support/error.hpp"

namespace rmiopt::net {

SimTime Transport::charge_and_schedule(Machine& sender,
                                       std::size_t charged_bytes) {
  sender.clock().advance(SimTime::nanos(cost_.send_overhead_ns));
  // GM fragments frames larger than one MTU; every fragment after the
  // first adds pipeline overhead to the arrival time.
  const std::int64_t extra_fragments =
      cost_.fragment_bytes > 0
          ? static_cast<std::int64_t>(charged_bytes) / cost_.fragment_bytes
          : 0;
  return sender.clock().now() + SimTime::nanos(cost_.msg_latency_ns) +
         cost_.for_wire_bytes(charged_bytes) +
         SimTime::nanos(extra_fragments * cost_.fragment_overhead_ns);
}

void SimTransport::submit(Machine& sender, Machine& receiver,
                          wire::Frame frame) {
  const std::size_t charged = frame.charged_bytes();
  record(frame.messages.size(), charged);
  const SimTime arrival = charge_and_schedule(sender, charged);

  // Physical transmission: only the byte image crosses the "wire".
  ByteBuffer image = wire::encode_frame(frame);
  wire::Frame received = wire::decode_frame(image);

  // Receiver-NIC ordering check: the session stamps frames per link and
  // emits them under its lock, so they must arrive strictly in order.
  {
    const std::uint32_t link =
        (static_cast<std::uint32_t>(sender.id()) << 16) | receiver.id();
    std::scoped_lock lock(link_mu_);
    std::uint64_t& expected = next_link_seq_[link];
    RMIOPT_CHECK(received.link_seq == expected,
                 "frame reordered on link: got seq " +
                     std::to_string(received.link_seq) + ", expected " +
                     std::to_string(expected));
    ++expected;
  }

  for (wire::Message& msg : received.messages) {
    receiver.deliver(std::move(msg), arrival);
  }
}

void LoopbackTransport::submit(Machine& sender, Machine& receiver,
                               wire::Frame frame) {
  const std::size_t charged = frame.charged_bytes();
  record(frame.messages.size(), charged);
  const SimTime arrival = charge_and_schedule(sender, charged);
  for (wire::Message& msg : frame.messages) {
    receiver.deliver(std::move(msg), arrival);
  }
}

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const serial::CostModel& cost) {
  switch (kind) {
    case TransportKind::Sim:
      return std::make_unique<SimTransport>(cost);
    case TransportKind::Loopback:
      return std::make_unique<LoopbackTransport>(cost);
  }
  RMIOPT_CHECK(false, "unknown transport kind");
  return nullptr;
}

}  // namespace rmiopt::net
