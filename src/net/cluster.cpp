#include "net/cluster.hpp"

#include "support/error.hpp"

namespace rmiopt::net {

Cluster::Cluster(std::size_t machine_count, const om::TypeRegistry& types,
                 const serial::CostModel& cost, TransportKind transport,
                 const wire::SessionConfig& session, const FaultPlan& faults,
                 const FailureDetectorConfig& detector)
    : cost_(cost), transport_(make_transport(transport, cost_)) {
  RMIOPT_CHECK(machine_count >= 1, "cluster needs at least one machine");
  if (faults.enabled()) {
    transport_ = std::make_unique<FaultyTransport>(cost_,
                                                   std::move(transport_),
                                                   faults);
  }
  if (detector.enabled) {
    // The detector reads the crash schedule and the heartbeat-drop dice
    // straight from the installed plan (null when the plan is inert: every
    // expected probe then hits and no machine is ever declared dead).
    const auto* faulty = dynamic_cast<FaultyTransport*>(transport_.get());
    detector_ = std::make_unique<FailureDetector>(
        detector, machine_count, faulty != nullptr ? &faulty->plan() : nullptr);
  }
  machines_.reserve(machine_count);
  for (std::size_t i = 0; i < machine_count; ++i) {
    machines_.push_back(std::make_unique<Machine>(
        static_cast<std::uint16_t>(i), types, cost_));
  }
  sessions_.resize(machine_count * machine_count);
  for (std::size_t s = 0; s < machine_count; ++s) {
    for (std::size_t d = 0; d < machine_count; ++d) {
      if (s == d) continue;
      // Retransmit/NACK timers are virtual time the *sender* spends
      // waiting, so the session charges them to the source machine.
      Machine& src = *machines_[s];
      sessions_[s * machine_count + d] = std::make_unique<wire::Session>(
          static_cast<std::uint16_t>(s), static_cast<std::uint16_t>(d),
          session, [&src](std::int64_t nanos) {
            src.clock().advance(SimTime::nanos(nanos));
          });
    }
  }
}

wire::Session& Cluster::session(std::uint16_t src, std::uint16_t dst) {
  return *sessions_[static_cast<std::size_t>(src) * machines_.size() + dst];
}

void Cluster::send(wire::Message msg) {
  const auto src = msg.header.source_machine;
  const auto dst = msg.header.dest_machine;
  RMIOPT_CHECK(src < machines_.size() && dst < machines_.size(),
               "message addressed to unknown machine");
  RMIOPT_CHECK(src != dst, "loopback messages do not cross the network");

  Machine& sender = *machines_[src];
  Machine& receiver = *machines_[dst];
  // Fast-fail: the sender's clock drives the probe rounds, and traffic to
  // (or from) a confirmed-dead machine is refused before it queues.
  if (detector_ != nullptr) {
    detector_->poll(sender.clock().now());
    fail_if_dead(src, dst);
  }
  // The sink runs under the session lock, so one link's frames reach the
  // transport — and the receiver's inbox — in link_seq order even when
  // several threads send concurrently.
  session(src, dst).post(std::move(msg), [&](const wire::Frame& frame) {
    if (detector_ != nullptr) {
      // Re-check between ARQ attempts: the backoff just charged may have
      // crossed enough probe rounds to confirm the peer dead, in which
      // case the in-flight frame is abandoned mid-budget.
      detector_->poll(sender.clock().now());
      fail_if_dead(src, dst);
    }
    return transport_->submit(sender, receiver, frame);
  });
}

void Cluster::fail_if_dead(std::uint16_t src, std::uint16_t dst) const {
  if (detector_->dead(dst)) {
    throw MachineDeadError(
        dst, "machine " + std::to_string(dst) +
                 " declared dead by the failure detector; dropping traffic "
                 "from machine " + std::to_string(src));
  }
  if (detector_->dead(src)) {
    throw MachineDeadError(
        src, "local machine " + std::to_string(src) +
                 " declared dead by the failure detector; refusing to send");
  }
}

void Cluster::flush() {
  for (std::size_t s = 0; s < machines_.size(); ++s) {
    for (std::size_t d = 0; d < machines_.size(); ++d) {
      if (s == d) continue;
      session(static_cast<std::uint16_t>(s), static_cast<std::uint16_t>(d))
          .flush([&](const wire::Frame& frame) {
            return transport_->submit(*machines_[s], *machines_[d], frame);
          });
    }
  }
}

std::size_t Cluster::queued_messages() const {
  std::size_t n = 0;
  for (const auto& s : sessions_) {
    if (s != nullptr) n += s->queued();
  }
  return n;
}

void Cluster::shutdown() {
  flush();
  for (auto& m : machines_) m->close();
}

NetworkStats::Snapshot Cluster::stats() const {
  NetworkStats::Snapshot total;
  total += transport_->stats();
  for (const auto& m : machines_) {
    const Machine::DedupCounters c = m->dedup_counters();
    total.dedup_forced_slides += c.forced_slides;
    total.dedup_late_recoveries += c.late_recoveries;
    total.dedup_skipped_expired += c.skipped_expired;
    const support::FramePool::Counters p = m->frame_pool().counters();
    total.frame_pool_hits += p.hits;
    total.frame_pool_misses += p.misses;
  }
  if (detector_ != nullptr) {
    const FailureDetector::Counters c = detector_->counters();
    total.heartbeats += c.heartbeats;
    total.heartbeat_misses += c.heartbeat_misses;
    total.suspicions += c.suspicions;
    total.machine_deaths += c.deaths;
  }
  return total;
}

void Cluster::set_recorder(trace::Recorder* recorder) {
  recorder_ = recorder;
  transport_->set_recorder(recorder);
  if (detector_ != nullptr) detector_->set_recorder(recorder);
  for (auto& m : machines_) m->set_recorder(recorder);
  for (std::size_t s = 0; s < machines_.size(); ++s) {
    for (std::size_t d = 0; d < machines_.size(); ++d) {
      if (s == d) continue;
      Machine& src = *machines_[s];
      session(static_cast<std::uint16_t>(s), static_cast<std::uint16_t>(d))
          .set_trace(recorder, [&src]() -> std::int64_t {
            return src.clock().now().as_nanos();
          });
    }
  }
}

SimTime Cluster::makespan() const {
  SimTime t;
  for (const auto& m : machines_) t = max(t, m->clock().now());
  return t;
}

}  // namespace rmiopt::net
