#include "net/cluster.hpp"

#include "support/error.hpp"

namespace rmiopt::net {

Cluster::Cluster(std::size_t machine_count, const om::TypeRegistry& types,
                 const serial::CostModel& cost)
    : cost_(cost) {
  RMIOPT_CHECK(machine_count >= 1, "cluster needs at least one machine");
  machines_.reserve(machine_count);
  for (std::size_t i = 0; i < machine_count; ++i) {
    machines_.push_back(std::make_unique<Machine>(
        static_cast<std::uint16_t>(i), types, cost_));
  }
}

void Cluster::send(wire::Message msg) {
  const auto src = msg.header.source_machine;
  const auto dst = msg.header.dest_machine;
  RMIOPT_CHECK(src < machines_.size() && dst < machines_.size(),
               "message addressed to unknown machine");
  RMIOPT_CHECK(src != dst, "loopback messages do not cross the network");

  Machine& sender = *machines_[src];
  const std::size_t bytes = msg.wire_size();

  sender.clock().advance(SimTime::nanos(cost_.send_overhead_ns));
  // GM fragments messages larger than one MTU; every fragment after the
  // first adds pipeline overhead to the arrival time.
  const std::int64_t extra_fragments =
      cost_.fragment_bytes > 0
          ? static_cast<std::int64_t>(bytes) / cost_.fragment_bytes
          : 0;
  const SimTime arrival =
      sender.clock().now() + SimTime::nanos(cost_.msg_latency_ns) +
      cost_.for_wire_bytes(bytes) +
      SimTime::nanos(extra_fragments * cost_.fragment_overhead_ns);

  net_stats_.messages.fetch_add(1, std::memory_order_relaxed);
  net_stats_.bytes.fetch_add(bytes, std::memory_order_relaxed);

  machines_[dst]->deliver(std::move(msg), arrival);
}

void Cluster::shutdown() {
  for (auto& m : machines_) m->close();
}

SimTime Cluster::makespan() const {
  SimTime t;
  for (const auto& m : machines_) t = max(t, m->clock().now());
  return t;
}

}  // namespace rmiopt::net
