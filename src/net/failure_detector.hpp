// Heartbeat-based failure detection and cluster membership.
//
// Every machine except the monitor emits one liveness heartbeat per probe
// round over a dedicated wire::Session to the monitor (machine 0 by
// default).  Rounds live on the *virtual* time axis at fixed multiples of
// `heartbeat_period_ns` and are executed lazily: any thread that observes
// the cluster's virtual clock past a round boundary runs the outstanding
// rounds, in order, under one lock.  A round's outcome for a machine is a
// pure function of (round index, the fault plan's crash schedule, the
// plan's seeded dice for the heartbeat link), never of which real thread
// happened to run it — so detection latency is deterministic seed-for-seed
// on both SimTransport and LoopbackTransport.
//
// Misses escalate: `suspect_after_misses` consecutive misses mark a
// machine Suspected, `confirm_after_misses` confirm it Dead.  Death is
// latched — a confirmed-dead machine never rejoins — and fires the
// registered callbacks exactly once (fast-fail in the RMI layer, rebinding
// in the name service).  A heartbeat is missed when the sender has crashed
// by the round time, or when the plan's seeded dice drop it on the wire
// (the same per-link drop probability app traffic sees); a hit resets the
// miss counter and clears suspicion.
//
// Heartbeats are modelled as NIC-level keepalives: they are framed through
// a real Session (stamping their own link-sequence space), but they never
// enter a machine's inbox, never charge a CPU clock, and never retransmit
// — a miss IS the protocol's signal.  This keeps the app-traffic timeline
// and its dedup windows untouched, so with the detector disabled (the
// default) nothing whatsoever changes, and with it enabled the virtual
// makespan of healthy traffic is unperturbed.
//
// Known limitation: the monitor is the membership anchor.  If the monitor
// itself crashes, probing halts and no further machine can be declared
// dead (its peers still fail over via the ARQ budget + the real-time
// backstop).  Apps that crash machines keep machine 0 alive.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "net/fault.hpp"
#include "support/sim_time.hpp"
#include "trace/trace.hpp"
#include "wire/session.hpp"

namespace rmiopt::net {

struct FailureDetectorConfig {
  bool enabled = false;
  // The machine that collects heartbeats and declares deaths.
  std::uint16_t monitor = 0;
  // Virtual time between probe rounds.  The default is one ARQ
  // retransmit timer (~ round trip + dispatch slack on the modelled GM
  // network), so detection resolves well inside one retransmit budget.
  std::int64_t heartbeat_period_ns = 40'000;
  // Consecutive misses before a machine is Suspected / confirmed Dead.
  // The confirm threshold also bounds false positives under lossy links:
  // with per-link drop rate p the chance of a spurious death per round is
  // p^confirm (6 misses at p = 0.08 is ~2.6e-7).
  std::size_t suspect_after_misses = 2;
  std::size_t confirm_after_misses = 6;

  // Worst-case detection latency: a machine that crashes just after
  // emitting round k is first missed at round k+1 and confirmed
  // `confirm_after_misses` rounds later.
  std::int64_t detection_budget_ns() const {
    return static_cast<std::int64_t>(confirm_after_misses + 1) *
           heartbeat_period_ns;
  }
};

enum class Liveness : std::uint8_t { Alive, Suspected, Dead };

class FailureDetector {
 public:
  struct Counters {
    std::uint64_t heartbeats = 0;        // probes that reached the monitor
    std::uint64_t heartbeat_misses = 0;  // expected probes that did not
    std::uint64_t suspicions = 0;        // Alive -> Suspected transitions
    std::uint64_t deaths = 0;            // machines confirmed dead

    friend bool operator==(const Counters&, const Counters&) = default;
  };

  // `declared_at` is the probe-round virtual time the death latched at.
  using DeathCallback =
      std::function<void(std::uint16_t machine, SimTime declared_at)>;

  // `plan` supplies the crash schedule and the heartbeat-drop dice;
  // nullptr (no faults installed) means every expected probe is a hit.
  // The plan must outlive the detector (the cluster owns both).
  FailureDetector(const FailureDetectorConfig& cfg, std::size_t machine_count,
                  const FaultPlan* plan);

  const FailureDetectorConfig& config() const { return cfg_; }

  // Registers a death observer.  Call before traffic flows (registration
  // is not synchronized against poll()); callbacks run outside the
  // detector lock, exactly once per machine, on whichever thread's poll
  // confirmed the death.  Callbacks must not re-enter poll().
  void on_death(DeathCallback cb);

  // Runs every probe round whose virtual time is <= now.  Cheap when no
  // round is due (one relaxed atomic load); safe to call concurrently.
  void poll(SimTime now);

  Liveness liveness(std::uint16_t machine) const;
  bool dead(std::uint16_t machine) const {
    return liveness(machine) == Liveness::Dead;
  }
  // Probe-round time the machine was confirmed dead at (SimTime() if it
  // has not been).
  SimTime declared_dead_at(std::uint16_t machine) const;

  Counters counters() const;

  // Heartbeat/suspicion/death events (nullptr detaches).  Call before
  // traffic flows.
  void set_recorder(trace::Recorder* recorder) { recorder_ = recorder; }

 private:
  struct State {
    std::size_t misses = 0;
    std::int64_t dead_at_ns = -1;
  };

  // Callers hold mu_.  Appends confirmed deaths to `deaths` instead of
  // firing callbacks inline (they run after the lock drops).
  void run_round(std::int64_t round_ns,
                 std::vector<std::pair<std::uint16_t, SimTime>>& deaths);
  void trace_instant(trace::EventKind kind, trace::TrackKind track,
                     std::uint16_t machine, std::int64_t at_ns,
                     std::uint64_t round) const;

  const FailureDetectorConfig cfg_;
  const std::size_t machines_;
  const FaultPlan* const plan_;  // may be null: no faults, all probes hit
  trace::Recorder* recorder_ = nullptr;
  std::vector<DeathCallback> callbacks_;

  // Lock-free liveness view for the fast-fail hot path (Cluster::send
  // consults it per frame attempt).
  std::unique_ptr<std::atomic<std::uint8_t>[]> liveness_;
  // Fast-exit gate: the virtual time of the next unexecuted round.
  std::atomic<std::int64_t> next_round_gate_;

  mutable std::mutex mu_;
  std::int64_t next_round_ns_;  // under mu_; mirrors next_round_gate_
  std::uint64_t round_ = 0;     // index of the next round, for the dice
  bool halted_ = false;         // monitor crashed: probing stopped
  std::vector<State> states_;
  Counters counters_;
  // One heartbeat session per monitored machine (m -> monitor): stamps a
  // dedicated link-sequence space so probe traffic can never perturb the
  // app links' ARQ attempt tracking or dedup windows.
  std::vector<std::unique_ptr<wire::Session>> sessions_;
};

}  // namespace rmiopt::net
