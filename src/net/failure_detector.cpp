#include "net/failure_detector.hpp"

#include <limits>

#include "support/error.hpp"
#include "wire/protocol.hpp"

namespace rmiopt::net {

namespace {

// Heartbeat dice roll a stream disjoint from app traffic: the source
// machine is flagged so the (src, dst) link key can never collide with a
// real directed link's.
constexpr std::uint16_t kProbeSrcFlag = 0x8000;

}  // namespace

FailureDetector::FailureDetector(const FailureDetectorConfig& cfg,
                                 std::size_t machine_count,
                                 const FaultPlan* plan)
    : cfg_(cfg),
      machines_(machine_count),
      plan_(plan),
      next_round_gate_(cfg.heartbeat_period_ns),
      next_round_ns_(cfg.heartbeat_period_ns),
      states_(machine_count) {
  RMIOPT_CHECK(cfg.monitor < machine_count,
               "failure-detector monitor is not a cluster machine");
  RMIOPT_CHECK(cfg.heartbeat_period_ns > 0,
               "heartbeat period must be positive");
  RMIOPT_CHECK(cfg.confirm_after_misses >= cfg.suspect_after_misses &&
                   cfg.suspect_after_misses > 0,
               "confirm threshold must be at or past the suspect threshold");
  liveness_ = std::make_unique<std::atomic<std::uint8_t>[]>(machine_count);
  for (std::size_t m = 0; m < machine_count; ++m) {
    liveness_[m].store(static_cast<std::uint8_t>(Liveness::Alive),
                       std::memory_order_relaxed);
  }
  sessions_.resize(machine_count);
  for (std::size_t m = 0; m < machine_count; ++m) {
    if (m == cfg_.monitor) continue;
    // Default session config, no charge function: probes are NIC-level
    // keepalives — they never advance a CPU clock and never retransmit.
    sessions_[m] = std::make_unique<wire::Session>(
        static_cast<std::uint16_t>(m), cfg_.monitor, wire::SessionConfig{});
  }
}

void FailureDetector::on_death(DeathCallback cb) {
  callbacks_.push_back(std::move(cb));
}

Liveness FailureDetector::liveness(std::uint16_t machine) const {
  if (machine >= machines_) return Liveness::Alive;
  return static_cast<Liveness>(liveness_[machine].load(
      std::memory_order_acquire));
}

SimTime FailureDetector::declared_dead_at(std::uint16_t machine) const {
  std::scoped_lock lock(mu_);
  const std::int64_t at = states_.at(machine).dead_at_ns;
  return at < 0 ? SimTime() : SimTime::nanos(at);
}

FailureDetector::Counters FailureDetector::counters() const {
  std::scoped_lock lock(mu_);
  return counters_;
}

void FailureDetector::poll(SimTime now) {
  const std::int64_t now_ns = now.as_nanos();
  if (now_ns < next_round_gate_.load(std::memory_order_relaxed)) return;
  std::vector<std::pair<std::uint16_t, SimTime>> deaths;
  {
    std::scoped_lock lock(mu_);
    while (!halted_ && next_round_ns_ <= now_ns) {
      run_round(next_round_ns_, deaths);
      ++round_;
      next_round_ns_ += cfg_.heartbeat_period_ns;
      next_round_gate_.store(next_round_ns_, std::memory_order_relaxed);
    }
    if (halted_) {
      next_round_gate_.store(std::numeric_limits<std::int64_t>::max(),
                             std::memory_order_relaxed);
    }
  }
  // Callbacks run unlocked: they may send RMIs or take unrelated locks.
  // Latching under mu_ guarantees each death is in exactly one thread's
  // `deaths` batch, so observers fire exactly once per machine.
  for (const auto& [machine, at] : deaths) {
    for (const DeathCallback& cb : callbacks_) cb(machine, at);
  }
}

void FailureDetector::run_round(
    std::int64_t round_ns,
    std::vector<std::pair<std::uint16_t, SimTime>>& deaths) {
  if (plan_ != nullptr && plan_->crashed(cfg_.monitor, round_ns)) {
    // The membership anchor itself died; probing stops (header caveat).
    halted_ = true;
    return;
  }
  for (std::uint16_t m = 0; m < machines_; ++m) {
    if (m == cfg_.monitor) continue;
    State& st = states_[m];
    if (st.dead_at_ns >= 0) continue;  // death is latched
    bool heard = true;
    if (plan_ != nullptr && plan_->crashed(m, round_ns)) {
      // A crash exactly at the round boundary counts as a miss: crashed()
      // is inclusive, matching the transport's frame-level semantics.
      heard = false;
    } else {
      wire::Message hb;
      hb.header.kind = wire::MsgKind::Heartbeat;
      hb.header.seq = static_cast<std::uint32_t>(round_);
      hb.header.source_machine = m;
      hb.header.dest_machine = cfg_.monitor;
      sessions_[m]->post(std::move(hb), [](const wire::Frame&) {
        // No ARQ for probes: the miss bookkeeping below IS the protocol.
        return wire::SendOutcome::Delivered;
      });
      if (plan_ != nullptr) {
        // Probes cross the same lossy link as m -> monitor app traffic,
        // rolled on a disjoint seeded stream (keyed by round, so skipped
        // rounds of other machines never shift it).
        const double p = plan_->link(m, cfg_.monitor).drop;
        if (p > 0.0) {
          SplitMix64 roll = plan_->dice(m | kProbeSrcFlag, cfg_.monitor,
                                        round_, 0);
          heard = roll.next_double() >= p;
        }
      }
    }
    if (heard) {
      ++counters_.heartbeats;
      trace_instant(trace::EventKind::Heartbeat, trace::TrackKind::Link, m,
                    round_ns, round_);
      st.misses = 0;
      if (liveness_[m].load(std::memory_order_relaxed) ==
          static_cast<std::uint8_t>(Liveness::Suspected)) {
        liveness_[m].store(static_cast<std::uint8_t>(Liveness::Alive),
                           std::memory_order_release);
      }
      continue;
    }
    ++counters_.heartbeat_misses;
    trace_instant(trace::EventKind::HeartbeatMiss, trace::TrackKind::Link, m,
                  round_ns, round_);
    ++st.misses;
    if (st.misses == cfg_.suspect_after_misses &&
        cfg_.suspect_after_misses < cfg_.confirm_after_misses) {
      liveness_[m].store(static_cast<std::uint8_t>(Liveness::Suspected),
                         std::memory_order_release);
      ++counters_.suspicions;
      trace_instant(trace::EventKind::MachineSuspected,
                    trace::TrackKind::Machine, m, round_ns, round_);
    }
    if (st.misses >= cfg_.confirm_after_misses) {
      st.dead_at_ns = round_ns;
      liveness_[m].store(static_cast<std::uint8_t>(Liveness::Dead),
                         std::memory_order_release);
      ++counters_.deaths;
      trace_instant(trace::EventKind::MachineDead, trace::TrackKind::Machine,
                    m, round_ns, round_);
      deaths.emplace_back(m, SimTime::nanos(round_ns));
    }
  }
}

void FailureDetector::trace_instant(trace::EventKind kind,
                                    trace::TrackKind track,
                                    std::uint16_t machine, std::int64_t at_ns,
                                    std::uint64_t round) const {
  if (recorder_ == nullptr) return;
  trace::Event e;
  e.kind = kind;
  e.track = track;
  e.machine = machine;
  e.peer = track == trace::TrackKind::Link ? cfg_.monitor : 0;
  e.start_ns = at_ns;
  e.seq = static_cast<std::uint32_t>(round);
  recorder_->record(e);
}

}  // namespace rmiopt::net
