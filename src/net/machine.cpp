#include "net/machine.hpp"

namespace rmiopt::net {

void Machine::deliver(wire::Message msg, SimTime arrival) {
  {
    std::scoped_lock lock(mu_);
    inbox_.push_back(Envelope{std::move(msg), arrival});
  }
  cv_.notify_all();
}

wire::DedupWindow::Verdict Machine::accept_link_seq(std::uint16_t src,
                                                    std::uint64_t link_seq) {
  std::scoped_lock lock(mu_);
  auto [it, _] = dedup_.try_emplace(src);
  const std::uint64_t recoveries_before = it->second.late_recoveries();
  const wire::DedupWindow::Verdict v = it->second.accept(link_seq);
  if (recorder_ != nullptr) {
    const bool dropped = v != wire::DedupWindow::Verdict::Fresh;
    const bool recovered =
        it->second.late_recoveries() != recoveries_before;
    if (dropped || recovered) {
      trace::Event e;
      e.kind = dropped ? trace::EventKind::DedupDrop
                       : trace::EventKind::DedupLateRecovery;
      e.track = trace::TrackKind::Link;
      e.machine = src;
      e.peer = id_;
      e.start_ns = clock_.now().as_nanos();
      e.seq = static_cast<std::uint32_t>(link_seq);
      recorder_->record(e);
    }
  }
  return v;
}

void Machine::set_recorder(trace::Recorder* recorder) {
  std::scoped_lock lock(mu_);
  recorder_ = recorder;
}

Machine::DedupCounters Machine::dedup_counters() const {
  std::scoped_lock lock(mu_);
  DedupCounters c;
  for (const auto& [src, window] : dedup_) {
    c.forced_slides += window.forced_slides();
    c.late_recoveries += window.late_recoveries();
    c.skipped_expired += window.skipped_expired();
  }
  return c;
}

std::optional<Envelope> Machine::receive_blocking() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return !inbox_.empty() || closed_; });
  if (inbox_.empty()) return std::nullopt;
  Envelope env = std::move(inbox_.front());
  inbox_.pop_front();
  lock.unlock();

  // GM cost model (§5): a machine with a data-request outstanding *polls*
  // the network, so a message it waited for costs only a user-level poll;
  // the same holds while it is draining a backlog (every receive is a
  // poll).  The blocked kernel poll thread only wakes — and charges a
  // thread switch — when a message sat pending past the 20 µs threshold
  // while the host had not touched the network for at least as long.
  const SimTime before = clock_.now();
  const bool waited = clock_.merge_at_least(env.arrival);
  const SimTime threshold = SimTime::nanos(cost_.poll_wakeup_ns);
  const bool kernel_wakeup = !waited &&
                             (before - env.arrival) > threshold &&
                             (before - last_receive_) > threshold;
  clock_.advance(SimTime::nanos(kernel_wakeup ? cost_.poll_wakeup_ns
                                              : cost_.recv_poll_ns));
  last_receive_ = clock_.now();
  return env;
}

void Machine::close() {
  {
    std::scoped_lock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Machine::pending_messages() const {
  std::scoped_lock lock(mu_);
  return inbox_.size();
}

}  // namespace rmiopt::net
