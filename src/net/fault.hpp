// Deterministic fault injection for the simulated network.
//
// A FaultPlan describes everything that may go wrong on the wire: per-link
// probabilities for dropping, duplicating, reordering and corrupting
// frames, plus machines scheduled to crash at a virtual time.  The plan is
// *seeded*: every decision is a pure function of (seed, link, link_seq,
// attempt), never of thread interleaving or global submit order, so two
// runs with the same plan make byte-identical decisions — the determinism
// the test suite asserts (tests/fault_injection_test.cpp).
//
// The plan is consumed by net::FaultyTransport (net/transport.hpp), a
// decorator that wraps either backend.  All retry traffic it provokes is
// charged through the ordinary virtual-time code path
// (Transport::charge_and_schedule), so faults slow the virtual makespan
// exactly the way a lossy network would slow a real one.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/hash.hpp"
#include "support/rng.hpp"

namespace rmiopt::net {

// Per-link fault probabilities, each in [0, 1).
struct LinkFaults {
  double drop = 0.0;       // frame lost in transit (sender times out)
  double duplicate = 0.0;  // frame delivered twice
  double reorder = 0.0;    // a stale copy arrives late, behind newer frames
  double corrupt = 0.0;    // bit flip in the byte image (receiver NACKs)

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
  }
};

struct FaultPlan {
  std::uint64_t seed = 0;
  // Applies to every directed link without an explicit override.
  LinkFaults default_link;
  // Overrides keyed on the directed link (src << 16 | dst).
  std::unordered_map<std::uint32_t, LinkFaults> per_link;

  // A machine that stops responding once its virtual clock reaches
  // `at_nanos`: frames to or from it vanish, so its peers see timeouts.
  // Install crashes through crash_at() only — it maintains the per-machine
  // index crashed() reads.
  struct Crash {
    std::uint16_t machine = 0;
    std::int64_t at_nanos = 0;
  };
  std::vector<Crash> crashes;

  static constexpr std::uint32_t link_key(std::uint16_t src,
                                          std::uint16_t dst) {
    return (static_cast<std::uint32_t>(src) << 16) | dst;
  }

  void set_link(std::uint16_t src, std::uint16_t dst, LinkFaults f) {
    per_link[link_key(src, dst)] = f;
  }

  const LinkFaults& link(std::uint16_t src, std::uint16_t dst) const {
    const auto it = per_link.find(link_key(src, dst));
    return it == per_link.end() ? default_link : it->second;
  }

  void crash_at(std::uint16_t machine, std::int64_t at_nanos) {
    crashes.push_back(Crash{machine, at_nanos});
    const auto [it, fresh] = earliest_crash_.try_emplace(machine, at_nanos);
    if (!fresh && at_nanos < it->second) it->second = at_nanos;
  }

  // Consulted per frame by the transport and per probe round by the
  // failure detector, so it must not scan the schedule: crash_at()
  // precomputes the earliest crash time per machine.
  bool crashed(std::uint16_t machine, std::int64_t now_nanos) const {
    const auto it = earliest_crash_.find(machine);
    return it != earliest_crash_.end() && now_nanos >= it->second;
  }

  // Whether the plan can perturb anything at all.  A default-constructed
  // plan is inert and the cluster skips the decorator entirely.
  bool enabled() const {
    if (default_link.any() || !crashes.empty()) return true;
    for (const auto& [key, f] : per_link) {
      (void)key;
      if (f.any()) return true;
    }
    return false;
  }

  // The deterministic dice: a SplitMix64 stream keyed on the plan seed and
  // the frame's identity on its link.  One attempt of one frame always
  // rolls the same numbers, independent of when (in real time) it happens.
  SplitMix64 dice(std::uint16_t src, std::uint16_t dst,
                  std::uint64_t link_seq, std::uint32_t attempt) const {
    std::uint64_t key[4] = {seed, link_key(src, dst), link_seq, attempt};
    return SplitMix64(fnv1a(key, sizeof key));
  }

 private:
  // Earliest crash time per machine, maintained by crash_at().  Kept out
  // of the public surface so the vector and the index cannot diverge.
  std::unordered_map<std::uint16_t, std::int64_t> earliest_crash_;
};

}  // namespace rmiopt::net
