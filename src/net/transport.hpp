// The pluggable transport layer.
//
// A Transport moves framed messages between two machines and charges the
// virtual cost of doing so.  The Myrinet/GM arithmetic of the paper (§5)
// — send-descriptor overhead, one-way latency, bandwidth, fragmentation —
// lives in the shared base class, so every backend prices traffic
// identically and makespans are backend-independent; what a backend
// chooses is the *mechanism*:
//
//  * SimTransport — the byte-oriented network model: every frame is
//    serialized to its physical image (wire/framing.hpp), "transmitted",
//    decoded at the receiver's NIC, and validated against the link's
//    sequence counter.  This is the default and exercises the framing
//    layer on every message.
//  * LoopbackTransport — in-process delivery: frames move as structs,
//    no byte image exists.  Proves the runtime above never depends on
//    the frame encoding, and is the natural seat for future co-located
//    (shared-memory) backends.
//
// Each transport instance owns its own NetworkStats, so a cluster with
// several backends can report per-transport traffic separately and
// aggregate with NetworkStats::Snapshot::operator+=.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "serial/cost_model.hpp"
#include "support/sim_time.hpp"
#include "wire/framing.hpp"

namespace rmiopt::net {

class Machine;

// Traffic counters.  The raw atomics stay private: readers take a
// Snapshot (a plain value type) and aggregate snapshots with +=.
class NetworkStats {
 public:
  struct Snapshot {
    std::uint64_t messages = 0;   // logical wire::Messages carried
    std::uint64_t bytes = 0;      // charged wire bytes (header + payload)
    std::uint64_t frames = 0;     // physical frames transmitted
    std::uint64_t coalesced = 0;  // messages that shared a frame with others

    Snapshot& operator+=(const Snapshot& o) {
      messages += o.messages;
      bytes += o.bytes;
      frames += o.frames;
      coalesced += o.coalesced;
      return *this;
    }
  };

  void record_frame(std::size_t message_count, std::size_t charged_bytes) {
    messages_.fetch_add(message_count, std::memory_order_relaxed);
    bytes_.fetch_add(charged_bytes, std::memory_order_relaxed);
    frames_.fetch_add(1, std::memory_order_relaxed);
    if (message_count > 1) {
      coalesced_.fetch_add(message_count, std::memory_order_relaxed);
    }
  }

  Snapshot snapshot() const {
    Snapshot s;
    s.messages = messages_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.frames = frames_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> coalesced_{0};
};

enum class TransportKind {
  Sim,       // byte-framed Myrinet/GM model (default)
  Loopback,  // in-process struct delivery, same cost model
};

constexpr std::string_view to_string(TransportKind k) {
  switch (k) {
    case TransportKind::Sim:
      return "sim";
    case TransportKind::Loopback:
      return "loopback";
  }
  return "?";
}

class Transport {
 public:
  explicit Transport(const serial::CostModel& cost) : cost_(cost) {}
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual std::string_view name() const = 0;

  // Moves `frame` from `sender` to `receiver`: charges the sender's
  // clock, computes the arrival time, and delivers every member message
  // to the receiver's inbox (all with the frame's arrival time — the
  // frame crosses the wire as one unit).
  virtual void submit(Machine& sender, Machine& receiver,
                      wire::Frame frame) = 0;

  NetworkStats::Snapshot stats() const { return stats_.snapshot(); }

 protected:
  // Shared GM arithmetic: charges the sender the send-descriptor cost and
  // returns the frame's arrival time at the receiver's NIC (one-way
  // latency + bytes over the modelled bandwidth + per-fragment pipeline
  // overhead for frames larger than one MTU).
  SimTime charge_and_schedule(Machine& sender, std::size_t charged_bytes);

  void record(std::size_t message_count, std::size_t charged_bytes) {
    stats_.record_frame(message_count, charged_bytes);
  }

  const serial::CostModel& cost_;

 private:
  NetworkStats stats_;
};

// Byte-framed network model: encode -> transmit -> decode -> validate.
class SimTransport final : public Transport {
 public:
  using Transport::Transport;
  std::string_view name() const override { return "sim"; }
  void submit(Machine& sender, Machine& receiver, wire::Frame frame) override;

 private:
  // Receiver-side per-link in-order validation (link key = src<<16 | dst).
  std::mutex link_mu_;
  std::unordered_map<std::uint32_t, std::uint64_t> next_link_seq_;
};

// In-process delivery: the frame never becomes bytes.
class LoopbackTransport final : public Transport {
 public:
  using Transport::Transport;
  std::string_view name() const override { return "loopback"; }
  void submit(Machine& sender, Machine& receiver, wire::Frame frame) override;
};

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const serial::CostModel& cost);

}  // namespace rmiopt::net
