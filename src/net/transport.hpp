// The pluggable transport layer.
//
// A Transport moves framed messages between two machines and charges the
// virtual cost of doing so.  The Myrinet/GM arithmetic of the paper (§5)
// — send-descriptor overhead, one-way latency, bandwidth, fragmentation —
// lives in the shared base class, so every backend prices traffic
// identically and makespans are backend-independent; what a backend
// chooses is the *mechanism*:
//
//  * SimTransport — the byte-oriented network model: every frame is
//    serialized to its physical image (wire/framing.hpp), "transmitted",
//    decoded at the receiver's NIC, and run through the receiver's
//    per-link dedup window.  This is the default and exercises the
//    framing layer (including its checksum) on every message.
//  * LoopbackTransport — in-process delivery: frames move as structs,
//    no byte image exists.  Proves the runtime above never depends on
//    the frame encoding, and is the natural seat for future co-located
//    (shared-memory) backends.
//  * FaultyTransport — a decorator around either backend that executes a
//    seeded net::FaultPlan: frames are dropped, duplicated, delivered
//    stale (reorder), or bit-flipped, and machines crash at scheduled
//    virtual times.  Its submit() reports the outcome so the session's
//    ARQ can retransmit; every wasted transmission is charged through
//    the same charge_and_schedule path as healthy traffic, keeping runs
//    reproducible seed for seed.
//
// Each transport instance owns its own NetworkStats, so a cluster with
// several backends can report per-transport traffic separately and
// aggregate with NetworkStats::Snapshot::operator+=.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/fault.hpp"
#include "serial/cost_model.hpp"
#include "support/sim_time.hpp"
#include "trace/trace.hpp"
#include "wire/framing.hpp"
#include "wire/session.hpp"

namespace rmiopt::net {

class Machine;

// Traffic counters.  The raw atomics stay private: readers take a
// Snapshot (a plain value type) and aggregate snapshots with +=.
class NetworkStats {
 public:
  struct Snapshot {
    std::uint64_t messages = 0;   // logical wire::Messages carried
    std::uint64_t bytes = 0;      // charged wire bytes (header + payload)
    std::uint64_t frames = 0;     // physical frames transmitted
    std::uint64_t coalesced = 0;  // messages that shared a frame with others
    std::uint64_t gathered_messages = 0;  // messages sent scatter-gather

    // Receive-side frame pooling (filled in by Cluster::stats() from the
    // per-machine pools; both zero unless CostModel::zero_copy_receive
    // routed delivery through pooled, pinned frame buffers).
    std::uint64_t frame_pool_hits = 0;    // deliveries served by the freelist
    std::uint64_t frame_pool_misses = 0;  // freelist dry: fresh buffer

    // Fault/reliability counters — all zero on a healthy network.
    std::uint64_t dropped = 0;      // frames lost in transit
    std::uint64_t duplicated = 0;   // extra copies injected
    std::uint64_t reordered = 0;    // stale copies delivered late
    std::uint64_t corrupted = 0;    // frames rejected by the checksum
    std::uint64_t retransmits = 0;  // ARQ re-sends of an undelivered frame
    std::uint64_t dedup_hits = 0;   // frames discarded by a receive window
    std::uint64_t timeouts = 0;     // retransmit timers the sender waited out

    // Receive-window health (filled in by Cluster::stats(), which owns
    // the machines the windows live on) — all zero on a healthy network.
    std::uint64_t dedup_forced_slides = 0;   // horizon forced past a gap
    std::uint64_t dedup_late_recoveries = 0; // delayed frames still delivered
    std::uint64_t dedup_skipped_expired = 0; // gap entries that aged out

    // Failure detection (filled in by Cluster::stats() from the detector;
    // all zero with the detector disabled, the default).
    std::uint64_t heartbeats = 0;        // probes that reached the monitor
    std::uint64_t heartbeat_misses = 0;  // expected probes that did not
    std::uint64_t suspicions = 0;        // machines marked Suspected
    std::uint64_t machine_deaths = 0;    // machines confirmed dead

    Snapshot& operator+=(const Snapshot& o) {
      messages += o.messages;
      bytes += o.bytes;
      frames += o.frames;
      coalesced += o.coalesced;
      gathered_messages += o.gathered_messages;
      frame_pool_hits += o.frame_pool_hits;
      frame_pool_misses += o.frame_pool_misses;
      dropped += o.dropped;
      duplicated += o.duplicated;
      reordered += o.reordered;
      corrupted += o.corrupted;
      retransmits += o.retransmits;
      dedup_hits += o.dedup_hits;
      timeouts += o.timeouts;
      dedup_forced_slides += o.dedup_forced_slides;
      dedup_late_recoveries += o.dedup_late_recoveries;
      dedup_skipped_expired += o.dedup_skipped_expired;
      heartbeats += o.heartbeats;
      heartbeat_misses += o.heartbeat_misses;
      suspicions += o.suspicions;
      machine_deaths += o.machine_deaths;
      return *this;
    }

    std::uint64_t faults() const {
      return dropped + duplicated + reordered + corrupted;
    }

    // Field-by-field equality (the determinism tests compare whole runs).
    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  void record_frame(std::size_t message_count, std::size_t charged_bytes) {
    messages_.fetch_add(message_count, std::memory_order_relaxed);
    bytes_.fetch_add(charged_bytes, std::memory_order_relaxed);
    frames_.fetch_add(1, std::memory_order_relaxed);
    if (message_count > 1) {
      coalesced_.fetch_add(message_count, std::memory_order_relaxed);
    }
  }

  void record_gathered(std::size_t message_count) {
    if (message_count > 0) {
      gathered_messages_.fetch_add(message_count, std::memory_order_relaxed);
    }
  }

  void record_dropped() { dropped_.fetch_add(1, std::memory_order_relaxed); }
  void record_duplicated() {
    duplicated_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_reordered() {
    reordered_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_corrupted() {
    corrupted_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_retransmit() {
    retransmits_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_dedup_hit() {
    dedup_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_timeout() { timeouts_.fetch_add(1, std::memory_order_relaxed); }

  Snapshot snapshot() const {
    Snapshot s;
    s.messages = messages_.load(std::memory_order_relaxed);
    s.bytes = bytes_.load(std::memory_order_relaxed);
    s.frames = frames_.load(std::memory_order_relaxed);
    s.coalesced = coalesced_.load(std::memory_order_relaxed);
    s.gathered_messages = gathered_messages_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.duplicated = duplicated_.load(std::memory_order_relaxed);
    s.reordered = reordered_.load(std::memory_order_relaxed);
    s.corrupted = corrupted_.load(std::memory_order_relaxed);
    s.retransmits = retransmits_.load(std::memory_order_relaxed);
    s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
    s.timeouts = timeouts_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> gathered_messages_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> duplicated_{0};
  std::atomic<std::uint64_t> reordered_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> dedup_hits_{0};
  std::atomic<std::uint64_t> timeouts_{0};
};

enum class TransportKind {
  Sim,       // byte-framed Myrinet/GM model (default)
  Loopback,  // in-process struct delivery, same cost model
};

constexpr std::string_view to_string(TransportKind k) {
  switch (k) {
    case TransportKind::Sim:
      return "sim";
    case TransportKind::Loopback:
      return "loopback";
  }
  return "?";
}

class Transport {
 public:
  explicit Transport(const serial::CostModel& cost) : cost_(cost) {}
  virtual ~Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual std::string_view name() const = 0;

  // Moves `frame` from `sender` to `receiver`: charges the sender's
  // clock, computes the arrival time, and delivers every member message
  // to the receiver's inbox (all with the frame's arrival time — the
  // frame crosses the wire as one unit).  Returns the attempt's outcome
  // so the session ARQ can retransmit; the healthy backends always
  // deliver (duplicates discarded by the receive window still count as
  // Delivered — the receiver has the frame).
  virtual wire::SendOutcome submit(Machine& sender, Machine& receiver,
                                   const wire::Frame& frame) = 0;

  virtual NetworkStats::Snapshot stats() const { return stats_.snapshot(); }

  // Attaches a trace recorder (nullptr detaches): frame traversals become
  // Flight spans, injected faults become instants, on the link tracks.
  virtual void set_recorder(trace::Recorder* recorder) {
    recorder_ = recorder;
  }

  // Observes every frame a healthy backend is about to carry (called once
  // per submit, before delivery, from the sending thread).  Benches use it
  // to digest the physical frame image and prove backend equivalence; it
  // plays no part in delivery or cost.  nullptr detaches.
  using FrameProbe = std::function<void(std::uint16_t src, std::uint16_t dst,
                                        const wire::Frame& frame)>;
  virtual void set_frame_probe(FrameProbe probe) {
    frame_probe_ = std::move(probe);
  }

 protected:
  // Shared GM arithmetic: charges the sender the send-descriptor cost and
  // returns the frame's arrival time at the receiver's NIC (one-way
  // latency + bytes over the modelled bandwidth + per-fragment pipeline
  // overhead for frames larger than one MTU).
  SimTime charge_and_schedule(Machine& sender, std::size_t charged_bytes);

  void record(std::size_t message_count, std::size_t charged_bytes) {
    stats_.record_frame(message_count, charged_bytes);
  }

  void probe_frame(const Machine& sender, const Machine& receiver,
                   const wire::Frame& frame);

  // Messages in `frame` carrying a scatter-gather payload.
  static std::size_t gathered_count(const wire::Frame& frame) {
    std::size_t n = 0;
    for (const wire::Message& m : frame.messages) n += m.gathered != nullptr;
    return n;
  }

  // Flight span on the src->dst link track: from the moment the sender
  // finished paying the send descriptor until the frame reaches the
  // receiver's NIC.
  void trace_flight(Machine& sender, const Machine& receiver,
                    const wire::Frame& frame, std::size_t charged_bytes,
                    SimTime arrival);

  // Instant on the src->dst link track (injected faults).
  void trace_instant(trace::EventKind kind, Machine& sender,
                     const Machine& receiver, std::uint64_t link_seq);

  const serial::CostModel& cost_;
  NetworkStats stats_;
  trace::Recorder* recorder_ = nullptr;
  FrameProbe frame_probe_;
};

// Byte-framed network model: encode -> transmit -> decode -> dedup.
class SimTransport final : public Transport {
 public:
  using Transport::Transport;
  std::string_view name() const override { return "sim"; }
  wire::SendOutcome submit(Machine& sender, Machine& receiver,
                           const wire::Frame& frame) override;
};

// In-process delivery: the frame never becomes bytes.
class LoopbackTransport final : public Transport {
 public:
  using Transport::Transport;
  std::string_view name() const override { return "loopback"; }
  wire::SendOutcome submit(Machine& sender, Machine& receiver,
                           const wire::Frame& frame) override;
};

// Decorator executing a seeded FaultPlan over an inner backend.  Every
// decision is a pure function of (plan seed, link, link_seq, attempt), so
// runs are reproducible regardless of thread timing; see net/fault.hpp.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(const serial::CostModel& cost,
                  std::unique_ptr<Transport> inner, FaultPlan plan);

  std::string_view name() const override { return name_; }
  wire::SendOutcome submit(Machine& sender, Machine& receiver,
                           const wire::Frame& frame) override;

  // The decorator records its fault events; the inner backend records the
  // flights of whatever it actually delivers.
  void set_recorder(trace::Recorder* recorder) override {
    Transport::set_recorder(recorder);
    inner_->set_recorder(recorder);
  }

  // The probe belongs on the inner backend: it should see what is actually
  // carried (retries, duplicates, late copies), not what the fault plan
  // swallowed.
  void set_frame_probe(FrameProbe probe) override {
    inner_->set_frame_probe(std::move(probe));
  }

  // Own fault counters plus the wrapped backend's traffic counters.
  NetworkStats::Snapshot stats() const override {
    NetworkStats::Snapshot s = stats_.snapshot();
    s += inner_->stats();
    return s;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  struct LinkState {
    std::uint64_t last_seq = ~0ull;  // frame currently being attempted
    std::uint32_t attempt = 0;       // consecutive attempts of last_seq
    // A copy scheduled to arrive *late*: it is re-submitted (and then
    // discarded by the receive window as stale) behind the next frame on
    // this link — the only reordering a stop-and-wait link can exhibit.
    std::unique_ptr<wire::Frame> late;
  };

  LinkState& link_state(std::uint16_t src, std::uint16_t dst);

  const FaultPlan plan_;
  std::unique_ptr<Transport> inner_;
  std::string name_;
  std::mutex mu_;
  std::unordered_map<std::uint32_t, LinkState> links_;
};

std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const serial::CostModel& cost);

}  // namespace rmiopt::net
