#include "analysis/escape_analysis.hpp"

#include <algorithm>

namespace rmiopt::analysis {

namespace {

bool intersects(const NodeSet& a, const NodeSet& b) {
  // a is typically small; b may be large.
  const NodeSet& small = a.size() <= b.size() ? a : b;
  const NodeSet& large = a.size() <= b.size() ? b : a;
  return std::any_of(small.begin(), small.end(),
                     [&](LogicalId id) { return large.contains(id); });
}

bool subset_of(const NodeSet& a, const NodeSet& b) {
  return std::all_of(a.begin(), a.end(),
                     [&](LogicalId id) { return b.contains(id); });
}

}  // namespace

bool EscapeAnalysis::graph_escapes(const NodeSet& g) const {
  if (g.empty()) return false;
  const ir::Module& m = heap_.module();
  for (std::size_t fi = 0; fi < m.function_count(); ++fi) {
    const ir::Function& f = m.function(static_cast<ir::FuncId>(fi));
    for (const auto& block : f.blocks) {
      for (const auto& in : block.instrs) {
        switch (in.op) {
          case ir::Op::StoreStatic: {
            if (!f.value_type(in.operands[0]).is_ref()) break;
            if (intersects(heap_.points_to(f.id, in.operands[0]), g)) {
              return true;  // Figure 11: assigned to a static variable
            }
            break;
          }
          case ir::Op::StoreField:
          case ir::Op::StoreIndex: {
            if (!f.value_type(in.operands[1]).is_ref()) break;
            const NodeSet& val = heap_.points_to(f.id, in.operands[1]);
            if (!intersects(val, g)) break;
            // Stores *within* the graph keep it self-contained; stores
            // into any object that may lie outside the graph leak it.
            const NodeSet& obj = heap_.points_to(f.id, in.operands[0]);
            if (!subset_of(obj, g)) return true;
            break;
          }
          case ir::Op::Return: {
            if (in.operands.empty() ||
                !f.value_type(in.operands[0]).is_ref()) {
              break;
            }
            if (intersects(heap_.points_to(f.id, in.operands[0]), g)) {
              return true;  // flows out of the defining scope
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }
  return false;
}

bool EscapeAnalysis::args_reusable(
    const ir::Module::RemoteCallRef& site) const {
  const ir::Module& m = heap_.module();
  const ir::Function& callee = m.function(site.instr->callee);
  NodeSet roots;
  bool any_ref_arg = false;
  for (std::size_t i = 0; i < callee.params.size(); ++i) {
    if (!callee.params[i].is_ref()) continue;
    any_ref_arg = true;
    const NodeSet& p = heap_.points_to(callee.id,
                                       static_cast<ir::ValueId>(i));
    roots.insert(p.begin(), p.end());
  }
  if (!any_ref_arg) return false;  // nothing to reuse
  return !graph_escapes(heap_.reachable(roots));
}

bool EscapeAnalysis::return_reusable(
    const ir::Module::RemoteCallRef& site) const {
  const ir::Instr& in = *site.instr;
  const ir::Function& caller = heap_.module().function(site.caller);
  if (!in.has_result() || !caller.value_type(in.result).is_ref()) {
    return false;
  }
  const NodeSet& result = heap_.points_to(site.caller, in.result);
  if (result.empty()) return false;
  return !graph_escapes(heap_.reachable(result));
}

}  // namespace rmiopt::analysis
