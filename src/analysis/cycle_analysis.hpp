// Conservative compile-time cycle detection (paper §3.2), plus the §7
// future-work refinement.
//
// Base algorithm: traverse the heap graphs rooted at a remote call's
// arguments (and, separately, its return value) and record the allocation
// numbers seen.  "Once an allocation number is seen twice, we assume that
// the argument graph may contain a cycle" — so sharing between arguments
// (Figure 8), self references (Figure 9), and — matching the paper's
// admitted imprecision (§7) — linked lists built at a single allocation
// site are all classified as possibly cyclic.  Note the conservatism is
// partly *required*: eliding the handle table also loses sharing, so any
// potentially-shared node must keep runtime detection.
//
// Construction-order refinement (enabled via the constructor flag): a
// field f of class C is *initialization-ordered* when every store `a.f=b`
// in the module (over any compatible static type) satisfies
//   (a) `a` is the direct result of an Alloc — the object is being
//       constructed, and
//   (b) `b` is an SSA value created before that Alloc, so the referent
//       exists before the referrer.
// Edges through such fields always point from younger to strictly older
// objects; a runtime cycle composed solely of such edges is impossible.
// The refined traversal therefore ignores a back edge that closes a DFS
// path consisting entirely of initialization-ordered edges.  This proves
// `head = new LinkedList(head)` chains acyclic (fixing the paper's §7
// false positive) while still flagging self-stores (Figure 9: the stored
// value *is* the new object) and ring closures (the closing store targets
// an old object / stores a younger value).
#pragma once

#include <map>

#include "analysis/heap_analysis.hpp"

namespace rmiopt::analysis {

class CycleAnalysis {
 public:
  explicit CycleAnalysis(const HeapAnalysis& heap,
                         bool construction_order_refinement = false)
      : heap_(heap), refined_(construction_order_refinement) {}

  // May the object graph reachable from this single root set be cyclic
  // (or internally shared)?
  bool may_cycle(const NodeSet& roots) const;

  // The per-call-site question: arguments are serialized into one message,
  // so sharing *between* arguments also needs runtime cycle handles.
  bool may_cycle_args(const std::vector<NodeSet>& arg_sets) const;

  // Whole-call-site verdict used to decide needs_cycle_table: either
  // direction (argument message or return message) may contain a cycle.
  bool callsite_needs_cycle_table(const ir::Module::RemoteCallRef& site) const;

  // Exposed for tests: is (class, field) initialization-ordered?
  bool field_is_init_ordered(om::ClassId cls, std::uint32_t field) const;

 private:
  struct Walk {
    NodeSet visited;              // ever seen (sharing detection)
    NodeSet on_path;              // current DFS stack
    std::size_t unordered_depth = 0;  // non-ordered edges on current path
    bool cyclic = false;
  };
  void visit(LogicalId node, Walk& walk) const;
  void compute_ordered_fields() const;

  const HeapAnalysis& heap_;
  const bool refined_;
  mutable bool ordered_computed_ = false;
  // (class, field) -> initialization-ordered?
  mutable std::map<std::pair<om::ClassId, std::uint32_t>, bool> ordered_;
};

}  // namespace rmiopt::analysis
