#include "analysis/cycle_analysis.hpp"

namespace rmiopt::analysis {

namespace {

// Per-function view used by the conformance check.
struct FuncDefs {
  std::vector<const ir::Instr*> def;        // value id -> defining instr
  std::vector<std::uint32_t> alias_uses;    // value id -> alias-creating uses
};

FuncDefs build_defs(const ir::Function& f) {
  FuncDefs d;
  d.def.assign(f.value_count, nullptr);
  d.alias_uses.assign(f.value_count, 0);
  for (const auto& block : f.blocks) {
    for (const auto& in : block.instrs) {
      if (in.has_result()) d.def[in.result] = &in;
      // Count the uses through which a reference can gain a second heap
      // alias.  Remote-call arguments are copied (no alias); store
      // *targets* receive, they do not alias the target itself.
      switch (in.op) {
        case ir::Op::StoreField:
        case ir::Op::StoreIndex:
          ++d.alias_uses[in.operands[1]];
          break;
        case ir::Op::StoreStatic:
        case ir::Op::Return:
          if (!in.operands.empty()) ++d.alias_uses[in.operands[0]];
          break;
        case ir::Op::Move:
        case ir::Op::Phi:
          for (ir::ValueId v : in.operands) ++d.alias_uses[v];
          break;
        case ir::Op::Call:  // local call: reference semantics — may alias
          for (ir::ValueId v : in.operands) ++d.alias_uses[v];
          break;
        default:
          break;
      }
    }
  }
  return d;
}

// True if `v` is a *linear* chain of fresh allocations: its definition is
// an Alloc, Move or Phi over such values, and every value on the chain has
// at most one alias-creating use — so each runtime object reaches at most
// one store, and the structure under construction cannot become shared.
bool linear_fresh_chain(const FuncDefs& d, ir::ValueId v,
                        std::set<ir::ValueId>& visiting) {
  if (!visiting.insert(v).second) return true;  // loop through a phi: ok
  if (d.alias_uses[v] > 1) return false;
  const ir::Instr* def = d.def[v];
  if (def == nullptr) return false;  // parameter or unknown origin
  switch (def->op) {
    case ir::Op::Alloc:
      return true;
    case ir::Op::ConstNull:
      return true;  // null carries no object
    case ir::Op::Move:
      return linear_fresh_chain(d, def->operands[0], visiting);
    case ir::Op::Phi:
      for (ir::ValueId in : def->operands) {
        if (!linear_fresh_chain(d, in, visiting)) return false;
      }
      return true;
    default:
      return false;  // loads, calls, statics: aliasing unknown
  }
}

}  // namespace

void CycleAnalysis::compute_ordered_fields() const {
  if (ordered_computed_) return;
  ordered_computed_ = true;
  const ir::Module& m = heap_.module();
  const om::TypeRegistry& types = m.types();

  auto mark_unordered = [&](om::ClassId target_cls, std::uint32_t field) {
    // A non-conforming store through static type T taints the field for
    // every class that could alias T (sub- or super-class share flattened
    // field indices).
    for (om::ClassId id = 1; id <= types.class_count(); ++id) {
      if (types.get(id).is_array) continue;
      if (types.is_subclass_of(id, target_cls) ||
          types.is_subclass_of(target_cls, id)) {
        ordered_[{id, field}] = false;
      }
    }
  };

  for (std::size_t fi = 0; fi < m.function_count(); ++fi) {
    const ir::Function& f = m.function(static_cast<ir::FuncId>(fi));
    const FuncDefs d = build_defs(f);
    for (const auto& block : f.blocks) {
      for (const auto& in : block.instrs) {
        if (in.op != ir::Op::StoreField) continue;
        if (!f.value_type(in.operands[1]).is_ref()) continue;
        const ir::ValueId target = in.operands[0];
        const ir::ValueId value = in.operands[1];
        const om::ClassId target_cls = f.value_type(target).class_id;
        // (a) the object is freshly constructed at the store;
        const bool target_is_fresh =
            d.def[target] != nullptr && d.def[target]->op == ir::Op::Alloc;
        // (b) SSA value ids increase in creation order, so `value < target`
        //     means the stored reference was computed before the
        //     allocation — its referent is strictly older;
        const bool value_is_older = value < target;
        // (c) linearity: each runtime referent can reach at most this one
        //     store, so conforming stores cannot build shared structure.
        std::set<ir::ValueId> visiting;
        const bool value_is_linear =
            value_is_older && linear_fresh_chain(d, value, visiting);
        if (!(target_is_fresh && value_is_older && value_is_linear)) {
          mark_unordered(target_cls, in.field_index);
        }
      }
    }
  }
}

bool CycleAnalysis::field_is_init_ordered(om::ClassId cls,
                                          std::uint32_t field) const {
  compute_ordered_fields();
  auto it = ordered_.find({cls, field});
  return it == ordered_.end() ? true : it->second;
}

void CycleAnalysis::visit(LogicalId node, Walk& w) const {
  if (w.cyclic) return;
  w.visited.insert(node);
  w.on_path.insert(node);
  const HeapNode& n = heap_.node(node);

  auto follow = [&](LogicalId target, bool ordered_edge) {
    if (w.cyclic) return;
    if (w.on_path.contains(target)) {
      // A back edge.  With the refinement, a cycle whose every edge is
      // initialization-ordered cannot exist at runtime (ages strictly
      // decrease along it); `unordered_depth == 0` conservatively requires
      // the whole current path to be ordered.
      if (!(refined_ && ordered_edge && w.unordered_depth == 0)) {
        w.cyclic = true;
      }
      return;
    }
    if (w.visited.contains(target)) {
      // Allocation number seen twice on converging paths: the structure
      // may be shared, and eliding the handle table would also lose
      // sharing — keep runtime detection (the paper's base rule).
      w.cyclic = true;
      return;
    }
    if (!ordered_edge) ++w.unordered_depth;
    visit(target, w);
    if (!ordered_edge) --w.unordered_depth;
  };

  for (const auto& [field, targets] : n.fields) {
    const bool ordered =
        refined_ && field_is_init_ordered(n.cls, field);
    for (LogicalId t : targets) follow(t, ordered);
  }
  for (LogicalId t : n.elems) {
    follow(t, /*ordered_edge=*/false);  // element stores are not ctor-ordered
  }
  w.on_path.erase(node);
}

bool CycleAnalysis::may_cycle(const NodeSet& roots) const {
  Walk w;
  for (LogicalId r : roots) {
    if (w.visited.contains(r)) return true;  // shared root (Figure 8)
    visit(r, w);
    if (w.cyclic) return true;
  }
  return false;
}

bool CycleAnalysis::may_cycle_args(
    const std::vector<NodeSet>& arg_sets) const {
  // One shared walk across all arguments: passing the same object twice
  // (Figure 8) must be detected.
  Walk w;
  for (const NodeSet& roots : arg_sets) {
    for (LogicalId r : roots) {
      if (w.visited.contains(r)) return true;
      visit(r, w);
      if (w.cyclic) return true;
    }
  }
  return false;
}

bool CycleAnalysis::callsite_needs_cycle_table(
    const ir::Module::RemoteCallRef& site) const {
  if (may_cycle_args(heap_.remote_arg_sets(site))) return true;
  const ir::Instr& in = *site.instr;
  if (in.has_result() &&
      heap_.module().function(site.caller).value_type(in.result).is_ref()) {
    // The return message is a separate serialization pass: fresh walk.
    return may_cycle(heap_.return_set(in.callee));
  }
  return false;
}

}  // namespace rmiopt::analysis
