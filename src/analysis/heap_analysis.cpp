#include "analysis/heap_analysis.hpp"

#include <sstream>
#include <vector>

namespace rmiopt::analysis {

HeapAnalysis::HeapAnalysis(const ir::Module& module) : module_(module) {
  value_pts_.resize(module.function_count());
  return_pts_.resize(module.function_count());
  for (std::size_t f = 0; f < module.function_count(); ++f) {
    value_pts_[f].resize(
        module.function(static_cast<ir::FuncId>(f)).value_count);
  }
  global_pts_.resize(module.global_count());

  // §2 step 2: one node per allocation site.
  for (std::size_t f = 0; f < module.function_count(); ++f) {
    const ir::Function& fn = module.function(static_cast<ir::FuncId>(f));
    for (const auto& block : fn.blocks) {
      for (const auto& in : block.instrs) {
        if (in.op == ir::Op::Alloc || in.op == ir::Op::AllocArray) {
          site_to_node_[in.alloc_site] =
              make_node(in.alloc_site, in.class_id, /*is_clone=*/false);
        }
      }
    }
  }
}

LogicalId HeapAnalysis::make_node(ir::AllocSiteId physical, om::ClassId cls,
                                  bool is_clone) {
  HeapNode n;
  n.logical = static_cast<LogicalId>(nodes_.size());
  n.physical = physical;
  n.cls = cls;
  n.is_clone = is_clone;
  nodes_.push_back(std::move(n));
  RMIOPT_CHECK(max_nodes_ == 0 || nodes_.size() <= max_nodes_,
               "heap analysis diverged (node explosion)");
  return nodes_.back().logical;
}

bool HeapAnalysis::add_all(NodeSet& dest, const NodeSet& src) {
  bool changed = false;
  for (LogicalId id : src) changed |= dest.insert(id).second;
  return changed;
}

LogicalId HeapAnalysis::clone_of(ContextKey ctx, LogicalId original) {
  const auto key = std::make_pair(ctx, original);
  auto it = clone_map_.find(key);
  if (it != clone_map_.end()) return it->second;
  const HeapNode& orig = nodes_[original];
  const LogicalId id = make_node(orig.physical, orig.cls, /*is_clone=*/true);
  clone_map_.emplace(key, id);
  return id;
}

LogicalId HeapAnalysis::clone_sync(ContextKey ctx, LogicalId original,
                                   bool& changed) {
  // BFS the original subgraph, mirroring structure onto the clones.  The
  // clone map preserves sharing and cycles; re-running is monotone, which
  // keeps field additions discovered in later iterations flowing into the
  // clone graph.
  const std::size_t nodes_before = nodes_.size();
  const LogicalId root = clone_of(ctx, original);
  NodeSet visited;
  std::vector<LogicalId> work{original};
  while (!work.empty()) {
    const LogicalId cur = work.back();
    work.pop_back();
    if (!visited.insert(cur).second) continue;
    const LogicalId cur_clone = clone_of(ctx, cur);
    // Copy edge lists by value, and resolve each target's clone id BEFORE
    // touching nodes_[cur_clone]: clone_of may grow nodes_ and invalidate
    // any reference into it.
    const auto fields = nodes_[cur].fields;
    for (const auto& [field, targets] : fields) {
      for (LogicalId t : targets) {
        const LogicalId target_clone = clone_of(ctx, t);
        changed |= nodes_[cur_clone].fields[field].insert(target_clone).second;
        work.push_back(t);
      }
    }
    const auto elems = nodes_[cur].elems;
    for (LogicalId t : elems) {
      const LogicalId target_clone = clone_of(ctx, t);
      changed |= nodes_[cur_clone].elems.insert(target_clone).second;
      work.push_back(t);
    }
  }
  changed |= nodes_.size() != nodes_before;
  return root;
}

bool HeapAnalysis::propagate_remote(ContextKey ctx, const NodeSet& sources,
                                    NodeSet& dest) {
  bool changed = false;
  for (LogicalId src : sources) {
    const auto key = std::make_pair(ctx, src);
    if (clone_map_.contains(key)) {
      // Already crossed this boundary: keep the clone graph in sync with
      // any structure the fixpoint discovered since.
      const LogicalId root = clone_sync(ctx, src, changed);
      changed |= dest.insert(root).second;
      continue;
    }
    const ir::AllocSiteId physical = nodes_[src].physical;
    auto& seen = propagated_[ctx];
    if (seen.contains(physical)) {
      // §2 / Figure 4: this physical allocation number has already been
      // propagated to this remote boundary — stop the data-flow cycle.
      continue;
    }
    seen.insert(physical);
    const LogicalId root = clone_sync(ctx, src, changed);
    dest.insert(root);
    changed = true;
  }
  return changed;
}

bool HeapAnalysis::process_instr(const ir::Function& f, const ir::Instr& in) {
  auto& pts = value_pts_[f.id];
  const auto is_ref = [&](ir::ValueId v) { return f.value_type(v).is_ref(); };
  bool changed = false;

  switch (in.op) {
    case ir::Op::Alloc:
    case ir::Op::AllocArray:
      changed |= pts[in.result].insert(site_to_node_.at(in.alloc_site)).second;
      break;
    case ir::Op::Move:
      if (is_ref(in.operands[0])) {
        changed |= add_all(pts[in.result], pts[in.operands[0]]);
      }
      break;
    case ir::Op::Phi:
      for (ir::ValueId o : in.operands) {
        if (is_ref(o)) changed |= add_all(pts[in.result], pts[o]);
      }
      break;
    case ir::Op::StoreField: {
      if (!is_ref(in.operands[1])) break;  // primitive store
      const NodeSet& objs = pts[in.operands[0]];
      const NodeSet& vals = pts[in.operands[1]];
      for (LogicalId o : objs) {
        changed |= add_all(nodes_[o].fields[in.field_index], vals);
      }
      break;
    }
    case ir::Op::LoadField: {
      if (!in.has_result() || !is_ref(in.result)) break;
      for (LogicalId o : pts[in.operands[0]]) {
        auto it = nodes_[o].fields.find(in.field_index);
        if (it != nodes_[o].fields.end()) {
          changed |= add_all(pts[in.result], it->second);
        }
      }
      break;
    }
    case ir::Op::StoreIndex: {
      if (!is_ref(in.operands[1])) break;
      for (LogicalId o : pts[in.operands[0]]) {
        changed |= add_all(nodes_[o].elems, pts[in.operands[1]]);
      }
      break;
    }
    case ir::Op::LoadIndex: {
      if (!in.has_result() || !is_ref(in.result)) break;
      for (LogicalId o : pts[in.operands[0]]) {
        changed |= add_all(pts[in.result], nodes_[o].elems);
      }
      break;
    }
    case ir::Op::StoreStatic:
      if (is_ref(in.operands[0])) {
        changed |= add_all(global_pts_[in.global_index], pts[in.operands[0]]);
      }
      break;
    case ir::Op::LoadStatic:
      if (in.has_result() && is_ref(in.result)) {
        changed |= add_all(pts[in.result], global_pts_[in.global_index]);
      }
      break;
    case ir::Op::Call: {
      // Local call: reference semantics, sets flow through directly.
      const ir::Function& callee = module_.function(in.callee);
      for (std::size_t i = 0; i < in.operands.size(); ++i) {
        if (!is_ref(in.operands[i]) || !callee.params[i].is_ref()) continue;
        changed |= add_all(value_pts_[callee.id][i], pts[in.operands[i]]);
      }
      if (in.has_result() && is_ref(in.result)) {
        changed |= add_all(pts[in.result], return_pts_[callee.id]);
      }
      break;
    }
    case ir::Op::RemoteCall: {
      // RMI copy semantics: clone across the boundary under the
      // (logical, physical) tuple rule.
      const ir::Function& callee = module_.function(in.callee);
      for (std::size_t i = 0; i < in.operands.size(); ++i) {
        if (!is_ref(in.operands[i]) || !callee.params[i].is_ref()) continue;
        changed |= propagate_remote(param_context(in.callee, i),
                                    pts[in.operands[i]],
                                    value_pts_[callee.id][i]);
      }
      if (in.has_result() && is_ref(in.result)) {
        changed |= propagate_remote(return_context(in.callsite_tag),
                                    return_pts_[callee.id], pts[in.result]);
      }
      break;
    }
    case ir::Op::Return:
      if (!in.operands.empty() && is_ref(in.operands[0])) {
        changed |= add_all(return_pts_[f.id], pts[in.operands[0]]);
      }
      break;
    default:
      break;
  }
  return changed;
}

void HeapAnalysis::run(std::size_t max_nodes) {
  max_nodes_ = max_nodes;
  bool changed = true;
  while (changed) {
    changed = false;
    ++iterations_;
    for (std::size_t f = 0; f < module_.function_count(); ++f) {
      const ir::Function& fn = module_.function(static_cast<ir::FuncId>(f));
      for (const auto& block : fn.blocks) {
        for (const auto& in : block.instrs) {
          changed |= process_instr(fn, in);
        }
      }
    }
    RMIOPT_CHECK(iterations_ < 10'000, "heap analysis did not converge");
  }
  ran_ = true;
}

const NodeSet& HeapAnalysis::points_to(ir::FuncId f, ir::ValueId v) const {
  RMIOPT_CHECK(ran_, "run() the analysis first");
  return value_pts_.at(f).at(v);
}

const NodeSet& HeapAnalysis::global_points_to(ir::GlobalId g) const {
  RMIOPT_CHECK(ran_, "run() the analysis first");
  return global_pts_.at(g);
}

const NodeSet& HeapAnalysis::return_set(ir::FuncId f) const {
  RMIOPT_CHECK(ran_, "run() the analysis first");
  return return_pts_.at(f);
}

const HeapNode& HeapAnalysis::node(LogicalId id) const {
  return nodes_.at(id);
}

NodeSet HeapAnalysis::reachable(const NodeSet& roots) const {
  NodeSet visited;
  std::vector<LogicalId> work(roots.begin(), roots.end());
  while (!work.empty()) {
    const LogicalId cur = work.back();
    work.pop_back();
    if (!visited.insert(cur).second) continue;
    for (const auto& [field, targets] : nodes_[cur].fields) {
      work.insert(work.end(), targets.begin(), targets.end());
    }
    work.insert(work.end(), nodes_[cur].elems.begin(), nodes_[cur].elems.end());
  }
  return visited;
}

std::vector<NodeSet> HeapAnalysis::remote_arg_sets(
    const ir::Module::RemoteCallRef& site) const {
  RMIOPT_CHECK(ran_, "run() the analysis first");
  const ir::Function& caller = module_.function(site.caller);
  std::vector<NodeSet> sets;
  sets.reserve(site.instr->operands.size());
  for (ir::ValueId v : site.instr->operands) {
    if (caller.value_type(v).is_ref()) {
      sets.push_back(points_to(site.caller, v));
    } else {
      sets.emplace_back();
    }
  }
  return sets;
}

std::string to_string(const HeapAnalysis& heap) {
  const om::TypeRegistry& types = heap.module().types();
  std::ostringstream out;
  for (std::size_t i = 0; i < heap.node_count(); ++i) {
    const HeapNode& n = heap.node(static_cast<LogicalId>(i));
    out << "node " << n.logical << " (site " << n.physical << ", "
        << (n.cls != om::kNoClass ? types.get(n.cls).name : "?")
        << (n.is_clone ? ", clone" : "") << ")\n";
    for (const auto& [field, targets] : n.fields) {
      const om::ClassDescriptor& cls = types.get(n.cls);
      out << "  ." << cls.fields.at(field).name << " -> {";
      bool first = true;
      for (LogicalId t : targets) {
        out << (first ? "" : ", ") << t;
        first = false;
      }
      out << "}\n";
    }
    if (!n.elems.empty()) {
      out << "  [] -> {";
      bool first = true;
      for (LogicalId t : n.elems) {
        out << (first ? "" : ", ") << t;
        first = false;
      }
      out << "}\n";
    }
  }
  return out.str();
}

}  // namespace rmiopt::analysis
