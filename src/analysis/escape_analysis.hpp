// RMI-specific escape analysis (paper §3.3).
//
// Argument/return-value reuse is only valid when the deserialized graph
// does not outlive the invocation: "if the argument (and, recursively, any
// of the objects the argument may refer to) does not escape the remote
// method".  A graph escapes when any node reachable from it is
//   * stored into a static/global variable (Figure 11),
//   * stored into the field/element of an object outside the graph
//     (it would survive inside foreign state), or
//   * returned from a function (it flows to the caller's copy semantics).
//
// The analysis answers two questions per remote call site: can the callee
// recycle the deserialized *argument* graphs, and can the caller recycle
// the deserialized *return* graph (the webserver's pages, §5.4).
#pragma once

#include "analysis/heap_analysis.hpp"

namespace rmiopt::analysis {

class EscapeAnalysis {
 public:
  explicit EscapeAnalysis(const HeapAnalysis& heap) : heap_(heap) {}

  // Does any node of the graph `R` (a reachability-closed node set) escape?
  bool graph_escapes(const NodeSet& closed_graph) const;

  // §3.3 argument reuse: true iff nothing reachable from the callee's
  // deserialized parameters escapes the remote method (Figure 10 yes,
  // Figure 11 no).
  bool args_reusable(const ir::Module::RemoteCallRef& site) const;

  // Return-value reuse at the caller: true iff nothing reachable from the
  // call's result escapes the calling context.
  bool return_reusable(const ir::Module::RemoteCallRef& site) const;

 private:
  const HeapAnalysis& heap_;
};

}  // namespace rmiopt::analysis
