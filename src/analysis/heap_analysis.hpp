// Heap analysis (paper §2).
//
// An allocation-site-based, flow-insensitive, interprocedural points-to
// analysis in the style of Ghiya/Hendren, extended with the paper's RMI
// parameter semantics:
//
//  * every allocation site gets a node; data-flow propagates sets of node
//    ids through moves, phis, field/array loads and stores, statics and
//    (local) calls until a fixpoint (§2 steps 1–6);
//  * a *remote* call copies its argument and return graphs, so the heap
//    approximation must clone the corresponding subgraphs.  Naive cloning
//    diverges when a cloned value flows around a loop back into the same
//    call (Figure 3); the paper's fix is to number nodes with a
//    (logical, physical) *tuple* — the clone gets a fresh logical id but
//    keeps the original's physical id, and a physical id is propagated
//    into a given remote-call context at most once (Figure 4).
//
// After the fixpoint the physical ids have served their purpose; clients
// (cycle analysis, escape analysis, code generation) work with logical
// node ids.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "ir/module.hpp"

namespace rmiopt::analysis {

using LogicalId = std::uint32_t;
using NodeSet = std::set<LogicalId>;

struct HeapNode {
  LogicalId logical = 0;
  ir::AllocSiteId physical = 0;  // fixed through cloning (§2, Fig. 4)
  om::ClassId cls = om::kNoClass;
  bool is_clone = false;  // created by RMI-boundary cloning
  // field index -> may-point-to set (reference fields only)
  std::map<std::uint32_t, NodeSet> fields;
  // array element targets (reference arrays only)
  NodeSet elems;
};

class HeapAnalysis {
 public:
  explicit HeapAnalysis(const ir::Module& module);

  // Runs the data-flow to fixpoint.  Throws if the graph exceeds
  // `max_nodes` (a diverging analysis is a bug, not an input property).
  void run(std::size_t max_nodes = 100'000);

  const ir::Module& module() const { return module_; }

  // May-point-to set of an SSA value / a global.
  const NodeSet& points_to(ir::FuncId f, ir::ValueId v) const;
  const NodeSet& global_points_to(ir::GlobalId g) const;
  // Union over all return statements of `f` (callee-side graph).
  const NodeSet& return_set(ir::FuncId f) const;

  const HeapNode& node(LogicalId id) const;
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t iterations() const { return iterations_; }

  // All nodes reachable from `roots` through fields/elements (inclusive).
  NodeSet reachable(const NodeSet& roots) const;

  // Caller-side argument sets of a remote call instruction.
  std::vector<NodeSet> remote_arg_sets(const ir::Module::RemoteCallRef&) const;

 private:
  // A cloning context: one per (remote callee, param) and one per
  // (call-site tag) for the return value.
  using ContextKey = std::uint64_t;
  static ContextKey param_context(ir::FuncId callee, std::size_t param) {
    return (static_cast<ContextKey>(callee) << 32) | (param << 1);
  }
  static ContextKey return_context(std::uint32_t callsite_tag) {
    return (static_cast<ContextKey>(callsite_tag) << 32) | 1u;
  }

  LogicalId make_node(ir::AllocSiteId physical, om::ClassId cls,
                      bool is_clone);
  bool add_all(NodeSet& dest, const NodeSet& src);
  // Get-or-create the clone of `original` in `ctx`; returns its id.
  LogicalId clone_of(ContextKey ctx, LogicalId original);
  // Creates/updates the clone subgraph rooted at `original` so it mirrors
  // the current original subgraph; returns the clone root and reports via
  // `changed` whether any clone node or edge was added.
  LogicalId clone_sync(ContextKey ctx, LogicalId original, bool& changed);
  // Propagates `sources` across an RMI boundary into `dest` under the
  // tuple rule; returns true on change.
  bool propagate_remote(ContextKey ctx, const NodeSet& sources,
                        NodeSet& dest);
  bool process_instr(const ir::Function& f, const ir::Instr& in);

  const ir::Module& module_;
  std::vector<HeapNode> nodes_;
  std::map<ir::AllocSiteId, LogicalId> site_to_node_;
  std::vector<std::vector<NodeSet>> value_pts_;  // [func][value]
  std::vector<NodeSet> global_pts_;
  std::vector<NodeSet> return_pts_;
  std::map<std::pair<ContextKey, LogicalId>, LogicalId> clone_map_;
  std::map<ContextKey, std::set<ir::AllocSiteId>> propagated_;
  std::size_t max_nodes_ = 0;
  std::size_t iterations_ = 0;
  bool ran_ = false;
};

// Textual dump of the heap graph (nodes with physical site / class /
// clone marker, and their field/element edges) in the style of the
// paper's Figure 2 — used by the compiler_tour example and diagnostics.
std::string to_string(const HeapAnalysis& heap);

}  // namespace rmiopt::analysis
