// Growable byte buffer with primitive put/get accessors.
//
// This is the payload carrier of the wire protocol.  Values are encoded
// little-endian (the simulated cluster is homogeneous, as was the paper's
// Pentium-III cluster, so no byte swapping is needed).  Unsigned LEB128
// varints are provided for the compact type encoding used by the
// class-specific protocol (KaRMI-style "more compact encoding of types").
//
// Two storage modes:
//  * owned (default): a growable std::vector, read/write;
//  * view: a read-only span into externally owned memory, kept alive by a
//    refcounted pin (typically a support::FramePool block).  Views carry
//    no bytes of their own — this is how the zero-copy receive path hands
//    a decoded Message a window into the pooled frame image without the
//    per-message delivery copy.  Writing into a view is a logic error.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace rmiopt {

class ByteBuffer {
 public:
  ByteBuffer() = default;
  explicit ByteBuffer(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  // A read-only window into [data, data+len) whose lifetime is guaranteed
  // by `pin` (copies of the buffer share the pin).  Reading never copies
  // out of the underlying frame until a get_* accessor asks for it.
  static ByteBuffer view(const std::uint8_t* data, std::size_t len,
                         std::shared_ptr<void> pin) {
    ByteBuffer b;
    b.ext_ = data;
    b.ext_size_ = len;
    b.pin_ = std::move(pin);
    return b;
  }

  bool is_view() const { return ext_ != nullptr; }

  // The refcounted keep-alive backing a view (null for owned buffers).
  // The reader uses this as the borrow gate: a payload with a pin can
  // hand out spans that outlive the decode call.
  const std::shared_ptr<void>& pin() const { return pin_; }

  // ---- writing -----------------------------------------------------------
  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    RMIOPT_CHECK(!is_view(), "write into ByteBuffer view");
    const std::size_t old = bytes_.size();
    bytes_.resize(old + sizeof(T));
    std::memcpy(bytes_.data() + old, &value, sizeof(T));
  }

  void put_u8(std::uint8_t v) { put(v); }
  void put_i32(std::int32_t v) { put(v); }
  void put_u32(std::uint32_t v) { put(v); }
  void put_i64(std::int64_t v) { put(v); }
  void put_f64(double v) { put(v); }

  void put_varint(std::uint64_t v) {
    RMIOPT_CHECK(!is_view(), "write into ByteBuffer view");
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void put_bytes(const void* data, std::size_t len) {
    if (len == 0) return;  // empty spans may carry data() == nullptr
    RMIOPT_CHECK(!is_view(), "write into ByteBuffer view");
    const std::size_t old = bytes_.size();
    bytes_.resize(old + len);
    std::memcpy(bytes_.data() + old, data, len);
  }

  void put_string(std::string_view s) {
    put_varint(s.size());
    put_bytes(s.data(), s.size());
  }

  // Bulk append of a primitive array payload (e.g. a double[] row).
  template <typename T>
  void put_array(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_bytes(values.data(), values.size_bytes());
  }

  // ---- reading -----------------------------------------------------------
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    RMIOPT_CHECK(read_pos_ + sizeof(T) <= size(), "ByteBuffer underflow");
    T value;
    std::memcpy(&value, data() + read_pos_, sizeof(T));
    read_pos_ += sizeof(T);
    return value;
  }

  std::uint8_t get_u8() { return get<std::uint8_t>(); }
  std::int32_t get_i32() { return get<std::int32_t>(); }
  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::int64_t get_i64() { return get<std::int64_t>(); }
  double get_f64() { return get<double>(); }

  // Strict LEB128 decode.  Rejects (as DecodeError, so receivers fail
  // closed on wire damage rather than aborting):
  //  * truncation — the continuation bit promises a byte that isn't there;
  //  * overflow — an 11th byte, or set bits above 2^64 in the 10th byte
  //    (shift 63 leaves room for exactly one more bit; anything higher
  //    would be silently truncated by the shift);
  //  * overlong encodings — a trailing 0x00 continuation byte encodes the
  //    same value in more bytes than put_varint emits; accepting them
  //    would let one value have many wire images.
  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (read_pos_ >= size()) throw DecodeError("varint underflow");
      const std::uint8_t b = data()[read_pos_++];
      if (shift == 63 && (b & 0x7e) != 0)
        throw DecodeError("varint overflow: set bits above 2^64");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) {
        if (b == 0 && shift != 0) throw DecodeError("overlong varint");
        break;
      }
      shift += 7;
      if (shift >= 64)
        throw DecodeError("varint overflow: more than 10 bytes");
    }
    return v;
  }

  void get_bytes(void* out, std::size_t len) {
    // `len <= size - pos` (not `pos + len <= size`): a corrupted length can
    // be large enough to wrap the addition.
    RMIOPT_CHECK(len <= size() - read_pos_, "ByteBuffer underflow");
    if (len == 0) return;  // empty spans may carry data() == nullptr
    std::memcpy(out, data() + read_pos_, len);
    read_pos_ += len;
  }

  // Bounds-checked zero-copy read: returns a pointer to the next `len`
  // bytes in place and advances the cursor.  The pointer is valid only as
  // long as the backing storage lives — for a view, that means as long as
  // pin() is held; callers that stash it (borrowed array storage) must
  // retain the pin.
  const std::uint8_t* view_bytes(std::size_t len) {
    RMIOPT_CHECK(len <= size() - read_pos_, "ByteBuffer underflow");
    const std::uint8_t* p = data() + read_pos_;
    read_pos_ += len;
    return p;
  }

  std::string get_string() {
    const std::size_t len = get_varint();
    RMIOPT_CHECK(len <= size() - read_pos_, "string underflow");
    std::string s(reinterpret_cast<const char*>(data() + read_pos_), len);
    read_pos_ += len;
    return s;
  }

  template <typename T>
  void get_array(std::span<T> out) {
    get_bytes(out.data(), out.size_bytes());
  }

  // ---- cursor / capacity --------------------------------------------------
  std::size_t size() const { return is_view() ? ext_size_ : bytes_.size(); }
  std::size_t remaining() const { return size() - read_pos_; }
  std::size_t read_pos() const { return read_pos_; }
  void rewind() { read_pos_ = 0; }
  void clear() {
    bytes_.clear();
    ext_ = nullptr;
    ext_size_ = 0;
    pin_.reset();
    read_pos_ = 0;
  }
  void reserve(std::size_t n) { bytes_.reserve(n); }

  std::span<const std::uint8_t> contents() const { return {data(), size()}; }
  std::vector<std::uint8_t> take() && {
    RMIOPT_CHECK(!is_view(), "take() from ByteBuffer view");
    return std::move(bytes_);
  }

 private:
  const std::uint8_t* data() const {
    return is_view() ? ext_ : bytes_.data();
  }

  std::vector<std::uint8_t> bytes_;
  const std::uint8_t* ext_ = nullptr;  // non-null => view mode
  std::size_t ext_size_ = 0;
  std::shared_ptr<void> pin_;
  std::size_t read_pos_ = 0;
};

}  // namespace rmiopt
